// The -plan report puts the cost-model-guided auto-mapper
// (internal/plan) side by side with the hand-tuned constants the
// networks shipped with. Every comparison runs both deployments on
// equal-sized fresh systems with the same input and refuses to print a
// row unless the outputs match bit for bit — the planner is only
// allowed to move latency, never results.
package main

import (
	"fmt"
	"math/rand"

	"pimdnn/internal/alexnet"
	"pimdnn/internal/core"
	"pimdnn/internal/dpu"
	"pimdnn/internal/ebnn"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
	"pimdnn/internal/plan"
	"pimdnn/internal/resnet"
	"pimdnn/internal/tensor"
	"pimdnn/internal/yolo"
)

func planInput(size int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(3, size, size)
	for i := range t.Data {
		t.Data[i] = tensor.Quantize(rng.Float64())
	}
	return t
}

func planReport() error {
	fmt.Println("\n## P1 — Auto-mapper vs hand-tuned mappings (bit-identical outputs enforced)")
	fmt.Println("\n| network | hand-tuned s | auto-mapped s | speedup | tasklets (fixed → planned) |")
	fmt.Println("|---|---|---|---|---|")

	const dpus = 64

	// YOLOv3-lite: the library comparison already verifies detections
	// match before reporting latencies.
	cmp, err := core.CompareYOLOMappings(
		yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3}, dpus, dpu.O3)
	if err != nil {
		return err
	}
	fmt.Printf("| YOLOv3-lite (75 conv) | %.4g | %.4g | %.2fx | %d → ≤%d |\n",
		cmp.FixedSeconds, cmp.PlannedSeconds, cmp.Speedup(),
		cmp.FixedTasklets, cmp.PlannedTasklets)

	// The same network on the full 2,560-DPU array, where the tuned
	// constant is 8 tasklets (TileCols 64) and per-shape re-planning
	// actually moves the total.
	fullNet, err := yolo.New(yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3})
	if err != nil {
		return err
	}
	fullInput := yolo.SyntheticScene(32, 99)
	runFull := func(planned bool) (*yolo.Result, *yolo.ForwardStats, error) {
		sys, err := newSystem(dpu.SystemDPUs, host.DefaultConfig(dpu.O3))
		if err != nil {
			return nil, nil, err
		}
		defer sys.Close()
		maxK, maxN := fullNet.GEMMBounds()
		cfg := gemm.RunnerConfig{MaxK: maxK, MaxN: maxN, TileCols: 64, Exec: execCfg}
		if planned {
			cfg.Planner = plan.New(sys)
		} else {
			cfg.Tasklets = 8 // the hand-tuned full-array constant
		}
		r, err := gemm.NewRunner(sys, cfg)
		if err != nil {
			return nil, nil, err
		}
		return fullNet.Forward(fullInput, r)
	}
	fullFixedRes, fullFixedSt, err := runFull(false)
	if err != nil {
		return err
	}
	fullPlanRes, fullPlanSt, err := runFull(true)
	if err != nil {
		return err
	}
	if len(fullFixedRes.Detections) != len(fullPlanRes.Detections) {
		return fmt.Errorf("full-array auto-mapped forward diverged from fixed mapping")
	}
	for i := range fullFixedRes.Detections {
		if fullFixedRes.Detections[i] != fullPlanRes.Detections[i] {
			return fmt.Errorf("full-array auto-mapped detection %d diverged", i)
		}
	}
	fullMaxT := func(st *yolo.ForwardStats) int {
		m := 0
		for _, l := range st.Layers {
			if l.Tasklets > m {
				m = l.Tasklets
			}
		}
		return m
	}
	fmt.Printf("| YOLOv3-lite, full array (%d DPUs) | %.4g | %.4g | %.2fx | 8 → ≤%d |\n",
		dpu.SystemDPUs, fullFixedSt.Seconds, fullPlanSt.Seconds,
		fullFixedSt.Seconds/fullPlanSt.Seconds, fullMaxT(fullPlanSt))

	// AlexNet and ResNet-18: classify the same image under both
	// deployments and require identical logits.
	maxTasklets := func(n int, get func(int) int) int {
		m := 0
		for i := 0; i < n; i++ {
			if t := get(i); t > m {
				m = t
			}
		}
		return m
	}
	type classifyRun struct {
		logits   []int16
		seconds  float64
		tasklets int
	}
	classifyBoth := func(run func(auto bool) (classifyRun, error)) (classifyRun, classifyRun, error) {
		fixed, err := run(false)
		if err != nil {
			return classifyRun{}, classifyRun{}, err
		}
		auto, err := run(true)
		if err != nil {
			return classifyRun{}, classifyRun{}, err
		}
		if len(fixed.logits) != len(auto.logits) {
			return classifyRun{}, classifyRun{}, fmt.Errorf("auto-mapped forward diverged from fixed mapping")
		}
		for i := range fixed.logits {
			if fixed.logits[i] != auto.logits[i] {
				return classifyRun{}, classifyRun{}, fmt.Errorf("auto-mapped logit %d diverged", i)
			}
		}
		return fixed, auto, nil
	}

	alexFixed, alexAuto, err := classifyBoth(func(auto bool) (classifyRun, error) {
		acc, err := core.NewAccelerator(core.Options{DPUs: dpus, Opt: dpu.O3})
		if err != nil {
			return classifyRun{}, err
		}
		app, err := acc.DeployAlexNet(alexnet.LiteConfig(), core.YOLOOptions{AutoMap: auto})
		if err != nil {
			return classifyRun{}, err
		}
		_, logits, st, err := app.Classify(planInput(app.Network().Cfg.InputSize, 31))
		if err != nil {
			return classifyRun{}, err
		}
		return classifyRun{logits, st.Seconds,
			maxTasklets(len(st.Layers), func(i int) int { return st.Layers[i].Tasklets })}, nil
	})
	if err != nil {
		return fmt.Errorf("alexnet: %w", err)
	}
	fmt.Printf("| AlexNet-lite | %.4g | %.4g | %.2fx | %d → ≤%d |\n",
		alexFixed.seconds, alexAuto.seconds, alexFixed.seconds/alexAuto.seconds,
		alexFixed.tasklets, alexAuto.tasklets)

	resFixed, resAuto, err := classifyBoth(func(auto bool) (classifyRun, error) {
		acc, err := core.NewAccelerator(core.Options{DPUs: dpus, Opt: dpu.O3})
		if err != nil {
			return classifyRun{}, err
		}
		app, err := acc.DeployResNet(resnet.LiteConfig(), core.YOLOOptions{AutoMap: auto})
		if err != nil {
			return classifyRun{}, err
		}
		_, logits, st, err := app.Classify(planInput(app.Network().Cfg.InputSize, 32))
		if err != nil {
			return classifyRun{}, err
		}
		return classifyRun{logits, st.Seconds,
			maxTasklets(len(st.Layers), func(i int) int { return st.Layers[i].Tasklets })}, nil
	})
	if err != nil {
		return fmt.Errorf("resnet: %w", err)
	}
	fmt.Printf("| ResNet-18-lite | %.4g | %.4g | %.2fx | %d → ≤%d |\n",
		resFixed.seconds, resAuto.seconds, resFixed.seconds/resAuto.seconds,
		resFixed.tasklets, resAuto.tasklets)

	// eBNN: the multi-image-per-DPU mapping. tasklets=0 deploys through
	// the planner.
	ds := mnist.Load(160, 16, 41)
	tc := ebnn.DefaultTrainConfig()
	tc.Epochs = 2
	m, err := ebnn.Train(ds, tc)
	if err != nil {
		return err
	}
	images := ds.Train[:96]
	runEBNN := func(tasklets int) ([]int, ebnn.BatchStats, error) {
		acc, err := core.NewAccelerator(core.Options{DPUs: 8})
		if err != nil {
			return nil, ebnn.BatchStats{}, err
		}
		app, err := acc.DeployEBNN(m, true, tasklets)
		if err != nil {
			return nil, ebnn.BatchStats{}, err
		}
		return app.Classify(images)
	}
	fixedPreds, fixedSt, err := runEBNN(plan.FixedEBNNTasklets)
	if err != nil {
		return err
	}
	autoPreds, autoSt, err := runEBNN(0)
	if err != nil {
		return err
	}
	for i := range fixedPreds {
		if fixedPreds[i] != autoPreds[i] {
			return fmt.Errorf("ebnn: auto-mapped prediction %d diverged", i)
		}
	}
	fmt.Printf("| eBNN (%d images) | %.4g | %.4g | %.2fx | %d → %d |\n",
		len(images), fixedSt.Seconds, autoSt.Seconds, fixedSt.Seconds/autoSt.Seconds,
		fixedSt.Tasklets, autoSt.Tasklets)

	fmt.Println("\nThe planner sweeps tasklet count, tile geometry and DPU shard count")
	fmt.Println("through the internal/model cost functions per layer shape; small head")
	fmt.Println("layers whose single tile lands on tasklet 0 anyway drop to one tasklet")
	fmt.Println("(the extra tasklets only replicate per-tasklet setup), while multi-tile")
	fmt.Println("layers fan out to one tasklet per tile up to the WRAM cap.")

	// Close with the calibration headline: the same loop that
	// `upmem-profile -calibrate` prints per layer.
	rep, err := core.Calibrate(core.CalibrateOptions{DPUs: dpus, Opt: dpu.O3})
	if err != nil {
		return err
	}
	fmt.Printf("\nCalibration across all four networks (`upmem-profile -calibrate`): %d layers, planner prediction max |error| %.4f%%.\n",
		len(rep.Rows), rep.MaxAbsError*100)
	return nil
}

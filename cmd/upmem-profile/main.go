// Command upmem-profile reproduces the thesis's chapter 3 DPU
// characterization on the simulator: per-operation cycle counts at each
// precision (Table 3.1), the MRAM access cost formula (Eq 3.4), and a
// floating-point subroutine occurrence profile (Fig 3.1/3.2), including
// an assembly-level version of the Fig 3.1 microbenchmark executed
// through the miniature ISA interpreter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pimdnn/internal/core"
	"pimdnn/internal/dpu"
	"pimdnn/internal/exec"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/isa"
	"pimdnn/internal/metrics"
	"pimdnn/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "upmem-profile:", err)
		os.Exit(1)
	}
}

func run() error {
	optFlag := flag.Int("O", 0, "optimization level 0-3 (dpu-clang -O flag)")
	timelineFlag := flag.Bool("timeline", false,
		"render the execution engine's wall-clock wave timeline for a pipelined GEMM")
	jsonFlag := flag.Bool("json", false,
		"emit the characterization as one JSON document (metrics snapshot + timeline spans) instead of text")
	calibrateFlag := flag.Bool("calibrate", false,
		"run the auto-mapper calibration loop: execute every network with planner-chosen mappings and compare predicted vs simulated latency per layer")
	dpusFlag := flag.Int("dpus", 64, "system size for -calibrate")
	perfettoFlag := flag.String("perfetto", "",
		"write a Chrome trace-event (Perfetto) JSON file for the demo GEMM: the request span tree down to per-DPU kernels, or the engine wave timeline when combined with -timeline")
	flag.Parse()
	opt := dpu.OptLevel(*optFlag)
	if *calibrateFlag {
		return runCalibrate(opt, *dpusFlag, *jsonFlag)
	}
	if *perfettoFlag != "" {
		return runPerfetto(opt, *perfettoFlag, *timelineFlag)
	}
	if *jsonFlag {
		return runJSON(opt, *timelineFlag)
	}

	fmt.Printf("== Table 3.1: cycles per operation (single DPU, 1 tasklet, %v) ==\n", opt)
	fmt.Printf("%-24s %10s %12s\n", "operation", "cycles", "paper (O0)")
	for _, b := range profileBenches() {
		cycles, err := profile(opt, b.body)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %10d %12s\n", b.name, cycles, b.paper)
	}

	fmt.Printf("\n== Eq 3.4: MRAM access cycles (25 + bytes/2) ==\n")
	for _, n := range []int{8, 64, 512, 1024, 2048} {
		fmt.Printf("%5d bytes -> %5d cycles\n", n, dpu.DMACost(n))
	}

	fmt.Printf("\n== Fig 3.1 microbenchmark as an assembled DPU program ==\n")
	cycles, listing, err := isaBench(opt)
	if err != nil {
		return err
	}
	fmt.Print(listing)
	fmt.Printf("perfcounter: %d cycles around the float multiply\n", cycles)

	fmt.Printf("\n== Fig 3.2: subroutine profile of a float-heavy kernel ==\n")
	d, err := dpu.New(dpu.DefaultConfig(opt))
	if err != nil {
		return err
	}
	if _, err := d.Launch(4, floatHeavyKernel); err != nil {
		return err
	}
	fmt.Print(d.Profile().Report())

	if *timelineFlag {
		fmt.Printf("\n== Execution engine: pipelined wave timeline (wall clock) ==\n")
		if err := waveTimeline(opt); err != nil {
			return err
		}
	}
	return nil
}

// waveTimeline dispatches a multi-wave GEMM through the execution engine
// with span recording armed and renders the wall-clock Gantt chart:
// pipelined waves overlap (wave w+1 is enqueued while wave w drains),
// which is visible as interleaved bars. Simulated DPU time is identical
// to a synchronous run; only this host-side wall-clock axis changes.
func waveTimeline(opt dpu.OptLevel) error {
	tl, desc, err := runWaveGEMM(opt)
	if err != nil {
		return err
	}
	fmt.Println(desc)
	fmt.Print(tl.Render(64))
	return nil
}

// runWaveGEMM dispatches the timeline demo GEMM and returns the
// recorded timeline plus a one-line description of the workload.
func runWaveGEMM(opt dpu.OptLevel) (*trace.Timeline, string, error) {
	const m, n, k, dpus = 24, 32, 16, 8 // 3 waves of 8 row-shards
	sys, err := host.NewSystem(dpus, host.DefaultConfig(opt))
	if err != nil {
		return nil, "", err
	}
	defer sys.Close()
	tl := trace.NewTimeline()
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: k, MaxN: n, Tasklets: 8, TileCols: 16,
		Exec: exec.Config{Pipeline: host.PipelineOn, Timeline: tl},
	})
	if err != nil {
		return nil, "", err
	}
	rng := rand.New(rand.NewSource(1))
	a := make([]int16, m*k)
	b := make([]int16, k*n)
	for i := range a {
		a[i] = int16(rng.Intn(64) - 32)
	}
	for i := range b {
		b[i] = int16(rng.Intn(64) - 32)
	}
	if _, _, err := r.Multiply(m, n, k, 1, a, b); err != nil {
		return nil, "", err
	}
	desc := fmt.Sprintf("%d x %d x %d GEMM, %d DPUs, pipeline on", m, n, k, dpus)
	return tl, desc, nil
}

// runPerfetto exports the demo GEMM for chrome://tracing / ui.perfetto.dev.
// Two views of the same workload: the default is the request span tree
// (plan, scatter/launch/gather waves, per-DPU kernel spans) recorded
// through the tracing subsystem; with -timeline it is the execution
// engine's wall-clock wave timeline instead.
func runPerfetto(opt dpu.OptLevel, path string, timeline bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if timeline {
		tl, desc, err := runWaveGEMM(opt)
		if err != nil {
			f.Close()
			return err
		}
		if err := trace.TimelinePerfetto(f, tl); err != nil {
			f.Close()
			return err
		}
		fmt.Printf("wrote wave timeline (%s) to %s\n", desc, path)
		return f.Close()
	}
	tr, desc, err := runTracedGEMM(opt)
	if err != nil {
		f.Close()
		return err
	}
	if err := trace.WritePerfetto(f, tr); err != nil {
		f.Close()
		return err
	}
	fmt.Printf("wrote span tree (%s, %d spans) to %s\n", desc, len(tr.Spans()), path)
	return f.Close()
}

// runTracedGEMM dispatches the timeline demo GEMM with a request trace
// attached to the runner and returns the completed trace.
func runTracedGEMM(opt dpu.OptLevel) (*trace.Trace, string, error) {
	const m, n, k, dpus = 24, 32, 16, 8
	sys, err := host.NewSystem(dpus, host.DefaultConfig(opt))
	if err != nil {
		return nil, "", err
	}
	defer sys.Close()
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: k, MaxN: n, Tasklets: 8, TileCols: 16,
		Exec: exec.Config{Pipeline: host.PipelineOn},
	})
	if err != nil {
		return nil, "", err
	}
	tracer := trace.NewTracer(trace.TracerConfig{})
	root := tracer.StartTrace("profile_gemm")
	r.SetTraceSpan(root)
	rng := rand.New(rand.NewSource(1))
	a := make([]int16, m*k)
	b := make([]int16, k*n)
	for i := range a {
		a[i] = int16(rng.Intn(64) - 32)
	}
	for i := range b {
		b[i] = int16(rng.Intn(64) - 32)
	}
	if _, _, err := r.Multiply(m, n, k, 1, a, b); err != nil {
		return nil, "", err
	}
	r.SetTraceSpan(nil)
	root.End()
	desc := fmt.Sprintf("%d x %d x %d GEMM, %d DPUs, pipeline on", m, n, k, dpus)
	return root.Trace(), desc, nil
}

// runJSON emits the same characterization as one JSON document on
// stdout: every measured quantity lands in a metrics.Registry (labeled
// counters) whose snapshot encoder — the same one behind -metrics-addr
// and upmem-top — renders the "metrics" field, and -timeline adds the
// wave spans under "timeline".
func runJSON(opt dpu.OptLevel, timeline bool) error {
	reg := metrics.NewRegistry()
	for _, b := range profileBenches() {
		cycles, err := profile(opt, b.body)
		if err != nil {
			return err
		}
		reg.LabeledCounter("upmem_profile_op_cycles", "op", b.name).Add(cycles)
	}
	for _, n := range []int{8, 64, 512, 1024, 2048} {
		reg.LabeledCounter("upmem_profile_mram_access_cycles", "bytes",
			fmt.Sprintf("%d", n)).Add(dpu.DMACost(n))
	}
	cycles, _, err := isaBench(opt)
	if err != nil {
		return err
	}
	reg.Counter("upmem_profile_isa_fmul_cycles").Add(cycles)

	d, err := dpu.New(dpu.DefaultConfig(opt))
	if err != nil {
		return err
	}
	if _, err := d.Launch(4, floatHeavyKernel); err != nil {
		return err
	}
	p := d.Profile()
	for _, sub := range p.Subroutines() {
		reg.LabeledCounter("upmem_profile_subroutine_occurrences_total", "sub", sub).Add(p.Occ(sub))
		reg.LabeledCounter("upmem_profile_subroutine_cycles_total", "sub", sub).Add(p.Cycles(sub))
	}

	out := struct {
		Opt      string           `json:"opt"`
		Metrics  metrics.Snapshot `json:"metrics"`
		Workload string           `json:"timeline_workload,omitempty"`
		Timeline []trace.WaveSpan `json:"timeline,omitempty"`
	}{Opt: fmt.Sprint(opt), Metrics: reg.Snapshot()}
	if timeline {
		tl, desc, err := runWaveGEMM(opt)
		if err != nil {
			return err
		}
		out.Workload = desc
		out.Timeline = tl.Spans()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runCalibrate closes the auto-mapper's validation loop: every network
// is deployed with planner-chosen mappings, executed through the
// simulator, and each layer's analytic prediction is held against the
// simulated latency. The model mirrors the kernels charge by charge, so
// the error column should read as zeros; a nonzero row means model and
// kernel have drifted apart.
func runCalibrate(opt dpu.OptLevel, dpus int, asJSON bool) error {
	rep, err := core.Calibrate(core.CalibrateOptions{DPUs: dpus, Opt: opt})
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("== Auto-mapper calibration: predicted vs simulated latency (%d DPUs, %v) ==\n", dpus, opt)
	fmt.Printf("%-9s %6s %9s %6s %14s %14s %9s\n",
		"network", "layer", "tasklets", "dpus", "predicted", "simulated", "error")
	for _, r := range rep.Rows {
		fmt.Printf("%-9s %6d %9d %6d %14.6g %14.6g %+8.4f%%\n",
			r.Network, r.Layer, r.Tasklets, r.DPUsUsed,
			r.PredictedSeconds, r.SimulatedSeconds, r.Error*100)
	}
	fmt.Printf("\n%d layers, max |error| %.4f%%\n", len(rep.Rows), rep.MaxAbsError*100)
	return nil
}

// bench is one Table 3.1 row: an operation and the thesis's O0 count.
type bench struct {
	name  string
	body  func(t *dpu.Tasklet)
	paper string
}

// profileBenches is the Table 3.1 operation set, shared by the text and
// JSON expositions.
func profileBenches() []bench {
	return []bench{
		{"8-bit add", func(t *dpu.Tasklet) { t.Add32(3, 4) }, "272"},
		{"16-bit add", func(t *dpu.Tasklet) { t.Add32(300, 400) }, "272"},
		{"32-bit add", func(t *dpu.Tasklet) { t.Add32(3e6, 4e6) }, "272"},
		{"8-bit multiply", func(t *dpu.Tasklet) { t.Mul8(3, 4) }, "272"},
		{"16-bit multiply", func(t *dpu.Tasklet) { t.Mul16(300, 40) }, "608"},
		{"32-bit multiply", func(t *dpu.Tasklet) { t.Mul32(3e6, 40) }, "800"},
		{"8-bit subtract", func(t *dpu.Tasklet) { t.Sub32(3, 4) }, "272"},
		{"fixed divide", func(t *dpu.Tasklet) { t.Div32(300, 4) }, "368"},
		{"float add", func(t *dpu.Tasklet) { t.FAdd(0x40400000, 0x40800000) }, "896"},
		{"float subtract", func(t *dpu.Tasklet) { t.FSub(0x40400000, 0x40800000) }, "928"},
		{"float multiply", func(t *dpu.Tasklet) { t.FMul(0x40400000, 0x40800000) }, "2528"},
		{"float divide", func(t *dpu.Tasklet) { t.FDiv(0x40400000, 0x40800000) }, "12064"},
	}
}

func profile(opt dpu.OptLevel, body func(t *dpu.Tasklet)) (uint64, error) {
	d, err := dpu.New(dpu.DefaultConfig(opt))
	if err != nil {
		return 0, err
	}
	var cycles uint64
	_, err = d.Launch(1, func(t *dpu.Tasklet) error {
		t.PerfcounterConfig()
		t.Charge(dpu.OpNop, 21) // measurement harness instructions
		body(t)
		cycles = t.PerfcounterGet()
		return nil
	})
	return cycles, err
}

// isaBench assembles and runs the Fig 3.1 program: two floats multiplied
// between perfcounter_config() and perfcounter_get().
func isaBench(opt dpu.OptLevel) (uint64, string, error) {
	src := `
	; Fig 3.1: profile one floating-point multiply
		movi r1, 3
		movi r2, 4
		fsi  r3, r1      ; float a = 3
		fsi  r4, r2      ; float b = 4
		pcfg             ; perfcounter_config()
		fmul r5, r3, r4  ; a * b
		pget r6          ; perfcounter_get()
		halt
	`
	prog, err := isa.Assemble(src)
	if err != nil {
		return 0, "", err
	}
	d, err := dpu.New(dpu.DefaultConfig(opt))
	if err != nil {
		return 0, "", err
	}
	if err := isa.Load(d, prog); err != nil {
		return 0, "", err
	}
	var counter uint64
	_, err = d.Launch(1, isa.Kernel(nil, func(_ int, r isa.Regs) {
		counter = uint64(r[6])
	}))
	if err != nil {
		return 0, "", err
	}
	return counter, isa.Disassemble(prog), nil
}

// floatHeavyKernel mimics the unmodified eBNN BN-BinAct block: repeated
// normalization in software floating point.
func floatHeavyKernel(t *dpu.Tasklet) error {
	mean := t.FFromInt(5)
	std := t.FFromInt(3)
	for i := 0; i < 64; i++ {
		v := t.FFromInt(int32(i % 19))
		centered := t.FSub(v, mean)
		norm := t.FDiv(centered, std)
		scaled := t.FMul(norm, t.FFromInt(1))
		shifted := t.FAdd(scaled, t.FFromInt(0))
		if t.FGe(shifted, 0) {
			t.Charge(dpu.OpStore, 1)
		}
		_ = t.FToInt(shifted)
	}
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pimdnn/internal/dpu"
	"pimdnn/internal/metrics"
)

// tinySpec is a minimal servable network: the full 75-conv graph at the
// smallest legal resolution and width, so tests stay fast.
func tinySpec(name string) modelSpec {
	return modelSpec{name: name, size: 32, widthDiv: 64, classes: 2, seed: 1}
}

func newTestServer(t *testing.T, cfg serveConfig) (*server, *httptest.Server) {
	t.Helper()
	if cfg.dpus == 0 {
		cfg.dpus = 4
	}
	if cfg.tasklets == 0 {
		cfg.tasklets = 4
	}
	if cfg.opt == 0 {
		cfg.opt = dpu.O3
	}
	if cfg.maxBatch == 0 {
		cfg.maxBatch = 4
	}
	if cfg.maxWait == 0 {
		cfg.maxWait = 10 * time.Millisecond
	}
	if cfg.queueCap == 0 {
		cfg.queueCap = 16
	}
	if cfg.cacheBytes == 0 {
		cfg.cacheBytes = 1 << 20
	}
	if cfg.reg == nil {
		cfg.reg = metrics.NewRegistry()
	}
	if cfg.specs == nil {
		cfg.specs = []modelSpec{tinySpec("tiny")}
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close() // first: no handlers in flight when the drain starts
		s.Stop()
	})
	return s, ts
}

func postInfer(t *testing.T, url string, body inferRequest) (*http.Response, inferResponse) {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out inferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestServeSingleInfer(t *testing.T) {
	_, ts := newTestServer(t, serveConfig{})
	resp, out := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Model != "tiny" || out.BatchSize < 1 {
		t.Errorf("response %+v", out)
	}
	if out.DPUSeconds <= 0 {
		t.Errorf("no DPU time reported: %+v", out)
	}
}

// TestServeDeterministic: the same seed must produce the same
// detections on repeated requests — the wave path is bit-exact, so the
// decoded boxes are identical too.
func TestServeDeterministic(t *testing.T) {
	_, ts := newTestServer(t, serveConfig{})
	_, first := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: 11})
	for i := 0; i < 2; i++ {
		resp, out := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: 11})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("call %d: status %d", i, resp.StatusCode)
		}
		if fmt.Sprint(out.Detections) != fmt.Sprint(first.Detections) {
			t.Fatalf("call %d detections diverged:\n%v\nvs\n%v", i, out.Detections, first.Detections)
		}
	}
}

// TestServeWarmSkipsWeightDelivery pins the tentpole property end to
// end: after the first request scatters the model, further requests
// advance the cache's delivered-bytes counter by zero.
func TestServeWarmSkipsWeightDelivery(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, serveConfig{reg: reg})
	delivered := reg.Counter("pim_wcache_delivered_bytes_total")

	if resp, _ := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold request: status %d", resp.StatusCode)
	}
	cold := delivered.Value()
	if cold == 0 {
		t.Fatal("cold request delivered no weight bytes")
	}
	for i := 0; i < 3; i++ {
		if resp, _ := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: int64(i)}); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm request %d: status %d", i, resp.StatusCode)
		}
	}
	if got := delivered.Value(); got != cold {
		t.Errorf("warm requests delivered %d extra weight bytes", got-cold)
	}
}

// TestServeBatching: concurrent requests against one model coalesce
// into shared waves instead of running one wave each.
func TestServeBatching(t *testing.T) {
	const nReq = 8
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, serveConfig{reg: reg, maxBatch: 4, maxWait: 50 * time.Millisecond})

	// Warm first so the concurrent burst measures steady-state batching.
	postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: 0})

	var wg sync.WaitGroup
	batches := make([]int, nReq)
	for i := 0; i < nReq; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: int64(i)})
			if resp.StatusCode == http.StatusOK {
				batches[i] = out.BatchSize
			}
		}(i)
	}
	wg.Wait()
	coalesced := false
	for i, b := range batches {
		if b == 0 {
			t.Fatalf("request %d failed", i)
		}
		if b > 1 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Error("no request shared a wave; dynamic batching never coalesced")
	}
}

// TestServeBackpressure: with a one-slot queue and the engine pinned
// busy, excess load must be refused with 503 + Retry-After, not queued
// without bound. Holding engineMu stalls the batcher mid-wave, so the
// saturation is deterministic: one request in flight, one queued,
// everything else shed.
func TestServeBackpressure(t *testing.T) {
	reg := metrics.NewRegistry()
	s, ts := newTestServer(t, serveConfig{
		reg: reg, queueCap: 1, maxBatch: 1, maxWait: time.Millisecond,
	})
	rejected := reg.LabeledCounter("pim_serve_rejected_total", "model", "tiny")

	s.engineMu.Lock()
	const nReq = 12
	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	for i := 0; i < nReq; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf, _ := json.Marshal(inferRequest{Model: "tiny", Seed: int64(i)})
			resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(buf))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
				t.Error("503 without Retry-After")
			}
			mu.Lock()
			codes[resp.StatusCode]++
			mu.Unlock()
		}(i)
	}
	// Wait for the shed responses to land while the engine is stalled,
	// then release it so the admitted requests complete.
	deadline := time.Now().Add(5 * time.Second)
	for rejected.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.engineMu.Unlock()
	wg.Wait()
	if codes[http.StatusOK] == 0 {
		t.Error("every request was shed; some should have been admitted")
	}
	if codes[http.StatusServiceUnavailable] == 0 {
		t.Errorf("no request was shed under a 1-deep queue: %v", codes)
	}
	if rejected.Value() == 0 {
		t.Error("rejected counter did not advance")
	}
}

// TestServeMultiModel: two models co-resident in one cache both answer
// correctly under interleaved load, and the cache tracks both.
func TestServeMultiModel(t *testing.T) {
	_, ts := newTestServer(t, serveConfig{
		specs: []modelSpec{tinySpec("a"), tinySpec("b")},
	})
	for i := 0; i < 2; i++ {
		for _, name := range []string{"a", "b"} {
			resp, out := postInfer(t, ts.URL, inferRequest{Model: name, Seed: 5})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("model %s: status %d", name, resp.StatusCode)
			}
			if out.Model != name {
				t.Errorf("model %s answered as %s", name, out.Model)
			}
		}
	}
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var models struct {
		Models   []modelJSON `json:"models"`
		Resident int64       `json:"cache_resident_bytes"`
		LRU      []string    `json:"cache_lru_order"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models.Models) != 2 {
		t.Errorf("models endpoint listed %d models, want 2", len(models.Models))
	}
	if models.Resident == 0 {
		t.Error("no resident bytes after serving both models")
	}
	if len(models.LRU) != 2 {
		t.Errorf("cache LRU order %v, want both models", models.LRU)
	}
}

// TestServePlannedMultiTenant is the auto-mapper's serving smoke test:
// two models co-resident on one planned (-plan) server answer
// interleaved requests, and every detection matches what the
// fixed-tasklets server produces for the same seed — the planner moves
// latency, never results.
func TestServePlannedMultiTenant(t *testing.T) {
	specs := []modelSpec{tinySpec("a"), tinySpec("b")}
	_, fixedTS := newTestServer(t, serveConfig{specs: specs})
	_, plannedTS := newTestServer(t, serveConfig{specs: specs, autoMap: true})
	for i := 0; i < 2; i++ {
		for _, name := range []string{"a", "b"} {
			req := inferRequest{Model: name, Seed: int64(20 + i)}
			fResp, fOut := postInfer(t, fixedTS.URL, req)
			pResp, pOut := postInfer(t, plannedTS.URL, req)
			if fResp.StatusCode != http.StatusOK || pResp.StatusCode != http.StatusOK {
				t.Fatalf("model %s seed %d: status fixed=%d planned=%d",
					name, req.Seed, fResp.StatusCode, pResp.StatusCode)
			}
			if pOut.DPUSeconds <= 0 {
				t.Errorf("model %s: planned wave reported no DPU time", name)
			}
			if fmt.Sprint(pOut.Detections) != fmt.Sprint(fOut.Detections) {
				t.Errorf("model %s seed %d: planned detections diverged:\n%v\nvs fixed\n%v",
					name, req.Seed, pOut.Detections, fOut.Detections)
			}
		}
	}
}

// TestServeStatsQuantiles: after a handful of requests the stats
// endpoint reports nonzero request counts and latency quantiles.
func TestServeStatsQuantiles(t *testing.T) {
	_, ts := newTestServer(t, serveConfig{})
	for i := 0; i < 5; i++ {
		if resp, _ := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: int64(i)}); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d failed", i)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Stats []statJSON `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Stats) != 1 {
		t.Fatalf("stats for %d models, want 1", len(stats.Stats))
	}
	st := stats.Stats[0]
	if st.Requests != 5 {
		t.Errorf("requests = %d, want 5", st.Requests)
	}
	if st.P50US == 0 || st.P99US == 0 {
		t.Errorf("zero latency quantiles: %+v", st)
	}
	if st.P50US > st.P99US {
		t.Errorf("p50 %d > p99 %d", st.P50US, st.P99US)
	}
}

// TestServeErrors covers the request-validation paths.
func TestServeErrors(t *testing.T) {
	s, ts := newTestServer(t, serveConfig{})
	if resp, _ := postInfer(t, ts.URL, inferRequest{Model: "nope"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown model: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := postInfer(t, ts.URL, inferRequest{Model: "tiny", Input: []int16{1, 2, 3}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short input: status %d, want 400", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET infer: status %d, want 405", resp.StatusCode)
	}
	// A correct explicit input works: full-size flat tensor.
	size := s.models["tiny"].spec.size
	input := make([]int16, 3*size*size)
	if resp, _ := postInfer(t, ts.URL, inferRequest{Model: "tiny", Input: input}); resp.StatusCode != http.StatusOK {
		t.Errorf("explicit input: status %d, want 200", resp.StatusCode)
	}
}

func TestParseModels(t *testing.T) {
	specs, err := parseModels("tiny=64x32, lite=96x16")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].name != "tiny" || specs[0].size != 64 ||
		specs[0].widthDiv != 32 || specs[1].name != "lite" || specs[1].size != 96 {
		t.Errorf("parsed %+v", specs)
	}
	for _, bad := range []string{"tiny", "tiny=64", "tiny=ax32", "tiny=64xb"} {
		if _, err := parseModels(bad); err == nil {
			t.Errorf("parseModels(%q) accepted", bad)
		}
	}
}

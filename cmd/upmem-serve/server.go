package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"pimdnn/internal/dpu"
	"pimdnn/internal/exec"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/metrics"
	"pimdnn/internal/plan"
	"pimdnn/internal/trace"
	"pimdnn/internal/yolo"
)

// The serving core: one simulated DPU system hosts several models'
// weights in a shared residency cache, and per-model batchers coalesce
// concurrent requests into image-per-DPU waves. A request's life:
//
//	handler → admission (bounded queue, 503 + Retry-After when full)
//	        → batcher (coalesce until maxBatch or maxWait elapses)
//	        → engine (serialized: rebind residency, ForwardBatch)
//	        → response (detections + latency accounting)
//
// The first wave of a model scatters its weights into the cache arena;
// subsequent waves skip the transfer, so steady-state serving moves
// only activations. The cache's LRU budget arbitrates between models
// when the configured arena cannot hold all of them at once.

// modelSpec is one parsed -models entry.
type modelSpec struct {
	name     string
	size     int // input resolution
	widthDiv int
	classes  int
	seed     int64
}

// serveConfig collects everything newServer needs.
type serveConfig struct {
	dpus     int
	tasklets int
	// autoMap replaces the fixed -tasklets constant with the
	// cost-model auto-mapper: the runner re-plans tasklet count per
	// layer shape (and per wave size on the batch path).
	autoMap    bool
	opt        dpu.OptLevel
	specs      []modelSpec
	maxBatch   int           // images coalesced into one wave
	maxWait    time.Duration // batching deadline after the first request
	queueCap   int           // per-model admission bound
	cacheBytes int64         // weight-cache arena budget per DPU
	reg        *metrics.Registry

	// Request tracing: traceSample keeps 1 in N requests (0 disables
	// tracing entirely), traceRing sizes the flight recorder, slo
	// triggers a flight-recorder dump when a request's end-to-end
	// latency exceeds it, and onDump receives every dump record.
	traceSample int
	traceRing   int
	slo         time.Duration
	onDump      func(*trace.DumpRecord)
}

// request is one admitted inference waiting for its wave.
type request struct {
	input *yolo.Tensor
	enq   time.Time
	done  chan response
	// sp is the request's root span (nil when the request was sampled
	// out or tracing is off).
	sp *trace.Span
}

type response struct {
	result  *yolo.Result
	stats   *yolo.ForwardStats
	batch   int
	queueUS uint64
	err     error
}

// model is one served network and its batching state.
type model struct {
	spec  modelSpec
	net   *yolo.Network
	queue chan *request

	requests *metrics.Counter
	rejected *metrics.Counter
	latency  *metrics.Histogram
	queueLat *metrics.Histogram
	batchSz  *metrics.Histogram
	depth    *metrics.Gauge
}

// server owns the DPU system, the residency cache, and the batchers.
type server struct {
	cfg    serveConfig
	sys    *host.System
	runner *gemm.Runner
	cache  *exec.WeightCache
	models map[string]*model

	// engineMu serializes DPU-system access across model batchers.
	engineMu sync.Mutex

	// tracer mints per-request traces; nil when -trace-sample is 0.
	tracer *trace.Tracer

	inflight *metrics.Gauge

	quit chan struct{}
	wg   sync.WaitGroup
}

// latencyBoundsUS covers sub-millisecond cache hits through multi-second
// cold waves.
var latencyBoundsUS = []uint64{
	100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000,
	100000, 200000, 500000, 1000000, 2000000, 5000000, 10000000,
}

func batchBounds(maxBatch int) []uint64 {
	b := make([]uint64, maxBatch)
	for i := range b {
		b[i] = uint64(i + 1)
	}
	return b
}

// newServer builds the system, the shared weight cache, one batch-mode
// runner sized for every model, and a batcher goroutine per model.
func newServer(cfg serveConfig) (*server, error) {
	if cfg.maxBatch < 1 || cfg.queueCap < 1 {
		return nil, fmt.Errorf("serve: maxBatch %d and queueCap %d must be positive", cfg.maxBatch, cfg.queueCap)
	}
	if len(cfg.specs) == 0 {
		return nil, fmt.Errorf("serve: no models configured")
	}
	hcfg := host.DefaultConfig(cfg.opt)
	sys, err := host.NewSystem(cfg.dpus, hcfg)
	if err != nil {
		return nil, err
	}
	if cfg.reg != nil {
		sys.EnableMetrics(cfg.reg)
	}
	cache, err := exec.NewWeightCache(sys, cfg.cacheBytes)
	if err != nil {
		sys.Close()
		return nil, err
	}

	s := &server{
		cfg:    cfg,
		sys:    sys,
		cache:  cache,
		models: make(map[string]*model),
		quit:   make(chan struct{}),
	}
	if cfg.reg != nil {
		s.inflight = cfg.reg.Gauge("pim_serve_inflight")
	}
	if cfg.traceSample > 0 {
		s.tracer = trace.NewTracer(trace.TracerConfig{
			Sample: cfg.traceSample,
			Ring:   cfg.traceRing,
			OnDump: cfg.onDump,
		})
	}

	// Size one runner to the union of every model's GEMM bounds.
	var maxK, maxN, maxM int
	for _, spec := range cfg.specs {
		if _, dup := s.models[spec.name]; dup {
			sys.Close()
			return nil, fmt.Errorf("serve: duplicate model %q", spec.name)
		}
		net, err := yolo.New(yolo.Config{
			InputSize: spec.size, Classes: spec.classes, WidthDiv: spec.widthDiv, Seed: spec.seed,
		})
		if err != nil {
			sys.Close()
			return nil, fmt.Errorf("serve: model %q: %w", spec.name, err)
		}
		k, n := net.GEMMBounds()
		if k > maxK {
			maxK = k
		}
		if n > maxN {
			maxN = n
		}
		if f := net.MaxFilters(); f > maxM {
			maxM = f
		}
		m := &model{spec: spec, net: net, queue: make(chan *request, cfg.queueCap)}
		if cfg.reg != nil {
			m.requests = cfg.reg.LabeledCounter("pim_serve_requests_total", "model", spec.name)
			m.rejected = cfg.reg.LabeledCounter("pim_serve_rejected_total", "model", spec.name)
			m.latency = cfg.reg.LabeledHistogram("pim_serve_latency_us", "model", spec.name, latencyBoundsUS)
			m.queueLat = cfg.reg.LabeledHistogram("pim_serve_queue_wait_us", "model", spec.name, latencyBoundsUS)
			m.batchSz = cfg.reg.LabeledHistogram("pim_serve_batch_size", "model", spec.name, batchBounds(cfg.maxBatch))
			m.depth = cfg.reg.LabeledGauge("pim_serve_queue_depth", "model", spec.name)
		}
		s.models[spec.name] = m
	}
	rcfg := gemm.RunnerConfig{MaxK: maxK, MaxN: maxN}
	if cfg.autoMap {
		rcfg.Planner = plan.New(sys)
	} else {
		rcfg.Tasklets = cfg.tasklets
	}
	runner, err := gemm.NewRunner(sys, rcfg)
	if err != nil {
		sys.Close()
		return nil, err
	}
	if err := runner.EnableBatch(maxM); err != nil {
		sys.Close()
		return nil, err
	}
	s.runner = runner

	for _, m := range s.models {
		s.wg.Add(1)
		go s.batcher(m)
	}
	return s, nil
}

// Stop drains the batchers (queued requests still get answers) and
// releases the system. Callers stop the HTTP listener first so no new
// requests race the drain.
func (s *server) Stop() {
	close(s.quit)
	s.wg.Wait()
	s.sys.Close()
}

// batcher coalesces one model's requests into waves: the first arrival
// opens a window that closes at maxWait or maxBatch, whichever first.
func (s *server) batcher(m *model) {
	defer s.wg.Done()
	for {
		select {
		case req := <-m.queue:
			s.collectAndRun(m, req)
		case <-s.quit:
			// Drain stragglers admitted before the listener stopped.
			for {
				select {
				case req := <-m.queue:
					s.collectAndRun(m, req)
				default:
					return
				}
			}
		}
	}
}

// collectAndRun gathers the wave that req opens and executes it.
func (s *server) collectAndRun(m *model, req *request) {
	batch := []*request{req}
	timer := time.NewTimer(s.cfg.maxWait)
collect:
	for len(batch) < s.cfg.maxBatch {
		select {
		case r := <-m.queue:
			batch = append(batch, r)
		case <-timer.C:
			break collect
		case <-s.quit:
			break collect
		}
	}
	timer.Stop()
	if m.depth != nil {
		m.depth.Set(int64(len(m.queue)))
	}
	s.runBatch(m, batch)
}

// runBatch executes one wave under the engine lock and answers every
// request in it.
func (s *server) runBatch(m *model, batch []*request) {
	inputs := make([]*yolo.Tensor, len(batch))
	for i, r := range batch {
		inputs[i] = r.input
	}
	start := time.Now()
	// Stamp each traced request's queue wait retroactively (enqueue to
	// wave start), then hang the shared execution subtree off the batch
	// leader: the first traced request's span owns the live exec spans,
	// and every other traced co-batched request adopts a copy afterwards
	// so each trace shows the full path to the DPU launches it shared.
	var leader *trace.Span
	for _, r := range batch {
		if r.sp == nil {
			continue
		}
		qsp := r.sp.StartChildAt("queue_wait", r.enq)
		qsp.EndAt(start)
		if leader == nil {
			leader = r.sp
		}
	}
	var bsp *trace.Span
	if leader != nil {
		bsp = leader.StartChild("batch_exec")
		bsp.SetAttrStr("model", m.spec.name)
		bsp.SetAttr("batch_size", int64(len(batch)))
	}
	s.engineMu.Lock()
	// Rebind the runner to this model's resident set: warm layers skip
	// their weight broadcast, cold (or evicted) layers re-deliver.
	s.runner.EnableResidency(s.cache, m.spec.name)
	if bsp != nil {
		s.runner.SetTraceSpan(bsp)
	}
	results, stats, err := m.net.ForwardBatch(inputs, s.runner)
	if bsp != nil {
		s.runner.SetTraceSpan(nil)
	}
	s.engineMu.Unlock()
	if bsp != nil {
		bsp.End()
		for _, r := range batch {
			if r.sp != nil && r.sp != leader {
				r.sp.AdoptSubtree(bsp)
			}
		}
	}
	// A surfaced wave error means retries were exhausted mid-wave (a
	// recoverable fault would have been re-dispatched silently) — freeze
	// the flight recorder so the traces leading up to the fault survive
	// ring rotation.
	if err != nil {
		reason := fmt.Sprintf("error:%v", err)
		if fr, ok := host.AsFaultReport(err); ok {
			reason = fmt.Sprintf("fault:%s (%d DPUs)", fr.Op, len(fr.Faults))
		}
		s.tracer.Recorder().Dump(reason)
	}
	if m.batchSz != nil {
		m.batchSz.Observe(uint64(len(batch)))
	}
	for i, r := range batch {
		queueUS := uint64(start.Sub(r.enq) / time.Microsecond)
		if m.queueLat != nil {
			m.queueLat.Observe(queueUS)
		}
		resp := response{batch: len(batch), queueUS: queueUS, err: err}
		if err == nil {
			resp.result = results[i]
			resp.stats = stats
		}
		r.done <- resp
	}
}

// inferRequest is the POST /v1/infer body. Input, when present, is the
// flat channel-major Q10.5 tensor (3*size*size values); otherwise a
// deterministic synthetic scene is generated from Seed.
type inferRequest struct {
	Model string  `json:"model"`
	Seed  int64   `json:"seed"`
	Input []int16 `json:"input,omitempty"`
}

type detectionJSON struct {
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	W          float64 `json:"w"`
	H          float64 `json:"h"`
	Class      int     `json:"class"`
	Confidence float64 `json:"confidence"`
}

type inferResponse struct {
	Model      string          `json:"model"`
	Detections []detectionJSON `json:"detections"`
	BatchSize  int             `json:"batch_size"`
	QueueUS    uint64          `json:"queue_us"`
	LatencyUS  uint64          `json:"latency_us"`
	DPUSeconds float64         `json:"dpu_seconds"`
	// TraceID identifies this request's trace (GET /v1/trace/{id});
	// zero when the request was not sampled.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// handler builds the server's HTTP mux.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/trace/", s.handleTrace)
	mux.Handle("/metrics", metrics.Handler(s.cfg.reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func httpErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var in inferRequest
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		httpErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	m := s.models[in.Model]
	if m == nil {
		httpErr(w, http.StatusNotFound, "unknown model %q", in.Model)
		return
	}
	size := m.spec.size
	var input *yolo.Tensor
	if in.Input != nil {
		want := 3 * size * size
		if len(in.Input) != want {
			httpErr(w, http.StatusBadRequest, "input has %d values, want %d (3x%dx%d)",
				len(in.Input), want, size, size)
			return
		}
		input = yolo.NewTensor(3, size, size)
		copy(input.Data, in.Input)
	} else {
		input = yolo.SyntheticScene(size, in.Seed)
	}

	if m.requests != nil {
		m.requests.Inc()
	}
	if s.inflight != nil {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
	}
	start := time.Now()
	// Root span: one per sampled request, covering admission through
	// response. The span rides the request into the batcher; the trace
	// completes (and lands in the flight recorder) when it ends below.
	root := s.tracer.StartTrace("infer")
	root.SetAttrStr("model", in.Model)
	req := &request{input: input, enq: start, done: make(chan response, 1), sp: root}
	// Admission control: a full queue means the DPU pool is saturated
	// beyond the configured backlog — shed load now rather than let
	// latency grow without bound.
	adm := root.StartChild("admission")
	select {
	case m.queue <- req:
		adm.End()
	default:
		if m.rejected != nil {
			m.rejected.Inc()
		}
		adm.SetAttr("rejected", 1)
		adm.End()
		root.SetAttr("rejected", 1)
		root.End()
		w.Header().Set("Retry-After",
			fmt.Sprintf("%d", int(math.Ceil(s.cfg.maxWait.Seconds()))+1))
		httpErr(w, http.StatusServiceUnavailable, "model %q queue full (%d waiting)",
			in.Model, s.cfg.queueCap)
		return
	}
	if m.depth != nil {
		m.depth.Set(int64(len(m.queue)))
	}

	resp := <-req.done
	if resp.err != nil {
		root.SetAttrStr("error", resp.err.Error())
		root.End()
		httpErr(w, http.StatusInternalServerError, "inference failed: %v", resp.err)
		return
	}
	latUS := uint64(time.Since(start) / time.Microsecond)
	root.SetAttr("batch_size", int64(resp.batch))
	root.SetAttr("queue_us", int64(resp.queueUS))
	root.SetAttr("latency_us", int64(latUS))
	root.End()
	if m.latency != nil {
		m.latency.ObserveExemplar(latUS, uint64(root.TraceID()))
	}
	// SLO enforcement is diagnostic, not admission: a breach freezes the
	// flight recorder (after the breaching trace has landed in it) so
	// the traces around the slow request can be pulled later.
	if s.cfg.slo > 0 && time.Duration(latUS)*time.Microsecond > s.cfg.slo {
		s.tracer.Recorder().Dump(fmt.Sprintf("slo_breach:model=%s trace=%d lat=%dus slo=%v",
			in.Model, root.TraceID(), latUS, s.cfg.slo))
	}
	out := inferResponse{
		Model:      in.Model,
		Detections: make([]detectionJSON, 0, len(resp.result.Detections)),
		BatchSize:  resp.batch,
		QueueUS:    resp.queueUS,
		LatencyUS:  latUS,
		DPUSeconds: resp.stats.Seconds,
		TraceID:    uint64(root.TraceID()),
	}
	for _, d := range resp.result.Detections {
		out.Detections = append(out.Detections, detectionJSON{
			X: d.X, Y: d.Y, W: d.W, H: d.H, Class: d.Class, Confidence: d.Confidence,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleTrace serves one retained trace as Chrome trace-event (Perfetto)
// JSON: GET /v1/trace/{id}, or /v1/trace/last for the newest. Traces age
// out of the flight-recorder ring, so 404 also means "rotated away".
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	rec := s.tracer.Recorder()
	if rec == nil {
		httpErr(w, http.StatusNotFound, "tracing disabled (-trace-sample 0)")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	var tr *trace.Trace
	switch idStr {
	case "", "last":
		if ts := rec.Traces(); len(ts) > 0 {
			tr = ts[0]
		}
	default:
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "bad trace id %q", idStr)
			return
		}
		tr = rec.Find(trace.TraceID(id))
	}
	if tr == nil {
		httpErr(w, http.StatusNotFound, "trace %q not retained (rotated out or never sampled)", idStr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = trace.WritePerfetto(w, tr)
}

type modelJSON struct {
	Name       string `json:"name"`
	InputSize  int    `json:"input_size"`
	WidthDiv   int    `json:"width_div"`
	Classes    int    `json:"classes"`
	ConvLayers int    `json:"conv_layers"`
	QueueDepth int    `json:"queue_depth"`
}

func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Models        []modelJSON `json:"models"`
		DPUs          int         `json:"dpus"`
		CacheCapacity int64       `json:"cache_capacity_bytes"`
		CacheResident int64       `json:"cache_resident_bytes"`
		CacheLRU      []string    `json:"cache_lru_order"`
	}{
		DPUs:          s.sys.NumDPUs(),
		CacheCapacity: s.cache.Capacity(),
		CacheResident: s.cache.ResidentBytes(),
		CacheLRU:      s.cache.Models(),
	}
	for _, m := range s.models {
		out.Models = append(out.Models, modelJSON{
			Name:       m.spec.name,
			InputSize:  m.spec.size,
			WidthDiv:   m.spec.widthDiv,
			Classes:    m.spec.classes,
			ConvLayers: yolo.CountConvLayers(m.net.Defs),
			QueueDepth: len(m.queue),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

type statJSON struct {
	Model    string  `json:"model"`
	Requests uint64  `json:"requests"`
	Rejected uint64  `json:"rejected"`
	P50US    uint64  `json:"p50_us"`
	P99US    uint64  `json:"p99_us"`
	QueueP50 uint64  `json:"queue_p50_us"`
	QueueP99 uint64  `json:"queue_p99_us"`
	MeanWave float64 `json:"mean_batch_size"`
}

// handleStats summarizes the latency histograms as serving SLO numbers
// (p50/p99 per model) computed from the registry snapshot.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.cfg.reg.Snapshot()
	hist := func(name, model string) (metrics.HistSnap, bool) {
		for _, h := range snap.Histograms {
			if h.Name == name && h.LabelVal == model {
				return h, true
			}
		}
		return metrics.HistSnap{}, false
	}
	counter := func(name, model string) uint64 {
		for _, c := range snap.Counters {
			if c.Name == name && c.LabelVal == model {
				return c.Value
			}
		}
		return 0
	}
	var out []statJSON
	for name := range s.models {
		st := statJSON{
			Model:    name,
			Requests: counter("pim_serve_requests_total", name),
			Rejected: counter("pim_serve_rejected_total", name),
		}
		if h, ok := hist("pim_serve_latency_us", name); ok {
			st.P50US = h.Quantile(0.50)
			st.P99US = h.Quantile(0.99)
		}
		if h, ok := hist("pim_serve_queue_wait_us", name); ok {
			st.QueueP50 = h.Quantile(0.50)
			st.QueueP99 = h.Quantile(0.99)
		}
		if h, ok := hist("pim_serve_batch_size", name); ok && h.Count > 0 {
			st.MeanWave = float64(h.Sum) / float64(h.Count)
		}
		out = append(out, st)
	}
	body := struct {
		Stats []statJSON `json:"stats"`
		// Slowest summarizes the flight recorder's worst retained
		// requests; Dumps lists SLO/fault freeze events.
		Slowest []trace.TraceSummary `json:"slowest_requests,omitempty"`
		Dumps   []*trace.DumpRecord  `json:"dumps,omitempty"`
	}{Stats: out}
	if rec := s.tracer.Recorder(); rec != nil {
		body.Slowest = rec.Slowest(8)
		body.Dumps = rec.Dumps()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pimdnn/internal/dpu"
	"pimdnn/internal/trace"
)

// TestServeTracingEndToEnd fires concurrent requests at a tracing
// server and asserts each yields an exportable span tree reaching from
// the HTTP handler down to the per-DPU kernels, served as Perfetto
// trace-event JSON on /v1/trace/{id}.
func TestServeTracingEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, serveConfig{traceSample: 1, traceRing: 32})

	const reqs = 6
	ids := make([]uint64, reqs)
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: int64(i)})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			ids[i] = out.TraceID
		}(i)
	}
	wg.Wait()

	for i, id := range ids {
		if id == 0 {
			t.Fatalf("request %d got no trace ID with sample=1", i)
		}
	}

	// Every trace must export as loadable Perfetto JSON whose slices
	// span the whole stack: request root, admission, queue wait, batch
	// execution, and at least one DPU kernel.
	for _, id := range ids {
		resp, err := http.Get(fmt.Sprintf("%s/v1/trace/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trace %d: status %d: %s", id, resp.StatusCode, body)
		}
		var doc struct {
			TraceEvents []trace.TraceEvent `json:"traceEvents"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("trace %d is not valid JSON: %v", id, err)
		}
		names := map[string]bool{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" {
				names[ev.Name] = true
				if ev.Pid != uint64(id) {
					t.Errorf("trace %d: slice %q has pid %d", id, ev.Name, ev.Pid)
				}
			}
		}
		for _, want := range []string{"infer", "admission", "queue_wait", "batch_exec", "dpu_kernel"} {
			if !names[want] {
				t.Errorf("trace %d missing span %q (have %v)", id, want, names)
			}
		}
	}

	// The last-trace alias resolves.
	resp, err := http.Get(ts.URL + "/v1/trace/last")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/v1/trace/last: status %d", resp.StatusCode)
	}

	// The stats endpoint surfaces the flight-recorder summary.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Slowest []trace.TraceSummary `json:"slowest_requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats.Slowest) == 0 {
		t.Fatal("stats endpoint reports no slowest_requests")
	}
	if stats.Slowest[0].Model != "tiny" || stats.Slowest[0].Spans < 5 {
		t.Errorf("slowest summary %+v, want model tiny with a full span tree", stats.Slowest[0])
	}
}

// TestServeTracingDisabled: the default config keeps tracing off —
// no trace IDs, 404 on the trace endpoint.
func TestServeTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, serveConfig{})
	resp, out := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.TraceID != 0 {
		t.Errorf("untraced server minted trace ID %d", out.TraceID)
	}
	r2, err := http.Get(ts.URL + "/v1/trace/last")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("/v1/trace with tracing off: status %d, want 404", r2.StatusCode)
	}
}

// TestServeTracingSampled: with 1-in-N sampling only a fraction of
// requests carry trace IDs, and unsampled requests still succeed.
func TestServeTracingSampled(t *testing.T) {
	_, ts := newTestServer(t, serveConfig{traceSample: 4, traceRing: 16})
	traced := 0
	for i := 0; i < 8; i++ {
		resp, out := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: int64(i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if out.TraceID != 0 {
			traced++
		}
	}
	if traced != 2 {
		t.Errorf("traced %d of 8 with sample=4, want 2", traced)
	}
}

// TestServeSLOBreachDumps: a sub-nanosecond SLO makes every request a
// breach; the flight recorder must dump with the breach reason, and the
// dump must surface on /v1/stats and at the onDump sink.
func TestServeSLOBreachDumps(t *testing.T) {
	var mu sync.Mutex
	var sunk []string
	s, ts := newTestServer(t, serveConfig{
		traceSample: 1, traceRing: 16, slo: time.Nanosecond,
		onDump: func(d *trace.DumpRecord) {
			mu.Lock()
			sunk = append(sunk, d.Reason)
			mu.Unlock()
		},
	})
	resp, out := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	dumps := s.tracer.Recorder().Dumps()
	if len(dumps) == 0 {
		t.Fatal("SLO breach produced no flight-recorder dump")
	}
	d := dumps[len(dumps)-1]
	if !strings.HasPrefix(d.Reason, "slo_breach:") || !strings.Contains(d.Reason, "model=tiny") {
		t.Errorf("dump reason %q", d.Reason)
	}
	// The breaching trace itself is in the dump (root ended before Dump).
	found := false
	for _, id := range d.TraceIDs {
		if uint64(id) == out.TraceID {
			found = true
		}
	}
	if !found {
		t.Errorf("breaching trace %d absent from dump IDs %v", out.TraceID, d.TraceIDs)
	}
	mu.Lock()
	if len(sunk) == 0 {
		t.Error("onDump sink never invoked")
	}
	mu.Unlock()

	var stats struct {
		Dumps []*trace.DumpRecord `json:"dumps"`
	}
	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if len(stats.Dumps) == 0 {
		t.Error("stats endpoint hides flight-recorder dumps")
	}
}

// TestServeFaultDumps: killing the whole array mid-service makes the
// next request fail, and that failure must trigger a flight-recorder
// dump carrying the traces that led up to it.
func TestServeFaultDumps(t *testing.T) {
	s, ts := newTestServer(t, serveConfig{traceSample: 1, traceRing: 16})

	// A healthy request first, so the recorder holds pre-fault context.
	if resp, _ := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request: status %d", resp.StatusCode)
	}

	s.sys.InjectFaults(dpu.FaultPlan{Seed: 7, DeadFrac: 1.0, DeadAfterLaunches: 1})
	resp, _ := postInfer(t, ts.URL, inferRequest{Model: "tiny", Seed: 2})
	if resp.StatusCode == http.StatusOK {
		t.Fatal("request succeeded on an all-dead array")
	}

	dumps := s.tracer.Recorder().Dumps()
	if len(dumps) == 0 {
		t.Fatal("faulted batch produced no flight-recorder dump")
	}
	d := dumps[len(dumps)-1]
	if !strings.HasPrefix(d.Reason, "error:") && !strings.HasPrefix(d.Reason, "fault:") {
		t.Errorf("dump reason %q, want error:/fault: prefix", d.Reason)
	}
	if len(d.Traces) == 0 {
		t.Error("fault dump carries no traces")
	}
}

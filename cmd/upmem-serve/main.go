// Command upmem-serve is an HTTP/JSON inference server over the
// simulated UPMEM system: it keeps several YOLO-family models'
// weights MRAM-resident in a shared LRU cache, coalesces concurrent
// requests into image-per-DPU waves (dynamic batching up to a latency
// deadline), and sheds load with 503 + Retry-After once a model's
// queue is full. Serving metrics (p50/p99 latency, queue wait, batch
// size) ride the same registry the simulator's counters use, exposed
// at /metrics and optionally on a separate -metrics-addr listener.
//
// Endpoints:
//
//	POST /v1/infer      {"model":"tiny","seed":7}  or  {"model":...,"input":[...]}
//	GET  /v1/models     configured models + weight-cache occupancy
//	GET  /v1/stats      per-model request counts, latency quantiles,
//	                    slowest traced requests, flight-recorder dumps
//	GET  /v1/trace/{id} one request's span tree as Perfetto JSON
//	                    ({id} from an infer response, or "last")
//	GET  /metrics       Prometheus text (or ?format=json)
//	GET  /healthz
//
// Every request (subject to -trace-sample) carries a span tree from
// HTTP admission through queue wait, batch join, per-layer GEMMs, and
// the exec engine's scatter/launch/gather waves down to per-DPU kernel
// spans; completed traces land in a flight-recorder ring that freezes
// itself (a "dump") when a request breaches -slo or a DPU fault report
// surfaces.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pimdnn/internal/dpu"
	"pimdnn/internal/metrics"
	"pimdnn/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "upmem-serve:", err)
		os.Exit(1)
	}
}

// parseModels parses -models: comma-separated name=SIZExWIDTHDIV
// entries, e.g. "tiny=64x32,lite=96x16".
func parseModels(arg string) ([]modelSpec, error) {
	var specs []modelSpec
	for _, entry := range strings.Split(arg, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, dims, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("model entry %q: want name=SIZExWIDTHDIV", entry)
		}
		sizeStr, divStr, ok := strings.Cut(dims, "x")
		if !ok {
			return nil, fmt.Errorf("model entry %q: want name=SIZExWIDTHDIV", entry)
		}
		size, err := strconv.Atoi(sizeStr)
		if err != nil {
			return nil, fmt.Errorf("model entry %q: bad size: %v", entry, err)
		}
		div, err := strconv.Atoi(divStr)
		if err != nil {
			return nil, fmt.Errorf("model entry %q: bad width divisor: %v", entry, err)
		}
		specs = append(specs, modelSpec{
			name: name, size: size, widthDiv: div, classes: 4, seed: 1,
		})
	}
	return specs, nil
}

func run() error {
	var (
		addr        = flag.String("addr", "localhost:8090", "serve address")
		metricsAddr = flag.String("metrics-addr", "", "optional extra metrics listener (e.g. localhost:9300)")
		dpus        = flag.Int("dpus", 8, "DPUs to allocate")
		tasklets    = flag.Int("tasklets", 11, "tasklets per DPU (ignored with -plan)")
		planFlag    = flag.Bool("plan", false, "auto-map per-layer tasklet counts with the cost-model planner")
		optFlag     = flag.Int("O", 3, "optimization level 0-3")
		models      = flag.String("models", "tiny=64x32", "models to serve: name=SIZExWIDTHDIV, comma-separated")
		maxBatch    = flag.Int("max-batch", 4, "images coalesced into one wave")
		maxWait     = flag.Duration("max-wait", 20*time.Millisecond, "batching deadline after the first request")
		queueCap    = flag.Int("queue", 64, "per-model admission queue bound")
		cacheBytes  = flag.Int64("weight-cache", 4<<20, "per-DPU weight arena bytes (8-aligned)")
		traceSample = flag.Int("trace-sample", 1, "trace 1 in N requests (0 disables tracing)")
		traceRing   = flag.Int("trace-ring", 64, "flight-recorder capacity in completed traces")
		slo         = flag.Duration("slo", 0, "latency SLO; a breach dumps the flight recorder (0 disables)")
	)
	flag.Parse()

	specs, err := parseModels(*models)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	s, err := newServer(serveConfig{
		dpus: *dpus, tasklets: *tasklets, autoMap: *planFlag, opt: dpu.OptLevel(*optFlag),
		specs: specs, maxBatch: *maxBatch, maxWait: *maxWait,
		queueCap: *queueCap, cacheBytes: *cacheBytes, reg: reg,
		traceSample: *traceSample, traceRing: *traceRing, slo: *slo,
		onDump: func(d *trace.DumpRecord) {
			fmt.Fprintf(os.Stderr, "flight recorder dump (%s): %d traces retained\n",
				d.Reason, len(d.TraceIDs))
		},
	})
	if err != nil {
		return err
	}
	defer s.Stop()

	if *metricsAddr != "" {
		bound, shutdown, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Printf("metrics on http://%s/metrics\n", bound)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.handler(), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	mapping := fmt.Sprintf("%d tasklets", *tasklets)
	if *planFlag {
		mapping = "auto-mapped"
	}
	fmt.Printf("serving %d model(s) on http://%s (%d DPUs, %s, batch<=%d, wait<=%v)\n",
		len(specs), ln.Addr(), *dpus, mapping, *maxBatch, *maxWait)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("\nshutting down")
		_ = srv.Close()
		return nil
	case err := <-done:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}

// Command upmem-top is a live terminal view of a running PIM workload.
// It polls the JSON snapshot endpoint a -metrics-addr process serves
// (cmd/experiments, or anything that wires metrics.Serve) and renders
// per-DPU utilization bars from pim_dpu_cycles_total deltas plus a
// one-screen summary of transfers, queue depth, waves, and faults.
//
// At full-array scale 2,560 per-DPU bars do not fit a screen; -by-rank
// folds them into one row per DIMM rank (64 DPUs by default, see
// -rank-size) showing the min/mean/max utilization inside the rank.
//
// Usage:
//
//	upmem-top -addr localhost:9100 -interval 500ms
//	upmem-top -addr localhost:9100 -once       # single snapshot, no clear
//	upmem-top -addr localhost:9100 -by-rank    # one row per 64-DPU rank
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"pimdnn/internal/dpu"
	"pimdnn/internal/metrics"
	"pimdnn/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "upmem-top:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "localhost:9100", "metrics endpoint host:port (the target's -metrics-addr)")
	interval := flag.Duration("interval", time.Second, "poll interval")
	count := flag.Int("count", 0, "exit after this many frames (0 = until interrupted)")
	once := flag.Bool("once", false, "print one frame and exit (no screen clearing)")
	width := flag.Int("width", 40, "utilization bar width in columns")
	byRank := flag.Bool("by-rank", false, "aggregate DPUs into one row per rank (min/mean/max utilization)")
	rankSize := flag.Int("rank-size", dpu.DPUsPerRank, "DPUs per rank for -by-rank aggregation")
	serveAddr := flag.String("serve-addr", "",
		"upmem-serve address (e.g. localhost:8090) for the slowest-requests panel; empty disables")
	flag.Parse()

	group := 0
	if *byRank {
		if *rankSize < 1 {
			return fmt.Errorf("-rank-size %d must be positive", *rankSize)
		}
		group = *rankSize
	}

	url := fmt.Sprintf("http://%s/metrics?format=json", *addr)
	if *once {
		*count = 1
	}
	client := pollClient(*interval)
	var prev metrics.Snapshot
	first := true
	for frame := 0; *count == 0 || frame < *count; frame++ {
		if !first {
			time.Sleep(*interval)
		}
		cur, err := fetch(client, url)
		if err != nil {
			return err
		}
		out := Render(prev, cur, *interval, *width, group)
		if *serveAddr != "" {
			// The slowest-requests panel rides the serve frontend's
			// stats endpoint; a fetch error degrades to a note rather
			// than killing the live view.
			st, err := fetchStats(client, fmt.Sprintf("http://%s/v1/stats", *serveAddr))
			if err != nil {
				out += fmt.Sprintf("\n(slowest-requests panel unavailable: %v)\n", err)
			} else {
				out += RenderSlowest(st.Slowest, st.Dumps)
			}
		}
		if !*once {
			// Home the cursor and clear below: a flicker-free repaint.
			fmt.Print("\033[H\033[J")
		}
		fmt.Print(out)
		prev, first = cur, false
	}
	return nil
}

// serveStats is the subset of upmem-serve's /v1/stats body the panel
// consumes.
type serveStats struct {
	Slowest []trace.TraceSummary `json:"slowest_requests"`
	Dumps   []*trace.DumpRecord  `json:"dumps"`
}

// fetchStats polls one /v1/stats document.
func fetchStats(client *http.Client, url string) (serveStats, error) {
	var st serveStats
	resp, err := client.Get(url)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// RenderSlowest draws the slowest-recent-requests panel from the serve
// frontend's flight-recorder summaries plus any dump records. Pure
// function of its inputs, like Render, so the format is unit-testable.
func RenderSlowest(sums []trace.TraceSummary, dumps []*trace.DumpRecord) string {
	if len(sums) == 0 && len(dumps) == 0 {
		return "\nslowest recent requests: (no traces retained yet)\n"
	}
	var b strings.Builder
	b.WriteString("\nslowest recent requests:\n")
	fmt.Fprintf(&b, "  %-7s %-10s %5s %12s %12s %6s\n",
		"trace", "model", "batch", "total", "queue", "spans")
	for _, s := range sums {
		model := s.Model
		if model == "" {
			model = s.Name
		}
		fmt.Fprintf(&b, "  %-7d %-10s %5d %12v %12v %6d\n",
			s.ID, model, s.BatchSize,
			s.Duration.Round(10*time.Microsecond),
			s.QueueWait.Round(10*time.Microsecond), s.Spans)
	}
	for _, d := range dumps {
		fmt.Fprintf(&b, "  dump: %s (%d traces)\n", d.Reason, len(d.TraceIDs))
	}
	return b.String()
}

// pollTimeoutFloor keeps very fast poll intervals from turning into
// sub-second request deadlines that a loaded endpoint can't meet.
const pollTimeoutFloor = time.Second

// pollClient builds the snapshot-polling HTTP client. Its timeout is
// derived from the poll interval — twice the interval, floored at one
// second — so a stalled metrics endpoint fails the frame (and surfaces
// an error) instead of hanging the live view forever, which is what the
// previous bare http.Get did.
func pollClient(interval time.Duration) *http.Client {
	timeout := 2 * interval
	if timeout < pollTimeoutFloor {
		timeout = pollTimeoutFloor
	}
	return &http.Client{Timeout: timeout}
}

// fetch polls one JSON snapshot.
func fetch(client *http.Client, url string) (metrics.Snapshot, error) {
	var s metrics.Snapshot
	resp, err := client.Get(url)
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	err = metrics.ReadJSON(resp.Body, &s)
	return s, err
}

// counterSum totals every series of one counter family.
func counterSum(s metrics.Snapshot, name string) uint64 {
	var v uint64
	for _, c := range s.Counters {
		if c.Name == name {
			v += c.Value
		}
	}
	return v
}

// counterLabeled returns the series of a family with the given label
// value, 0 when absent.
func counterLabeled(s metrics.Snapshot, name, labelVal string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name && c.LabelVal == labelVal {
			return c.Value
		}
	}
	return 0
}

// gaugeVal returns one gauge's value, 0 when absent.
func gaugeVal(s metrics.Snapshot, name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// dpuSeries collects one per-DPU counter family in snapshot order
// (numeric-aware, so dpu 2 precedes dpu 10).
func dpuSeries(s metrics.Snapshot, name string) []metrics.CounterSnap {
	var out []metrics.CounterSnap
	for _, c := range s.Counters {
		if c.Name == name && c.LabelKey == "dpu" {
			out = append(out, c)
		}
	}
	return out
}

// bar renders n/max as a width-column bar.
func bar(n, max uint64, width int) string {
	if width < 1 {
		width = 1
	}
	fill := 0
	if max > 0 {
		fill = int(n * uint64(width) / max)
		if n > 0 && fill == 0 {
			fill = 1
		}
	}
	return strings.Repeat("#", fill) + strings.Repeat(".", width-fill)
}

// Render draws one frame from two successive snapshots: per-DPU
// utilization bars scaled to the busiest DPU's cycle delta over the
// interval, then the host/engine summary. rankSize > 0 folds the DPUs
// into one row per rank of that width with the min/mean/max delta
// inside each rank; 0 keeps per-DPU rows. It is a pure function of its
// inputs so the frame format is unit-testable.
func Render(prev, cur metrics.Snapshot, interval time.Duration, width, rankSize int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "upmem-top — interval %v\n\n", interval)

	cyc := dpuSeries(cur, "pim_dpu_cycles_total")
	if len(cyc) == 0 {
		b.WriteString("(no pim_dpu_cycles_total series yet — is the workload running?)\n")
	}
	// Delta per DPU against the previous frame; the first frame shows
	// totals since the registry was armed.
	deltas := make([]uint64, len(cyc))
	var maxD, totD uint64
	for i, c := range cyc {
		d := c.Value - counterLabeled(prev, "pim_dpu_cycles_total", c.LabelVal)
		deltas[i] = d
		totD += d
		if d > maxD {
			maxD = d
		}
	}
	if rankSize > 0 {
		renderRanks(&b, cur, cyc, deltas, width, rankSize)
	} else {
		for i, c := range cyc {
			launches := counterLabeled(cur, "pim_dpu_launches_total", c.LabelVal)
			faults := counterLabeled(cur, "pim_dpu_faults_total", c.LabelVal)
			status := ""
			if faults > 0 {
				status = fmt.Sprintf("  faults=%d", faults)
			}
			fmt.Fprintf(&b, "dpu%-4s %s %12d cyc  launches=%d%s\n",
				c.LabelVal, bar(deltas[i], maxD, width), deltas[i], launches, status)
		}
	}
	if len(cyc) > 0 {
		fmt.Fprintf(&b, "\ntotal Δcycles: %d across %d DPUs\n", totD, len(cyc))
	}

	fmt.Fprintf(&b, "\nhost: xfer to_dpu=%dB from_dpu=%dB  queue_depth=%d  pool_shard_runs=%d\n",
		counterLabeled(cur, "pim_host_xfer_bytes_total", "to_dpu"),
		counterLabeled(cur, "pim_host_xfer_bytes_total", "from_dpu"),
		gaugeVal(cur, "pim_host_queue_depth"),
		histCount(cur, "pim_host_pool_shards"))
	fmt.Fprintf(&b, "exec: waves=%d retries=%d down_dpus=%d  fault_reports=%d\n",
		counterSum(cur, "pim_exec_waves_total"),
		counterSum(cur, "pim_exec_retries_total"),
		gaugeVal(cur, "pim_exec_down_dpus"),
		counterSum(cur, "pim_host_fault_reports_total"))

	if layers := layerRows(cur); len(layers) > 0 {
		fmt.Fprintf(&b, "\nlayers (cycles):\n")
		for _, l := range layers {
			fmt.Fprintf(&b, "  %-24s %d\n", l.LabelVal, l.Value)
		}
	}
	return b.String()
}

// rankRow aggregates one rank's per-DPU cycle deltas.
type rankRow struct {
	dpus     int
	min, max uint64
	sum      uint64
	faults   uint64
}

// renderRanks writes one row per rank: a bar of the rank's mean delta
// scaled to the busiest rank's mean, then the min/mean/max spread inside
// the rank — a flat spread is a balanced rank, a wide one means the
// shard plan left some of its DPUs idle.
func renderRanks(b *strings.Builder, cur metrics.Snapshot, cyc []metrics.CounterSnap, deltas []uint64, width, rankSize int) {
	rows := map[int]*rankRow{}
	maxRank := -1
	for i, c := range cyc {
		id, err := strconv.Atoi(c.LabelVal)
		if err != nil {
			continue // not a numeric DPU label; skip rather than misfile
		}
		r := id / rankSize
		row := rows[r]
		if row == nil {
			row = &rankRow{min: deltas[i]}
			rows[r] = row
			if r > maxRank {
				maxRank = r
			}
		}
		d := deltas[i]
		row.dpus++
		row.sum += d
		if d < row.min {
			row.min = d
		}
		if d > row.max {
			row.max = d
		}
		row.faults += counterLabeled(cur, "pim_dpu_faults_total", c.LabelVal)
	}
	var maxMean uint64
	for _, row := range rows {
		if m := row.sum / uint64(row.dpus); m > maxMean {
			maxMean = m
		}
	}
	for r := 0; r <= maxRank; r++ {
		row := rows[r]
		if row == nil {
			continue
		}
		mean := row.sum / uint64(row.dpus)
		status := ""
		if row.faults > 0 {
			status = fmt.Sprintf("  faults=%d", row.faults)
		}
		fmt.Fprintf(b, "rank%-3d %s min %12d  mean %12d  max %12d cyc  dpus=%d%s\n",
			r, bar(mean, maxMean, width), row.min, mean, row.max, row.dpus, status)
	}
}

// histCount returns one histogram family's observation count.
func histCount(s metrics.Snapshot, name string) uint64 {
	var v uint64
	for _, h := range s.Histograms {
		if h.Name == name {
			v += h.Count
		}
	}
	return v
}

// layerRows collects the per-layer cycle counters in snapshot order.
func layerRows(s metrics.Snapshot) []metrics.CounterSnap {
	var out []metrics.CounterSnap
	for _, c := range s.Counters {
		if c.Name == "pim_layer_cycles_total" && c.LabelKey == "layer" {
			out = append(out, c)
		}
	}
	return out
}

package main

import (
	"strings"
	"testing"
	"time"

	"pimdnn/internal/metrics"
)

func snap(cycles []uint64, launches []uint64) metrics.Snapshot {
	var s metrics.Snapshot
	for i, c := range cycles {
		v := string(rune('0' + i))
		s.Counters = append(s.Counters, metrics.CounterSnap{
			Name: "pim_dpu_cycles_total", LabelKey: "dpu", LabelVal: v, Value: c,
		})
		s.Counters = append(s.Counters, metrics.CounterSnap{
			Name: "pim_dpu_launches_total", LabelKey: "dpu", LabelVal: v, Value: launches[i],
		})
	}
	s.Counters = append(s.Counters,
		metrics.CounterSnap{Name: "pim_host_xfer_bytes_total", LabelKey: "dir", LabelVal: "to_dpu", Value: 4096},
		metrics.CounterSnap{Name: "pim_host_xfer_bytes_total", LabelKey: "dir", LabelVal: "from_dpu", Value: 1024},
		metrics.CounterSnap{Name: "pim_exec_waves_total", Value: 7},
		metrics.CounterSnap{Name: "pim_layer_cycles_total", LabelKey: "layer", LabelVal: "yolo_conv000", Value: 5000},
	)
	s.Gauges = append(s.Gauges,
		metrics.GaugeSnap{Name: "pim_host_queue_depth", Value: 2},
		metrics.GaugeSnap{Name: "pim_exec_down_dpus", Value: 1},
	)
	return s
}

func TestRenderDeltasAndBars(t *testing.T) {
	prev := snap([]uint64{100, 100}, []uint64{1, 1})
	cur := snap([]uint64{300, 200}, []uint64{2, 2})
	out := Render(prev, cur, time.Second, 10, 0)

	// DPU 0 advanced 200 cycles, DPU 1 advanced 100: the busiest DPU
	// fills the bar, the other fills half of it.
	if !strings.Contains(out, "dpu0    ##########          200 cyc") {
		t.Errorf("dpu0 row wrong:\n%s", out)
	}
	if !strings.Contains(out, "dpu1    #####.....          100 cyc") {
		t.Errorf("dpu1 row wrong:\n%s", out)
	}
	if !strings.Contains(out, "total Δcycles: 300 across 2 DPUs") {
		t.Errorf("total line wrong:\n%s", out)
	}
	if !strings.Contains(out, "to_dpu=4096B from_dpu=1024B") {
		t.Errorf("xfer line wrong:\n%s", out)
	}
	if !strings.Contains(out, "waves=7") || !strings.Contains(out, "down_dpus=1") {
		t.Errorf("exec line wrong:\n%s", out)
	}
	if !strings.Contains(out, "yolo_conv000") {
		t.Errorf("layer rows missing:\n%s", out)
	}
}

func TestRenderEmptySnapshot(t *testing.T) {
	out := Render(metrics.Snapshot{}, metrics.Snapshot{}, time.Second, 10, 0)
	if !strings.Contains(out, "no pim_dpu_cycles_total series yet") {
		t.Errorf("empty-snapshot hint missing:\n%s", out)
	}
}

// TestRenderByRank folds four DPUs into two ranks of two and checks the
// per-rank min/mean/max spread: rank 0 advanced {200, 100}, rank 1
// {400, 0}, so rank 1's fuller mean owns the full bar and its spread is
// the widest.
func TestRenderByRank(t *testing.T) {
	prev := snap([]uint64{100, 100, 100, 100}, []uint64{1, 1, 1, 1})
	cur := snap([]uint64{300, 200, 500, 100}, []uint64{2, 2, 2, 2})
	out := Render(prev, cur, time.Second, 10, 2)

	if !strings.Contains(out, "rank0   #######... min          100  mean          150  max          200 cyc  dpus=2") {
		t.Errorf("rank0 row wrong:\n%s", out)
	}
	if !strings.Contains(out, "rank1   ########## min            0  mean          200  max          400 cyc  dpus=2") {
		t.Errorf("rank1 row wrong:\n%s", out)
	}
	// No per-DPU rows in rank mode; the totals line still sums every DPU.
	if strings.Contains(out, "dpu0 ") {
		t.Errorf("per-DPU rows leaked into rank mode:\n%s", out)
	}
	if !strings.Contains(out, "total Δcycles: 700 across 4 DPUs") {
		t.Errorf("total line wrong:\n%s", out)
	}
}

func TestBarMinimumFill(t *testing.T) {
	// A nonzero delta never renders as an empty bar.
	if got := bar(1, 1000, 10); !strings.HasPrefix(got, "#") {
		t.Errorf("bar(1,1000,10) = %q, want leading #", got)
	}
	if got := bar(0, 1000, 10); got != ".........." {
		t.Errorf("bar(0,1000,10) = %q", got)
	}
}

package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pimdnn/internal/metrics"
	"pimdnn/internal/trace"
)

func snap(cycles []uint64, launches []uint64) metrics.Snapshot {
	var s metrics.Snapshot
	for i, c := range cycles {
		v := string(rune('0' + i))
		s.Counters = append(s.Counters, metrics.CounterSnap{
			Name: "pim_dpu_cycles_total", LabelKey: "dpu", LabelVal: v, Value: c,
		})
		s.Counters = append(s.Counters, metrics.CounterSnap{
			Name: "pim_dpu_launches_total", LabelKey: "dpu", LabelVal: v, Value: launches[i],
		})
	}
	s.Counters = append(s.Counters,
		metrics.CounterSnap{Name: "pim_host_xfer_bytes_total", LabelKey: "dir", LabelVal: "to_dpu", Value: 4096},
		metrics.CounterSnap{Name: "pim_host_xfer_bytes_total", LabelKey: "dir", LabelVal: "from_dpu", Value: 1024},
		metrics.CounterSnap{Name: "pim_exec_waves_total", Value: 7},
		metrics.CounterSnap{Name: "pim_layer_cycles_total", LabelKey: "layer", LabelVal: "yolo_conv000", Value: 5000},
	)
	s.Gauges = append(s.Gauges,
		metrics.GaugeSnap{Name: "pim_host_queue_depth", Value: 2},
		metrics.GaugeSnap{Name: "pim_exec_down_dpus", Value: 1},
	)
	return s
}

func TestRenderDeltasAndBars(t *testing.T) {
	prev := snap([]uint64{100, 100}, []uint64{1, 1})
	cur := snap([]uint64{300, 200}, []uint64{2, 2})
	out := Render(prev, cur, time.Second, 10, 0)

	// DPU 0 advanced 200 cycles, DPU 1 advanced 100: the busiest DPU
	// fills the bar, the other fills half of it.
	if !strings.Contains(out, "dpu0    ##########          200 cyc") {
		t.Errorf("dpu0 row wrong:\n%s", out)
	}
	if !strings.Contains(out, "dpu1    #####.....          100 cyc") {
		t.Errorf("dpu1 row wrong:\n%s", out)
	}
	if !strings.Contains(out, "total Δcycles: 300 across 2 DPUs") {
		t.Errorf("total line wrong:\n%s", out)
	}
	if !strings.Contains(out, "to_dpu=4096B from_dpu=1024B") {
		t.Errorf("xfer line wrong:\n%s", out)
	}
	if !strings.Contains(out, "waves=7") || !strings.Contains(out, "down_dpus=1") {
		t.Errorf("exec line wrong:\n%s", out)
	}
	if !strings.Contains(out, "yolo_conv000") {
		t.Errorf("layer rows missing:\n%s", out)
	}
}

func TestRenderEmptySnapshot(t *testing.T) {
	out := Render(metrics.Snapshot{}, metrics.Snapshot{}, time.Second, 10, 0)
	if !strings.Contains(out, "no pim_dpu_cycles_total series yet") {
		t.Errorf("empty-snapshot hint missing:\n%s", out)
	}
}

// TestRenderByRank folds four DPUs into two ranks of two and checks the
// per-rank min/mean/max spread: rank 0 advanced {200, 100}, rank 1
// {400, 0}, so rank 1's fuller mean owns the full bar and its spread is
// the widest.
func TestRenderByRank(t *testing.T) {
	prev := snap([]uint64{100, 100, 100, 100}, []uint64{1, 1, 1, 1})
	cur := snap([]uint64{300, 200, 500, 100}, []uint64{2, 2, 2, 2})
	out := Render(prev, cur, time.Second, 10, 2)

	if !strings.Contains(out, "rank0   #######... min          100  mean          150  max          200 cyc  dpus=2") {
		t.Errorf("rank0 row wrong:\n%s", out)
	}
	if !strings.Contains(out, "rank1   ########## min            0  mean          200  max          400 cyc  dpus=2") {
		t.Errorf("rank1 row wrong:\n%s", out)
	}
	// No per-DPU rows in rank mode; the totals line still sums every DPU.
	if strings.Contains(out, "dpu0 ") {
		t.Errorf("per-DPU rows leaked into rank mode:\n%s", out)
	}
	if !strings.Contains(out, "total Δcycles: 700 across 4 DPUs") {
		t.Errorf("total line wrong:\n%s", out)
	}
}

func TestBarMinimumFill(t *testing.T) {
	// A nonzero delta never renders as an empty bar.
	if got := bar(1, 1000, 10); !strings.HasPrefix(got, "#") {
		t.Errorf("bar(1,1000,10) = %q, want leading #", got)
	}
	if got := bar(0, 1000, 10); got != ".........." {
		t.Errorf("bar(0,1000,10) = %q", got)
	}
}

// TestPollClientTimeout pins the timeout derivation: twice the poll
// interval, floored at one second so fast intervals don't produce
// unservable deadlines.
func TestPollClientTimeout(t *testing.T) {
	cases := []struct {
		interval, want time.Duration
	}{
		{100 * time.Millisecond, time.Second},
		{500 * time.Millisecond, time.Second},
		{time.Second, 2 * time.Second},
		{5 * time.Second, 10 * time.Second},
	}
	for _, c := range cases {
		if got := pollClient(c.interval).Timeout; got != c.want {
			t.Errorf("pollClient(%v).Timeout = %v, want %v", c.interval, got, c.want)
		}
	}
}

// TestFetchTimesOutOnStalledEndpoint reproduces the hung-live-view bug:
// a metrics endpoint that accepts the connection but never responds must
// fail the fetch once the derived timeout elapses, not block forever.
func TestFetchTimesOutOnStalledEndpoint(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall // hold the response until the test ends
	}))
	// Release the handler before Close: httptest's Close waits for
	// outstanding requests, so the reverse order deadlocks.
	defer func() {
		close(stall)
		srv.Close()
	}()

	client := &http.Client{Timeout: 50 * time.Millisecond}
	done := make(chan error, 1)
	go func() {
		_, err := fetch(client, srv.URL)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("fetch returned nil error from a stalled endpoint")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fetch still blocked on a stalled endpoint after 2s")
	}
}

// TestRenderSlowest covers the slowest-requests panel: populated rows,
// model fallback to the root span name, dump lines, and the empty case.
func TestRenderSlowest(t *testing.T) {
	sums := []trace.TraceSummary{
		{ID: 7, Name: "infer", Model: "yolov3", BatchSize: 4,
			Duration: 1520 * time.Microsecond, QueueWait: 310 * time.Microsecond, Spans: 42},
		{ID: 3, Name: "profile_gemm", // no model attr: falls back to name
			Duration: 800 * time.Microsecond, Spans: 9},
	}
	dumps := []*trace.DumpRecord{
		{Reason: "slo_breach:model=yolov3", TraceIDs: []trace.TraceID{7, 3}},
	}
	out := RenderSlowest(sums, dumps)
	if !strings.Contains(out, "slowest recent requests:") {
		t.Errorf("missing panel header:\n%s", out)
	}
	for _, want := range []string{"7", "yolov3", "1.52ms", "310µs", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("panel missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "profile_gemm") {
		t.Errorf("model fallback to span name missing:\n%s", out)
	}
	if !strings.Contains(out, "dump: slo_breach:model=yolov3 (2 traces)") {
		t.Errorf("dump line missing:\n%s", out)
	}
	if got := RenderSlowest(nil, nil); !strings.Contains(got, "(no traces retained yet)") {
		t.Errorf("empty case = %q", got)
	}
}

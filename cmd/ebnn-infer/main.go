// Command ebnn-infer runs the chapter 4.1 experiments: eBNN digit
// classification on the simulated UPMEM system with the
// multiple-images-per-DPU mapping, comparing the default floating-point
// architecture (Fig 4.2a) against the LUT architecture (Fig 4.2b) and
// sweeping tasklets and DPU counts (Figs 4.3, 4.4, 4.7a, 4.7c).
package main

import (
	"flag"
	"fmt"
	"os"

	"pimdnn/internal/dpu"
	"pimdnn/internal/ebnn"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
	"pimdnn/internal/model"
	"pimdnn/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebnn-infer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dpus     = flag.Int("dpus", 4, "DPUs to allocate")
		tasklets = flag.Int("tasklets", 16, "tasklets per DPU")
		images   = flag.Int("images", 64, "test images to classify")
		train    = flag.Int("train", 500, "training images")
		optFlag  = flag.Int("O", 0, "optimization level 0-3")
		sweep    = flag.Bool("sweep", false, "run the tasklet and DPU-count sweeps")
	)
	flag.Parse()
	opt := dpu.OptLevel(*optFlag)

	fmt.Println("training eBNN on synthetic digits...")
	ds := mnist.Load(*train, *images, 11)
	m, err := ebnn.Train(ds, ebnn.DefaultTrainConfig())
	if err != nil {
		return err
	}
	fmt.Printf("host accuracy: train %.1f%%, test %.1f%%\n\n",
		m.Accuracy(ds.Train)*100, m.Accuracy(ds.Test)*100)

	// Fig 4.3 / 4.4: LUT vs default architecture on one DPU, 16 images.
	batch := ds.Test
	if len(batch) > 16 {
		batch = batch[:16]
	}
	type outcome struct {
		cycles   uint64
		seconds  float64
		correct  int
		floatOcc int
		prof     *trace.Profile
	}
	runArch := func(useLUT bool, nDPU, ntl int, imgs []mnist.Image) (outcome, error) {
		sys, err := host.NewSystem(nDPU, host.DefaultConfig(opt))
		if err != nil {
			return outcome{}, err
		}
		r, err := ebnn.NewRunner(sys, m, useLUT, ntl)
		if err != nil {
			return outcome{}, err
		}
		preds, st, err := r.Infer(imgs)
		if err != nil {
			return outcome{}, err
		}
		var o outcome
		o.cycles, o.seconds = st.Cycles, st.Seconds
		for i := range imgs {
			if preds[i] == imgs[i].Label {
				o.correct++
			}
		}
		o.floatOcc = len(sys.Profile().FloatSubroutines())
		o.prof = sys.Profile()
		return o, nil
	}

	withFloat, err := runArch(false, 1, *tasklets, batch)
	if err != nil {
		return err
	}
	withLUT, err := runArch(true, 1, *tasklets, batch)
	if err != nil {
		return err
	}
	fmt.Printf("== Fig 4.3: subroutine change from the LUT architecture ==\n")
	fmt.Printf("float subroutine kinds: %d -> %d\n", withFloat.floatOcc, withLUT.floatOcc)
	fmt.Print(trace.FormatDiff(trace.Diff(withFloat.prof, withLUT.prof)))
	fmt.Println()

	fmt.Printf("== Fig 4.4: 16-image completion time ==\n")
	fmt.Printf("default (float in DPU): %d cycles = %.4g s\n", withFloat.cycles, withFloat.seconds)
	fmt.Printf("LUT architecture:       %d cycles = %.4g s\n", withLUT.cycles, withLUT.seconds)
	fmt.Printf("LUT speedup: %.2fx (paper: 1.4x)\n\n", float64(withFloat.cycles)/float64(withLUT.cycles))

	// Headline batch on the requested system.
	all, err := runArch(true, *dpus, *tasklets, ds.Test)
	if err != nil {
		return err
	}
	fmt.Printf("== batch inference: %d images, %d DPUs, %d tasklets, %v ==\n",
		len(ds.Test), *dpus, *tasklets, opt)
	fmt.Printf("DPU accuracy %.1f%%, DPU time %.4g s, per-image %.4g s (paper single-DPU: 1.48e-3 s)\n\n",
		float64(all.correct)/float64(len(ds.Test))*100, all.seconds,
		all.seconds/float64((len(ds.Test)+15)/16*16/16)/16)

	if !*sweep {
		return nil
	}

	fmt.Printf("== Fig 4.7(a): tasklet speedup (16 images, LUT, 1 DPU) ==\n")
	var base uint64
	for _, ntl := range []int{1, 2, 4, 8, 11, 12, 16, 20, 24} {
		o, err := runArch(true, 1, ntl, batch)
		if err != nil {
			return err
		}
		if ntl == 1 {
			base = o.cycles
		}
		fmt.Printf("%2d tasklets: %10d cycles, speedup %.2f\n",
			ntl, o.cycles, float64(base)/float64(o.cycles))
	}

	fmt.Printf("\n== Fig 4.7(c): speedup vs CPU for increasing DPU counts ==\n")
	one, err := runArch(true, 1, *tasklets, batch)
	if err != nil {
		return err
	}
	perImageDPU := one.seconds / float64(len(batch))
	cpu := model.Xeon()
	series := cpu.SpeedupSeries(perImageDPU, ebnnCPUOps(m), []int{1, 4, 16, 64, 256, 1024, 2560})
	for _, pt := range series {
		fmt.Printf("%5.0f DPUs: speedup %8.2fx over %s\n", pt.X, pt.Cycles, cpu.Name)
	}
	return nil
}

// ebnnCPUOps estimates the host-CPU operations for one eBNN inference
// (binary conv + pool + activation + readout).
func ebnnCPUOps(m *ebnn.Model) float64 {
	conv := float64(ebnn.ConvSize * ebnn.ConvSize * m.F * 12)
	pool := float64(ebnn.PoolCells * m.F * 4)
	read := float64(m.FeatureLen() * mnist.NumClasses)
	return conv + pool + read
}

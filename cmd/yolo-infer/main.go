// Command yolo-infer runs the chapter 4.2 experiments: quantized YOLOv3
// with convolutions delegated to the simulated UPMEM system as
// Algorithm 2 GEMMs, one output row per DPU (Fig 4.6). It reports
// per-layer latency, the threading × optimization matrix (Fig 4.7b), and
// the analytic full-size estimate against the thesis's 65 s headline.
package main

import (
	"flag"
	"fmt"
	"os"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/yolo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "yolo-infer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dpus     = flag.Int("dpus", 8, "DPUs to allocate")
		tasklets = flag.Int("tasklets", 11, "tasklets per DPU")
		optFlag  = flag.Int("O", 3, "optimization level 0-3")
		size     = flag.Int("size", 64, "input resolution (multiple of 32)")
		widthDiv = flag.Int("widthdiv", 32, "channel width divisor (1 = full YOLOv3)")
		naive    = flag.Bool("naive", true, "use the thesis-faithful MRAM-bound kernel")
		matrix   = flag.Bool("matrix", false, "run the Fig 4.7(b) threading x optimization matrix")
		estimate = flag.Bool("estimate-full", true, "print the analytic full-size (416x416) estimate")
		layers   = flag.Bool("layers", false, "print per-layer latencies")
	)
	flag.Parse()
	opt := dpu.OptLevel(*optFlag)

	cfg := yolo.Config{InputSize: *size, Classes: 4, WidthDiv: *widthDiv, Seed: 1}
	net, err := yolo.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d conv layers, %.3g MACs (full YOLOv3-416: 3.3e10)\n",
		yolo.CountConvLayers(net.Defs), float64(net.MACs()))

	forward := func(opt dpu.OptLevel, tl int) (*yolo.ForwardStats, error) {
		sys, err := host.NewSystem(*dpus, host.DefaultConfig(opt))
		if err != nil {
			return nil, err
		}
		maxK, maxN := net.GEMMBounds()
		runner, err := gemm.NewRunner(sys, gemm.RunnerConfig{
			MaxK: maxK, MaxN: maxN, Tasklets: tl, Naive: *naive,
		})
		if err != nil {
			return nil, err
		}
		img := yolo.SyntheticScene(*size, 7)
		res, stats, err := net.Forward(img, runner)
		if err != nil {
			return nil, err
		}
		_ = res
		return stats, nil
	}

	stats, err := forward(opt, *tasklets)
	if err != nil {
		return err
	}
	fmt.Printf("single image on %d DPUs, %d tasklets, %v, naive=%v: %.4g s DPU time, max layer %.4g s\n",
		*dpus, *tasklets, opt, *naive, stats.Seconds, stats.MaxLayerSeconds())

	if *layers {
		fmt.Printf("\n%-6s %-6s %8s %12s %12s\n", "layer", "kind", "DPUs", "cycles", "seconds")
		for _, l := range stats.Layers {
			fmt.Printf("%-6d %-6v %8d %12d %12.4g\n", l.Layer, l.Kind, l.DPUsUsed, l.Cycles, l.Seconds)
		}
	}

	if *matrix {
		fmt.Printf("\n== Fig 4.7(b): threading x optimization ==\n")
		for _, m := range []struct {
			opt dpu.OptLevel
			tl  int
		}{{dpu.O0, 1}, {dpu.O0, 11}, {dpu.O3, 1}, {dpu.O3, 11}} {
			st, err := forward(m.opt, m.tl)
			if err != nil {
				return err
			}
			fmt.Printf("%v, %2d tasklets: %.4g s\n", m.opt, m.tl, st.Seconds)
		}
	}

	if *estimate {
		fmt.Printf("\n== analytic full-size estimate (416x416, 80 classes, 2560 DPUs) ==\n")
		full, err := yolo.New(yolo.FullConfig())
		if err != nil {
			return err
		}
		ec := yolo.DefaultEstimateConfig()
		ec.Naive = *naive
		total, perLayer, err := full.EstimateSeconds(ec)
		if err != nil {
			return err
		}
		var maxL, sum float64
		for _, s := range perLayer {
			sum += s
			if s > maxL {
				maxL = s
			}
		}
		fmt.Printf("total %.1f s per image (paper best case: 65 s)\n", total)
		fmt.Printf("max layer %.2f s (paper: ~6 s), mean layer %.2f s (paper: ~0.9 s)\n",
			maxL, sum/float64(len(perLayer)))
	}
	return nil
}

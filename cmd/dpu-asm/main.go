// Command dpu-asm is the developer tool for the miniature DPU ISA:
// assemble, disassemble and execute programs on a simulated DPU.
//
//	dpu-asm asm  prog.s         # assemble, print the IRAM word listing
//	dpu-asm dis  prog.s         # assemble then disassemble (round trip)
//	dpu-asm run  prog.s         # execute; dump registers, cycles, log
//	  -tasklets N   tasklet count (default 1)
//	  -O level      optimization level 0-3 (default 2)
//	  -demo         run the built-in demo program instead of a file
package main

import (
	"flag"
	"fmt"
	"os"

	"pimdnn/internal/dpu"
	"pimdnn/internal/isa"
)

const demoProgram = `
; demo: sum of squares 1..10, logged result in r2
	movi r1, 10
	movi r2, 0
loop:
	mul  r3, r1, r1
	add  r2, r2, r3
	addi r1, r1, -1
	bne  r1, r0, loop
	halt
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dpu-asm:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("dpu-asm", flag.ExitOnError)
	tasklets := fs.Int("tasklets", 1, "tasklet count for run")
	optFlag := fs.Int("O", 2, "optimization level 0-3")
	demo := fs.Bool("demo", false, "use the built-in demo program")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dpu-asm [flags] {asm|dis|run} [prog.s]")
		fs.PrintDefaults()
	}
	if len(os.Args) < 2 {
		fs.Usage()
		return fmt.Errorf("missing command")
	}
	cmd := os.Args[1]
	if err := fs.Parse(os.Args[2:]); err != nil {
		return err
	}

	src := demoProgram
	if !*demo {
		if fs.NArg() < 1 {
			return fmt.Errorf("command %q needs a program file (or -demo)", cmd)
		}
		raw, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		src = string(raw)
	}

	prog, err := isa.Assemble(src)
	if err != nil {
		return err
	}

	switch cmd {
	case "asm":
		fmt.Printf("%d instructions, %d bytes of IRAM (%d available)\n\n",
			len(prog.Ins), len(prog.Ins)*isa.WordSize, dpu.DefaultIRAMSize)
		for i, in := range prog.Ins {
			fmt.Printf("%4d  %016x  %v\n", i, in.Encode(), in)
		}
		return nil
	case "dis":
		fmt.Print(isa.Disassemble(prog))
		return nil
	case "run":
		return runProgram(prog, *tasklets, dpu.OptLevel(*optFlag))
	default:
		return fmt.Errorf("unknown command %q (want asm, dis or run)", cmd)
	}
}

func runProgram(prog isa.Program, tasklets int, opt dpu.OptLevel) error {
	d, err := dpu.New(dpu.DefaultConfig(opt))
	if err != nil {
		return err
	}
	if err := isa.Load(d, prog); err != nil {
		return err
	}
	finals := make(map[int]isa.Regs)
	st, err := d.Launch(tasklets, isa.Kernel(nil, func(tid int, r isa.Regs) {
		finals[tid] = r
	}))
	if err != nil {
		return err
	}
	fmt.Printf("completed: %d cycles = %v at %v, %d issue slots, %d DMA cycles\n",
		st.Cycles, st.Time, opt, st.IssueSlots, st.DMACycles)
	for tid := 0; tid < tasklets; tid++ {
		r := finals[tid]
		fmt.Printf("tasklet %d registers (non-zero):\n", tid)
		for i, v := range r {
			if v != 0 {
				fmt.Printf("  r%-2d = %11d (%#x)\n", i, int32(v), v)
			}
		}
	}
	if log := d.ReadLog(); log != "" {
		fmt.Printf("log:\n%s", log)
	}
	if rep := d.Profile().Report(); rep != "" {
		fmt.Printf("subroutines:\n%s", rep)
	}
	return nil
}

// Command pim-model prints the chapter 5 analytic model outputs: Tables
// 5.1-5.4 and the data series behind Figures 5.4-5.7.
package main

import (
	"flag"
	"fmt"
	"os"

	"pimdnn/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pim-model:", err)
		os.Exit(1)
	}
}

func run() error {
	sweeps := flag.Bool("sweeps", false, "print the Fig 5.5 sweep series as CSV")
	flag.Parse()

	fmt.Println("== Table 5.1: computational model, 8-bit AlexNet ==")
	fmt.Print(model.FormatTable51(model.Table51()))

	fmt.Println("\n== Table 5.2: Cop for multiplication by operand size ==")
	tab := model.Table52()
	fmt.Printf("%-8s %10s %10s %10s\n", "bits", "pPIM", "DRISA", "UPMEM")
	for _, bits := range []int{4, 8, 16, 32} {
		fmt.Printf("%-8d %10.6g %10.6g %10.6g\n", bits,
			tab["pPIM"][bits], tab["DRISA"][bits], tab["UPMEM"][bits])
	}

	fmt.Println("\n== Fig 5.4: pPIM adds-without-carry pattern ==")
	for _, bits := range []int{8, 16, 32} {
		fmt.Printf("%2d-bit: %v  (Algorithm 3 total adds: %d)\n",
			bits, model.PPIMAddsPattern(bits), model.PPIMAddsEstimate(bits))
	}

	fmt.Println("\n== Table 5.3: memory model, 8-bit AlexNet ==")
	fmt.Printf("%-8s %12s %12s %14s %12s %12s %12s\n",
		"PIM", "Ttransfer", "sizebuf(b)", "OPs/PE", "LocalOps", "Tmem(s)", "Ttot(s)")
	for _, r := range model.Table53() {
		fmt.Printf("%-8s %12.3g %12g %14g %12g %12.3g %12.3g\n",
			r.Name, r.TtransferS, r.SizeBufBits, r.OpsPerPE, r.LocalOps, r.TmemS, r.TtotS)
	}

	fmt.Println("\n== Fig 5.6: multiplication at 2560 PEs, 100000 operations ==")
	fmt.Printf("%-8s %6s %12s\n", "PIM", "bits", "cycles")
	for _, p := range model.Fig56() {
		fmt.Printf("%-8s %6d %12.6g\n", p.PIM, p.Bits, p.Cycles)
	}

	fmt.Println("\n== Table 5.4 / Fig 5.7: PIM benchmarking on eBNN and YOLOv3 (8-bit) ==")
	fmt.Print(model.FormatTable54(model.Table54Devices()))

	if *sweeps {
		fmt.Println("\n== Fig 5.5 sweep series (CSV) ==")
		fmt.Println("pim,sweep,bits,x,cycles")
		for _, p := range model.Architectures() {
			tops := model.LogSpace(100, 1e6, 25)
			for _, bits := range []int{8, 16, 32} {
				for _, pt := range p.TOPsSweep(bits, tops) {
					fmt.Printf("%s,tops,%d,%g,%g\n", p.Name, bits, pt.X, pt.Cycles)
				}
				pes := model.LogSpace(1, p.PEs, 25)
				for _, pt := range p.PESweep(bits, 100000, pes) {
					fmt.Printf("%s,pes,%d,%g,%g\n", p.Name, bits, pt.X, pt.Cycles)
				}
			}
		}
	}
	return nil
}

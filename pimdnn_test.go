// Tests of the public facade: everything a downstream user touches.
package pimdnn_test

import (
	"testing"

	"pimdnn"
)

func TestFacadeEBNNPipeline(t *testing.T) {
	ds := pimdnn.LoadDigits(150, 20, 3)
	if len(ds.Train) != 150 || len(ds.Test) != 20 {
		t.Fatalf("dataset sizes %d/%d", len(ds.Train), len(ds.Test))
	}
	cfg := pimdnn.DefaultEBNNTrainConfig()
	cfg.Epochs = 5
	model, err := pimdnn.TrainEBNN(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 2, Opt: pimdnn.O3})
	if err != nil {
		t.Fatal(err)
	}
	app, err := acc.DeployEBNN(model, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	preds, stats, err := app.Classify(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 20 || stats.Seconds <= 0 {
		t.Errorf("preds=%d stats=%+v", len(preds), stats)
	}
}

func TestFacadeYOLOPipeline(t *testing.T) {
	acc, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 4, Opt: pimdnn.O3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pimdnn.YOLOConfig{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 1}
	app, err := acc.DeployYOLO(cfg, pimdnn.YOLOOptions{Tasklets: 8, TileCols: 64})
	if err != nil {
		t.Fatal(err)
	}
	img := pimdnn.SyntheticScene(32, 1)
	res, stats, err := app.Detect(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.YoloOutputs) != 3 || stats.Seconds <= 0 {
		t.Errorf("outputs=%d stats=%.4g", len(res.YoloOutputs), stats.Seconds)
	}
}

func TestFacadeScheme(t *testing.T) {
	if pimdnn.ChooseScheme(300, 16) != pimdnn.MultiImagePerDPU {
		t.Error("small working set should batch images per DPU")
	}
	if pimdnn.ChooseScheme(1<<20, 11) != pimdnn.MultiDPUPerImage {
		t.Error("large working set should spread across DPUs")
	}
}

func TestFacadeModelCatalog(t *testing.T) {
	archs := pimdnn.PIMArchitectures()
	if len(archs) != 3 {
		t.Fatalf("architectures = %d", len(archs))
	}
	devs := pimdnn.PIMDevices()
	if len(devs) != 7 {
		t.Fatalf("devices = %d", len(devs))
	}
}

func TestFacadeEstimate(t *testing.T) {
	naive, err := pimdnn.EstimateYOLOSeconds(pimdnn.YOLOFull(), true)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := pimdnn.EstimateYOLOSeconds(pimdnn.YOLOFull(), false)
	if err != nil {
		t.Fatal(err)
	}
	if naive < 10 || naive > 200 {
		t.Errorf("naive estimate %.1f s, want the paper's order (65 s)", naive)
	}
	if tiled >= naive {
		t.Errorf("tiled kernel (%.1f s) should beat the thesis's kernel (%.1f s)", tiled, naive)
	}
	t.Logf("full YOLOv3: thesis-faithful %.1f s, WRAM-tiled improvement %.1f s", naive, tiled)
}

func TestFacadeAdvisor(t *testing.T) {
	recs := pimdnn.NewAdvisor().Analyze(pimdnn.RunInfo{Tasklets: 2, Opt: pimdnn.O0})
	if len(recs) < 2 {
		t.Errorf("advisor found %d issues with a 2-tasklet O0 run, want >= 2", len(recs))
	}
	if pimdnn.YOLOLite().InputSize%32 != 0 {
		t.Error("lite config has invalid input size")
	}
}

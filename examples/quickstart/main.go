// Quickstart: train an eBNN digit classifier on the host, deploy it to a
// simulated UPMEM system with the LUT architecture, and classify a batch
// of digits on the DPUs.
package main

import (
	"fmt"
	"log"

	"pimdnn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Generate a deterministic synthetic digit dataset and train the
	// network on the host (binary conv filters + batch-norm statistics
	// + softmax readout).
	ds := pimdnn.LoadDigits(500 /* train */, 32 /* test */, 1 /* seed */)
	model, err := pimdnn.TrainEBNN(ds, pimdnn.DefaultEBNNTrainConfig())
	if err != nil {
		return err
	}

	// Allocate a 4-DPU slice of the simulated UPMEM system at -O3 and
	// deploy with the host-built BN-BinAct lookup table (thesis
	// Fig 4.2b), 16 tasklets per DPU.
	acc, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 4, Opt: pimdnn.O3})
	if err != nil {
		return err
	}
	app, err := acc.DeployEBNN(model, true /* useLUT */, 16)
	if err != nil {
		return err
	}

	preds, stats, err := app.Classify(ds.Test)
	if err != nil {
		return err
	}
	correct := 0
	for i := range ds.Test {
		if preds[i] == ds.Test[i].Label {
			correct++
		}
	}
	fmt.Printf("classified %d digits on %d DPUs in %.4g s of DPU time\n",
		stats.Images, stats.DPUsUsed, stats.Seconds)
	fmt.Printf("accuracy: %d/%d (%.1f%%)\n",
		correct, len(ds.Test), 100*float64(correct)/float64(len(ds.Test)))
	fmt.Printf("throughput: %.0f images/s\n", stats.Throughput())
	return nil
}

// yolo-tiling: the thesis's chapter 4.2 workload — one synthetic scene
// through a 75-conv-layer quantized YOLOv3, every convolution lowered to
// an Algorithm 2 GEMM and spread one output row per DPU (Fig 4.6). The
// DPU result is verified bit-exactly against the host reference.
package main

import (
	"fmt"
	"log"

	"pimdnn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := pimdnn.YOLOConfig{InputSize: 64, Classes: 4, WidthDiv: 32, Seed: 1}
	acc, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 16, Opt: pimdnn.O3})
	if err != nil {
		return err
	}
	// The tiled (improved, §4.3.4) kernel; pass Naive: true for the
	// thesis-faithful MRAM-bound version.
	app, err := acc.DeployYOLO(cfg, pimdnn.YOLOOptions{Tasklets: 11})
	if err != nil {
		return err
	}
	net := app.Network()
	fmt.Printf("network: %d layers, %.3g MACs, input %dx%d\n",
		len(net.Defs), float64(net.MACs()), cfg.InputSize, cfg.InputSize)

	img := pimdnn.SyntheticScene(cfg.InputSize, 42)
	res, stats, err := app.Detect(img)
	if err != nil {
		return err
	}
	fmt.Printf("DPU inference: %.4g s over %d conv layers (max layer %.4g s)\n",
		stats.Seconds, len(stats.Layers), stats.MaxLayerSeconds())
	fmt.Printf("detections: %d\n", len(res.Detections))
	for i, d := range res.Detections {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  class %d at (%.0f, %.0f) %vx%v conf %.2f\n",
			d.Class, d.X, d.Y, int(d.W), int(d.H), d.Confidence)
	}

	// Verify against the host reference.
	hostRes, err := app.DetectHost(img)
	if err != nil {
		return err
	}
	for s := range hostRes.YoloOutputs {
		h, d := hostRes.YoloOutputs[s], res.YoloOutputs[s]
		for i := range h.Data {
			if h.Data[i] != d.Data[i] {
				return fmt.Errorf("scale %d element %d: host %d vs DPU %d", s, i, h.Data[i], d.Data[i])
			}
		}
	}
	fmt.Println("DPU output verified bit-exact against the host reference")

	// The thesis's headline: the full 416x416 network on the 2,560-DPU
	// system, estimated analytically with the MRAM-bound kernel.
	total, err := pimdnn.EstimateYOLOSeconds(pimdnn.YOLOFull(), true /* naive kernel */)
	if err != nil {
		return err
	}
	fmt.Printf("\nfull YOLOv3-416 on 2,560 DPUs (thesis-faithful kernel): %.1f s/image (paper: 65 s)\n", total)
	return nil
}

// alexnet-classify: the §6.1 extension workload — a quantized AlexNet
// whose conv and FC layers run as Algorithm 2 GEMMs on the simulated
// UPMEM system. It also cross-checks the implementation against the
// chapter 5 analytic model's AlexNet pricing (Table 5.1).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pimdnn"
	"pimdnn/internal/model"
	"pimdnn/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	acc, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 16, Opt: pimdnn.O3})
	if err != nil {
		return err
	}
	cfg := pimdnn.AlexNetLite()
	app, err := acc.DeployAlexNet(cfg, pimdnn.YOLOOptions{Tasklets: 11})
	if err != nil {
		return err
	}
	net := app.Network()
	fmt.Printf("AlexNet (input %d, width÷%d): %.3g MACs (full 227x227: %.3g)\n",
		cfg.InputSize, cfg.WidthDiv, float64(net.MACs()), 1.135e9)

	// A random image through the DPU pipeline.
	rng := rand.New(rand.NewSource(7))
	img := tensor.New(3, cfg.InputSize, cfg.InputSize)
	for i := range img.Data {
		img.Data[i] = tensor.Quantize(rng.Float64())
	}
	class, logits, stats, err := app.Classify(img)
	if err != nil {
		return err
	}
	fmt.Printf("classified as %d (of %d classes) in %.4g s of DPU time over %d GEMM layers\n",
		class, len(logits), stats.Seconds, len(stats.Layers))

	// The chapter 5 model prices the same workload analytically.
	fmt.Println("\nchapter 5 model on full AlexNet (8-bit, Table 5.1 + 5.3):")
	for _, p := range pimdnn.PIMArchitectures() {
		fmt.Printf("  %-6s Ttot = %.3g s (%.1f frames/s)\n",
			p.Name, p.Ttot(model.AlexNetTOPs, 8), 1/p.Ttot(model.AlexNetTOPs, 8))
	}
	return nil
}

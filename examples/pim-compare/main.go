// pim-compare: the thesis's chapter 5 use case — compare PIM
// architectures analytically. It evaluates the computation and memory
// models on AlexNet, shows the Fig 5.6 precision crossover, and prints
// the seven-device Table 5.4 benchmarking for eBNN and YOLOv3.
package main

import (
	"fmt"
	"log"

	"pimdnn"
	"pimdnn/internal/model"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== AlexNet (2.59e9 MACs, 8-bit) through the generic model ==")
	fmt.Printf("%-8s %12s %12s %12s\n", "PIM", "Tcomp (s)", "Tmem (s)", "Ttot (s)")
	for _, p := range pimdnn.PIMArchitectures() {
		tcomp := p.Tcomp(p.MACCop(8), model.AlexNetTOPs)
		tmem := p.Tmem(model.AlexNetTOPs, 8)
		fmt.Printf("%-8s %12.3g %12.3g %12.3g\n", p.Name, tcomp, tmem, tcomp+tmem)
	}

	fmt.Println("\n== precision crossover (Fig 5.6): multiply Cop by operand width ==")
	fmt.Printf("%-8s %8s %8s %8s %8s\n", "PIM", "4-bit", "8-bit", "16-bit", "32-bit")
	for _, p := range pimdnn.PIMArchitectures() {
		fmt.Printf("%-8s %8.4g %8.4g %8.4g %8.4g\n", p.Name,
			p.MultCop(4), p.MultCop(8), p.MultCop(16), p.MultCop(32))
	}
	fmt.Println("-> the LUT design (pPIM) wins at 8/16 bits; the pipelined CPU")
	fmt.Println("   (UPMEM) overtakes it at 32 bits, as the thesis concludes.")

	fmt.Println("\n== Table 5.4: seven devices on eBNN and YOLOv3 ==")
	best := struct {
		ebnnPW, yoloPW string
		vEBNN, vYOLO   float64
	}{}
	for _, d := range pimdnn.PIMDevices() {
		if v := d.EBNNThroughputPower(); v > best.vEBNN {
			best.vEBNN, best.ebnnPW = v, d.Name
		}
		if v := d.YOLOThroughputPower(); v > best.vYOLO {
			best.vYOLO, best.yoloPW = v, d.Name
		}
	}
	fmt.Print(model.FormatTable54(pimdnn.PIMDevices()))
	fmt.Printf("\nbest eBNN frames/s-W: %s; best YOLOv3 frames/s-W: %s\n", best.ebnnPW, best.yoloPW)
	fmt.Println("UPMEM is the lowest-power, lowest-area device but its measured")
	fmt.Println("latencies make its throughput ratios the poorest — the thesis's")
	fmt.Println("closing observation about the commercial PIM's trade-off.")
	return nil
}

// cnn-zoo: the §6.1 future-work span made concrete — run all three
// implemented classifier-style workloads (eBNN, AlexNet, ResNet-18) on
// simulated UPMEM systems and compare their DPU time, energy and the
// chapter 5 model's pricing of their full-size counterparts. Every
// deployment lets the cost-model auto-mapper choose its mapping
// (tasklets 0 / AutoMap) instead of pinning hand-tuned constants.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pimdnn"
	"pimdnn/internal/model"
	"pimdnn/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func randImage(size int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(3, size, size)
	for i := range t.Data {
		t.Data[i] = tensor.Quantize(rng.Float64())
	}
	return t
}

func run() error {
	fmt.Println("workload          input   MACs (lite)   DPU time    notes")

	// eBNN: 16 digits on one DPU with the LUT architecture.
	ds := pimdnn.LoadDigits(400, 16, 1)
	ebnnModel, err := pimdnn.TrainEBNN(ds, pimdnn.DefaultEBNNTrainConfig())
	if err != nil {
		return err
	}
	acc1, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 1, Opt: pimdnn.O3})
	if err != nil {
		return err
	}
	ebnnApp, err := acc1.DeployEBNN(ebnnModel, true, 0) // 0 = auto-map
	if err != nil {
		return err
	}
	_, ebnnStats, err := ebnnApp.Classify(ds.Test)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %6d   %11s   %8.3gs   16 images, 1 DPU\n",
		"eBNN", 28, "~4.9e5", ebnnStats.Seconds)

	// AlexNet lite.
	acc2, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 8, Opt: pimdnn.O3})
	if err != nil {
		return err
	}
	alexApp, err := acc2.DeployAlexNet(pimdnn.AlexNetLite(), pimdnn.YOLOOptions{AutoMap: true})
	if err != nil {
		return err
	}
	alexCfg := alexApp.Network().Cfg
	_, _, alexStats, err := alexApp.Classify(randImage(alexCfg.InputSize, 2))
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %6d   %11.3g   %8.3gs   8 DPUs, row-per-DPU\n",
		"AlexNet", alexCfg.InputSize, float64(alexApp.Network().MACs()), alexStats.Seconds)

	// ResNet-18 lite.
	acc3, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 8, Opt: pimdnn.O3})
	if err != nil {
		return err
	}
	resApp, err := acc3.DeployResNet(pimdnn.ResNetLite(), pimdnn.YOLOOptions{AutoMap: true})
	if err != nil {
		return err
	}
	resCfg := resApp.Network().Cfg
	_, _, resStats, err := resApp.Classify(randImage(resCfg.InputSize, 3))
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %6d   %11.3g   %8.3gs   8 DPUs, 21 GEMMs incl. 3 projections\n",
		"ResNet-18", resCfg.InputSize, float64(resApp.Network().MACs()), resStats.Seconds)

	// Full-size pricing through the chapter 5 model.
	fmt.Println("\nchapter 5 model, full-size networks at 8-bit (Ttot = Tcomp + Tmem):")
	fmt.Printf("%-12s", "workload")
	for _, p := range pimdnn.PIMArchitectures() {
		fmt.Printf("%12s", p.Name)
	}
	fmt.Println()
	for _, w := range model.Workloads() {
		fmt.Printf("%-12s", w.Name)
		for _, p := range pimdnn.PIMArchitectures() {
			fmt.Printf("%12.3g", p.Ttot(w.MACs, w.Bits))
		}
		fmt.Println()
	}
	return nil
}

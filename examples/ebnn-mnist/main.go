// ebnn-mnist: the thesis's chapter 4.1 workload end to end — batch digit
// classification with the multiple-images-per-DPU mapping, comparing the
// floating-point and LUT DPU architectures and consulting the framework's
// advisor for the §4.3.3 takeaways.
package main

import (
	"fmt"
	"log"

	"pimdnn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds := pimdnn.LoadDigits(600, 96, 7)
	model, err := pimdnn.TrainEBNN(ds, pimdnn.DefaultEBNNTrainConfig())
	if err != nil {
		return err
	}

	// The mapping chooser confirms eBNN's tiny working set batches many
	// images into each DPU (thesis §4.1.3).
	scheme := pimdnn.ChooseScheme(304 /* packed image + result */, 16)
	fmt.Printf("chosen mapping scheme: %v\n\n", scheme)

	for _, useLUT := range []bool{false, true} {
		// Compile the float model at -O0 to expose the subroutine
		// problem the LUT architecture solves.
		opt := pimdnn.O0
		acc, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 6, Opt: opt})
		if err != nil {
			return err
		}
		app, err := acc.DeployEBNN(model, useLUT, 16)
		if err != nil {
			return err
		}
		preds, stats, err := app.Classify(ds.Test)
		if err != nil {
			return err
		}
		correct := 0
		for i := range preds {
			if preds[i] == ds.Test[i].Label {
				correct++
			}
		}
		name := "default (float in DPU)"
		if useLUT {
			name = "LUT architecture"
		}
		fmt.Printf("== %s ==\n", name)
		fmt.Printf("accuracy %.1f%%, DPU time %.4g s, %.0f images/s\n",
			100*float64(correct)/float64(len(preds)), stats.Seconds, stats.Throughput())

		// Ask the advisor what the run profile implies.
		recs := pimdnn.NewAdvisor().Analyze(pimdnn.RunInfo{
			Profile:  acc.System().Profile(),
			Tasklets: 16,
			Opt:      opt,
		})
		if len(recs) == 0 {
			fmt.Println("advisor: no findings")
		}
		for _, r := range recs {
			fmt.Printf("advisor [%s]: %s\n", r.Rule, r.Detail)
		}
		fmt.Println()
	}
	return nil
}

#!/usr/bin/env bash
# Run the key simulator benchmarks with -benchmem and emit
# BENCH_baseline.json (name, ns/op, allocs/op, B/op) at the repo root.
#
# Usage:  scripts/bench.sh [benchtime]
#   benchtime  go test -benchtime value (default 10x)
#
# The JSON is the perf trajectory record: wall-clock and allocation
# numbers for the hot paths, to be compared across PRs. Simulated-cycle
# metrics are intentionally not recorded here — they are asserted
# bit-identical by the test suite, not tracked as a trajectory (see
# DESIGN.md, "Simulator performance").
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${1:-10x}"
OUT="BENCH_baseline.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

run() { # run <package> <bench regexp>
	echo ">> go test $1 -bench $2 (-benchtime $BENCHTIME)" >&2
	go test "$1" -run 'xxx' -bench "$2" -benchtime "$BENCHTIME" -benchmem 2>/dev/null \
		| grep -E '^Benchmark' >>"$TMP" || true
}

run .               'BenchmarkSimulatorWallClock|BenchmarkFig47aTaskletSpeedup|BenchmarkFig47bOptimization|BenchmarkHeadlineLatency'
run ./internal/gemm 'BenchmarkTiledKernel|BenchmarkNaiveKernel|BenchmarkBatchKernel'
run ./internal/host 'BenchmarkBroadcast|BenchmarkPushXfer|BenchmarkParallelLaunch'

# Benchmark lines look like:
#   BenchmarkName-8  20  123456 ns/op  [custom metrics...]  4096 B/op  12 allocs/op
awk '
BEGIN { print "[" ; first = 1 }
{
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")     ns = $(i - 1)
		if ($i == "B/op")      bytes = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	if (!first) printf(",\n")
	first = 0
	printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s}", \
	       name, ns, (allocs == "" ? "null" : allocs), (bytes == "" ? "null" : bytes))
}
END { print "\n]" }
' "$TMP" >"$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)" >&2

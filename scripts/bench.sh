#!/usr/bin/env bash
# Run the key simulator benchmarks with -benchmem and emit a JSON record
# (name, ns/op, allocs/op, B/op) at the repo root, then compare it
# against the previous PR's record: print a per-benchmark wall-clock
# delta, FAIL if any baseline benchmark disappeared from the new run,
# and FAIL if an allocation-gated benchmark's allocs/op grew over the
# baseline. The allocation gate covers the telemetry overhead
# benchmarks (BenchmarkMetrics*, BenchmarkTracingDisabledOverhead, the
# internal/metrics instrument microbenchmarks) and the steady-state
# simulator hot path
# (BenchmarkSimulatorWallClock): their allocs/op is a designed
# invariant — zero on the instrument hot paths, fixed on the
# instrumented gemm and warm YOLO forward paths — whereas the
# setup-dominated system benchmarks legitimately vary at small
# -benchtime.
#
# Usage:  scripts/bench.sh [benchtime] [out.json] [baseline.json]
#   benchtime      go test -benchtime value (default 10x)
#   out.json       output file (default BENCH_pr10.json)
#   baseline.json  delta baseline (default BENCH_pr9.json, the last
#                  recorded trajectory point; BENCH_baseline.json if
#                  that is absent)
#
# The JSON is the perf trajectory record: wall-clock and allocation
# numbers for the hot paths, to be compared across PRs. Simulated-cycle
# metrics are intentionally not recorded here — they are asserted
# bit-identical by the test suite, not tracked as a trajectory (see
# DESIGN.md, "Simulator performance").
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${1:-10x}"
OUT="${2:-BENCH_pr10.json}"
BASELINE="${3:-BENCH_pr9.json}"
[[ -f "$BASELINE" ]] || BASELINE="BENCH_baseline.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

run() { # run <package> <bench regexp>
	echo ">> go test $1 -bench $2 (-benchtime $BENCHTIME)" >&2
	go test "$1" -run 'xxx' -bench "$2" -benchtime "$BENCHTIME" -benchmem 2>/dev/null \
		| grep -E '^Benchmark' >>"$TMP" || true
}

run .                  'BenchmarkSimulatorWallClock|BenchmarkFig47aTaskletSpeedup|BenchmarkFig47bOptimization|BenchmarkHeadlineLatency|BenchmarkScalingStrong|BenchmarkScalingWeak'
run ./internal/gemm    'BenchmarkTiledKernel|BenchmarkNaiveKernel|BenchmarkBatchKernel|BenchmarkMultiWaveSync|BenchmarkMultiWavePipelined|BenchmarkResidentForward|BenchmarkRebroadcastForward|BenchmarkMetricsDisabledOverhead|BenchmarkMetricsEnabledOverhead|BenchmarkTracingDisabledOverhead|BenchmarkTracingEnabledOverhead'
run ./internal/ebnn    'BenchmarkInferWaveSync|BenchmarkInferWavePipelined'
run ./internal/host    'BenchmarkBroadcast|BenchmarkPushXfer|BenchmarkParallelLaunch'
run ./internal/metrics 'BenchmarkCounterAdd|BenchmarkHistogramObserve|BenchmarkNilCounterAdd'
run ./internal/plan    'BenchmarkPlannerOverhead|BenchmarkPlanColdSearch'

# The full-array forwards (one image on each of the 2,560 DPUs, tens of
# seconds per iteration — hand-tuned constants and the auto-mapped
# variant) always run one iteration regardless of $BENCHTIME: they are
# recorded as completes-at-scale gates, not tight timing loops.
echo ">> go test . -bench BenchmarkFullArrayYOLOForward (-benchtime 1x)" >&2
go test . -run 'xxx' -bench 'BenchmarkFullArrayYOLOForward' -benchtime 1x -benchmem 2>/dev/null \
	| grep -E '^Benchmark' >>"$TMP" || true

# Benchmark lines look like:
#   BenchmarkName-8  20  123456 ns/op  [custom metrics...]  4096 B/op  12 allocs/op
awk '
BEGIN { print "[" ; first = 1 }
{
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")     ns = $(i - 1)
		if ($i == "B/op")      bytes = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	if (!first) printf(",\n")
	first = 0
	printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s}", \
	       name, ns, (allocs == "" ? "null" : allocs), (bytes == "" ? "null" : bytes))
}
END { print "\n]" }
' "$TMP" >"$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)" >&2

# Delta report: every baseline benchmark must still exist; new-only
# benchmarks are listed as such. Exits 1 on a vanished benchmark (CI
# catches silently dropped coverage) or on an allocation regression in
# an allocation-gated benchmark (name matching Metrics/TracingDisabled/
# CounterAdd/HistogramObserve/SimulatorWallClock/FullArray/
# ResidentForward/RebroadcastForward/Planner — the hot paths whose
# allocs/op is a designed invariant rather than a setup artifact; the
# full-array forward's allocations are per-image data, deterministic at
# one iteration, and must not regrow an O(nDPU)-per-wave term).
if [[ -f "$BASELINE" && "$OUT" != "$BASELINE" ]]; then
	awk -v baseline="$BASELINE" -v current="$OUT" '
	function parse(file, tab, atab,    line, name, ns, al) {
		while ((getline line < file) > 0) {
			if (match(line, /"name": "[^"]*"/)) {
				name = substr(line, RSTART + 9, RLENGTH - 10)
				ns = ""
				if (match(line, /"ns_per_op": [0-9.]+/))
					ns = substr(line, RSTART + 13, RLENGTH - 13)
				tab[name] = ns
				al = ""
				if (match(line, /"allocs_per_op": [0-9.]+/))
					al = substr(line, RSTART + 17, RLENGTH - 17)
				atab[name] = al
			}
		}
		close(file)
	}
	BEGIN {
		parse(baseline, base, baseAllocs)
		parse(current, cur, curAllocs)
		printf("%-55s %14s %14s %9s\n", "benchmark", "baseline ns", "current ns", "delta")
		missing = 0
		allocRegress = 0
		for (name in base) {
			if (!(name in cur)) {
				printf("%-55s %14s %14s %9s\n", name, base[name], "MISSING", "-")
				missing++
				continue
			}
			printf("%-55s %14s %14s %8.1f%%\n", name, base[name], cur[name],
			       100 * (cur[name] - base[name]) / base[name])
			if (name ~ /Metrics|TracingDisabled|CounterAdd|HistogramObserve|SimulatorWallClock|FullArray|ResidentForward|RebroadcastForward|Planner/ &&
			    baseAllocs[name] != "" && curAllocs[name] != "" &&
			    curAllocs[name] + 0 > baseAllocs[name] + 0) {
				printf("ALLOC REGRESSION: %s allocs/op %s -> %s\n",
				       name, baseAllocs[name], curAllocs[name]) > "/dev/stderr"
				allocRegress++
			}
		}
		for (name in cur)
			if (!(name in base))
				printf("%-55s %14s %14s %9s\n", name, "(new)", cur[name], "-")
		if (missing) {
			printf("FAIL: %d baseline benchmark(s) missing from %s\n", missing, current) > "/dev/stderr"
			exit 1
		}
		if (allocRegress) {
			printf("FAIL: %d benchmark(s) regressed allocs/op vs %s\n", allocRegress, baseline) > "/dev/stderr"
			exit 1
		}
	}'
fi

// Full-array scale-out benchmarks and tests: the simulator driving all
// 2,560 DPUs (40 ranks of 64) the evaluated UPMEM system populates.
// The benchmarks track the host runtime's wall-clock health at full
// width; TestScalingShape pins the simulated strong/weak-scaling
// quantities, which are deterministic and must match the rank-parallel
// transfer model exactly.
package pimdnn_test

import (
	"runtime"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/plan"
	"pimdnn/internal/yolo"
)

// scaleDPUs is the strong/weak-scaling sweep: one rank up to the full
// 40-rank array, in rank multiples so every configuration is
// whole-rank.
var scaleDPUs = []int{64, 256, 1024, 2560}

const (
	scaleK = 64 // GEMM inner dimension of the sweep workload
	scaleN = 64 // GEMM output columns per row
	fullM  = 2560
)

func newScaleRunner(tb testing.TB, nDPU int) *gemm.Runner {
	tb.Helper()
	sys, err := host.NewSystem(nDPU, host.DefaultConfig(dpu.O3))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(sys.Close)
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: scaleK, MaxN: scaleN, Tasklets: 8, TileCols: 64,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

func scaleOperands(m int) (a, b []int16) {
	// Every row of A is identical: operation cycle costs are
	// operand-dependent (a wider multiplicand costs more), so identical
	// rows make every DPU's work — and thus every wave's maximum —
	// exactly equal, which TestScalingShape relies on.
	a = make([]int16, m*scaleK)
	for i := range a {
		a[i] = int16((i%scaleK)%13 - 6)
	}
	b = make([]int16, scaleK*scaleN)
	for i := range b {
		b[i] = int16(i%7 - 3)
	}
	return a, b
}

// --- Full-array YOLO forward: image-per-DPU across all 40 ranks ---

// BenchmarkFullArrayYOLOForward drives one image per DPU through the
// batch forward path on the full 2,560-DPU array: every conv layer is a
// single wave spanning all 40 ranks. This is the workload the
// rank-parallel transfer model and the aligned fan-out exist for; run
// it with a small -benchtime (scripts/bench.sh uses 1x).
func BenchmarkFullArrayYOLOForward(b *testing.B) {
	b.ReportAllocs()
	net, err := yolo.New(yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := host.NewSystem(dpu.SystemDPUs, host.DefaultConfig(dpu.O3))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	maxK, maxN := net.GEMMBounds()
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := r.EnableBatch(net.MaxFilters()); err != nil {
		b.Fatal(err)
	}
	inputs := make([]*yolo.Tensor, dpu.SystemDPUs)
	for i := range inputs {
		inputs[i] = yolo.SyntheticScene(32, int64(i+1))
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := net.ForwardBatch(inputs, r)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(sys.Ranks()), "ranks")
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkFullArrayYOLOForwardPlanned is the auto-mapped counterpart:
// the same batch forward with the cost-model planner choosing each
// layer's tasklet count instead of the hand-tuned constant. The same
// tile width keeps the WRAM layout identical, so the delta against
// BenchmarkFullArrayYOLOForward isolates the planner's choices (and its
// per-layer re-planning overhead on the host side).
func BenchmarkFullArrayYOLOForwardPlanned(b *testing.B) {
	b.ReportAllocs()
	net, err := yolo.New(yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := host.NewSystem(dpu.SystemDPUs, host.DefaultConfig(dpu.O3))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	maxK, maxN := net.GEMMBounds()
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, TileCols: 64, Planner: plan.New(sys),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := r.EnableBatch(net.MaxFilters()); err != nil {
		b.Fatal(err)
	}
	inputs := make([]*yolo.Tensor, dpu.SystemDPUs)
	for i := range inputs {
		inputs[i] = yolo.SyntheticScene(32, int64(i+1))
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := net.ForwardBatch(inputs, r)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(sys.Ranks()), "ranks")
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// TestFullArrayPlannerNeverSlower is the auto-mapper's acceptance bar
// at scale: on the full 2,560-DPU array the planner-chosen mappings
// must produce bit-identical detections and never lose to the
// hand-tuned constants in simulated time, layer for layer and in total.
func TestFullArrayPlannerNeverSlower(t *testing.T) {
	net, err := yolo.New(yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	input := yolo.SyntheticScene(32, 99)
	run := func(planned bool) (*yolo.Result, *yolo.ForwardStats) {
		sys, err := host.NewSystem(dpu.SystemDPUs, host.DefaultConfig(dpu.O3))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sys.Close)
		maxK, maxN := net.GEMMBounds()
		cfg := gemm.RunnerConfig{MaxK: maxK, MaxN: maxN, TileCols: 64}
		if planned {
			cfg.Planner = plan.New(sys)
		} else {
			cfg.Tasklets = 8 // the hand-tuned full-array constant
		}
		r, err := gemm.NewRunner(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, st, err := net.Forward(input, r)
		if err != nil {
			t.Fatal(err)
		}
		return res, st
	}
	fixedRes, fixedSt := run(false)
	planRes, planSt := run(true)
	if len(fixedRes.Detections) != len(planRes.Detections) {
		t.Fatalf("auto-mapped forward diverged: %d vs %d detections",
			len(planRes.Detections), len(fixedRes.Detections))
	}
	for i := range fixedRes.Detections {
		if fixedRes.Detections[i] != planRes.Detections[i] {
			t.Fatalf("detection %d diverged", i)
		}
	}
	for i, fl := range fixedSt.Layers {
		pl := planSt.Layers[i]
		if pl.Seconds > fl.Seconds {
			t.Errorf("layer %d: planned %.6gs (T=%d) slower than fixed %.6gs (T=%d)",
				fl.Layer, pl.Seconds, pl.Tasklets, fl.Seconds, fl.Tasklets)
		}
	}
	if planSt.Seconds > fixedSt.Seconds {
		t.Errorf("planned forward %.6gs slower than fixed %.6gs", planSt.Seconds, fixedSt.Seconds)
	}
	t.Logf("full-array forward: fixed %.6gs -> planned %.6gs (%.2fx)",
		fixedSt.Seconds, planSt.Seconds, fixedSt.Seconds/planSt.Seconds)
}

// --- Strong and weak scaling sweeps (PrIM-style) ---

// BenchmarkScalingStrong fixes the problem (2,560 GEMM rows) and widens
// the array: more DPUs mean fewer waves over the same total work, so
// the host wall-clock per op should stay roughly flat (the kernel work
// is identical) while simulated time falls linearly.
func BenchmarkScalingStrong(b *testing.B) {
	a, mb := scaleOperands(fullM)
	for _, nd := range scaleDPUs {
		b.Run("dpus="+itoa4(nd), func(b *testing.B) {
			b.ReportAllocs()
			r := newScaleRunner(b, nd)
			// One untimed warmup pages the fresh system's MRAM and grows
			// the staging buffers; then collect the previous
			// sub-benchmark's dead multi-GB system, whose garbage
			// otherwise inflates GC scan time inside the timed loop
			// severalfold. The loop then measures the steady state.
			if _, _, err := r.Multiply(fullM, scaleN, scaleK, 1, a, mb); err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			var sec float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := r.Multiply(fullM, scaleN, scaleK, 1, a, mb)
				if err != nil {
					b.Fatal(err)
				}
				sec = st.Seconds
			}
			b.ReportMetric(sec, "sim-seconds")
		})
	}
}

// BenchmarkScalingWeak grows the problem with the array (one GEMM row
// per DPU, always a single wave): host wall-clock per op should grow
// sublinearly in the 40x width increase because the per-wave fixed
// costs amortize and the modeled transfers stream rank-parallel.
func BenchmarkScalingWeak(b *testing.B) {
	for _, nd := range scaleDPUs {
		a, mb := scaleOperands(nd)
		b.Run("dpus="+itoa4(nd), func(b *testing.B) {
			b.ReportAllocs()
			r := newScaleRunner(b, nd)
			// Warmup + GC: see BenchmarkScalingStrong.
			if _, _, err := r.Multiply(nd, scaleN, scaleK, 1, a, mb); err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			var sec float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := r.Multiply(nd, scaleN, scaleK, 1, a, mb)
				if err != nil {
					b.Fatal(err)
				}
				sec = st.Seconds
			}
			b.ReportMetric(sec, "sim-seconds")
		})
	}
}

// --- Deterministic scaling shape ---

// TestScalingShape pins the simulated strong/weak-scaling quantities,
// which are exact: every row of the sweep GEMM costs the same cycles,
// every configuration is whole-rank, so wave counts, cycle totals, and
// rank-parallel transfer times follow in closed form.
func TestScalingShape(t *testing.T) {
	type point struct {
		waves    int
		cycles   uint64
		xferTime float64 // seconds of modeled host<->MRAM time
		xfers    uint64
	}
	strong := map[int]point{}
	weak := map[int]point{}
	for _, nd := range scaleDPUs {
		{
			r := newScaleRunner(t, nd)
			a, b := scaleOperands(fullM)
			_, st, err := r.Multiply(fullM, scaleN, scaleK, 1, a, b)
			if err != nil {
				t.Fatal(err)
			}
			xs := r.System().TransferStats()
			strong[nd] = point{st.Waves, st.Cycles, xs.Time.Seconds(), xs.Transfers}
		}
		{
			r := newScaleRunner(t, nd)
			a, b := scaleOperands(nd)
			_, st, err := r.Multiply(nd, scaleN, scaleK, 1, a, b)
			if err != nil {
				t.Fatal(err)
			}
			xs := r.System().TransferStats()
			weak[nd] = point{st.Waves, st.Cycles, xs.Time.Seconds(), xs.Transfers}
		}
	}

	// One full wave at every width costs the same maximum (identical
	// rows), so the whole sweep follows from the 2,560-DPU single wave.
	perWave := strong[2560].cycles
	for _, nd := range scaleDPUs {
		// Strong scaling: fixed 2,560 rows split into ceil(M/nDPU) waves,
		// each (full or partial) costing one wave maximum.
		wantWaves := (fullM + nd - 1) / nd
		if strong[nd].waves != wantWaves {
			t.Errorf("strong %d DPUs: %d waves, want %d", nd, strong[nd].waves, wantWaves)
		}
		if want := perWave * uint64(wantWaves); strong[nd].cycles != want {
			t.Errorf("strong %d DPUs: cycles %d, want %d waves x %d", nd, strong[nd].cycles, wantWaves, perWave)
		}
		// Weak scaling: one row per DPU is always a single wave, and the
		// per-wave maximum is width-independent.
		if weak[nd].waves != 1 {
			t.Errorf("weak %d DPUs: %d waves, want 1", nd, weak[nd].waves)
		}
		if weak[nd].cycles != perWave {
			t.Errorf("weak %d DPUs: cycles %d != single-wave cycles %d", nd, weak[nd].cycles, perWave)
		}
	}

	// Rank-parallel transfers: a weak-scaling run moves 40x the bytes at
	// 2,560 DPUs, but every transfer — the B/params broadcasts, the row
	// scatter, the result gather — is charged the busiest rank's share,
	// and all ranks are equally loaded, so the modeled time is IDENTICAL
	// to the single-rank 64-DPU run. This exact equality is the defining
	// property of the rank model.
	if weak[2560].xfers != weak[64].xfers {
		t.Errorf("weak scaling transfer-call counts differ: 64 DPUs %d, 2560 DPUs %d",
			weak[64].xfers, weak[2560].xfers)
	}
	if weak[2560].xferTime != weak[64].xferTime {
		t.Errorf("weak scaling xfer time not rank-flat: 64 DPUs %.3gs, 2560 DPUs %.3gs",
			weak[64].xferTime, weak[2560].xferTime)
	}
	// Strong scaling folds 40 single-rank waves into one 40-rank wave:
	// the per-wave scatter/gather time collapses 40x (the one-time
	// broadcasts are width-invariant either way), so the total modeled
	// transfer time must fall well below the serial 64-DPU run despite
	// moving the same bytes through more DPUs at once.
	if strong[2560].xferTime >= strong[64].xferTime/2 {
		t.Errorf("strong scaling xfer time not rank-parallel: 64 DPUs %.3gs, 2560 DPUs %.3gs",
			strong[64].xferTime, strong[2560].xferTime)
	}
	t.Logf("strong: 64 DPUs %d waves %.3gs xfer; 2560 DPUs %d waves %.3gs xfer",
		strong[64].waves, strong[64].xferTime, strong[2560].waves, strong[2560].xferTime)
}

// TestFullArrayAllocBounded pins the host runtime's allocation behavior
// at full width: after warmup, a 2,560-DPU wave must not allocate
// per-DPU (the scatter buffers, error slices, ticket fan-out, and rank
// tallies are all reused scratch).
func TestFullArrayAllocBounded(t *testing.T) {
	r := newScaleRunner(t, dpu.SystemDPUs)
	a, b := scaleOperands(dpu.SystemDPUs)
	run := func() {
		if _, _, err := r.Multiply(dpu.SystemDPUs, scaleN, scaleK, 1, a, b); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the runner's staging buffers and the pool
	avg := testing.AllocsPerRun(3, run)
	// The output matrix (m*n int16) plus a handful of header allocations
	// are inherent; anything O(nDPU) — 2,560 and up — is a regression.
	if avg >= float64(dpu.SystemDPUs) {
		t.Errorf("full-array Multiply allocates %.0f per wave — O(nDPU) allocation regressed", avg)
	}
	t.Logf("full-array Multiply: %.0f allocs per op", avg)
}

// itoa4 renders small positive integers (the DPU-count sweep) without
// fmt, matching the itoa helper's style.
func itoa4(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for v > 0 && i > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

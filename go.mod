module pimdnn

go 1.22

// Package pimdnn reproduces, in pure Go, the system of the M.S. thesis
// "Implementation and Evaluation of Deep Neural Networks in Commercially
// Available Processing in Memory Hardware" (Prangon Das, RIT, 2022): CNN
// inference mapped onto the UPMEM processing-in-memory architecture, plus
// the thesis's analytic model for comparing PIM designs.
//
// Since no UPMEM hardware or SDK is available to Go, the library ships a
// cycle-faithful simulator of the DPU (tasklets, the 11-stage revolver
// pipeline, WRAM/MRAM with the Eq 3.4 DMA cost, software floating point,
// dpu-clang-style optimization levels) together with the host runtime,
// the two CNN workloads (eBNN with the LUT transform of Algorithm 1, and
// a quantized YOLOv3 whose convolutions run as Algorithm 2 GEMMs spread
// row-per-DPU), and the chapter 5 performance model of bitwise, LUT and
// pipelined-CPU PIMs.
//
// This file is the public facade; the implementation lives under
// internal/ (see DESIGN.md for the system inventory and EXPERIMENTS.md
// for the paper-versus-measured record).
package pimdnn

import (
	"pimdnn/internal/alexnet"
	"pimdnn/internal/core"
	"pimdnn/internal/dpu"
	"pimdnn/internal/ebnn"
	"pimdnn/internal/mnist"
	"pimdnn/internal/model"
	"pimdnn/internal/resnet"
	"pimdnn/internal/yolo"
)

// Re-exported types: the deployment framework.
type (
	// Accelerator owns a simulated UPMEM system and deploys CNNs.
	Accelerator = core.Accelerator
	// Options configures an Accelerator.
	Options = core.Options
	// Scheme is an operation-mapping strategy.
	Scheme = core.Scheme
	// Recommendation is an Advisor finding.
	Recommendation = core.Recommendation
	// Advisor analyzes runs against the §4.3.3 takeaways.
	Advisor = core.Advisor
	// RunInfo describes one execution for the Advisor.
	RunInfo = core.RunInfo
	// EBNNApp is a deployed eBNN classifier.
	EBNNApp = core.EBNNApp
	// YOLOApp is a deployed YOLOv3 detector.
	YOLOApp = core.YOLOApp
	// YOLOOptions tunes a YOLO deployment.
	YOLOOptions = core.YOLOOptions
	// AlexNetApp is a deployed AlexNet classifier.
	AlexNetApp = core.AlexNetApp
	// AlexNetConfig parameterizes the AlexNet build.
	AlexNetConfig = alexnet.Config
	// ResNetApp is a deployed ResNet-18 classifier.
	ResNetApp = core.ResNetApp
	// ResNetConfig parameterizes the ResNet-18 build.
	ResNetConfig = resnet.Config
)

// Re-exported types: workloads and the analytic model.
type (
	// EBNNModel is a trained embedded binarized neural network.
	EBNNModel = ebnn.Model
	// EBNNTrainConfig controls host-side eBNN training.
	EBNNTrainConfig = ebnn.TrainConfig
	// Image is one 28×28 labeled digit.
	Image = mnist.Image
	// Dataset is a train/test split of digits.
	Dataset = mnist.Dataset
	// YOLOConfig parameterizes the YOLOv3 build.
	YOLOConfig = yolo.Config
	// YOLONetwork is a built, weighted YOLOv3.
	YOLONetwork = yolo.Network
	// Tensor is a quantized activation tensor.
	Tensor = yolo.Tensor
	// Detection is one decoded box.
	Detection = yolo.Detection
	// PIM is one architecture in the chapter 5 analytic model.
	PIM = model.PIM
	// Device is one row of the Table 5.4 benchmarking catalog.
	Device = model.Device
	// OptLevel models the dpu-clang -O0..-O3 settings.
	OptLevel = dpu.OptLevel
)

// Optimization levels (dpu-clang -O0..-O3).
const (
	O0 = dpu.O0
	O1 = dpu.O1
	O2 = dpu.O2
	O3 = dpu.O3
)

// Mapping schemes (chapter 4).
const (
	MultiImagePerDPU = core.MultiImagePerDPU
	MultiDPUPerImage = core.MultiDPUPerImage
)

// NewAccelerator allocates a simulated DPU system.
func NewAccelerator(opts Options) (*Accelerator, error) {
	return core.NewAccelerator(opts)
}

// NewAdvisor returns an advisor with the default thresholds.
func NewAdvisor() *Advisor { return core.NewAdvisor() }

// ChooseScheme picks a mapping scheme from the WRAM-fit criterion.
func ChooseScheme(workingSetBytes int64, tasklets int) Scheme {
	return core.ChooseScheme(workingSetBytes, tasklets, dpu.DefaultConfig(dpu.O3))
}

// LoadDigits generates the deterministic synthetic digit dataset.
func LoadDigits(trainN, testN int, seed int64) Dataset {
	return mnist.Load(trainN, testN, seed)
}

// TrainEBNN trains an eBNN on the host (random binary filters, fitted
// batch-norm statistics, SGD softmax readout).
func TrainEBNN(ds Dataset, cfg EBNNTrainConfig) (*EBNNModel, error) {
	return ebnn.Train(ds, cfg)
}

// DefaultEBNNTrainConfig returns the configuration used by the
// experiments.
func DefaultEBNNTrainConfig() EBNNTrainConfig { return ebnn.DefaultTrainConfig() }

// YOLOFull returns the thesis's network configuration (416×416, 80
// classes, 75 convolutional layers).
func YOLOFull() YOLOConfig { return yolo.FullConfig() }

// YOLOLite returns a reduced network with the same 75-conv graph, sized
// for simulation.
func YOLOLite() YOLOConfig { return yolo.LiteConfig() }

// AlexNetFull returns the canonical 227×227 ImageNet AlexNet — the
// workload priced by the chapter 5 model (Table 5.1).
func AlexNetFull() AlexNetConfig { return alexnet.FullConfig() }

// AlexNetLite returns a reduced AlexNet sized for simulation.
func AlexNetLite() AlexNetConfig { return alexnet.LiteConfig() }

// ResNetFull returns the canonical ResNet-18 (224×224, 1000 classes).
func ResNetFull() ResNetConfig { return resnet.FullConfig() }

// ResNetLite returns a reduced ResNet-18 sized for simulation.
func ResNetLite() ResNetConfig { return resnet.LiteConfig() }

// SyntheticScene renders a deterministic detector input image.
func SyntheticScene(size int, seed int64) *Tensor { return yolo.SyntheticScene(size, seed) }

// EstimateYOLOSeconds analytically estimates the network's single-image
// latency on the full 2,560-DPU system (threading + O3). naive selects
// the thesis-faithful MRAM-bound kernel behind the 65 s headline; false
// uses the WRAM-tiled improvement.
func EstimateYOLOSeconds(cfg YOLOConfig, naive bool) (float64, error) {
	net, err := yolo.New(cfg)
	if err != nil {
		return 0, err
	}
	ec := yolo.DefaultEstimateConfig()
	ec.Naive = naive
	total, _, err := net.EstimateSeconds(ec)
	return total, err
}

// PIMArchitectures returns the chapter 5 analytic models (pPIM, DRISA,
// UPMEM).
func PIMArchitectures() []PIM { return model.Architectures() }

// PIMDevices returns the Table 5.4 benchmarking catalog (seven devices).
func PIMDevices() []Device { return model.Table54Devices() }

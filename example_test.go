package pimdnn_test

import (
	"fmt"

	"pimdnn"
)

// ExampleNewAccelerator shows the minimal eBNN deployment flow: train on
// the host, deploy with the LUT architecture, classify on the simulated
// DPUs.
func ExampleNewAccelerator() {
	ds := pimdnn.LoadDigits(300, 10, 1)
	cfg := pimdnn.DefaultEBNNTrainConfig()
	cfg.Epochs = 10
	model, err := pimdnn.TrainEBNN(ds, cfg)
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	acc, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 1, Opt: pimdnn.O3})
	if err != nil {
		fmt.Println("alloc:", err)
		return
	}
	app, err := acc.DeployEBNN(model, true, 16)
	if err != nil {
		fmt.Println("deploy:", err)
		return
	}
	preds, _, err := app.Classify(ds.Test)
	if err != nil {
		fmt.Println("classify:", err)
		return
	}
	fmt.Println("classified", len(preds), "digits")
	// Output: classified 10 digits
}

// ExampleChooseScheme shows the mapping-scheme decision the thesis's two
// CNNs motivate.
func ExampleChooseScheme() {
	fmt.Println("eBNN (304 B):", pimdnn.ChooseScheme(304, 16))
	fmt.Println("YOLOv3 (692 KB):", pimdnn.ChooseScheme(692<<10, 11))
	// Output:
	// eBNN (304 B): multi-image-per-DPU
	// YOLOv3 (692 KB): multi-DPU-per-image
}

// ExamplePIMArchitectures prices AlexNet on the three chapter 5 models.
func ExamplePIMArchitectures() {
	for _, p := range pimdnn.PIMArchitectures() {
		fmt.Printf("%s: Cop(8-bit MAC) = %g cycles\n", p.Name, p.MACCop(8))
	}
	// Output:
	// pPIM: Cop(8-bit MAC) = 8 cycles
	// DRISA: Cop(8-bit MAC) = 211 cycles
	// UPMEM: Cop(8-bit MAC) = 88 cycles
}

// ExampleEstimateYOLOSeconds reproduces the §4.3.1 headline estimate.
func ExampleEstimateYOLOSeconds() {
	naive, err := pimdnn.EstimateYOLOSeconds(pimdnn.YOLOFull(), true)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("full YOLOv3, thesis-faithful kernel: %.0f s/image (paper: 65 s)\n", naive)
	// Output: full YOLOv3, thesis-faithful kernel: 33 s/image (paper: 65 s)
}

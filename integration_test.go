// Integration tests: whole-system flows crossing every package boundary,
// the checks a downstream adopter relies on.
package pimdnn_test

import (
	"bytes"
	"testing"

	"pimdnn"
	"pimdnn/internal/alexnet"
	"pimdnn/internal/dpu"
	"pimdnn/internal/ebnn"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
	"pimdnn/internal/tensor"
	"pimdnn/internal/yolo"
)

// TestIntegrationEBNNAllPaths runs the same trained eBNN through every
// execution path — host float, host LUT, DPU float, DPU LUT, serialized
// round trip — and requires identical predictions everywhere.
func TestIntegrationEBNNAllPaths(t *testing.T) {
	ds := mnist.Load(300, 24, 61)
	m, err := ebnn.Train(ds, ebnn.DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	lut := m.BuildLUT()

	// Reference: host float path.
	want := make([]int, len(ds.Test))
	for i := range ds.Test {
		want[i] = m.Predict(&ds.Test[i])
	}

	// Host LUT path.
	for i := range ds.Test {
		if got := m.PredictFeatures(m.FeaturesViaLUT(&ds.Test[i], lut)); got != want[i] {
			t.Fatalf("host LUT: image %d = %d, want %d", i, got, want[i])
		}
	}

	// DPU paths at two optimization levels.
	for _, opt := range []dpu.OptLevel{dpu.O0, dpu.O3} {
		for _, useLUT := range []bool{false, true} {
			sys, err := host.NewSystem(2, host.DefaultConfig(opt))
			if err != nil {
				t.Fatal(err)
			}
			r, err := ebnn.NewRunner(sys, m, useLUT, 16)
			if err != nil {
				t.Fatal(err)
			}
			preds, _, err := r.Infer(ds.Test)
			if err != nil {
				t.Fatal(err)
			}
			for i := range preds {
				if preds[i] != want[i] {
					t.Fatalf("DPU %v LUT=%v: image %d = %d, want %d",
						opt, useLUT, i, preds[i], want[i])
				}
			}
		}
	}

	// Serialized round trip predicts identically.
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ebnn.ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Test {
		if got := m2.Predict(&ds.Test[i]); got != want[i] {
			t.Fatalf("round trip: image %d = %d, want %d", i, got, want[i])
		}
	}
}

// TestIntegrationYOLOAllKernels runs one scene through the host
// reference, the tiled kernel, the naive kernel and the batch mapping,
// requiring bit-identical detection tensors.
func TestIntegrationYOLOAllKernels(t *testing.T) {
	cfg := yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 5}
	net, err := yolo.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	img := yolo.SyntheticScene(32, 77)
	want, _, err := net.Forward(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxK, maxN := net.GEMMBounds()

	check := func(name string, got *yolo.Result) {
		t.Helper()
		for s := range want.YoloOutputs {
			for i := range want.YoloOutputs[s].Data {
				if want.YoloOutputs[s].Data[i] != got.YoloOutputs[s].Data[i] {
					t.Fatalf("%s: scale %d element %d differs", name, s, i)
				}
			}
		}
	}

	for _, v := range []struct {
		name  string
		naive bool
	}{{"tiled", false}, {"naive", true}} {
		sys, _ := host.NewSystem(3, host.DefaultConfig(dpu.O3))
		r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
			MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64, Naive: v.naive,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := net.Forward(img, r)
		if err != nil {
			t.Fatal(err)
		}
		check(v.name, res)
	}

	sys, _ := host.NewSystem(3, host.DefaultConfig(dpu.O3))
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableBatch(net.MaxFilters()); err != nil {
		t.Fatal(err)
	}
	batch, _, err := net.ForwardBatch([]*yolo.Tensor{img}, r)
	if err != nil {
		t.Fatal(err)
	}
	check("batch", batch[0])
}

// TestIntegrationThreeWorkloadsOneSystem deploys eBNN, YOLOv3 and
// AlexNet onto a single accelerator and runs all three, confirming the
// symbol allocators and runners coexist.
func TestIntegrationThreeWorkloadsOneSystem(t *testing.T) {
	acc, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 4, Opt: pimdnn.O3})
	if err != nil {
		t.Fatal(err)
	}

	ds := mnist.Load(150, 8, 62)
	cfg := ebnn.DefaultTrainConfig()
	cfg.Epochs = 4
	m, err := ebnn.Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ebnnApp, err := acc.DeployEBNN(m, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ebnnApp.Classify(ds.Test); err != nil {
		t.Fatal(err)
	}

	yoloApp, err := acc.DeployYOLO(
		pimdnn.YOLOConfig{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 2},
		pimdnn.YOLOOptions{Tasklets: 8, TileCols: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := yoloApp.Detect(yolo.SyntheticScene(32, 3)); err != nil {
		t.Fatal(err)
	}

	// AlexNet's GEMM symbols collide with YOLO's on the same system by
	// design (one workload per system in the SDK too); a fresh
	// accelerator hosts it.
	acc2, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 4, Opt: pimdnn.O3})
	if err != nil {
		t.Fatal(err)
	}
	alexApp, err := acc2.DeployAlexNet(alexnet.LiteConfig(), pimdnn.YOLOOptions{Tasklets: 8, TileCols: 64})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(3, 67, 67)
	for i := range in.Data {
		in.Data[i] = int16(i % 32)
	}
	if _, _, _, err := alexApp.Classify(in); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationProfileFlowsToAdvisor: profiles collected across a
// multi-workload run drive the advisor end to end.
func TestIntegrationProfileFlowsToAdvisor(t *testing.T) {
	acc, err := pimdnn.NewAccelerator(pimdnn.Options{DPUs: 1, Opt: pimdnn.O0})
	if err != nil {
		t.Fatal(err)
	}
	ds := mnist.Load(100, 8, 63)
	cfg := ebnn.DefaultTrainConfig()
	cfg.Epochs = 3
	m, err := ebnn.Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := acc.DeployEBNN(m, false /* float model */, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := app.Classify(ds.Test); err != nil {
		t.Fatal(err)
	}
	recs := pimdnn.NewAdvisor().Analyze(pimdnn.RunInfo{
		Profile:  acc.System().Profile(),
		Tasklets: 4,
		Opt:      pimdnn.O0,
	})
	// Float model + 4 tasklets + O0 must trigger all three main rules.
	found := map[string]bool{}
	for _, r := range recs {
		found[r.Rule] = true
	}
	for _, rule := range []string{"remove-floating-point", "increase-tasklets", "enable-compiler-optimization"} {
		if !found[rule] {
			t.Errorf("rule %s not triggered: %+v", rule, recs)
		}
	}
}

// Benchmark harness: one benchmark per table and figure of the thesis's
// evaluation (the E1-E17 index in DESIGN.md). Each benchmark executes the
// experiment on the simulator (or the analytic model for chapter 5) and
// reports the reproduced quantity as a custom metric, so
// `go test -bench . -benchmem` regenerates every row/series the paper
// reports. EXPERIMENTS.md records paper-versus-measured for each.
package pimdnn_test

import (
	"testing"
	"time"

	"pimdnn/internal/dpu"
	"pimdnn/internal/ebnn"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
	"pimdnn/internal/model"
	"pimdnn/internal/yolo"
)

// --- E1: Table 2.1 — UPMEM PIM attributes ---

func BenchmarkTable21Attributes(b *testing.B) {
	var d *dpu.DPU
	for i := 0; i < b.N; i++ {
		d = dpu.MustNew(dpu.DefaultConfig(dpu.O0))
	}
	_ = d
	b.ReportMetric(dpu.SystemDPUs, "DPUs")
	b.ReportMetric(dpu.DefaultMRAMSize/(1<<20), "MRAM-MB")
	b.ReportMetric(dpu.DefaultWRAMSize/(1<<10), "WRAM-KB")
	b.ReportMetric(dpu.PipelineDepth, "pipeline-stages")
	b.ReportMetric(dpu.DefaultFrequencyHz/1e6, "MHz")
	b.ReportMetric(dpu.MaxTasklets, "tasklets-max")
}

// --- E2: Eq 3.4 — MRAM access cycles ---

func BenchmarkEq34MRAMAccess(b *testing.B) {
	d := dpu.MustNew(dpu.DefaultConfig(dpu.O0))
	var cycles uint64
	for i := 0; i < b.N; i++ {
		st, err := d.Launch(1, func(t *dpu.Tasklet) error {
			t.MRAMToWRAM(0, 0, 2048)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.DMACycles
	}
	b.ReportMetric(float64(cycles), "cycles/2048B") // paper: 1049
}

// --- E3: Table 3.1 — cycles per operation and precision ---

func BenchmarkTable31OpCycles(b *testing.B) {
	cases := []struct {
		name  string
		body  func(t *dpu.Tasklet)
		paper float64
	}{
		{"add32", func(t *dpu.Tasklet) { t.Add32(3, 4) }, 272},
		{"mul8", func(t *dpu.Tasklet) { t.Mul8(3, 4) }, 272},
		{"mul16", func(t *dpu.Tasklet) { t.Mul16(300, 40) }, 608},
		{"mul32", func(t *dpu.Tasklet) { t.Mul32(3e6, 40) }, 800},
		{"div32", func(t *dpu.Tasklet) { t.Div32(300, 4) }, 368},
		{"fadd", func(t *dpu.Tasklet) { t.FAdd(0x40400000, 0x40800000) }, 896},
		{"fsub", func(t *dpu.Tasklet) { t.FSub(0x40400000, 0x40800000) }, 928},
		{"fmul", func(t *dpu.Tasklet) { t.FMul(0x40400000, 0x40800000) }, 2528},
		{"fdiv", func(t *dpu.Tasklet) { t.FDiv(0x40400000, 0x40800000) }, 12064},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			d := dpu.MustNew(dpu.DefaultConfig(dpu.O0))
			var cycles uint64
			for i := 0; i < b.N; i++ {
				_, err := d.Launch(1, func(t *dpu.Tasklet) error {
					t.PerfcounterConfig()
					t.Charge(dpu.OpNop, 21)
					c.body(t)
					cycles = t.PerfcounterGet()
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cycles), "cycles")
			b.ReportMetric(c.paper, "paper-cycles")
		})
	}
}

// --- E4: Fig 3.2 — floating-point subroutine profile ---

func BenchmarkFig32Profile(b *testing.B) {
	var occ float64
	for i := 0; i < b.N; i++ {
		d := dpu.MustNew(dpu.DefaultConfig(dpu.O0))
		_, err := d.Launch(4, func(t *dpu.Tasklet) error {
			for j := 0; j < 32; j++ {
				v := t.FFromInt(int32(j))
				n := t.FDiv(t.FSub(v, t.FFromInt(5)), t.FFromInt(3))
				if t.FGe(n, 0) {
					_ = t.FToInt(n)
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		var total uint64
		for _, name := range d.Profile().FloatSubroutines() {
			total += d.Profile().Occ(name)
		}
		occ = float64(total)
	}
	b.ReportMetric(occ, "float-subroutine-occ")
}

// --- shared eBNN fixtures ---

func trainBenchModel(b *testing.B) (*ebnn.Model, []mnist.Image) {
	b.Helper()
	ds := mnist.Load(200, 16, 21)
	cfg := ebnn.DefaultTrainConfig()
	cfg.Epochs = 5
	m, err := ebnn.Train(ds, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m, ds.Test
}

func runEBNN(b *testing.B, m *ebnn.Model, imgs []mnist.Image, useLUT bool, nDPU, tasklets int) (ebnn.BatchStats, *host.System) {
	b.Helper()
	sys, err := host.NewSystem(nDPU, host.DefaultConfig(dpu.O0))
	if err != nil {
		b.Fatal(err)
	}
	r, err := ebnn.NewRunner(sys, m, useLUT, tasklets)
	if err != nil {
		b.Fatal(err)
	}
	_, st, err := r.Infer(imgs)
	if err != nil {
		b.Fatal(err)
	}
	return st, sys
}

// --- E5: Fig 4.3 — subroutine reduction with the LUT architecture ---

func BenchmarkFig43LUTSubroutines(b *testing.B) {
	m, imgs := trainBenchModel(b)
	var floatKinds, lutKinds, lutMulsi float64
	for i := 0; i < b.N; i++ {
		_, sysF := runEBNN(b, m, imgs, false, 1, 16)
		floatKinds = float64(len(sysF.Profile().FloatSubroutines()))
		_, sysL := runEBNN(b, m, imgs, true, 1, 16)
		lutKinds = float64(len(sysL.Profile().FloatSubroutines()))
		lutMulsi = float64(sysL.Profile().Occ("__mulsi3"))
	}
	b.ReportMetric(floatKinds, "float-subs-default") // paper: many ("11+")
	b.ReportMetric(lutKinds, "float-subs-LUT")       // paper: 0 float left
	b.ReportMetric(lutMulsi, "mulsi3-occ-LUT")       // paper: mulsi3 remains
}

// --- E6: Fig 4.4 — LUT speedup on a 16-image batch ---

func BenchmarkFig44LUTSpeedup(b *testing.B) {
	m, imgs := trainBenchModel(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		stF, _ := runEBNN(b, m, imgs, false, 1, 16)
		stL, _ := runEBNN(b, m, imgs, true, 1, 16)
		speedup = float64(stF.Cycles) / float64(stL.Cycles)
	}
	b.ReportMetric(speedup, "LUT-speedup") // paper: 1.4
}

// --- E7: Fig 4.7(a) — tasklet speedup for eBNN and YOLOv3 ---

func BenchmarkFig47aTaskletSpeedup(b *testing.B) {
	m, imgs := trainBenchModel(b)
	for _, tl := range []int{1, 4, 8, 11, 16} {
		b.Run("eBNN/tasklets="+itoa(tl), func(b *testing.B) {
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				st, _ := runEBNN(b, m, imgs, true, 1, tl)
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}

	net, err := yolo.New(yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	img := yolo.SyntheticScene(32, 5)
	for _, tl := range []int{1, 4, 8, 11, 16} {
		b.Run("YOLO/tasklets="+itoa(tl), func(b *testing.B) {
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				sys, _ := host.NewSystem(2, host.DefaultConfig(dpu.O3))
				maxK, maxN := net.GEMMBounds()
				r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
					MaxK: maxK, MaxN: maxN, Tasklets: tl, TileCols: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				_, st, err := net.Forward(img, r)
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// --- E8: Fig 4.7(b) — threading x compiler optimization for YOLOv3 ---

func BenchmarkFig47bOptimization(b *testing.B) {
	net, err := yolo.New(yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	img := yolo.SyntheticScene(32, 5)
	cases := []struct {
		name string
		opt  dpu.OptLevel
		tl   int
	}{
		{"O0-1t", dpu.O0, 1}, {"O0-11t", dpu.O0, 11},
		{"O3-1t", dpu.O3, 1}, {"O3-11t", dpu.O3, 11},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var sec float64
			for i := 0; i < b.N; i++ {
				sys, _ := host.NewSystem(2, host.DefaultConfig(c.opt))
				maxK, maxN := net.GEMMBounds()
				r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
					MaxK: maxK, MaxN: maxN, Tasklets: c.tl, Naive: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				_, st, err := net.Forward(img, r)
				if err != nil {
					b.Fatal(err)
				}
				sec = st.Seconds
			}
			b.ReportMetric(sec, "sim-seconds")
		})
	}
}

// --- E9: Fig 4.7(c) — eBNN speedup versus the CPU with DPU count ---

func BenchmarkFig47cMultiDPU(b *testing.B) {
	m, imgs := trainBenchModel(b)
	var perImage float64
	for i := 0; i < b.N; i++ {
		st, _ := runEBNN(b, m, imgs, true, 1, 16)
		perImage = st.Seconds / float64(st.Images)
	}
	cpu := model.Xeon()
	series := cpu.SpeedupSeries(perImage, 1e5, []int{1, 256, 2560})
	b.ReportMetric(series[0].Cycles, "speedup-1DPU")
	b.ReportMetric(series[1].Cycles, "speedup-256DPU")
	b.ReportMetric(series[2].Cycles, "speedup-2560DPU")
}

// --- E10: §4.3.1 headline latencies ---

func BenchmarkHeadlineLatency(b *testing.B) {
	b.Run("eBNN-single-DPU", func(b *testing.B) {
		b.ReportAllocs()
		m, imgs := trainBenchModel(b)
		var perImage float64
		for i := 0; i < b.N; i++ {
			st, _ := runEBNN(b, m, imgs, true, 1, 16)
			perImage = st.Seconds / float64(st.Images)
		}
		b.ReportMetric(perImage, "s/image")
		b.ReportMetric(1.48e-3, "paper-s/image")
	})
	b.Run("YOLOv3-full-estimate", func(b *testing.B) {
		b.ReportAllocs()
		net, err := yolo.New(yolo.FullConfig())
		if err != nil {
			b.Fatal(err)
		}
		var total, maxLayer float64
		for i := 0; i < b.N; i++ {
			t, perLayer, err := net.EstimateSeconds(yolo.DefaultEstimateConfig())
			if err != nil {
				b.Fatal(err)
			}
			total = t
			maxLayer = 0
			for _, s := range perLayer {
				if s > maxLayer {
					maxLayer = s
				}
			}
		}
		b.ReportMetric(total, "s/image")
		b.ReportMetric(65, "paper-s/image")
		b.ReportMetric(maxLayer, "max-layer-s")
	})
}

// --- Simulator throughput: wall-clock health of the simulator itself ---

// BenchmarkSimulatorWallClock tracks how fast the simulator runs, as
// opposed to how fast the simulated hardware is: it drives the E7
// YOLO/GEMM forward path on a persistent system/runner pair and reports
// simulated DPU cycles retired per second of host wall-clock time.
// Simulated metrics are invariant under host-side optimization, so this
// is the number perf PRs move (see DESIGN.md "Simulator performance" and
// scripts/bench.sh).
func BenchmarkSimulatorWallClock(b *testing.B) {
	b.ReportAllocs()
	net, err := yolo.New(yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	img := yolo.SyntheticScene(32, 5)
	sys, err := host.NewSystem(2, host.DefaultConfig(dpu.O3))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	maxK, maxN := net.GEMMBounds()
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: 11, TileCols: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		_, st, err := net.Forward(img, r)
		if err != nil {
			b.Fatal(err)
		}
		cycles += st.Cycles
	}
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		b.ReportMetric(float64(cycles)/elapsed, "sim-cycles/s")
	}
}

// --- E11: Table 5.1 — computational model on AlexNet ---

func BenchmarkTable51ComputeModel(b *testing.B) {
	var rows []model.Table51Row
	for i := 0; i < b.N; i++ {
		rows = Table51Rows()
	}
	for _, r := range rows {
		b.ReportMetric(r.TcompTOPs, r.Name+"-Tcomp-s")
	}
}

// Table51Rows wraps the model call so the benchmark loop has a stable
// target.
func Table51Rows() []model.Table51Row { return model.Table51() }

// --- E12: Table 5.2 — multiplication Cop by operand size ---

func BenchmarkTable52Cop(b *testing.B) {
	var tab map[string]map[int]float64
	for i := 0; i < b.N; i++ {
		tab = model.Table52()
	}
	b.ReportMetric(tab["pPIM"][16], "pPIM-16b")   // paper: 124
	b.ReportMetric(tab["pPIM"][32], "pPIM-32b")   // paper: 1016
	b.ReportMetric(tab["DRISA"][32], "DRISA-32b") // paper: 740
	b.ReportMetric(tab["UPMEM"][32], "UPMEM-32b") // paper: 570
}

// --- E13: Fig 5.4 — pPIM adds pattern ---

func BenchmarkFig54AddsPattern(b *testing.B) {
	var adds int
	for i := 0; i < b.N; i++ {
		adds = model.PPIMAddsEstimate(32)
	}
	b.ReportMetric(float64(adds), "adds-32b") // 952 -> 1016 with products
	b.ReportMetric(float64(model.PPIMAddsEstimate(16)), "adds-16b")
}

// --- E14: Fig 5.5 — parameter sweeps ---

func BenchmarkFig55Sweeps(b *testing.B) {
	archs := model.Architectures()
	tops := model.LogSpace(100, 1e6, 50)
	var pts int
	for i := 0; i < b.N; i++ {
		pts = 0
		for _, p := range archs {
			for _, bits := range []int{8, 16, 32} {
				pts += len(p.TOPsSweep(bits, tops))
				pts += len(p.PESweep(bits, 100000, model.LogSpace(1, p.PEs, 50)))
			}
		}
	}
	b.ReportMetric(float64(pts), "series-points")
}

// --- E15: Fig 5.6 — three-PIM comparison ---

func BenchmarkFig56Comparison(b *testing.B) {
	var pts []model.Fig56Point
	for i := 0; i < b.N; i++ {
		pts = model.Fig56()
	}
	for _, p := range pts {
		if p.Bits == 32 {
			b.ReportMetric(p.Cycles, p.PIM+"-32b-cycles")
		}
	}
}

// --- E16: Table 5.3 — memory model ---

func BenchmarkTable53MemoryModel(b *testing.B) {
	var rows []model.Table53Row
	for i := 0; i < b.N; i++ {
		rows = model.Table53()
	}
	for _, r := range rows {
		b.ReportMetric(r.TmemS, r.Name+"-Tmem-s")
	}
}

// --- E17: Table 5.4 / Fig 5.7 — seven-device benchmarking ---

func BenchmarkTable54Benchmarking(b *testing.B) {
	var devs []model.Device
	for i := 0; i < b.N; i++ {
		devs = model.Table54Devices()
	}
	for _, d := range devs {
		b.ReportMetric(d.EBNNThroughputPower(), d.Name+"-eBNN-fsW")
	}
}

func itoa(v int) string {
	if v >= 10 {
		return string(rune('0'+v/10)) + string(rune('0'+v%10))
	}
	return string(rune('0' + v))
}

// Ablation benchmarks for the design choices DESIGN.md calls out and the
// improvements the thesis proposes in §4.3.4 and §6.1: the DPU clock it
// says UPMEM originally promised, the WRAM-tiled kernel versus the
// thesis's MRAM-bound one, the GEMM tile width, and the alternative
// image-per-DPU mapping.
package pimdnn_test

import (
	"math/rand"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/yolo"
)

// BenchmarkAblationFrequency evaluates §4.3.4's "increase in DPU
// frequency to initially stated values": the full YOLOv3 estimate at the
// shipping 350 MHz versus the whitepaper's 600 MHz.
func BenchmarkAblationFrequency(b *testing.B) {
	net, err := yolo.New(yolo.FullConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range []struct {
		name string
		hz   float64
	}{
		{"350MHz-shipping", dpu.DefaultFrequencyHz},
		{"600MHz-whitepaper", dpu.WhitepaperFrequencyHz},
	} {
		b.Run(f.name, func(b *testing.B) {
			ec := yolo.DefaultEstimateConfig()
			ec.FrequencyHz = f.hz
			var total float64
			for i := 0; i < b.N; i++ {
				total, _, err = net.EstimateSeconds(ec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(total, "s/image")
		})
	}
}

// BenchmarkAblationKernel compares the thesis's MRAM-resident-ctmp GEMM
// kernel with the WRAM-tiled improvement §4.3.3 recommends, on one
// representative conv layer.
func BenchmarkAblationKernel(b *testing.B) {
	const m, n, k = 2, 2704, 288
	rng := rand.New(rand.NewSource(50))
	a := make([]int16, m*k)
	bm := make([]int16, k*n)
	for i := range a {
		a[i] = int16(rng.Intn(201) - 100)
	}
	for i := range bm {
		bm[i] = int16(rng.Intn(201) - 100)
	}
	for _, v := range []struct {
		name  string
		naive bool
	}{
		{"naive-mram-ctmp", true},
		{"tiled-wram", false},
	} {
		b.Run(v.name, func(b *testing.B) {
			sys, _ := host.NewSystem(2, host.DefaultConfig(dpu.O3))
			r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
				MaxK: k, MaxN: n, Tasklets: 11, TileCols: 256, Naive: v.naive,
			})
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				_, st, err := r.Multiply(m, n, k, 1, a, bm)
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "dpu-cycles")
		})
	}
}

// BenchmarkAblationTileCols sweeps the tiled kernel's tile width: small
// tiles pay the 25-cycle DMA setup too often, huge tiles starve tasklet
// parallelism on small layers.
func BenchmarkAblationTileCols(b *testing.B) {
	const m, n, k = 1, 2704, 64
	rng := rand.New(rand.NewSource(51))
	a := make([]int16, m*k)
	bm := make([]int16, k*n)
	for i := range a {
		a[i] = int16(rng.Intn(201) - 100)
	}
	for i := range bm {
		bm[i] = int16(rng.Intn(201) - 100)
	}
	// 512 columns is the largest tile whose per-tasklet WRAM area
	// (8 bytes/column x 11 tasklets) still fits the 64 KB WRAM.
	for _, tc := range []int{16, 64, 256, 512} {
		b.Run("tile="+itoa(tc/16)+"x16", func(b *testing.B) {
			sys, _ := host.NewSystem(1, host.DefaultConfig(dpu.O3))
			r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
				MaxK: k, MaxN: n, Tasklets: 11, TileCols: tc,
			})
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				_, st, err := r.Multiply(m, n, k, 1, a, bm)
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "dpu-cycles")
		})
	}
}

// BenchmarkAblationMapping compares the thesis's row-per-DPU mapping with
// the §6.1 future-work image-per-DPU mapping on a 4-image batch of the
// tiny 75-conv network.
func BenchmarkAblationMapping(b *testing.B) {
	net, err := yolo.New(yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]*yolo.Tensor, 4)
	for i := range inputs {
		inputs[i] = yolo.SyntheticScene(32, int64(i))
	}
	maxK, maxN := net.GEMMBounds()

	b.Run("row-per-DPU", func(b *testing.B) {
		sys, _ := host.NewSystem(4, host.DefaultConfig(dpu.O3))
		r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
			MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		var sec float64
		for i := 0; i < b.N; i++ {
			sec = 0
			for _, in := range inputs {
				_, st, err := net.Forward(in, r)
				if err != nil {
					b.Fatal(err)
				}
				sec += st.Seconds
			}
		}
		b.ReportMetric(sec, "sim-seconds-4-images")
	})

	b.Run("image-per-DPU", func(b *testing.B) {
		sys, _ := host.NewSystem(4, host.DefaultConfig(dpu.O3))
		r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
			MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.EnableBatch(net.MaxFilters()); err != nil {
			b.Fatal(err)
		}
		var sec float64
		for i := 0; i < b.N; i++ {
			_, st, err := net.ForwardBatch(inputs, r)
			if err != nil {
				b.Fatal(err)
			}
			sec = st.Seconds
		}
		b.ReportMetric(sec, "sim-seconds-4-images")
	})
}

package dpu

import (
	"strings"
	"testing"
)

func TestMutexProtectsSharedCounter(t *testing.T) {
	d := newTestDPU(t, O3)
	var m Mutex
	counter := 0
	_, err := d.Launch(8, func(tk *Tasklet) error {
		for i := 0; i < 10; i++ {
			m.WithLock(tk, func() { counter++ })
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 80 {
		t.Errorf("counter = %d, want 80", counter)
	}
}

func TestMutexMisuse(t *testing.T) {
	t.Run("unlock without lock", func(t *testing.T) {
		d := newTestDPU(t, O3)
		var m Mutex
		if _, err := d.Launch(1, func(tk *Tasklet) error {
			m.Unlock(tk)
			return nil
		}); err == nil {
			t.Error("unlock without lock accepted")
		}
	})
	t.Run("double lock deadlock", func(t *testing.T) {
		d := newTestDPU(t, O3)
		var m Mutex
		if _, err := d.Launch(1, func(tk *Tasklet) error {
			m.Lock(tk)
			m.Lock(tk)
			return nil
		}); err == nil || !strings.Contains(err.Error(), "deadlock") {
			t.Errorf("double lock not detected: %v", err)
		}
	})
	t.Run("foreign unlock", func(t *testing.T) {
		d := newTestDPU(t, O3)
		var m Mutex
		if _, err := d.Launch(2, func(tk *Tasklet) error {
			if tk.ID() == 0 {
				m.Lock(tk)
			} else {
				m.Unlock(tk)
			}
			return nil
		}); err == nil {
			t.Error("foreign unlock accepted")
		}
	})
}

func TestMutexChargesCycles(t *testing.T) {
	d := newTestDPU(t, O3)
	var m Mutex
	var slots uint64
	if _, err := d.Launch(1, func(tk *Tasklet) error {
		before := tk.IssueSlots()
		m.Lock(tk)
		m.Unlock(tk)
		slots = tk.IssueSlots() - before
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if slots != 2*mutexSlots {
		t.Errorf("mutex round trip charged %d slots, want %d", slots, 2*mutexSlots)
	}
}

func TestBarrierBalanced(t *testing.T) {
	d := newTestDPU(t, O3)
	var b Barrier
	const n = 6
	if _, err := d.Launch(n, func(tk *Tasklet) error {
		for i := 0; i < 3; i++ {
			tk.Charge(OpAddInt, 5)
			b.Wait(tk)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Check(n); err != nil {
		t.Error(err)
	}
}

func TestBarrierDetectsSkippedGeneration(t *testing.T) {
	d := newTestDPU(t, O3)
	var b Barrier
	// Tasklet 0 hits the barrier 3 times, tasklet 1 only once: a
	// divergence that hangs real hardware; Check catches it post-launch.
	if _, err := d.Launch(2, func(tk *Tasklet) error {
		n := 3
		if tk.ID() == 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			b.Wait(tk)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if b.Check(2) == nil {
		t.Error("unbalanced barrier not detected")
	}
}

func TestBarrierCheckArity(t *testing.T) {
	d := newTestDPU(t, O3)
	var b Barrier
	if _, err := d.Launch(4, func(tk *Tasklet) error {
		if tk.ID() < 2 {
			b.Wait(tk) // only half the tasklets arrive
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if b.Check(4) == nil {
		t.Error("partial barrier arrival not detected")
	}
	var empty Barrier
	if err := empty.Check(4); err != nil {
		t.Errorf("unused barrier flagged: %v", err)
	}
}

func TestHandshakeProducerConsumer(t *testing.T) {
	d := newTestDPU(t, O3)
	var h Handshake
	// Tasklet 0 stages data into WRAM and notifies; tasklet 1 waits and
	// consumes — the staging idiom with explicit synchronization.
	var consumed int8
	if _, err := d.Launch(2, func(tk *Tasklet) error {
		if tk.ID() == 0 {
			tk.Store8(0, 42)
			h.Notify(tk, "staged")
			return nil
		}
		h.WaitFor(tk, "staged")
		consumed = tk.Load8(0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if consumed != 42 {
		t.Errorf("consumed %d, want 42", consumed)
	}
}

func TestHandshakeDeadlockDetection(t *testing.T) {
	d := newTestDPU(t, O3)
	var h Handshake
	if _, err := d.Launch(1, func(tk *Tasklet) error {
		h.WaitFor(tk, "never")
		return nil
	}); err == nil {
		t.Error("wait on unnotified channel accepted")
	}
	// Reverse order: tasklet 0 waits on a channel tasklet 1 notifies —
	// impossible under the sequential scheduler.
	d2 := newTestDPU(t, O3)
	var h2 Handshake
	if _, err := d2.Launch(2, func(tk *Tasklet) error {
		if tk.ID() == 1 {
			h2.Notify(tk, "late")
			return nil
		}
		h2.WaitFor(tk, "late")
		return nil
	}); err == nil {
		t.Error("order violation accepted")
	}
}

func TestLogfAndReadLog(t *testing.T) {
	d := newTestDPU(t, O3)
	if _, err := d.Launch(2, func(tk *Tasklet) error {
		tk.Logf("hello from %d", tk.ID())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	log := d.ReadLog()
	if !strings.Contains(log, "[tasklet 0] hello from 0") ||
		!strings.Contains(log, "[tasklet 1] hello from 1") {
		t.Errorf("log = %q", log)
	}
	if d.ReadLog() != "" {
		t.Error("ReadLog did not drain")
	}
}

func TestLogfChargesCycles(t *testing.T) {
	d := newTestDPU(t, O3)
	var slots, dma uint64
	if _, err := d.Launch(1, func(tk *Tasklet) error {
		s0, d0 := tk.IssueSlots(), tk.DMACycles()
		tk.Logf("x")
		slots, dma = tk.IssueSlots()-s0, tk.DMACycles()-d0
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if slots == 0 || dma == 0 {
		t.Errorf("Logf charged slots=%d dma=%d, want both > 0", slots, dma)
	}
}

func TestLogBounded(t *testing.T) {
	d := newTestDPU(t, O3)
	if _, err := d.Launch(1, func(tk *Tasklet) error {
		for i := 0; i < 5000; i++ {
			tk.Logf("padding line %d with some content", i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n := len(d.ReadLog()); n > maxLogBytes {
		t.Errorf("log grew to %d bytes, cap %d", n, maxLogBytes)
	}
}

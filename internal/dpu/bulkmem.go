package dpu

import "fmt"

// Kernel-emulation memory access. Kernels that account for their work
// with CostBlock/ChargeDMA compute natively on host memory and move
// data in bulk; these helpers give them the data movement with one lock
// acquisition per call instead of one per simulated transfer. None of
// them charge cycles or meter telemetry: the modeled DMA traffic is
// charged separately (and the launch-end aggregation meters it), so a
// kernel that used these for its data and ChargeBlock for its cycles
// reports exactly the same counters as one that moved every chunk
// through MRAMToWRAM.

// WRAMWindow returns a direct view of WRAM [off, off+n) for kernel
// emulation. No cycles are charged; the caller accounts for its loads
// and stores via ChargeBlock. The view aliases live WRAM: it is valid
// only inside the current launch and must not be retained.
func (t *Tasklet) WRAMWindow(off, n int64) []byte {
	if n < 0 || off < 0 || off+n > int64(t.dpu.cfg.WRAMSize) {
		t.trapf("WRAM window [%d, %d) outside [0, %d)", off, off+n, t.dpu.cfg.WRAMSize)
	}
	return t.dpu.wram[off : off+n]
}

// CopyFromMRAMRawInto reads len(dst) bytes of MRAM at off into dst
// under one lock, without metering host-transfer telemetry. The
// alignment rules match the DMA engine's, catching kernel layout bugs.
func (d *DPU) CopyFromMRAMRawInto(off int64, dst []byte) error {
	if err := d.checkDMAArgs(off, len(dst)); err != nil {
		return err
	}
	d.mu.Lock()
	d.mramRead(off, dst)
	d.mu.Unlock()
	return nil
}

// CopyToMRAMRaw writes data to MRAM at off under one lock, without
// metering host-transfer telemetry.
func (d *DPU) CopyToMRAMRaw(off int64, data []byte) error {
	if err := d.checkDMAArgs(off, len(data)); err != nil {
		return err
	}
	d.mu.Lock()
	d.mramWrite(off, data)
	d.mu.Unlock()
	return nil
}

// CopyFromMRAMStridedInto reads rows of rowBytes bytes spaced stride
// bytes apart, starting at off, packing them contiguously into dst
// (len(dst) must be a multiple of rowBytes; len(dst)/rowBytes rows are
// read). The lock is taken once for the whole strided read — this is
// what lets a tiled kernel fetch a K-deep column block in one call
// instead of K round trips.
func (d *DPU) CopyFromMRAMStridedInto(off, stride int64, rowBytes int, dst []byte) error {
	if rowBytes <= 0 || len(dst)%rowBytes != 0 {
		return fmt.Errorf("dpu: strided MRAM read: dst %d bytes not a multiple of row size %d", len(dst), rowBytes)
	}
	rows := len(dst) / rowBytes
	if rows == 0 {
		return nil
	}
	if off%DMAAlignment != 0 || stride%DMAAlignment != 0 || rowBytes%DMAAlignment != 0 {
		return fmt.Errorf("dpu: strided MRAM read off=%d stride=%d row=%d violates %d-byte alignment",
			off, stride, rowBytes, DMAAlignment)
	}
	last := off + int64(rows-1)*stride
	if off < 0 || stride < 0 || last+int64(rowBytes) > d.cfg.MRAMSize {
		return fmt.Errorf("dpu: strided MRAM read [%d, %d) outside [0, %d)", off, last+int64(rowBytes), d.cfg.MRAMSize)
	}
	d.mu.Lock()
	for i := 0; i < rows; i++ {
		d.mramRead(off+int64(i)*stride, dst[i*rowBytes:(i+1)*rowBytes])
	}
	d.mu.Unlock()
	return nil
}

// ForEachMRAMRowStrided invokes fn(i, row) for rows rows of rowBytes
// bytes spaced stride bytes apart starting at off, under one lock, with
// row aliasing the MRAM page directly whenever the row does not cross a
// page boundary (boundary-crossing rows — at most one per 64 KB — are
// staged through a small internal buffer). The zero-copy variant of
// CopyFromMRAMStridedInto for kernels that consume each row once. fn
// must not retain row and must not call other DPU methods (the lock is
// held).
func (d *DPU) ForEachMRAMRowStrided(off, stride int64, rowBytes, rows int, fn func(i int, row []byte)) error {
	if rowBytes <= 0 || rows < 0 {
		return fmt.Errorf("dpu: strided MRAM walk: bad row size %d / count %d", rowBytes, rows)
	}
	if rows == 0 {
		return nil
	}
	if off%DMAAlignment != 0 || stride%DMAAlignment != 0 || rowBytes%DMAAlignment != 0 {
		return fmt.Errorf("dpu: strided MRAM walk off=%d stride=%d row=%d violates %d-byte alignment",
			off, stride, rowBytes, DMAAlignment)
	}
	last := off + int64(rows-1)*stride
	if off < 0 || stride < 0 || last+int64(rowBytes) > d.cfg.MRAMSize {
		return fmt.Errorf("dpu: strided MRAM walk [%d, %d) outside [0, %d)", off, last+int64(rowBytes), d.cfg.MRAMSize)
	}
	d.mu.Lock()
	if cap(d.rowScratch) < rowBytes {
		d.rowScratch = make([]byte, rowBytes)
	}
	// The page index and intra-page offset advance incrementally with
	// the stride: per row this costs an add and a compare, with the page
	// lookup re-done only on page change.
	page := off / mramPageSize
	po := off % mramPageSize
	pageBuf := d.mramPages[page]
	for i := 0; i < rows; i++ {
		if po+int64(rowBytes) <= mramPageSize && pageBuf != nil {
			fn(i, pageBuf[po:po+int64(rowBytes)])
		} else {
			// Page boundary crossing or untouched (all-zero) page: stage.
			buf := d.rowScratch[:rowBytes]
			d.mramRead(off+int64(i)*stride, buf)
			fn(i, buf)
		}
		if po += stride; po >= mramPageSize {
			adv := po / mramPageSize
			page += adv
			po -= adv * mramPageSize
			if page < int64(len(d.mramPages)) {
				pageBuf = d.mramPages[page]
			} else {
				pageBuf = nil
			}
		}
	}
	d.mu.Unlock()
	return nil
}

// ForEachMRAMRowRuns is ForEachMRAMRowStrided with the callback invoked
// once per run of page-resident rows instead of once per row: fn
// receives the index of the run's first row, the row count, a block
// aliasing MRAM (or staging) where row first+r starts at
// block[r*blockStride], and that stride. Runs cover all rows in order.
// A blockStride of 0 means every row of the run aliases the same bytes
// (the shared zero row of an untouched page). fn must not write block
// or retain it, and must not call other DPU methods (the lock is held).
func (d *DPU) ForEachMRAMRowRuns(off, stride int64, rowBytes, rows int, fn func(first, count int, block []byte, blockStride int)) error {
	if rowBytes <= 0 || rows < 0 {
		return fmt.Errorf("dpu: strided MRAM walk: bad row size %d / count %d", rowBytes, rows)
	}
	if rows == 0 {
		return nil
	}
	if off%DMAAlignment != 0 || stride%DMAAlignment != 0 || rowBytes%DMAAlignment != 0 {
		return fmt.Errorf("dpu: strided MRAM walk off=%d stride=%d row=%d violates %d-byte alignment",
			off, stride, rowBytes, DMAAlignment)
	}
	last := off + int64(rows-1)*stride
	if off < 0 || stride < 0 || last+int64(rowBytes) > d.cfg.MRAMSize {
		return fmt.Errorf("dpu: strided MRAM walk [%d, %d) outside [0, %d)", off, last+int64(rowBytes), d.cfg.MRAMSize)
	}
	d.mu.Lock()
	if cap(d.rowScratch) < rowBytes {
		d.rowScratch = make([]byte, rowBytes)
	}
	for i := 0; i < rows; {
		ro := off + int64(i)*stride
		page := ro / mramPageSize
		po := ro % mramPageSize
		if po+int64(rowBytes) <= mramPageSize {
			// How many consecutive rows stay fully inside this page?
			count := rows - i
			if stride > 0 {
				if fit := int((mramPageSize-po-int64(rowBytes))/stride) + 1; fit < count {
					count = fit
				}
			}
			if buf := d.mramPages[page]; buf != nil {
				fn(i, count, buf[po:], int(stride))
			} else {
				// Untouched page: every row reads as zero.
				zero := d.rowScratch[:rowBytes]
				for b := range zero {
					zero[b] = 0
				}
				fn(i, count, zero, 0)
			}
			i += count
			continue
		}
		// Page-boundary-crossing row: stage it alone.
		buf := d.rowScratch[:rowBytes]
		d.mramRead(ro, buf)
		fn(i, 1, buf, 0)
		i++
	}
	d.mu.Unlock()
	return nil
}

// --- per-launch shared state ---

// SetLaunchLocal stashes host-side state shared by the tasklets of the
// current launch (tasklets run serially in ID order, so no locking is
// needed). Kernels use it so per-launch work — decoding a staged
// operand row, say — happens once per DPU instead of once per tasklet.
// The slot is cleared when the launch ends.
func (t *Tasklet) SetLaunchLocal(v interface{}) { t.dpu.launchLocal = v }

// LaunchLocal returns the state stored by SetLaunchLocal, or nil if no
// tasklet of this launch has stored any.
func (t *Tasklet) LaunchLocal() interface{} { return t.dpu.launchLocal }

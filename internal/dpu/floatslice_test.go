package dpu

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestFloatSliceChargeParity verifies that each batched softfloat helper
// charges exactly what a scalar loop over the same lanes charges —
// issue slots, instruction mix, subroutine profile — and computes the
// same lanes, at every optimization level.
func TestFloatSliceChargeParity(t *testing.T) {
	const lanes = 257 // odd, larger than any internal batching granularity
	rng := rand.New(rand.NewSource(99))
	a := make([]uint32, lanes)
	b := make([]uint32, lanes)
	v := make([]int32, lanes)
	for i := range a {
		a[i] = rng.Uint32()
		b[i] = rng.Uint32()
		v[i] = int32(rng.Uint32())
	}

	type variant struct {
		name   string
		bulk   func(tk *Tasklet, dst []uint32)
		scalar func(tk *Tasklet, dst []uint32)
	}
	variants := []variant{
		{"FAddSlice",
			func(tk *Tasklet, dst []uint32) { tk.FAddSlice(dst, a, b) },
			func(tk *Tasklet, dst []uint32) {
				for i := range dst {
					dst[i] = tk.FAdd(a[i], b[i])
				}
			}},
		{"FSubSlice",
			func(tk *Tasklet, dst []uint32) { tk.FSubSlice(dst, a, b) },
			func(tk *Tasklet, dst []uint32) {
				for i := range dst {
					dst[i] = tk.FSub(a[i], b[i])
				}
			}},
		{"FMulSlice",
			func(tk *Tasklet, dst []uint32) { tk.FMulSlice(dst, a, b) },
			func(tk *Tasklet, dst []uint32) {
				for i := range dst {
					dst[i] = tk.FMul(a[i], b[i])
				}
			}},
		{"FDivSlice",
			func(tk *Tasklet, dst []uint32) { tk.FDivSlice(dst, a, b) },
			func(tk *Tasklet, dst []uint32) {
				for i := range dst {
					dst[i] = tk.FDiv(a[i], b[i])
				}
			}},
		{"FMACSlice",
			func(tk *Tasklet, dst []uint32) {
				copy(dst, b)
				tk.FMACSlice(dst, a, b)
			},
			func(tk *Tasklet, dst []uint32) {
				copy(dst, b)
				for i := range dst {
					dst[i] = tk.FAdd(dst[i], tk.FMul(a[i], b[i]))
				}
			}},
		{"FFromIntSlice",
			func(tk *Tasklet, dst []uint32) { tk.FFromIntSlice(dst, v) },
			func(tk *Tasklet, dst []uint32) {
				for i := range dst {
					dst[i] = tk.FFromInt(v[i])
				}
			}},
	}

	run := func(opt OptLevel, body func(tk *Tasklet, dst []uint32)) ([]uint32, Stats, map[string]uint64) {
		d := newTestDPU(t, opt)
		dst := make([]uint32, lanes)
		st, err := d.Launch(1, func(tk *Tasklet) error {
			body(tk, dst)
			return nil
		})
		if err != nil {
			t.Fatalf("Launch: %v", err)
		}
		return dst, st, d.Profile().Snapshot()
	}

	for _, opt := range []OptLevel{O0, O1, O2, O3} {
		for _, vr := range variants {
			gotDst, gotSt, gotProf := run(opt, vr.bulk)
			wantDst, wantSt, wantProf := run(opt, vr.scalar)
			if !reflect.DeepEqual(gotDst, wantDst) {
				t.Errorf("%s O%d: lanes diverge from scalar loop", vr.name, int(opt))
			}
			if gotSt.IssueSlots != wantSt.IssueSlots || gotSt.Cycles != wantSt.Cycles {
				t.Errorf("%s O%d: slots/cycles %d/%d, scalar %d/%d",
					vr.name, int(opt), gotSt.IssueSlots, gotSt.Cycles, wantSt.IssueSlots, wantSt.Cycles)
			}
			if gotSt.OpCounts != wantSt.OpCounts {
				t.Errorf("%s O%d: instruction mix diverges:\nbulk:   %v\nscalar: %v",
					vr.name, int(opt), gotSt.OpCounts, wantSt.OpCounts)
			}
			if !reflect.DeepEqual(gotProf, wantProf) {
				t.Errorf("%s O%d: subroutine profile diverges:\nbulk:   %v\nscalar: %v",
					vr.name, int(opt), gotProf, wantProf)
			}
		}
	}
}

// Package dpu simulates the UPMEM DRAM Processing Unit (DPU).
//
// The simulator is functional + cycle-accounting: kernels are Go
// functions that perform real computation against simulated WRAM/MRAM,
// while every arithmetic operation, WRAM access and DMA transfer charges
// cycles according to a cost model calibrated to the thesis's
// measurements (Table 3.1, Eq 3.4). DPU completion time follows the
// revolver-pipeline model of the real hardware: a tasklet may dispatch at
// most one instruction per pipeline revolution (11 cycles), and the
// pipeline retires at most one instruction per cycle, so
//
//	cycles = max( Σ_t slots_t,                  // pipeline throughput
//	              max_t (11·slots_t + dma_t),   // per-tasklet critical path
//	              Σ_t dma_t )                   // single shared DMA engine
//
// which reproduces the thesis's observed tasklet-speedup saturation at 11
// tasklets (Fig 4.7a) and the MRAM-bound behaviour of large kernels.
package dpu

import "fmt"

// Table 2.1 — UPMEM PIM attributes used as simulator defaults.
const (
	// SystemDPUs is the number of DPUs in the full evaluated system
	// (20 DIMMs).
	SystemDPUs = 2560
	// DPUsPerDIMM is the number of DPUs on one DIMM.
	DPUsPerDIMM = 128
	// DPUsPerRank is the number of DPUs in one DIMM rank (two ranks per
	// DIMM, eight chips per rank). The rank is the unit the SDK drives
	// with one command queue and the granularity of parallel host<->MRAM
	// transfer channels: the full system is 40 ranks of 64 DPUs.
	DPUsPerRank = 64
	// DPUsPerChip is the number of DPUs in one PIM chip.
	DPUsPerChip = 8
	// DefaultMRAMSize is the per-DPU main RAM size (64 MB).
	DefaultMRAMSize = 64 << 20
	// DefaultWRAMSize is the per-DPU working RAM size (64 KB).
	DefaultWRAMSize = 64 << 10
	// DefaultIRAMSize is the per-DPU instruction RAM size (24 KB).
	DefaultIRAMSize = 24 << 10
	// PipelineDepth is the number of DPU pipeline stages; tasklet
	// speedup saturates here (Fig 4.7a).
	PipelineDepth = 11
	// MaxTasklets is the per-DPU hardware thread limit.
	MaxTasklets = 24
	// RegistersPerThread is the per-tasklet register file size.
	RegistersPerThread = 32
	// DefaultFrequencyHz is the shipping DPU clock (350 MHz; the white
	// paper originally promised 600 MHz — §4.3.4).
	DefaultFrequencyHz = 350e6
	// WhitepaperFrequencyHz is the originally announced clock used by
	// the thesis's improvement discussion.
	WhitepaperFrequencyHz = 600e6
	// DPUAreaMM2 is the area of a single DPU in mm² (Table 2.1).
	DPUAreaMM2 = 3.75
	// DPUPowerW is the power consumption of a single DPU in watts.
	DPUPowerW = 0.120

	// MaxDMATransfer is the largest single MRAM<->WRAM DMA transfer in
	// bytes. It is why at most 16 MNIST images (16×784 ≤ 16×128 rounded
	// regions) move per transfer in the eBNN mapping (§4.1.3).
	MaxDMATransfer = 2048
	// DMAAlignment is the required alignment and size granularity of
	// MRAM transfers (§3.2: aligned on 8 bytes and divisible by 8).
	DMAAlignment = 8
	// DMASetupCycles is the fixed cost of engaging the DMA engine
	// (Eq 3.4).
	DMASetupCycles = 25
	// DMABytesPerCycle is the DMA streaming rate: 1 cycle per 2 bytes
	// (Eq 3.4).
	DMABytesPerCycle = 2
)

// Config parameterizes a simulated DPU. The zero value is not usable;
// call DefaultConfig.
type Config struct {
	// MRAMSize is the MRAM capacity in bytes.
	MRAMSize int64
	// WRAMSize is the WRAM capacity in bytes.
	WRAMSize int
	// IRAMSize is the IRAM capacity in bytes.
	IRAMSize int
	// FrequencyHz converts cycles to seconds.
	FrequencyHz float64
	// Opt selects the compiler optimization level the cost model
	// emulates (§3.1: dpu-clang -O0..-O3).
	Opt OptLevel
}

// DefaultConfig returns the Table 2.1 configuration at the given
// optimization level.
func DefaultConfig(opt OptLevel) Config {
	return Config{
		MRAMSize:    DefaultMRAMSize,
		WRAMSize:    DefaultWRAMSize,
		IRAMSize:    DefaultIRAMSize,
		FrequencyHz: DefaultFrequencyHz,
		Opt:         opt,
	}
}

func (c Config) validate() error {
	if c.MRAMSize <= 0 || c.WRAMSize <= 0 || c.IRAMSize <= 0 {
		return fmt.Errorf("dpu: non-positive memory size in config %+v", c)
	}
	if c.FrequencyHz <= 0 {
		return fmt.Errorf("dpu: non-positive frequency %v", c.FrequencyHz)
	}
	if c.Opt < O0 || c.Opt > O3 {
		return fmt.Errorf("dpu: invalid optimization level %d", c.Opt)
	}
	return nil
}

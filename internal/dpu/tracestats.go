package dpu

import "pimdnn/internal/trace"

// AnnotateSpan attaches one launch's cost-model results to a request
// span as numeric attributes — the per-launch cycle/issue/DMA detail a
// trace viewer shows next to the kernel slice. The receiver is the
// launch's Stats; callers pass the span for the launch (or the per-DPU
// kernel slice). Nil-span safe, like every span method.
func (st *Stats) AnnotateSpan(sp *trace.Span) {
	if sp == nil {
		return
	}
	sp.SetAttr("tasklets", int64(st.Tasklets))
	sp.SetAttr("cycles", int64(st.Cycles))
	sp.SetAttr("issue_slots", int64(st.IssueSlots))
	sp.SetAttr("dma_cycles", int64(st.DMACycles))
	sp.SetAttr("sim_ns", st.Time.Nanoseconds())
	sp.SetAttr("energy_uj", int64(st.EnergyJ*1e6))
}

package dpu

import (
	"strings"
	"testing"

	"pimdnn/internal/softfloat"
)

func newTestDPU(t *testing.T, opt OptLevel) *DPU {
	t.Helper()
	d, err := New(DefaultConfig(opt))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

// profileOp runs a Fig 3.1-style measurement: perfcounter around a single
// operation plus the harness overhead, one tasklet, and returns cycles.
func profileOp(t *testing.T, opt OptLevel, body func(tk *Tasklet)) uint64 {
	t.Helper()
	d := newTestDPU(t, opt)
	var cycles uint64
	_, err := d.Launch(1, func(tk *Tasklet) error {
		tk.PerfcounterConfig()
		tk.Charge(OpNop, profilingOverheadSlots) // harness instructions
		body(tk)
		cycles = tk.PerfcounterGet()
		return nil
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return cycles
}

// TestTable31OpCycles reproduces Table 3.1: cycles for single operations
// at O0 with one tasklet. The thesis notes the measured values include
// profiling overhead, so we assert to within 2% of the published numbers.
func TestTable31OpCycles(t *testing.T) {
	tests := []struct {
		name  string
		body  func(tk *Tasklet)
		paper uint64
	}{
		{"add 8/16/32-bit", func(tk *Tasklet) { tk.Add32(3, 4) }, 272},
		{"sub 8/16/32-bit", func(tk *Tasklet) { tk.Sub32(3, 4) }, 272},
		{"mul 8-bit", func(tk *Tasklet) { tk.Mul8(3, 4) }, 272},
		{"mul 16-bit", func(tk *Tasklet) { tk.Mul16(300, 40) }, 608},
		{"mul 32-bit", func(tk *Tasklet) { tk.Mul32(300000, 40) }, 800},
		{"div fixed", func(tk *Tasklet) { tk.Div32(300, 4) }, 368},
		{"float add", func(tk *Tasklet) { tk.FAdd(0x3F800000, 0x40000000) }, 896},
		{"float sub", func(tk *Tasklet) { tk.FSub(0x3F800000, 0x40000000) }, 928},
		{"float mul", func(tk *Tasklet) { tk.FMul(0x3F800000, 0x40000000) }, 2528},
		{"float div", func(tk *Tasklet) { tk.FDiv(0x3F800000, 0x40000000) }, 12064},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := profileOp(t, O0, tt.body)
			lo := tt.paper * 98 / 100
			hi := tt.paper * 102 / 100
			if got < lo || got > hi {
				t.Errorf("profiled %s = %d cycles, paper %d (tolerance 2%%)", tt.name, got, tt.paper)
			}
		})
	}
}

// TestTable31Ratios checks the comparative claims the thesis derives from
// Table 3.1 (§3.3.1).
func TestTable31Ratios(t *testing.T) {
	add := profileOp(t, O0, func(tk *Tasklet) { tk.Add32(1, 2) })
	mul32 := profileOp(t, O0, func(tk *Tasklet) { tk.Mul32(1, 2) })
	fadd := profileOp(t, O0, func(tk *Tasklet) { tk.FAdd(1, 2) })
	fmul := profileOp(t, O0, func(tk *Tasklet) { tk.FMul(1, 2) })

	checkRatio := func(name string, num, den uint64, want float64) {
		got := float64(num) / float64(den)
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("%s ratio = %.2f, paper ~%.1f", name, got, want)
		}
	}
	checkRatio("mul32/add32", mul32, add, 2.9)
	checkRatio("fadd/add32", fadd, add, 3.3)
	checkRatio("fmul/mul32", fmul, mul32, 3.2)
	// The thesis prose says ~2.3x here, but its own Table 3.1 gives
	// 2528/896 = 2.82; we calibrate to the table.
	checkRatio("fmul/fadd", fmul, fadd, 2.82)
}

// TestEq34MRAMAccess reproduces Eq 3.4: a 2048-byte MRAM->WRAM transfer
// costs exactly 25 + 2048/2 = 1049 cycles.
func TestEq34MRAMAccess(t *testing.T) {
	d := newTestDPU(t, O0)
	var dma uint64
	_, err := d.Launch(1, func(tk *Tasklet) error {
		tk.MRAMToWRAM(0, 0, 2048)
		dma = tk.DMACycles()
		return nil
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if dma != 1049 {
		t.Errorf("2048-byte DMA = %d cycles, want 1049 (Eq 3.4)", dma)
	}
}

func TestDMACycleFormula(t *testing.T) {
	tests := []struct {
		bytes int
		want  uint64
	}{
		{8, 29},
		{16, 33},
		{64, 57},
		{1024, 537},
		{2048, 1049},
	}
	for _, tt := range tests {
		if got := dmaCycles(tt.bytes); got != tt.want {
			t.Errorf("dmaCycles(%d) = %d, want %d", tt.bytes, got, tt.want)
		}
	}
}

// TestTaskletSpeedup verifies the pipeline model: for balanced work the
// speedup over one tasklet is min(T, 11) — Fig 4.7(a)'s saturation.
func TestTaskletSpeedup(t *testing.T) {
	const slotsPerTasklet = 1000
	run := func(n int) uint64 {
		d := newTestDPU(t, O3)
		st, err := d.Launch(n, func(tk *Tasklet) error {
			tk.Charge(OpAddInt, slotsPerTasklet)
			return nil
		})
		if err != nil {
			t.Fatalf("Launch(%d): %v", n, err)
		}
		return st.Cycles
	}
	base := run(1)
	if base != slotsPerTasklet*PipelineDepth {
		t.Fatalf("1 tasklet = %d cycles, want %d", base, slotsPerTasklet*PipelineDepth)
	}
	for _, n := range []int{2, 4, 8, 11, 16, 24} {
		got := run(n)
		// n tasklets perform n x the work of the single-tasklet run.
		speedup := float64(base) * float64(n) / float64(got)
		want := float64(n)
		if n > PipelineDepth {
			want = PipelineDepth
		}
		if speedup < want*0.99 || speedup > want*1.01 {
			t.Errorf("%d tasklets: speedup %.2f, want %.2f", n, speedup, want)
		}
	}
}

// TestDMASerialization: the single DMA engine bounds completion time when
// transfers dominate.
func TestDMASerialization(t *testing.T) {
	d := newTestDPU(t, O3)
	const n = 8
	st, err := d.Launch(n, func(tk *Tasklet) error {
		for i := 0; i < 4; i++ {
			tk.MRAMToWRAM(0, int64(tk.ID())*4096, 2048)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	wantDMA := uint64(n * 4 * 1049)
	if st.DMACycles != wantDMA {
		t.Errorf("DMACycles = %d, want %d", st.DMACycles, wantDMA)
	}
	if st.Cycles < wantDMA {
		t.Errorf("Cycles = %d < serialized DMA %d", st.Cycles, wantDMA)
	}
}

func TestMul16OptimizationCollapse(t *testing.T) {
	// At O0 the 16-bit multiply calls __mulsi3; at O3 it inlines (§3.3).
	d0 := newTestDPU(t, O0)
	if _, err := d0.Launch(1, func(tk *Tasklet) error { tk.Mul16(100, 100); return nil }); err != nil {
		t.Fatal(err)
	}
	if occ := d0.Profile().Occ(softfloat.SubMulSI3); occ != 1 {
		t.Errorf("O0 mul16 __mulsi3 occ = %d, want 1", occ)
	}

	d3 := newTestDPU(t, O3)
	if _, err := d3.Launch(1, func(tk *Tasklet) error { tk.Mul16(100, 100); return nil }); err != nil {
		t.Fatal(err)
	}
	if occ := d3.Profile().Occ(softfloat.SubMulSI3); occ != 0 {
		t.Errorf("O3 mul16 __mulsi3 occ = %d, want 0", occ)
	}

	// 32-bit multiply keeps the subroutine even at O3.
	if _, err := d3.Launch(1, func(tk *Tasklet) error { tk.Mul32(100, 100); return nil }); err != nil {
		t.Fatal(err)
	}
	if occ := d3.Profile().Occ(softfloat.SubMulSI3); occ != 1 {
		t.Errorf("O3 mul32 __mulsi3 occ = %d, want 1", occ)
	}
}

func TestFloatSubroutineProfile(t *testing.T) {
	d := newTestDPU(t, O0)
	_, err := d.Launch(1, func(tk *Tasklet) error {
		a := tk.FFromInt(3)
		b := tk.FFromInt(4)
		s := tk.FAdd(a, b)
		p := tk.FMul(s, b)
		q := tk.FDiv(p, a)
		if tk.FLt(q, a) {
			return nil
		}
		_ = tk.FToInt(q)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Profile()
	wantOcc := map[string]uint64{
		softfloat.SubFloatSiSF: 2,
		softfloat.SubAddSF3:    1,
		softfloat.SubMulSF3:    1,
		softfloat.SubDivSF3:    1,
		softfloat.SubLtSF2:     1,
		softfloat.SubFixSFSi:   1,
	}
	for name, want := range wantOcc {
		if got := p.Occ(name); got != want {
			t.Errorf("occ[%s] = %d, want %d", name, got, want)
		}
	}
	if fs := p.FloatSubroutines(); len(fs) != 6 {
		t.Errorf("FloatSubroutines = %v, want 6 entries", fs)
	}
}

func TestFloatOpsComputeCorrectly(t *testing.T) {
	d := newTestDPU(t, O0)
	_, err := d.Launch(1, func(tk *Tasklet) error {
		three := softfloat.FromFloat32(3)
		four := softfloat.FromFloat32(4)
		if got := softfloat.ToFloat32(tk.FAdd(three, four)); got != 7 {
			t.Errorf("FAdd = %v", got)
		}
		if got := softfloat.ToFloat32(tk.FMul(three, four)); got != 12 {
			t.Errorf("FMul = %v", got)
		}
		if got := softfloat.ToFloat32(tk.FDiv(three, four)); got != 0.75 {
			t.Errorf("FDiv = %v", got)
		}
		if got := tk.FToInt(softfloat.FromFloat32(-2.9)); got != -2 {
			t.Errorf("FToInt = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWRAMLoadStore(t *testing.T) {
	d := newTestDPU(t, O0)
	_, err := d.Launch(1, func(tk *Tasklet) error {
		tk.Store8(0, -5)
		tk.Store16(2, -1234)
		tk.Store32(4, 0xDEADBEEF)
		tk.StoreI32(8, -99)
		if tk.Load8(0) != -5 || tk.Load16(2) != -1234 ||
			tk.Load32(4) != 0xDEADBEEF || tk.LoadI32(8) != -99 {
			t.Error("WRAM round trip mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWRAMFaults(t *testing.T) {
	tests := []struct {
		name   string
		kernel KernelFunc
	}{
		{"oob load", func(tk *Tasklet) error { tk.Load8(int64(DefaultWRAMSize)); return nil }},
		{"oob store", func(tk *Tasklet) error { tk.Store32(int64(DefaultWRAMSize)-2, 0); return nil }},
		{"misaligned 32", func(tk *Tasklet) error { tk.Load32(2); return nil }},
		{"misaligned 16", func(tk *Tasklet) error { tk.Load16(1); return nil }},
		{"negative", func(tk *Tasklet) error { tk.Load8(-1); return nil }},
		{"div zero", func(tk *Tasklet) error { tk.Div32(1, 0); return nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := newTestDPU(t, O0)
			if _, err := d.Launch(1, tt.kernel); err == nil {
				t.Errorf("%s: expected fault error", tt.name)
			}
		})
	}
}

func TestDMAFaults(t *testing.T) {
	tests := []struct {
		name   string
		kernel KernelFunc
	}{
		{"size not multiple of 8", func(tk *Tasklet) error { tk.MRAMToWRAM(0, 0, 12); return nil }},
		{"size over 2048", func(tk *Tasklet) error { tk.MRAMToWRAM(0, 0, 2056); return nil }},
		{"misaligned mram", func(tk *Tasklet) error { tk.MRAMToWRAM(0, 4, 8); return nil }},
		{"wram oob", func(tk *Tasklet) error { tk.MRAMToWRAM(int64(DefaultWRAMSize)-4, 0, 8); return nil }},
		{"zero size", func(tk *Tasklet) error { tk.WRAMToMRAM(0, 0, 0); return nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := newTestDPU(t, O0)
			if _, err := d.Launch(1, tt.kernel); err == nil {
				t.Errorf("%s: expected fault error", tt.name)
			}
		})
	}
}

func TestDMADataIntegrity(t *testing.T) {
	d := newTestDPU(t, O0)
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	if err := d.CopyToMRAM(1024, src); err != nil {
		t.Fatal(err)
	}
	_, err := d.Launch(1, func(tk *Tasklet) error {
		tk.MRAMToWRAM(0, 1024, 256)
		for i := 0; i < 256; i++ {
			if byte(tk.Load8(int64(i))) != byte(i) {
				t.Fatalf("WRAM[%d] = %d after DMA, want %d", i, tk.Load8(int64(i)), i)
			}
		}
		// Modify and push back to a different MRAM region.
		tk.Store8(0, 77)
		tk.WRAMToMRAM(4096, 0, 256)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := d.CopyFromMRAM(4096, 256)
	if err != nil {
		t.Fatal(err)
	}
	if back[0] != 77 || back[1] != 1 || back[255] != 255 {
		t.Errorf("MRAM writeback corrupted: % x", back[:4])
	}
}

func TestMRAMZeroFill(t *testing.T) {
	d := newTestDPU(t, O0)
	// Reading never-written MRAM returns zeros (lazy paging).
	data, err := d.CopyFromMRAM(32<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data {
		if b != 0 {
			t.Fatalf("untouched MRAM[%d] = %d, want 0", i, b)
		}
	}
}

func TestMRAMPageStraddle(t *testing.T) {
	d := newTestDPU(t, O0)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 7)
	}
	off := int64(mramPageSize - 2048) // straddles a page boundary
	if err := d.CopyToMRAM(off, src); err != nil {
		t.Fatal(err)
	}
	got, err := d.CopyFromMRAM(off, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("page-straddling MRAM[%d] = %d, want %d", i, got[i], src[i])
		}
	}
}

func TestHostTransferAlignment(t *testing.T) {
	d := newTestDPU(t, O0)
	if err := d.CopyToMRAM(4, make([]byte, 8)); err == nil {
		t.Error("unaligned host MRAM write accepted")
	}
	if err := d.CopyToMRAM(0, make([]byte, 12)); err == nil {
		t.Error("unpadded host MRAM write accepted (must be divisible by 8)")
	}
	if _, err := d.CopyFromMRAM(0, 12); err == nil {
		t.Error("unpadded host MRAM read accepted")
	}
}

func TestAllocators(t *testing.T) {
	d := newTestDPU(t, O0)
	s1, err := d.AllocMRAM("input", 100)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Size != 104 {
		t.Errorf("MRAM alloc size = %d, want 104 (rounded to 8)", s1.Size)
	}
	s2, err := d.AllocMRAM("output", 64)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Offset != 104 {
		t.Errorf("second alloc offset = %d, want 104", s2.Offset)
	}
	if _, err := d.AllocMRAM("input", 8); err == nil {
		t.Error("duplicate symbol accepted")
	}
	w, err := d.AllocWRAM("lut", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != SymbolWRAM || w.Size != 1000 {
		t.Errorf("WRAM symbol = %+v", w)
	}
	if got, ok := d.Symbol("lut"); !ok || got != w {
		t.Errorf("Symbol lookup = %+v, %v", got, ok)
	}
	if n := len(d.Symbols()); n != 3 {
		t.Errorf("Symbols() len = %d, want 3", n)
	}
	if free := d.WRAMFree(); free != int64(DefaultWRAMSize)-1000 {
		t.Errorf("WRAMFree = %d", free)
	}
}

func TestAllocExhaustion(t *testing.T) {
	cfg := DefaultConfig(O0)
	cfg.MRAMSize = 1 << 10
	d := MustNew(cfg)
	if _, err := d.AllocMRAM("big", 2<<10); err == nil {
		t.Error("MRAM over-allocation accepted")
	}
	if _, err := d.AllocWRAM("huge", int64(cfg.WRAMSize)+8); err == nil {
		t.Error("WRAM over-allocation accepted")
	}
	if _, err := d.AllocMRAM("bad", 0); err == nil {
		t.Error("zero-size alloc accepted")
	}
}

// TestStackCheck reproduces the §4.3.4 constraint: a large WRAM data
// segment leaves too little stack for many tasklets.
func TestStackCheck(t *testing.T) {
	d := newTestDPU(t, O0)
	// Consume almost all WRAM.
	if _, err := d.AllocWRAM("buffer", int64(DefaultWRAMSize)-1024); err != nil {
		t.Fatal(err)
	}
	// 1024 free / 11 tasklets = 93 bytes < MinStackBytes.
	if _, err := d.Launch(11, func(tk *Tasklet) error { return nil }); err == nil {
		t.Error("launch with starved stacks accepted")
	}
	// 2 tasklets get 512 bytes each: fine.
	if _, err := d.Launch(2, func(tk *Tasklet) error { return nil }); err != nil {
		t.Errorf("launch with adequate stacks rejected: %v", err)
	}
}

func TestStackPerTaskletMatchesThesis(t *testing.T) {
	d := newTestDPU(t, O0)
	// Empty data segment, 11 tasklets: 64KB/11 = 5957 bytes ≈ 5.8 KB.
	got := d.StackPerTasklet(11)
	if got != 5957 {
		t.Errorf("StackPerTasklet(11) = %d, want 5957 (~5.8KB, §4.3.4)", got)
	}
}

func TestLaunchValidation(t *testing.T) {
	d := newTestDPU(t, O0)
	if _, err := d.Launch(0, func(tk *Tasklet) error { return nil }); err == nil {
		t.Error("0 tasklets accepted")
	}
	if _, err := d.Launch(MaxTasklets+1, func(tk *Tasklet) error { return nil }); err == nil {
		t.Error("25 tasklets accepted")
	}
	if _, err := d.Launch(1, nil); err == nil {
		t.Error("nil kernel accepted")
	}
}

func TestTotalCyclesAccumulate(t *testing.T) {
	d := newTestDPU(t, O0)
	k := func(tk *Tasklet) error { tk.Charge(OpAddInt, 10); return nil }
	s1, _ := d.Launch(1, k)
	s2, _ := d.Launch(1, k)
	if d.TotalCycles() != s1.Cycles+s2.Cycles {
		t.Errorf("TotalCycles = %d, want %d", d.TotalCycles(), s1.Cycles+s2.Cycles)
	}
	d.ResetClock()
	if d.TotalCycles() != 0 {
		t.Error("ResetClock did not zero the counter")
	}
}

func TestStatsTime(t *testing.T) {
	d := newTestDPU(t, O3)
	st, err := d.Launch(1, func(tk *Tasklet) error {
		tk.Charge(OpAddInt, 35000) // 35000 slots * 11 = 385000 cycles
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 385000 cycles / 350 MHz = 1.1 ms.
	if st.Seconds < 0.0010 || st.Seconds > 0.0012 {
		t.Errorf("Seconds = %v, want ~0.0011", st.Seconds)
	}
	if st.Time.Microseconds() != 1100 {
		t.Errorf("Time = %v, want 1.1ms", st.Time)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{MRAMSize: 1, WRAMSize: 1, IRAMSize: 1, FrequencyHz: 0, Opt: O0},
		{MRAMSize: 1, WRAMSize: 1, IRAMSize: 1, FrequencyHz: 1, Opt: OptLevel(9)},
		{MRAMSize: -1, WRAMSize: 1, IRAMSize: 1, FrequencyHz: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestOptLevelString(t *testing.T) {
	if O0.String() != "O0" || O3.String() != "O3" || OptLevel(9).String() != "O?" {
		t.Error("OptLevel.String wrong")
	}
}

func TestPopcount(t *testing.T) {
	d := newTestDPU(t, O0)
	_, err := d.Launch(1, func(tk *Tasklet) error {
		tests := []struct {
			v    uint32
			want int32
		}{
			{0, 0}, {1, 1}, {0xFFFFFFFF, 32}, {0xAAAAAAAA, 16}, {0x80000001, 2},
		}
		for _, tt := range tests {
			if got := tk.Popcount32(tt.v); got != tt.want {
				t.Errorf("Popcount32(%#x) = %d, want %d", tt.v, got, tt.want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntegerOps(t *testing.T) {
	d := newTestDPU(t, O3)
	_, err := d.Launch(1, func(tk *Tasklet) error {
		if tk.Add32(2, 3) != 5 || tk.Sub32(2, 3) != -1 {
			t.Error("add/sub wrong")
		}
		if tk.Add64(1<<40, 1) != (1<<40)+1 {
			t.Error("add64 wrong")
		}
		if tk.Mul8(-5, 7) != -35 || tk.Mul16(-300, 2) != -600 || tk.Mul32(1<<16, 1<<16) != 0 {
			t.Error("mul wrong")
		}
		if tk.Div32(-7, 2) != -3 || tk.Mod32(-7, 2) != -1 {
			t.Error("div/mod wrong")
		}
		if tk.Shl32(1, 4) != 16 || tk.Shr32(-16, 2) != -4 {
			t.Error("shift wrong")
		}
		if tk.And32(0xF0, 0x3C) != 0x30 || tk.Or32(0xF0, 0x0F) != 0xFF || tk.Xor32(0xFF, 0x0F) != 0xF0 {
			t.Error("logic wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProfileReportFormat(t *testing.T) {
	d := newTestDPU(t, O0)
	_, err := d.Launch(1, func(tk *Tasklet) error {
		tk.FAdd(1, 2)
		tk.FAdd(1, 2)
		tk.FDiv(1, 2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Profile().Report()
	if !strings.Contains(rep, softfloat.SubAddSF3) || !strings.Contains(rep, softfloat.SubDivSF3) {
		t.Errorf("report missing subroutines:\n%s", rep)
	}
	// __divsf3 costs more cycles, so it must come first.
	if strings.Index(rep, softfloat.SubDivSF3) > strings.Index(rep, softfloat.SubAddSF3) {
		t.Errorf("report not sorted by cycles:\n%s", rep)
	}
}

package dpu

import "testing"

// BenchmarkLaunchOverhead measures the fixed cost of launching an empty
// kernel — the floor for fine-grained offload.
func BenchmarkLaunchOverhead(b *testing.B) {
	d := MustNew(DefaultConfig(O3))
	k := func(t *Tasklet) error { return nil }
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch(1, k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChargedAdd measures simulator throughput for individually
// charged ALU operations (the fine-grained kernels' cost).
func BenchmarkChargedAdd(b *testing.B) {
	d := MustNew(DefaultConfig(O3))
	_, err := d.Launch(1, func(t *Tasklet) error {
		b.ResetTimer()
		var acc int32
		for i := 0; i < b.N; i++ {
			acc = t.Add32(acc, 1)
		}
		_ = acc
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChargeBulk measures the O(1) bulk-charge path used by GEMM.
func BenchmarkChargeBulk(b *testing.B) {
	d := MustNew(DefaultConfig(O3))
	_, err := d.Launch(1, func(t *Tasklet) error {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.ChargeBulk(OpMul16, 1000000)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDMA2048 measures a maximum-size DMA transfer (real data
// movement plus the Eq 3.4 charge).
func BenchmarkDMA2048(b *testing.B) {
	d := MustNew(DefaultConfig(O3))
	_, err := d.Launch(1, func(t *Tasklet) error {
		b.SetBytes(2048)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.MRAMToWRAM(0, 0, 2048)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWRAMLoad32 measures charged WRAM word access.
func BenchmarkWRAMLoad32(b *testing.B) {
	d := MustNew(DefaultConfig(O3))
	_, err := d.Launch(1, func(t *Tasklet) error {
		b.ResetTimer()
		var acc uint32
		for i := 0; i < b.N; i++ {
			acc ^= t.Load32(int64(i%1024) * 4)
		}
		_ = acc
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSoftFloatMulOnDPU measures a charged, bit-exact float multiply
// (the dominant eBNN default-model operation).
func BenchmarkSoftFloatMulOnDPU(b *testing.B) {
	d := MustNew(DefaultConfig(O0))
	_, err := d.Launch(1, func(t *Tasklet) error {
		b.ResetTimer()
		var acc uint32
		for i := 0; i < b.N; i++ {
			acc = t.FMul(acc|0x3F800000, 0x40000000)
		}
		_ = acc
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipelineModel measures Launch cost as tasklet count grows.
func BenchmarkPipelineModel(b *testing.B) {
	for _, n := range []int{1, 11, 24} {
		b.Run(map[int]string{1: "1-tasklet", 11: "11-tasklets", 24: "24-tasklets"}[n], func(b *testing.B) {
			d := MustNew(DefaultConfig(O3))
			k := func(t *Tasklet) error {
				t.Charge(OpAddInt, 100)
				return nil
			}
			for i := 0; i < b.N; i++ {
				if _, err := d.Launch(n, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

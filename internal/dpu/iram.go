package dpu

import "fmt"

// IRAM access. The instruction RAM holds the DPU program (24 KB,
// Table 2.1). The host loads compiled programs here; the ISA interpreter
// in internal/isa fetches from it. Instruction fetch is overlapped by the
// pipeline, so reads charge no cycles.

// ensureIRAM lazily materializes the IRAM backing store.
func (d *DPU) ensureIRAM() {
	if d.iram == nil {
		d.iram = make([]byte, d.cfg.IRAMSize)
	}
}

// LoadIRAM writes a program image into IRAM at offset 0, replacing any
// previous program. It fails if the image exceeds the IRAM capacity —
// the program-size limit real DPU programs must fit.
func (d *DPU) LoadIRAM(image []byte) error {
	if len(image) > d.cfg.IRAMSize {
		return fmt.Errorf("dpu: program image %d bytes exceeds IRAM size %d", len(image), d.cfg.IRAMSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ensureIRAM()
	for i := range d.iram {
		d.iram[i] = 0
	}
	copy(d.iram, image)
	return nil
}

// ReadIRAM returns n bytes of IRAM starting at off.
func (d *DPU) ReadIRAM(off, n int) ([]byte, error) {
	if off < 0 || off+n > d.cfg.IRAMSize {
		return nil, fmt.Errorf("dpu: IRAM read [%d, %d) outside [0, %d)", off, off+n, d.cfg.IRAMSize)
	}
	out := make([]byte, n)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ensureIRAM()
	copy(out, d.iram[off:])
	return out, nil
}

package dpu

import "fmt"

// IRAM access. The instruction RAM holds the DPU program (24 KB,
// Table 2.1). The host loads compiled programs here; the ISA interpreter
// in internal/isa fetches from it. Instruction fetch is overlapped by the
// pipeline, so reads charge no cycles.

// ensureIRAM lazily materializes the IRAM backing store.
func (d *DPU) ensureIRAM() {
	if d.iram == nil {
		d.iram = make([]byte, d.cfg.IRAMSize)
	}
}

// LoadIRAM writes a program image into IRAM at offset 0, replacing any
// previous program. It fails if the image exceeds the IRAM capacity —
// the program-size limit real DPU programs must fit.
func (d *DPU) LoadIRAM(image []byte) error {
	if len(image) > d.cfg.IRAMSize {
		return fmt.Errorf("dpu: program image %d bytes exceeds IRAM size %d", len(image), d.cfg.IRAMSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ensureIRAM()
	for i := range d.iram {
		d.iram[i] = 0
	}
	copy(d.iram, image)
	d.iramGen++
	return nil
}

// IRAMGeneration returns a counter incremented on every LoadIRAM.
// Program caches (the predecoded dispatch tables in internal/isa) key
// on it to avoid re-reading and re-decoding an unchanged program every
// launch.
func (d *DPU) IRAMGeneration() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.iramGen
}

// ProgramCache returns the host-side decoded-program slot if one was
// stored for the given IRAM generation. The interpreter in internal/isa
// keeps its compiled dispatch table here so an unchanged program is
// decoded once per load, not once per tasklet per launch.
func (d *DPU) ProgramCache(gen uint64) (interface{}, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.progCache != nil && d.progCacheGen == gen {
		return d.progCache, true
	}
	return nil, false
}

// SetProgramCache associates v with IRAM generation gen. A LoadIRAM
// between the caller's generation read and this store simply leaves a
// stale entry that the next ProgramCache lookup misses.
func (d *DPU) SetProgramCache(gen uint64, v interface{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.progCache = v
	d.progCacheGen = gen
}

// ReadIRAM returns n bytes of IRAM starting at off.
func (d *DPU) ReadIRAM(off, n int) ([]byte, error) {
	if off < 0 || off+n > d.cfg.IRAMSize {
		return nil, fmt.Errorf("dpu: IRAM read [%d, %d) outside [0, %d)", off, off+n, d.cfg.IRAMSize)
	}
	out := make([]byte, n)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ensureIRAM()
	copy(out, d.iram[off:])
	return out, nil
}

package dpu

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pimdnn/internal/trace"
)

// MinStackBytes is the smallest per-tasklet stack the simulator accepts
// when launching. With an empty WRAM data segment and 11 tasklets the
// per-tasklet stack is 64KB/11 ≈ 5.8KB, the figure the thesis cites when
// discussing why YOLOv3's buffers cannot live in WRAM (§4.3.4).
const MinStackBytes = 256

// mramPageSize is the granularity of lazy MRAM allocation. 64 MB per DPU
// across thousands of simulated DPUs cannot be allocated eagerly; pages
// materialize on first touch.
const mramPageSize = 64 << 10

// SymbolKind distinguishes where a program symbol lives.
type SymbolKind int

// Symbol locations.
const (
	SymbolMRAM SymbolKind = iota + 1
	// SymbolWRAM marks a host-visible WRAM variable (the "__host"
	// attribute in the UPMEM SDK, §3.2).
	SymbolWRAM
)

// Symbol is a named, host-addressable buffer in DPU memory, the unit the
// host runtime's transfer functions target (dpu_copy_to's symbol_name
// parameter, Eq 3.1-3.3).
type Symbol struct {
	Name   string
	Kind   SymbolKind
	Offset int64
	Size   int64
}

// Stats reports the outcome of one kernel launch.
type Stats struct {
	// Tasklets is the number of tasklets launched.
	Tasklets int
	// Cycles is the modeled DPU completion time in cycles.
	Cycles uint64
	// IssueSlots is the total number of pipeline issue slots consumed
	// by all tasklets.
	IssueSlots uint64
	// DMACycles is the total number of cycles spent in MRAM<->WRAM DMA
	// transfers across all tasklets.
	DMACycles uint64
	// Time is Cycles converted through the DPU clock.
	Time time.Duration
	// Seconds is Time in seconds as a float, convenient for the
	// benchmark harness.
	Seconds float64
	// EnergyJ is the launch's DPU energy at the Table 2.1 rating
	// (120 mW per DPU), the quantity behind Table 5.4's frames/s-W.
	EnergyJ float64
	// OpCounts is the instruction mix: executed operations per class,
	// summed over tasklets. Analyses like the Advisor use it to see
	// what a kernel is made of without a subroutine-level profile.
	OpCounts OpMix
	// PerTasklet breaks the work down per tasklet, exposing load
	// imbalance (the cause of eBNN's Fig 4.7a dip at 11 tasklets).
	// The slice aliases the DPU's reusable launch scratch: it is valid
	// until that DPU's next Launch, so callers that retain it across
	// launches must copy.
	PerTasklet []TaskletBreakdown
}

// OpMix is the executed-operation histogram of a launch, indexed by Op.
// A fixed array (rather than a map) so building it per launch costs no
// allocation on the simulator's hot path.
type OpMix [opKinds]uint64

// Ops returns the number of distinct operation classes with a nonzero
// count.
func (m OpMix) Ops() int {
	n := 0
	for _, c := range m {
		if c != 0 {
			n++
		}
	}
	return n
}

// TaskletBreakdown is one tasklet's share of a launch.
type TaskletBreakdown struct {
	IssueSlots uint64
	DMACycles  uint64
}

// Imbalance returns max/mean of per-tasklet work (slots + DMA); 1.0 is
// perfectly balanced. Zero-work launches report 1.0.
func (s Stats) Imbalance() float64 {
	if len(s.PerTasklet) == 0 {
		return 1
	}
	var sum, max uint64
	for _, t := range s.PerTasklet {
		w := t.IssueSlots + t.DMACycles
		sum += w
		if w > max {
			max = w
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(s.PerTasklet))
	return float64(max) / mean
}

// MixReport renders the instruction mix sorted by count.
func (s Stats) MixReport() string {
	type row struct {
		op Op
		n  uint64
	}
	rows := make([]row, 0, s.OpCounts.Ops())
	for op, n := range s.OpCounts {
		if n != 0 {
			rows = append(rows, row{Op(op), n})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].op < rows[j].op
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s\n", "op", "count")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %14d\n", r.op, r.n)
	}
	return b.String()
}

// KernelFunc is a DPU program: it runs once per tasklet.
type KernelFunc func(t *Tasklet) error

// DPU is one simulated DRAM Processing Unit.
type DPU struct {
	cfg Config

	mu      sync.Mutex
	wram    []byte
	iram    []byte
	iramGen uint64
	// progCache holds a host-side decoded form of the loaded program,
	// valid while progCacheGen matches iramGen (see ProgramCache).
	progCache    interface{}
	progCacheGen uint64
	// mramPages is the lazily-allocated MRAM, indexed by page number
	// (nil entry = untouched page, reads as zero). A dense slice rather
	// than a map: page lookup is on the hot path of every MRAM access.
	mramPages [][]byte
	symbols   map[string]Symbol
	// wramUsed is the WRAM data-segment size. Written under mu (symbol
	// definition); read via atomic load so the per-launch stack check
	// does not take the lock.
	wramUsed atomic.Int64
	mramUsed int64

	prof *trace.Profile

	// met, when non-nil, holds the DPU's telemetry instruments (see
	// metrics.go). Set before concurrent use; read without mu — the
	// instruments are atomic and observation-only.
	met *Metrics

	// inj, when non-nil, injects deterministic faults into host-side
	// transfers and launches (see fault.go). Guarded by mu like the
	// counters below.
	inj *FaultInjector

	totalCycles uint64
	launches    int
	log         []byte

	// launchLocal is the per-launch shared state slot (see
	// Tasklet.SetLaunchLocal). Tasklets run serially, so no lock; the
	// slot is cleared at launch boundaries.
	launchLocal interface{}

	// rowScratch stages page-boundary-crossing rows for
	// ForEachMRAMRowStrided. Guarded by mu.
	rowScratch []byte

	// scratch holds the per-launch tasklet state, reused so Launch does
	// not heap-allocate tasklet structs on every call. Launch was never
	// safe for concurrent use on one DPU (tasklets share WRAM state);
	// the scratch reuse relies on the same sequencing.
	scratch launchScratch
}

// launchScratch is the reusable tasklet storage of one DPU. breakdown
// backs Stats.PerTasklet (see its aliasing note).
type launchScratch struct {
	tasklets  [MaxTasklets]Tasklet
	ptrs      [MaxTasklets]*Tasklet
	breakdown [MaxTasklets]TaskletBreakdown
}

// New creates a DPU with the given configuration.
func New(cfg Config) (*DPU, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &DPU{
		cfg:       cfg,
		wram:      make([]byte, cfg.WRAMSize),
		mramPages: make([][]byte, (cfg.MRAMSize+mramPageSize-1)/mramPageSize),
		symbols:   make(map[string]Symbol),
		prof:      trace.NewProfile(),
	}
	for i := range d.scratch.ptrs {
		d.scratch.ptrs[i] = &d.scratch.tasklets[i]
	}
	return d, nil
}

// MustNew is New for static configurations known to be valid; it panics
// on error and exists for tests and examples.
func MustNew(cfg Config) *DPU {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the DPU's configuration.
func (d *DPU) Config() Config { return d.cfg }

// Profile returns the DPU's subroutine profile.
func (d *DPU) Profile() *trace.Profile { return d.prof }

// SetProfile replaces the DPU's profile, letting several DPUs share one
// aggregate profile.
func (d *DPU) SetProfile(p *trace.Profile) { d.prof = p }

// InjectFaults arms (or, with nil, disarms) the DPU's fault injector.
// Arming replaces any previous injector and its accumulated state.
func (d *DPU) InjectFaults(in *FaultInjector) {
	d.mu.Lock()
	d.inj = in
	d.mu.Unlock()
}

// TransferFault consults the fault injector about one host<->DPU
// transfer. The host runtime calls it once per per-DPU transfer, before
// touching memory; a non-nil return means the transfer must be dropped.
// Kernel-internal MRAM/WRAM traffic is not gated — only host DMA is.
func (d *DPU) TransferFault() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.inj == nil {
		return nil
	}
	err := d.inj.transfer()
	if err != nil && d.met != nil {
		d.met.Faults.Inc()
	}
	return err
}

// Dead reports whether an injected fault has permanently killed the
// DPU. A DPU without an armed injector is never dead.
func (d *DPU) Dead() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inj != nil && d.inj.Dead()
}

// TotalCycles returns the cycles accumulated over every launch since
// creation (a multi-launch application's total DPU busy time).
func (d *DPU) TotalCycles() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.totalCycles
}

// ResetClock zeroes the accumulated cycle counter.
func (d *DPU) ResetClock() {
	d.mu.Lock()
	d.totalCycles = 0
	d.launches = 0
	d.mu.Unlock()
}

// AllocMRAM reserves size bytes of MRAM under the given symbol name.
// Sizes are rounded up to the 8-byte DMA granularity, mirroring the
// padding requirement of §3.2.
func (d *DPU) AllocMRAM(name string, size int64) (Symbol, error) {
	if size <= 0 {
		return Symbol{}, fmt.Errorf("dpu: AllocMRAM(%q): non-positive size %d", name, size)
	}
	size = roundUp8(size)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.symbols[name]; ok {
		return Symbol{}, fmt.Errorf("dpu: symbol %q already defined", name)
	}
	if d.mramUsed+size > d.cfg.MRAMSize {
		return Symbol{}, fmt.Errorf("dpu: MRAM exhausted: %d used + %d requested > %d",
			d.mramUsed, size, d.cfg.MRAMSize)
	}
	s := Symbol{Name: name, Kind: SymbolMRAM, Offset: d.mramUsed, Size: size}
	d.symbols[name] = s
	d.mramUsed += size
	return s, nil
}

// AllocWRAM reserves size bytes of WRAM under the given symbol name
// (8-byte aligned). WRAM left unreserved is divided among tasklet stacks
// at launch.
func (d *DPU) AllocWRAM(name string, size int64) (Symbol, error) {
	if size <= 0 {
		return Symbol{}, fmt.Errorf("dpu: AllocWRAM(%q): non-positive size %d", name, size)
	}
	size = roundUp8(size)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.symbols[name]; ok {
		return Symbol{}, fmt.Errorf("dpu: symbol %q already defined", name)
	}
	used := d.wramUsed.Load()
	if used+size > int64(d.cfg.WRAMSize) {
		return Symbol{}, fmt.Errorf("dpu: WRAM exhausted: %d used + %d requested > %d",
			used, size, d.cfg.WRAMSize)
	}
	s := Symbol{Name: name, Kind: SymbolWRAM, Offset: used, Size: size}
	d.symbols[name] = s
	d.wramUsed.Store(used + size)
	return s, nil
}

// Symbol looks up a defined symbol by name.
func (d *DPU) Symbol(name string) (Symbol, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.symbols[name]
	return s, ok
}

// Symbols returns all defined symbols sorted by name.
func (d *DPU) Symbols() []Symbol {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Symbol, 0, len(d.symbols))
	for _, s := range d.symbols {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WRAMFree returns the WRAM bytes not reserved by AllocWRAM.
func (d *DPU) WRAMFree() int64 {
	return int64(d.cfg.WRAMSize) - d.wramUsed.Load()
}

// StackPerTasklet returns the per-tasklet stack size available when
// launching n tasklets, (WRAM - data segment)/n — the quantity behind the
// thesis's 5.8 KB figure (§4.3.4).
func (d *DPU) StackPerTasklet(n int) int64 {
	if n <= 0 {
		return 0
	}
	return d.WRAMFree() / int64(n)
}

// Launch runs the kernel on n tasklets and returns the launch statistics.
// Tasklets execute deterministically (in ID order); cycle accounting
// models their concurrent execution on the pipeline.
func (d *DPU) Launch(n int, kernel KernelFunc) (Stats, error) {
	var st Stats
	err := d.LaunchInto(n, kernel, &st)
	return st, err
}

// LaunchInto is Launch writing the statistics into *out instead of
// returning them by value, sparing wave loops a ~250-byte struct copy
// per launch. On success every field of *out is overwritten; on error
// *out is zeroed. The zeroing happens only on the (cold) error paths so
// the hot path never memclrs the struct.
func (d *DPU) LaunchInto(n int, kernel KernelFunc, out *Stats) error {
	if n < 1 || n > MaxTasklets {
		*out = Stats{}
		return fmt.Errorf("dpu: tasklet count %d outside 1..%d", n, MaxTasklets)
	}
	if kernel == nil {
		*out = Stats{}
		return fmt.Errorf("dpu: nil kernel")
	}
	if stack := d.StackPerTasklet(n); stack < MinStackBytes {
		*out = Stats{}
		return fmt.Errorf("dpu: %d tasklets leave %d bytes of stack each (< %d): WRAM data segment too large",
			n, stack, MinStackBytes)
	}
	// Injected launch faults abort before any tasklet retires and charge
	// no cycles, matching how genuine memory traps are accounted.
	d.mu.Lock()
	if d.inj != nil {
		if err := d.inj.launch(); err != nil {
			d.mu.Unlock()
			if d.met != nil {
				d.met.Faults.Inc()
			}
			*out = Stats{}
			return err
		}
	}
	d.mu.Unlock()

	// Tasklet structs are reset field-by-field rather than by struct
	// literal: the opCounts array (the bulk of the struct) is kept zero
	// between launches — cleared in the mix merge below on success, and
	// explicitly on the error path — so the per-launch reset does not
	// memclr ~n×250 bytes.
	tasklets := d.scratch.ptrs[:n]
	for i, t := range tasklets {
		t.dpu, t.id, t.count = d, i, n
		t.slots, t.dma = 0, 0
		t.dmaBytes, t.dmaOps = 0, 0
		t.pcSlots, t.pcDMA = 0, 0
	}
	d.launchLocal = nil
	defer func() { d.launchLocal = nil }()
	if err := d.runTasklets(tasklets, kernel); err != nil {
		for _, t2 := range tasklets {
			clear(t2.opCounts[:])
			t2.nTouched = 0
		}
		*out = Stats{}
		return err
	}

	var (
		sumSlots uint64
		sumDMA   uint64
		crit     uint64
		mix      OpMix
		dmaBytes uint64
		dmaOps   uint64
	)
	breakdown := d.scratch.breakdown[:len(tasklets)]
	for i, t := range tasklets {
		sumSlots += t.slots
		sumDMA += t.dma
		if c := t.slots*PipelineDepth + t.dma; c > crit {
			crit = c
		}
		// Merge only the op classes this tasklet actually charged
		// (tracked first-touch in t.touched) instead of scanning the
		// full opCounts array — at high tasklet counts the full scan
		// dominated per-launch host overhead.
		for j := 0; j < int(t.nTouched); j++ {
			op := t.touched[j]
			mix[op] += t.opCounts[op]
			t.opCounts[op] = 0
		}
		t.nTouched = 0
		dmaBytes += t.dmaBytes
		dmaOps += t.dmaOps
		breakdown[i] = TaskletBreakdown{IssueSlots: t.slots, DMACycles: t.dma}
	}
	cycles := sumSlots
	if crit > cycles {
		cycles = crit
	}
	if sumDMA > cycles {
		cycles = sumDMA
	}

	d.mu.Lock()
	d.totalCycles += cycles
	d.launches++
	d.mu.Unlock()

	if m := d.met; m != nil {
		m.Launches.Inc()
		m.Cycles.Add(cycles)
		m.TaskletsPerLaunch.Observe(uint64(n))
		m.WRAMAccesses.Add(mix[OpLoad] + mix[OpStore])
		// DMA crosses both memories: charge bytes to each side, the
		// operation count to MRAM (the WRAM side is in the load/store mix).
		m.MRAMBytes.Add(dmaBytes)
		m.MRAMAccesses.Add(dmaOps)
		m.WRAMBytes.Add(dmaBytes)
	}

	sec := float64(cycles) / d.cfg.FrequencyHz
	out.Tasklets = n
	out.Cycles = cycles
	out.IssueSlots = sumSlots
	out.DMACycles = sumDMA
	out.Time = time.Duration(sec * float64(time.Second))
	out.Seconds = sec
	out.EnergyJ = sec * DPUPowerW
	out.OpCounts = mix
	out.PerTasklet = breakdown
	return nil
}

// runTasklets executes the launch's tasklets in ID order, converting
// memory traps (panics of type trapError raised by out-of-bounds or
// misaligned accesses) into errors, the way a hardware fault would abort
// the DPU program. One recover scope covers the whole launch — a trap
// aborts the remaining tasklets anyway, so the per-tasklet defer the
// previous shape paid on every iteration bought nothing.
func (d *DPU) runTasklets(tasklets []*Tasklet, kernel KernelFunc) (err error) {
	cur := 0
	defer func() {
		if r := recover(); r != nil {
			if te, ok := r.(trapError); ok {
				err = fmt.Errorf("dpu: tasklet %d: memory fault: %s", cur, string(te))
				return
			}
			panic(r)
		}
	}()
	for i, t := range tasklets {
		cur = i
		if e := kernel(t); e != nil {
			return fmt.Errorf("dpu: tasklet %d: %w", t.id, e)
		}
	}
	return nil
}

// --- host-side memory access (no DPU cycles charged) ---

// CopyToMRAM writes data into MRAM at off. Host transfers must respect
// the 8-byte alignment and size granularity (§3.2); violations are
// errors, matching the SDK behaviour that forces callers to pad.
func (d *DPU) CopyToMRAM(off int64, data []byte) error {
	if err := d.checkDMAArgs(off, len(data)); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mramWrite(off, data)
	if d.met != nil {
		d.met.MRAMBytes.Add(uint64(len(data)))
		d.met.MRAMAccesses.Inc()
	}
	return nil
}

// CopyFromMRAM reads n bytes from MRAM at off.
func (d *DPU) CopyFromMRAM(off int64, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := d.CopyFromMRAMInto(off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// CopyFromMRAMInto reads len(dst) bytes from MRAM at off into dst,
// letting callers reuse a buffer across transfers instead of allocating
// per read.
func (d *DPU) CopyFromMRAMInto(off int64, dst []byte) error {
	if err := d.checkDMAArgs(off, len(dst)); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mramRead(off, dst)
	if d.met != nil {
		d.met.MRAMBytes.Add(uint64(len(dst)))
		d.met.MRAMAccesses.Inc()
	}
	return nil
}

// CopyToWRAM writes a host-visible WRAM variable.
func (d *DPU) CopyToWRAM(off int64, data []byte) error {
	if off < 0 || off+int64(len(data)) > int64(d.cfg.WRAMSize) {
		return fmt.Errorf("dpu: WRAM write [%d, %d) outside [0, %d)", off, off+int64(len(data)), d.cfg.WRAMSize)
	}
	d.mu.Lock()
	copy(d.wram[off:], data)
	d.mu.Unlock()
	if d.met != nil {
		d.met.WRAMBytes.Add(uint64(len(data)))
		d.met.WRAMAccesses.Inc()
	}
	return nil
}

// CopyFromWRAM reads a host-visible WRAM variable.
func (d *DPU) CopyFromWRAM(off int64, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := d.CopyFromWRAMInto(off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// CopyFromWRAMInto reads len(dst) bytes of WRAM at off into dst, the
// allocation-free variant kernels use for per-tasklet scratch buffers.
func (d *DPU) CopyFromWRAMInto(off int64, dst []byte) error {
	n := len(dst)
	if off < 0 || off+int64(n) > int64(d.cfg.WRAMSize) {
		return fmt.Errorf("dpu: WRAM read [%d, %d) outside [0, %d)", off, off+int64(n), d.cfg.WRAMSize)
	}
	d.mu.Lock()
	copy(dst, d.wram[off:])
	d.mu.Unlock()
	if d.met != nil {
		d.met.WRAMBytes.Add(uint64(len(dst)))
		d.met.WRAMAccesses.Inc()
	}
	return nil
}

func (d *DPU) checkDMAArgs(off int64, n int) error {
	if off%DMAAlignment != 0 {
		return fmt.Errorf("dpu: MRAM offset %d not %d-byte aligned", off, DMAAlignment)
	}
	if n%DMAAlignment != 0 {
		return fmt.Errorf("dpu: MRAM transfer size %d not divisible by %d (pad the buffer, §3.2)", n, DMAAlignment)
	}
	if off < 0 || off+int64(n) > d.cfg.MRAMSize {
		return fmt.Errorf("dpu: MRAM range [%d, %d) outside [0, %d)", off, off+int64(n), d.cfg.MRAMSize)
	}
	return nil
}

// mramWrite/mramRead operate on the lazily-paged MRAM. Callers hold d.mu.

func (d *DPU) mramWrite(off int64, data []byte) {
	for len(data) > 0 {
		page := off / mramPageSize
		po := off % mramPageSize
		buf := d.mramPages[page]
		if buf == nil {
			buf = make([]byte, mramPageSize)
			d.mramPages[page] = buf
		}
		n := copy(buf[po:], data)
		data = data[n:]
		off += int64(n)
	}
}

func (d *DPU) mramRead(off int64, dst []byte) {
	for len(dst) > 0 {
		page := off / mramPageSize
		po := off % mramPageSize
		var n int
		if buf := d.mramPages[page]; buf != nil {
			n = copy(dst, buf[po:])
		} else {
			// Untouched MRAM reads as zero.
			n = len(dst)
			if max := int(mramPageSize - po); n > max {
				n = max
			}
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		off += int64(n)
	}
}

func roundUp8(n int64) int64 {
	return (n + 7) &^ 7
}

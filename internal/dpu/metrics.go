package dpu

import "pimdnn/internal/metrics"

// Metrics is one DPU's telemetry: instruments resolved once at wiring
// time (per-DPU counters from a registry family, plus shared
// histograms). All fields are nil-safe instruments, and a nil *Metrics
// on the DPU disables the whole block for one branch — the hot paths
// never allocate or lock for telemetry. Instruments observe the
// simulation only: no cycle count or result depends on their presence.
type Metrics struct {
	// Launches and Cycles count completed kernel launches and the
	// simulated cycles they retired.
	Launches *Counter
	Cycles   *Counter
	// MRAMBytes/MRAMAccesses count bytes and operations crossing the
	// MRAM boundary: kernel DMA (MRAMToWRAM/WRAMToMRAM/ChargeDMA) plus
	// host MRAM copies. WRAMBytes/WRAMAccesses count the WRAM side:
	// DMA bytes and host WRAM copies, and every kernel load/store
	// retired (from the per-launch instruction mix).
	MRAMBytes    *Counter
	MRAMAccesses *Counter
	WRAMBytes    *Counter
	WRAMAccesses *Counter
	// Faults counts injected faults that fired (transfer drops, launch
	// traps, dead-DPU refusals).
	Faults *Counter
	// TaskletsPerLaunch observes the tasklet count of every launch
	// (slot occupancy; typically a histogram shared across DPUs).
	TaskletsPerLaunch *Histogram
}

// Counter and Histogram alias the metrics package's instruments so
// wiring code (internal/host) can build a Metrics without importing
// both packages under distinct names.
type (
	Counter   = metrics.Counter
	Histogram = metrics.Histogram
)

// SetMetrics installs (or with nil removes) the DPU's telemetry block.
// Call before the DPU is shared across goroutines; the instruments
// themselves are safe for concurrent use.
func (d *DPU) SetMetrics(m *Metrics) { d.met = m }

// Fault injection for the simulated DPUs.
//
// Real UPMEM deployments see per-DPU failure modes — DMA transfers that
// error out, kernels that trap mid-launch, and DPUs that drop off the
// rank for the rest of the run (the PrIM benchmarking study reports all
// three on real hardware). The simulator's error paths are only
// trustworthy if they can be exercised deterministically, so a
// FaultPlan is a seeded schedule of such failures: every DPU derives an
// independent FaultInjector whose decisions depend only on (seed, DPU
// index, per-DPU operation count), never on host scheduling, so a run
// with a given plan is exactly reproducible regardless of how the
// worker pool interleaves DPUs.
package dpu

import (
	"errors"
	"fmt"
)

// ErrFaultInjected is wrapped by every error a FaultInjector produces,
// so callers can separate injected faults from genuine simulator errors
// with errors.Is.
var ErrFaultInjected = errors.New("injected fault")

// ErrDPUDead is wrapped by errors from a DPU that the plan has killed
// for the rest of the run. Unlike transfer and trap faults, which are
// transient (a retry may succeed), a dead DPU fails every subsequent
// transfer and launch; recovery requires re-dispatching its work onto a
// surviving DPU.
var ErrDPUDead = errors.New("DPU dead")

// FaultKind enumerates the injectable failure classes.
type FaultKind uint8

const (
	// FaultTransfer fails one host<->DPU DMA transfer. The destination
	// memory is left untouched, as a failed DMA would.
	FaultTransfer FaultKind = iota + 1
	// FaultTrap aborts one kernel launch before any tasklet retires, the
	// way a hardware fault aborts the DPU program. No cycles are charged
	// to the DPU clock (matching the simulator's handling of genuine
	// memory traps).
	FaultTrap
	// FaultDead removes the DPU for the rest of the run: every later
	// transfer and launch fails with ErrDPUDead.
	FaultDead
)

// FaultPlan is a seeded, deterministic fault schedule for a DPU system.
// The zero plan injects nothing and leaves every simulated quantity
// bit-identical to an unarmed run.
type FaultPlan struct {
	// Seed drives every probabilistic decision. Two runs with the same
	// plan make identical decisions.
	Seed int64
	// TransferProb is the probability that one host<->DPU transfer
	// fails (rolled once per transfer per DPU).
	TransferProb float64
	// TrapProb is the probability that one kernel launch traps (rolled
	// once per launch per DPU).
	TrapProb float64
	// DeadFrac is the fraction of DPUs doomed to die mid-run (decided
	// once per DPU at injector creation).
	DeadFrac float64
	// DeadAfterLaunches is how many launches a doomed DPU completes
	// before dying, so death lands mid-run rather than at setup.
	DeadAfterLaunches int
}

// Zero reports whether the plan injects nothing.
func (p FaultPlan) Zero() bool {
	return p.TransferProb == 0 && p.TrapProb == 0 && p.DeadFrac == 0
}

// NewInjector derives the deterministic per-DPU injector for the DPU
// with the given index.
func (p FaultPlan) NewInjector(dpuID int) *FaultInjector {
	in := &FaultInjector{plan: p, dpuID: dpuID}
	// Mix the seed and DPU index so neighbouring DPUs see unrelated
	// streams even for small seeds.
	in.state = uint64(p.Seed)*0x9e3779b97f4a7c15 + uint64(dpuID)*0xbf58476d1ce4e5b9 + 1
	in.doomed = p.DeadFrac > 0 && in.roll() < p.DeadFrac
	return in
}

// FaultInjector is one DPU's private fault state. Its decisions consume
// a per-DPU pseudorandom stream, so they do not depend on how operations
// on *other* DPUs interleave.
type FaultInjector struct {
	plan     FaultPlan
	dpuID    int
	state    uint64
	doomed   bool
	dead     bool
	launches int
}

// splitmix64 is the injector's PRNG step: tiny, allocation-free, and
// well distributed for the single-stream use here.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll returns the next uniform sample in [0, 1).
func (in *FaultInjector) roll() float64 {
	in.state++
	return float64(splitmix64(in.state)>>11) / (1 << 53)
}

// Dead reports whether the DPU has died.
func (in *FaultInjector) Dead() bool { return in.dead }

func (in *FaultInjector) deadErr() error {
	return fmt.Errorf("dpu %d: %w (%w)", in.dpuID, ErrDPUDead, ErrFaultInjected)
}

// transfer decides the fate of one host<->DPU transfer.
func (in *FaultInjector) transfer() error {
	if in.dead {
		return in.deadErr()
	}
	if in.plan.TransferProb > 0 && in.roll() < in.plan.TransferProb {
		return fmt.Errorf("dpu %d: transfer %w", in.dpuID, ErrFaultInjected)
	}
	return nil
}

// launch decides the fate of one kernel launch. A doomed DPU dies once
// it has completed DeadAfterLaunches launches.
func (in *FaultInjector) launch() error {
	if !in.dead && in.doomed && in.launches >= in.plan.DeadAfterLaunches {
		in.dead = true
	}
	if in.dead {
		return in.deadErr()
	}
	in.launches++
	if in.plan.TrapProb > 0 && in.roll() < in.plan.TrapProb {
		return fmt.Errorf("dpu %d: kernel trap %w", in.dpuID, ErrFaultInjected)
	}
	return nil
}

package dpu

import "fmt"

// DPU-side logging, mirroring the SDK's stdout-over-MRAM mechanism that
// `dpu_log_read` drains on the host. Each printed byte costs a WRAM
// store plus the flush DMA when the line buffer drains, which is why
// production DPU kernels log sparingly.

// maxLogBytes bounds the retained log so runaway kernels cannot exhaust
// host memory; the real SDK's buffer wraps similarly.
const maxLogBytes = 64 << 10

// Logf appends a formatted line to the DPU's log from this tasklet,
// charging the store-per-byte plus a flush transfer.
func (t *Tasklet) Logf(format string, args ...interface{}) {
	msg := fmt.Sprintf("[tasklet %d] ", t.ID()) + fmt.Sprintf(format, args...)
	if len(msg) == 0 || msg[len(msg)-1] != '\n' {
		msg += "\n"
	}
	t.Charge(OpStore, len(msg))
	// Flush: one minimal DMA per line.
	t.dma += dmaCycles(DMAAlignment)

	d := t.dpu
	d.mu.Lock()
	defer d.mu.Unlock()
	d.log = append(d.log, msg...)
	if len(d.log) > maxLogBytes {
		d.log = d.log[len(d.log)-maxLogBytes:]
	}
}

// ReadLog drains and returns the DPU's accumulated log (the host-side
// dpu_log_read).
func (d *DPU) ReadLog() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := string(d.log)
	d.log = d.log[:0]
	return s
}

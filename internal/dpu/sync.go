package dpu

import (
	"fmt"
	"sync"
)

// Tasklet synchronization primitives, mirroring the UPMEM SDK's
// mutex/barrier/handshake APIs. The simulator executes tasklets of a
// launch sequentially in ID order, so these primitives never block — but
// they charge the cycles real programs pay for them, and they validate
// usage (unlock without lock, barrier arity) so kernels stay portable to
// the real programming model.

// Cycle charges for synchronization operations: acquiring/releasing a
// hardware mutex is one atomic instruction; a barrier costs a few
// bookkeeping instructions per arriving tasklet.
const (
	mutexSlots   = 1
	barrierSlots = 4
)

// Mutex is a DPU hardware mutex (the SDK's MUTEX_INIT).
type Mutex struct {
	mu     sync.Mutex
	held   bool
	holder int
}

// Lock acquires the mutex for the calling tasklet.
func (m *Mutex) Lock(t *Tasklet) {
	t.Charge(OpLogic, mutexSlots)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.held {
		// Sequential tasklet execution means a held mutex can never be
		// released by a concurrent peer: this is a guaranteed deadlock
		// on real hardware too (lock while holding).
		t.trapf("mutex deadlock: tasklet %d locking a mutex held by tasklet %d", t.ID(), m.holder)
	}
	m.held = true
	m.holder = t.ID()
}

// Unlock releases the mutex.
func (m *Mutex) Unlock(t *Tasklet) {
	t.Charge(OpLogic, mutexSlots)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.held {
		t.trapf("mutex unlock without lock by tasklet %d", t.ID())
	}
	if m.holder != t.ID() {
		t.trapf("mutex unlock by tasklet %d, held by %d", t.ID(), m.holder)
	}
	m.held = false
}

// WithLock runs fn under the mutex.
func (m *Mutex) WithLock(t *Tasklet, fn func()) {
	m.Lock(t)
	defer m.Unlock(t)
	fn()
}

// Barrier is a launch-wide rendezvous (the SDK's BARRIER_INIT). In the
// sequential simulator a barrier cannot make later-ID tasklets' writes
// visible to earlier ones; Wait therefore validates that every tasklet of
// the launch reaches each barrier generation the same number of times,
// charging the synchronization cost, and relies on program order for
// memory visibility (tasklet 0 runs first — the staging idiom the eBNN
// and GEMM kernels use).
type Barrier struct {
	mu      sync.Mutex
	arrived map[int]int // tasklet ID -> arrival count
}

// Wait records the calling tasklet's arrival. Because tasklets run to
// completion in ID order, Wait cannot detect divergence while the launch
// is in flight; Check validates afterwards that every tasklet arrived
// equally often.
func (b *Barrier) Wait(t *Tasklet) {
	t.Charge(OpLogic, barrierSlots)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.arrived == nil {
		b.arrived = make(map[int]int)
	}
	b.arrived[t.ID()]++
}

// Handshake is the SDK's point-to-point tasklet synchronization
// (handshake_wait_for / handshake_notify): a producer tasklet notifies a
// named channel, a consumer waits on it. The sequential simulator
// requires the producer to have a lower tasklet ID than the consumer
// (program order guarantees the data is ready); violations trap, since
// on hardware they would deadlock under this scheduler's assumptions.
type Handshake struct {
	mu       sync.Mutex
	notified map[string]int // channel -> notifying tasklet ID
}

// Notify marks the named channel ready.
func (h *Handshake) Notify(t *Tasklet, channel string) {
	t.Charge(OpLogic, 1)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.notified == nil {
		h.notified = make(map[string]int)
	}
	h.notified[channel] = t.ID()
}

// WaitFor blocks (logically) until the named channel was notified. In
// the sequential simulator the notification must already have happened.
func (h *Handshake) WaitFor(t *Tasklet, channel string) {
	t.Charge(OpLogic, 1)
	h.mu.Lock()
	defer h.mu.Unlock()
	from, ok := h.notified[channel]
	if !ok {
		t.trapf("handshake deadlock: tasklet %d waits on %q which no earlier tasklet notified",
			t.ID(), channel)
	}
	if from >= t.ID() {
		t.trapf("handshake order violation: channel %q notified by tasklet %d, awaited by %d",
			channel, from, t.ID())
	}
}

// Check verifies after a launch that all n tasklets reached the barrier
// equally often; kernels' tests call it to validate barrier placement.
func (b *Barrier) Check(n int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.arrived) == 0 {
		return nil
	}
	if len(b.arrived) != n {
		return fmt.Errorf("dpu: barrier reached by %d of %d tasklets", len(b.arrived), n)
	}
	want := -1
	for id, c := range b.arrived {
		if want == -1 {
			want = c
		} else if c != want {
			return fmt.Errorf("dpu: tasklet %d reached the barrier %d times, others %d", id, c, want)
		}
	}
	return nil
}

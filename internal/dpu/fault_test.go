package dpu

import (
	"errors"
	"testing"
)

// TestFaultPlanDeterminism: two injectors derived from the same plan and
// DPU index make identical decisions, operation by operation, while a
// different DPU index yields an unrelated stream.
func TestFaultPlanDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 42, TransferProb: 0.3, TrapProb: 0.2, DeadFrac: 0.5, DeadAfterLaunches: 3}
	a := plan.NewInjector(7)
	b := plan.NewInjector(7)
	if a.doomed != b.doomed {
		t.Fatal("doomed decision not deterministic")
	}
	for i := 0; i < 200; i++ {
		ae, be := a.transfer(), b.transfer()
		if (ae == nil) != (be == nil) {
			t.Fatalf("transfer %d diverged: %v vs %v", i, ae, be)
		}
		ae, be = a.launch(), b.launch()
		if (ae == nil) != (be == nil) {
			t.Fatalf("launch %d diverged: %v vs %v", i, ae, be)
		}
		if a.Dead() != b.Dead() {
			t.Fatalf("death %d diverged", i)
		}
	}

	// Different DPUs must not share a stream: over 64 DPUs the transfer
	// decisions cannot all be identical to DPU 0's.
	ref := plan.NewInjector(0)
	var refBits [64]bool
	for i := range refBits {
		refBits[i] = ref.transfer() != nil
	}
	allSame := true
	for id := 1; id < 64 && allSame; id++ {
		in := plan.NewInjector(id)
		for i := range refBits {
			if (in.transfer() != nil) != refBits[i] {
				allSame = false
				break
			}
		}
	}
	if allSame {
		t.Error("all DPU streams identical to DPU 0's")
	}
}

// TestFaultKinds: each probability knob produces its own error class,
// wrapped in ErrFaultInjected.
func TestFaultKinds(t *testing.T) {
	tr := FaultPlan{Seed: 1, TransferProb: 1}.NewInjector(0)
	if err := tr.transfer(); err == nil || !errors.Is(err, ErrFaultInjected) {
		t.Errorf("transfer fault: %v", err)
	}
	if err := tr.launch(); err != nil {
		t.Errorf("TransferProb must not affect launches: %v", err)
	}

	tp := FaultPlan{Seed: 1, TrapProb: 1}.NewInjector(0)
	if err := tp.launch(); err == nil || !errors.Is(err, ErrFaultInjected) || errors.Is(err, ErrDPUDead) {
		t.Errorf("trap fault: %v", err)
	}
	if err := tp.transfer(); err != nil {
		t.Errorf("TrapProb must not affect transfers: %v", err)
	}
}

// TestFaultDeadAfterLaunches: a doomed DPU completes exactly
// DeadAfterLaunches launches, then fails every launch and transfer with
// ErrDPUDead for the rest of the run.
func TestFaultDeadAfterLaunches(t *testing.T) {
	const after = 3
	in := FaultPlan{Seed: 9, DeadFrac: 1, DeadAfterLaunches: after}.NewInjector(5)
	for i := 0; i < after; i++ {
		if err := in.launch(); err != nil {
			t.Fatalf("launch %d before death: %v", i, err)
		}
		if err := in.transfer(); err != nil {
			t.Fatalf("transfer %d before death: %v", i, err)
		}
	}
	if in.Dead() {
		t.Fatal("died before DeadAfterLaunches launches completed")
	}
	err := in.launch()
	if err == nil || !errors.Is(err, ErrDPUDead) || !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("death launch: %v", err)
	}
	if !in.Dead() {
		t.Fatal("Dead() false after death")
	}
	for i := 0; i < 5; i++ {
		if err := in.launch(); !errors.Is(err, ErrDPUDead) {
			t.Fatalf("post-death launch %d: %v", i, err)
		}
		if err := in.transfer(); !errors.Is(err, ErrDPUDead) {
			t.Fatalf("post-death transfer %d: %v", i, err)
		}
	}
}

// TestFaultZeroPlan: the zero plan is inert — no faults, ever — so
// arming it must be indistinguishable from not arming at all.
func TestFaultZeroPlan(t *testing.T) {
	var plan FaultPlan
	if !plan.Zero() {
		t.Fatal("zero FaultPlan not Zero()")
	}
	in := plan.NewInjector(3)
	for i := 0; i < 1000; i++ {
		if err := in.transfer(); err != nil {
			t.Fatalf("zero-plan transfer fault: %v", err)
		}
		if err := in.launch(); err != nil {
			t.Fatalf("zero-plan launch fault: %v", err)
		}
	}
	if in.Dead() {
		t.Fatal("zero-plan DPU died")
	}
}

// TestFaultDeadFrac: over many DPUs, DeadFrac dooms roughly that
// fraction — and the doomed set is a pure function of the seed.
func TestFaultDeadFrac(t *testing.T) {
	plan := FaultPlan{Seed: 7, DeadFrac: 0.25}
	doomed := 0
	const n = 2000
	for id := 0; id < n; id++ {
		if plan.NewInjector(id).doomed {
			doomed++
		}
	}
	if doomed < n/8 || doomed > n/2 {
		t.Errorf("DeadFrac 0.25 doomed %d/%d DPUs", doomed, n)
	}
	for id := 0; id < 32; id++ {
		if plan.NewInjector(id).doomed != plan.NewInjector(id).doomed {
			t.Fatal("doomed decision not reproducible")
		}
	}
}

package dpu

import "pimdnn/internal/softfloat"

// OptLevel models dpu-clang's -O0..-O3 optimization settings (§3.1). The
// cost model uses it in two ways, following §3.3: per-statement
// load/store overhead shrinks with optimization, and 16-bit multiplies
// stop being lowered to the __mulsi3 subroutine at O2 and above ("collapse
// into regular instructions under full optimization").
type OptLevel int

// Optimization levels, mirroring dpu-clang's -O flags.
const (
	O0 OptLevel = iota
	O1
	O2
	O3
)

func (o OptLevel) String() string {
	switch o {
	case O0:
		return "O0"
	case O1:
		return "O1"
	case O2:
		return "O2"
	case O3:
		return "O3"
	default:
		return "O?"
	}
}

// Op identifies an operation class for cycle accounting.
type Op int

// Operation classes charged by tasklet helpers.
const (
	OpNop Op = iota + 1
	OpLoad
	OpStore
	OpMove
	OpBranch
	OpLogic
	OpShift
	OpAddInt
	OpSubInt
	OpMul8
	OpMul16
	OpMul32
	OpDivInt
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFCmp
	OpFloatFromInt
	OpFloatToInt

	// opKinds bounds the per-tasklet instruction-mix array.
	opKinds
)

var opNames = map[Op]string{
	OpNop: "nop", OpLoad: "load", OpStore: "store", OpMove: "move",
	OpBranch: "branch", OpLogic: "logic", OpShift: "shift",
	OpAddInt: "add", OpSubInt: "sub", OpMul8: "mul8", OpMul16: "mul16",
	OpMul32: "mul32", OpDivInt: "div", OpFAdd: "fadd", OpFSub: "fsub",
	OpFMul: "fmul", OpFDiv: "fdiv", OpFCmp: "fcmp",
	OpFloatFromInt: "floatsisf", OpFloatToInt: "fixsfsi",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return "op?"
}

// costEntry is the cost-model row for one operation class.
type costEntry struct {
	// slots is the number of pipeline issue slots (instructions) the
	// operation consumes, excluding per-statement overhead.
	slots uint64
	// subroutine names the compiler-rt routine invoked, if any; it is
	// recorded in the profile so Fig 3.2 / Fig 4.3 style #occ counts
	// can be reproduced.
	subroutine string
}

// Issue-slot calibration. At O0 with one tasklet a profiled single
// operation costs (profilingOverheadSlots + stmtOverhead + slots) × 11
// cycles, which reproduces Table 3.1 within ~1%:
//
//	operation            simulated  thesis (Table 3.1)
//	8/16/32-bit add        275        272
//	8-bit  multiply        275        272
//	16-bit multiply        605        608
//	32-bit multiply        792        800
//	fixed-point divide     363        368
//	float add              891        896
//	float subtract         924        928
//	float multiply        2519       2528
//	float divide         12056      12064
const (
	// profilingOverheadSlots is the instruction overhead of the Fig 3.1
	// measurement harness (perfcounter reads, operand loads, result
	// store, loop bookkeeping) — the thesis notes Table 3.1 "includes
	// cycles needed for profiling".
	profilingOverheadSlots = 21

	mul16SubSlots = 31
	mul32SubSlots = 48
	divSubSlots   = 9
	faddSlots     = 57
	fsubSlots     = 60
	fmulSlots     = 205
	fdivSlots     = 1072
	fcmpSlots     = 27
	fcvtSlots     = 35
)

// cost returns the cost-model entry for op at optimization level opt.
func cost(op Op, opt OptLevel) costEntry {
	switch op {
	case OpNop, OpLoad, OpStore, OpMove, OpBranch, OpLogic, OpShift,
		OpAddInt, OpSubInt, OpMul8:
		return costEntry{slots: 1}
	case OpMul16:
		if opt >= O2 {
			// Full optimization lowers 16-bit multiply to inline
			// mul_step instructions (§3.3, §5.2.2: n moves from 16
			// to 32).
			return costEntry{slots: 4}
		}
		return costEntry{slots: mul16SubSlots, subroutine: softfloat.SubMulSI3}
	case OpMul32:
		// No hardware support at any level (§3.3).
		return costEntry{slots: mul32SubSlots, subroutine: softfloat.SubMulSI3}
	case OpDivInt:
		return costEntry{slots: divSubSlots, subroutine: softfloat.SubDivSI3}
	case OpFAdd:
		return costEntry{slots: faddSlots, subroutine: softfloat.SubAddSF3}
	case OpFSub:
		return costEntry{slots: fsubSlots, subroutine: softfloat.SubSubSF3}
	case OpFMul:
		return costEntry{slots: fmulSlots, subroutine: softfloat.SubMulSF3}
	case OpFDiv:
		return costEntry{slots: fdivSlots, subroutine: softfloat.SubDivSF3}
	case OpFCmp:
		return costEntry{slots: fcmpSlots, subroutine: softfloat.SubLtSF2}
	case OpFloatFromInt:
		return costEntry{slots: fcvtSlots, subroutine: softfloat.SubFloatSiSF}
	case OpFloatToInt:
		return costEntry{slots: fcvtSlots, subroutine: softfloat.SubFixSFSi}
	default:
		return costEntry{slots: 1}
	}
}

// stmtOverhead is the per-statement load/store overhead an unoptimized
// compile adds around each arithmetic operation (operands reloaded from
// the stack, result stored back). Plain loads, stores, moves, branches
// and logic are single instructions at every level.
func stmtOverhead(op Op, opt OptLevel) uint64 {
	switch op {
	case OpAddInt, OpSubInt, OpMul8, OpMul16, OpMul32, OpDivInt,
		OpFAdd, OpFSub, OpFMul, OpFDiv, OpFCmp, OpFloatFromInt, OpFloatToInt:
	default:
		return 0
	}
	switch opt {
	case O0:
		return 3
	case O1:
		return 1
	default:
		return 0
	}
}

// dmaCycles returns the cost of one MRAM<->WRAM transfer of n bytes,
// Eq 3.4: 25 + n/2 cycles (e.g. 2048 bytes -> 1049 cycles).
func dmaCycles(n int) uint64 {
	return DMASetupCycles + uint64(n)/DMABytesPerCycle
}

// OpSlots exposes the cost model to analytic estimators: the pipeline
// issue slots one operation of class op consumes at optimization level
// opt, including per-statement overhead.
func OpSlots(op Op, opt OptLevel) uint64 {
	e := cost(op, opt)
	return e.slots + stmtOverhead(op, opt)
}

// DMACost exposes Eq 3.4 to analytic estimators.
func DMACost(bytes int) uint64 {
	return dmaCycles(bytes)
}

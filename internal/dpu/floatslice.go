package dpu

import "pimdnn/internal/softfloat"

// Batched software floating point. Each method computes a whole vector
// of binary32 operations through the softfloat slice routines and
// accounts for them with one ChargeBulk call, so cycle totals,
// instruction mixes and subroutine profiles are identical to a loop of
// the scalar FAdd/FSub/... helpers over the same lanes. Kernels whose
// inner loops are float-heavy (the eBNN threshold fold, normalization
// layers) use these instead of per-lane calls.

// FAddSlice computes dst[i] = a[i] + b[i], charging one __addsf3 per lane.
func (t *Tasklet) FAddSlice(dst, a, b []uint32) {
	t.ChargeBulk(OpFAdd, uint64(len(dst)))
	softfloat.AddSlice(dst, a, b)
}

// FSubSlice computes dst[i] = a[i] - b[i], charging one __subsf3 per lane.
func (t *Tasklet) FSubSlice(dst, a, b []uint32) {
	t.ChargeBulk(OpFSub, uint64(len(dst)))
	softfloat.SubSlice(dst, a, b)
}

// FMulSlice computes dst[i] = a[i] * b[i], charging one __mulsf3 per lane.
func (t *Tasklet) FMulSlice(dst, a, b []uint32) {
	t.ChargeBulk(OpFMul, uint64(len(dst)))
	softfloat.MulSlice(dst, a, b)
}

// FDivSlice computes dst[i] = a[i] / b[i], charging one __divsf3 per lane.
func (t *Tasklet) FDivSlice(dst, a, b []uint32) {
	t.ChargeBulk(OpFDiv, uint64(len(dst)))
	softfloat.DivSlice(dst, a, b)
}

// FMACSlice computes acc[i] += a[i] * b[i] (product rounded before the
// add — no fused multiply-add on the DPU), charging one __mulsf3 and one
// __addsf3 per lane.
func (t *Tasklet) FMACSlice(acc, a, b []uint32) {
	t.ChargeBulk(OpFMul, uint64(len(acc)))
	t.ChargeBulk(OpFAdd, uint64(len(acc)))
	softfloat.MACSlice(acc, a, b)
}

// FFromIntSlice converts each lane of v to binary32, charging one
// __floatsisf per lane.
func (t *Tasklet) FFromIntSlice(dst []uint32, v []int32) {
	t.ChargeBulk(OpFloatFromInt, uint64(len(dst)))
	softfloat.FromInt32Slice(dst, v)
}

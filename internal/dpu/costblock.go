package dpu

import "fmt"

// Block-level cycle accounting. A kernel whose inner loop is a
// straight-line sequence of operations does not need to charge them one
// at a time: the total cost of the sequence is a static function of the
// operation counts and the optimization level. A CostBlock precomputes
// that total once — issue slots (including per-statement overhead),
// per-class operation counts, subroutine occurrence records, and DMA
// stall cycles — so a tasklet can account for one or many executions of
// the sequence in O(1) with ChargeBlock/ChargeBlockN.
//
// The charge is constructed from the same cost.go tables the per-op
// helpers use, so cycle totals, instruction mixes, perfcounter values
// and subroutine profiles are identical to charging each operation
// individually; the differential tests in the kernel packages enforce
// that equivalence. Totals are precomputed for every OptLevel, so one
// block (typically built once per runner or per problem shape) serves
// DPUs at any optimization level.

// CostBlock is the precomputed cost of a straight-line operation
// sequence. Build one with AddOp/AddDMA; zero value is an empty block.
// Building is not safe for concurrent use; charging a finished block
// from many tasklets concurrently is.
type CostBlock struct {
	ops      []blockOp // nonzero (op, count) pairs for mix accounting
	dmaOps   uint64
	dmaBytes uint64
	dmaCyc   uint64
	lv       [4]blockLevel // per-OptLevel totals
}

// blockOp is one operation class and its count within the block.
type blockOp struct {
	op Op
	n  uint64
}

// blockLevel is the block's total cost at one optimization level.
type blockLevel struct {
	slots uint64
	subs  []blockSub
}

// blockSub is one subroutine's occurrence record within the block.
type blockSub struct {
	name      string
	n         uint64
	slotsEach uint64
}

// NewCostBlock returns an empty block.
func NewCostBlock() *CostBlock { return &CostBlock{} }

// AddOp folds n operations of class op into the block and returns the
// block for chaining. Repeated AddOp calls for the same class merge.
// Invalid operation classes panic: blocks describe static kernel
// structure, so a bad class is a programming error.
func (b *CostBlock) AddOp(op Op, n uint64) *CostBlock {
	if op <= 0 || op >= opKinds {
		panic(fmt.Sprintf("dpu: CostBlock.AddOp: invalid op %d", int(op)))
	}
	if n == 0 {
		return b
	}
	merged := false
	for i := range b.ops {
		if b.ops[i].op == op {
			b.ops[i].n += n
			merged = true
			break
		}
	}
	if !merged {
		b.ops = append(b.ops, blockOp{op, n})
	}
	for opt := O0; opt <= O3; opt++ {
		e := cost(op, opt)
		lv := &b.lv[opt]
		lv.slots += n * (e.slots + stmtOverhead(op, opt))
		if e.subroutine != "" {
			found := false
			for i := range lv.subs {
				if lv.subs[i].name == e.subroutine {
					lv.subs[i].n += n
					found = true
					break
				}
			}
			if !found {
				lv.subs = append(lv.subs, blockSub{e.subroutine, n, e.slots})
			}
		}
	}
	return b
}

// AddDMA folds n MRAM<->WRAM transfers of size bytes each into the
// block (Eq 3.4 per transfer). size must satisfy the usual DMA
// constraints; violations panic, like AddOp.
func (b *CostBlock) AddDMA(n uint64, size int) *CostBlock {
	if size <= 0 || size%DMAAlignment != 0 || size > MaxDMATransfer {
		panic(fmt.Sprintf("dpu: CostBlock.AddDMA: invalid transfer size %d", size))
	}
	if n == 0 {
		return b
	}
	b.dmaOps += n
	b.dmaBytes += n * uint64(size)
	b.dmaCyc += n * dmaCycles(size)
	return b
}

// Slots returns the block's issue-slot total at the given level,
// exposed for analytic estimators and tests.
func (b *CostBlock) Slots(opt OptLevel) uint64 { return b.lv[opt].slots }

// DMACycles returns the block's DMA stall cycles.
func (b *CostBlock) DMACycles() uint64 { return b.dmaCyc }

// ChargeBlock accounts for one execution of the block.
func (t *Tasklet) ChargeBlock(b *CostBlock) { t.ChargeBlockN(b, 1) }

// ChargeBlockN accounts for n executions of the block in O(1) simulator
// time: cycle totals, operation counts, subroutine occurrences and DMA
// accounting are identical to charging every operation individually n
// times.
func (t *Tasklet) ChargeBlockN(b *CostBlock, n uint64) {
	if b == nil || n == 0 {
		return
	}
	lv := &b.lv[t.dpu.cfg.Opt]
	t.slots += n * lv.slots
	for _, o := range b.ops {
		if t.opCounts[o.op] == 0 {
			t.touched[t.nTouched] = o.op
			t.nTouched++
		}
		t.opCounts[o.op] += n * o.n
	}
	for _, s := range lv.subs {
		t.dpu.prof.RecordN(s.name, n*s.n, s.slotsEach)
	}
	if b.dmaOps != 0 {
		t.dma += n * b.dmaCyc
		t.dmaBytes += n * b.dmaBytes
		t.dmaOps += n * b.dmaOps
	}
}

package dpu

import (
	"encoding/binary"
	"fmt"

	"pimdnn/internal/softfloat"
)

// trapError is raised by tasklet memory helpers on out-of-bounds or
// misaligned accesses and converted to an error by Launch, modeling a
// hardware memory fault.
type trapError string

// Tasklet is one DPU hardware thread executing a kernel. All arithmetic
// and memory helpers charge the cost model; kernels that bypass them do
// work the simulator cannot see, so kernels must route every DPU-side
// operation through the tasklet.
type Tasklet struct {
	dpu   *DPU
	id    int
	count int

	slots uint64 // pipeline issue slots consumed
	dma   uint64 // DMA stall cycles

	// dmaBytes/dmaOps meter MRAM<->WRAM DMA traffic for telemetry
	// (aggregated once per launch). Kept separate from the cycle
	// accounting above: the cost model never reads them.
	dmaBytes uint64
	dmaOps   uint64

	opCounts [opKinds]uint64 // instruction mix per operation class

	// touched lists the op classes with nonzero opCounts entries, in
	// first-touch order, so the per-launch mix merge visits only the
	// handful of classes a kernel actually uses instead of scanning the
	// whole array per tasklet. Maintained by the charge helpers; reset
	// together with opCounts in the launch merge.
	touched  [opKinds]Op
	nTouched uint8

	pcSlots uint64 // perfcounter snapshot
	pcDMA   uint64
}

// ID returns the tasklet index within the launch (0-based).
func (t *Tasklet) ID() int { return t.id }

// Count returns the number of tasklets in the launch (NR_TASKLETS).
func (t *Tasklet) Count() int { return t.count }

// DPU returns the owning DPU.
func (t *Tasklet) DPU() *DPU { return t.dpu }

func (t *Tasklet) trapf(format string, args ...interface{}) {
	panic(trapError(fmt.Sprintf(format, args...)))
}

// charge consumes issue slots for one operation of class op and records
// any subroutine invocation in the DPU profile.
func (t *Tasklet) charge(op Op) {
	e := cost(op, t.dpu.cfg.Opt)
	n := e.slots + stmtOverhead(op, t.dpu.cfg.Opt)
	t.slots += n
	if int(op) < len(t.opCounts) {
		if t.opCounts[op] == 0 {
			t.touched[t.nTouched] = op
			t.nTouched++
		}
		t.opCounts[op]++
	}
	if e.subroutine != "" {
		t.dpu.prof.Record(e.subroutine, e.slots)
	}
}

// Charge consumes issue slots for n operations of class op without
// computing anything. Kernels use it to account for control flow
// (branches, address arithmetic) the Go host language performs natively.
func (t *Tasklet) Charge(op Op, n int) {
	for i := 0; i < n; i++ {
		t.charge(op)
	}
}

// ChargeBulk consumes issue slots for n operations of class op in O(1)
// simulator time. Kernels with very large inner loops (conv-as-GEMM over
// millions of MACs) compute their results natively and account for the
// DPU work in bulk; the cycle totals and subroutine occurrence counts are
// identical to n individual charges.
func (t *Tasklet) ChargeBulk(op Op, n uint64) {
	if n == 0 {
		return
	}
	e := cost(op, t.dpu.cfg.Opt)
	t.slots += n * (e.slots + stmtOverhead(op, t.dpu.cfg.Opt))
	if int(op) < len(t.opCounts) {
		if t.opCounts[op] == 0 {
			t.touched[t.nTouched] = op
			t.nTouched++
		}
		t.opCounts[op] += n
	}
	if e.subroutine != "" {
		t.dpu.prof.RecordN(e.subroutine, n, e.slots)
	}
}

// ChargeDMA accounts for n MRAM<->WRAM transfers of the given byte size
// each without moving data, for kernels that batch their data movement
// natively. size must satisfy the usual DMA constraints.
func (t *Tasklet) ChargeDMA(n uint64, size int) {
	if n == 0 {
		return
	}
	t.dmaCheck(0, 0, size)
	t.dma += n * dmaCycles(size)
	t.dmaBytes += n * uint64(size)
	t.dmaOps += n
}

// --- perfcounter (Fig 3.1) ---

// PerfcounterConfig resets the tasklet's cycle counter, mirroring
// perfcounter_config(COUNT_CYCLES, true).
func (t *Tasklet) PerfcounterConfig() {
	t.pcSlots = t.slots
	t.pcDMA = t.dma
}

// PerfcounterGet returns the cycles elapsed since PerfcounterConfig under
// the pipeline model: each issue slot occupies one pipeline revolution
// when few tasklets run (issue interval = max(PipelineDepth, count)).
func (t *Tasklet) PerfcounterGet() uint64 {
	interval := uint64(PipelineDepth)
	if uint64(t.count) > interval {
		interval = uint64(t.count)
	}
	return (t.slots-t.pcSlots)*interval + (t.dma - t.pcDMA)
}

// --- integer ALU ---

// Add32 returns a+b, charging one add.
func (t *Tasklet) Add32(a, b int32) int32 { t.charge(OpAddInt); return a + b }

// Sub32 returns a-b, charging one subtract.
func (t *Tasklet) Sub32(a, b int32) int32 { t.charge(OpSubInt); return a - b }

// Add64 returns a+b; 64-bit adds issue as two 32-bit adds.
func (t *Tasklet) Add64(a, b int64) int64 {
	t.charge(OpAddInt)
	t.charge(OpAddInt)
	return a + b
}

// Mul8 returns the product of two 8-bit operands.
func (t *Tasklet) Mul8(a, b int8) int32 { t.charge(OpMul8); return int32(a) * int32(b) }

// Mul16 returns the product of two 16-bit operands. At O0/O1 this is the
// __mulsi3 subroutine; at O2/O3 it lowers to inline instructions (§3.3).
func (t *Tasklet) Mul16(a, b int16) int32 { t.charge(OpMul16); return int32(a) * int32(b) }

// Mul32 returns the low 32 bits of a 32-bit product (always the __mulsi3
// subroutine; the DPU has no 32-bit multiply hardware).
func (t *Tasklet) Mul32(a, b int32) int32 {
	t.charge(OpMul32)
	return int32(int64(a) * int64(b))
}

// Div32 returns a/b (truncated) via the division subroutine. Division by
// zero traps.
func (t *Tasklet) Div32(a, b int32) int32 {
	t.charge(OpDivInt)
	if b == 0 {
		t.trapf("integer division by zero")
	}
	return a / b
}

// Mod32 returns a%b via the division subroutine.
func (t *Tasklet) Mod32(a, b int32) int32 {
	t.charge(OpDivInt)
	if b == 0 {
		t.trapf("integer modulo by zero")
	}
	return a % b
}

// Shl32 returns a<<s.
func (t *Tasklet) Shl32(a int32, s uint) int32 { t.charge(OpShift); return a << s }

// Shr32 returns a>>s (arithmetic).
func (t *Tasklet) Shr32(a int32, s uint) int32 { t.charge(OpShift); return a >> s }

// And32, Or32 and Xor32 are single-slot logic operations.
func (t *Tasklet) And32(a, b uint32) uint32 { t.charge(OpLogic); return a & b }

// Or32 returns a|b.
func (t *Tasklet) Or32(a, b uint32) uint32 { t.charge(OpLogic); return a | b }

// Xor32 returns a^b.
func (t *Tasklet) Xor32(a, b uint32) uint32 { t.charge(OpLogic); return a ^ b }

// Popcount32 counts set bits; the DPU ISA has a single-cycle CAO
// (count-all-ones) instruction, which is what makes XNOR-popcount binary
// convolutions cheap (§4.1.1).
func (t *Tasklet) Popcount32(a uint32) int32 {
	t.charge(OpLogic)
	n := int32(0)
	for a != 0 {
		a &= a - 1
		n++
	}
	return n
}

// --- software floating point (§3.3) ---

// FAdd computes a+b on binary32 bit patterns via __addsf3.
func (t *Tasklet) FAdd(a, b uint32) uint32 { t.charge(OpFAdd); return softfloat.Add(a, b) }

// FSub computes a-b via __subsf3.
func (t *Tasklet) FSub(a, b uint32) uint32 { t.charge(OpFSub); return softfloat.Sub(a, b) }

// FMul computes a*b via __mulsf3.
func (t *Tasklet) FMul(a, b uint32) uint32 { t.charge(OpFMul); return softfloat.Mul(a, b) }

// FDiv computes a/b via __divsf3.
func (t *Tasklet) FDiv(a, b uint32) uint32 { t.charge(OpFDiv); return softfloat.Div(a, b) }

// FLt reports a<b via __ltsf2.
func (t *Tasklet) FLt(a, b uint32) bool { t.charge(OpFCmp); return softfloat.Lt(a, b) }

// FGe reports a>=b via __gesf2.
func (t *Tasklet) FGe(a, b uint32) bool { t.charge(OpFCmp); return softfloat.Ge(a, b) }

// FFromInt converts an int32 to binary32 via __floatsisf.
func (t *Tasklet) FFromInt(v int32) uint32 { t.charge(OpFloatFromInt); return softfloat.FromInt32(v) }

// FToInt converts binary32 to int32 (truncating) via __fixsfsi.
func (t *Tasklet) FToInt(a uint32) int32 { t.charge(OpFloatToInt); return softfloat.ToInt32(a) }

// --- WRAM access (1 cycle, §3.2.1) ---

func (t *Tasklet) wramCheck(off int64, size int64) {
	if off < 0 || off+size > int64(t.dpu.cfg.WRAMSize) {
		t.trapf("WRAM access [%d, %d) outside [0, %d)", off, off+size, t.dpu.cfg.WRAMSize)
	}
	if off%size != 0 {
		t.trapf("WRAM access at %d not %d-byte aligned", off, size)
	}
}

// Load8 reads a byte from WRAM.
func (t *Tasklet) Load8(off int64) int8 {
	t.charge(OpLoad)
	t.wramCheck(off, 1)
	return int8(t.dpu.wram[off])
}

// Store8 writes a byte to WRAM.
func (t *Tasklet) Store8(off int64, v int8) {
	t.charge(OpStore)
	t.wramCheck(off, 1)
	t.dpu.wram[off] = byte(v)
}

// Load16 reads a little-endian int16 from WRAM.
func (t *Tasklet) Load16(off int64) int16 {
	t.charge(OpLoad)
	t.wramCheck(off, 2)
	return int16(binary.LittleEndian.Uint16(t.dpu.wram[off:]))
}

// Store16 writes a little-endian int16 to WRAM.
func (t *Tasklet) Store16(off int64, v int16) {
	t.charge(OpStore)
	t.wramCheck(off, 2)
	binary.LittleEndian.PutUint16(t.dpu.wram[off:], uint16(v))
}

// Load32 reads a little-endian uint32 from WRAM.
func (t *Tasklet) Load32(off int64) uint32 {
	t.charge(OpLoad)
	t.wramCheck(off, 4)
	return binary.LittleEndian.Uint32(t.dpu.wram[off:])
}

// Store32 writes a little-endian uint32 to WRAM.
func (t *Tasklet) Store32(off int64, v uint32) {
	t.charge(OpStore)
	t.wramCheck(off, 4)
	binary.LittleEndian.PutUint32(t.dpu.wram[off:], v)
}

// LoadI32 reads a little-endian int32 from WRAM.
func (t *Tasklet) LoadI32(off int64) int32 { return int32(t.Load32(off)) }

// StoreI32 writes a little-endian int32 to WRAM.
func (t *Tasklet) StoreI32(off int64, v int32) { t.Store32(off, uint32(v)) }

// --- MRAM DMA (Eq 3.4) ---

func (t *Tasklet) dmaCheck(wramOff, mramOff int64, n int) {
	if n <= 0 || n%DMAAlignment != 0 {
		t.trapf("DMA size %d not a positive multiple of %d", n, DMAAlignment)
	}
	if n > MaxDMATransfer {
		t.trapf("DMA size %d exceeds the %d-byte transfer limit", n, MaxDMATransfer)
	}
	if mramOff%DMAAlignment != 0 {
		t.trapf("DMA MRAM offset %d not %d-byte aligned", mramOff, DMAAlignment)
	}
	if mramOff < 0 || mramOff+int64(n) > t.dpu.cfg.MRAMSize {
		t.trapf("DMA MRAM range [%d, %d) outside [0, %d)", mramOff, mramOff+int64(n), t.dpu.cfg.MRAMSize)
	}
	if wramOff < 0 || wramOff+int64(n) > int64(t.dpu.cfg.WRAMSize) {
		t.trapf("DMA WRAM range [%d, %d) outside [0, %d)", wramOff, wramOff+int64(n), t.dpu.cfg.WRAMSize)
	}
}

// MRAMToWRAM copies n bytes from MRAM to WRAM through the DMA engine,
// charging 25 + n/2 cycles (Eq 3.4). n must be a multiple of 8 and at
// most 2048 (the per-transfer limit that caps the eBNN image batch at 16,
// §4.1.3).
func (t *Tasklet) MRAMToWRAM(wramOff, mramOff int64, n int) {
	t.dmaCheck(wramOff, mramOff, n)
	t.dma += dmaCycles(n)
	t.dmaBytes += uint64(n)
	t.dmaOps++
	d := t.dpu
	d.mu.Lock()
	d.mramRead(mramOff, d.wram[wramOff:wramOff+int64(n)])
	d.mu.Unlock()
}

// WRAMToMRAM copies n bytes from WRAM to MRAM through the DMA engine,
// charging 25 + n/2 cycles.
func (t *Tasklet) WRAMToMRAM(mramOff, wramOff int64, n int) {
	t.dmaCheck(wramOff, mramOff, n)
	t.dma += dmaCycles(n)
	t.dmaBytes += uint64(n)
	t.dmaOps++
	d := t.dpu
	d.mu.Lock()
	d.mramWrite(mramOff, d.wram[wramOff:wramOff+int64(n)])
	d.mu.Unlock()
}

// IssueSlots returns the pipeline issue slots this tasklet has consumed.
func (t *Tasklet) IssueSlots() uint64 { return t.slots }

// DMACycles returns the DMA stall cycles this tasklet has accumulated.
func (t *Tasklet) DMACycles() uint64 { return t.dma }

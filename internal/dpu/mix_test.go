package dpu

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpCountsRecorded(t *testing.T) {
	d := newTestDPU(t, O0)
	st, err := d.Launch(2, func(tk *Tasklet) error {
		tk.Add32(1, 2)
		tk.Mul16(3, 4)
		tk.Load8(0)
		tk.ChargeBulk(OpStore, 10)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[Op]uint64{
		OpAddInt: 2, // one per tasklet
		OpMul16:  2,
		OpLoad:   2,
		OpStore:  20,
	}
	for op, n := range want {
		if st.OpCounts[op] != n {
			t.Errorf("OpCounts[%v] = %d, want %d", op, st.OpCounts[op], n)
		}
	}
}

func TestMixReport(t *testing.T) {
	d := newTestDPU(t, O3)
	st, err := d.Launch(1, func(tk *Tasklet) error {
		tk.ChargeBulk(OpMul16, 100)
		tk.Charge(OpAddInt, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := st.MixReport()
	if !strings.Contains(rep, "mul16") || !strings.Contains(rep, "add") {
		t.Errorf("report missing ops:\n%s", rep)
	}
	// Sorted by count: mul16 first.
	if strings.Index(rep, "mul16") > strings.Index(rep, "add") {
		t.Errorf("report not sorted:\n%s", rep)
	}
}

// TestChargeBulkEquivalence: bulk charging is exactly n individual
// charges, for every op class and optimization level — the invariant the
// GEMM kernels' accounting rests on.
func TestChargeBulkEquivalence(t *testing.T) {
	ops := []Op{OpLoad, OpStore, OpAddInt, OpMul8, OpMul16, OpMul32,
		OpDivInt, OpFAdd, OpFMul, OpFDiv, OpShift, OpBranch}
	for _, opt := range []OptLevel{O0, O1, O2, O3} {
		for _, op := range ops {
			f := func(nRaw uint16) bool {
				n := uint64(nRaw % 500)
				d1 := MustNew(DefaultConfig(opt))
				var s1 uint64
				if _, err := d1.Launch(1, func(tk *Tasklet) error {
					tk.Charge(op, int(n))
					s1 = tk.IssueSlots()
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				d2 := MustNew(DefaultConfig(opt))
				var s2 uint64
				if _, err := d2.Launch(1, func(tk *Tasklet) error {
					tk.ChargeBulk(op, n)
					s2 = tk.IssueSlots()
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				// Subroutine occurrence counts must also match.
				return s1 == s2 &&
					profileSum(d1) == profileSum(d2)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
				t.Errorf("%v at %v: %v", op, opt, err)
			}
		}
	}
}

func profileSum(d *DPU) uint64 {
	var total uint64
	for _, name := range d.Profile().Subroutines() {
		total += d.Profile().Occ(name)
	}
	return total
}

// TestCyclesMonotoneInWork: adding operations never reduces the modeled
// cycle count.
func TestCyclesMonotoneInWork(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a, b := uint64(aRaw%2000), uint64(bRaw%2000)
		run := func(n uint64) uint64 {
			d := MustNew(DefaultConfig(O3))
			st, err := d.Launch(4, func(tk *Tasklet) error {
				tk.ChargeBulk(OpAddInt, n)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return st.Cycles
		}
		if a <= b {
			return run(a) <= run(b)
		}
		return run(b) <= run(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

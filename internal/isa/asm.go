package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembly text into a Program. The syntax is one
// instruction per line:
//
//	; comment
//	loop:                 ; label
//	    movi r1, 100
//	    addi r1, r1, -1
//	    bne  r1, r0, loop
//	    halt
//
// Registers are r0..r31 (all general purpose). Immediates are decimal or
// 0x-hex. Branch and jump targets are labels. Memory operands use the
// off(rN) form: `lw r2, 8(r3)`.
func Assemble(src string) (Program, error) {
	type pending struct {
		ins   int    // instruction index needing a label patch
		label string // label name
		line  int
	}
	p := Program{Labels: map[string]int{}}
	var patches []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return Program{}, fmt.Errorf("isa: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := p.Labels[label]; dup {
				return Program{}, fmt.Errorf("isa: line %d: duplicate label %q", lineNo+1, label)
			}
			p.Labels[label] = len(p.Ins)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		mnemonic, rest, _ := strings.Cut(line, " ")
		op, ok := nameOps[strings.ToLower(mnemonic)]
		if !ok {
			return Program{}, fmt.Errorf("isa: line %d: unknown mnemonic %q", lineNo+1, mnemonic)
		}
		args := splitArgs(rest)
		in := Instruction{Op: op}
		err := func() error {
			switch op {
			case OpNOP, OpHALT, OpPCFG:
				return expectArgs(args, 0)
			case OpMOVI:
				if err := expectArgs(args, 2); err != nil {
					return err
				}
				return firstErr(parseReg(args[0], &in.Rd), parseImm(args[1], &in.Imm))
			case OpMOV, OpCAO, OpFSI, OpFTS:
				if err := expectArgs(args, 2); err != nil {
					return err
				}
				return firstErr(parseReg(args[0], &in.Rd), parseReg(args[1], &in.Rs1))
			case OpLB, OpLH, OpLW:
				if err := expectArgs(args, 2); err != nil {
					return err
				}
				return firstErr(parseReg(args[0], &in.Rd), parseMem(args[1], &in.Rs1, &in.Imm))
			case OpSB, OpSH, OpSW:
				if err := expectArgs(args, 2); err != nil {
					return err
				}
				return firstErr(parseReg(args[0], &in.Rs2), parseMem(args[1], &in.Rs1, &in.Imm))
			case OpADD, OpSUB, OpAND, OpOR, OpXOR,
				OpMUL8, OpMUL16, OpMUL, OpDIV, OpREM,
				OpFADD, OpFSUB, OpFMUL, OpFDIV, OpFLT:
				if err := expectArgs(args, 3); err != nil {
					return err
				}
				return firstErr(parseReg(args[0], &in.Rd), parseReg(args[1], &in.Rs1), parseReg(args[2], &in.Rs2))
			case OpADDI, OpSLL, OpSRL, OpSRA:
				if err := expectArgs(args, 3); err != nil {
					return err
				}
				return firstErr(parseReg(args[0], &in.Rd), parseReg(args[1], &in.Rs1), parseImm(args[2], &in.Imm))
			case OpJ:
				if err := expectArgs(args, 1); err != nil {
					return err
				}
				patches = append(patches, pending{ins: len(p.Ins), label: args[0], line: lineNo + 1})
				return nil
			case OpBEQ, OpBNE, OpBLT, OpBGE:
				if err := expectArgs(args, 3); err != nil {
					return err
				}
				if err := firstErr(parseReg(args[0], &in.Rs1), parseReg(args[1], &in.Rs2)); err != nil {
					return err
				}
				patches = append(patches, pending{ins: len(p.Ins), label: args[2], line: lineNo + 1})
				return nil
			case OpLDMA, OpSDMA:
				if err := expectArgs(args, 3); err != nil {
					return err
				}
				return firstErr(parseReg(args[0], &in.Rs1), parseReg(args[1], &in.Rs2), parseImm(args[2], &in.Imm))
			case OpPGET, OpTID:
				if err := expectArgs(args, 1); err != nil {
					return err
				}
				return parseReg(args[0], &in.Rd)
			default:
				return fmt.Errorf("unhandled opcode %v", op)
			}
		}()
		if err != nil {
			return Program{}, fmt.Errorf("isa: line %d: %v", lineNo+1, err)
		}
		p.Ins = append(p.Ins, in)
	}

	for _, pt := range patches {
		target, ok := p.Labels[pt.label]
		if !ok {
			return Program{}, fmt.Errorf("isa: line %d: undefined label %q", pt.line, pt.label)
		}
		p.Ins[pt.ins].Imm = int32(target)
	}
	return p, nil
}

// MustAssemble is Assemble for static program text; it panics on error.
func MustAssemble(src string) Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders the program back to assembly text, one instruction
// per line, with label comments for branch targets.
func Disassemble(p Program) string {
	targets := make(map[int]string)
	for name, idx := range p.Labels {
		targets[idx] = name
	}
	var b strings.Builder
	for i, in := range p.Ins {
		if name, ok := targets[i]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "    %s\n", formatIns(in))
	}
	return b.String()
}

// String renders the instruction in assembly syntax.
func (in Instruction) String() string { return formatIns(in) }

func formatIns(in Instruction) string {
	r := func(n uint8) string { return fmt.Sprintf("r%d", n) }
	switch in.Op {
	case OpNOP, OpHALT, OpPCFG:
		return in.Op.String()
	case OpMOVI:
		return fmt.Sprintf("movi %s, %d", r(in.Rd), in.Imm)
	case OpMOV, OpCAO, OpFSI, OpFTS:
		return fmt.Sprintf("%s %s, %s", in.Op, r(in.Rd), r(in.Rs1))
	case OpLB, OpLH, OpLW:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.Rd), in.Imm, r(in.Rs1))
	case OpSB, OpSH, OpSW:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.Rs2), in.Imm, r(in.Rs1))
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpMUL8, OpMUL16, OpMUL, OpDIV, OpREM,
		OpFADD, OpFSUB, OpFMUL, OpFDIV, OpFLT:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Rs1), r(in.Rs2))
	case OpADDI, OpSLL, OpSRL, OpSRA:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Rs1), in.Imm)
	case OpJ:
		return fmt.Sprintf("j %d", in.Imm)
	case OpBEQ, OpBNE, OpBLT, OpBGE:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rs1), r(in.Rs2), in.Imm)
	case OpLDMA, OpSDMA:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rs1), r(in.Rs2), in.Imm)
	case OpPGET, OpTID:
		return fmt.Sprintf("%s %s", in.Op, r(in.Rd))
	default:
		return fmt.Sprintf("%s %s, %s, %s ; imm=%d", in.Op, r(in.Rd), r(in.Rs1), r(in.Rs2), in.Imm)
	}
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func expectArgs(args []string, n int) error {
	if len(args) != n {
		return fmt.Errorf("expected %d operands, got %d", n, len(args))
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func parseReg(s string, out *uint8) error {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return fmt.Errorf("bad register %q", s)
	}
	*out = uint8(n)
	return nil
}

func parseImm(s string, out *int32) error {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return fmt.Errorf("bad immediate %q", s)
	}
	// Accept the signed range plus unsigned 32-bit bit patterns (so hex
	// constants like 0x80000000 assemble), wrapping to the register
	// representation.
	if v < -(1<<31) || v > (1<<32)-1 {
		return fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	*out = int32(uint32(v))
	return nil
}

// parseMem parses the off(rN) addressing form.
func parseMem(s string, reg *uint8, imm *int32) error {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return fmt.Errorf("bad memory operand %q (want off(rN))", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	if err := parseImm(offStr, imm); err != nil {
		return err
	}
	return parseReg(strings.TrimSpace(s[open+1:len(s)-1]), reg)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

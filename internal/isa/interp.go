package isa

import (
	"encoding/binary"
	"fmt"

	"pimdnn/internal/dpu"
)

// MaxSteps bounds interpreter execution to catch runaway programs.
const MaxSteps = 100_000_000

// Regs is a tasklet register file snapshot.
type Regs [NumRegs]uint32

// Load stores a program into the DPU's IRAM, enforcing the 24 KB limit.
func Load(d *dpu.DPU, p Program) error {
	for i, in := range p.Ins {
		if !in.Valid() {
			return fmt.Errorf("isa: instruction %d invalid: %+v", i, in)
		}
	}
	return d.LoadIRAM(p.Image())
}

// Kernel returns a dpu.KernelFunc that executes the program currently
// loaded in the DPU's IRAM through the compiled-closure dispatcher
// (Compile). The compiled form is cached on the DPU keyed by IRAM
// generation, so an unchanged program is decoded once per LoadIRAM
// instead of once per tasklet per launch. init, if non-nil, seeds each
// tasklet's registers; final, if non-nil, receives each tasklet's
// register file after HALT.
func Kernel(init func(tid int, r *Regs), final func(tid int, r Regs)) dpu.KernelFunc {
	return func(t *dpu.Tasklet) error {
		d := t.DPU()
		gen := d.IRAMGeneration()
		var c *Compiled
		if v, ok := d.ProgramCache(gen); ok {
			c = v.(*Compiled)
		} else {
			img, err := d.ReadIRAM(0, d.Config().IRAMSize)
			if err != nil {
				return err
			}
			prog, err := FromImage(img)
			if err != nil {
				return err
			}
			if c, err = Compile(prog); err != nil {
				return err
			}
			d.SetProgramCache(gen, c)
		}
		var regs Regs
		if init != nil {
			init(t.ID(), &regs)
		}
		if err := c.Exec(t, &regs); err != nil {
			return err
		}
		if final != nil {
			final(t.ID(), regs)
		}
		return nil
	}
}

// LegacyKernel is the switch-interpreter form of Kernel: it re-reads and
// re-decodes IRAM on every tasklet and dispatches through Exec. Retained
// as the reference the differential tests hold the compiled dispatcher
// to.
func LegacyKernel(init func(tid int, r *Regs), final func(tid int, r Regs)) dpu.KernelFunc {
	return func(t *dpu.Tasklet) error {
		img, err := t.DPU().ReadIRAM(0, t.DPU().Config().IRAMSize)
		if err != nil {
			return err
		}
		prog, err := FromImage(img)
		if err != nil {
			return err
		}
		var regs Regs
		if init != nil {
			init(t.ID(), &regs)
		}
		if err := Exec(t, prog, &regs); err != nil {
			return err
		}
		if final != nil {
			final(t.ID(), regs)
		}
		return nil
	}
}

// Exec interprets the program on the tasklet, starting from instruction 0
// with the given register file, until HALT or the end of the program.
// Every instruction charges the DPU cost model; because programs are
// already instruction streams, per-statement compiler overhead does not
// apply — run the DPU at O2/O3 for assembly-faithful accounting.
func Exec(t *dpu.Tasklet, p Program, regs *Regs) error {
	pc := 0
	for steps := 0; ; steps++ {
		if steps > MaxSteps {
			return fmt.Errorf("isa: exceeded %d steps (runaway program?)", MaxSteps)
		}
		if pc < 0 || pc > len(p.Ins) {
			return fmt.Errorf("isa: pc %d outside program of %d instructions", pc, len(p.Ins))
		}
		if pc == len(p.Ins) {
			return nil // fell off the end: implicit halt
		}
		in := p.Ins[pc]
		pc++
		switch in.Op {
		case OpNOP:
			t.Charge(dpu.OpNop, 1)
		case OpHALT:
			t.Charge(dpu.OpNop, 1)
			return nil
		case OpMOVI:
			t.Charge(dpu.OpMove, 1)
			regs[in.Rd] = uint32(in.Imm)
		case OpMOV:
			t.Charge(dpu.OpMove, 1)
			regs[in.Rd] = regs[in.Rs1]
		case OpLB:
			regs[in.Rd] = uint32(int32(t.Load8(memAddr(regs, in))))
		case OpLH:
			regs[in.Rd] = uint32(int32(t.Load16(memAddr(regs, in))))
		case OpLW:
			regs[in.Rd] = t.Load32(memAddr(regs, in))
		case OpSB:
			t.Store8(memAddr(regs, in), int8(regs[in.Rs2]))
		case OpSH:
			t.Store16(memAddr(regs, in), int16(regs[in.Rs2]))
		case OpSW:
			t.Store32(memAddr(regs, in), regs[in.Rs2])
		case OpADD:
			regs[in.Rd] = uint32(t.Add32(int32(regs[in.Rs1]), int32(regs[in.Rs2])))
		case OpADDI:
			regs[in.Rd] = uint32(t.Add32(int32(regs[in.Rs1]), in.Imm))
		case OpSUB:
			regs[in.Rd] = uint32(t.Sub32(int32(regs[in.Rs1]), int32(regs[in.Rs2])))
		case OpAND:
			regs[in.Rd] = t.And32(regs[in.Rs1], regs[in.Rs2])
		case OpOR:
			regs[in.Rd] = t.Or32(regs[in.Rs1], regs[in.Rs2])
		case OpXOR:
			regs[in.Rd] = t.Xor32(regs[in.Rs1], regs[in.Rs2])
		case OpSLL:
			regs[in.Rd] = uint32(t.Shl32(int32(regs[in.Rs1]), uint(in.Imm)&31))
		case OpSRL:
			t.Charge(dpu.OpShift, 1)
			regs[in.Rd] = regs[in.Rs1] >> (uint(in.Imm) & 31)
		case OpSRA:
			regs[in.Rd] = uint32(t.Shr32(int32(regs[in.Rs1]), uint(in.Imm)&31))
		case OpCAO:
			regs[in.Rd] = uint32(t.Popcount32(regs[in.Rs1]))
		case OpMUL8:
			regs[in.Rd] = uint32(t.Mul8(int8(regs[in.Rs1]), int8(regs[in.Rs2])))
		case OpMUL16:
			regs[in.Rd] = uint32(t.Mul16(int16(regs[in.Rs1]), int16(regs[in.Rs2])))
		case OpMUL:
			regs[in.Rd] = uint32(t.Mul32(int32(regs[in.Rs1]), int32(regs[in.Rs2])))
		case OpDIV:
			regs[in.Rd] = uint32(t.Div32(int32(regs[in.Rs1]), int32(regs[in.Rs2])))
		case OpREM:
			regs[in.Rd] = uint32(t.Mod32(int32(regs[in.Rs1]), int32(regs[in.Rs2])))
		case OpFADD:
			regs[in.Rd] = t.FAdd(regs[in.Rs1], regs[in.Rs2])
		case OpFSUB:
			regs[in.Rd] = t.FSub(regs[in.Rs1], regs[in.Rs2])
		case OpFMUL:
			regs[in.Rd] = t.FMul(regs[in.Rs1], regs[in.Rs2])
		case OpFDIV:
			regs[in.Rd] = t.FDiv(regs[in.Rs1], regs[in.Rs2])
		case OpFLT:
			if t.FLt(regs[in.Rs1], regs[in.Rs2]) {
				regs[in.Rd] = 1
			} else {
				regs[in.Rd] = 0
			}
		case OpFSI:
			regs[in.Rd] = t.FFromInt(int32(regs[in.Rs1]))
		case OpFTS:
			regs[in.Rd] = uint32(t.FToInt(regs[in.Rs1]))
		case OpJ:
			t.Charge(dpu.OpBranch, 1)
			pc = int(in.Imm)
		case OpBEQ:
			t.Charge(dpu.OpBranch, 1)
			if regs[in.Rs1] == regs[in.Rs2] {
				pc = int(in.Imm)
			}
		case OpBNE:
			t.Charge(dpu.OpBranch, 1)
			if regs[in.Rs1] != regs[in.Rs2] {
				pc = int(in.Imm)
			}
		case OpBLT:
			t.Charge(dpu.OpBranch, 1)
			if int32(regs[in.Rs1]) < int32(regs[in.Rs2]) {
				pc = int(in.Imm)
			}
		case OpBGE:
			t.Charge(dpu.OpBranch, 1)
			if int32(regs[in.Rs1]) >= int32(regs[in.Rs2]) {
				pc = int(in.Imm)
			}
		case OpLDMA:
			t.MRAMToWRAM(int64(regs[in.Rs1]), int64(regs[in.Rs2]), int(in.Imm))
		case OpSDMA:
			t.WRAMToMRAM(int64(regs[in.Rs2]), int64(regs[in.Rs1]), int(in.Imm))
		case OpPCFG:
			t.PerfcounterConfig()
		case OpPGET:
			t.Charge(dpu.OpMove, 1)
			regs[in.Rd] = uint32(t.PerfcounterGet())
		case OpTID:
			t.Charge(dpu.OpMove, 1)
			regs[in.Rd] = uint32(t.ID())
		default:
			return fmt.Errorf("isa: pc %d: invalid opcode %d", pc-1, in.Op)
		}
	}
}

// ReadWord is a host-side helper to fetch one encoded instruction word
// from an IRAM image.
func ReadWord(img []byte, idx int) (uint64, error) {
	off := idx * WordSize
	if off < 0 || off+WordSize > len(img) {
		return 0, fmt.Errorf("isa: word %d outside image of %d bytes", idx, len(img))
	}
	return binary.LittleEndian.Uint64(img[off:]), nil
}

func memAddr(regs *Regs, in Instruction) int64 {
	return int64(int32(regs[in.Rs1]) + in.Imm)
}

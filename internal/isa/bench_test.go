package isa

import (
	"testing"

	"pimdnn/internal/dpu"
)

// BenchmarkInterpreterLoop measures interpreted instructions per second
// on a tight counting loop.
func BenchmarkInterpreterLoop(b *testing.B) {
	prog := MustAssemble(`
		movi r1, 1000
	loop:
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`)
	d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
	if err := Load(d, prog); err != nil {
		b.Fatal(err)
	}
	k := Kernel(nil, nil)
	b.SetBytes(2001 * WordSize) // ~2001 executed instructions per run
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch(1, k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssemble measures assembly speed on a representative program.
func BenchmarkAssemble(b *testing.B) {
	src := `
	start:
		movi r1, 100
		movi r2, 0
	loop:
		add  r2, r2, r1
		lw   r3, 0(r2)
		sw   r3, 4(r2)
		fadd r4, r3, r2
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeDecode measures instruction word packing.
func BenchmarkEncodeDecode(b *testing.B) {
	in := Instruction{Op: OpADDI, Rd: 5, Rs1: 6, Imm: -1234}
	var sink Instruction
	for i := 0; i < b.N; i++ {
		sink = Decode(in.Encode())
	}
	_ = sink
}

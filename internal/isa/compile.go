package isa

import (
	"fmt"

	"pimdnn/internal/dpu"
)

// Compiled-closure dispatch. The switch interpreter in Exec re-decodes
// every instruction word on every execution; Compile predecodes the
// program once into a table of closures — one per instruction, with the
// opcode dispatch, register indices, immediate, and fall-through pc all
// resolved at compile time — so executing an instruction is a single
// indirect call. Every closure charges the identical tasklet helpers in
// the identical order as the corresponding Exec case, so register files,
// cycle counts, perfcounter reads, and subroutine profiles match the
// interpreter bit for bit (the differential test runs every program
// through both).

// step executes one predecoded instruction and returns the next pc.
// Memory traps (alignment, bounds, division by zero) panic inside the
// tasklet helpers exactly as under the interpreter.
type step func(t *dpu.Tasklet, regs *Regs) int

// Compiled is a program predecoded for closure dispatch.
type Compiled struct {
	steps []step
}

// Len returns the compiled program's instruction count.
func (c *Compiled) Len() int { return len(c.steps) }

// Compile predecodes the program. Invalid instructions fail here, once,
// instead of at execution time.
func Compile(p Program) (*Compiled, error) {
	n := len(p.Ins)
	steps := make([]step, n)
	for i, in := range p.Ins {
		if !in.Valid() {
			return nil, fmt.Errorf("isa: instruction %d invalid: %+v", i, in)
		}
		rd, rs1, rs2, imm := in.Rd, in.Rs1, in.Rs2, in.Imm
		next := i + 1
		target := int(imm)
		switch in.Op {
		case OpNOP:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int { t.Charge(dpu.OpNop, 1); return next }
		case OpHALT:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int { t.Charge(dpu.OpNop, 1); return n }
		case OpMOVI:
			v := uint32(imm)
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Charge(dpu.OpMove, 1)
				regs[rd] = v
				return next
			}
		case OpMOV:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Charge(dpu.OpMove, 1)
				regs[rd] = regs[rs1]
				return next
			}
		case OpLB:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(int32(t.Load8(int64(int32(regs[rs1]) + imm))))
				return next
			}
		case OpLH:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(int32(t.Load16(int64(int32(regs[rs1]) + imm))))
				return next
			}
		case OpLW:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = t.Load32(int64(int32(regs[rs1]) + imm))
				return next
			}
		case OpSB:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Store8(int64(int32(regs[rs1])+imm), int8(regs[rs2]))
				return next
			}
		case OpSH:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Store16(int64(int32(regs[rs1])+imm), int16(regs[rs2]))
				return next
			}
		case OpSW:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Store32(int64(int32(regs[rs1])+imm), regs[rs2])
				return next
			}
		case OpADD:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(t.Add32(int32(regs[rs1]), int32(regs[rs2])))
				return next
			}
		case OpADDI:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(t.Add32(int32(regs[rs1]), imm))
				return next
			}
		case OpSUB:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(t.Sub32(int32(regs[rs1]), int32(regs[rs2])))
				return next
			}
		case OpAND:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = t.And32(regs[rs1], regs[rs2])
				return next
			}
		case OpOR:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = t.Or32(regs[rs1], regs[rs2])
				return next
			}
		case OpXOR:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = t.Xor32(regs[rs1], regs[rs2])
				return next
			}
		case OpSLL:
			s := uint(imm) & 31
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(t.Shl32(int32(regs[rs1]), s))
				return next
			}
		case OpSRL:
			s := uint(imm) & 31
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Charge(dpu.OpShift, 1)
				regs[rd] = regs[rs1] >> s
				return next
			}
		case OpSRA:
			s := uint(imm) & 31
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(t.Shr32(int32(regs[rs1]), s))
				return next
			}
		case OpCAO:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(t.Popcount32(regs[rs1]))
				return next
			}
		case OpMUL8:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(t.Mul8(int8(regs[rs1]), int8(regs[rs2])))
				return next
			}
		case OpMUL16:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(t.Mul16(int16(regs[rs1]), int16(regs[rs2])))
				return next
			}
		case OpMUL:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(t.Mul32(int32(regs[rs1]), int32(regs[rs2])))
				return next
			}
		case OpDIV:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(t.Div32(int32(regs[rs1]), int32(regs[rs2])))
				return next
			}
		case OpREM:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(t.Mod32(int32(regs[rs1]), int32(regs[rs2])))
				return next
			}
		case OpFADD:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = t.FAdd(regs[rs1], regs[rs2])
				return next
			}
		case OpFSUB:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = t.FSub(regs[rs1], regs[rs2])
				return next
			}
		case OpFMUL:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = t.FMul(regs[rs1], regs[rs2])
				return next
			}
		case OpFDIV:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = t.FDiv(regs[rs1], regs[rs2])
				return next
			}
		case OpFLT:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				if t.FLt(regs[rs1], regs[rs2]) {
					regs[rd] = 1
				} else {
					regs[rd] = 0
				}
				return next
			}
		case OpFSI:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = t.FFromInt(int32(regs[rs1]))
				return next
			}
		case OpFTS:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				regs[rd] = uint32(t.FToInt(regs[rs1]))
				return next
			}
		case OpJ:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Charge(dpu.OpBranch, 1)
				return target
			}
		case OpBEQ:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Charge(dpu.OpBranch, 1)
				if regs[rs1] == regs[rs2] {
					return target
				}
				return next
			}
		case OpBNE:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Charge(dpu.OpBranch, 1)
				if regs[rs1] != regs[rs2] {
					return target
				}
				return next
			}
		case OpBLT:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Charge(dpu.OpBranch, 1)
				if int32(regs[rs1]) < int32(regs[rs2]) {
					return target
				}
				return next
			}
		case OpBGE:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Charge(dpu.OpBranch, 1)
				if int32(regs[rs1]) >= int32(regs[rs2]) {
					return target
				}
				return next
			}
		case OpLDMA:
			sz := int(imm)
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.MRAMToWRAM(int64(regs[rs1]), int64(regs[rs2]), sz)
				return next
			}
		case OpSDMA:
			sz := int(imm)
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.WRAMToMRAM(int64(regs[rs2]), int64(regs[rs1]), sz)
				return next
			}
		case OpPCFG:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.PerfcounterConfig()
				return next
			}
		case OpPGET:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Charge(dpu.OpMove, 1)
				regs[rd] = uint32(t.PerfcounterGet())
				return next
			}
		case OpTID:
			steps[i] = func(t *dpu.Tasklet, regs *Regs) int {
				t.Charge(dpu.OpMove, 1)
				regs[rd] = uint32(t.ID())
				return next
			}
		default:
			return nil, fmt.Errorf("isa: pc %d: invalid opcode %d", i, in.Op)
		}
	}
	return &Compiled{steps: steps}, nil
}

// Exec runs the compiled program on the tasklet, starting from
// instruction 0, until HALT or the end of the program. Semantics,
// charging, and error behaviour match the interpreter form exactly.
func (c *Compiled) Exec(t *dpu.Tasklet, regs *Regs) error {
	pc, n := 0, len(c.steps)
	for steps := 0; ; steps++ {
		if steps > MaxSteps {
			return fmt.Errorf("isa: exceeded %d steps (runaway program?)", MaxSteps)
		}
		if pc < 0 || pc > n {
			return fmt.Errorf("isa: pc %d outside program of %d instructions", pc, n)
		}
		if pc == n {
			return nil
		}
		pc = c.steps[pc](t, regs)
	}
}

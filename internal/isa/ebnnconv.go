package isa

import "fmt"

// EBNNConvProgram builds the eBNN binary convolution + 2×2 max-pool as a
// real DPU assembly program: the chapter 4.1 inner loop (XNOR + CAO
// popcount over 3×3 windows of a bit-packed 28×28 image) expressed in the
// instruction set instead of the functional kernel. It demonstrates that
// the thesis's workload fits the DPU programming model end to end and
// gives the cost model an instruction-true cross-check.
//
// WRAM contract:
//   - rowsOff: 28 uint32 words, row r's bit c = binarized pixel (r, c)
//     (the mnist.Pack layout after MRAM->WRAM staging);
//   - filter: the 9-bit binary 3×3 kernel, passed as an immediate;
//   - outOff: 169 bytes out, one per pooled cell (row-major 13×13),
//     holding the pooled conv value biased by +9 (so 0..18 fits a byte).
//
// Tasklets split the 13 pooled rows round-robin.
func EBNNConvProgram(rowsOff, outOff int, filter uint16, tasklets int) (Program, error) {
	if filter >= 1<<9 {
		return Program{}, fmt.Errorf("isa: filter %#x exceeds 9 bits", filter)
	}
	if tasklets < 1 {
		return Program{}, fmt.Errorf("isa: tasklets %d", tasklets)
	}
	// Register plan:
	//  r1  pooled row pr          r2  pooled col pc
	//  r3  filter row slice f0    r4  f1          r5  f2
	//  r6  input row words r0/r1/r2 (transient)
	//  r8  window best (max)      r9  conv value
	//  r10 dr loop                r11 dc loop
	//  r12 row base address       r13 shift amount c
	//  r14..r17 scratch           r20 tasklet stride
	f0 := int(filter) & 7
	f1 := (int(filter) >> 3) & 7
	f2 := (int(filter) >> 6) & 7
	src := fmt.Sprintf(`
		; filter slices as immediates
		movi r3, %d          ; f0
		movi r4, %d          ; f1
		movi r5, %d          ; f2
		movi r20, %d         ; tasklet count
		tid  r1              ; pr = tid
	prloop:
		movi r14, 13
		bge  r1, r14, done
		movi r2, 0           ; pc = 0
	pcloop:
		movi r14, 13
		bge  r2, r14, prnext
		movi r8, -100        ; best = sentinel below the conv minimum (-9)
		movi r10, 0          ; dr = 0
	drloop:
		movi r14, 2
		bge  r10, r14, cellend
		; row = pr*2 + dr
		add  r12, r1, r1     ; 2*pr
		add  r12, r12, r10
		sll  r12, r12, 2     ; *4 bytes
		addi r12, r12, %d    ; + rowsOff
		movi r11, 0          ; dc = 0
	dcloop:
		movi r14, 2
		bge  r11, r14, drnext
		; c = pc*2 + dc
		add  r13, r2, r2
		add  r13, r13, r11
		; w0 = (rows[row] >> c) & 7, via variable shift loop (the mini
		; ISA shifts by immediates only, so shift c times by 1... instead
		; load and use repeated halving: cheaper to compute with a data
		; loop below)
		lw   r15, 0(r12)     ; row word 0
		mov  r16, r13        ; shift count
	sh0:
		beq  r16, r0, sh0d
		srl  r15, r15, 1
		addi r16, r16, -1
		j    sh0
	sh0d:
		movi r16, 7
		and  r15, r15, r16   ; w0
		xor  r15, r15, r3    ; ^ f0
		mov  r17, r15        ; acc bits = w0^f0

		lw   r15, 4(r12)     ; row word 1
		mov  r16, r13
	sh1:
		beq  r16, r0, sh1d
		srl  r15, r15, 1
		addi r16, r16, -1
		j    sh1
	sh1d:
		movi r16, 7
		and  r15, r15, r16
		xor  r15, r15, r4
		sll  r15, r15, 3
		or   r17, r17, r15

		lw   r15, 8(r12)     ; row word 2
		mov  r16, r13
	sh2:
		beq  r16, r0, sh2d
		srl  r15, r15, 1
		addi r16, r16, -1
		j    sh2
	sh2d:
		movi r16, 7
		and  r15, r15, r16
		xor  r15, r15, r5
		sll  r15, r15, 6
		or   r17, r17, r15

		cao  r15, r17        ; mismatches
		sll  r15, r15, 1
		movi r16, 9
		sub  r9, r16, r15    ; conv = 9 - 2*mismatch
		bge  r8, r9, nomax
		mov  r8, r9
	nomax:
		addi r11, r11, 1
		j    dcloop
	drnext:
		addi r10, r10, 1
		j    drloop
	cellend:
		; out[pr*13+pc] = best + 9
		addi r8, r8, 9
		movi r14, 13
		mul8 r15, r1, r14    ; pr*13 (values < 128: mul8 suffices)
		add  r15, r15, r2
		addi r15, r15, %d    ; + outOff
		sb   r8, 0(r15)
		addi r2, r2, 1
		j    pcloop
	prnext:
		add  r1, r1, r20
		j    prloop
	done:
		halt
	`, f0, f1, f2, tasklets, rowsOff, outOff)
	return Assemble(src)
}

package isa

import "fmt"

// Canonical DPU assembly programs, in the style of the UPMEM SDK's
// sample kernels. They exercise the full toolchain (assemble → IRAM →
// interpret) and serve as documented references for writing new
// programs. Each builder parameterizes sizes through immediates, and the
// comments carry the WRAM layout contract the host must honor.

// VecAddProgram builds a tasklet-parallel int32 vector add:
//
//	WRAM layout: a at aOff, b at bOff, result at dstOff, n words each.
//	Tasklet t processes elements t, t+T, t+2T, ...
func VecAddProgram(aOff, bOff, dstOff, n, tasklets int) (Program, error) {
	if n < 1 || tasklets < 1 {
		return Program{}, fmt.Errorf("isa: VecAddProgram: bad n=%d tasklets=%d", n, tasklets)
	}
	src := fmt.Sprintf(`
	; r1 = element index (starts at tasklet id), r2 = stride
		tid  r1
		movi r2, %d          ; tasklet count
		movi r3, %d          ; n
	loop:
		bge  r1, r3, done
		sll  r4, r1, 2       ; byte offset
		addi r5, r4, %d      ; &a[i]
		lw   r6, 0(r5)
		addi r5, r4, %d      ; &b[i]
		lw   r7, 0(r5)
		add  r6, r6, r7
		addi r5, r4, %d      ; &dst[i]
		sw   r6, 0(r5)
		add  r1, r1, r2
		j    loop
	done:
		halt
	`, tasklets, n, aOff, bOff, dstOff)
	return Assemble(src)
}

// DotProductProgram builds a single-tasklet int32 dot product of two
// n-word WRAM vectors, leaving the (wrapping) result in WRAM at dstOff.
func DotProductProgram(aOff, bOff, dstOff, n int) (Program, error) {
	if n < 1 {
		return Program{}, fmt.Errorf("isa: DotProductProgram: bad n=%d", n)
	}
	src := fmt.Sprintf(`
		movi r1, 0           ; i
		movi r2, %d          ; n
		movi r3, 0           ; acc
	loop:
		bge  r1, r2, done
		sll  r4, r1, 2
		addi r5, r4, %d
		lw   r6, 0(r5)
		addi r5, r4, %d
		lw   r7, 0(r5)
		mul  r6, r6, r7      ; __mulsi3 on the DPU
		add  r3, r3, r6
		addi r1, r1, 1
		j    loop
	done:
		movi r5, %d
		sw   r3, 0(r5)
		halt
	`, n, aOff, bOff, dstOff)
	return Assemble(src)
}

// MemcpyProgram builds an MRAM→MRAM copy staged through WRAM in
// 2048-byte DMA transfers — the canonical streaming pattern (§3.2).
// bytes must be a positive multiple of 8; wramBuf is the staging area.
func MemcpyProgram(srcMRAM, dstMRAM, wramBuf, bytes int) (Program, error) {
	if bytes < 8 || bytes%8 != 0 {
		return Program{}, fmt.Errorf("isa: MemcpyProgram: bytes %d must be a positive multiple of 8", bytes)
	}
	full := bytes / 2048
	rem := bytes % 2048
	src := fmt.Sprintf(`
		movi r1, %d          ; remaining full chunks
		movi r2, %d          ; src cursor
		movi r3, %d          ; dst cursor
		movi r4, %d          ; wram staging buffer
	loop:
		beq  r1, r0, tail
		ldma r4, r2, 2048
		sdma r4, r3, 2048
		addi r2, r2, 2048
		addi r3, r3, 2048
		addi r1, r1, -1
		j    loop
	tail:
	`, full, srcMRAM, dstMRAM, wramBuf)
	if rem > 0 {
		src += fmt.Sprintf(`
		ldma r4, r2, %d
		sdma r4, r3, %d
		`, rem, rem)
	}
	src += "\n\t\thalt\n"
	return Assemble(src)
}

// PopcountProgram builds a single-tasklet bit-count over n WRAM words
// using the CAO instruction (the primitive behind binary convolutions),
// leaving the total at dstOff.
func PopcountProgram(srcOff, dstOff, n int) (Program, error) {
	if n < 1 {
		return Program{}, fmt.Errorf("isa: PopcountProgram: bad n=%d", n)
	}
	src := fmt.Sprintf(`
		movi r1, 0           ; i
		movi r2, %d          ; n
		movi r3, 0           ; total
	loop:
		bge  r1, r2, done
		sll  r4, r1, 2
		addi r5, r4, %d
		lw   r6, 0(r5)
		cao  r7, r6
		add  r3, r3, r7
		addi r1, r1, 1
		j    loop
	done:
		movi r5, %d
		sw   r3, 0(r5)
		halt
	`, n, srcOff, dstOff)
	return Assemble(src)
}

// ReduceMaxProgram builds a tasklet-parallel signed max reduction: each
// tasklet scans its stride of the n-word vector and writes its local max
// to dstOff + 4*tid; the host (or a final pass) combines the partials.
func ReduceMaxProgram(srcOff, dstOff, n, tasklets int) (Program, error) {
	if n < 1 || tasklets < 1 {
		return Program{}, fmt.Errorf("isa: ReduceMaxProgram: bad n=%d tasklets=%d", n, tasklets)
	}
	src := fmt.Sprintf(`
		tid  r1
		movi r2, %d          ; stride
		movi r3, %d          ; n
		movi r8, 0x80000000  ; running max = INT32_MIN
		mov  r9, r1          ; remember tid
	loop:
		bge  r1, r3, done
		sll  r4, r1, 2
		addi r5, r4, %d
		lw   r6, 0(r5)
		bge  r8, r6, skip
		mov  r8, r6
	skip:
		add  r1, r1, r2
		j    loop
	done:
		sll  r4, r9, 2
		addi r5, r4, %d
		sw   r8, 0(r5)
		halt
	`, tasklets, n, srcOff, dstOff)
	return Assemble(src)
}

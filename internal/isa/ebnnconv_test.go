package isa

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/ebnn"
	"pimdnn/internal/mnist"
)

// TestEBNNConvProgramMatchesHost runs the assembly implementation of the
// eBNN conv+pool against the functional host reference, bit for bit, on
// real synthetic digits.
func TestEBNNConvProgramMatchesHost(t *testing.T) {
	const (
		rowsOff = 0
		outOff  = 256
		filter  = uint16(0x1B5)
	)
	imgs := mnist.Generate(3, 71)
	m := &ebnn.Model{F: 1, Filters: []uint16{filter}}

	for _, tasklets := range []int{1, 4} {
		prog, err := EBNNConvProgram(rowsOff, outOff, filter, tasklets)
		if err != nil {
			t.Fatal(err)
		}
		for ii := range imgs {
			d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
			packed := imgs[ii].Pack()
			if err := d.CopyToWRAM(rowsOff, packed[:mnist.Side*4]); err != nil {
				t.Fatal(err)
			}
			if err := Load(d, prog); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Launch(tasklets, Kernel(nil, nil)); err != nil {
				t.Fatal(err)
			}
			out, err := d.CopyFromWRAM(outOff, ebnn.PoolCells)
			if err != nil {
				t.Fatal(err)
			}
			bits := imgs[ii].Binarize()
			want := m.ConvPool(&bits)
			for cell := 0; cell < ebnn.PoolCells; cell++ {
				got := int(out[cell]) - 9 // remove the +9 bias
				if got != int(want[cell]) {
					t.Fatalf("tasklets=%d image %d cell %d: asm %d, host %d",
						tasklets, ii, cell, got, want[cell])
				}
			}
		}
	}
}

// TestEBNNConvProgramScales: the assembly kernel's cycle count drops with
// tasklet parallelism like the functional kernel's.
func TestEBNNConvProgramScales(t *testing.T) {
	img := mnist.Generate(1, 72)[0]
	packed := img.Pack()
	run := func(tasklets int) uint64 {
		d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
		if err := d.CopyToWRAM(0, packed[:mnist.Side*4]); err != nil {
			t.Fatal(err)
		}
		prog, err := EBNNConvProgram(0, 256, 0x0F3, tasklets)
		if err != nil {
			t.Fatal(err)
		}
		if err := Load(d, prog); err != nil {
			t.Fatal(err)
		}
		st, err := d.Launch(tasklets, Kernel(nil, nil))
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	c1, c8 := run(1), run(8)
	// 13 pooled rows over 8 tasklets: ceil(13/8)=2 rows for one tasklet
	// vs 13 serial — expect roughly 13/2 = 6.5x.
	speedup := float64(c1) / float64(c8)
	if speedup < 5 || speedup > 8 {
		t.Errorf("8-tasklet speedup = %.1f, want ~6.5 (13 rows / 2 per tasklet)", speedup)
	}
}

func TestEBNNConvProgramValidation(t *testing.T) {
	if _, err := EBNNConvProgram(0, 0, 1<<9, 1); err == nil {
		t.Error("10-bit filter accepted")
	}
	if _, err := EBNNConvProgram(0, 0, 1, 0); err == nil {
		t.Error("0 tasklets accepted")
	}
}

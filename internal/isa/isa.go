// Package isa defines a miniature RISC instruction set in the style of
// the UPMEM DPU's proprietary ISA, with an assembler, disassembler and an
// interpreter that executes programs on a simulated DPU tasklet.
//
// The thesis profiles DPU behaviour with small C programs compiled by
// dpu-clang (Fig 3.1) and by "counting the number of instructions when
// observing assembly output of a C-based multiplication program" (§5.2.4).
// This package makes those experiments concrete in the simulator: the
// microbenchmarks in cmd/upmem-profile are real assembled programs whose
// instructions charge the same cost model as the functional kernels,
// giving an independent check on the calibration.
//
// Programs are encoded as 8-byte instruction words (opcode, rd, rs1, rs2,
// 32-bit immediate) and loaded into the DPU's 24 KB IRAM, which bounds
// program size exactly as on hardware.
package isa

import (
	"encoding/binary"
	"fmt"
)

// Opcode identifies an instruction.
type Opcode uint8

// Instruction opcodes.
const (
	OpNOP Opcode = iota + 1
	OpHALT
	OpMOVI // rd <- imm
	OpMOV  // rd <- rs1
	OpLB   // rd <- sign-extended WRAM byte at rs1+imm
	OpLH   // rd <- sign-extended WRAM half at rs1+imm
	OpLW   // rd <- WRAM word at rs1+imm
	OpSB   // WRAM byte at rs1+imm <- rs2
	OpSH   // WRAM half at rs1+imm <- rs2
	OpSW   // WRAM word at rs1+imm <- rs2
	OpADD  // rd <- rs1 + rs2
	OpADDI // rd <- rs1 + imm
	OpSUB  // rd <- rs1 - rs2
	OpAND
	OpOR
	OpXOR
	OpSLL // rd <- rs1 << imm
	OpSRL // rd <- rs1 >> imm (logical)
	OpSRA // rd <- rs1 >> imm (arithmetic)
	OpCAO // rd <- popcount(rs1) ("count all ones", the DPU instruction)
	OpMUL8
	OpMUL16
	OpMUL // 32-bit multiply (lowered to __mulsi3 on the DPU)
	OpDIV
	OpREM
	OpFADD
	OpFSUB
	OpFMUL
	OpFDIV
	OpFLT  // rd <- 1 if rs1 < rs2 (float), else 0
	OpFSI  // rd <- float(int rs1)   (__floatsisf)
	OpFTS  // rd <- int(float rs1)   (__fixsfsi)
	OpJ    // jump to imm (instruction index)
	OpBEQ  // branch to imm if rs1 == rs2
	OpBNE  // branch to imm if rs1 != rs2
	OpBLT  // branch to imm if rs1 < rs2 (signed)
	OpBGE  // branch to imm if rs1 >= rs2 (signed)
	OpLDMA // DMA MRAM->WRAM: wram rs1, mram rs2, imm bytes
	OpSDMA // DMA WRAM->MRAM: wram rs1, mram rs2, imm bytes
	OpPCFG // perfcounter_config()
	OpPGET // rd <- perfcounter_get()
	OpTID  // rd <- tasklet id
	opEnd  // sentinel
)

var opNames = map[Opcode]string{
	OpNOP: "nop", OpHALT: "halt", OpMOVI: "movi", OpMOV: "mov",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpADD: "add", OpADDI: "addi", OpSUB: "sub", OpAND: "and", OpOR: "or",
	OpXOR: "xor", OpSLL: "sll", OpSRL: "srl", OpSRA: "sra", OpCAO: "cao",
	OpMUL8: "mul8", OpMUL16: "mul16", OpMUL: "mul", OpDIV: "div", OpREM: "rem",
	OpFADD: "fadd", OpFSUB: "fsub", OpFMUL: "fmul", OpFDIV: "fdiv",
	OpFLT: "flt", OpFSI: "fsi", OpFTS: "fts",
	OpJ: "j", OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpLDMA: "ldma", OpSDMA: "sdma", OpPCFG: "pcfg", OpPGET: "pget", OpTID: "tid",
}

var nameOps = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

func (o Opcode) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumRegs is the per-tasklet register file size (Table 2.1).
const NumRegs = 32

// WordSize is the encoded instruction width in bytes.
const WordSize = 8

// Instruction is one decoded instruction.
type Instruction struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// Encode packs the instruction into an 8-byte word.
func (in Instruction) Encode() uint64 {
	return uint64(in.Op) |
		uint64(in.Rd)<<8 |
		uint64(in.Rs1)<<16 |
		uint64(in.Rs2)<<24 |
		uint64(uint32(in.Imm))<<32
}

// Decode unpacks an 8-byte instruction word.
func Decode(w uint64) Instruction {
	return Instruction{
		Op:  Opcode(w & 0xFF),
		Rd:  uint8(w >> 8),
		Rs1: uint8(w >> 16),
		Rs2: uint8(w >> 24),
		Imm: int32(uint32(w >> 32)),
	}
}

// Valid reports whether the instruction's opcode and register fields are
// in range.
func (in Instruction) Valid() bool {
	if in.Op < OpNOP || in.Op >= opEnd {
		return false
	}
	return in.Rd < NumRegs && in.Rs1 < NumRegs && in.Rs2 < NumRegs
}

// Program is an assembled instruction sequence plus its label table.
type Program struct {
	Ins    []Instruction
	Labels map[string]int
}

// Image serializes the program to the byte image loaded into IRAM.
func (p Program) Image() []byte {
	out := make([]byte, len(p.Ins)*WordSize)
	for i, in := range p.Ins {
		binary.LittleEndian.PutUint64(out[i*WordSize:], in.Encode())
	}
	return out
}

// FromImage deserializes an IRAM image of n instructions.
func FromImage(img []byte) (Program, error) {
	if len(img)%WordSize != 0 {
		return Program{}, fmt.Errorf("isa: image length %d not a multiple of %d", len(img), WordSize)
	}
	p := Program{Labels: map[string]int{}}
	for off := 0; off < len(img); off += WordSize {
		in := Decode(binary.LittleEndian.Uint64(img[off:]))
		if in.Op == 0 {
			break // zero padding after the program
		}
		if !in.Valid() {
			return Program{}, fmt.Errorf("isa: invalid instruction word at offset %d", off)
		}
		p.Ins = append(p.Ins, in)
	}
	return p, nil
}

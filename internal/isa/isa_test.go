package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"pimdnn/internal/dpu"
	"pimdnn/internal/softfloat"
)

func run(t *testing.T, opt dpu.OptLevel, tasklets int, src string, init func(int, *Regs)) map[int]Regs {
	t.Helper()
	d := dpu.MustNew(dpu.DefaultConfig(opt))
	prog := MustAssemble(src)
	if err := Load(d, prog); err != nil {
		t.Fatalf("Load: %v", err)
	}
	out := make(map[int]Regs)
	_, err := d.Launch(tasklets, Kernel(init, func(tid int, r Regs) { out[tid] = r }))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Instruction{
			Op: Opcode(op%uint8(opEnd-1)) + 1,
			Rd: rd % NumRegs, Rs1: rs1 % NumRegs, Rs2: rs2 % NumRegs,
			Imm: imm,
		}
		return Decode(in.Encode()) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssembleBasicProgram(t *testing.T) {
	regs := run(t, dpu.O2, 1, `
		; sum 1..10 into r2
		movi r1, 10
		movi r2, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`, nil)
	if got := regs[0][2]; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestFibonacci(t *testing.T) {
	regs := run(t, dpu.O2, 1, `
		movi r1, 0      ; fib(0)
		movi r2, 1      ; fib(1)
		movi r3, 20     ; counter
	loop:
		add  r4, r1, r2
		mov  r1, r2
		mov  r2, r4
		addi r3, r3, -1
		bne  r3, r0, loop
		halt
	`, nil)
	if got := regs[0][1]; got != 6765 { // fib(20)
		t.Errorf("fib(20) = %d, want 6765", got)
	}
}

func TestMemoryInstructions(t *testing.T) {
	regs := run(t, dpu.O2, 1, `
		movi r1, 0x100
		movi r2, -42
		sb   r2, 0(r1)
		lb   r3, 0(r1)
		movi r4, -30000
		sh   r4, 2(r1)
		lh   r5, 2(r1)
		movi r6, 0x12345678
		sw   r6, 4(r1)
		lw   r7, 4(r1)
		halt
	`, nil)
	r := regs[0]
	if int32(r[3]) != -42 {
		t.Errorf("lb = %d, want -42 (sign extension)", int32(r[3]))
	}
	if int32(r[5]) != -30000 {
		t.Errorf("lh = %d, want -30000", int32(r[5]))
	}
	if r[7] != 0x12345678 {
		t.Errorf("lw = %#x", r[7])
	}
}

func TestALUInstructions(t *testing.T) {
	regs := run(t, dpu.O2, 1, `
		movi r1, 12
		movi r2, 10
		sub  r3, r1, r2      ; 2
		and  r4, r1, r2      ; 8
		or   r5, r1, r2      ; 14
		xor  r6, r1, r2      ; 6
		sll  r7, r1, 2       ; 48
		srl  r8, r1, 2       ; 3
		movi r9, -8
		sra  r10, r9, 1      ; -4
		movi r11, 0xFF
		cao  r12, r11        ; 8
		mul  r13, r1, r2     ; 120
		div  r14, r1, r2     ; 1
		rem  r15, r1, r2     ; 2
		mul8 r16, r1, r2     ; 120
		mul16 r17, r1, r2    ; 120
		halt
	`, nil)
	r := regs[0]
	want := map[int]int32{3: 2, 4: 8, 5: 14, 6: 6, 7: 48, 8: 3, 10: -4, 12: 8, 13: 120, 14: 1, 15: 2, 16: 120, 17: 120}
	for reg, w := range want {
		if int32(r[reg]) != w {
			t.Errorf("r%d = %d, want %d", reg, int32(r[reg]), w)
		}
	}
}

func TestFloatInstructions(t *testing.T) {
	regs := run(t, dpu.O2, 1, `
		movi r1, 3
		movi r2, 4
		fsi  r3, r1        ; 3.0
		fsi  r4, r2        ; 4.0
		fadd r5, r3, r4    ; 7.0
		fsub r6, r3, r4    ; -1.0
		fmul r7, r3, r4    ; 12.0
		fdiv r8, r7, r4    ; 3.0
		flt  r9, r3, r4    ; 1
		flt  r10, r4, r3   ; 0
		fts  r11, r7       ; 12
		halt
	`, nil)
	r := regs[0]
	if r[5] != softfloat.FromFloat32(7) || r[6] != softfloat.FromFloat32(-1) ||
		r[7] != softfloat.FromFloat32(12) || r[8] != softfloat.FromFloat32(3) {
		t.Errorf("float results wrong: %#x %#x %#x %#x", r[5], r[6], r[7], r[8])
	}
	if r[9] != 1 || r[10] != 0 || r[11] != 12 {
		t.Errorf("flt/fts wrong: %d %d %d", r[9], r[10], r[11])
	}
}

func TestDMAInstructions(t *testing.T) {
	d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i + 1)
	}
	if err := d.CopyToMRAM(512, src); err != nil {
		t.Fatal(err)
	}
	prog := MustAssemble(`
		movi r1, 0       ; WRAM dst
		movi r2, 512     ; MRAM src
		ldma r1, r2, 64
		lb   r3, 0(r1)   ; first byte
		lb   r4, 63(r1)  ; last byte
		movi r5, 1024    ; MRAM dst
		sdma r1, r5, 64
		halt
	`)
	if err := Load(d, prog); err != nil {
		t.Fatal(err)
	}
	var final Regs
	if _, err := d.Launch(1, Kernel(nil, func(_ int, r Regs) { final = r })); err != nil {
		t.Fatal(err)
	}
	if final[3] != 1 || final[4] != 64 {
		t.Errorf("DMA readback r3=%d r4=%d, want 1, 64", final[3], final[4])
	}
	back, err := d.CopyFromMRAM(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != src[i] {
			t.Fatalf("sdma byte %d = %d, want %d", i, back[i], src[i])
		}
	}
}

// TestPerfcounterProgram is the Fig 3.1 microbenchmark as a real program:
// perfcounter around a float multiply.
func TestPerfcounterProgram(t *testing.T) {
	regs := run(t, dpu.O2, 1, `
		movi r1, 3
		fsi  r2, r1
		pcfg
		fmul r3, r2, r2
		pget r4
		halt
	`, nil)
	got := regs[0][4]
	// fmul = 205 slots + pget move (1 slot) at 11 cycles/slot.
	want := uint32((205 + 1) * 11)
	if got != want {
		t.Errorf("perfcounter = %d, want %d", got, want)
	}
}

func TestTaskletIDInstruction(t *testing.T) {
	regs := run(t, dpu.O2, 4, `
		tid  r1
		sll  r2, r1, 3
		halt
	`, nil)
	for tid := 0; tid < 4; tid++ {
		if got := regs[tid][1]; got != uint32(tid) {
			t.Errorf("tasklet %d saw tid %d", tid, got)
		}
		if got := regs[tid][2]; got != uint32(tid*8) {
			t.Errorf("tasklet %d computed %d, want %d", tid, got, tid*8)
		}
	}
}

func TestInitSeedsRegisters(t *testing.T) {
	regs := run(t, dpu.O2, 2, `
		addi r2, r1, 100
		halt
	`, func(tid int, r *Regs) { r[1] = uint32(tid * 1000) })
	if regs[0][2] != 100 || regs[1][2] != 1100 {
		t.Errorf("seeded results: %d, %d", regs[0][2], regs[1][2])
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1, r2",     // unknown mnemonic
		"movi r99, 1",           // bad register
		"movi r1",               // missing operand
		"add r1, r2",            // wrong arity
		"beq r1, r2, nowhere",   // undefined label
		"lw r1, r2",             // bad memory operand
		"movi r1, zzz",          // bad immediate
		"dup: nop\ndup: nop",    // duplicate label
		"1bad: nop",             // bad label identifier
		"movi r1, 999999999999", // immediate out of range
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) accepted", src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
	start:
		movi r1, 10
		lw   r2, 4(r3)
		sw   r2, 8(r3)
		add  r4, r1, r2
		addi r5, r4, -3
		fadd r6, r4, r5
		flt  r7, r6, r4
		j    start
	`
	p1 := MustAssemble(src)
	text := Disassemble(p1)
	p2, err := Assemble(strings.ReplaceAll(text, "j 0", "j start"))
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if len(p1.Ins) != len(p2.Ins) {
		t.Fatalf("instruction counts differ: %d vs %d", len(p1.Ins), len(p2.Ins))
	}
	for i := range p1.Ins {
		if p1.Ins[i] != p2.Ins[i] {
			t.Errorf("instruction %d: %+v vs %+v", i, p1.Ins[i], p2.Ins[i])
		}
	}
}

func TestImageRoundTrip(t *testing.T) {
	p := MustAssemble(`
		movi r1, 42
		addi r2, r1, 1
		halt
	`)
	img := p.Image()
	p2, err := FromImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Ins) != 3 {
		t.Fatalf("FromImage len = %d", len(p2.Ins))
	}
	for i := range p.Ins {
		if p.Ins[i] != p2.Ins[i] {
			t.Errorf("instruction %d mismatch", i)
		}
	}
	if _, err := FromImage(img[:5]); err == nil {
		t.Error("ragged image accepted")
	}
}

func TestProgramTooBigForIRAM(t *testing.T) {
	d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
	// 24KB IRAM / 8 bytes = 3072 instructions max.
	big := Program{Labels: map[string]int{}}
	for i := 0; i < 4000; i++ {
		big.Ins = append(big.Ins, Instruction{Op: OpNOP})
	}
	if err := Load(d, big); err == nil {
		t.Error("oversized program loaded")
	}
}

func TestRunawayProgramGuard(t *testing.T) {
	d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
	prog := MustAssemble(`
	spin:
		j spin
	`)
	if err := Load(d, prog); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(1, Kernel(nil, nil)); err == nil {
		t.Error("infinite loop not caught")
	}
}

func TestInterpreterFaults(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"wram oob", "movi r1, 0x10000\nlw r2, 0(r1)\nhalt"},
		{"div zero", "movi r1, 1\ndiv r2, r1, r0\nhalt"},
		{"dma misaligned", "movi r1, 0\nmovi r2, 4\nldma r1, r2, 8\nhalt"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
			if err := Load(d, MustAssemble(tt.src)); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Launch(1, Kernel(nil, nil)); err == nil {
				t.Error("fault not reported")
			}
		})
	}
}

func TestFallOffEndHalts(t *testing.T) {
	regs := run(t, dpu.O2, 1, "movi r1, 7", nil)
	if regs[0][1] != 7 {
		t.Errorf("r1 = %d", regs[0][1])
	}
}

func TestReadWord(t *testing.T) {
	p := MustAssemble("movi r1, 5\nhalt")
	img := p.Image()
	w, err := ReadWord(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if Decode(w).Op != OpMOVI {
		t.Error("ReadWord decoded wrong instruction")
	}
	if _, err := ReadWord(img, 5); err == nil {
		t.Error("out-of-range word accepted")
	}
}

func TestOpcodeString(t *testing.T) {
	if OpFADD.String() != "fadd" {
		t.Error("OpFADD name")
	}
	if !strings.Contains(Opcode(200).String(), "200") {
		t.Error("unknown opcode string")
	}
}

package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pimdnn/internal/dpu"
)

// diffProgram is one arm of the interpreter-vs-compiled differential
// harness: a program plus the memory seeding it expects.
type diffProgram struct {
	name     string
	tasklets int
	build    func(t *testing.T) Program
	seed     func(t *testing.T, d *dpu.DPU)
}

func seedWords(t *testing.T, d *dpu.DPU, off int, vals []int32) {
	t.Helper()
	buf := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
	}
	if err := d.CopyToWRAM(int64(off), buf); err != nil {
		t.Fatal(err)
	}
}

func diffPrograms(t *testing.T) []diffProgram {
	rngWords := func(seed int64, n, lim int) []int32 {
		rng := rand.New(rand.NewSource(seed))
		out := make([]int32, n)
		for i := range out {
			if lim > 0 {
				out[i] = rng.Int31n(int32(lim)) - int32(lim/2)
			} else {
				out[i] = int32(rng.Uint32())
			}
		}
		return out
	}
	return []diffProgram{
		{
			name: "vecadd", tasklets: 8,
			build: func(t *testing.T) Program {
				p, err := VecAddProgram(0, 1024, 2048, 100, 8)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			seed: func(t *testing.T, d *dpu.DPU) {
				seedWords(t, d, 0, rngWords(1, 100, 1000))
				seedWords(t, d, 1024, rngWords(2, 100, 1000))
			},
		},
		{
			name: "dot", tasklets: 1,
			build: func(t *testing.T) Program {
				p, err := DotProductProgram(0, 512, 1024, 50)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			seed: func(t *testing.T, d *dpu.DPU) {
				seedWords(t, d, 0, rngWords(3, 50, 200))
				seedWords(t, d, 512, rngWords(4, 50, 200))
			},
		},
		{
			name: "memcpy", tasklets: 1,
			build: func(t *testing.T) Program {
				p, err := MemcpyProgram(0, 1<<20, 0, 5000)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			seed: func(t *testing.T, d *dpu.DPU) {
				src := make([]byte, 5000)
				for i := range src {
					src[i] = byte(i * 13)
				}
				if err := d.CopyToMRAM(0, src); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "popcount", tasklets: 1,
			build: func(t *testing.T) Program {
				p, err := PopcountProgram(0, 512, 32)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			seed: func(t *testing.T, d *dpu.DPU) {
				seedWords(t, d, 0, rngWords(5, 32, 0))
			},
		},
		{
			name: "reducemax", tasklets: 4,
			build: func(t *testing.T) Program {
				p, err := ReduceMaxProgram(0, 2048, 200, 4)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			seed: func(t *testing.T, d *dpu.DPU) {
				seedWords(t, d, 0, rngWords(6, 200, 0))
			},
		},
		{
			name: "ebnnconv", tasklets: 4,
			build: func(t *testing.T) Program {
				p, err := EBNNConvProgram(0, 256, 0x1B5, 4)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			seed: func(t *testing.T, d *dpu.DPU) {
				seedWords(t, d, 0, rngWords(7, 28, 0))
			},
		},
		{
			// Float pipeline with a perfcounter read: PGET's value depends
			// on every cycle charged before it, so register parity here
			// proves cycle-exact dispatch, not just result parity.
			name: "float-perf", tasklets: 3,
			build: func(t *testing.T) Program {
				return MustAssemble(`
		pcfg
		movi r1, 1065353216  ; 1.0f
		movi r2, 1077936128  ; 3.0f
		fadd r3, r1, r2
		fsub r4, r3, r2
		fmul r5, r3, r4
		fdiv r6, r5, r2
		flt  r7, r6, r5
		fsi  r8, r7
		fts  r9, r6
		mul16 r10, r9, r9
		mul  r11, r10, r9
		div  r12, r11, r9
		rem  r13, r11, r10
		cao  r14, r11
		pget r15
		halt
	`)
			},
			seed: func(t *testing.T, d *dpu.DPU) {},
		},
	}
}

// TestCompiledDispatchParity runs every ISA program through the legacy
// switch interpreter and the compiled-closure dispatcher on identically
// seeded DPUs and asserts bit-identical register files, memory side
// effects, cycle counts, instruction mixes, per-tasklet breakdowns, and
// subroutine profiles at several optimization levels.
func TestCompiledDispatchParity(t *testing.T) {
	for _, opt := range []dpu.OptLevel{dpu.O0, dpu.O2} {
		for _, pc := range diffPrograms(t) {
			t.Run(fmt.Sprintf("%s/O%d", pc.name, int(opt)), func(t *testing.T) {
				prog := pc.build(t)

				run := func(kernel func(func(int, *Regs), func(int, Regs)) dpu.KernelFunc) (
					map[int]Regs, dpu.Stats, map[string]uint64, []byte, []byte) {
					d := dpu.MustNew(dpu.DefaultConfig(opt))
					pc.seed(t, d)
					if err := Load(d, prog); err != nil {
						t.Fatal(err)
					}
					finals := map[int]Regs{}
					st, err := d.Launch(pc.tasklets, kernel(nil, func(tid int, r Regs) { finals[tid] = r }))
					if err != nil {
						t.Fatal(err)
					}
					wram, err := d.CopyFromWRAM(0, 4096)
					if err != nil {
						t.Fatal(err)
					}
					mram, err := d.CopyFromMRAM(1<<20, 8192)
					if err != nil {
						t.Fatal(err)
					}
					return finals, st, d.Profile().Snapshot(), wram, mram
				}

				legRegs, legSt, legProf, legWRAM, legMRAM := run(LegacyKernel)
				cmpRegs, cmpSt, cmpProf, cmpWRAM, cmpMRAM := run(Kernel)

				if !reflect.DeepEqual(legRegs, cmpRegs) {
					t.Errorf("register files diverge:\nlegacy:   %v\ncompiled: %v", legRegs, cmpRegs)
				}
				if legSt.IssueSlots != cmpSt.IssueSlots || legSt.DMACycles != cmpSt.DMACycles ||
					legSt.Cycles != cmpSt.Cycles {
					t.Errorf("cycles diverge: legacy slots=%d dma=%d cyc=%d, compiled slots=%d dma=%d cyc=%d",
						legSt.IssueSlots, legSt.DMACycles, legSt.Cycles,
						cmpSt.IssueSlots, cmpSt.DMACycles, cmpSt.Cycles)
				}
				if legSt.OpCounts != cmpSt.OpCounts {
					t.Errorf("instruction mix diverges:\nlegacy:   %v\ncompiled: %v",
						legSt.OpCounts, cmpSt.OpCounts)
				}
				if !reflect.DeepEqual(legSt.PerTasklet, cmpSt.PerTasklet) {
					t.Errorf("per-tasklet breakdown diverges:\nlegacy:   %v\ncompiled: %v",
						legSt.PerTasklet, cmpSt.PerTasklet)
				}
				if !reflect.DeepEqual(legProf, cmpProf) {
					t.Errorf("subroutine profiles diverge:\nlegacy:   %v\ncompiled: %v", legProf, cmpProf)
				}
				if !bytes.Equal(legWRAM, cmpWRAM) {
					t.Error("WRAM contents diverge")
				}
				if !bytes.Equal(legMRAM, cmpMRAM) {
					t.Error("MRAM contents diverge")
				}
			})
		}
	}
}

// TestProgramCacheInvalidation confirms a reloaded IRAM image is
// recompiled: the same kernel closure must execute the new program.
func TestProgramCacheInvalidation(t *testing.T) {
	d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
	k := Kernel(nil, nil)

	load := func(src string) {
		t.Helper()
		if err := Load(d, MustAssemble(src)); err != nil {
			t.Fatal(err)
		}
	}
	readWord := func(off int) int32 {
		raw, err := d.CopyFromWRAM(int64(off), 4)
		if err != nil {
			t.Fatal(err)
		}
		return int32(binary.LittleEndian.Uint32(raw))
	}

	load(`
		movi r1, 41
		movi r2, 0
		sw   r1, 0(r2)
		halt
	`)
	for i := 0; i < 3; i++ { // repeated launches hit the cache
		if _, err := d.Launch(2, k); err != nil {
			t.Fatal(err)
		}
	}
	if got := readWord(0); got != 41 {
		t.Fatalf("first program wrote %d, want 41", got)
	}

	load(`
		movi r1, 97
		movi r2, 0
		sw   r1, 0(r2)
		halt
	`)
	if _, err := d.Launch(2, k); err != nil {
		t.Fatal(err)
	}
	if got := readWord(0); got != 97 {
		t.Fatalf("after IRAM reload the cached program ran (got %d, want 97)", got)
	}
}

package isa

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"pimdnn/internal/dpu"
)

// writeWords stores int32 words into WRAM via the host interface.
func writeWords(t *testing.T, d *dpu.DPU, off int, vals []int32) {
	t.Helper()
	buf := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
	}
	if err := d.CopyToWRAM(int64(off), buf); err != nil {
		t.Fatal(err)
	}
}

func readWords(t *testing.T, d *dpu.DPU, off, n int) []int32 {
	t.Helper()
	raw, err := d.CopyFromWRAM(int64(off), n*4)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}

func TestVecAddProgram(t *testing.T) {
	const n, tasklets = 100, 8
	const aOff, bOff, dstOff = 0, 1024, 2048
	d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
	rng := rand.New(rand.NewSource(1))
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = rng.Int31n(1000) - 500
		b[i] = rng.Int31n(1000) - 500
	}
	writeWords(t, d, aOff, a)
	writeWords(t, d, bOff, b)

	prog, err := VecAddProgram(aOff, bOff, dstOff, n, tasklets)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(d, prog); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(tasklets, Kernel(nil, nil)); err != nil {
		t.Fatal(err)
	}
	got := readWords(t, d, dstOff, n)
	for i := range a {
		if got[i] != a[i]+b[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, got[i], a[i]+b[i])
		}
	}
}

func TestVecAddTaskletScaling(t *testing.T) {
	// The assembled program's simulated time must scale with tasklets
	// like any balanced kernel: more tasklets, fewer cycles.
	const n = 512
	run := func(tasklets int) uint64 {
		d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
		writeWords(t, d, 0, make([]int32, n))
		writeWords(t, d, 4096, make([]int32, n))
		prog, err := VecAddProgram(0, 4096, 8192, n, tasklets)
		if err != nil {
			t.Fatal(err)
		}
		if err := Load(d, prog); err != nil {
			t.Fatal(err)
		}
		st, err := d.Launch(tasklets, Kernel(nil, nil))
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	c1, c8 := run(1), run(8)
	if speedup := float64(c1) / float64(c8); speedup < 6 {
		t.Errorf("8-tasklet vec add speedup = %.1f, want near 8", speedup)
	}
}

func TestDotProductProgram(t *testing.T) {
	const n = 50
	d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
	rng := rand.New(rand.NewSource(2))
	a := make([]int32, n)
	b := make([]int32, n)
	var want int32
	for i := range a {
		a[i] = rng.Int31n(200) - 100
		b[i] = rng.Int31n(200) - 100
		want += a[i] * b[i]
	}
	writeWords(t, d, 0, a)
	writeWords(t, d, 512, b)
	prog, err := DotProductProgram(0, 512, 1024, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(d, prog); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(1, Kernel(nil, nil)); err != nil {
		t.Fatal(err)
	}
	if got := readWords(t, d, 1024, 1)[0]; got != want {
		t.Errorf("dot = %d, want %d", got, want)
	}
	// The multiply must have gone through the __mulsi3 subroutine.
	if occ := d.Profile().Occ("__mulsi3"); occ != n {
		t.Errorf("__mulsi3 occ = %d, want %d", occ, n)
	}
}

func TestMemcpyProgram(t *testing.T) {
	const bytes = 5000 // 2 full chunks + 904-byte tail
	d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
	src := make([]byte, bytes)
	for i := range src {
		src[i] = byte(i * 13)
	}
	if err := d.CopyToMRAM(0, src); err != nil {
		t.Fatal(err)
	}
	prog, err := MemcpyProgram(0, 1<<20, 0, bytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(d, prog); err != nil {
		t.Fatal(err)
	}
	st, err := d.Launch(1, Kernel(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.CopyFromMRAM(1<<20, bytes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], src[i])
		}
	}
	// DMA accounting: 2 chunk pairs + 1 tail pair.
	wantDMA := 2*2*dpu.DMACost(2048) + 2*dpu.DMACost(904)
	if st.DMACycles != wantDMA {
		t.Errorf("DMA cycles = %d, want %d", st.DMACycles, wantDMA)
	}
}

func TestMemcpyProgramValidation(t *testing.T) {
	if _, err := MemcpyProgram(0, 0, 0, 12); err == nil {
		t.Error("unpadded byte count accepted")
	}
	if _, err := MemcpyProgram(0, 0, 0, 0); err == nil {
		t.Error("zero byte count accepted")
	}
}

func TestPopcountProgram(t *testing.T) {
	const n = 32
	d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
	rng := rand.New(rand.NewSource(3))
	vals := make([]int32, n)
	want := int32(0)
	for i := range vals {
		vals[i] = int32(rng.Uint32())
		for v := uint32(vals[i]); v != 0; v &= v - 1 {
			want++
		}
	}
	writeWords(t, d, 0, vals)
	prog, err := PopcountProgram(0, 512, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(d, prog); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(1, Kernel(nil, nil)); err != nil {
		t.Fatal(err)
	}
	if got := readWords(t, d, 512, 1)[0]; got != want {
		t.Errorf("popcount = %d, want %d", got, want)
	}
}

func TestReduceMaxProgram(t *testing.T) {
	const n, tasklets = 200, 4
	d := dpu.MustNew(dpu.DefaultConfig(dpu.O2))
	rng := rand.New(rand.NewSource(4))
	vals := make([]int32, n)
	want := int32(-1 << 31)
	for i := range vals {
		vals[i] = rng.Int31() - (1 << 30)
		if vals[i] > want {
			want = vals[i]
		}
	}
	writeWords(t, d, 0, vals)
	prog, err := ReduceMaxProgram(0, 2048, n, tasklets)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(d, prog); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(tasklets, Kernel(nil, nil)); err != nil {
		t.Fatal(err)
	}
	partials := readWords(t, d, 2048, tasklets)
	got := partials[0]
	for _, p := range partials[1:] {
		if p > got {
			got = p
		}
	}
	if got != want {
		t.Errorf("max = %d, want %d (partials %v)", got, want, partials)
	}
}

func TestProgramBuilderValidation(t *testing.T) {
	if _, err := VecAddProgram(0, 0, 0, 0, 1); err == nil {
		t.Error("VecAdd n=0 accepted")
	}
	if _, err := DotProductProgram(0, 0, 0, 0); err == nil {
		t.Error("Dot n=0 accepted")
	}
	if _, err := PopcountProgram(0, 0, 0); err == nil {
		t.Error("Popcount n=0 accepted")
	}
	if _, err := ReduceMaxProgram(0, 0, 5, 0); err == nil {
		t.Error("ReduceMax tasklets=0 accepted")
	}
}

package tensor

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestWeightsRoundTrip(t *testing.T) {
	layers := []LayerWeights{
		{W: []int16{1, -2, 3}, Bias: []int16{7}},
		{}, // parameterless layer
		{W: []int16{9}, Bias: []int16{-1, -2}},
	}
	var buf bytes.Buffer
	if err := WriteWeights(&buf, layers); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeights(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("layers = %d", len(got))
	}
	for i := range layers {
		if len(got[i].W) != len(layers[i].W) || len(got[i].Bias) != len(layers[i].Bias) {
			t.Fatalf("layer %d sizes differ", i)
		}
		for j := range layers[i].W {
			if got[i].W[j] != layers[i].W[j] {
				t.Errorf("layer %d W[%d]", i, j)
			}
		}
		for j := range layers[i].Bias {
			if got[i].Bias[j] != layers[i].Bias[j] {
				t.Errorf("layer %d Bias[%d]", i, j)
			}
		}
	}
}

func TestWeightsRejectCorruption(t *testing.T) {
	layers := []LayerWeights{{W: []int16{1, 2}, Bias: []int16{3}}}
	var buf bytes.Buffer
	if err := WriteWeights(&buf, layers); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	mutate := func(name string, f func([]byte)) {
		b := append([]byte(nil), good...)
		f(b)
		if _, err := ReadWeights(bytes.NewReader(b)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) { b[0] ^= 0xFF })
	mutate("bad version", func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 9) })
	mutate("huge layer count", func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 1<<20) })
	mutate("huge slice", func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 1<<30) })

	if _, err := ReadWeights(bytes.NewReader(good[:10])); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := ReadWeights(bytes.NewReader(append(append([]byte(nil), good...), 1))); err == nil {
		t.Error("trailing byte accepted")
	}
}

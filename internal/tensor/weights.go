package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Weight-set serialization shared by the GEMM-backed networks (YOLOv3,
// AlexNet, ResNet-18): a versioned little-endian container of per-layer
// int16 weight and bias slices. Layers without parameters store empty
// slices, so a network round-trips positionally.

const (
	weightsMagic   = 0x31575054 // "TPW1"
	weightsVersion = 1
	// maxLayerElems bounds a single slice read so corrupt headers
	// cannot trigger huge allocations (the largest real layer, YOLOv3's
	// 1024x512x3x3 conv, has 4.7M weights).
	maxLayerElems = 64 << 20
)

// LayerWeights is one layer's parameters.
type LayerWeights struct {
	W    []int16
	Bias []int16
}

// WriteWeights serializes the layer list.
func WriteWeights(w io.Writer, layers []LayerWeights) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{weightsMagic, weightsVersion, uint32(len(layers))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("tensor: writing weights header: %w", err)
		}
	}
	for i, l := range layers {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(l.W))); err != nil {
			return fmt.Errorf("tensor: layer %d: %w", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(l.Bias))); err != nil {
			return fmt.Errorf("tensor: layer %d: %w", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, l.W); err != nil {
			return fmt.Errorf("tensor: layer %d weights: %w", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, l.Bias); err != nil {
			return fmt.Errorf("tensor: layer %d bias: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadWeights deserializes a layer list written by WriteWeights.
func ReadWeights(r io.Reader) ([]LayerWeights, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("tensor: reading weights header: %w", err)
	}
	if hdr[0] != weightsMagic {
		return nil, fmt.Errorf("tensor: bad weights magic %#x", hdr[0])
	}
	if hdr[1] != weightsVersion {
		return nil, fmt.Errorf("tensor: unsupported weights version %d", hdr[1])
	}
	nLayers := int(hdr[2])
	if nLayers < 0 || nLayers > 4096 {
		return nil, fmt.Errorf("tensor: corrupt layer count %d", nLayers)
	}
	out := make([]LayerWeights, nLayers)
	for i := range out {
		var sizes [2]uint32
		if err := binary.Read(br, binary.LittleEndian, &sizes); err != nil {
			return nil, fmt.Errorf("tensor: layer %d sizes: %w", i, err)
		}
		if sizes[0] > maxLayerElems || sizes[1] > maxLayerElems {
			return nil, fmt.Errorf("tensor: layer %d implausibly large (%d, %d)", i, sizes[0], sizes[1])
		}
		out[i].W = make([]int16, sizes[0])
		out[i].Bias = make([]int16, sizes[1])
		if err := binary.Read(br, binary.LittleEndian, out[i].W); err != nil {
			return nil, fmt.Errorf("tensor: layer %d weights: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, out[i].Bias); err != nil {
			return nil, fmt.Errorf("tensor: layer %d bias: %w", i, err)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("tensor: trailing bytes after weights")
	}
	return out, nil
}

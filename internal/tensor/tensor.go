// Package tensor provides the quantized activation tensor shared by the
// CNN workloads (YOLOv3, AlexNet).
//
// Values are int16 in Q10.5 (value × 32): the scale at which the
// Algorithm 2 GEMM's /32 output rescale keeps products in format, so
// activations flow through conv layers without further rescaling.
package tensor

import "fmt"

// QShift is the fixed-point scale: values are stored as round(x * 32).
const QShift = 5

// QOne is the fixed-point representation of 1.0.
const QOne = 1 << QShift

// Tensor is a channel-major (C, H, W) int16 activation tensor.
type Tensor struct {
	C, H, W int
	Data    []int16
}

// New allocates a zero tensor.
func New(c, h, w int) *Tensor {
	return &Tensor{C: c, H: h, W: w, Data: make([]int16, c*h*w)}
}

// At returns the element at (c, y, x).
func (t *Tensor) At(c, y, x int) int16 {
	return t.Data[(c*t.H+y)*t.W+x]
}

// Set writes the element at (c, y, x).
func (t *Tensor) Set(c, y, x int, v int16) {
	t.Data[(c*t.H+y)*t.W+x] = v
}

// Len returns the element count.
func (t *Tensor) Len() int { return t.C * t.H * t.W }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{C: t.C, H: t.H, W: t.W, Data: make([]int16, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Dequantize converts to float64 values.
func (t *Tensor) Dequantize() []float64 {
	out := make([]float64, len(t.Data))
	for i, v := range t.Data {
		out[i] = float64(v) / QOne
	}
	return out
}

// Quantize converts a float64 value into Q10.5 with saturation and
// round-half-away-from-zero.
func Quantize(x float64) int16 {
	v := x * QOne
	if v >= 0 {
		v += 0.5
	} else {
		v -= 0.5
	}
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// QuantizeTensor builds a tensor from float64 data in (C, H, W) order.
func QuantizeTensor(c, h, w int, data []float64) (*Tensor, error) {
	if len(data) != c*h*w {
		return nil, fmt.Errorf("tensor: %d values for %dx%dx%d tensor", len(data), c, h, w)
	}
	t := New(c, h, w)
	for i, x := range data {
		t.Data[i] = Quantize(x)
	}
	return t, nil
}

// Im2Col lowers a convolution input into the Algorithm 2 B matrix with
// explicit padding and stride: rows are the K = C·size² kernel taps,
// columns the N = outH·outW output pixels.
func Im2Col(in *Tensor, size, stride, pad int) (b []int16, k, n int) {
	return Im2ColInto(nil, in, size, stride, pad)
}

// Im2ColInto is Im2Col reusing buf's backing array when it is large
// enough, so per-layer loops avoid reallocating the (often large) patch
// matrix. Every element of the returned slice is overwritten.
func Im2ColInto(buf []int16, in *Tensor, size, stride, pad int) (b []int16, k, n int) {
	outH := ConvOut(in.H, size, stride, pad)
	outW := ConvOut(in.W, size, stride, pad)
	k = in.C * size * size
	n = outH * outW
	if cap(buf) < k*n {
		b = make([]int16, k*n)
	} else {
		b = buf[:k*n]
	}
	row := 0
	for c := 0; c < in.C; c++ {
		for dy := 0; dy < size; dy++ {
			for dx := 0; dx < size; dx++ {
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + dy - pad
					dst := b[row*n+oy*outW : row*n+oy*outW+outW]
					if iy < 0 || iy >= in.H {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					if stride == 1 {
						// Unit stride: the source pixels ix = ox+dx-pad are
						// contiguous, so the row is a copy with zeroed
						// out-of-image edges.
						src := in.Data[(c*in.H+iy)*in.W : (c*in.H+iy+1)*in.W]
						lo := 0
						if dx-pad < 0 {
							lo = pad - dx
						}
						hi := outW
						if dx-pad+outW > in.W {
							hi = in.W - dx + pad
						}
						if hi < lo {
							hi = lo
						}
						for i := 0; i < lo; i++ {
							dst[i] = 0
						}
						copy(dst[lo:hi], src[lo+dx-pad:])
						for i := hi; i < outW; i++ {
							dst[i] = 0
						}
						continue
					}
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride + dx - pad
						var v int16
						if ix >= 0 && ix < in.W {
							v = in.At(c, iy, ix)
						}
						dst[ox] = v
					}
				}
				row++
			}
		}
	}
	return b, k, n
}

// ConvOut is the convolution/pooling output-size rule.
func ConvOut(in, size, stride, pad int) int {
	return (in+2*pad-size)/stride + 1
}

package tensor

import (
	"testing"
	"testing/quick"
)

func TestAccessors(t *testing.T) {
	tt := New(2, 3, 4)
	tt.Set(1, 2, 3, -7)
	if tt.At(1, 2, 3) != -7 || tt.Len() != 24 {
		t.Error("accessors wrong")
	}
	cl := tt.Clone()
	cl.Set(0, 0, 0, 9)
	if tt.At(0, 0, 0) == 9 {
		t.Error("Clone aliases")
	}
}

func TestQuantizeEdges(t *testing.T) {
	tests := []struct {
		give float64
		want int16
	}{
		{0, 0}, {1, 32}, {-1, -32}, {1e9, 32767}, {-1e9, -32768},
		{1.0 / 64, 1}, {-1.0 / 64, -1},
	}
	for _, tt := range tests {
		if got := Quantize(tt.give); got != tt.want {
			t.Errorf("Quantize(%v) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestQuantizeDequantizeProperty(t *testing.T) {
	f := func(v int16) bool {
		// Round-trip through float is the identity for representable
		// values.
		x := float64(v) / QOne
		return Quantize(x) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConvOut(t *testing.T) {
	tests := []struct {
		in, size, stride, pad, want int
	}{
		{227, 11, 4, 0, 55}, // AlexNet conv1
		{55, 3, 2, 0, 27},   // AlexNet pool1
		{27, 5, 1, 2, 27},   // AlexNet conv2
		{416, 3, 1, 1, 416}, // YOLO stride-1
		{416, 3, 2, 1, 208}, // YOLO downsample
	}
	for _, tt := range tests {
		if got := ConvOut(tt.in, tt.size, tt.stride, tt.pad); got != tt.want {
			t.Errorf("ConvOut(%d,%d,%d,%d) = %d, want %d",
				tt.in, tt.size, tt.stride, tt.pad, got, tt.want)
		}
	}
}

func TestIm2ColZeroPad(t *testing.T) {
	in := New(1, 3, 3)
	for i := range in.Data {
		in.Data[i] = int16(i + 1)
	}
	// 3x3 kernel, stride 1, pad 1: out 3x3; K=9, N=9.
	b, k, n := Im2Col(in, 3, 1, 1)
	if k != 9 || n != 9 {
		t.Fatalf("K=%d N=%d", k, n)
	}
	// Top-left output's top-left tap is padding.
	if b[0] != 0 {
		t.Errorf("pad tap = %d", b[0])
	}
	// Center output (index 4) with center tap (row 4) is input (1,1)=5.
	if b[4*n+4] != 5 {
		t.Errorf("center tap = %d, want 5", b[4*n+4])
	}
}

func TestIm2ColStrideNoPad(t *testing.T) {
	in := New(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = int16(i)
	}
	// 2x2 kernel, stride 2, no pad: out 2x2.
	b, k, n := Im2Col(in, 2, 2, 0)
	if k != 4 || n != 4 {
		t.Fatalf("K=%d N=%d", k, n)
	}
	// Tap (0,0) of output (1,1) is input (2,2) = 10.
	if b[0*n+3] != 10 {
		t.Errorf("tap = %d, want 10", b[3])
	}
}

func TestQuantizeTensorValidation(t *testing.T) {
	if _, err := QuantizeTensor(1, 2, 2, []float64{1}); err == nil {
		t.Error("short data accepted")
	}
	tt, err := QuantizeTensor(1, 1, 2, []float64{1, -0.5})
	if err != nil || tt.Data[0] != 32 || tt.Data[1] != -16 {
		t.Errorf("QuantizeTensor = %+v, %v", tt, err)
	}
}

package softfloat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// specials is a set of binary32 bit patterns that exercise every encoding
// class: zeros, subnormals (min/max), normal boundaries, exact powers of
// two, infinities and NaNs.
var specials = []uint32{
	0x00000000, // +0
	0x80000000, // -0
	0x00000001, // smallest +subnormal
	0x80000001, // smallest -subnormal
	0x007FFFFF, // largest +subnormal
	0x807FFFFF, // largest -subnormal
	0x00800000, // smallest +normal
	0x80800000, // smallest -normal
	0x7F7FFFFF, // largest finite
	0xFF7FFFFF, // most negative finite
	0x3F800000, // 1.0
	0xBF800000, // -1.0
	0x3FC00000, // 1.5
	0x40000000, // 2.0
	0x40490FDB, // pi
	0x3EAAAAAB, // 1/3
	0x7F800000, // +inf
	0xFF800000, // -inf
	0x7FC00000, // qNaN
	0x7F800001, // sNaN
	0x4B7FFFFF, // 16777215 (largest exact odd int)
	0xCB000000, // -8388608
	0x34000000, // 2^-23
	0x7F000000, // 2^127
	0x00FFFFFF, // just above min normal
}

// eq32 compares results treating every NaN as equal (hardware NaN
// payloads are not specified).
func eq32(a, b uint32) bool {
	if IsNaN(a) && IsNaN(b) {
		return true
	}
	return a == b
}

func hwAdd(a, b uint32) uint32 {
	return math.Float32bits(math.Float32frombits(a) + math.Float32frombits(b))
}

func hwSub(a, b uint32) uint32 {
	return math.Float32bits(math.Float32frombits(a) - math.Float32frombits(b))
}

func hwMul(a, b uint32) uint32 {
	return math.Float32bits(math.Float32frombits(a) * math.Float32frombits(b))
}

func hwDiv(a, b uint32) uint32 {
	return math.Float32bits(math.Float32frombits(a) / math.Float32frombits(b))
}

func TestAddSpecialsMatchHardware(t *testing.T) {
	for _, a := range specials {
		for _, b := range specials {
			got, want := Add(a, b), hwAdd(a, b)
			if !eq32(got, want) {
				t.Errorf("Add(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
			}
		}
	}
}

func TestSubSpecialsMatchHardware(t *testing.T) {
	for _, a := range specials {
		for _, b := range specials {
			got, want := Sub(a, b), hwSub(a, b)
			if !eq32(got, want) {
				t.Errorf("Sub(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
			}
		}
	}
}

func TestMulSpecialsMatchHardware(t *testing.T) {
	for _, a := range specials {
		for _, b := range specials {
			got, want := Mul(a, b), hwMul(a, b)
			if !eq32(got, want) {
				t.Errorf("Mul(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
			}
		}
	}
}

func TestDivSpecialsMatchHardware(t *testing.T) {
	for _, a := range specials {
		for _, b := range specials {
			got, want := Div(a, b), hwDiv(a, b)
			if !eq32(got, want) {
				t.Errorf("Div(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
			}
		}
	}
}

func TestAddRandomMatchesHardware(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		got, want := Add(a, b), hwAdd(a, b)
		if !eq32(got, want) {
			t.Fatalf("Add(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
		}
	}
}

func TestMulRandomMatchesHardware(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		got, want := Mul(a, b), hwMul(a, b)
		if !eq32(got, want) {
			t.Fatalf("Mul(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
		}
	}
}

func TestDivRandomMatchesHardware(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		got, want := Div(a, b), hwDiv(a, b)
		if !eq32(got, want) {
			t.Fatalf("Div(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
		}
	}
}

func TestSubRandomMatchesHardware(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		got, want := Sub(a, b), hwSub(a, b)
		if !eq32(got, want) {
			t.Fatalf("Sub(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
		}
	}
}

// Randomized inputs biased toward nearby exponents, where alignment and
// cancellation paths are exercised hardest.
func TestAddNearbyExponents(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100000; i++ {
		exp := uint32(rng.Intn(254) + 1)
		a := rng.Uint32()&(signMask|fracMask) | exp<<23
		d := uint32(rng.Intn(5)) - 2
		bexp := (exp + d) % 255
		if bexp == 0 {
			bexp = 1
		}
		b := rng.Uint32()&(signMask|fracMask) | bexp<<23
		got, want := Add(a, b), hwAdd(a, b)
		if !eq32(got, want) {
			t.Fatalf("Add(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
		}
	}
}

// Subnormal-heavy random testing: products and quotients that underflow.
func TestMulDivSubnormalRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100000; i++ {
		// Small exponents force underflow paths.
		a := rng.Uint32()&(signMask|fracMask) | uint32(rng.Intn(40))<<23
		b := rng.Uint32()&(signMask|fracMask) | uint32(rng.Intn(40))<<23
		if got, want := Mul(a, b), hwMul(a, b); !eq32(got, want) {
			t.Fatalf("Mul(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
		}
		if !IsZero(b) {
			if got, want := Div(a, b), hwDiv(a, b); !eq32(got, want) {
				t.Fatalf("Div(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
			}
		}
	}
}

func TestCmpMatchesHardware(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(a, b uint32) {
		fa, fb := math.Float32frombits(a), math.Float32frombits(b)
		if got, want := Lt(a, b), fa < fb; got != want {
			t.Fatalf("Lt(%#08x, %#08x) = %v, want %v", a, b, got, want)
		}
		if got, want := Le(a, b), fa <= fb; got != want {
			t.Fatalf("Le(%#08x, %#08x) = %v, want %v", a, b, got, want)
		}
		if got, want := Gt(a, b), fa > fb; got != want {
			t.Fatalf("Gt(%#08x, %#08x) = %v, want %v", a, b, got, want)
		}
		if got, want := Ge(a, b), fa >= fb; got != want {
			t.Fatalf("Ge(%#08x, %#08x) = %v, want %v", a, b, got, want)
		}
		if got, want := Eq(a, b), fa == fb; got != want {
			t.Fatalf("Eq(%#08x, %#08x) = %v, want %v", a, b, got, want)
		}
	}
	for _, a := range specials {
		for _, b := range specials {
			check(a, b)
		}
	}
	for i := 0; i < 50000; i++ {
		check(rng.Uint32(), rng.Uint32())
	}
}

func TestFromInt32MatchesHardware(t *testing.T) {
	cases := []int32{0, 1, -1, 2, 16777215, 16777216, 16777217, -16777217,
		2147483647, -2147483648, 123456789, -987654321, 1 << 30, -(1 << 30)}
	for _, v := range cases {
		got, want := FromInt32(v), math.Float32bits(float32(v))
		if got != want {
			t.Errorf("FromInt32(%d) = %#08x, want %#08x", v, got, want)
		}
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100000; i++ {
		v := int32(rng.Uint32())
		got, want := FromInt32(v), math.Float32bits(float32(v))
		if got != want {
			t.Fatalf("FromInt32(%d) = %#08x, want %#08x", v, got, want)
		}
	}
}

func TestFromUint32MatchesHardware(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100000; i++ {
		v := rng.Uint32()
		got, want := FromUint32(v), math.Float32bits(float32(v))
		if got != want {
			t.Fatalf("FromUint32(%d) = %#08x, want %#08x", v, got, want)
		}
	}
}

func TestToInt32(t *testing.T) {
	tests := []struct {
		give float32
		want int32
	}{
		{0, 0},
		{0.99, 0},
		{-0.99, 0},
		{1, 1},
		{-1, -1},
		{1.5, 1},
		{-1.5, -1},
		{123456.78, 123456},
		{-2147483648, -2147483648},
		{2147483520, 2147483520}, // largest float32 below 2^31
		{float32(math.Inf(1)), 2147483647},
		{float32(math.Inf(-1)), -2147483648},
		{3e9, 2147483647},   // saturates
		{-3e9, -2147483648}, // saturates
	}
	for _, tt := range tests {
		if got := ToInt32(math.Float32bits(tt.give)); got != tt.want {
			t.Errorf("ToInt32(%g) = %d, want %d", tt.give, got, tt.want)
		}
	}
	if got := ToInt32(QNaN); got != 0 {
		t.Errorf("ToInt32(NaN) = %d, want 0", got)
	}
}

func TestToInt32RandomInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100000; i++ {
		f := (rng.Float32() - 0.5) * 4e9
		want := int32(0)
		switch {
		case float64(f) >= 2147483647:
			want = 2147483647
		case float64(f) <= -2147483648:
			want = -2147483648
		default:
			want = int32(f)
		}
		if got := ToInt32(math.Float32bits(f)); got != want {
			t.Fatalf("ToInt32(%g) = %d, want %d", f, got, want)
		}
	}
}

// Property: addition is commutative for all bit patterns.
func TestAddCommutative(t *testing.T) {
	f := func(a, b uint32) bool {
		return eq32(Add(a, b), Add(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: multiplication is commutative for all bit patterns.
func TestMulCommutative(t *testing.T) {
	f := func(a, b uint32) bool {
		return eq32(Mul(a, b), Mul(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: x + 0 == x for every non-NaN x (note -0 + +0 = +0).
func TestAddZeroIdentity(t *testing.T) {
	f := func(a uint32) bool {
		if IsNaN(a) {
			return true
		}
		if a == signMask { // -0 + +0 = +0
			return Add(a, 0) == 0
		}
		return Add(a, 0) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: x * 1 == x for every non-NaN x.
func TestMulOneIdentity(t *testing.T) {
	one := math.Float32bits(1)
	f := func(a uint32) bool {
		if IsNaN(a) {
			return true
		}
		return Mul(a, one) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: x / x == 1 for finite non-zero x.
func TestDivSelfIsOne(t *testing.T) {
	one := math.Float32bits(1)
	f := func(a uint32) bool {
		if IsNaN(a) || IsInf(a) || IsZero(a) {
			return true
		}
		return Div(a, a) == one
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: negation is an involution and Sub(a,b) == Add(a, Neg(b)).
func TestNegInvolution(t *testing.T) {
	f := func(a uint32) bool { return Neg(Neg(a)) == a }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassifiers(t *testing.T) {
	if !IsNaN(QNaN) || IsNaN(PosInf) || IsNaN(0) {
		t.Error("IsNaN misclassifies")
	}
	if !IsInf(PosInf) || !IsInf(NegInf) || IsInf(QNaN) || IsInf(0x3F800000) {
		t.Error("IsInf misclassifies")
	}
	if !IsZero(0) || !IsZero(signMask) || IsZero(1) {
		t.Error("IsZero misclassifies")
	}
	if Sign(0x3F800000) || !Sign(0xBF800000) {
		t.Error("Sign misclassifies")
	}
	if Abs(0xBF800000) != 0x3F800000 {
		t.Error("Abs did not clear the sign bit")
	}
}

func TestRoundTripFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		b := rng.Uint32()
		if IsNaN(b) {
			continue
		}
		if got := FromFloat32(ToFloat32(b)); got != b {
			t.Fatalf("round trip %#08x -> %#08x", b, got)
		}
	}
}

package softfloat

import (
	"math/rand"
	"testing"
)

func benchInputs(n int) []uint32 {
	rng := rand.New(rand.NewSource(42))
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32()
	}
	return out
}

func BenchmarkAdd(b *testing.B) {
	in := benchInputs(1024)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = Add(in[i%1024], in[(i+1)%1024])
	}
	_ = sink
}

func BenchmarkMul(b *testing.B) {
	in := benchInputs(1024)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = Mul(in[i%1024], in[(i+1)%1024])
	}
	_ = sink
}

func BenchmarkDiv(b *testing.B) {
	in := benchInputs(1024)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = Div(in[i%1024], in[(i+1)%1024]|1)
	}
	_ = sink
}

func BenchmarkCmp(b *testing.B) {
	in := benchInputs(1024)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = Lt(in[i%1024], in[(i+1)%1024])
	}
	_ = sink
}

func BenchmarkFromInt32(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = FromInt32(int32(i*2654435761) ^ 12345)
	}
	_ = sink
}

func BenchmarkToInt32(b *testing.B) {
	in := benchInputs(1024)
	var sink int32
	for i := 0; i < b.N; i++ {
		sink = ToInt32(in[i%1024])
	}
	_ = sink
}

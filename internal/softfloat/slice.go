package softfloat

// Batched entry points over contiguous binary32 lanes. Kernels that
// account for their cycles with dpu.ChargeBulk/CostBlock compute whole
// vectors of softfloat operations in one call instead of one function
// call per lane; each lane is computed by the exact scalar routine, so
// results are bit-identical to a scalar loop (the slice tests cross-check
// every lane against the scalar form over NaN/Inf/denormal corpora).
//
// All functions require len(a) == len(b) == len(dst) and panic otherwise:
// a length mismatch is a kernel layout bug, the vector analogue of a
// misaligned DMA. dst may alias a or b (lanes are independent).

// checkLanes validates that every operand has exactly n lanes.
func checkLanes(n int, a, b []uint32) {
	if len(a) != n || len(b) != n {
		panic("softfloat: slice operands of unequal length")
	}
}

// AddSlice computes dst[i] = a[i] + b[i] (one __addsf3 per lane).
func AddSlice(dst, a, b []uint32) {
	checkLanes(len(dst), a, b)
	for i := range dst {
		dst[i] = Add(a[i], b[i])
	}
}

// SubSlice computes dst[i] = a[i] - b[i] (one __subsf3 per lane).
func SubSlice(dst, a, b []uint32) {
	checkLanes(len(dst), a, b)
	for i := range dst {
		dst[i] = Sub(a[i], b[i])
	}
}

// MulSlice computes dst[i] = a[i] * b[i] (one __mulsf3 per lane).
func MulSlice(dst, a, b []uint32) {
	checkLanes(len(dst), a, b)
	for i := range dst {
		dst[i] = Mul(a[i], b[i])
	}
}

// DivSlice computes dst[i] = a[i] / b[i] (one __divsf3 per lane).
func DivSlice(dst, a, b []uint32) {
	checkLanes(len(dst), a, b)
	for i := range dst {
		dst[i] = Div(a[i], b[i])
	}
}

// MACSlice computes acc[i] = acc[i] + a[i]*b[i] with the product rounded
// before the add, exactly as the scalar __mulsf3/__addsf3 pair computes
// it (the DPU has no fused multiply-add).
func MACSlice(acc, a, b []uint32) {
	checkLanes(len(acc), a, b)
	for i := range acc {
		acc[i] = Add(acc[i], Mul(a[i], b[i]))
	}
}

// ScaleSlice computes dst[i] = a[i] * s for a scalar s (one __mulsf3 per
// lane), the broadcast form used by normalization layers.
func ScaleSlice(dst, a []uint32, s uint32) {
	if len(a) != len(dst) {
		panic("softfloat: slice operands of unequal length")
	}
	for i := range dst {
		dst[i] = Mul(a[i], s)
	}
}

// FromInt32Slice converts each lane of v to binary32 (one __floatsisf
// per lane).
func FromInt32Slice(dst []uint32, v []int32) {
	if len(v) != len(dst) {
		panic("softfloat: slice operands of unequal length")
	}
	for i := range dst {
		dst[i] = FromInt32(v[i])
	}
}

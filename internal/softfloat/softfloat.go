// Package softfloat implements IEEE-754 binary32 arithmetic using only
// integer operations.
//
// The UPMEM DPU has no floating-point hardware; its compiler lowers every
// floating-point operation to a software subroutine (__addsf3, __mulsf3,
// __divsf3, __ltsf2, __floatsisf, ... — thesis §3.3, Fig 3.2). This
// package is the simulator's implementation of those subroutines: each
// function is bit-exact against hardware IEEE-754 round-to-nearest-even
// for non-NaN results, so DPU-side computations agree with the host
// reference, while the DPU cost model charges the (large) cycle counts the
// thesis measures for them.
//
// All values are passed as raw binary32 bit patterns (uint32), matching
// how the subroutines receive operands in DPU registers.
package softfloat

// Subroutine names as they appear in DPU profiles (thesis Fig 3.2, 4.3).
const (
	SubAddSF3      = "__addsf3"
	SubSubSF3      = "__subsf3"
	SubMulSF3      = "__mulsf3"
	SubDivSF3      = "__divsf3"
	SubLtSF2       = "__ltsf2"
	SubGtSF2       = "__gtsf2"
	SubGeSF2       = "__gesf2"
	SubLeSF2       = "__lesf2"
	SubEqSF2       = "__eqsf2"
	SubFloatSiSF   = "__floatsisf"
	SubFixSFSi     = "__fixsfsi"
	SubMulSI3      = "__mulsi3"
	SubDivSI3      = "__divsi3"
	SubFloatUnSiSF = "__floatunsisf"
)

const (
	signMask  = uint32(1) << 31
	expMask   = uint32(0xFF) << 23
	fracMask  = uint32(1)<<23 - 1
	hiddenBit = uint32(1) << 23

	// QNaN is the canonical quiet NaN returned by arithmetic on invalid
	// inputs (0*inf, inf-inf, 0/0, inf/inf, or any NaN operand).
	QNaN = uint32(0x7FC00000)

	// PosInf and NegInf are the binary32 infinities.
	PosInf = uint32(0x7F800000)
	NegInf = uint32(0xFF800000)
)

// IsNaN reports whether the bit pattern encodes a NaN.
func IsNaN(a uint32) bool {
	return a&expMask == expMask && a&fracMask != 0
}

// IsInf reports whether the bit pattern encodes +inf or -inf.
func IsInf(a uint32) bool {
	return a&^signMask == PosInf
}

// IsZero reports whether the bit pattern encodes +0 or -0.
func IsZero(a uint32) bool {
	return a&^signMask == 0
}

// Sign reports whether the sign bit is set.
func Sign(a uint32) bool { return a&signMask != 0 }

// Neg flips the sign bit (exact IEEE negation, including for NaN).
func Neg(a uint32) uint32 { return a ^ signMask }

// Abs clears the sign bit.
func Abs(a uint32) uint32 { return a &^ signMask }

// unpack splits a into sign, biased exponent field and fraction field.
func unpack(a uint32) (sign bool, exp int32, frac uint32) {
	return a&signMask != 0, int32(a>>23) & 0xFF, a & fracMask
}

// packBits assembles a binary32 value from its fields. frac must already
// exclude the hidden bit for normal numbers.
func packBits(sign bool, exp uint32, frac uint32) uint32 {
	v := exp<<23 | frac
	if sign {
		v |= signMask
	}
	return v
}

// normMant returns the operand's mantissa with the hidden bit applied and
// its effective biased exponent. Subnormals are normalized (mantissa
// shifted up until bit 23 is set, exponent decremented accordingly), so
// callers can treat every finite non-zero operand uniformly as
// value = mant * 2^(exp-150) with mant in [2^23, 2^24).
func normMant(exp int32, frac uint32) (uint32, int32) {
	if exp != 0 {
		return frac | hiddenBit, exp
	}
	e := int32(1)
	for frac&hiddenBit == 0 {
		frac <<= 1
		e--
	}
	return frac, e
}

// shiftRightSticky shifts v right by n, OR-ing any bits shifted out into
// the result's least-significant bit (the "sticky" bit used for correct
// round-to-nearest-even).
func shiftRightSticky(v uint32, n int32) uint32 {
	if n <= 0 {
		return v
	}
	if n > 31 {
		if v != 0 {
			return 1
		}
		return 0
	}
	sticky := uint32(0)
	if v&(uint32(1)<<n-1) != 0 {
		sticky = 1
	}
	return v>>n | sticky
}

// roundPack rounds and packs a result whose significand sig carries the
// hidden bit at bit 26 with three guard/round/sticky bits below it, i.e.
// value = sig * 2^(exp-153) with sig in [2^26, 2^27) for normalized
// results. exp may be <= 0 for values that underflow into the subnormal
// range; exp == 1 with sig < 2^26 denotes an already-subnormal result.
func roundPack(sign bool, exp int32, sig uint32) uint32 {
	if exp <= 0 {
		sig = shiftRightSticky(sig, 1-exp)
		exp = 1
	}
	round := sig & 7
	sig >>= 3
	if round > 4 || (round == 4 && sig&1 == 1) {
		sig++
	}
	if sig >= 1<<24 {
		sig >>= 1
		exp++
	}
	if exp >= 255 {
		return packBits(sign, 255, 0)
	}
	if sig < hiddenBit {
		// Subnormal: the exponent field is zero and there is no hidden
		// bit. This branch is only reachable with exp == 1.
		return packBits(sign, 0, sig)
	}
	return packBits(sign, uint32(exp), sig&fracMask)
}

// Add returns a + b with round-to-nearest-even (the __addsf3 subroutine).
func Add(a, b uint32) uint32 {
	asign, aexp, afrac := unpack(a)
	bsign, bexp, bfrac := unpack(b)
	if IsNaN(a) || IsNaN(b) {
		return QNaN
	}
	if aexp == 0xFF { // a is inf
		if bexp == 0xFF && asign != bsign {
			return QNaN // inf + -inf
		}
		return a
	}
	if bexp == 0xFF {
		return b
	}
	if afrac == 0 && aexp == 0 { // a is zero
		if bfrac == 0 && bexp == 0 {
			// (+0)+(+0)=+0, (-0)+(-0)=-0, mixed = +0 under RNE.
			if asign && bsign {
				return signMask
			}
			return 0
		}
		return b
	}
	if bfrac == 0 && bexp == 0 {
		return a
	}

	amant, ae := normMant(aexp, afrac)
	bmant, be := normMant(bexp, bfrac)
	asig, bsig := amant<<3, bmant<<3

	// Ensure (asig, ae) is the larger magnitude.
	if ae < be || (ae == be && asig < bsig) {
		asig, bsig = bsig, asig
		ae, be = be, ae
		asign, bsign = bsign, asign
	}
	bsig = shiftRightSticky(bsig, ae-be)

	if asign == bsign {
		sig := asig + bsig
		exp := ae
		if sig >= 1<<27 {
			sig = sig>>1 | sig&1
			exp++
		}
		return roundPack(asign, exp, sig)
	}
	sig := asig - bsig
	if sig == 0 {
		return 0 // exact cancellation is +0 under RNE
	}
	exp := ae
	for sig < 1<<26 && exp > 1 {
		sig <<= 1
		exp--
	}
	return roundPack(asign, exp, sig)
}

// Sub returns a - b (the __subsf3 subroutine).
func Sub(a, b uint32) uint32 {
	if IsNaN(b) {
		return QNaN
	}
	return Add(a, Neg(b))
}

// Mul returns a * b with round-to-nearest-even (the __mulsf3 subroutine).
func Mul(a, b uint32) uint32 {
	asign, aexp, afrac := unpack(a)
	bsign, bexp, bfrac := unpack(b)
	sign := asign != bsign
	if IsNaN(a) || IsNaN(b) {
		return QNaN
	}
	if aexp == 0xFF || bexp == 0xFF {
		if IsZero(a) || IsZero(b) {
			return QNaN // inf * 0
		}
		return packBits(sign, 255, 0)
	}
	if IsZero(a) || IsZero(b) {
		return packBits(sign, 0, 0)
	}

	amant, ae := normMant(aexp, afrac)
	bmant, be := normMant(bexp, bfrac)
	product := uint64(amant) * uint64(bmant) // in [2^46, 2^48)
	exp := ae + be - 127

	sig := uint32(product >> 20)
	if product&(1<<20-1) != 0 {
		sig |= 1
	}
	if sig >= 1<<27 {
		sig = sig>>1 | sig&1
		exp++
	}
	return roundPack(sign, exp, sig)
}

// Div returns a / b with round-to-nearest-even (the __divsf3 subroutine).
func Div(a, b uint32) uint32 {
	asign, aexp, afrac := unpack(a)
	bsign, bexp, bfrac := unpack(b)
	sign := asign != bsign
	if IsNaN(a) || IsNaN(b) {
		return QNaN
	}
	if aexp == 0xFF {
		if bexp == 0xFF {
			return QNaN // inf / inf
		}
		return packBits(sign, 255, 0)
	}
	if bexp == 0xFF {
		return packBits(sign, 0, 0)
	}
	if IsZero(b) {
		if IsZero(a) {
			return QNaN // 0 / 0
		}
		return packBits(sign, 255, 0) // x / 0 = inf
	}
	if IsZero(a) {
		return packBits(sign, 0, 0)
	}

	amant, ae := normMant(aexp, afrac)
	bmant, be := normMant(bexp, bfrac)
	num := uint64(amant) << 27
	q := num / uint64(bmant) // in (2^26, 2^28)
	if num%uint64(bmant) != 0 {
		q |= 1
	}
	exp := ae - be + 126
	sig := uint32(q)
	if sig >= 1<<27 {
		sig = sig>>1 | sig&1
		exp++
	}
	return roundPack(sign, exp, sig)
}

// Cmp compares a and b. It returns (-1, 0, +1) for less / equal / greater
// and unordered=true when either operand is NaN (in which case the
// integer result is meaningless). It backs the __ltsf2/__gtsf2/... family.
func Cmp(a, b uint32) (r int, unordered bool) {
	if IsNaN(a) || IsNaN(b) {
		return 0, true
	}
	if IsZero(a) && IsZero(b) {
		return 0, false // +0 == -0
	}
	// Map to a monotone integer ordering: for positive values the bit
	// pattern already orders correctly; for negative values it reverses.
	ka := orderKey(a)
	kb := orderKey(b)
	switch {
	case ka < kb:
		return -1, false
	case ka > kb:
		return 1, false
	default:
		return 0, false
	}
}

// orderKey maps a non-NaN binary32 pattern to an int64 that orders the
// same way as the encoded real values.
func orderKey(a uint32) int64 {
	if a&signMask == 0 {
		return int64(a)
	}
	return -int64(a &^ signMask)
}

// Lt reports a < b (false on unordered).
func Lt(a, b uint32) bool { r, un := Cmp(a, b); return !un && r < 0 }

// Le reports a <= b (false on unordered).
func Le(a, b uint32) bool { r, un := Cmp(a, b); return !un && r <= 0 }

// Gt reports a > b (false on unordered).
func Gt(a, b uint32) bool { r, un := Cmp(a, b); return !un && r > 0 }

// Ge reports a >= b (false on unordered).
func Ge(a, b uint32) bool { r, un := Cmp(a, b); return !un && r >= 0 }

// Eq reports a == b (false on unordered; +0 == -0).
func Eq(a, b uint32) bool { r, un := Cmp(a, b); return !un && r == 0 }

// FromInt32 converts a signed integer to binary32 with round-to-nearest-
// even (the __floatsisf subroutine).
func FromInt32(v int32) uint32 {
	if v == 0 {
		return 0
	}
	sign := v < 0
	var mag uint32
	if sign {
		mag = uint32(-int64(v))
	} else {
		mag = uint32(v)
	}
	return fromMag(sign, mag)
}

// FromUint32 converts an unsigned integer to binary32 with round-to-
// nearest-even (the __floatunsisf subroutine).
func FromUint32(v uint32) uint32 {
	if v == 0 {
		return 0
	}
	return fromMag(false, v)
}

func fromMag(sign bool, mag uint32) uint32 {
	h := 31
	for mag&(uint32(1)<<h) == 0 {
		h--
	}
	exp := int32(127 + h)
	var sig uint32
	if h <= 26 {
		sig = mag << (26 - h)
	} else {
		sig = shiftRightSticky(mag, int32(h-26))
	}
	return roundPack(sign, exp, sig)
}

// ToInt32 converts binary32 to a signed integer, truncating toward zero
// (the __fixsfsi subroutine). NaN converts to 0; values outside the int32
// range saturate, matching common RISC hardware behaviour.
func ToInt32(a uint32) int32 {
	if IsNaN(a) {
		return 0
	}
	sign, exp, frac := unpack(a)
	if exp == 0xFF { // infinity
		if sign {
			return -2147483648
		}
		return 2147483647
	}
	if exp < 127 {
		return 0 // |a| < 1 truncates to 0 (covers zeros and subnormals)
	}
	shift := exp - 127 // number of integer bits above the leading 1
	if shift > 31 {
		if sign {
			return -2147483648
		}
		return 2147483647
	}
	mant := uint64(frac | hiddenBit) // 1.frac with 23 fraction bits
	var mag uint64
	if shift >= 23 {
		mag = mant << (shift - 23)
	} else {
		mag = mant >> (23 - shift)
	}
	if sign {
		if mag > 1<<31 {
			return -2147483648
		}
		return int32(-int64(mag))
	}
	if mag > (1<<31)-1 {
		return 2147483647
	}
	return int32(mag)
}

// FromFloat32 returns the bit pattern of f. It exists so callers outside
// this package never need to import math just to bridge representations.
func FromFloat32(f float32) uint32 {
	return f32bits(f)
}

// ToFloat32 reinterprets a bit pattern as a float32.
func ToFloat32(a uint32) float32 {
	return f32frombits(a)
}

package softfloat

import "math"

// f32bits and f32frombits isolate the only places the package touches the
// host floating-point representation; everything else is pure integer
// arithmetic, as on the DPU.

func f32bits(f float32) uint32 {
	return math.Float32bits(f)
}

func f32frombits(b uint32) float32 {
	return math.Float32frombits(b)
}

package softfloat

import (
	"math"
	"math/rand"
	"testing"
)

// edgeValues is the table of special binary32 patterns every slice entry
// point is crossed against: zeros of both signs, the smallest and largest
// denormals, the boundary normals, exact powers of two, values that
// force round-to-nearest-even ties, both infinities, and quiet/signaling
// NaN patterns of both signs.
var edgeValues = []uint32{
	0x00000000, // +0
	0x80000000, // -0
	0x00000001, // smallest +denormal
	0x80000001, // smallest -denormal
	0x007FFFFF, // largest +denormal
	0x807FFFFF, // largest -denormal
	0x00800000, // smallest +normal
	0x80800000, // smallest -normal
	0x00800001, // just above smallest normal
	0x3F800000, // 1.0
	0xBF800000, // -1.0
	0x3F800001, // 1.0 + ulp
	0x3FFFFFFF, // just under 2.0
	0x40000000, // 2.0
	0x3F000000, // 0.5
	0x34000000, // 2^-23 (addend that forces G/R/S rounding against 1.0)
	0x33FFFFFF, // just under 2^-23
	0x4B000000, // 2^23 (integer boundary)
	0x4B7FFFFF, // 2^24 - 1
	0x7F7FFFFF, // largest finite
	0xFF7FFFFF, // most negative finite
	0x7F000000, // 2^127 (overflow bait for mul)
	0x7F800000, // +inf
	0xFF800000, // -inf
	0x7FC00000, // canonical quiet NaN
	0xFFC00000, // -quiet NaN
	0x7F800001, // signaling NaN pattern
	0x7FFFFFFF, // NaN with all fraction bits
	0x40490FDB, // pi
	0xC0490FDB, // -pi
}

// corpusPair builds the operand vectors: the full cross product of the
// edge table followed by a seeded random sweep, so every run covers the
// same NaN/Inf/denormal/rounding cases plus a broad sample of ordinary
// patterns.
func corpusPair(t *testing.T) (a, b []uint32) {
	t.Helper()
	for _, x := range edgeValues {
		for _, y := range edgeValues {
			a = append(a, x)
			b = append(b, y)
		}
	}
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < 200000; i++ {
		a = append(a, rng.Uint32())
		b = append(b, rng.Uint32())
	}
	return a, b
}

// TestSlicesMatchScalar cross-checks every batched entry point against
// the scalar routine lane by lane over the full corpus.
func TestSlicesMatchScalar(t *testing.T) {
	a, b := corpusPair(t)
	n := len(a)
	dst := make([]uint32, n)

	cases := []struct {
		name   string
		batch  func(dst, a, b []uint32)
		scalar func(x, y uint32) uint32
	}{
		{"AddSlice", AddSlice, Add},
		{"SubSlice", SubSlice, Sub},
		{"MulSlice", MulSlice, Mul},
		{"DivSlice", DivSlice, Div},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.batch(dst, a, b)
			for i := 0; i < n; i++ {
				if want := tc.scalar(a[i], b[i]); dst[i] != want {
					t.Fatalf("%s lane %d: op(%#08x, %#08x) = %#08x, scalar %#08x",
						tc.name, i, a[i], b[i], dst[i], want)
				}
			}
		})
	}
}

// TestMACSliceMatchesScalar checks the accumulate form: the product must
// round through __mulsf3 before the __addsf3, never fusing.
func TestMACSliceMatchesScalar(t *testing.T) {
	a, b := corpusPair(t)
	n := len(a)
	// Accumulator seeds drawn from the same corpus, shifted so lanes mix
	// edge values with random ones.
	acc := make([]uint32, n)
	want := make([]uint32, n)
	for i := 0; i < n; i++ {
		acc[i] = b[(i+n/2)%n]
		want[i] = Add(acc[i], Mul(a[i], b[i]))
	}
	MACSlice(acc, a, b)
	for i := 0; i < n; i++ {
		if acc[i] != want[i] {
			t.Fatalf("MAC lane %d: acc=%#08x a=%#08x b=%#08x got %#08x want %#08x",
				i, b[(i+n/2)%n], a[i], b[i], acc[i], want[i])
		}
	}
}

// TestScaleAndFromInt32Slices covers the broadcast-multiply and int
// conversion forms.
func TestScaleAndFromInt32Slices(t *testing.T) {
	a, _ := corpusPair(t)
	dst := make([]uint32, len(a))
	for _, s := range []uint32{0x3F800000, 0x00000001, 0x7F800000, 0x7FC00000, 0xBF000000} {
		ScaleSlice(dst, a, s)
		for i := range a {
			if want := Mul(a[i], s); dst[i] != want {
				t.Fatalf("ScaleSlice lane %d by %#08x: got %#08x want %#08x", i, s, dst[i], want)
			}
		}
	}

	ints := []int32{0, 1, -1, math.MaxInt32, math.MinInt32, 1 << 24, (1 << 24) + 1, -(1 << 24) - 1, 16777217, 33554433}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		ints = append(ints, int32(rng.Uint32()))
	}
	got := make([]uint32, len(ints))
	FromInt32Slice(got, ints)
	for i, v := range ints {
		if want := FromInt32(v); got[i] != want {
			t.Fatalf("FromInt32Slice lane %d (%d): got %#08x want %#08x", i, v, got[i], want)
		}
	}
}

// TestSliceAliasing verifies the documented in-place forms: dst may be
// one of the operands.
func TestSliceAliasing(t *testing.T) {
	a, b := corpusPair(t)
	a, b = a[:4096], b[:4096]
	want := make([]uint32, len(a))
	for i := range a {
		want[i] = Div(a[i], b[i])
	}
	dst := append([]uint32(nil), a...)
	DivSlice(dst, dst, b) // dst aliases the numerator
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("aliased DivSlice lane %d: got %#08x want %#08x", i, dst[i], want[i])
		}
	}
}

// TestSliceLengthMismatchPanics confirms the layout-bug guard.
func TestSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	AddSlice(make([]uint32, 4), make([]uint32, 3), make([]uint32, 4))
}

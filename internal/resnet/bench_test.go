package resnet

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/tensor"
)

func benchInput(size int) *tensor.Tensor {
	t := tensor.New(3, size, size)
	for i := range t.Data {
		t.Data[i] = int16(i%61 - 30)
	}
	return t
}

// BenchmarkForwardHost measures the host reference ResNet-18 (lite).
func BenchmarkForwardHost(b *testing.B) {
	n, err := New(LiteConfig())
	if err != nil {
		b.Fatal(err)
	}
	in := benchInput(n.Cfg.InputSize)
	for i := 0; i < b.N; i++ {
		if _, _, err := n.Forward(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwardDPU measures the DPU-delegated ResNet-18.
func BenchmarkForwardDPU(b *testing.B) {
	n, err := New(LiteConfig())
	if err != nil {
		b.Fatal(err)
	}
	in := benchInput(n.Cfg.InputSize)
	maxK, maxN := n.GEMMBounds()
	sys, _ := host.NewSystem(8, host.DefaultConfig(dpu.O3))
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: 11, TileCols: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	var sec float64
	for i := 0; i < b.N; i++ {
		_, st, err := n.Forward(in, r)
		if err != nil {
			b.Fatal(err)
		}
		sec = st.Seconds
	}
	b.ReportMetric(sec, "sim-seconds")
}

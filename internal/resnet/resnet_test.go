package resnet

import (
	"math/rand"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/tensor"
)

func randInput(size int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(3, size, size)
	for i := range t.Data {
		t.Data[i] = tensor.Quantize(rng.Float64())
	}
	return t
}

func TestFullShapes(t *testing.T) {
	n, err := New(FullConfig())
	if err != nil {
		t.Fatal(err)
	}
	// conv1: 224 -> 112; pool: -> 56; stages end at 56/28/14/7.
	if c, h, _ := n.Shape(0); c != 64 || h != 112 {
		t.Errorf("conv1 = %dx%d", c, h)
	}
	if _, h, _ := n.Shape(1); h != 56 {
		t.Errorf("pool = %d", h)
	}
	last := len(n.Defs) - 1
	if c, h, w := n.Shape(last); c != 1000 || h != 1 || w != 1 {
		t.Errorf("classifier = %dx%dx%d", c, h, w)
	}
	if c, _, _ := n.Shape(last - 1); c != 512 {
		t.Errorf("avgpool channels = %d", c)
	}
}

func TestStructure(t *testing.T) {
	ls, err := BuildLayers(FullConfig())
	if err != nil {
		t.Fatal(err)
	}
	var convs, blocks, projections int
	for _, l := range ls {
		switch l.Kind {
		case Conv:
			convs++
		case BlockStart:
			blocks++
			if l.Project {
				projections++
			}
		}
	}
	// ResNet-18: conv1 + 8 blocks x 2 convs = 17 convs, 8 blocks, 3
	// projected shortcuts (stages 2-4).
	if convs != 17 || blocks != 8 || projections != 3 {
		t.Errorf("convs=%d blocks=%d projections=%d, want 17/8/3", convs, blocks, projections)
	}
}

func TestMACsFull(t *testing.T) {
	n, err := New(FullConfig())
	if err != nil {
		t.Fatal(err)
	}
	macs := float64(n.MACs())
	// ResNet-18@224 is ~1.8 GMACs.
	if macs < 1.6e9 || macs > 2.0e9 {
		t.Errorf("ResNet-18 MACs = %.4g, want ~1.8e9", macs)
	}
	t.Logf("ResNet-18 MACs = %.4g", macs)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{InputSize: 100, Classes: 10, WidthDiv: 8}); err == nil {
		t.Error("non-multiple-of-32 accepted")
	}
	if _, err := New(Config{InputSize: 64, Classes: 0, WidthDiv: 8}); err == nil {
		t.Error("zero classes accepted")
	}
}

func TestMaxPoolPad(t *testing.T) {
	in := tensor.New(1, 2, 2)
	in.Data = []int16{-5, -3, -8, -1}
	// 3x3 pool, stride 2, pad 1 over 2x2: one output = max of all (pads
	// never win, even with all-negative inputs).
	out := maxPoolPad(in, 3, 2, 1)
	if out.H != 1 || out.W != 1 || out.At(0, 0, 0) != -1 {
		t.Errorf("pool = %+v", out)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := tensor.New(2, 2, 2)
	in.Data = []int16{1, 2, 3, 4, -8, -8, -8, -8}
	out := globalAvgPool(in)
	if out.At(0, 0, 0) != 2 { // (1+2+3+4)/4 = 2 (trunc)
		t.Errorf("avg ch0 = %d", out.At(0, 0, 0))
	}
	if out.At(1, 0, 0) != -8 {
		t.Errorf("avg ch1 = %d", out.At(1, 0, 0))
	}
}

func TestForwardHostRuns(t *testing.T) {
	n, err := New(LiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	logits, _, err := n.Forward(randInput(64, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != 10 {
		t.Fatalf("logits = %d", len(logits))
	}
	if p := Predict(logits); p < 0 || p >= 10 {
		t.Errorf("predict = %d", p)
	}
}

func TestForwardInputValidation(t *testing.T) {
	n, _ := New(LiteConfig())
	if _, _, err := n.Forward(tensor.New(3, 32, 32), nil); err == nil {
		t.Error("wrong size accepted")
	}
}

// TestForwardDPUMatchesHost: the DPU-delegated ResNet — including the
// three projected shortcuts — must be bit-exact against the host.
func TestForwardDPUMatchesHost(t *testing.T) {
	n, err := New(LiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(64, 2)
	want, _, err := n.Forward(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxK, maxN := n.GEMMBounds()
	sys, _ := host.NewSystem(4, host.DefaultConfig(dpu.O3))
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := n.Forward(in, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: DPU %d, host %d", i, got[i], want[i])
		}
	}
	// 17 convs + 3 projections + 1 FC = 21 delegated GEMMs.
	if len(stats.Layers) != 21 {
		t.Errorf("delegated GEMMs = %d, want 21", len(stats.Layers))
	}
}

// TestForwardFaultRecovery: a forward pass with a quarter of the DPUs
// killed after their first launch must still produce bit-identical
// logits — the execution engine re-dispatches every dead DPU's row
// shard onto a survivor — and the recovery must be visible in the
// ForwardStats retry counters.
func TestForwardFaultRecovery(t *testing.T) {
	n, err := New(LiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(64, 4)
	want, _, err := n.Forward(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxK, maxN := n.GEMMBounds()
	for _, mode := range []struct {
		name string
		mode host.PipelineMode
	}{{"sync", host.PipelineOff}, {"pipelined", host.PipelineOn}} {
		t.Run(mode.name, func(t *testing.T) {
			sys, err := host.NewSystem(8, host.DefaultConfig(dpu.O3))
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
				MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64, Pipeline: mode.mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			sys.InjectFaults(dpu.FaultPlan{Seed: 1, DeadFrac: 0.25, DeadAfterLaunches: 1})
			got, stats, err := n.Forward(in, r)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("logit %d: degraded %d, host %d (must be bit-identical)", i, got[i], want[i])
				}
			}
			if stats.Retries == 0 {
				t.Error("no re-dispatches recorded; the fault plan should have killed DPUs")
			}
			var layerRetries int
			for _, ls := range stats.Layers {
				layerRetries += ls.Retries
			}
			if layerRetries != stats.Retries {
				t.Errorf("layer retries sum %d != total %d", layerRetries, stats.Retries)
			}
		})
	}
}

// TestResidualMatters: zeroing the residual path must change the output
// (the shortcuts are live, not dead code).
func TestResidualMatters(t *testing.T) {
	n, err := New(LiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(64, 3)
	want, _, err := n.Forward(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Build a copy whose blocks are plain sequences (no BlockEnd add):
	// simulate by zeroing projection weights and checking divergence is
	// not enough; instead compare against a net with different seed
	// shortcuts... simplest: perturb one projection weight and require
	// the logits to change.
	n.Weights[idxOfFirstProjection(n)].W[0] += 64
	got, _, err := n.Forward(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range want {
		if got[i] != want[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("perturbing the shortcut projection did not change the output")
	}
}

func idxOfFirstProjection(n *Network) int {
	for i, def := range n.Defs {
		if def.Kind == BlockStart && def.Project {
			return i
		}
	}
	return -1
}

func TestLayerKindString(t *testing.T) {
	kinds := []LayerKind{Conv, MaxPool, GlobalAvgPool, FC, BlockStart, BlockEnd}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

// Package resnet implements a quantized ResNet-18 on the shared GEMM
// substrate, completing the thesis's §6.1 future-work span "CNNs from
// AlexNet to ResNet": convolutions and the classifier lower to
// Algorithm 2 GEMMs and run on the simulated UPMEM system; residual
// adds, pooling and the global average pool stay on the host, exactly
// like the thesis's host/DPU partition.
//
// Weights are synthetic and seeded; correctness is bit-exact agreement
// between the host reference and the DPU path plus per-layer unit tests.
package resnet

import (
	"fmt"
	"math/rand"

	"pimdnn/internal/fixed"
	"pimdnn/internal/gemm"
	"pimdnn/internal/tensor"
)

// LayerKind enumerates ResNet layer types.
type LayerKind int

// Layer kinds. BlockStart/BlockEnd bracket a basic block: BlockStart
// remembers the residual input (and owns the optional 1×1 projection);
// BlockEnd performs the saturating residual add followed by ReLU.
const (
	Conv LayerKind = iota + 1
	MaxPool
	GlobalAvgPool
	FC
	BlockStart
	BlockEnd
)

func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case MaxPool:
		return "maxpool"
	case GlobalAvgPool:
		return "avgpool"
	case FC:
		return "fc"
	case BlockStart:
		return "block-start"
	case BlockEnd:
		return "block-end"
	default:
		return "layer?"
	}
}

// LayerDef describes one layer.
type LayerDef struct {
	Kind    LayerKind
	Filters int
	Size    int
	Stride  int
	Pad     int
	ReLU    bool
	// Project marks a BlockStart whose shortcut needs a 1×1 strided
	// projection (channel or resolution change).
	Project bool
}

// Config parameterizes the build.
type Config struct {
	// InputSize is the square input resolution (canonical: 224; any
	// multiple of 32 with InputSize/32 >= 1 closes the geometry).
	InputSize int
	// Classes is the classifier width (ImageNet: 1000).
	Classes int
	// WidthDiv divides channel widths (minimum 2) for simulation.
	WidthDiv int
	// Seed drives synthetic weight generation.
	Seed int64
}

// FullConfig is the canonical ResNet-18.
func FullConfig() Config {
	return Config{InputSize: 224, Classes: 1000, WidthDiv: 1, Seed: 1}
}

// LiteConfig is a reduced network for simulation.
func LiteConfig() Config {
	return Config{InputSize: 64, Classes: 10, WidthDiv: 16, Seed: 1}
}

func (c Config) chans(ch int) int {
	w := ch / c.WidthDiv
	if w < 2 {
		w = 2
	}
	return w
}

// BuildLayers emits the ResNet-18 sequence: conv1, maxpool, four stages
// of two basic blocks, global average pool, classifier.
func BuildLayers(cfg Config) ([]LayerDef, error) {
	if cfg.InputSize < 32 || cfg.InputSize%32 != 0 {
		return nil, fmt.Errorf("resnet: input size %d must be a positive multiple of 32", cfg.InputSize)
	}
	if cfg.Classes < 1 || cfg.WidthDiv < 1 {
		return nil, fmt.Errorf("resnet: bad config %+v", cfg)
	}
	var ls []LayerDef
	conv := func(filters, size, stride, pad int, relu bool) {
		ls = append(ls, LayerDef{Kind: Conv, Filters: filters, Size: size, Stride: stride, Pad: pad, ReLU: relu})
	}
	block := func(filters, stride int, project bool) {
		ls = append(ls, LayerDef{Kind: BlockStart, Filters: filters, Stride: stride, Project: project})
		conv(filters, 3, stride, 1, true)
		conv(filters, 3, 1, 1, false) // ReLU comes after the residual add
		ls = append(ls, LayerDef{Kind: BlockEnd})
	}

	conv(cfg.chans(64), 7, 2, 3, true)
	ls = append(ls, LayerDef{Kind: MaxPool, Size: 3, Stride: 2, Pad: 1})
	block(cfg.chans(64), 1, false)
	block(cfg.chans(64), 1, false)
	block(cfg.chans(128), 2, true)
	block(cfg.chans(128), 1, false)
	block(cfg.chans(256), 2, true)
	block(cfg.chans(256), 1, false)
	block(cfg.chans(512), 2, true)
	block(cfg.chans(512), 1, false)
	ls = append(ls, LayerDef{Kind: GlobalAvgPool})
	ls = append(ls, LayerDef{Kind: FC, Filters: cfg.Classes})
	return ls, nil
}

// Weights holds one GEMM-shaped layer's parameters; for BlockStart with
// projection it holds the 1×1 shortcut conv.
type Weights struct {
	W    []int16
	Bias []int16
}

type shape struct{ c, h, w int }

// Network is a built ResNet-18.
type Network struct {
	Cfg     Config
	Defs    []LayerDef
	Weights []Weights
	shapes  []shape
}

// New builds the network with inferred shapes and seeded weights.
func New(cfg Config) (*Network, error) {
	defs, err := BuildLayers(cfg)
	if err != nil {
		return nil, err
	}
	n := &Network{Cfg: cfg, Defs: defs}
	n.Weights = make([]Weights, len(defs))
	n.shapes = make([]shape, len(defs))

	rng := rand.New(rand.NewSource(cfg.Seed))
	cur := shape{c: 3, h: cfg.InputSize, w: cfg.InputSize}
	for i, def := range defs {
		switch def.Kind {
		case Conv:
			k := cur.c * def.Size * def.Size
			n.Weights[i] = synthWeights(rng, def.Filters, k)
			cur = shape{
				c: def.Filters,
				h: tensor.ConvOut(cur.h, def.Size, def.Stride, def.Pad),
				w: tensor.ConvOut(cur.w, def.Size, def.Stride, def.Pad),
			}
		case MaxPool:
			cur = shape{
				c: cur.c,
				h: tensor.ConvOut(cur.h, def.Size, def.Stride, def.Pad),
				w: tensor.ConvOut(cur.w, def.Size, def.Stride, def.Pad),
			}
		case GlobalAvgPool:
			cur = shape{c: cur.c, h: 1, w: 1}
		case FC:
			k := cur.c * cur.h * cur.w
			n.Weights[i] = synthWeights(rng, def.Filters, k)
			cur = shape{c: def.Filters, h: 1, w: 1}
		case BlockStart:
			if def.Project {
				// 1×1 strided projection for the shortcut.
				n.Weights[i] = synthWeights(rng, def.Filters, cur.c)
			}
			// Shape unchanged; the block's convs advance it.
		case BlockEnd:
			// Shape unchanged.
		}
		n.shapes[i] = cur
	}
	return n, nil
}

func synthWeights(rng *rand.Rand, m, k int) Weights {
	w := make([]int16, m*k)
	std := 1.0
	if k > 0 {
		std = 1.0 / sqrt(float64(k))
	}
	for i := range w {
		w[i] = tensor.Quantize(rng.NormFloat64() * std)
	}
	bias := make([]int16, m)
	for i := range bias {
		bias[i] = tensor.Quantize(rng.NormFloat64() * 0.1)
	}
	return Weights{W: w, Bias: bias}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 24; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Shape returns layer i's output (C, H, W).
func (n *Network) Shape(i int) (c, h, w int) {
	s := n.shapes[i]
	return s.c, s.h, s.w
}

// MACs returns the multiply-accumulate count (including projections).
func (n *Network) MACs() int64 {
	var total int64
	cur := shape{c: 3, h: n.Cfg.InputSize, w: n.Cfg.InputSize}
	for i, def := range n.Defs {
		s := n.shapes[i]
		switch def.Kind {
		case Conv:
			total += int64(cur.c) * int64(def.Size*def.Size) * int64(s.c) * int64(s.h) * int64(s.w)
		case FC:
			total += int64(cur.c) * int64(s.c)
		case BlockStart:
			if def.Project {
				// 1×1 stride-s projection runs over the block's output
				// resolution.
				outH := tensor.ConvOut(cur.h, 1, def.Stride, 0)
				outW := tensor.ConvOut(cur.w, 1, def.Stride, 0)
				total += int64(cur.c) * int64(def.Filters) * int64(outH) * int64(outW)
			}
		}
		cur = s
	}
	return total
}

// GEMMBounds returns the largest K and N any GEMM needs.
func (n *Network) GEMMBounds() (maxK, maxN int) {
	cur := shape{c: 3, h: n.Cfg.InputSize, w: n.Cfg.InputSize}
	consider := func(k, cols int) {
		if k > maxK {
			maxK = k
		}
		if cols > maxN {
			maxN = cols
		}
	}
	for i, def := range n.Defs {
		s := n.shapes[i]
		switch def.Kind {
		case Conv:
			consider(cur.c*def.Size*def.Size, s.h*s.w)
		case FC:
			consider(cur.c*cur.h*cur.w, 1)
		case BlockStart:
			if def.Project {
				outH := tensor.ConvOut(cur.h, 1, def.Stride, 0)
				consider(cur.c, outH*outH)
			}
		}
		cur = s
	}
	return maxK, maxN
}

func maxPoolPad(in *tensor.Tensor, size, stride, pad int) *tensor.Tensor {
	outH := tensor.ConvOut(in.H, size, stride, pad)
	outW := tensor.ConvOut(in.W, size, stride, pad)
	out := tensor.New(in.C, outH, outW)
	for c := 0; c < in.C; c++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				best := int16(-32768)
				for dy := 0; dy < size; dy++ {
					for dx := 0; dx < size; dx++ {
						iy, ix := oy*stride+dy-pad, ox*stride+dx-pad
						if iy < 0 || iy >= in.H || ix < 0 || ix >= in.W {
							continue // padding cells never win a max
						}
						if v := in.At(c, iy, ix); v > best {
							best = v
						}
					}
				}
				out.Set(c, oy, ox, best)
			}
		}
	}
	return out
}

func globalAvgPool(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.C, 1, 1)
	area := int32(in.H * in.W)
	for c := 0; c < in.C; c++ {
		var sum int32
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				sum += int32(in.At(c, y, x))
			}
		}
		out.Set(c, 0, 0, fixed.ClampInt16(sum/area))
	}
	return out
}

func applyBiasAct(c []int16, m, n int, bias []int16, relu bool) {
	for f := 0; f < m; f++ {
		b := bias[f]
		row := c[f*n : (f+1)*n]
		for j, v := range row {
			s := fixed.SatAdd16(v, b)
			if relu && s < 0 {
				s = 0
			}
			row[j] = s
		}
	}
}

// LayerStat records one delegated GEMM.
type LayerStat struct {
	Layer    int
	Kind     LayerKind
	DPUsUsed int
	Cycles   uint64
	Seconds  float64
	// Retries counts row shards re-dispatched after injected faults.
	Retries int
	// Tasklets is the per-DPU tasklet count the layer launched with.
	Tasklets int
	// PredictedSeconds is the planner's analytic latency for the layer;
	// zero when the runner runs a fixed mapping.
	PredictedSeconds float64
}

// ForwardStats aggregates a DPU forward pass.
type ForwardStats struct {
	Layers  []LayerStat
	Cycles  uint64
	Seconds float64
	// Retries sums the layers' fault re-dispatches; nonzero only
	// when the system runs under a fault plan.
	Retries int
}

// Forward runs one image; runner nil = host reference, otherwise GEMMs
// are delegated to the DPU system. Returns the class logits (Q10.5).
func (n *Network) Forward(input *tensor.Tensor, runner *gemm.Runner) ([]int16, *ForwardStats, error) {
	if input.C != 3 || input.H != n.Cfg.InputSize || input.W != n.Cfg.InputSize {
		return nil, nil, fmt.Errorf("resnet: input %dx%dx%d, want 3x%dx%d",
			input.C, input.H, input.W, n.Cfg.InputSize, n.Cfg.InputSize)
	}
	stats := &ForwardStats{}
	runGEMM := func(layer, m, cols, k int, w []int16, b []int16) ([]int16, error) {
		if runner == nil {
			return gemm.Reference(m, cols, k, 1, w, b)
		}
		if runner.MetricsOn() {
			runner.SetScope(fmt.Sprintf("resnet_layer%02d", layer))
		}
		if runner.ResidencyOn() {
			runner.SetWeightLayer(layer)
		}
		reqSp := runner.TraceSpan()
		if reqSp != nil {
			lsp := reqSp.StartChild(fmt.Sprintf("resnet_layer%02d", layer))
			lsp.SetAttr("layer", int64(layer))
			runner.SetTraceSpan(lsp)
		}
		c, st, err := runner.Multiply(m, cols, k, 1, w, b)
		if reqSp != nil {
			runner.TraceSpan().End()
			runner.SetTraceSpan(reqSp)
		}
		if err != nil {
			return nil, err
		}
		ls := LayerStat{
			Layer: layer, Kind: n.Defs[layer].Kind, DPUsUsed: st.DPUsUsed,
			Cycles: st.Cycles, Seconds: st.Seconds, Retries: st.Retries,
			Tasklets: st.Tasklets,
		}
		if mp, ok := runner.LastMapping(); ok {
			ls.PredictedSeconds = mp.PredictedSeconds
		}
		stats.Layers = append(stats.Layers, ls)
		stats.Cycles += st.Cycles
		stats.Seconds += st.Seconds
		stats.Retries += st.Retries
		return c, nil
	}

	cur := input
	var residual *tensor.Tensor
	for i, def := range n.Defs {
		s := n.shapes[i]
		switch def.Kind {
		case Conv:
			b, k, cols := tensor.Im2Col(cur, def.Size, def.Stride, def.Pad)
			c, err := runGEMM(i, def.Filters, cols, k, n.Weights[i].W, b)
			if err != nil {
				return nil, nil, fmt.Errorf("resnet: layer %d: %w", i, err)
			}
			applyBiasAct(c, def.Filters, cols, n.Weights[i].Bias, def.ReLU)
			cur = &tensor.Tensor{C: s.c, H: s.h, W: s.w, Data: c}
		case MaxPool:
			cur = maxPoolPad(cur, def.Size, def.Stride, def.Pad)
		case GlobalAvgPool:
			cur = globalAvgPool(cur)
		case FC:
			k := cur.Len()
			c, err := runGEMM(i, def.Filters, 1, k, n.Weights[i].W, cur.Data)
			if err != nil {
				return nil, nil, fmt.Errorf("resnet: layer %d: %w", i, err)
			}
			applyBiasAct(c, def.Filters, 1, n.Weights[i].Bias, false)
			cur = &tensor.Tensor{C: s.c, H: 1, W: 1, Data: c}
		case BlockStart:
			if def.Project {
				// 1×1 strided projection of the shortcut path.
				b, k, cols := tensor.Im2Col(cur, 1, def.Stride, 0)
				c, err := runGEMM(i, def.Filters, cols, k, n.Weights[i].W, b)
				if err != nil {
					return nil, nil, fmt.Errorf("resnet: projection %d: %w", i, err)
				}
				applyBiasAct(c, def.Filters, cols, n.Weights[i].Bias, false)
				outH := tensor.ConvOut(cur.H, 1, def.Stride, 0)
				outW := tensor.ConvOut(cur.W, 1, def.Stride, 0)
				residual = &tensor.Tensor{C: def.Filters, H: outH, W: outW, Data: c}
			} else {
				residual = cur
			}
		case BlockEnd:
			if residual == nil || residual.Len() != cur.Len() {
				return nil, nil, fmt.Errorf("resnet: layer %d: residual shape mismatch", i)
			}
			out := cur.Clone()
			for j := range out.Data {
				v := fixed.SatAdd16(out.Data[j], residual.Data[j])
				if v < 0 {
					v = 0 // post-add ReLU
				}
				out.Data[j] = v
			}
			cur = out
			residual = nil
		}
	}
	return cur.Data, stats, nil
}

// Predict returns the argmax class.
func Predict(logits []int16) int {
	best := 0
	for i := 1; i < len(logits); i++ {
		if logits[i] > logits[best] {
			best = i
		}
	}
	return best
}

package exec

import (
	"errors"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
)

// StreamSet describes a single-wave dispatch whose per-shard outputs
// are too large to stage all at once and are instead streamed back one
// DPU at a time (the gemm image-per-DPU batch: each DPU computes a full
// M×N product). The engine broadcasts Pre payloads, scatters the
// per-shard inputs, broadcasts Post payloads, launches one wave over
// all shards, then gathers shard outputs serially — pipelined mode
// ping-pongs two gather buffers through the command queue so shard i's
// Deliver overlaps shard i+1's queued gather. On the first fault the
// engine diverts to a buffered completion: intact shards are gathered
// into a private buffer first (so re-dispatch launches can safely reuse
// any surviving DPU), failed shards are re-run on survivors, and
// everything is delivered in input order.
type StreamSet struct {
	// Shards is the wave width: one shard per DPU, Shards <= NumDPUs.
	Shards int
	// Tasklets and Kernel configure the launch.
	Tasklets int
	Kernel   dpu.KernelFunc
	// Pre payloads are broadcast before the scatter (the weight
	// matrix); Post payloads after it (the parameter block).
	Pre, Post []Broadcast
	// Scatter is the per-shard input streams, full-system width (DPUs
	// beyond Shards receive padding, matching dpu_push_xfer).
	Scatter []Stream
	// OutRef/OutOff/OutBytes name each shard's output region.
	OutRef   host.SymbolRef
	OutOff   int64
	OutBytes int
	// Ins returns shard i's input transfers for a re-dispatch onto
	// another DPU. The returned slice is read immediately.
	Ins func(i int) []Xfer
	// Deliver consumes shard i's raw output. The buffer is engine-owned
	// and reused; Deliver must copy or decode before returning. Shards
	// are always delivered in input order.
	Deliver func(i int, raw []byte)
}

// growBytes returns buf resliced to n bytes, reallocating only when the
// capacity is insufficient. Contents are unspecified; callers overwrite.
func growBytes(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// gatherFault records one shard-gather failure: a dead DPU leaves the
// re-dispatch target pool and the shard joins the failed set. A
// non-report error is returned as fatal.
func (e *Engine) gatherFault(i int, failed []bool, err error) error {
	if _, ok := host.AsFaultReport(err); !ok {
		return err
	}
	if errors.Is(err, dpu.ErrDPUDead) {
		e.markDown(i)
	}
	failed[i] = true
	return nil
}

// copyFromShard gathers shard i's full output, queued in pipelined mode
// so the read stays serialized behind any in-flight commands.
func (e *Engine) copyFromShard(ss *StreamSet, i int, dst []byte) error {
	if e.pipe {
		return e.sys.EnqueueCopyFrom(i, ss.OutRef, ss.OutOff, dst).Wait()
	}
	return e.sys.CopyFromDPURefInto(i, ss.OutRef, ss.OutOff, dst)
}

// RunStream dispatches ss as one wave with streamed gather. st
// accumulates like Run's.
func (e *Engine) RunStream(ss *StreamSet, st *Stats) error {
	pre := *st
	st.Tasklets = ss.Tasklets
	var err error
	if e.pipe {
		err = e.runStreamPipelined(ss, st)
	} else {
		err = e.runStreamSync(ss, st)
	}
	if e.met != nil || e.ev != nil {
		e.account(pre, st, err)
	}
	return err
}

func (e *Engine) runStreamSync(ss *StreamSet, st *Stats) error {
	e.waveSeq++
	seq := e.waveSeq
	t0 := e.now()
	for _, b := range ss.Pre {
		if err := e.Broadcast(b); err != nil {
			return err
		}
	}
	// Down DPUs hold stale Pre payloads: their shards are re-dispatched
	// even when no operation reports an error for them.
	failed := e.seedFailed(ss.Shards)
	for _, s := range ss.Scatter {
		if err := e.mergeFailed(failed, e.sys.PushXferRef(s.Ref, s.Off, s.Bufs)); err != nil {
			return err
		}
	}
	for _, b := range ss.Post {
		if err := e.Broadcast(b); err != nil {
			return err
		}
	}
	e.reseedDown(failed)
	t1 := e.span("scatter", seq, ss.Shards, t0)

	ls, lerr := e.sys.LaunchOnInto(ss.Shards, ss.Tasklets, ss.Kernel, e.perDPUBuf(ss.Shards))
	if err := e.mergeFailed(failed, lerr); err != nil {
		return err
	}
	st.Waves++
	st.Cycles += ls.Cycles
	st.Seconds += ls.Seconds
	if ss.Shards > st.DPUsUsed {
		st.DPUsUsed = ss.Shards
	}
	if e.tsp != nil {
		e.tspLS, e.tspLSOK = ls, true
	}
	t2 := e.span("launch", seq, ss.Shards, t1)

	// Stream each intact shard's output through one reused buffer; at
	// the first failed shard, switch to the buffered completion path so
	// re-dispatch launches cannot clobber a not-yet-gathered result.
	e.raw[0] = growBytes(e.raw[0], ss.OutBytes)
	raw := e.raw[0][:ss.OutBytes]
	for i := 0; i < ss.Shards; i++ {
		if !failed[i] {
			err := e.sys.CopyFromDPURefInto(i, ss.OutRef, ss.OutOff, raw)
			if err == nil {
				ss.Deliver(i, raw)
				continue
			}
			if ferr := e.gatherFault(i, failed, err); ferr != nil {
				return ferr
			}
		}
		err := e.finishStreamBuffered(ss, i, failed, st)
		e.span("gather", seq, ss.Shards, t2)
		return err
	}
	e.span("gather", seq, ss.Shards, t2)
	return nil
}

// runStreamPipelined queues Pre → scatter → Post → launch, then
// ping-pongs two raw gather buffers so shard i's Deliver overlaps shard
// i+1's queued gather. Faults divert to the buffered completion path; a
// fault-free run streams without ever blocking the queue.
func (e *Engine) runStreamPipelined(ss *StreamSet, st *Stats) error {
	sys := e.sys
	e.waveSeq++
	seq := e.waveSeq
	t0 := e.now()
	// Resident broadcasts deliver (or skip) through the cache's
	// generation stamps up front; their queued ops serialize like any
	// other command, so ordering against the scatter below holds.
	pPre := make([]host.Pending, len(ss.Pre))
	for i, b := range ss.Pre {
		if b.Resident != nil {
			if err := e.broadcastResident(b); err != nil {
				sys.Sync()
				return err
			}
			continue
		}
		pPre[i] = sys.EnqueueCopyTo(b.Ref, b.Off, b.Data)
	}
	pSc := make([]host.Pending, len(ss.Scatter))
	for i, s := range ss.Scatter {
		pSc[i] = sys.EnqueuePushXfer(s.Ref, s.Off, s.Bufs)
	}
	pPost := make([]host.Pending, len(ss.Post))
	for i, b := range ss.Post {
		if b.Resident != nil {
			if err := e.broadcastResident(b); err != nil {
				sys.Sync()
				return err
			}
			continue
		}
		pPost[i] = sys.EnqueueCopyTo(b.Ref, b.Off, b.Data)
	}
	// Claim the broadcast handles before the launch joins the queue: a
	// DPU the redelivery cannot reach must be marked down — its shard
	// re-dispatched — rather than compute on stale data.
	for i, b := range ss.Pre {
		if b.Resident != nil {
			continue
		}
		if err := e.finishBroadcast(pPre[i].Wait(), b); err != nil {
			sys.Sync()
			return err
		}
	}
	failed := e.seedFailed(ss.Shards)
	for _, p := range pSc {
		if err := e.mergeFailed(failed, p.Wait()); err != nil {
			sys.Sync()
			return err
		}
	}
	for i, b := range ss.Post {
		if b.Resident != nil {
			continue
		}
		if err := e.finishBroadcast(pPost[i].Wait(), b); err != nil {
			sys.Sync()
			return err
		}
	}
	e.reseedDown(failed)
	t1 := e.span("scatter", seq, ss.Shards, t0)

	pL := sys.EnqueueLaunch(ss.Shards, ss.Tasklets, ss.Kernel, &e.lstats)
	if err := e.mergeFailed(failed, pL.Wait()); err != nil {
		sys.Sync()
		return err
	}
	st.Waves++
	st.Cycles += e.lstats.Cycles
	st.Seconds += e.lstats.Seconds
	if ss.Shards > st.DPUsUsed {
		st.DPUsUsed = ss.Shards
	}
	if e.tsp != nil {
		e.tspLS, e.tspLSOK = e.lstats, true
	}
	t2 := e.span("launch", seq, ss.Shards, t1)

	for i := range failed {
		if failed[i] {
			err := e.finishStreamBuffered(ss, 0, failed, st)
			e.span("gather", seq, ss.Shards, t2)
			return err
		}
	}

	e.raw[0] = growBytes(e.raw[0], ss.OutBytes)
	e.raw[1] = growBytes(e.raw[1], ss.OutBytes)
	var pend [2]host.Pending
	for i := 0; i < ss.Shards; i++ {
		pend[i&1] = sys.EnqueueCopyFrom(i, ss.OutRef, ss.OutOff, e.raw[i&1][:ss.OutBytes])
		if i > 0 {
			if err := pend[(i-1)&1].Wait(); err != nil {
				if ferr := e.gatherFault(i-1, failed, err); ferr != nil {
					sys.Sync()
					return ferr
				}
				// Claim the in-flight gather for shard i as well, then
				// finish shards [i-1, Shards) through the buffered path.
				if gerr := pend[i&1].Wait(); gerr != nil {
					if ferr := e.gatherFault(i, failed, gerr); ferr != nil {
						sys.Sync()
						return ferr
					}
				}
				err := e.finishStreamBuffered(ss, i-1, failed, st)
				e.span("gather", seq, ss.Shards, t2)
				return err
			}
			ss.Deliver(i-1, e.raw[(i-1)&1][:ss.OutBytes])
		}
	}
	last := ss.Shards - 1
	if err := pend[last&1].Wait(); err != nil {
		if ferr := e.gatherFault(last, failed, err); ferr != nil {
			sys.Sync()
			return ferr
		}
		err := e.finishStreamBuffered(ss, last, failed, st)
		e.span("gather", seq, ss.Shards, t2)
		return err
	}
	ss.Deliver(last, e.raw[last&1][:ss.OutBytes])
	e.span("gather", seq, ss.Shards, t2)
	return nil
}

// finishStreamBuffered completes shards [from, Shards) after a fault
// broke the streaming gather. The intact shards are gathered into a
// private buffer FIRST, so the re-dispatch launches that follow can
// safely reuse any surviving DPU — including one whose own shard had
// not been delivered yet — then the failed shards are re-run on
// survivors, and finally everything is delivered in order.
func (e *Engine) finishStreamBuffered(ss *StreamSet, from int, failed []bool, st *Stats) error {
	rawFull := make([]byte, (ss.Shards-from)*ss.OutBytes)
	slot := func(i int) []byte { return rawFull[(i-from)*ss.OutBytes : (i-from+1)*ss.OutBytes] }
	for i := from; i < ss.Shards; i++ {
		if failed[i] {
			continue
		}
		if err := e.copyFromShard(ss, i, slot(i)); err != nil {
			if ferr := e.gatherFault(i, failed, err); ferr != nil {
				return ferr
			}
		}
	}
	for i := from; i < ss.Shards; i++ {
		if failed[i] {
			// A StreamSet's per-shard inputs never overlap a resident
			// region (resident payloads are the wave-invariant Pre/Post
			// broadcasts, delivered to every live DPU), so there are no
			// entries to invalidate on the retry target.
			if err := e.redispatch(i, ss.Ins(i), nil, Xfer{Ref: ss.OutRef, Off: ss.OutOff, Data: slot(i)}, ss.Tasklets, ss.Kernel, st); err != nil {
				return err
			}
		}
	}
	for i := from; i < ss.Shards; i++ {
		ss.Deliver(i, slot(i))
	}
	return nil
}

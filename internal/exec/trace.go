package exec

import (
	"time"

	"pimdnn/internal/trace"
)

// Request-tracing integration. A runner that dispatches on behalf of a
// traced request installs the request's span on its engine; the
// engine's existing wave phases (scatter/launch/gather/retry
// synchronously, the fused wave when pipelined) then double as child
// spans of that request, launch spans carry the wave's simulated
// cycle/energy attributes, and each launch fans out per-DPU
// "dpu_kernel" child spans whose extents are the *simulated* kernel
// windows — so a Perfetto view shows wall-clock dispatch machinery and
// modeled device time on one tree. With no span installed the engine's
// fast path is unchanged: one nil check, zero allocations, identical
// results.

// maxKernelSpans caps per-DPU kernel child spans per launch. A
// full-array wave has 2,560 DPUs; tracing them all would dwarf the
// rest of the trace, so the first 64 get spans and the launch span
// notes how many were elided (the aggregate attrs still cover all).
const maxKernelSpans = 64

// SetTraceSpan installs sp as the parent for dispatch spans — on the
// engine and on the underlying System's command queue, so queued
// commands issued for this work are attributed to the same request.
// nil uninstalls both. Call between dispatches only, like Configure.
func (e *Engine) SetTraceSpan(sp *trace.Span) {
	e.tsp = sp
	e.sys.SetTraceSpan(sp)
}

// TraceSpan returns the installed request span (nil when untraced).
func (e *Engine) TraceSpan() *trace.Span { return e.tsp }

// traceSpan records one wave phase as a child of the request span.
// Launch/wave phases additionally carry the launch's aggregate
// simulated cost and per-DPU kernel spans, staged in e.tspLS by the
// call site.
func (e *Engine) traceSpan(name string, wave, shards int, t0, t1 time.Time) {
	c := e.tsp.StartChildAt(name, t0)
	c.SetAttr("wave", int64(wave))
	c.SetAttr("shards", int64(shards))
	if e.tspLSOK {
		e.tspLSOK = false
		ls := &e.tspLS
		c.SetAttr("cycles", int64(ls.Cycles))
		c.SetAttr("sim_ns", ls.Time.Nanoseconds())
		c.SetAttr("energy_uj", int64(ls.EnergyJ*1e6))
		n := len(ls.PerDPU)
		lim := n
		if lim > maxKernelSpans {
			lim = maxKernelSpans
			c.SetAttr("dpu_spans_elided", int64(n-lim))
		}
		for d := 0; d < lim; d++ {
			per := &ls.PerDPU[d]
			k := c.StartChildAt("dpu_kernel", t0)
			k.SetAttr("dpu", int64(d))
			per.AnnotateSpan(k)
			k.EndAt(t0.Add(per.Time))
		}
	}
	c.EndAt(t1)
}

package exec

// White-box WeightCache tests: arena reservation, LRU eviction order,
// free-list coalescing, and the generation-stamp protocol. The
// end-to-end delivery paths (scatterResident/broadcastResident) are
// exercised through the gemm and model packages.

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/metrics"
)

func newCacheSys(t *testing.T, nd int) *host.System {
	t.Helper()
	sys, err := host.NewSystem(nd, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

func TestWeightCacheValidation(t *testing.T) {
	for _, capBytes := range []int64{0, -8, 4, 12} {
		sys := newCacheSys(t, 1)
		if _, err := NewWeightCache(sys, capBytes); err == nil {
			t.Errorf("NewWeightCache(capacity=%d) accepted", capBytes)
		}
	}
	sys := newCacheSys(t, 1)
	c, err := NewWeightCache(sys, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 4096 {
		t.Errorf("Capacity() = %d, want 4096", c.Capacity())
	}
	if got := c.ResidentBytes(); got != 0 {
		t.Errorf("fresh cache ResidentBytes() = %d, want 0", got)
	}
}

// TestWeightCacheLRUEviction pins the eviction order: with the arena
// full, reserving for a new model evicts the least-recently-used other
// model — not the most recent, and never the reserving model itself.
func TestWeightCacheLRUEviction(t *testing.T) {
	sys := newCacheSys(t, 2)
	reg := metrics.NewRegistry()
	sys.EnableMetrics(reg)
	c, err := NewWeightCache(sys, 64)
	if err != nil {
		t.Fatal(err)
	}
	eb, ok := c.Model("b").Entry(0, 32, 0xb)
	if !ok {
		t.Fatal("model b entry rejected")
	}
	ea, ok := c.Model("a").Entry(0, 32, 0xa)
	if !ok {
		t.Fatal("model a entry rejected")
	}
	// b is oldest; touching a (already newest) must not change that.
	c.Model("a")
	if got := c.Models(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("Models() = %v, want [b a]", got)
	}
	// The arena is full: c's reservation must evict exactly b.
	ec, ok := c.Model("c").Entry(0, 32, 0xc)
	if !ok {
		t.Fatal("model c entry rejected despite evictable b")
	}
	if eb.Live() {
		t.Error("LRU model b still live after eviction")
	}
	if !ea.Live() || !ec.Live() {
		t.Error("a or c lost its reservation; only b should be evicted")
	}
	if got := c.ResidentBytes(); got != 64 {
		t.Errorf("ResidentBytes() = %d, want 64", got)
	}
	if got := reg.Counter("pim_wcache_evictions_total").Value(); got != 1 {
		t.Errorf("evictions counter = %d, want 1", got)
	}
	// A dead entry's stamps can never validate again.
	if eb.Current(0) || eb.Current(1) {
		t.Error("evicted entry reports a current DPU")
	}
}

// TestWeightCacheEvictCoalesce: a reservation larger than any single
// evicted range must keep evicting until the coalesced free list fits
// it — three 16-byte victims merge into one 48-byte span.
func TestWeightCacheEvictCoalesce(t *testing.T) {
	sys := newCacheSys(t, 1)
	c, err := NewWeightCache(sys, 48)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if _, ok := c.Model(name).Entry(0, 16, 0); !ok {
			t.Fatalf("model %s entry rejected", name)
		}
	}
	ed, ok := c.Model("d").Entry(0, 48, 0xd)
	if !ok {
		t.Fatal("48-byte entry rejected after evicting three 16-byte models")
	}
	if ed.Off() != 0 || ed.Size() != 48 {
		t.Errorf("entry at off=%d size=%d, want the full coalesced arena [0,48)", ed.Off(), ed.Size())
	}
	if got := c.ResidentBytes(); got != 48 {
		t.Errorf("ResidentBytes() = %d, want 48", got)
	}
}

func TestWeightCacheTooLarge(t *testing.T) {
	sys := newCacheSys(t, 1)
	c, err := NewWeightCache(sys, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Model("m").Entry(0, 40, 0); ok {
		t.Error("entry larger than the arena accepted")
	}
	// A model never evicts itself: with 24 of 32 bytes held by m,
	// a second 16-byte entry cannot fit and must be refused.
	if _, ok := c.Model("m").Entry(1, 24, 0); !ok {
		t.Fatal("24-byte entry rejected in empty arena")
	}
	if _, ok := c.Model("m").Entry(2, 16, 0); ok {
		t.Error("reservation succeeded by evicting its own model")
	}
}

// TestWeightCacheGenerations pins the stamp protocol: delivery stamps
// one DPU, invalidation clears it, a content-hash change or Outdate
// bumps the generation so every stamp goes stale at once.
func TestWeightCacheGenerations(t *testing.T) {
	sys := newCacheSys(t, 4)
	c, err := NewWeightCache(sys, 64)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Model("m")
	e, ok := m.Entry(0, 16, 0x1111)
	if !ok {
		t.Fatal("entry rejected")
	}
	if e.Current(2) {
		t.Error("undelivered entry current")
	}
	e.markDelivered(2)
	if !e.Current(2) || e.Current(1) {
		t.Error("stamp did not isolate to DPU 2")
	}
	e.InvalidateDPU(2)
	if e.Current(2) {
		t.Error("InvalidateDPU left the stamp current")
	}

	// Same key, same size, new hash: same entry, all stamps stale.
	e.markDelivered(0)
	e2, ok := m.Entry(0, 16, 0x2222)
	if !ok || e2 != e {
		t.Fatalf("re-keyed entry = %p ok=%v, want same entry %p", e2, ok, e)
	}
	if e.Current(0) {
		t.Error("hash change left a stale stamp current")
	}

	e.markDelivered(3)
	e.Outdate()
	if e.Current(3) {
		t.Error("Outdate left a stamp current")
	}

	// Size change reallocates: the old entry dies, a fresh one replaces it.
	e.markDelivered(1)
	e3, ok := m.Entry(0, 32, 0x3333)
	if !ok {
		t.Fatal("resized entry rejected")
	}
	if e3 == e {
		t.Error("size change reused the old reservation")
	}
	if e.Live() {
		t.Error("old entry still live after size-change realloc")
	}
	if got := c.ResidentBytes(); got != 32 {
		t.Errorf("ResidentBytes() = %d, want 32 after realloc", got)
	}
}

// TestWeightCacheExternal: external entries join LRU bookkeeping
// without consuming arena bytes, and eviction outdates their stamps
// instead of freeing arena.
func TestWeightCacheExternal(t *testing.T) {
	sys := newCacheSys(t, 2)
	if err := sys.AllocMRAM("ext_payload", 128); err != nil {
		t.Fatal(err)
	}
	ref, err := sys.Resolve("ext_payload")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewWeightCache(sys, 16)
	if err != nil {
		t.Fatal(err)
	}
	ext := c.Model("ebnn").External(0, ref, 0, 128)
	if ext.Abs() != 0 || ext.Size() != 128 {
		t.Errorf("external entry abs=%d size=%d, want abs 0 size 128", ext.Abs(), ext.Size())
	}
	if again := c.Model("ebnn").External(0, ref, 0, 128); again != ext {
		t.Error("repeated External did not return the existing entry")
	}
	// The external model holds no arena, so the full 16 bytes are free.
	if _, ok := c.Model("m").Entry(0, 16, 0); !ok {
		t.Fatal("arena entry rejected despite external-only occupancy")
	}
	// Forcing an eviction with the external model as LRU drops its
	// stamps (Live false) without touching arena accounting.
	ext.markDelivered(1)
	if _, ok := c.Model("m2").Entry(0, 16, 0); !ok {
		t.Fatal("entry rejected despite two evictable models")
	}
	if ext.Live() {
		t.Error("external LRU model survived eviction")
	}
	if ext.Current(1) {
		t.Error("evicted external entry still current on DPU 1")
	}
}

package exec_test

import (
	"sync"
	"testing"

	"pimdnn/internal/exec"
	"pimdnn/internal/host"
)

// TestMultiRankPipelinedStress drives a pipelined engine over a
// multi-rank system while another goroutine performs synchronous
// transfers on its own symbol. The queued waves tally rank occupancy in
// the executor goroutine and the synchronous path tallies it in the
// caller's — the same split the host keeps for its per-DPU error
// scratch — so run under -race (make ci does) this is the data-race
// gate for the rank accounting. Results must stay bit-identical on
// every iteration regardless of interleaving.
func TestMultiRankPipelinedStress(t *testing.T) {
	const (
		nd     = 32
		rounds = 50
	)
	vals := make([]uint32, 3*nd) // 3 waves per round
	for i := range vals {
		vals[i] = uint32(2000 + 13*i)
	}
	want := toyWant(vals)
	w := newToySetTopo(t, nd, vals, host.Topology{DPUsPerRank: 4})
	if err := w.sys.AllocMRAM("stress_buf", 64); err != nil {
		t.Fatal(err)
	}
	eng := exec.New(w.sys, exec.Config{Pipeline: host.PipelineOn})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		bufs := make([][]byte, nd)
		dst := make([][]byte, nd)
		for i := range bufs {
			bufs[i] = make([]byte, 64)
			dst[i] = make([]byte, 64)
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := w.sys.PushXfer("stress_buf", 0, bufs); err != nil {
				t.Errorf("concurrent PushXfer: %v", err)
				return
			}
			if err := w.sys.GatherXferInto("stress_buf", 0, 64, dst); err != nil {
				t.Errorf("concurrent GatherXferInto: %v", err)
				return
			}
		}
	}()

	for round := 0; round < rounds; round++ {
		var st exec.Stats
		if err := eng.Run(w, &st); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range want {
			if w.got[i] != want[i] {
				t.Fatalf("round %d shard %d: got %d, want %d", round, i, w.got[i], want[i])
			}
			w.got[i] = 0
		}
	}
	close(stop)
	wg.Wait()
}

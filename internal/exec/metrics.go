package exec

import (
	"context"
	"log/slog"

	"pimdnn/internal/metrics"
)

// engineMetrics is the engine's resolved instrument set, built from the
// host System's registry at Configure time. All instruments are
// nil-safe; the engine gates the whole block on one e.met nil check, so
// an unwired engine's dispatch loop is telemetry-free.
type engineMetrics struct {
	// Wall-clock phase histograms (nanoseconds): scatter/launch/gather/
	// retry on the synchronous path, the fused wave command pipelined.
	scatter *metrics.Histogram
	launch  *metrics.Histogram
	gather  *metrics.Histogram
	retry   *metrics.Histogram
	wave    *metrics.Histogram

	waves   *metrics.Counter
	retries *metrics.Counter
	cycles  *metrics.Counter
	down    *metrics.Gauge

	// reg resolves per-layer scoped counters lazily (SetScope names
	// arrive at run time).
	reg *metrics.Registry
}

func newEngineMetrics(reg *metrics.Registry) *engineMetrics {
	ns := metrics.ExpBuckets(1000, 4, 12) // 1µs .. ~4.2s
	return &engineMetrics{
		scatter: reg.LabeledHistogram("pim_exec_phase_ns", "phase", "scatter", ns),
		launch:  reg.LabeledHistogram("pim_exec_phase_ns", "phase", "launch", ns),
		gather:  reg.LabeledHistogram("pim_exec_phase_ns", "phase", "gather", ns),
		retry:   reg.LabeledHistogram("pim_exec_phase_ns", "phase", "retry", ns),
		wave:    reg.LabeledHistogram("pim_exec_phase_ns", "phase", "wave", ns),
		waves:   reg.Counter("pim_exec_waves_total"),
		retries: reg.Counter("pim_exec_retries_total"),
		cycles:  reg.Counter("pim_exec_cycles_total"),
		down:    reg.Gauge("pim_exec_down_dpus"),
		reg:     reg,
	}
}

// phase maps a span name to its histogram (allocation-free).
func (m *engineMetrics) phase(name string) *metrics.Histogram {
	switch name {
	case "scatter":
		return m.scatter
	case "launch":
		return m.launch
	case "gather":
		return m.gather
	case "retry":
		return m.retry
	case "wave":
		return m.wave
	}
	return nil
}

// SetScope names the layer (or other workload phase) the next runs
// belong to: run deltas are additionally accumulated into
// pim_layer_{cycles,waves,retries}_total{layer="name"}, so a network's
// ForwardStats can be decomposed per layer from one registry snapshot.
// An empty name clears the scope. Without telemetry wired this is a
// plain field store.
func (e *Engine) SetScope(name string) { e.scope = name }

// MetricsOn reports whether a registry is wired to the engine's System,
// letting callers skip scope-name formatting when telemetry is off.
func (e *Engine) MetricsOn() bool { return e.met != nil }

// account folds one Run/RunStream's Stats delta into the engine's
// counters, the current layer scope, and the event log. err is the
// run's outcome (fatal errors are logged, not counted as waves).
func (e *Engine) account(pre Stats, st *Stats, err error) {
	dWaves := st.Waves - pre.Waves
	dRetries := st.Retries - pre.Retries
	dCycles := st.Cycles - pre.Cycles
	if m := e.met; m != nil {
		m.waves.Add(uint64(dWaves))
		m.retries.Add(uint64(dRetries))
		m.cycles.Add(dCycles)
		m.down.Set(int64(e.nDown))
		if e.scope != "" {
			m.reg.LabeledCounter("pim_layer_cycles_total", "layer", e.scope).Add(dCycles)
			m.reg.LabeledCounter("pim_layer_waves_total", "layer", e.scope).Add(uint64(dWaves))
			m.reg.LabeledCounter("pim_layer_retries_total", "layer", e.scope).Add(uint64(dRetries))
		}
	}
	if e.ev != nil {
		attrs := make([]slog.Attr, 0, 6)
		if e.scope != "" {
			attrs = append(attrs, slog.String("layer", e.scope))
		}
		attrs = append(attrs,
			slog.Int("waves", dWaves),
			slog.Uint64("cycles", dCycles),
			slog.Int("retries", dRetries),
			slog.Int("down_dpus", e.nDown),
		)
		if err != nil {
			attrs = append(attrs, slog.String("error", err.Error()))
			e.ev.LogAttrs(context.Background(), slog.LevelError, "run", attrs...)
			return
		}
		e.ev.LogAttrs(context.Background(), slog.LevelInfo, "run", attrs...)
	}
}

// eventWave logs one completed wave (dispatch phases done, before
// decode) when an event logger is wired.
func (e *Engine) eventWave(seq, shards int) {
	if e.ev == nil {
		return
	}
	attrs := make([]slog.Attr, 0, 3)
	if e.scope != "" {
		attrs = append(attrs, slog.String("layer", e.scope))
	}
	attrs = append(attrs, slog.Int("wave", seq), slog.Int("shards", shards))
	e.ev.LogAttrs(context.Background(), slog.LevelDebug, "wave", attrs...)
}

// eventDown logs one DPU leaving the dispatch pool.
func (e *Engine) eventDown(i int) {
	if e.ev == nil {
		return
	}
	e.ev.LogAttrs(context.Background(), slog.LevelWarn, "dpu_down",
		slog.Int("dpu", i), slog.Int("down_dpus", e.nDown))
}

package exec_test

import (
	"encoding/binary"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/exec"
	"pimdnn/internal/host"
	"pimdnn/internal/trace"
)

// toySet is a minimal WorkSet: shard i carries one uint32, the kernel
// computes v*3+7, and Decode collects the transformed values. Buffers
// are 8 bytes per DPU (the MRAM DMA granularity).
type toySet struct {
	sys    *host.System
	refIn  host.SymbolRef
	refOut host.SymbolRef
	kern   dpu.KernelFunc

	vals []uint32
	got  []uint32

	inBufs  [2][][]byte
	outBufs [2][][]byte
	streams []exec.Stream
}

func newToySet(t *testing.T, nd int, vals []uint32) *toySet {
	t.Helper()
	return newToySetTopo(t, nd, vals, host.Topology{})
}

func newToySetTopo(t *testing.T, nd int, vals []uint32, topo host.Topology) *toySet {
	t.Helper()
	cfg := host.DefaultConfig(dpu.O3)
	cfg.Topology = topo
	sys, err := host.NewSystem(nd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	for _, sym := range []struct {
		name string
		wram bool
	}{{"toy_in", false}, {"toy_out", false}, {"toy_wram", true}} {
		if sym.wram {
			err = sys.AllocWRAM(sym.name, 8)
		} else {
			err = sys.AllocMRAM(sym.name, 8)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	w := &toySet{sys: sys, vals: vals, got: make([]uint32, len(vals))}
	if w.refIn, err = sys.Resolve("toy_in"); err != nil {
		t.Fatal(err)
	}
	if w.refOut, err = sys.Resolve("toy_out"); err != nil {
		t.Fatal(err)
	}
	look := func(name string) int64 {
		s, _ := sys.DPU(0).Symbol(name)
		return s.Offset
	}
	inOff, outOff, wramOff := look("toy_in"), look("toy_out"), look("toy_wram")
	w.kern = func(tk *dpu.Tasklet) error {
		if tk.ID() != 0 {
			return nil
		}
		tk.MRAMToWRAM(wramOff, inOff, 8)
		v := tk.Load32(wramOff)
		tk.Store32(wramOff, v*3+7)
		tk.WRAMToMRAM(outOff, wramOff, 8)
		return nil
	}
	for slot := 0; slot < 2; slot++ {
		w.inBufs[slot] = make([][]byte, nd)
		w.outBufs[slot] = make([][]byte, nd)
		for d := 0; d < nd; d++ {
			w.inBufs[slot][d] = make([]byte, 8)
			w.outBufs[slot][d] = make([]byte, 8)
		}
	}
	return w
}

func toyWant(vals []uint32) []uint32 {
	want := make([]uint32, len(vals))
	for i, v := range vals {
		want[i] = v*3 + 7
	}
	return want
}

func (w *toySet) Shards() int                  { return len(w.vals) }
func (w *toySet) Tasklets() int                { return 2 }
func (w *toySet) Kernel() dpu.KernelFunc       { return w.kern }
func (w *toySet) Broadcasts() []exec.Broadcast { return nil }

func (w *toySet) Encode(slot, start, n int) {
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(w.inBufs[slot][i], w.vals[start+i])
	}
}

func (w *toySet) Scatter(slot, n int) []exec.Stream {
	w.streams = append(w.streams[:0], exec.Stream{Ref: w.refIn, Bufs: w.inBufs[slot]})
	return w.streams
}

func (w *toySet) Gather(slot, n int) exec.Stream {
	return exec.Stream{Ref: w.refOut, Bufs: w.outBufs[slot]}
}

func (w *toySet) Decode(slot, shard, i int) {
	w.got[shard] = binary.LittleEndian.Uint32(w.outBufs[slot][i])
}

// TestEngineModes runs the same toy WorkSet through every dispatch path
// — serial transfers (below the host pool's parallel threshold), sharded
// transfers (a DPU count above it), pipelined dispatch, and both paths
// under a dead-DPU fault plan — each in the default single-rank topology
// AND split across several small ranks. Outputs must be identical
// everywhere; simulated launch accounting and transfer BYTES must be
// identical between a topology and its single-rank twin (rank grouping
// must never change what ran, only the modeled transfer time, which the
// rank-parallel model strictly shrinks).
func TestEngineModes(t *testing.T) {
	const shards = 24 // 3 full waves on 8 DPUs, 1 partial wave on 40
	vals := make([]uint32, shards)
	for i := range vals {
		vals[i] = uint32(1000 + 17*i)
	}
	want := toyWant(vals)
	deadPlan := &dpu.FaultPlan{Seed: 1, DeadFrac: 0.3, DeadAfterLaunches: 1}

	cases := []struct {
		name string
		dpus int
		mode host.PipelineMode
		plan *dpu.FaultPlan
		topo host.Topology
	}{
		{name: "serial", dpus: 8, mode: host.PipelineOff},
		{name: "sharded", dpus: 40, mode: host.PipelineOff}, // above the transfer pool's parallel threshold
		{name: "pipelined", dpus: 8, mode: host.PipelineOn},
		{name: "faulted", dpus: 8, mode: host.PipelineOff, plan: deadPlan},
		{name: "faulted-pipelined", dpus: 8, mode: host.PipelineOn, plan: deadPlan},
		// The same paths again, with the DPUs split into 2-DPU (or, for
		// the 40-DPU case, 8-DPU) ranks.
		{name: "serial-ranked", dpus: 8, mode: host.PipelineOff, topo: host.Topology{DPUsPerRank: 2}},
		{name: "sharded-ranked", dpus: 40, mode: host.PipelineOff, topo: host.Topology{DPUsPerRank: 8}},
		{name: "pipelined-ranked", dpus: 8, mode: host.PipelineOn, topo: host.Topology{DPUsPerRank: 2}},
		{name: "faulted-ranked", dpus: 8, mode: host.PipelineOff, plan: deadPlan, topo: host.Topology{DPUsPerRank: 2}},
		{name: "faulted-pipelined-ranked", dpus: 8, mode: host.PipelineOn, plan: deadPlan, topo: host.Topology{DPUsPerRank: 2}},
	}
	stats := make(map[string]exec.Stats)
	dpuTime := make(map[string]float64)
	xfers := make(map[string]host.XferStats)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newToySetTopo(t, tc.dpus, vals, tc.topo)
			eng := exec.New(w.sys, exec.Config{Pipeline: tc.mode})
			if tc.plan != nil {
				w.sys.InjectFaults(*tc.plan)
			}
			var st exec.Stats
			if err := eng.Run(w, &st); err != nil {
				t.Fatalf("Run: %v", err)
			}
			for i := range want {
				if w.got[i] != want[i] {
					t.Fatalf("shard %d: got %d, want %d", i, w.got[i], want[i])
				}
			}
			if tc.plan != nil && st.Retries == 0 {
				t.Error("fault plan injected but no re-dispatches recorded")
			}
			if tc.plan == nil && st.Retries != 0 {
				t.Errorf("fault-free run recorded %d retries", st.Retries)
			}
			if st.Cycles == 0 || st.Seconds <= 0 {
				t.Errorf("empty accounting: %+v", st)
			}
			if w.sys.DPUTime() <= 0 {
				t.Error("DPU clock did not advance")
			}
			stats[tc.name] = st
			dpuTime[tc.name] = w.sys.DPUTime().Seconds()
			xfers[tc.name] = w.sys.TransferStats()
		})
	}

	// The pipelined path must account exactly like the synchronous one:
	// same waves, same cycles, same transfer traffic, same DPU clock.
	if stats["serial"] != stats["pipelined"] {
		t.Errorf("sync stats %+v != pipelined stats %+v", stats["serial"], stats["pipelined"])
	}
	if dpuTime["serial"] != dpuTime["pipelined"] {
		t.Errorf("sync DPUTime %g != pipelined %g", dpuTime["serial"], dpuTime["pipelined"])
	}
	if xfers["serial"] != xfers["pipelined"] {
		t.Errorf("sync transfers %+v != pipelined %+v", xfers["serial"], xfers["pipelined"])
	}
	if got := stats["serial"]; got.Waves != 3 || got.DPUsUsed != 8 {
		t.Errorf("8-DPU dispatch = %d waves on %d DPUs, want 3 on 8", got.Waves, got.DPUsUsed)
	}
	if got := stats["sharded"]; got.Waves != 1 || got.DPUsUsed != shards {
		t.Errorf("40-DPU dispatch = %d waves on %d DPUs, want 1 on %d", got.Waves, got.DPUsUsed, shards)
	}
	// Degraded runs pay for their retries in simulated time.
	for _, name := range []string{"faulted", "faulted-pipelined"} {
		if stats[name].Cycles <= stats["serial"].Cycles {
			t.Errorf("%s cycles %d not above fault-free %d", name, stats[name].Cycles, stats["serial"].Cycles)
		}
	}

	// Rank topology changes the modeled transfer time and nothing else:
	// same launch stats, same DPU clock, same bytes through the bus — and
	// with every multi-DPU transfer now charged only the busiest rank's
	// share, strictly less transfer time.
	for _, name := range []string{"serial", "sharded", "pipelined", "faulted", "faulted-pipelined"} {
		ranked := name + "-ranked"
		if stats[name] != stats[ranked] {
			t.Errorf("%s stats %+v != %s stats %+v", name, stats[name], ranked, stats[ranked])
		}
		if dpuTime[name] != dpuTime[ranked] {
			t.Errorf("%s DPUTime %g != %s %g", name, dpuTime[name], ranked, dpuTime[ranked])
		}
		flat, rk := xfers[name], xfers[ranked]
		if flat.Bytes != rk.Bytes || flat.Transfers != rk.Transfers {
			t.Errorf("%s traffic {%d, %dB} != %s {%d, %dB}",
				name, flat.Transfers, flat.Bytes, ranked, rk.Transfers, rk.Bytes)
		}
		if rk.Time >= flat.Time {
			t.Errorf("%s transfer time %v not below single-rank %v", ranked, rk.Time, flat.Time)
		}
	}
}

// TestWholeRankKill kills every DPU of one rank before the first wave
// and requires graceful degradation: every shard of the dead rank is
// re-dispatched onto a surviving rank's DPUs and the outputs stay
// bit-identical, in both dispatch modes.
func TestWholeRankKill(t *testing.T) {
	const nd, perRank = 8, 4
	vals := make([]uint32, 16) // 2 waves on 8 DPUs
	for i := range vals {
		vals[i] = uint32(500 + 31*i)
	}
	want := toyWant(vals)
	for _, mode := range []struct {
		name string
		mode host.PipelineMode
	}{{"sync", host.PipelineOff}, {"pipelined", host.PipelineOn}} {
		t.Run(mode.name, func(t *testing.T) {
			w := newToySetTopo(t, nd, vals, host.Topology{DPUsPerRank: perRank})
			// Doom rank 1 (DPUs 4..7): each dies on its first launch.
			for i := perRank; i < nd; i++ {
				w.sys.DPU(i).InjectFaults(dpu.FaultPlan{Seed: 7, DeadFrac: 1}.NewInjector(i))
			}
			eng := exec.New(w.sys, exec.Config{Pipeline: mode.mode})
			var st exec.Stats
			if err := eng.Run(w, &st); err != nil {
				t.Fatalf("Run: %v", err)
			}
			for i := range want {
				if w.got[i] != want[i] {
					t.Fatalf("shard %d: got %d, want %d", i, w.got[i], want[i])
				}
			}
			if eng.NumDown() != perRank {
				t.Errorf("down DPUs = %d, want the whole %d-DPU rank", eng.NumDown(), perRank)
			}
			// Both waves lose the dead rank's shards to cross-rank remap.
			if st.Retries < perRank {
				t.Errorf("retries = %d, want >= %d (one per dead-rank shard per wave)", st.Retries, perRank)
			}
			if dead := w.sys.DeadDPUs(); len(dead) != perRank {
				t.Errorf("dead DPUs = %v, want all of rank 1", dead)
			}
		})
	}
}

// TestEngineDownDPUSticky: once a DPU dies, later dispatches on the same
// engine must route around it without being told again.
func TestEngineDownDPUSticky(t *testing.T) {
	vals := make([]uint32, 16)
	for i := range vals {
		vals[i] = uint32(3 + i)
	}
	want := toyWant(vals)
	w := newToySet(t, 8, vals)
	eng := exec.New(w.sys, exec.Config{})
	w.sys.InjectFaults(dpu.FaultPlan{Seed: 1, DeadFrac: 0.3, DeadAfterLaunches: 1})
	var st exec.Stats
	if err := eng.Run(w, &st); err != nil {
		t.Fatal(err)
	}
	if eng.NumDown() == 0 {
		t.Fatal("no DPUs marked down by the fault plan")
	}
	down := eng.NumDown()
	// Second dispatch: the down DPUs' shards are re-dispatched purely
	// from the sticky down set (no new faults needed for those shards).
	for i := range w.got {
		w.got[i] = 0
	}
	if err := eng.Run(w, &st); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if w.got[i] != want[i] {
			t.Fatalf("second run shard %d: got %d, want %d", i, w.got[i], want[i])
		}
	}
	if eng.NumDown() < down {
		t.Errorf("down count shrank: %d -> %d", down, eng.NumDown())
	}
}

// TestSyncSpansSequential: the synchronous path's scatter/launch/gather
// spans never overlap.
func TestSyncSpansSequential(t *testing.T) {
	vals := make([]uint32, 24)
	want := toyWant(vals)
	w := newToySet(t, 8, vals)
	tl := trace.NewTimeline()
	eng := exec.New(w.sys, exec.Config{Pipeline: host.PipelineOff, Timeline: tl})
	var st exec.Stats
	if err := eng.Run(w, &st); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if w.got[i] != want[i] {
			t.Fatalf("shard %d: got %d, want %d", i, w.got[i], want[i])
		}
	}
	spans := tl.Spans()
	if len(spans) != 9 { // 3 waves x scatter/launch/gather
		t.Fatalf("spans = %d, want 9: %+v", len(spans), spans)
	}
	order := []string{"scatter", "launch", "gather"}
	for i, s := range spans {
		if s.Name != order[i%3] {
			t.Errorf("span %d = %q, want %q", i, s.Name, order[i%3])
		}
		if s.Shards != 8 {
			t.Errorf("span %d shards = %d", i, s.Shards)
		}
	}
	if mc := tl.MaxConcurrent(); mc != 1 {
		t.Errorf("synchronous MaxConcurrent = %d, want 1", mc)
	}
}

// TestPipelinedSpansOverlap: with at least two waves the pipelined path
// keeps wave w+1 enqueued while wave w drains, so their timeline spans
// must overlap. The overlap is deterministic — wave w+1's span opens at
// enqueue time, strictly before wave w's flush closes wave w's span.
func TestPipelinedSpansOverlap(t *testing.T) {
	vals := make([]uint32, 24) // 3 waves on 8 DPUs
	want := toyWant(vals)
	w := newToySet(t, 8, vals)
	tl := trace.NewTimeline()
	eng := exec.New(w.sys, exec.Config{Pipeline: host.PipelineOn, Timeline: tl})
	var st exec.Stats
	if err := eng.Run(w, &st); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if w.got[i] != want[i] {
			t.Fatalf("shard %d: got %d, want %d", i, w.got[i], want[i])
		}
	}
	spans := tl.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3: %+v", len(spans), spans)
	}
	for _, s := range spans {
		if s.Name != "wave" {
			t.Errorf("pipelined span %q, want \"wave\"", s.Name)
		}
	}
	if mc := tl.MaxConcurrent(); mc < 2 {
		t.Errorf("pipelined MaxConcurrent = %d, want >= 2 (waves must overlap)", mc)
	}
	if r := tl.Render(40); r == "" {
		t.Error("empty render")
	}
}

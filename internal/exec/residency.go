package exec

import (
	"fmt"
	"sort"
	"sync"

	"pimdnn/internal/host"
	"pimdnn/internal/metrics"
)

// Weight residency — the scatter-once, serve-many fix.
//
// Every forward pass used to re-deliver its model weights to every DPU:
// the row-per-DPU mapping re-scattered each layer's A rows and the
// image-per-DPU mapping re-broadcast the full weight matrix, even
// though the weights never change between requests. The WeightCache
// turns weights into MRAM-resident state: a runner reserves an arena
// range per (model, layer), delivers the payload once, and subsequent
// dispatches skip the transfer entirely for every DPU whose copy is
// still current.
//
// Correctness under faults hinges on the per-DPU generation tokens. A
// delivery (full push or per-DPU catch-up) stamps the DPU with the
// entry's generation; anything that can leave a DPU holding different
// bytes — a shard re-dispatched onto it (the retry writes that shard's
// row over the arena slot), an eviction that reassigned the arena
// range, or a content change caught by the hash guard — clears or
// outdates the stamp, so the next dispatch re-delivers before the DPU
// computes. This is the same stale-model hazard the eBNN deploy
// broadcast guards against, generalized to per-DPU granularity.
//
// Capacity is modeled: the cache owns one MRAM arena symbol of a fixed
// byte budget on every DPU, and reserving space for a new entry evicts
// whole least-recently-used models (never the one being reserved for)
// until the range fits. Evicted entries lose their arena range and all
// their generation stamps; re-use re-reserves and re-delivers. External
// entries (payloads living in their own symbols, like the eBNN model
// parameters) participate in the same LRU bookkeeping without
// consuming arena bytes — eviction just invalidates their stamps.

// ArenaSymbol is the MRAM symbol backing a WeightCache's arena.
const ArenaSymbol = "exec_w_arena"

// WeightCache arbitrates a modeled MRAM weight budget across models on
// one DPU system. Safe for use by multiple runners sharing the System
// (guarded by one mutex); the per-dispatch hot path is a handful of
// token compares.
type WeightCache struct {
	mu   sync.Mutex
	sys  *host.System
	ref  host.SymbolRef
	base int64 // arena base: absolute MRAM offset on every DPU
	cap  int64
	nd   int

	clock  uint64 // LRU tick
	genSeq uint64 // global generation counter (never reused)
	models map[string]*ResidentModel
	free   []arenaSpan // sorted, coalesced free ranges

	met *cacheMetrics
}

// arenaSpan is one free arena range [off, off+size).
type arenaSpan struct{ off, size int64 }

// cacheMetrics is the cache's instrument set; nil when the System has
// no registry (all updates gated on one nil check).
type cacheMetrics struct {
	delivered    *metrics.Counter // weight bytes actually transferred
	hits         *metrics.Counter // dispatches that skipped delivery entirely
	misses       *metrics.Counter // dispatches that delivered (full or partial)
	redeliveries *metrics.Counter // per-DPU catch-up transfers
	evictions    *metrics.Counter // models evicted for space
	resident     *metrics.Gauge   // bytes currently reserved
}

// NewWeightCache allocates the weight arena (capacity bytes on every
// DPU) and returns the manager. capacity bounds the total per-DPU bytes
// of arena-backed resident entries; it must be positive and 8-byte
// aligned to keep every entry's base DMA-alignable.
func NewWeightCache(sys *host.System, capacity int64) (*WeightCache, error) {
	if capacity < 8 {
		return nil, fmt.Errorf("exec: weight cache capacity %d too small", capacity)
	}
	if capacity%8 != 0 {
		return nil, fmt.Errorf("exec: weight cache capacity %d not 8-byte aligned", capacity)
	}
	if err := sys.AllocMRAM(ArenaSymbol, capacity); err != nil {
		return nil, fmt.Errorf("exec: weight cache: %w", err)
	}
	ref, err := sys.Resolve(ArenaSymbol)
	if err != nil {
		return nil, fmt.Errorf("exec: weight cache: %w", err)
	}
	sym, _ := sys.DPU(0).Symbol(ArenaSymbol)
	c := &WeightCache{
		sys:    sys,
		ref:    ref,
		base:   sym.Offset,
		cap:    capacity,
		nd:     sys.NumDPUs(),
		models: make(map[string]*ResidentModel),
		free:   []arenaSpan{{0, capacity}},
	}
	if reg := sys.MetricsRegistry(); reg != nil {
		c.met = &cacheMetrics{
			delivered:    reg.Counter("pim_wcache_delivered_bytes_total"),
			hits:         reg.Counter("pim_wcache_hits_total"),
			misses:       reg.Counter("pim_wcache_misses_total"),
			redeliveries: reg.Counter("pim_wcache_redeliveries_total"),
			evictions:    reg.Counter("pim_wcache_evictions_total"),
			resident:     reg.Gauge("pim_wcache_resident_bytes"),
		}
	}
	return c, nil
}

// Capacity returns the modeled per-DPU arena budget in bytes.
func (c *WeightCache) Capacity() int64 { return c.cap }

// ResidentBytes returns the per-DPU bytes currently reserved (arena
// entries plus external registrations).
func (c *WeightCache) ResidentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, m := range c.models {
		n += m.bytes
	}
	return n
}

// Models returns the resident model names, least recently used first —
// the eviction order. For tests and introspection.
func (c *WeightCache) Models() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.models))
	for name := range c.models {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return c.models[names[i]].lastUse < c.models[names[j]].lastUse
	})
	return names
}

// Model returns (creating if needed) the named model's resident set.
func (c *WeightCache) Model(name string) *ResidentModel {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.models[name]
	if m == nil {
		m = &ResidentModel{c: c, name: name, entries: make(map[int]*ResidentEntry)}
		c.models[name] = m
	}
	c.clock++
	m.lastUse = c.clock
	return m
}

// ResidentModel is one model's resident weight set: a group of entries
// that ages and is evicted as a unit.
type ResidentModel struct {
	c       *WeightCache
	name    string
	entries map[int]*ResidentEntry
	bytes   int64
	lastUse uint64
}

// Name returns the model name.
func (m *ResidentModel) Name() string { return m.name }

// touch advances the model's LRU stamp. Caller holds c.mu.
func (m *ResidentModel) touch() {
	m.c.clock++
	m.lastUse = m.c.clock
}

// Entry returns the model's resident entry for one layer key, reserving
// size bytes of per-DPU arena space on first use (evicting
// least-recently-used other models as needed). hash guards the content:
// a changed hash (retrained or hot-swapped weights under the same key)
// outdates every per-DPU stamp so the next dispatch re-delivers. The
// second return is false when size cannot fit even with every other
// model evicted — the caller falls back to the re-broadcast path.
func (m *ResidentModel) Entry(key int, size int64, hash uint64) (*ResidentEntry, bool) {
	c := m.c
	c.mu.Lock()
	defer c.mu.Unlock()
	m.touch()
	size = (size + 7) &^ 7
	if e := m.entries[key]; e != nil {
		if e.size == size {
			if e.hash != hash {
				e.hash = hash
				c.genSeq++
				e.gen = c.genSeq
			}
			return e, true
		}
		// Size changed: drop the old reservation and reallocate below.
		m.dropEntry(e)
	}
	if size > c.cap {
		return nil, false
	}
	off, ok := c.reserve(m, size)
	if !ok {
		return nil, false
	}
	c.genSeq++
	e := &ResidentEntry{
		c: c, m: m, key: key,
		ref: c.ref, off: off, abs: c.base + off,
		size: size, hash: hash,
		gen: c.genSeq,
		per: make([]uint64, c.nd),
	}
	m.entries[key] = e
	m.bytes += size
	if c.met != nil {
		c.met.resident.Set(c.residentLocked())
	}
	return e, true
}

// External registers a resident entry whose payload lives in its own
// symbol (outside the arena) at [off, off+size): the entry participates
// in generation tracking and model-level LRU/eviction, but consumes no
// arena range — eviction simply outdates its stamps, forcing the next
// dispatch to re-deliver into the fixed location. A repeated call with
// the same key returns the existing entry (re-keyed content should go
// through hash-free invalidation via Outdate).
func (m *ResidentModel) External(key int, ref host.SymbolRef, off, size int64) *ResidentEntry {
	c := m.c
	c.mu.Lock()
	defer c.mu.Unlock()
	m.touch()
	if e := m.entries[key]; e != nil {
		return e
	}
	c.genSeq++
	e := &ResidentEntry{
		c: c, m: m, key: key,
		ref: ref, off: off, abs: 0,
		size: size, external: true,
		gen: c.genSeq,
		per: make([]uint64, c.nd),
	}
	m.entries[key] = e
	m.bytes += size
	if c.met != nil {
		c.met.resident.Set(c.residentLocked())
	}
	return e
}

// residentLocked sums reserved bytes. Caller holds c.mu.
func (c *WeightCache) residentLocked() int64 {
	var n int64
	for _, m := range c.models {
		n += m.bytes
	}
	return n
}

// reserve finds size bytes of arena, evicting LRU models other than
// keep until a first-fit range appears. Caller holds c.mu.
func (c *WeightCache) reserve(keep *ResidentModel, size int64) (int64, bool) {
	for {
		for i := range c.free {
			if c.free[i].size >= size {
				off := c.free[i].off
				c.free[i].off += size
				c.free[i].size -= size
				if c.free[i].size == 0 {
					c.free = append(c.free[:i], c.free[i+1:]...)
				}
				return off, true
			}
		}
		if !c.evictLRU(keep) {
			return 0, false
		}
	}
}

// evictLRU evicts the least-recently-used model other than keep.
// Caller holds c.mu.
func (c *WeightCache) evictLRU(keep *ResidentModel) bool {
	var victim *ResidentModel
	for _, m := range c.models {
		if m == keep || len(m.entries) == 0 {
			continue
		}
		if victim == nil || m.lastUse < victim.lastUse {
			victim = m
		}
	}
	if victim == nil {
		return false
	}
	for _, e := range victim.entries {
		victim.dropEntry(e)
	}
	if c.met != nil {
		c.met.evictions.Add(1)
		c.met.resident.Set(c.residentLocked())
	}
	return true
}

// dropEntry releases one entry: its arena range returns to the free
// list and its generation dies (any later entry at the same range gets
// a fresh generation, so stale stamps can never validate). Caller
// holds c.mu.
func (m *ResidentModel) dropEntry(e *ResidentEntry) {
	delete(m.entries, e.key)
	m.bytes -= e.size
	e.gen = 0 // stamps can never match again
	if !e.external {
		m.c.release(arenaSpan{e.off, e.size})
	}
}

// release returns a span to the free list, keeping it sorted and
// coalesced. Caller holds c.mu.
func (c *WeightCache) release(s arenaSpan) {
	i := sort.Search(len(c.free), func(i int) bool { return c.free[i].off >= s.off })
	c.free = append(c.free, arenaSpan{})
	copy(c.free[i+1:], c.free[i:])
	c.free[i] = s
	// Coalesce with the right neighbor, then the left.
	if i+1 < len(c.free) && c.free[i].off+c.free[i].size == c.free[i+1].off {
		c.free[i].size += c.free[i+1].size
		c.free = append(c.free[:i+1], c.free[i+2:]...)
	}
	if i > 0 && c.free[i-1].off+c.free[i-1].size == c.free[i].off {
		c.free[i-1].size += c.free[i].size
		c.free = append(c.free[:i], c.free[i+1:]...)
	}
}

// ResidentEntry is one layer's resident weight payload: an arena range
// (or external symbol range) plus the per-DPU delivery stamps.
type ResidentEntry struct {
	c   *WeightCache
	m   *ResidentModel
	key int

	ref      host.SymbolRef
	off      int64 // offset within ref
	abs      int64 // absolute MRAM address (kernel parameter); 0 for external
	size     int64
	hash     uint64
	external bool

	gen uint64   // current content generation; 0 = dropped/evicted
	per []uint64 // per-DPU delivered generation
}

// Ref returns the symbol the payload lives in.
func (e *ResidentEntry) Ref() host.SymbolRef { return e.ref }

// Off returns the payload's offset within Ref.
func (e *ResidentEntry) Off() int64 { return e.off }

// Abs returns the payload's absolute MRAM address — what a kernel
// parameter block carries so the DPU program reads weights in place.
func (e *ResidentEntry) Abs() int64 { return e.abs }

// Size returns the reserved per-DPU byte footprint.
func (e *ResidentEntry) Size() int64 { return e.size }

// Live reports whether the entry still holds its reservation (false
// after eviction; the caller should re-request it from its model).
func (e *ResidentEntry) Live() bool {
	e.c.mu.Lock()
	defer e.c.mu.Unlock()
	return e.gen != 0
}

// Current reports whether DPU d holds the entry's current content.
func (e *ResidentEntry) Current(d int) bool {
	g := e.gen
	return g != 0 && e.per[d] == g
}

// markDelivered stamps DPU d with the current generation.
func (e *ResidentEntry) markDelivered(d int) { e.per[d] = e.gen }

// InvalidateDPU clears DPU d's stamp: something wrote over (or may
// have written over) the entry's range on that DPU — a re-dispatched
// shard's input push, in the engine's retry path — so the next dispatch
// re-delivers before d computes with this entry again.
func (e *ResidentEntry) InvalidateDPU(d int) { e.per[d] = 0 }

// Outdate invalidates every DPU's stamp at once (content replaced
// outside the hash guard's view).
func (e *ResidentEntry) Outdate() {
	e.c.mu.Lock()
	e.c.genSeq++
	e.gen = e.c.genSeq
	e.c.mu.Unlock()
}

// Touch advances the owning model's LRU stamp; dispatch paths call it
// once per use so eviction order tracks real traffic.
func (e *ResidentEntry) Touch() {
	e.c.mu.Lock()
	e.m.touch()
	e.c.mu.Unlock()
}

// noteHit/noteMiss/noteDelivered feed the cache instruments (nil-safe).
func (e *ResidentEntry) noteHit() {
	if e.c.met != nil {
		e.c.met.hits.Add(1)
	}
}

func (e *ResidentEntry) noteMiss() {
	if e.c.met != nil {
		e.c.met.misses.Add(1)
	}
}

func (e *ResidentEntry) noteDelivered(bytes int, catchup bool) {
	if e.c.met != nil {
		e.c.met.delivered.Add(uint64(bytes))
		if catchup {
			e.c.met.redeliveries.Add(1)
		}
	}
}

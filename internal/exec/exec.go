// Package exec is the workload-agnostic execution engine for the DPU
// system: one scheduler owning the thesis's host/DPU dispatch pattern
// (§3.2, Fig 4.6) — shard work across DPUs, scatter inputs, launch the
// kernel, gather results — plus the two layers PRs 2–3 added on top of
// it: double-buffered wave pipelining through the host's asynchronous
// command queue, and retry-and-remap of failed shards onto surviving
// DPUs under fault injection.
//
// Workloads adapt to the engine through the WorkSet interface (wave
// dispatch: gemm row-per-DPU, ebnn images-per-DPU) or a StreamSet value
// (single-wave streaming dispatch: gemm image-per-DPU batch). The
// engine produces one unified Stats struct for all of them, and its
// accounting invariant is inherited from the host queue: simulated
// cycles, seconds, and per-wave statistics are bit-identical whether a
// workload runs synchronously or pipelined — pipelining only overlaps
// host encode/decode wall-clock time with queued device work.
//
// See DESIGN.md, "Execution engine", for the interface contract,
// accounting invariants, and retry semantics.
package exec

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/trace"
)

// Config is the unified dispatch configuration shared by every runner.
type Config struct {
	// Pipeline selects double-buffered dispatch through the host's
	// asynchronous command queue. Results and simulated-time accounting
	// are identical in both modes.
	Pipeline host.PipelineMode
	// Timeline, when non-nil, receives wall-clock span events for each
	// wave phase (scatter/launch/gather/retry synchronously, the fused
	// wave command when pipelined), so tools can render a dispatch
	// timeline. Nil disables span recording entirely.
	Timeline *trace.Timeline
	// Events, when non-nil, receives structured dispatch events (runs,
	// waves, DPUs marked down) with layer/wave/dpu attributes — the
	// JSONL event log. Nil disables event logging entirely.
	Events *slog.Logger
}

// Stats describes one dispatched work set — the single accounting
// struct produced by the engine for every workload.
type Stats struct {
	// Waves is the number of sequential launches (shards beyond the DPU
	// count queue into later waves).
	Waves int
	// DPUsUsed is the largest number of DPUs active in a wave — the
	// thesis's dynamic DPU count.
	DPUsUsed int
	// Cycles is the summed per-wave maximum DPU cycles, plus the real
	// cycles of any re-dispatched shards.
	Cycles uint64
	// Seconds is Cycles through the DPU clock.
	Seconds float64
	// Retries is the number of shards (rows, images, or batches)
	// re-dispatched onto a surviving DPU after a fault. Zero in a
	// fault-free run.
	Retries int
	// Tasklets is the per-DPU tasklet count the dispatch launched with —
	// recorded so mapping-aware callers (the auto-mapper's calibration
	// loop) can report the executed choice next to the simulated time.
	Tasklets int
}

// Stream names one per-shard transfer stream: Bufs[i] is DPU i's buffer
// in the current staging slot. Scatter streams cover every DPU of the
// system (full-system push, matching dpu_push_xfer); the engine
// launches and gathers only the wave's first n shards.
//
// A non-nil Resident entry makes the stream weight-resident: the
// engine delivers Bufs[d] only to DPUs whose per-DPU generation stamp
// is stale (all of them on first use, none on a warm repeat, just the
// remapped ones after fault recovery) and skips the push entirely when
// every live wave DPU is current. Re-dispatch still carries the
// stream's shard buffer to the retry target — and invalidates that
// target's stamp, since the shard's row now occupies its arena slot.
type Stream struct {
	Ref      host.SymbolRef
	Off      int64
	Bufs     [][]byte
	Resident *ResidentEntry
}

// Xfer names one single-DPU transfer (a shard's input or output buffer)
// used when re-dispatching that shard onto another DPU.
type Xfer struct {
	Ref  host.SymbolRef
	Off  int64
	Data []byte
}

// Broadcast is a wave-invariant payload delivered to every DPU before
// dispatch (a weight matrix, a parameter block, a model). DPUs that
// miss a broadcast get it redelivered; unreachable DPUs are marked down
// so a stale copy never contributes results.
//
// A non-nil Resident entry makes the broadcast weight-resident: the
// engine skips delivery for DPUs whose generation stamp is current and
// catches up only the stale ones (zero transfer bytes on a warm
// repeat).
type Broadcast struct {
	Ref      host.SymbolRef
	Off      int64
	Data     []byte
	Resident *ResidentEntry
}

// WorkSet adapts one workload's shard mapping to the engine's wave
// dispatch. A workset is Shards() shards, at most one per DPU per wave;
// the engine plans waves of consecutive shards, has the workset encode
// each wave into per-DPU staging buffers, runs scatter → launch →
// gather (synchronously, or double-buffered through the async queue),
// re-dispatches failed shards onto survivors, and hands every shard
// back through Decode in input order.
//
// slot is the staging-slot index: always 0 on the synchronous path,
// alternating 0/1 when pipelined — a workset that supports pipelining
// must keep the two slots' buffers disjoint, because slot buffers are
// queue-owned from enqueue until the engine flushes the wave.
type WorkSet interface {
	// Shards is the total number of shards to dispatch.
	Shards() int
	// Tasklets is the per-DPU tasklet count for launches.
	Tasklets() int
	// Kernel is the DPU program run on every shard.
	Kernel() dpu.KernelFunc
	// Broadcasts returns the payloads delivered to every DPU before the
	// first wave (nil when the workload broadcast at setup time).
	Broadcasts() []Broadcast
	// Encode stages shards [start, start+n) into the slot's buffers.
	Encode(slot, start, n int)
	// Scatter returns the slot's input streams for an n-shard wave.
	// Stream 0 is the primary stream (fused into the pipelined wave
	// command); later streams are pushed separately. Returned slices
	// are read immediately and may be reused by the next call.
	Scatter(slot, n int) []Stream
	// Gather returns the slot's output stream for an n-shard wave.
	Gather(slot, n int) Stream
	// Decode consumes shard start+i (wave position i) from the slot's
	// gather buffer. Called for every shard of a wave in input order,
	// after the wave and any re-dispatches completed.
	Decode(slot, shard, i int)
}

// SerialGatherer is implemented by worksets whose synchronous gather
// reads result buffers one DPU at a time (the eBNN §4.1.3 contract:
// "After all temporary results for all images in a single DPU are
// inferred, the next DPU's result is read") instead of as one sharded
// gather; per-DPU gather buffer lengths may then differ.
type SerialGatherer interface {
	SerialGather() bool
}

// WidthLimiter is implemented by worksets whose mapping caps the wave
// width below the system's DPU count (a planner-produced mapping that
// pins an explicit DPU budget). MaxWaveDPUs <= 0 means no cap. Capping
// never changes results — later shards just queue into further waves —
// and synchronous scatters still push the full system width (the
// dpu_push_xfer contract); only the launch/gather width shrinks.
type WidthLimiter interface {
	MaxWaveDPUs() int
}

// waveWidth resolves the engine's wave width for ws: the system size,
// capped by the workset's WidthLimiter when it declares one.
func (e *Engine) waveWidth(ws WorkSet) int {
	nd := e.sys.NumDPUs()
	if wl, ok := ws.(WidthLimiter); ok {
		if max := wl.MaxWaveDPUs(); max > 0 && max < nd {
			nd = max
		}
	}
	return nd
}

// maxRedispatch bounds how many targets one shard (or one broadcast
// redelivery) tries before the fault is reported as fatal.
const maxRedispatch = 8

// Engine owns shard dispatch for one runner. It is not safe for
// concurrent use: the DPU symbols it scatters into are shared state.
type Engine struct {
	sys  *host.System
	pipe bool
	tl   *trace.Timeline

	// Telemetry: instruments resolved from the System's registry at
	// Configure time, the optional structured event logger, and the
	// current per-layer scope label (metrics.go). All nil/empty when
	// telemetry is off; dispatch results never depend on them.
	met   *engineMetrics
	ev    *slog.Logger
	scope string

	// Request tracing (trace.go): the span dispatches attach their
	// phase/launch child spans to, nil when the current work is not
	// traced, plus the launch-stats scratch the span recorder reads
	// (copied by value at the call site so LaunchStats locals never
	// escape to the heap).
	tsp     *trace.Span
	tspLS   host.LaunchStats
	tspLSOK bool

	// Fault-recovery state: DPUs excluded from dispatch for the
	// engine's life, the round-robin re-dispatch cursor, and the
	// reusable per-wave failed-shard set.
	down     []bool
	nDown    int
	retryCur int
	failSet  []bool

	// Ping-pong wave slots for the pipelined path.
	slots   [2]waveSlot
	waveSeq int

	// Reused scratch: re-dispatch input descriptors (and the resident
	// entries riding along with them, for retry-target invalidation),
	// queued re-dispatch pending handles, streaming-gather buffers and
	// queued-launch stats (RunStream).
	insBuf  []Xfer
	entBuf  []*ResidentEntry
	pendBuf []host.Pending
	raw     [2][]byte
	lstats  host.LaunchStats

	// waveStats backs LaunchStats.PerDPU for the synchronous wave loop
	// (host.LaunchOnInto): the loop reads only scalar aggregates, so one
	// buffer serves every wave.
	waveStats []dpu.Stats
}

// perDPUBuf returns the reusable PerDPU backing, grown to n entries.
func (e *Engine) perDPUBuf(n int) []dpu.Stats {
	if cap(e.waveStats) < n {
		e.waveStats = make([]dpu.Stats, n)
	}
	return e.waveStats[:n]
}

// waveSlot is one of the two in-flight wave records of the pipelined
// path: the queue owns the slot's staging buffers from enqueue until
// the engine flushes the wave.
type waveSlot struct {
	idx      int // staging-slot index handed to the workset
	seq      int // engine-global wave number (timeline spans)
	start, n int
	stats    host.LaunchStats
	pend     host.Pending
	extras   []host.Pending
	errs     []error
	forced   []bool // shards failed by resident delivery at enqueue time
	t0       time.Time
	busy     bool
}

// New builds an engine over sys. One engine per runner: down-DPU state
// is scoped to the broadcasts that runner has delivered.
func New(sys *host.System, cfg Config) *Engine {
	e := &Engine{sys: sys}
	e.down = make([]bool, sys.NumDPUs())
	e.failSet = make([]bool, sys.NumDPUs())
	e.slots[1].idx = 1
	e.Configure(cfg)
	return e
}

// Configure re-applies the dispatch configuration. Call it between
// dispatches only, never while a run is in flight.
func (e *Engine) Configure(cfg Config) {
	e.pipe = cfg.Pipeline.Enabled()
	e.tl = cfg.Timeline
	e.ev = cfg.Events
	if reg := e.sys.MetricsRegistry(); reg != nil {
		e.met = newEngineMetrics(reg)
	} else {
		e.met = nil
	}
}

// Pipelined reports whether dispatch goes through the async queue.
func (e *Engine) Pipelined() bool { return e.pipe }

// System returns the underlying DPU system.
func (e *Engine) System() *host.System { return e.sys }

// Down reports whether DPU i has been excluded from dispatch.
func (e *Engine) Down(i int) bool { return e.down[i] }

// NumDown returns the number of excluded DPUs.
func (e *Engine) NumDown() int { return e.nDown }

// markDown removes DPU i from the re-dispatch target pool for the rest
// of the engine's life.
func (e *Engine) markDown(i int) {
	if !e.down[i] {
		e.down[i] = true
		e.nDown++
		if e.met != nil {
			e.met.down.Set(int64(e.nDown))
		}
		e.eventDown(i)
	}
}

// nextTarget picks the re-dispatch target for a shard that last ran on
// DPU near. On a multi-rank system, surviving DPUs in near's own rank
// are preferred — the shard's input and output move over the rank
// channel already assigned to it, and a whole-rank outage degrades to
// the global path below instead of stalling. The fallback (and the
// entire behavior when the system is a single rank, as every
// pre-topology configuration was) is the original round-robin over all
// survivors, so retried shards spread out. Returns -1 when no DPU
// survives.
func (e *Engine) nextTarget(near int) int {
	nd := e.sys.NumDPUs()
	if e.nDown >= nd {
		return -1
	}
	if e.sys.Ranks() > 1 && near >= 0 && near < nd {
		lo, hi := e.sys.RankSpan(e.sys.RankOf(near))
		for t := 1; t < hi-lo; t++ {
			i := lo + (near-lo+t)%(hi-lo)
			if !e.down[i] {
				return i
			}
		}
	}
	for t := 0; t < nd; t++ {
		i := (e.retryCur + t) % nd
		if !e.down[i] {
			e.retryCur = (i + 1) % nd
			return i
		}
	}
	return -1
}

// seedFailed returns the reusable failed-shard set for an n-shard wave,
// pre-marking shards whose DPU is down: a down DPU holds stale
// broadcast data, so its shard is re-dispatched even when the wave's
// operations report no error for it.
func (e *Engine) seedFailed(n int) []bool {
	failed := e.failSet[:n]
	for i := range failed {
		failed[i] = e.down[i]
	}
	return failed
}

// reseedDown re-marks shards whose DPU went down since seedFailed —
// used when a broadcast lands between the scatter and the launch.
func (e *Engine) reseedDown(failed []bool) {
	for i := range failed {
		if e.down[i] {
			failed[i] = true
		}
	}
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeFailed folds a best-effort operation's *FaultReport into the
// wave's failed-shard set (indices beyond the wave width are ignored: a
// scatter fault on a DPU not launched this wave is harmless). DPUs that
// died leave the re-dispatch pool. A non-report error is returned as
// fatal.
func (e *Engine) mergeFailed(failed []bool, err error) error {
	if err == nil {
		return nil
	}
	rep, ok := host.AsFaultReport(err)
	if !ok {
		return err
	}
	for _, f := range rep.Faults {
		if errors.Is(f.Err, dpu.ErrDPUDead) {
			e.markDown(f.DPU)
		}
		if f.DPU < len(failed) {
			failed[f.DPU] = true
		}
	}
	return nil
}

// redeliver retries a broadcast payload on one DPU that missed it. In
// pipelined mode the redelivery goes through the command queue, keeping
// it serialized against other runners sharing the System.
func (e *Engine) redeliver(i int, b Broadcast) bool {
	for a := 0; a < maxRedispatch; a++ {
		var err error
		if e.pipe {
			err = e.sys.EnqueueCopyToDPU(i, b.Ref, b.Off, b.Data).Wait()
		} else {
			err = e.sys.CopyToDPURef(i, b.Ref, b.Off, b.Data)
		}
		if err == nil {
			return true
		}
		if errors.Is(err, dpu.ErrDPUDead) {
			return false
		}
		if _, ok := host.AsFaultReport(err); !ok {
			return false
		}
	}
	return false
}

// finishBroadcast completes a best-effort broadcast: DPUs named in the
// report get the payload redelivered; those that cannot be reached are
// marked down, so their stale copy never contributes results. A
// non-report error is fatal.
func (e *Engine) finishBroadcast(err error, b Broadcast) error {
	if err == nil {
		return nil
	}
	rep, ok := host.AsFaultReport(err)
	if !ok {
		return err
	}
	for _, f := range rep.Faults {
		if e.down[f.DPU] {
			continue
		}
		if !e.redeliver(f.DPU, b) {
			e.markDown(f.DPU)
		}
	}
	return nil
}

// Broadcast delivers b to every DPU immediately, with redelivery and
// down-marking on partial failure. Used for setup-time payloads (the
// eBNN model deploy); dispatch-time broadcasts belong to the WorkSet
// or StreamSet instead. A resident broadcast goes through the weight
// cache's generation stamps and is skipped for current DPUs.
func (e *Engine) Broadcast(b Broadcast) error {
	if b.Resident != nil {
		return e.broadcastResident(b)
	}
	return e.finishBroadcast(e.sys.CopyToSymbolRef(b.Ref, b.Off, b.Data), b)
}

// deliverOne pushes one resident payload to DPU d with bounded retries,
// stamping the entry on success. An unreachable DPU is marked down (its
// stale copy must never contribute results) and reported false.
func (e *Engine) deliverOne(d int, ref host.SymbolRef, off int64, data []byte, ent *ResidentEntry, catchup bool) bool {
	for a := 0; a < maxRedispatch; a++ {
		var err error
		if e.pipe {
			err = e.sys.EnqueueCopyToDPU(d, ref, off, data).Wait()
		} else {
			err = e.sys.CopyToDPURef(d, ref, off, data)
		}
		if err == nil {
			ent.markDelivered(d)
			ent.noteDelivered(len(data), catchup)
			return true
		}
		if errors.Is(err, dpu.ErrDPUDead) {
			break
		}
		if _, ok := host.AsFaultReport(err); !ok {
			break
		}
	}
	e.markDown(d)
	return false
}

// broadcastResident delivers a resident broadcast: skipped outright
// when every live DPU is stamped current (a warm repeat — zero
// transfer bytes), one full-system broadcast when none are (first
// delivery), per-DPU catch-ups otherwise (remapped or recovered DPUs).
func (e *Engine) broadcastResident(b Broadcast) error {
	ent := b.Resident
	ent.Touch()
	nd := e.sys.NumDPUs()
	stale, live := 0, 0
	for d := 0; d < nd; d++ {
		if e.down[d] {
			continue
		}
		live++
		if !ent.Current(d) {
			stale++
		}
	}
	if live == 0 || stale == 0 {
		ent.noteHit()
		return nil
	}
	ent.noteMiss()
	if stale == live && e.nDown == 0 {
		// Cold path: one rank-parallel broadcast, then stamp everything
		// the fault report doesn't name; named DPUs get the usual
		// redeliver-or-mark-down treatment, which stamps on success.
		err := e.copyAll(b.Ref, b.Off, b.Data)
		if err == nil {
			for d := 0; d < nd; d++ {
				ent.markDelivered(d)
			}
			ent.noteDelivered(len(b.Data)*nd, false)
			return nil
		}
		rep, ok := host.AsFaultReport(err)
		if !ok {
			return err
		}
		faulted := e.failSet[:nd]
		for i := range faulted {
			faulted[i] = false
		}
		nOK := nd
		for _, f := range rep.Faults {
			if !faulted[f.DPU] {
				faulted[f.DPU] = true
				nOK--
			}
		}
		for d := 0; d < nd; d++ {
			if !faulted[d] {
				ent.markDelivered(d)
			}
		}
		ent.noteDelivered(len(b.Data)*nOK, false)
		for d := 0; d < nd; d++ {
			if faulted[d] && !e.down[d] {
				e.deliverOne(d, b.Ref, b.Off, b.Data, ent, false)
			}
		}
		return nil
	}
	for d := 0; d < nd; d++ {
		if e.down[d] || ent.Current(d) {
			continue
		}
		e.deliverOne(d, b.Ref, b.Off, b.Data, ent, true)
	}
	return nil
}

// scatterResident delivers a resident scatter stream for an n-shard
// wave: shard buffers go only to stale live DPUs (all on first use,
// none on a warm repeat), using one full-width push when the whole
// wave is cold and the staging covers the system. Delivery failures
// mark the DPU down and fail its shard, exactly like a scatter fault
// on the re-broadcast path.
func (e *Engine) scatterResident(s Stream, n int, failed []bool) error {
	ent := s.Resident
	ent.Touch()
	stale := 0
	for d := 0; d < n; d++ {
		if e.down[d] {
			continue
		}
		if !ent.Current(d) {
			stale++
		}
	}
	if stale == 0 {
		ent.noteHit()
		return nil
	}
	ent.noteMiss()
	if stale == n && e.nDown == 0 && len(s.Bufs) == e.sys.NumDPUs() {
		// Cold path: one rank-parallel full-system push (the same
		// operation the re-broadcast path issues every dispatch).
		err := e.pushAll(s.Ref, s.Off, s.Bufs)
		perDPU := len(s.Bufs[0])
		if err == nil {
			for d := 0; d < n; d++ {
				ent.markDelivered(d)
			}
			ent.noteDelivered(perDPU*len(s.Bufs), false)
			return nil
		}
		rep, ok := host.AsFaultReport(err)
		if !ok {
			return err
		}
		for d := 0; d < n; d++ {
			ent.markDelivered(d)
		}
		nOK := len(s.Bufs)
		for _, f := range rep.Faults {
			nOK--
			if errors.Is(f.Err, dpu.ErrDPUDead) {
				e.markDown(f.DPU)
			}
			if f.DPU < n {
				ent.InvalidateDPU(f.DPU)
				if f.DPU < len(failed) {
					failed[f.DPU] = true
				}
			}
		}
		if nOK > 0 {
			ent.noteDelivered(perDPU*nOK, false)
		}
		return nil
	}
	for d := 0; d < n; d++ {
		if e.down[d] || ent.Current(d) {
			continue
		}
		if !e.deliverOne(d, s.Ref, s.Off, s.Bufs[d], ent, true) && d < len(failed) {
			failed[d] = true
		}
	}
	return nil
}

// copyAll broadcasts data to every DPU, through the command queue when
// pipelined so the write is serialized with any in-flight waves.
func (e *Engine) copyAll(ref host.SymbolRef, off int64, data []byte) error {
	if e.pipe {
		return e.sys.EnqueueCopyTo(ref, off, data).Wait()
	}
	return e.sys.CopyToSymbolRef(ref, off, data)
}

// pushAll scatters per-DPU buffers to every DPU, through the command
// queue when pipelined.
func (e *Engine) pushAll(ref host.SymbolRef, off int64, bufs [][]byte) error {
	if e.pipe {
		return e.sys.EnqueuePushXfer(ref, off, bufs).Wait()
	}
	return e.sys.PushXferRef(ref, off, bufs)
}

// redispatch re-runs one failed shard on a surviving DPU: push its
// input buffers, launch the kernel on that DPU alone, and gather its
// output. from is the DPU the shard failed on — targets in its rank are
// preferred (nextTarget). The retry's cycles are added to st, so the
// stats reflect the degraded run's real cost. In pipelined mode the
// steps are queued commands, serialized with any waves already
// enqueued. ents carries the resident entries of the input streams
// (nil entries for non-resident ones): every attempted target has its
// generation stamp invalidated, because even a failed attempt may have
// partially overwritten the target's resident slot with this shard's
// row — a remapped DPU must re-receive the layer before serving it.
func (e *Engine) redispatch(from int, ins []Xfer, ents []*ResidentEntry, out Xfer, tasklets int, kernel dpu.KernelFunc, st *Stats) error {
	near := from
	for a := 0; a < maxRedispatch; a++ {
		t := e.nextTarget(near)
		if t < 0 {
			return fmt.Errorf("exec: no surviving DPU to re-dispatch onto")
		}
		// A failed attempt moves the scan past its target, like the
		// round-robin cursor always did.
		near = t
		for _, ent := range ents {
			if ent != nil {
				ent.InvalidateDPU(t)
			}
		}
		var ls host.LaunchStats
		var err error
		if e.pipe {
			pends := e.pendBuf[:0]
			for _, in := range ins {
				pends = append(pends, e.sys.EnqueueCopyToDPU(t, in.Ref, in.Off, in.Data))
			}
			pends = append(pends, e.sys.EnqueueLaunchDPU(t, tasklets, kernel, &ls))
			pends = append(pends, e.sys.EnqueueCopyFrom(t, out.Ref, out.Off, out.Data))
			// Keep the grown backing array for the next retry; the
			// handles are value types, so nothing is pinned.
			e.pendBuf = pends[:0]
			for _, p := range pends {
				err = firstErr(err, p.Wait())
			}
		} else {
			for _, in := range ins {
				if err = e.sys.CopyToDPURef(t, in.Ref, in.Off, in.Data); err != nil {
					break
				}
			}
			if err == nil {
				ls, err = e.sys.LaunchDPU(t, tasklets, kernel)
			}
			if err == nil {
				err = e.sys.CopyFromDPURefInto(t, out.Ref, out.Off, out.Data)
			}
		}
		if err == nil {
			st.Retries++
			st.Cycles += ls.Cycles
			st.Seconds += ls.Seconds
			return nil
		}
		if errors.Is(err, dpu.ErrDPUDead) {
			e.markDown(t)
			continue
		}
		if _, ok := host.AsFaultReport(err); !ok {
			return err
		}
		// Transient fault: try again, possibly on another target.
	}
	return fmt.Errorf("exec: shard re-dispatch failed %d times", maxRedispatch)
}

// shardIns builds the re-dispatch input list for wave position i from
// the workset's scatter streams, reusing the engine's scratch slices.
// The parallel entry list keeps each stream's resident entry aligned
// with its Xfer so redispatch can invalidate the targets it touches.
func (e *Engine) shardIns(streams []Stream, i int) ([]Xfer, []*ResidentEntry) {
	ins := e.insBuf[:0]
	ents := e.entBuf[:0]
	for _, s := range streams {
		ins = append(ins, Xfer{Ref: s.Ref, Off: s.Off, Data: s.Bufs[i]})
		ents = append(ents, s.Resident)
	}
	e.insBuf, e.entBuf = ins, ents
	return ins, ents
}

// Run dispatches every shard of ws, synchronously or pipelined per the
// engine's configuration. st accumulates: callers zero it (or carry it
// across layers) themselves.
func (e *Engine) Run(ws WorkSet, st *Stats) error {
	pre := *st
	var err error
	if e.pipe {
		err = e.runPipelined(ws, st)
	} else {
		err = e.runSync(ws, st)
	}
	if e.met != nil || e.ev != nil {
		e.account(pre, st, err)
	}
	return err
}

// serialGather reports whether ws gathers one DPU at a time.
func serialGather(ws WorkSet) bool {
	if sg, ok := ws.(SerialGatherer); ok {
		return sg.SerialGather()
	}
	return false
}

// runSync is the synchronous wave loop: per wave of up to NumDPUs
// shards — encode, full-system scatter of every stream, launch on the
// wave's shards, gather (sharded, or serial per-DPU for SerialGatherer
// worksets), re-dispatch failed shards onto survivors, decode in input
// order.
func (e *Engine) runSync(ws WorkSet, st *Stats) error {
	for _, b := range ws.Broadcasts() {
		if err := e.Broadcast(b); err != nil {
			return err
		}
	}
	nd := e.waveWidth(ws)
	total := ws.Shards()
	tasklets := ws.Tasklets()
	st.Tasklets = tasklets
	kernel := ws.Kernel()
	serial := serialGather(ws)

	for start := 0; start < total; start += nd {
		n := total - start
		if n > nd {
			n = nd
		}
		e.waveSeq++
		seq := e.waveSeq
		ws.Encode(0, start, n)
		failed := e.seedFailed(n)

		t0 := e.now()
		streams := ws.Scatter(0, n)
		for _, s := range streams {
			if s.Resident != nil {
				if err := e.scatterResident(s, n, failed); err != nil {
					return err
				}
				continue
			}
			if err := e.mergeFailed(failed, e.sys.PushXferRef(s.Ref, s.Off, s.Bufs)); err != nil {
				return err
			}
		}
		t1 := e.span("scatter", seq, n, t0)

		ls, lerr := e.sys.LaunchOnInto(n, tasklets, kernel, e.perDPUBuf(n))
		if err := e.mergeFailed(failed, lerr); err != nil {
			return err
		}
		st.Waves++
		st.Cycles += ls.Cycles
		st.Seconds += ls.Seconds
		if n > st.DPUsUsed {
			st.DPUsUsed = n
		}
		if e.tsp != nil {
			e.tspLS, e.tspLSOK = ls, true
		}
		t2 := e.span("launch", seq, n, t1)

		g := ws.Gather(0, n)
		if serial {
			// Intact shards are gathered before any re-dispatch runs, so
			// a retry launch can safely reuse a DPU whose own results
			// were not yet read.
			for i := 0; i < n; i++ {
				if failed[i] {
					continue
				}
				if err := e.sys.CopyFromDPURefInto(i, g.Ref, g.Off, g.Bufs[i]); err != nil {
					if _, ok := host.AsFaultReport(err); !ok {
						return err
					}
					if errors.Is(err, dpu.ErrDPUDead) {
						e.markDown(i)
					}
					failed[i] = true
				}
			}
		} else {
			if err := e.mergeFailed(failed, e.sys.GatherXferRefInto(g.Ref, g.Off, len(g.Bufs[0]), g.Bufs[:n])); err != nil {
				return err
			}
		}
		t3 := e.span("gather", seq, n, t2)

		retried := false
		for i := 0; i < n; i++ {
			if failed[i] {
				retried = true
				ins, ents := e.shardIns(streams, i)
				if err := e.redispatch(i, ins, ents, Xfer{Ref: g.Ref, Off: g.Off, Data: g.Bufs[i]}, tasklets, kernel, st); err != nil {
					return err
				}
			}
		}
		if retried {
			e.span("retry", seq, n, t3)
		}
		for i := 0; i < n; i++ {
			ws.Decode(0, start+i, i)
		}
	}
	return nil
}

// runPipelined is the double-buffered wave loop: wave w is enqueued as
// one fused scatter→launch→gather command (extra scatter streams as
// separate queued pushes ahead of it) and wave w-1 is flushed — waited,
// retried, decoded — while it runs. The per-wave launch statistics are
// identical to the synchronous loop's, so Stats and all simulated
// clocks match the synchronous path bit for bit.
func (e *Engine) runPipelined(ws WorkSet, st *Stats) error {
	sys := e.sys
	bcasts := ws.Broadcasts()
	// Claim every broadcast handle before the first wave is enqueued: a
	// DPU the redelivery cannot reach must be marked down — its shards
	// forced onto survivors — before it computes on stale data.
	if len(bcasts) > 0 {
		pends := make([]host.Pending, len(bcasts))
		for i, b := range bcasts {
			if b.Resident != nil {
				// Resident broadcasts deliver (or skip) synchronously
				// through the cache's generation stamps; the queued ops
				// inside are serialized like any other command.
				if err := e.broadcastResident(b); err != nil {
					sys.Sync()
					return err
				}
				continue
			}
			pends[i] = sys.EnqueueCopyTo(b.Ref, b.Off, b.Data)
		}
		for i, b := range bcasts {
			if b.Resident != nil {
				continue
			}
			if err := e.finishBroadcast(pends[i].Wait(), b); err != nil {
				sys.Sync()
				return err
			}
		}
	}
	nd := e.waveWidth(ws)
	total := ws.Shards()
	tasklets := ws.Tasklets()
	st.Tasklets = tasklets
	kernel := ws.Kernel()

	w := 0
	for start := 0; start < total; start += nd {
		n := total - start
		if n > nd {
			n = nd
		}
		sl := &e.slots[w&1]
		// The slot's buffers are queue-owned until its wave completes;
		// flush (wait, retry, decode) before re-encoding into them.
		if err := e.flush(ws, sl, st); err != nil {
			return err
		}
		e.waveSeq++
		ws.Encode(sl.idx, start, n)
		streams := ws.Scatter(sl.idx, n)
		sl.extras = sl.extras[:0]
		if cap(sl.forced) < n {
			sl.forced = make([]bool, n)
		}
		sl.forced = sl.forced[:n]
		for i := range sl.forced {
			sl.forced[i] = false
		}
		for _, s := range streams[1:] {
			if s.Resident != nil {
				if err := e.scatterResident(s, n, sl.forced); err != nil {
					sys.Sync()
					return err
				}
				continue
			}
			sl.extras = append(sl.extras, sys.EnqueuePushXfer(s.Ref, s.Off, s.Bufs))
		}
		g := ws.Gather(sl.idx, n)
		sl.t0 = e.now()
		wv := host.Wave{
			DPUs:      n,
			Tasklets:  tasklets,
			Kernel:    kernel,
			Stats:     &sl.stats,
			Gather:    g.Ref,
			GatherOff: g.Off,
			Out:       g.Bufs[:n],
		}
		if s0 := streams[0]; s0.Resident != nil {
			// The primary stream is weight-resident: deliver (or skip)
			// it now through the cache and leave the wave's scatter ref
			// zero so the queue skips that phase entirely.
			if err := e.scatterResident(s0, n, sl.forced); err != nil {
				sys.Sync()
				return err
			}
		} else {
			wv.Scatter, wv.ScatterOff, wv.In = s0.Ref, s0.Off, s0.Bufs[:n]
		}
		sl.pend = sys.EnqueueWave(wv)
		sl.seq = e.waveSeq
		sl.start, sl.n = start, n
		sl.busy = true
		w++
	}
	// Drain the in-flight waves, older slot first (decode order).
	if err := e.flush(ws, &e.slots[w&1], st); err != nil {
		return err
	}
	return e.flush(ws, &e.slots[(w+1)&1], st)
}

// flush completes one in-flight wave: claim its queue handles, fold
// partial failures into the failed-shard set, account the launch,
// re-dispatch failed shards through the queue (serialized behind the
// already-enqueued next wave: that wave's fused gather runs before the
// retry overwrites any of its DPUs' symbols, and the wave after it
// re-scatters everything the retry clobbered), then decode the wave in
// input order.
func (e *Engine) flush(ws WorkSet, sl *waveSlot, st *Stats) error {
	if !sl.busy {
		return nil
	}
	sl.busy = false
	sl.errs = sl.errs[:0]
	for _, p := range sl.extras {
		sl.errs = append(sl.errs, p.Wait())
	}
	waveErr := sl.pend.Wait()
	failed := e.seedFailed(sl.n)
	for i := 0; i < sl.n && i < len(sl.forced); i++ {
		if sl.forced[i] {
			failed[i] = true
		}
	}
	for _, err := range sl.errs {
		if ferr := e.mergeFailed(failed, err); ferr != nil {
			e.sys.Sync() // drain the queue before reporting a fatal error
			return ferr
		}
	}
	if ferr := e.mergeFailed(failed, waveErr); ferr != nil {
		e.sys.Sync()
		return ferr
	}
	st.Waves++
	st.Cycles += sl.stats.Cycles
	st.Seconds += sl.stats.Seconds
	if sl.n > st.DPUsUsed {
		st.DPUsUsed = sl.n
	}
	if e.tsp != nil {
		e.tspLS, e.tspLSOK = sl.stats, true
	}
	t1 := e.span("wave", sl.seq, sl.n, sl.t0)
	streams := ws.Scatter(sl.idx, sl.n)
	g := ws.Gather(sl.idx, sl.n)
	retried := false
	for i := 0; i < sl.n; i++ {
		if failed[i] {
			retried = true
			ins, ents := e.shardIns(streams, i)
			if err := e.redispatch(i, ins, ents, Xfer{Ref: g.Ref, Off: g.Off, Data: g.Bufs[i]}, ws.Tasklets(), ws.Kernel(), st); err != nil {
				e.sys.Sync()
				return err
			}
		}
	}
	if retried {
		e.span("retry", sl.seq, sl.n, t1)
	}
	for i := 0; i < sl.n; i++ {
		ws.Decode(sl.idx, sl.start+i, i)
	}
	return nil
}

// now returns the wall clock only when span recording is armed (a
// timeline, a metrics registry, or a request span; all consume phase
// timings).
func (e *Engine) now() time.Time {
	if e.tl == nil && e.met == nil && e.tsp == nil {
		return time.Time{}
	}
	return time.Now()
}

// span records [t0, now] under name — into the timeline, the phase
// histogram, the request trace, and the per-wave event log, whichever
// are armed — and returns its end instant.
func (e *Engine) span(name string, wave, shards int, t0 time.Time) time.Time {
	if e.tl == nil && e.met == nil && e.tsp == nil {
		if name == "gather" || name == "wave" {
			e.eventWave(wave, shards)
		}
		return time.Time{}
	}
	t1 := time.Now()
	if e.tl != nil {
		e.tl.Record(name, wave, shards, t0, t1)
	}
	if e.met != nil {
		e.met.phase(name).Observe(uint64(t1.Sub(t0)))
	}
	if e.tsp != nil {
		e.traceSpan(name, wave, shards, t0, t1)
	}
	if name == "gather" || name == "wave" {
		e.eventWave(wave, shards)
	}
	return t1
}

package mnist

import (
	"math/rand"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(50, 42)
	b := Generate(50, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("image %d differs between runs with same seed", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a := Generate(10, 1)
	b := Generate(10, 2)
	same := 0
	for i := range a {
		if a[i].Pixels == b[i].Pixels {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateClassBalance(t *testing.T) {
	imgs := Generate(100, 7)
	counts := make(map[int]int)
	for _, im := range imgs {
		counts[im.Label]++
	}
	for c := 0; c < NumClasses; c++ {
		if counts[c] != 10 {
			t.Errorf("class %d count = %d, want 10", c, counts[c])
		}
	}
}

func TestRenderValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Render(-1, rng); err == nil {
		t.Error("negative digit accepted")
	}
	if _, err := Render(10, rng); err == nil {
		t.Error("digit 10 accepted")
	}
}

func TestRenderedDigitsHaveInk(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for d := 0; d < NumClasses; d++ {
		img, err := Render(d, rng)
		if err != nil {
			t.Fatal(err)
		}
		ink := 0
		for _, p := range img.Pixels {
			if p >= 128 {
				ink++
			}
		}
		// Every glyph must have a plausible stroke mass: not blank, not
		// mostly filled.
		if ink < 20 || ink > PixelCount/2 {
			t.Errorf("digit %d has %d ink pixels", d, ink)
		}
		if img.Label != d {
			t.Errorf("digit %d labeled %d", d, img.Label)
		}
	}
}

func TestDigitsAreDistinguishable(t *testing.T) {
	// Averaged over jitter, different digits must differ in many pixels;
	// identical class renders must be more similar than cross-class.
	rng := rand.New(rand.NewSource(3))
	mean := func(d int) []float64 {
		acc := make([]float64, PixelCount)
		const n = 20
		for i := 0; i < n; i++ {
			img, _ := Render(d, rng)
			for p, v := range img.Pixels {
				if v >= 128 {
					acc[p]++
				}
			}
		}
		for p := range acc {
			acc[p] /= n
		}
		return acc
	}
	m1 := mean(1)
	m8 := mean(8)
	var dist float64
	for p := range m1 {
		d := m1[p] - m8[p]
		dist += d * d
	}
	if dist < 10 {
		t.Errorf("digits 1 and 8 too similar: L2² = %v", dist)
	}
}

func TestBinarize(t *testing.T) {
	var img Image
	img.Pixels[0] = 127
	img.Pixels[1] = 128
	img.Pixels[2] = 255
	b := img.Binarize()
	if b[0] != 0 || b[1] != 1 || b[2] != 1 {
		t.Errorf("Binarize thresholds wrong: %v %v %v", b[0], b[1], b[2])
	}
}

func TestPackLayout(t *testing.T) {
	var img Image
	img.Pixels[0] = 255      // row 0, col 0
	img.Pixels[27] = 255     // row 0, col 27
	img.Pixels[28] = 255     // row 1, col 0
	img.Pixels[783] = 255    // row 27, col 27
	img.Pixels[5*28+3] = 255 // row 5, col 3
	p := img.Pack()

	row := func(r int) uint32 {
		return uint32(p[r*4]) | uint32(p[r*4+1])<<8 | uint32(p[r*4+2])<<16 | uint32(p[r*4+3])<<24
	}
	if row(0) != (1 | 1<<27) {
		t.Errorf("row 0 = %#x", row(0))
	}
	if row(1) != 1 {
		t.Errorf("row 1 = %#x", row(1))
	}
	if row(27) != 1<<27 {
		t.Errorf("row 27 = %#x", row(27))
	}
	if row(5) != 1<<3 {
		t.Errorf("row 5 = %#x", row(5))
	}
	// Padding bytes beyond 112 must be zero.
	for i := Side * 4; i < PackedSize; i++ {
		if p[i] != 0 {
			t.Errorf("padding byte %d = %d", i, p[i])
		}
	}
}

func TestPackedBatchFillsOneDMATransfer(t *testing.T) {
	// 16 images at PackedSize bytes must exactly fill the 2048-byte DMA
	// limit (§4.1.3).
	if 16*PackedSize != 2048 {
		t.Fatalf("16 × %d = %d, want 2048", PackedSize, 16*PackedSize)
	}
}

func TestLoadSplit(t *testing.T) {
	ds := Load(30, 10, 5)
	if len(ds.Train) != 30 || len(ds.Test) != 10 {
		t.Fatalf("split sizes %d/%d", len(ds.Train), len(ds.Test))
	}
	// Train and test come from different jitter streams.
	if ds.Train[0].Pixels == ds.Test[0].Pixels {
		t.Error("train and test share images")
	}
}

func TestStringArt(t *testing.T) {
	img, _ := Render(0, rand.New(rand.NewSource(9)))
	s := img.String()
	if len(s) != (Side+1)*Side {
		t.Errorf("ASCII art length %d", len(s))
	}
}

// Package mnist generates a deterministic synthetic stand-in for the
// MNIST handwritten-digit dataset (§4.1.2).
//
// The real dataset is not vendored; the eBNN experiments need 28×28
// one-byte-per-pixel images in ten learnable classes, and this package
// renders digits as thick seven-segment glyphs with per-image jitter
// (translation, segment waviness, speckle noise) from a seeded PRNG, so
// every run of the experiments sees the same data.
package mnist

import (
	"fmt"
	"math/rand"
)

// Side is the image edge length in pixels; images are Side×Side bytes,
// matching MNIST's 28×28 layout.
const Side = 28

// PixelCount is the number of bytes in one image.
const PixelCount = Side * Side

// NumClasses is the number of digit classes.
const NumClasses = 10

// Image is one labeled digit.
type Image struct {
	// Pixels holds row-major grayscale values, 0 = background.
	Pixels [PixelCount]byte
	// Label is the digit 0..9.
	Label int
}

// Dataset is a train/test split.
type Dataset struct {
	Train []Image
	Test  []Image
}

// segment endpoints in a normalized 0..1 glyph box:
// A=top, B=top-right, C=bottom-right, D=bottom, E=bottom-left,
// F=top-left, G=middle.
type segment struct {
	x0, y0, x1, y1 float64
}

var segments = map[byte]segment{
	'A': {0.15, 0.08, 0.85, 0.08},
	'B': {0.85, 0.08, 0.85, 0.50},
	'C': {0.85, 0.50, 0.85, 0.92},
	'D': {0.15, 0.92, 0.85, 0.92},
	'E': {0.15, 0.50, 0.15, 0.92},
	'F': {0.15, 0.08, 0.15, 0.50},
	'G': {0.15, 0.50, 0.85, 0.50},
}

// digitSegments is the classic seven-segment encoding.
var digitSegments = [NumClasses]string{
	0: "ABCDEF",
	1: "BC",
	2: "ABGED",
	3: "ABGCD",
	4: "FGBC",
	5: "AFGCD",
	6: "AFGECD",
	7: "ABC",
	8: "ABCDEFG",
	9: "ABCDFG",
}

// Render draws one digit with the given jitter source.
func Render(digit int, rng *rand.Rand) (Image, error) {
	if digit < 0 || digit >= NumClasses {
		return Image{}, fmt.Errorf("mnist: digit %d outside 0..9", digit)
	}
	img := Image{Label: digit}

	// Per-image transform: translate up to ±2px, scale 0.85..1.05,
	// shear up to ±0.12.
	var (
		dx    = (rng.Float64() - 0.5) * 4
		dy    = (rng.Float64() - 0.5) * 4
		scale = 0.85 + rng.Float64()*0.2
		shear = (rng.Float64() - 0.5) * 0.24
		thick = 1.2 + rng.Float64()*0.8
	)

	for _, s := range digitSegments[digit] {
		seg := segments[byte(s)]
		drawSegment(&img, seg, dx, dy, scale, shear, thick, rng)
	}

	// Speckle noise: a few random low-intensity pixels.
	for i := 0; i < 12; i++ {
		p := rng.Intn(PixelCount)
		if img.Pixels[p] == 0 {
			img.Pixels[p] = byte(20 + rng.Intn(60))
		}
	}
	return img, nil
}

func drawSegment(img *Image, seg segment, dx, dy, scale, shear, thick float64, rng *rand.Rand) {
	const steps = 48
	// Waviness gives segments a hand-drawn look.
	wave := (rng.Float64() - 0.5) * 1.6
	for i := 0; i <= steps; i++ {
		t := float64(i) / steps
		x := seg.x0 + (seg.x1-seg.x0)*t
		y := seg.y0 + (seg.y1-seg.y0)*t
		// Apply shear, scale around the glyph center, then jitter.
		x += shear * (y - 0.5)
		x = 0.5 + (x-0.5)*scale
		y = 0.5 + (y-0.5)*scale
		px := x*float64(Side-6) + 3 + dx + wave*bump(t)
		py := y*float64(Side-6) + 3 + dy
		stamp(img, px, py, thick)
	}
}

// bump is a smooth 0->1->0 profile over t in [0,1], used for waviness.
func bump(t float64) float64 {
	return 4 * t * (1 - t)
}

// stamp writes a filled disc of the given radius with soft edges.
func stamp(img *Image, cx, cy, r float64) {
	lo := func(v float64) int {
		n := int(v - r - 1)
		if n < 0 {
			n = 0
		}
		return n
	}
	hi := func(v float64) int {
		n := int(v + r + 1)
		if n > Side-1 {
			n = Side - 1
		}
		return n
	}
	for y := lo(cy); y <= hi(cy); y++ {
		for x := lo(cx); x <= hi(cx); x++ {
			ddx, ddy := float64(x)-cx, float64(y)-cy
			d2 := ddx*ddx + ddy*ddy
			if d2 > r*r {
				continue
			}
			// Intensity falls off toward the stroke edge.
			v := 255 * (1 - 0.35*d2/(r*r))
			p := y*Side + x
			if byte(v) > img.Pixels[p] {
				img.Pixels[p] = byte(v)
			}
		}
	}
}

// Generate renders n digits cycling through the classes, deterministically
// for a given seed.
func Generate(n int, seed int64) []Image {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Image, n)
	for i := range out {
		img, err := Render(i%NumClasses, rng)
		if err != nil {
			// Unreachable: i%NumClasses is always in range.
			panic(err)
		}
		out[i] = img
	}
	// Shuffle so class order carries no information.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Load builds a train/test split with disjoint jitter streams.
func Load(trainN, testN int, seed int64) Dataset {
	return Dataset{
		Train: Generate(trainN, seed),
		Test:  Generate(testN, seed+1),
	}
}

// Binarize thresholds the image at 128, returning 0/1 pixels — the input
// quantization eBNN applies (§4.1.1).
func (im *Image) Binarize() [PixelCount]byte {
	var out [PixelCount]byte
	for i, p := range im.Pixels {
		if p >= 128 {
			out[i] = 1
		}
	}
	return out
}

// PackedSize is the byte size of one bit-packed binarized image as
// transferred to the DPU: each of the 28 rows packs into a uint32 (4
// bytes), 112 bytes total, padded to 128 so a 16-image batch fills one
// 2048-byte DMA transfer exactly (§4.1.3).
const PackedSize = 128

// Pack binarizes and bit-packs the image for DPU transfer: row r occupies
// bytes [4r, 4r+4) as a little-endian uint32 whose bit c is pixel (r, c).
func (im *Image) Pack() [PackedSize]byte {
	var out [PackedSize]byte
	bits := im.Binarize()
	for r := 0; r < Side; r++ {
		var w uint32
		for c := 0; c < Side; c++ {
			if bits[r*Side+c] != 0 {
				w |= 1 << uint(c)
			}
		}
		out[r*4] = byte(w)
		out[r*4+1] = byte(w >> 8)
		out[r*4+2] = byte(w >> 16)
		out[r*4+3] = byte(w >> 24)
	}
	return out
}

// String renders the image as ASCII art for debugging.
func (im *Image) String() string {
	shades := []byte(" .:-=+*#%@")
	buf := make([]byte, 0, (Side+1)*Side)
	for y := 0; y < Side; y++ {
		for x := 0; x < Side; x++ {
			v := int(im.Pixels[y*Side+x]) * (len(shades) - 1) / 255
			buf = append(buf, shades[v])
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}

package mnist

import "testing"

// BenchmarkGenerate measures digit rendering throughput.
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Generate(10, int64(i))
	}
}

// BenchmarkPack measures the bit-packing used for DPU transfer.
func BenchmarkPack(b *testing.B) {
	imgs := Generate(16, 1)
	b.SetBytes(PixelCount)
	var sink [PackedSize]byte
	for i := 0; i < b.N; i++ {
		sink = imgs[i%16].Pack()
	}
	_ = sink
}

// BenchmarkBinarize measures input thresholding.
func BenchmarkBinarize(b *testing.B) {
	imgs := Generate(16, 1)
	var sink [PixelCount]byte
	for i := 0; i < b.N; i++ {
		sink = imgs[i%16].Binarize()
	}
	_ = sink
}

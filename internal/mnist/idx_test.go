package mnist

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestIDXRoundTrip(t *testing.T) {
	imgs := Generate(25, 81)
	var ibuf, lbuf bytes.Buffer
	if err := WriteIDXImages(&ibuf, imgs); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(&lbuf, imgs); err != nil {
		t.Fatal(err)
	}
	// IDX3 size: 16-byte header + 25*784 pixels.
	if ibuf.Len() != 16+25*PixelCount {
		t.Errorf("image stream = %d bytes", ibuf.Len())
	}
	if lbuf.Len() != 8+25 {
		t.Errorf("label stream = %d bytes", lbuf.Len())
	}
	got, err := ReadIDX(&ibuf, &lbuf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 25 {
		t.Fatalf("read %d images", len(got))
	}
	for i := range imgs {
		if got[i] != imgs[i] {
			t.Fatalf("image %d differs after round trip", i)
		}
	}
}

func TestIDXTruncatedRead(t *testing.T) {
	imgs := Generate(10, 82)
	var ibuf, lbuf bytes.Buffer
	if err := WriteIDXImages(&ibuf, imgs); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(&lbuf, imgs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIDX(&ibuf, &lbuf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("maxImages=4 read %d", len(got))
	}
}

func TestIDXRejectsCorruption(t *testing.T) {
	imgs := Generate(3, 83)
	build := func() (ib, lb []byte) {
		var ibuf, lbuf bytes.Buffer
		if err := WriteIDXImages(&ibuf, imgs); err != nil {
			t.Fatal(err)
		}
		if err := WriteIDXLabels(&lbuf, imgs); err != nil {
			t.Fatal(err)
		}
		return ibuf.Bytes(), lbuf.Bytes()
	}

	ib, lb := build()
	ib[3] = 0xFF // bad image magic
	if _, err := ReadIDX(bytes.NewReader(ib), bytes.NewReader(lb), 0); err == nil {
		t.Error("bad image magic accepted")
	}

	ib, lb = build()
	lb[3] = 0xFF // bad label magic
	if _, err := ReadIDX(bytes.NewReader(ib), bytes.NewReader(lb), 0); err == nil {
		t.Error("bad label magic accepted")
	}

	ib, lb = build()
	binary.BigEndian.PutUint32(lb[4:], 99) // count mismatch
	if _, err := ReadIDX(bytes.NewReader(ib), bytes.NewReader(lb), 0); err == nil {
		t.Error("count mismatch accepted")
	}

	ib, lb = build()
	binary.BigEndian.PutUint32(ib[8:], 14) // wrong dimensions
	if _, err := ReadIDX(bytes.NewReader(ib), bytes.NewReader(lb), 0); err == nil {
		t.Error("wrong dimensions accepted")
	}

	ib, lb = build()
	lb[8] = 99 // label out of range
	if _, err := ReadIDX(bytes.NewReader(ib), bytes.NewReader(lb), 0); err == nil {
		t.Error("out-of-range label accepted")
	}

	ib, lb = build()
	if _, err := ReadIDX(bytes.NewReader(ib[:100]), bytes.NewReader(lb), 0); err == nil {
		t.Error("truncated images accepted")
	}
}

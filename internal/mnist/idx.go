package mnist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// IDX format support. The real MNIST distribution ships as IDX files
// (big-endian magic, dimension sizes, raw bytes); these readers/writers
// let users of this package substitute the genuine dataset for the
// synthetic one when they have it, and serve as the interchange format
// for the synthetic digits.

// IDX magic numbers: 0x08 = unsigned byte data, preceded by the
// dimension count.
const (
	idxMagicImages = 0x00000803 // 3 dimensions: count, rows, cols
	idxMagicLabels = 0x00000801 // 1 dimension: count
)

// WriteIDXImages serializes images (pixels only) in the IDX3 format.
func WriteIDXImages(w io.Writer, imgs []Image) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{idxMagicImages, uint32(len(imgs)), Side, Side}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.BigEndian, v); err != nil {
			return fmt.Errorf("mnist: writing IDX header: %w", err)
		}
	}
	for i := range imgs {
		if _, err := bw.Write(imgs[i].Pixels[:]); err != nil {
			return fmt.Errorf("mnist: writing image %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// WriteIDXLabels serializes the labels in the IDX1 format.
func WriteIDXLabels(w io.Writer, imgs []Image) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{idxMagicLabels, uint32(len(imgs))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.BigEndian, v); err != nil {
			return fmt.Errorf("mnist: writing IDX header: %w", err)
		}
	}
	for i := range imgs {
		if err := bw.WriteByte(byte(imgs[i].Label)); err != nil {
			return fmt.Errorf("mnist: writing label %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadIDX reads paired IDX image and label streams (e.g.
// train-images-idx3-ubyte and train-labels-idx1-ubyte) into labeled
// images. maxImages > 0 truncates the read.
func ReadIDX(images, labels io.Reader, maxImages int) ([]Image, error) {
	bi := bufio.NewReader(images)
	bl := bufio.NewReader(labels)

	var ihdr [4]uint32
	if err := binary.Read(bi, binary.BigEndian, &ihdr); err != nil {
		return nil, fmt.Errorf("mnist: reading image header: %w", err)
	}
	if ihdr[0] != idxMagicImages {
		return nil, fmt.Errorf("mnist: bad image magic %#x (want %#x)", ihdr[0], idxMagicImages)
	}
	if ihdr[2] != Side || ihdr[3] != Side {
		return nil, fmt.Errorf("mnist: image dimensions %dx%d, want %dx%d", ihdr[2], ihdr[3], Side, Side)
	}
	var lhdr [2]uint32
	if err := binary.Read(bl, binary.BigEndian, &lhdr); err != nil {
		return nil, fmt.Errorf("mnist: reading label header: %w", err)
	}
	if lhdr[0] != idxMagicLabels {
		return nil, fmt.Errorf("mnist: bad label magic %#x (want %#x)", lhdr[0], idxMagicLabels)
	}
	if ihdr[1] != lhdr[1] {
		return nil, fmt.Errorf("mnist: %d images but %d labels", ihdr[1], lhdr[1])
	}

	n := int(ihdr[1])
	if maxImages > 0 && n > maxImages {
		n = maxImages
	}
	out := make([]Image, n)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(bi, out[i].Pixels[:]); err != nil {
			return nil, fmt.Errorf("mnist: reading image %d: %w", i, err)
		}
		lb, err := bl.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("mnist: reading label %d: %w", i, err)
		}
		if lb >= NumClasses {
			return nil, fmt.Errorf("mnist: label %d of image %d outside 0..9", lb, i)
		}
		out[i].Label = int(lb)
	}
	return out, nil
}

package model

// Algorithm 3: the worst-case estimate of pPIM's LUT-based multiplication
// cost. Operands of x bits split into 4-bit blocks; every block pair
// multiplies through a LUT (one cycle each), and the partial products are
// summed column by column with carries rippling leftward (Fig 5.3). The
// number of adds-without-carry per column follows the Fig 5.4 tent
// pattern (+2 per column to the midpoint, then -2), and the recursive
// carry structure makes the total adds the running-sum of that pattern.

// PPIMAddsPattern returns the Fig 5.4 "number of internal adds without
// carry" sequence g(n) for an operand of the given bit width, ordered
// from the leftmost column (n = k) to the rightmost (n = 1), where
// k = bits/2.
func PPIMAddsPattern(bits int) []int {
	k := bits / 2
	out := make([]int, 0, k)
	for n := k; n >= 1; n-- {
		out = append(out, addsWithoutCarry(n, k))
	}
	return out
}

func addsWithoutCarry(n, k int) int {
	if 2*n > k {
		return -2*n + 2*k
	}
	return 2*n - 2
}

// PPIMAddsEstimate runs Algorithm 3: the total number of internal LUT
// additions for a worst-case block-by-block multiplication of two
// bits-wide operands.
func PPIMAddsEstimate(bits int) int {
	k := bits / 2
	total := 0
	temp := 0
	for n := k; n >= 1; n-- { // the thesis writes this recursion iteratively here
		temp += addsWithoutCarry(n, k)
		total += temp
	}
	return total
}

// PPIMMultEstimate is the full worst-case multiplication cycle count:
// one LUT cycle per 4-bit block product ((bits/4)²) plus the Algorithm 3
// additions. It reproduces the starred Table 5.2 entries: 124 cycles at
// 16 bits and 1016 at 32.
func PPIMMultEstimate(bits int) int {
	blocks := bits / 4
	if blocks < 1 {
		blocks = 1
	}
	return blocks*blocks + PPIMAddsEstimate(bits)
}

package model

import (
	"strings"
	"testing"
)

func TestWorkloadCatalog(t *testing.T) {
	ws := Workloads()
	if len(ws) < 5 {
		t.Fatalf("catalog has %d workloads", len(ws))
	}
	byName := map[string]Workload{}
	for _, w := range ws {
		if w.MACs <= 0 || w.Bits <= 0 {
			t.Errorf("workload %s has invalid parameters %+v", w.Name, w)
		}
		byName[w.Name] = w
	}
	if byName["AlexNet"].MACs != AlexNetTOPs {
		t.Errorf("AlexNet MACs = %g, want the Table 5.1 value %g",
			byName["AlexNet"].MACs, AlexNetTOPs)
	}
	// Ordering sanity: eBNN << AlexNet << YOLOv3.
	if !(byName["eBNN"].MACs < byName["AlexNet"].MACs &&
		byName["AlexNet"].MACs < byName["YOLOv3-416"].MACs) {
		t.Error("workload sizes out of order")
	}
}

func TestEvaluateWorkloadsConsistentWithTables(t *testing.T) {
	// The AlexNet rows must equal the Table 5.1 + Table 5.3 composition.
	var alexUPMEM, alexPPIM WorkloadResult
	for _, r := range EvaluateWorkloads() {
		if r.Workload != "AlexNet" {
			continue
		}
		switch r.PIM {
		case "UPMEM":
			alexUPMEM = r
		case "pPIM":
			alexPPIM = r
		}
	}
	approx(t, "AlexNet UPMEM Ttot", alexUPMEM.TtotS, 2.57e-1, 0.005)
	approx(t, "AlexNet pPIM Ttot", alexPPIM.TtotS, 6.90e-2, 0.005)
	if alexUPMEM.FramesPerSec <= 0 {
		t.Error("non-positive frames/s")
	}
}

func TestEvaluateWorkloadsMonotoneInMACs(t *testing.T) {
	// For a fixed PIM, more MACs never means less total time.
	perPIM := map[string][]WorkloadResult{}
	for _, r := range EvaluateWorkloads() {
		perPIM[r.PIM] = append(perPIM[r.PIM], r)
	}
	for name, rs := range perPIM {
		for i := range rs {
			for j := range rs {
				if rs[i].MACs < rs[j].MACs && rs[i].TtotS > rs[j].TtotS {
					t.Errorf("%s: %s (%.3g MACs, %.3g s) slower than %s (%.3g MACs, %.3g s)",
						name, rs[i].Workload, rs[i].MACs, rs[i].TtotS,
						rs[j].Workload, rs[j].MACs, rs[j].TtotS)
				}
			}
		}
	}
}

func TestBestPIMPerWorkload(t *testing.T) {
	best := BestPIMPerWorkload()
	if len(best) != len(Workloads()) {
		t.Fatalf("best map has %d entries", len(best))
	}
	// At 8-bit, pPIM's 8-cycle MAC at 1.25 GHz beats DRISA and UPMEM on
	// every compute-dominated workload (Table 5.1's conclusion).
	if best["AlexNet"] != "pPIM" {
		t.Errorf("AlexNet best = %s, want pPIM (Table 5.1)", best["AlexNet"])
	}
}

func TestFormatWorkloads(t *testing.T) {
	s := FormatWorkloads(EvaluateWorkloads())
	for _, want := range []string{"AlexNet", "ResNet-50", "YOLOv3-416", "frames/s"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// Sorted by workload size: eBNN/LeNet rows precede YOLOv3 rows.
	if strings.Index(s, "LeNet-5") > strings.Index(s, "YOLOv3-416") {
		t.Error("render not sorted by workload size")
	}
}

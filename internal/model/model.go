// Package model implements the thesis's chapter 5 analytic performance
// model for processing-in-memory architectures.
//
// The generic model (Eq 5.1) splits latency into computation and memory
// movement:
//
//	Ttot  = Tmem + Tcomp                        (5.1)
//	Tcomp = Ccomp / Freq                        (5.2)
//	Ccomp = Cop * ceil(TOPs / PEs)              (5.3)
//	Cop   = f(x) * C_BB * Dp                    (5.4, piecewise 5.5/5.6)
//	Tmem  = Ttransfer * ceil(TOPs / (PEs * sizebuf/(2*Lenop)))   (5.10)
//
// Per-PIM Cop functions follow Eq 5.7 (DRISA, bitwise), Eq 5.8 (UPMEM,
// pipelined CPU) and Eq 5.9 + Algorithm 3 (pPIM, LUT). The package
// reproduces Tables 5.1-5.3 exactly and provides the Table 5.4 / Fig 5.7
// benchmarking of seven PIM devices on eBNN and YOLOv3.
package model

import (
	"fmt"
	"math"
)

// AlexNetTOPs is the MAC count of AlexNet used throughout chapter 5
// (Table 5.1 row 9).
const AlexNetTOPs = 2.59e9

// Granularity classifies a PIM's processing-element design on the
// fine-to-coarse spectrum of Fig 5.1.
type Granularity int

// Granularities (Fig 5.1).
const (
	Bitwise Granularity = iota + 1
	LUT
	PipelinedCPU
)

func (g Granularity) String() string {
	switch g {
	case Bitwise:
		return "bitwise"
	case LUT:
		return "LUT"
	case PipelinedCPU:
		return "pipelined-CPU"
	default:
		return "granularity?"
	}
}

// PIM describes one architecture's model parameters.
type PIM struct {
	Name        string
	Granularity Granularity
	// Dp is the pipeline depth (Eq 5.4); 1 for unpipelined designs.
	Dp float64
	// CBB is the cycles per building-block execution (Eq 5.4).
	CBB float64
	// PEs is the number of parallel processing elements.
	PEs float64
	// FreqHz is the operating frequency.
	FreqHz float64
	// AccumScale is the accumulate-operation scale function f(x) in
	// building-block executions for an operand of x bits.
	AccumScale func(bits int) float64
	// MultScale is the multiply scale function f(x). Exact values come
	// from literature; estimated values use the thesis's estimation
	// methods (Alg 3 for pPIM, curve fit for DRISA, subroutine size for
	// UPMEM).
	MultScale func(bits int) float64
	// TtransferS is the external-to-local memory transfer time used by
	// the memory model (Eq 5.10, Table 5.3).
	TtransferS float64
	// SizeBufBits is the local buffer capacity per PE in bits.
	SizeBufBits float64
}

// MultCop returns Cop for one multiplication (Eq 5.4): MultScale × CBB × Dp.
func (p PIM) MultCop(bits int) float64 {
	return p.MultScale(bits) * p.CBB * p.Dp
}

// AccumCop returns Cop for one accumulate.
func (p PIM) AccumCop(bits int) float64 {
	return p.AccumScale(bits) * p.CBB * p.Dp
}

// MACCop returns Cop for one multiply-accumulate, the thesis's
// fundamental operation (Table 5.1 row 6 = rows 4+5 through Eq 5.4).
func (p PIM) MACCop(bits int) float64 {
	return (p.MultScale(bits) + p.AccumScale(bits)) * p.CBB * p.Dp
}

// Ccomp evaluates Eq 5.3 for the given per-operation cycles.
func Ccomp(cop, tops, pes float64) float64 {
	return cop * math.Ceil(tops/pes)
}

// Tcomp evaluates Eq 5.2/5.3.
func (p PIM) Tcomp(cop, tops float64) float64 {
	return Ccomp(cop, tops, p.PEs) / p.FreqHz
}

// OpsPerPE is the operand-pair capacity of one PE's local buffer:
// sizebuf / (2 * Lenop) (Eq 5.10 — two operands per operation).
func (p PIM) OpsPerPE(bits int) float64 {
	return math.Floor(p.SizeBufBits / (2 * float64(bits)))
}

// LocalOps is the whole system's locally-stageable operation count.
func (p PIM) LocalOps(bits int) float64 {
	return p.OpsPerPE(bits) * p.PEs
}

// Tmem evaluates Eq 5.10.
func (p PIM) Tmem(tops float64, bits int) float64 {
	return p.TtransferS * math.Ceil(tops/p.LocalOps(bits))
}

// Ttot evaluates Eq 5.1 for a MAC workload of tops operations. The
// thesis's model "assumes an unoptimized, worst case PIM solution that
// does not contain any overlap between memory transfer time and
// computation time" (§5.1), so the two terms add.
func (p PIM) Ttot(tops float64, bits int) float64 {
	return p.Tmem(tops, bits) + p.Tcomp(p.MACCop(bits), tops)
}

// TtotOverlapped is the best-case counterpart the thesis's worst-case
// assumption brackets: with perfect double-buffering, memory transfer
// hides behind computation and the total is their maximum. Real systems
// land between Ttot and TtotOverlapped.
func (p PIM) TtotOverlapped(tops float64, bits int) float64 {
	tmem := p.Tmem(tops, bits)
	tcomp := p.Tcomp(p.MACCop(bits), tops)
	if tmem > tcomp {
		return tmem
	}
	return tcomp
}

// --- the three modeled architectures of §5.2 ---

// UPMEM returns the pipelined-CPU model of Eq 5.8: Dp = 11, one cycle per
// instruction stage, with multiplication lowered to subroutines at and
// above 16 bits. The scale values reproduce Tables 5.1 and 5.2 (g(4) =
// g(8) = 4 instructions; 16- and 32-bit values estimated from the
// compiler-rt subroutines).
func UPMEM() PIM {
	return PIM{
		Name:        "UPMEM",
		Granularity: PipelinedCPU,
		Dp:          11,
		CBB:         1,
		PEs:         2560,
		FreqHz:      3.5e8,
		AccumScale: func(bits int) float64 {
			return 4 // add cycles are precision-independent (Table 3.1)
		},
		MultScale: func(bits int) float64 {
			switch {
			case bits <= 8:
				return 4 // g(4) = g(8) = 4 [31]
			case bits <= 16:
				return 370.0 / 11 // estimated subroutine size (Table 5.2)
			default:
				return 570.0 / 11
			}
		},
		TtransferS:  9.6e-5,
		SizeBufBits: 512000, // WRAM, 64 KB as counted in Table 5.3
	}
}

// PPIM returns the LUT model of Eq 5.9: single-cycle LUT building blocks,
// no pipeline. Multiplication scale uses literature values for 4/8 bits
// and Algorithm 3's worst-case estimate beyond (Table 5.2).
func PPIM() PIM {
	return PIM{
		Name:        "pPIM",
		Granularity: LUT,
		Dp:          1,
		CBB:         1,
		PEs:         256,
		FreqHz:      1.25e9,
		AccumScale: func(bits int) float64 {
			// One LUT pass per 4-bit block pair: 2 for 8-bit operands
			// (Table 5.1 row 4).
			v := float64(bits) / 4
			if v < 1 {
				v = 1
			}
			return v
		},
		MultScale: func(bits int) float64 {
			switch {
			case bits <= 4:
				return 1 // literature [16]
			case bits <= 8:
				return 6 // literature [16]
			default:
				return float64(PPIMMultEstimate(bits))
			}
		},
		TtransferS:  6.7e-9,
		SizeBufBits: 256,
	}
}

// DRISA returns the bitwise model of Eq 5.7 (the 3T1C organization used
// in Table 5.1). Accumulation is a ripple of bit-serial additions
// (x + log2 x); multiplication follows the thesis's curve fit over the
// literature values 110/200/380, extrapolating 740 at 32 bits
// (Table 5.2): f(x) = 20 + 22.5x.
func DRISA() PIM {
	return PIM{
		Name:        "DRISA",
		Granularity: Bitwise,
		Dp:          1,
		CBB:         1,
		PEs:         32768,
		FreqHz:      1.19e8,
		AccumScale: func(bits int) float64 {
			return float64(bits) + math.Log2(float64(bits))
		},
		MultScale: func(bits int) float64 {
			return 20 + 22.5*float64(bits)
		},
		TtransferS:  9.0e-8,
		SizeBufBits: 1048576, // subarray region per PE (Table 5.3)
	}
}

// Architectures returns the three §5.2 models in the thesis's column
// order for Tables 5.1-5.3.
func Architectures() []PIM {
	return []PIM{PPIM(), DRISA(), UPMEM()}
}

// ByName returns the named architecture model.
func ByName(name string) (PIM, error) {
	for _, p := range Architectures() {
		if p.Name == name {
			return p, nil
		}
	}
	return PIM{}, fmt.Errorf("model: unknown PIM %q", name)
}

package model

import (
	"fmt"
	"math"
	"strings"
)

// Table51Row is one architecture's column of Table 5.1 (computational
// model usage, 8-bit AlexNet).
type Table51Row struct {
	Name        string
	Dp, CBB     float64
	Bits        int
	AccumF      float64
	MultF       float64
	Cop         float64
	PEs         float64
	FreqHz      float64
	TOPs        float64
	CcompOneMAC float64
	TcompOneMAC float64
	CcompTOPs   float64
	TcompTOPs   float64
}

// Table51 computes Table 5.1 for the three §5.2 architectures at 8-bit
// AlexNet.
func Table51() []Table51Row {
	const bits = 8
	rows := make([]Table51Row, 0, 3)
	for _, p := range Architectures() {
		cop := p.MACCop(bits)
		rows = append(rows, Table51Row{
			Name:        p.Name,
			Dp:          p.Dp,
			CBB:         p.CBB,
			Bits:        bits,
			AccumF:      p.AccumScale(bits),
			MultF:       p.MultScale(bits),
			Cop:         cop,
			PEs:         p.PEs,
			FreqHz:      p.FreqHz,
			TOPs:        AlexNetTOPs,
			CcompOneMAC: cop,
			TcompOneMAC: cop / p.FreqHz,
			CcompTOPs:   Ccomp(cop, AlexNetTOPs, p.PEs),
			TcompTOPs:   p.Tcomp(cop, AlexNetTOPs),
		})
	}
	return rows
}

// Table52 returns the Cop for multiplication at each operand size
// (Table 5.2), in the paper's column order pPIM, DRISA, UPMEM.
func Table52() map[string]map[int]float64 {
	out := make(map[string]map[int]float64, 3)
	for _, p := range Architectures() {
		col := make(map[int]float64, 4)
		for _, bits := range []int{4, 8, 16, 32} {
			col[bits] = p.MultCop(bits)
		}
		out[p.Name] = col
	}
	return out
}

// Table53Row is one architecture's column of the memory-model analysis.
type Table53Row struct {
	Name        string
	TtransferS  float64
	TOPs        float64
	PEs         float64
	SizeBufBits float64
	LenOpBits   int
	OpsPerPE    float64
	LocalOps    float64
	TmemS       float64
	// TtotS adds the Table 5.1 Tcomp, giving the §5.3.1 totals.
	TtotS float64
}

// Table53 computes Table 5.3 (8-bit AlexNet).
func Table53() []Table53Row {
	const bits = 8
	rows := make([]Table53Row, 0, 3)
	for _, p := range Architectures() {
		tmem := p.Tmem(AlexNetTOPs, bits)
		rows = append(rows, Table53Row{
			Name:        p.Name,
			TtransferS:  p.TtransferS,
			TOPs:        AlexNetTOPs,
			PEs:         p.PEs,
			SizeBufBits: p.SizeBufBits,
			LenOpBits:   bits,
			OpsPerPE:    p.OpsPerPE(bits),
			LocalOps:    p.LocalOps(bits),
			TmemS:       tmem,
			TtotS:       tmem + p.Tcomp(p.MACCop(bits), AlexNetTOPs),
		})
	}
	return rows
}

// Device is one row of the Table 5.4 benchmarking: a PIM device with its
// published chip power/area and per-frame CNN latencies. The thesis
// measures UPMEM on hardware and derives the others analytically from
// the literature; both latencies enter this catalog as reported, and the
// throughput columns are recomputed from them.
type Device struct {
	Name       string
	PowerChipW float64
	AreaMM2    float64
	EBNNLatS   float64
	YOLOLatS   float64
	// Effective power/area per workload. For most devices these equal
	// the chip values; UPMEM's eBNN runs on a single DPU (0.12 W,
	// 3.75 mm²) while YOLOv3 engages up to 1024 DPUs (the largest
	// filter count) for power and an average of ~361 concurrent DPUs
	// for area, which is how the thesis's Table 5.4 numbers decompose.
	EBNNPowerW, EBNNAreaMM2 float64
	YOLOPowerW, YOLOAreaMM2 float64
}

// Throughputs per the Table 5.4 definitions: frames per second per watt
// and per mm².

// EBNNThroughputPower returns eBNN frames/s-W.
func (d Device) EBNNThroughputPower() float64 { return 1 / (d.EBNNLatS * d.EBNNPowerW) }

// EBNNThroughputArea returns eBNN frames/s-mm².
func (d Device) EBNNThroughputArea() float64 { return 1 / (d.EBNNLatS * d.EBNNAreaMM2) }

// YOLOThroughputPower returns YOLOv3 frames/s-W.
func (d Device) YOLOThroughputPower() float64 { return 1 / (d.YOLOLatS * d.YOLOPowerW) }

// YOLOThroughputArea returns YOLOv3 frames/s-mm².
func (d Device) YOLOThroughputArea() float64 { return 1 / (d.YOLOLatS * d.YOLOAreaMM2) }

// UPMEM per-DPU constants used in the Table 5.4 decomposition.
const (
	upmemDPUPowerW  = 0.12
	upmemDPUAreaMM2 = 3.75
	// upmemYOLOMaxDPUs is YOLOv3's largest per-layer DPU demand (1,024
	// filters); upmemYOLOAvgDPUs is the mean conv-layer filter count
	// (27,069 filters over 75 layers).
	upmemYOLOMaxDPUs = 1024
	upmemYOLOAvgDPUs = 27069.0 / 75
)

// Table54Devices returns the seven benchmarked devices with the thesis's
// published parameters (Table 5.4).
func Table54Devices() []Device {
	std := func(name string, pw, area, ebnn, yolo float64) Device {
		return Device{
			Name: name, PowerChipW: pw, AreaMM2: area,
			EBNNLatS: ebnn, YOLOLatS: yolo,
			EBNNPowerW: pw, EBNNAreaMM2: area,
			YOLOPowerW: pw, YOLOAreaMM2: area,
		}
	}
	upmem := Device{
		Name:       "UPMEM",
		PowerChipW: 0.96, AreaMM2: 30,
		EBNNLatS: 1.48e-3, YOLOLatS: 65,
		EBNNPowerW: upmemDPUPowerW, EBNNAreaMM2: upmemDPUAreaMM2,
		YOLOPowerW:  upmemYOLOMaxDPUs * upmemDPUPowerW,
		YOLOAreaMM2: upmemYOLOAvgDPUs * upmemDPUAreaMM2,
	}
	return []Device{
		upmem,
		std("pPIM", 3.5, 25.75, 3.80e-7, 0.68),
		std("DRISA-3T1C", 98, 65.2, 8.21e-7, 1.47),
		std("DRISA-1T1C-NOR", 98, 65.2, 1.96e-6, 3.51),
		std("SCOPE-Vanilla", 176.4, 273, 1.30e-8, 0.0233),
		std("SCOPE-H2d", 176.4, 273, 4.64e-8, 0.0831),
		std("LACC", 5.3, 54.8, 2.14e-7, 0.384),
	}
}

// SweepPoint is one sample of a Fig 5.5/5.6 series.
type SweepPoint struct {
	X      float64
	Cycles float64
}

// TOPsSweep produces the Fig 5.5(a)-(c) series: Ccomp versus total
// operations at fixed PEs, for a multiplication of the given width.
func (p PIM) TOPsSweep(bits int, tops []float64) []SweepPoint {
	cop := p.MultCop(bits)
	out := make([]SweepPoint, len(tops))
	for i, t := range tops {
		out[i] = SweepPoint{X: t, Cycles: Ccomp(cop, t, p.PEs)}
	}
	return out
}

// PESweep produces the Fig 5.5(d)-(f) series: Ccomp versus PE count at
// fixed total operations.
func (p PIM) PESweep(bits int, tops float64, pes []float64) []SweepPoint {
	cop := p.MultCop(bits)
	out := make([]SweepPoint, len(pes))
	for i, n := range pes {
		out[i] = SweepPoint{X: n, Cycles: Ccomp(cop, tops, n)}
	}
	return out
}

// Fig56Point is one bar of the Fig 5.6 comparison.
type Fig56Point struct {
	PIM    string
	Bits   int
	Cycles float64
}

// Fig56 compares the three architectures on a multiplication workload at
// the paper's constants: 2,560 PEs and 100,000 total operations.
func Fig56() []Fig56Point {
	const (
		pes  = 2560
		tops = 100000
	)
	var out []Fig56Point
	for _, p := range Architectures() {
		for _, bits := range []int{4, 8, 16, 32} {
			out = append(out, Fig56Point{
				PIM:    p.Name,
				Bits:   bits,
				Cycles: Ccomp(p.MultCop(bits), tops, pes),
			})
		}
	}
	return out
}

// FormatTable51 renders Table 5.1 in the thesis's layout.
func FormatTable51(rows []Table51Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%14s", r.Name)
	}
	b.WriteByte('\n')
	line := func(label string, get func(Table51Row) string) {
		fmt.Fprintf(&b, "%-22s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%14s", get(r))
		}
		b.WriteByte('\n')
	}
	line("Dp", func(r Table51Row) string { return fmt.Sprintf("%g", r.Dp) })
	line("CBB", func(r Table51Row) string { return fmt.Sprintf("%g", r.CBB) })
	line("x (bits)", func(r Table51Row) string { return fmt.Sprintf("%d", r.Bits) })
	line("Accum.-f(x)", func(r Table51Row) string { return fmt.Sprintf("%g", r.AccumF) })
	line("Mult.-f(x)", func(r Table51Row) string { return fmt.Sprintf("%g", r.MultF) })
	line("Cop", func(r Table51Row) string { return fmt.Sprintf("%g", r.Cop) })
	line("PEs", func(r Table51Row) string { return fmt.Sprintf("%g", r.PEs) })
	line("Freq (Hz)", func(r Table51Row) string { return fmt.Sprintf("%.3g", r.FreqHz) })
	line("TOPs (AlexNet)", func(r Table51Row) string { return fmt.Sprintf("%.3g", r.TOPs) })
	line("Ccomp (1 MAC)", func(r Table51Row) string { return fmt.Sprintf("%g", r.CcompOneMAC) })
	line("Tcomp (1 MAC) (s)", func(r Table51Row) string { return fmt.Sprintf("%.3g", r.TcompOneMAC) })
	line("Ccomp (TOPs)", func(r Table51Row) string { return fmt.Sprintf("%.5g", r.CcompTOPs) })
	line("Tcomp (TOPs) (s)", func(r Table51Row) string { return fmt.Sprintf("%.3g", r.TcompTOPs) })
	return b.String()
}

// FormatTable54 renders the benchmarking table.
func FormatTable54(devs []Device) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %12s %14s %14s %12s %14s %14s\n",
		"device", "power(W)", "area(mm2)",
		"eBNN lat(s)", "eBNN f/s-W", "eBNN f/s-mm2",
		"YOLO lat(s)", "YOLO f/s-W", "YOLO f/s-mm2")
	for _, d := range devs {
		fmt.Fprintf(&b, "%-16s %10.3g %10.4g %12.3g %14.3g %14.3g %12.3g %14.3g %14.3g\n",
			d.Name, d.PowerChipW, d.AreaMM2,
			d.EBNNLatS, d.EBNNThroughputPower(), d.EBNNThroughputArea(),
			d.YOLOLatS, d.YOLOThroughputPower(), d.YOLOThroughputArea())
	}
	return b.String()
}

// LogSpace returns n log-spaced values between lo and hi inclusive,
// handy for sweep inputs.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out
}

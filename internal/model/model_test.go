package model

import (
	"math"
	"strings"
	"testing"
)

// approx asserts relative agreement to the printed precision of the
// thesis's tables (3 significant figures).
func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %g, want 0", name, got)
		}
		return
	}
	if r := math.Abs(got-want) / math.Abs(want); r > tol {
		t.Errorf("%s = %.6g, want %.6g (rel err %.3g > %.3g)", name, got, want, r, tol)
	}
}

// TestTable51 reproduces every computed row of Table 5.1.
func TestTable51(t *testing.T) {
	rows := Table51()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table51Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}

	p := byName["pPIM"]
	if p.Dp != 1 || p.CBB != 1 || p.AccumF != 2 || p.MultF != 6 || p.Cop != 8 {
		t.Errorf("pPIM params: %+v", p)
	}
	approx(t, "pPIM Tcomp(1 MAC)", p.TcompOneMAC, 6.40e-9, 0.005)
	approx(t, "pPIM Ccomp(TOPs)", p.CcompTOPs, 8.0938e7, 0.001)
	approx(t, "pPIM Tcomp(TOPs)", p.TcompTOPs, 6.48e-2, 0.005)

	d := byName["DRISA"]
	if d.Dp != 1 || d.AccumF != 11 || d.MultF != 200 || d.Cop != 211 {
		t.Errorf("DRISA params: %+v", d)
	}
	approx(t, "DRISA Ccomp(TOPs)", d.CcompTOPs, 1.6678e7, 0.001)
	approx(t, "DRISA Tcomp(TOPs)", d.TcompTOPs, 1.40e-1, 0.005)

	u := byName["UPMEM"]
	if u.Dp != 11 || u.AccumF != 4 || u.MultF != 4 || u.Cop != 88 {
		t.Errorf("UPMEM params: %+v", u)
	}
	approx(t, "UPMEM Tcomp(1 MAC)", u.TcompOneMAC, 2.51e-7, 0.005)
	approx(t, "UPMEM Ccomp(TOPs)", u.CcompTOPs, 8.9031e7, 0.001)
	approx(t, "UPMEM Tcomp(TOPs)", u.TcompTOPs, 2.54e-1, 0.005)
}

// TestTable52 reproduces the multiplication Cop table, including the
// starred Algorithm 3 estimates.
func TestTable52(t *testing.T) {
	tab := Table52()
	want := map[string]map[int]float64{
		"pPIM":  {4: 1, 8: 6, 16: 124, 32: 1016},
		"DRISA": {4: 110, 8: 200, 16: 380, 32: 740},
		"UPMEM": {4: 44, 8: 44, 16: 370, 32: 570},
	}
	for name, cols := range want {
		for bits, w := range cols {
			approx(t, name+" mult Cop "+itoa(bits), tab[name][bits], w, 0.001)
		}
	}
}

func itoa(v int) string {
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}

// TestAlgorithm3 checks the pPIM adds estimate directly: 108 internal
// additions at 16 bits and 952 at 32 (so that +16 and +64 block products
// give the Table 5.2 stars).
func TestAlgorithm3(t *testing.T) {
	if got := PPIMAddsEstimate(16); got != 108 {
		t.Errorf("adds(16) = %d, want 108", got)
	}
	if got := PPIMAddsEstimate(32); got != 952 {
		t.Errorf("adds(32) = %d, want 952", got)
	}
	if got := PPIMMultEstimate(16); got != 124 {
		t.Errorf("mult(16) = %d, want 124", got)
	}
	if got := PPIMMultEstimate(32); got != 1016 {
		t.Errorf("mult(32) = %d, want 1016", got)
	}
}

// TestFig54Pattern: the adds-without-carry sequence is the tent the
// thesis plots — rises by 2 to the midpoint, falls by 2, and is
// symmetric with zero endpoints.
func TestFig54Pattern(t *testing.T) {
	for _, bits := range []int{8, 16, 32, 64} {
		pat := PPIMAddsPattern(bits)
		k := bits / 2
		if len(pat) != k {
			t.Fatalf("bits=%d: len=%d, want %d", bits, len(pat), k)
		}
		if pat[0] != 0 || pat[k-1] != 0 {
			t.Errorf("bits=%d: endpoints %d, %d, want 0", bits, pat[0], pat[k-1])
		}
		for i := 0; i < k-1; i++ {
			d := pat[i+1] - pat[i]
			if d != 2 && d != -2 && d != 0 {
				t.Errorf("bits=%d: step %d at %d", bits, d, i)
			}
		}
		// Symmetric tent.
		for i := range pat {
			if pat[i] != pat[k-1-i] {
				t.Errorf("bits=%d: pattern not symmetric at %d", bits, i)
			}
		}
	}
}

// TestTable53 reproduces the memory-model analysis.
func TestTable53(t *testing.T) {
	rows := Table53()
	byName := map[string]Table53Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	checks := []struct {
		name              string
		opsPerPE, localOp float64
		tmem, ttot        float64
	}{
		{"pPIM", 16, 4096, 4.24e-3, 6.90e-2},
		{"DRISA", 65536, 2147483648, 1.80e-7, 1.40e-1},
		{"UPMEM", 32000, 81920000, 3.07e-3, 2.57e-1},
	}
	for _, c := range checks {
		r := byName[c.name]
		if r.OpsPerPE != c.opsPerPE {
			t.Errorf("%s OPs/PE = %g, want %g", c.name, r.OpsPerPE, c.opsPerPE)
		}
		if r.LocalOps != c.localOp {
			t.Errorf("%s LocalOps = %g, want %g", c.name, r.LocalOps, c.localOp)
		}
		approx(t, c.name+" Tmem", r.TmemS, c.tmem, 0.005)
		approx(t, c.name+" Ttot", r.TtotS, c.ttot, 0.005)
	}
}

// TestTable54Throughputs reproduces the benchmarking table's derived
// columns from the published latencies and power/area figures.
func TestTable54Throughputs(t *testing.T) {
	devs := Table54Devices()
	if len(devs) != 7 {
		t.Fatalf("devices = %d", len(devs))
	}
	byName := map[string]Device{}
	for _, d := range devs {
		byName[d.Name] = d
	}
	checks := []struct {
		name             string
		ebnnPW, ebnnPA   float64
		yoloPW, yoloPA   float64
		tolEBNN, tolYOLO float64
	}{
		{"UPMEM", 5.63e3, 1.80e2, 1.25e-4, 1.10e-5, 0.005, 0.04},
		{"pPIM", 7.52e5, 1.02e5, 4.20e-1, 5.71e-2, 0.005, 0.005},
		{"DRISA-3T1C", 1.24e4, 1.87e4, 6.94e-3, 1.04e-2, 0.005, 0.005},
		{"DRISA-1T1C-NOR", 5.21e3, 7.83e3, 2.91e-3, 4.37e-3, 0.005, 0.005},
		{"SCOPE-Vanilla", 4.36e5, 2.82e5, 2.43e-1, 1.57e-1, 0.005, 0.005},
		{"SCOPE-H2d", 1.22e5, 7.89e4, 6.82e-2, 4.41e-2, 0.005, 0.005},
		{"LACC", 8.82e5, 8.53e4, 4.91e-1, 4.75e-2, 0.005, 0.005},
	}
	for _, c := range checks {
		d := byName[c.name]
		approx(t, c.name+" eBNN f/s-W", d.EBNNThroughputPower(), c.ebnnPW, c.tolEBNN)
		approx(t, c.name+" eBNN f/s-mm2", d.EBNNThroughputArea(), c.ebnnPA, c.tolEBNN)
		approx(t, c.name+" YOLO f/s-W", d.YOLOThroughputPower(), c.yoloPW, c.tolYOLO)
		approx(t, c.name+" YOLO f/s-mm2", d.YOLOThroughputArea(), c.yoloPA, c.tolYOLO)
	}
}

// TestFig56Crossover reproduces the Fig 5.6 conclusion: pPIM wins 8- and
// 16-bit multiplication, UPMEM wins 32-bit.
func TestFig56Crossover(t *testing.T) {
	pts := Fig56()
	cy := map[string]map[int]float64{}
	for _, p := range pts {
		if cy[p.PIM] == nil {
			cy[p.PIM] = map[int]float64{}
		}
		cy[p.PIM][p.Bits] = p.Cycles
	}
	for _, bits := range []int{8, 16} {
		if !(cy["pPIM"][bits] < cy["DRISA"][bits] && cy["pPIM"][bits] < cy["UPMEM"][bits]) {
			t.Errorf("%d-bit: pPIM should win: %v", bits, cy)
		}
	}
	if !(cy["UPMEM"][32] < cy["pPIM"][32] && cy["UPMEM"][32] < cy["DRISA"][32]) {
		t.Errorf("32-bit: UPMEM should win: pPIM=%g DRISA=%g UPMEM=%g",
			cy["pPIM"][32], cy["DRISA"][32], cy["UPMEM"][32])
	}
}

// TestFig55SweepShapes: the TOPs sweep is a non-decreasing step function
// (the ceil in Eq 5.3); the PE sweep drops steeply then flattens.
func TestFig55SweepShapes(t *testing.T) {
	for _, p := range Architectures() {
		tops := make([]float64, 0, 100)
		for v := 1000.0; v <= 100000; v += 1000 {
			tops = append(tops, v)
		}
		sweep := p.TOPsSweep(8, tops)
		for i := 1; i < len(sweep); i++ {
			if sweep[i].Cycles < sweep[i-1].Cycles {
				t.Errorf("%s: TOPs sweep decreased at %v", p.Name, sweep[i].X)
			}
		}
		pes := []float64{1, 2, 4, 8, 16, 64, 256, 1024, 4096}
		ps := p.PESweep(8, 100000, pes)
		for i := 1; i < len(ps); i++ {
			if ps[i].Cycles > ps[i-1].Cycles {
				t.Errorf("%s: PE sweep increased at %v PEs", p.Name, ps[i].X)
			}
		}
		// Big first drop: doubling PEs from 1 halves the cycles.
		if ps[1].Cycles > ps[0].Cycles*0.51 {
			t.Errorf("%s: first PE doubling only reached %v of serial", p.Name, ps[1].Cycles/ps[0].Cycles)
		}
	}
}

// TestCeilStepFunction: Eq 5.3's ceil makes exact steps at PE multiples.
func TestCeilStepFunction(t *testing.T) {
	p := UPMEM()
	cop := p.MultCop(8)
	if Ccomp(cop, 2560, p.PEs) != cop {
		t.Error("one full wave should cost exactly Cop")
	}
	if Ccomp(cop, 2561, p.PEs) != 2*cop {
		t.Error("one extra operation should start a second wave")
	}
}

// TestOverlapBrackets: the overlapped best case never exceeds the
// worst-case sum and is at least half of it.
func TestOverlapBrackets(t *testing.T) {
	for _, p := range Architectures() {
		worst := p.Ttot(AlexNetTOPs, 8)
		best := p.TtotOverlapped(AlexNetTOPs, 8)
		if best > worst {
			t.Errorf("%s: overlapped %g > worst case %g", p.Name, best, worst)
		}
		if best < worst/2 {
			t.Errorf("%s: overlapped %g < half of worst case %g", p.Name, best, worst)
		}
	}
	// All three §5.2 architectures are compute-dominated on AlexNet, so
	// overlap hides Tmem entirely.
	u := UPMEM()
	if got, want := u.TtotOverlapped(AlexNetTOPs, 8), u.Tcomp(u.MACCop(8), AlexNetTOPs); got != want {
		t.Errorf("UPMEM overlapped = %g, want Tcomp %g", got, want)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("UPMEM"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown PIM accepted")
	}
}

func TestGranularityString(t *testing.T) {
	if Bitwise.String() != "bitwise" || LUT.String() != "LUT" || PipelinedCPU.String() != "pipelined-CPU" {
		t.Error("granularity names")
	}
	if !strings.Contains(Granularity(9).String(), "?") {
		t.Error("unknown granularity")
	}
}

func TestCPUBaseline(t *testing.T) {
	c := Xeon()
	if got := c.Seconds(1e10); math.Abs(got-1) > 1e-9 {
		t.Errorf("Seconds(1e10) = %v, want 1", got)
	}
	if got := c.Throughput(1e10); math.Abs(got-1) > 1e-9 {
		t.Errorf("Throughput = %v", got)
	}
}

// TestSpeedupSeriesLinear reproduces the Fig 4.7(c) shape: the DPU-system
// speedup over the CPU grows linearly with the DPU count, maximal at the
// full 2,560-DPU system.
func TestSpeedupSeriesLinear(t *testing.T) {
	c := Xeon()
	counts := []int{1, 2, 4, 512, 2560}
	s := c.SpeedupSeries(1.48e-3, 1e5, counts)
	base := s[0].Cycles
	for i, pt := range s {
		want := base * float64(counts[i])
		if math.Abs(pt.Cycles-want)/want > 1e-9 {
			t.Errorf("speedup(%d DPUs) = %v, want %v (linear)", counts[i], pt.Cycles, want)
		}
	}
	if s[len(s)-1].Cycles <= s[0].Cycles {
		t.Error("maximum speedup should be at the full system")
	}
}

func TestFormatters(t *testing.T) {
	s51 := FormatTable51(Table51())
	for _, want := range []string{"pPIM", "DRISA", "UPMEM", "Cop", "Tcomp (TOPs) (s)"} {
		if !strings.Contains(s51, want) {
			t.Errorf("Table 5.1 render missing %q", want)
		}
	}
	s54 := FormatTable54(Table54Devices())
	for _, want := range []string{"UPMEM", "SCOPE-H2d", "LACC", "YOLO f/s-W"} {
		if !strings.Contains(s54, want) {
			t.Errorf("Table 5.4 render missing %q", want)
		}
	}
}

func TestLogSpace(t *testing.T) {
	v := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(v[i]-want[i])/want[i] > 1e-9 {
			t.Errorf("LogSpace[%d] = %v, want %v", i, v[i], want[i])
		}
	}
	if got := LogSpace(5, 1, 3); len(got) != 1 {
		t.Error("invalid range should degrade to single point")
	}
}

package model

import (
	"fmt"
	"sort"
)

// Workload is a CNN inference workload expressed as the chapter 5
// model's inputs: a MAC count and an operand width.
//
// The thesis's future work (§6.1) asks for "alternative CNNs ... from
// AlexNet to ResNet" to be evaluated; this catalog extends the model
// usage of §5.4 to the standard image classifiers plus the two thesis
// workloads.
type Workload struct {
	Name string
	// MACs is the multiply-accumulate count of one inference (the
	// model's TOPs input).
	MACs float64
	// Bits is the operand precision.
	Bits int
}

// Workloads returns the evaluation catalog at 8-bit precision. MAC
// counts are the standard published figures (one inference, single
// crop): LeNet-5 and the thesis's eBNN at the small end, AlexNet as the
// thesis's chapter 5 example, then VGG-16/ResNet-50 and the thesis's
// YOLOv3-416.
func Workloads() []Workload {
	return []Workload{
		{Name: "eBNN", MACs: 4.87e5, Bits: 8},   // 26x26x9x8 binary MACs
		{Name: "LeNet-5", MACs: 4.2e5, Bits: 8}, // classic MNIST CNN
		{Name: "AlexNet", MACs: AlexNetTOPs, Bits: 8},
		{Name: "ResNet-18", MACs: 1.814e9, Bits: 8}, // matches internal/resnet.MACs()
		{Name: "ResNet-50", MACs: 4.1e9, Bits: 8},
		{Name: "VGG-16", MACs: 1.55e10, Bits: 8},
		{Name: "YOLOv3-416", MACs: 3.29e10, Bits: 8},
	}
}

// WorkloadResult is one (PIM, workload) evaluation through the full
// generic model (Eq 5.1).
type WorkloadResult struct {
	PIM      string
	Workload string
	MACs     float64
	TcompS   float64
	TmemS    float64
	TtotS    float64
	// FramesPerSec is 1/Ttot.
	FramesPerSec float64
}

// EvaluateWorkloads runs every catalog workload through every §5.2
// architecture.
func EvaluateWorkloads() []WorkloadResult {
	var out []WorkloadResult
	for _, w := range Workloads() {
		for _, p := range Architectures() {
			tcomp := p.Tcomp(p.MACCop(w.Bits), w.MACs)
			tmem := p.Tmem(w.MACs, w.Bits)
			ttot := tcomp + tmem
			out = append(out, WorkloadResult{
				PIM:          p.Name,
				Workload:     w.Name,
				MACs:         w.MACs,
				TcompS:       tcomp,
				TmemS:        tmem,
				TtotS:        ttot,
				FramesPerSec: 1 / ttot,
			})
		}
	}
	return out
}

// BestPIMPerWorkload returns, for each workload, the architecture with
// the lowest total latency — the §6.1 "which network size is best for
// which PIM" question answered by the model.
func BestPIMPerWorkload() map[string]string {
	best := make(map[string]string)
	bestT := make(map[string]float64)
	for _, r := range EvaluateWorkloads() {
		if t, ok := bestT[r.Workload]; !ok || r.TtotS < t {
			bestT[r.Workload] = r.TtotS
			best[r.Workload] = r.PIM
		}
	}
	return best
}

// FormatWorkloads renders the evaluation as a table grouped by workload.
func FormatWorkloads(rs []WorkloadResult) string {
	sorted := append([]WorkloadResult(nil), rs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].MACs != sorted[j].MACs {
			return sorted[i].MACs < sorted[j].MACs
		}
		return sorted[i].PIM < sorted[j].PIM
	})
	out := fmt.Sprintf("%-12s %-8s %10s %12s %12s %12s %12s\n",
		"workload", "PIM", "MACs", "Tcomp(s)", "Tmem(s)", "Ttot(s)", "frames/s")
	for _, r := range sorted {
		out += fmt.Sprintf("%-12s %-8s %10.3g %12.3g %12.3g %12.3g %12.3g\n",
			r.Workload, r.PIM, r.MACs, r.TcompS, r.TmemS, r.TtotS, r.FramesPerSec)
	}
	return out
}

package model

// CPU is the host-processor baseline of the thesis's Fig 4.7(c)
// comparison ("a single Intel Xeon CPU"). The figure reports relative
// speedup versus the DPU system; this simple ops/cycle model reproduces
// the linear-in-DPU-count speedup shape.
type CPU struct {
	Name string
	// FreqHz is the core clock.
	FreqHz float64
	// OpsPerCycle is the sustained per-core operation throughput
	// (SIMD lanes × issue width, derated for memory stalls).
	OpsPerCycle float64
}

// Xeon returns the single-core baseline used by the Fig 4.7(c)
// reproduction.
func Xeon() CPU {
	return CPU{Name: "Intel Xeon (1 core)", FreqHz: 2.5e9, OpsPerCycle: 4}
}

// Seconds returns the time to execute the given operation count.
func (c CPU) Seconds(ops float64) float64 {
	return ops / (c.FreqHz * c.OpsPerCycle)
}

// Throughput returns items/second given per-item operations.
func (c CPU) Throughput(opsPerItem float64) float64 {
	return 1 / c.Seconds(opsPerItem)
}

// SpeedupSeries computes the Fig 4.7(c) curve: the throughput speedup of
// an n-DPU UPMEM system over the CPU. Each item takes dpuItemSeconds of
// DPU time (amortized over its batch) and cpuOpsPerItem operations on the
// CPU; n DPUs working on independent batches finish n items per
// dpuItemSeconds (§4.1.3: parallel DPUs complete at the max time for one
// DPU), so the speedup is linear in the DPU count.
func (c CPU) SpeedupSeries(dpuItemSeconds, cpuOpsPerItem float64, dpuCounts []int) []SweepPoint {
	cpuThroughput := c.Throughput(cpuOpsPerItem)
	out := make([]SweepPoint, len(dpuCounts))
	for i, n := range dpuCounts {
		dpuThroughput := float64(n) / dpuItemSeconds
		out[i] = SweepPoint{X: float64(n), Cycles: dpuThroughput / cpuThroughput}
	}
	return out
}

package model

import "testing"

// BenchmarkTable51 measures computational-model evaluation.
func BenchmarkTable51(b *testing.B) {
	var sink []Table51Row
	for i := 0; i < b.N; i++ {
		sink = Table51()
	}
	_ = sink
}

// BenchmarkAlgorithm3 measures the pPIM multiplication estimate across
// widths.
func BenchmarkAlgorithm3(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink = PPIMMultEstimate(64)
	}
	_ = sink
}

// BenchmarkEvaluateWorkloads measures the extended CNN catalog sweep.
func BenchmarkEvaluateWorkloads(b *testing.B) {
	var sink []WorkloadResult
	for i := 0; i < b.N; i++ {
		sink = EvaluateWorkloads()
	}
	_ = sink
}

// BenchmarkSweeps measures the Fig 5.5 series generation.
func BenchmarkSweeps(b *testing.B) {
	p := UPMEM()
	tops := LogSpace(100, 1e6, 100)
	var sink []SweepPoint
	for i := 0; i < b.N; i++ {
		sink = p.TOPsSweep(8, tops)
	}
	_ = sink
}

// Kernel-granularity latency model: exact analytic mirrors of the
// simulated GEMM and eBNN kernel charge structures, at the per-wave
// (per-DPU-launch) level. Where the chapter-5 model (model.go) works at
// MAC granularity across PIM architectures, these functions reproduce
// this simulator's own kernels charge by charge — the same per-tasklet
// slot/DMA tallies the interpreter accumulates, combined through the
// same pipeline law — so a planner can rank candidate mappings without
// running the simulator, and a calibration pass can hold the prediction
// against `exec.Stats` per layer (see internal/plan and
// cmd/upmem-profile -calibrate).
package model

import "pimdnn/internal/dpu"

// KernelConfig selects the GEMM kernel variant and mapping parameters
// the cost functions mirror (gemm.RunnerConfig's cost-relevant subset).
type KernelConfig struct {
	Opt      dpu.OptLevel
	Tasklets int
	// TileCols is the tiled kernels' WRAM tile width (gemm
	// DefaultTileCols when the runner left it zero).
	TileCols int
	// Naive selects the thesis-faithful kernel with MRAM-resident ctmp.
	Naive bool
}

// DPUCycles applies the DPU pipeline law to per-tasklet slot and DMA
// tallies: cycles = max(Σ slots, max_t(slots_t·depth + dma_t), Σ dma) —
// total issue slots, the critical tasklet's pipelined path, and the
// serialized DMA port.
func DPUCycles(slots, dma []uint64) uint64 {
	var busy, port, crit uint64
	for i := range slots {
		busy += slots[i]
		port += dma[i]
		if c := slots[i]*dpu.PipelineDepth + dma[i]; c > crit {
			crit = c
		}
	}
	cycles := busy
	if crit > cycles {
		cycles = crit
	}
	if port > cycles {
		cycles = port
	}
	return cycles
}

// chunkedDMA is the cost of staging bytes through DMA-limit-sized
// transfers (the kernels' A-row staging loops).
func chunkedDMA(bytes int) uint64 {
	var c uint64
	for off := 0; off < bytes; off += dpu.MaxDMATransfer {
		chunk := bytes - off
		if chunk > dpu.MaxDMATransfer {
			chunk = dpu.MaxDMATransfer
		}
		c += dpu.DMACost(chunk)
	}
	return c
}

func pad8(n int) int { return (n + 7) &^ 7 }

// GEMMRowCycles is the per-DPU cycle count of one wave of the Fig 4.6
// row-per-DPU mapping: one DPU computing one n-wide output row over k.
// It mirrors gemm.Runner's tiled and naive kernels charge by charge
// (parameter loads, A-row staging DMA, per-tile or per-column-set
// compute, output pass), so on the fault-free path it matches the
// simulated per-wave cycles exactly.
func GEMMRowCycles(n, k int, kc KernelConfig) uint64 {
	if kc.Naive {
		return gemmNaiveRowCycles(n, k, kc)
	}
	return gemmTiledRowCycles(n, k, kc)
}

func gemmTiledRowCycles(n, k int, kc KernelConfig) uint64 {
	var (
		loadS  = dpu.OpSlots(dpu.OpLoad, kc.Opt)
		storeS = dpu.OpSlots(dpu.OpStore, kc.Opt)
		mulS   = dpu.OpSlots(dpu.OpMul16, kc.Opt)
		addS   = dpu.OpSlots(dpu.OpAddInt, kc.Opt)
		shiftS = dpu.OpSlots(dpu.OpShift, kc.Opt)
		brS    = dpu.OpSlots(dpu.OpBranch, kc.Opt)
	)
	T := kc.Tasklets
	var slots, dma [dpu.MaxTasklets]uint64

	// Per-launch A-row work: every tasklet charges k+4 loads (the four
	// parameter reads plus one A load per k) and k APART multiplies;
	// tasklet 0 additionally stages the A row from MRAM in DMA-sized
	// chunks (real DMA).
	setup := uint64(k+4)*loadS + uint64(k)*mulS
	for t := 0; t < T; t++ {
		slots[t] = setup
	}
	dma[0] += chunkedDMA(pad8(k * 2))

	// Column tiles round-robin across tasklets; each tile's complete
	// operation sequence (gemm.tileCost) lands on its owner's meter.
	tiles := (n + kc.TileCols - 1) / kc.TileCols
	for tile := 0; tile < tiles; tile++ {
		t := tile % T
		c := n - tile*kc.TileCols
		if c > kc.TileCols {
			c = kc.TileCols
		}
		chunkBytes := pad8(c * 2)
		slots[t] += uint64(k*c+2*c) * storeS
		slots[t] += uint64(2*k*c) * loadS
		slots[t] += uint64(k*c) * (mulS + addS)
		slots[t] += uint64(c) * (shiftS + brS)
		dma[t] += uint64(k+1) * dpu.DMACost(chunkBytes)
	}
	return DPUCycles(slots[:T], dma[:T])
}

func gemmNaiveRowCycles(n, k int, kc KernelConfig) uint64 {
	var (
		loadS  = dpu.OpSlots(dpu.OpLoad, kc.Opt)
		mulS   = dpu.OpSlots(dpu.OpMul16, kc.Opt)
		addS   = dpu.OpSlots(dpu.OpAddInt, kc.Opt)
		shiftS = dpu.OpSlots(dpu.OpShift, kc.Opt)
		brS    = dpu.OpSlots(dpu.OpBranch, kc.Opt)
	)
	T := kc.Tasklets
	var slots, dma [dpu.MaxTasklets]uint64

	dma[0] += chunkedDMA(pad8(k * 2))
	for t := 0; t < T; t++ {
		// Four parameter loads, then the tasklet's strided column share.
		slots[t] = 4 * loadS
		nCols := (n - t + T - 1) / T
		if nCols <= 0 {
			continue
		}
		// Per k: APART load+multiply; per element: three 8-byte MRAM
		// round trips (ctmp read, B read, ctmp write), the MAC and
		// index arithmetic; then the output pass.
		slots[t] += uint64(k) * (loadS + mulS)
		slots[t] += uint64(k) * uint64(nCols) * (mulS + 2*addS)
		slots[t] += uint64(nCols) * (shiftS + brS)
		dma[t] += (uint64(3*nCols)*uint64(k) + uint64(2*nCols)) * dpu.DMACost(8)
	}
	return DPUCycles(slots[:T], dma[:T])
}

// GEMMBatchCycles is the per-DPU cycle count of the image-per-DPU
// mapping (gemm.Runner.kernelBatch): one DPU computing the whole m×n
// product for its resident B matrix. Work units are (row, tile) pairs
// claimed round-robin; a tasklet re-stages the A row (DMA + APART)
// whenever its next unit lands on a new row. The walk mirrors the
// kernel's unit loop exactly.
func GEMMBatchCycles(m, n, k int, kc KernelConfig) uint64 {
	var (
		loadS  = dpu.OpSlots(dpu.OpLoad, kc.Opt)
		storeS = dpu.OpSlots(dpu.OpStore, kc.Opt)
		mulS   = dpu.OpSlots(dpu.OpMul16, kc.Opt)
		addS   = dpu.OpSlots(dpu.OpAddInt, kc.Opt)
		shiftS = dpu.OpSlots(dpu.OpShift, kc.Opt)
		brS    = dpu.OpSlots(dpu.OpBranch, kc.Opt)
	)
	T := kc.Tasklets
	var slots, dma [dpu.MaxTasklets]uint64

	tiles := (n + kc.TileCols - 1) / kc.TileCols
	units := m * tiles
	aDMA := chunkedDMA(pad8(k * 2))
	fullChunk := pad8(kc.TileCols * 2)
	tailCols := n - (tiles-1)*kc.TileCols
	tailChunk := pad8(tailCols * 2)

	tileSlots := func(c int) uint64 {
		return uint64(k*c+2*c)*storeS + uint64(2*k*c)*loadS +
			uint64(k*c)*(mulS+addS) + uint64(c)*(shiftS+brS)
	}
	fullSlots, tailSlots := tileSlots(kc.TileCols), tileSlots(tailCols)

	for t := 0; t < T; t++ {
		// Five parameter loads (n, k, alpha, m, aBase).
		slots[t] = 5 * loadS
		cachedRow := -1
		for u := t; u < units; u += T {
			row := u / tiles
			tile := u % tiles
			if row != cachedRow {
				dma[t] += aDMA
				slots[t] += uint64(k) * (loadS + mulS)
				cachedRow = row
			}
			if tile == tiles-1 && tailCols != kc.TileCols {
				slots[t] += tailSlots
				dma[t] += uint64(k+1) * dpu.DMACost(tailChunk)
			} else {
				slots[t] += fullSlots
				dma[t] += uint64(k+1) * dpu.DMACost(fullChunk)
			}
		}
	}
	return DPUCycles(slots[:T], dma[:T])
}

// EBNNShape carries the eBNN workload's cost-relevant geometry so this
// package needs no dependency on internal/ebnn (which imports plan's
// consumers). ebnn.CostShape builds it from the model constants.
type EBNNShape struct {
	// Filters is the binary filter count (model.F).
	Filters int
	// Cells is the pooled outputs per filter (ebnn.PoolCells).
	Cells int
	// Side is the image row count loaded per image (mnist.Side).
	Side int
	// PackedBytes and ResultBytes are the per-image DMA payloads.
	PackedBytes, ResultBytes int
	// LUTBytes is tasklet 0's LUT staging DMA (0 when UseLUT is false).
	LUTBytes int
	// UseLUT selects the §4.1.4 LUT activation over software float.
	UseLUT bool
}

// EBNNWaveCycles is the per-DPU cycle count of one eBNN wave with
// `images` images resident on the DPU (up to ebnn.BatchSize), mirroring
// ebnn.Runner's kernel: every tasklet charges the preamble block, then
// its strided image share (per-image compute block plus the packed-image
// in / result out DMAs); tasklet 0 stages the LUT.
func EBNNWaveCycles(sh EBNNShape, images, tasklets int, opt dpu.OptLevel) uint64 {
	var (
		loadS  = dpu.OpSlots(dpu.OpLoad, opt)
		storeS = dpu.OpSlots(dpu.OpStore, opt)
		mulS   = dpu.OpSlots(dpu.OpMul16, opt)
		addS   = dpu.OpSlots(dpu.OpAddInt, opt)
		subS   = dpu.OpSlots(dpu.OpSubInt, opt)
		shiftS = dpu.OpSlots(dpu.OpShift, opt)
		brS    = dpu.OpSlots(dpu.OpBranch, opt)
		logicS = dpu.OpSlots(dpu.OpLogic, opt)
	)
	fn := uint64(sh.Filters)
	cells := uint64(sh.Cells)

	// Preamble (ebnnBlocks pre): image count + filter unpack, plus the
	// BN fold when running without the LUT.
	pre := (1+fn)*loadS + 3*fn*logicS + 2*fn*shiftS
	if !sh.UseLUT {
		pre += 5*fn*loadS +
			2*fn*dpu.OpSlots(dpu.OpFDiv, opt) +
			2*fn*dpu.OpSlots(dpu.OpFSub, opt)
	}

	// Per-image compute block (ebnnBlocks img).
	img := 2*mulS + uint64(sh.Side)*loadS +
		cells*fn*25*shiftS + cells*fn*37*logicS +
		cells*fn*4*subS + cells*fn*4*brS + cells*storeS
	if sh.UseLUT {
		img += cells*fn*2*addS + cells*fn*mulS + cells*fn*loadS
	} else {
		img += cells*fn*dpu.OpSlots(dpu.OpFloatFromInt, opt) +
			cells*fn*dpu.OpSlots(dpu.OpFCmp, opt)
	}
	imgDMA := dpu.DMACost(sh.PackedBytes) + dpu.DMACost(sh.ResultBytes)

	T := tasklets
	var slots, dma [dpu.MaxTasklets]uint64
	if sh.UseLUT {
		dma[0] += dpu.DMACost(sh.LUTBytes)
	}
	for t := 0; t < T; t++ {
		slots[t] += pre
		nImg := uint64(0)
		if t < images {
			nImg = uint64((images - t + T - 1) / T)
		}
		slots[t] += nImg * img
		dma[t] += nImg * imgDMA
	}
	return DPUCycles(slots[:T], dma[:T])
}

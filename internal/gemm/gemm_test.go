package gemm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
)

func randMat(rng *rand.Rand, n int, lim int) []int16 {
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(rng.Intn(2*lim+1) - lim)
	}
	return out
}

func TestReferenceAgainstFloat(t *testing.T) {
	// Small values: no clamping, /32 is the only quantization.
	rng := rand.New(rand.NewSource(1))
	m, n, k := 3, 5, 4
	a := randMat(rng, m*k, 10)
	b := randMat(rng, k*n, 10)
	got, err := Reference(m, n, k, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	af := make([]float64, len(a))
	bf := make([]float64, len(b))
	for i, v := range a {
		af[i] = float64(v)
	}
	for i, v := range b {
		bf[i] = float64(v)
	}
	cf, err := ReferenceFloat(m, n, k, 1, af, bf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := int16(int32(cf[i]) / 32) // trunc toward zero matches: products are exact ints
		// Go integer division truncates toward zero like C.
		wantC := int32(cf[i]) / 32
		want = int16(wantC)
		if got[i] != want {
			t.Errorf("C[%d] = %d, want %d (float %v)", i, got[i], want, cf[i])
		}
	}
}

func TestReferenceClamps(t *testing.T) {
	// A single huge dot product must clamp to ±32767.
	k := 100
	a := make([]int16, k)
	b := make([]int16, k)
	for i := range a {
		a[i] = 1000
		b[i] = 1000
	}
	c, err := Reference(1, 1, k, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 32767 {
		t.Errorf("positive clamp = %d", c[0])
	}
	for i := range b {
		b[i] = -1000
	}
	c, _ = Reference(1, 1, k, 1, a, b)
	if c[0] != -32767 {
		t.Errorf("negative clamp = %d (absolutemax clamps to -limit)", c[0])
	}
}

func TestReferenceAlpha(t *testing.T) {
	a := []int16{2, 3}
	b := []int16{4, 5, 6, 7}
	// alpha=2: C[0] = 2*(2*4+3*6)/32 = 52/32 = 1 (trunc)
	c, err := Reference(1, 2, 2, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 52/32 || c[1] != (2*(2*5+3*7))/32 {
		t.Errorf("alpha GEMM = %v", c)
	}
}

func TestReferenceValidation(t *testing.T) {
	if _, err := Reference(0, 1, 1, 1, nil, nil); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := Reference(1, 1, 2, 1, []int16{1}, []int16{1, 2}); err == nil {
		t.Error("short A accepted")
	}
	if _, err := Reference(1, 2, 1, 1, []int16{1}, []int16{1}); err == nil {
		t.Error("short B accepted")
	}
	if _, err := ReferenceFloat(1, 2, 1, 1, []float64{1}, []float64{1}); err == nil {
		t.Error("float short B accepted")
	}
}

// Property: row i of the result depends only on row i of A.
func TestReferenceRowIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 3, 4, 5
		a := randMat(rng, m*k, 50)
		b := randMat(rng, k*n, 50)
		c1, _ := Reference(m, n, k, 1, a, b)
		// Perturb row 2 of A; rows 0 and 1 of C must not change.
		a2 := append([]int16(nil), a...)
		a2[2*k] += 7
		c2, _ := Reference(m, n, k, 1, a2, b)
		for i := 0; i < 2*n; i++ {
			if c1[i] != c2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func newGEMMRunner(t *testing.T, nDPU int, cfg RunnerConfig) *Runner {
	t.Helper()
	sys, err := host.NewSystem(nDPU, host.DefaultConfig(dpu.O0))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunnerValidation(t *testing.T) {
	sys, _ := host.NewSystem(1, host.DefaultConfig(dpu.O0))
	cases := []RunnerConfig{
		{MaxK: 0, MaxN: 4, Tasklets: 1},
		{MaxK: 4, MaxN: 4, Tasklets: 0},
		{MaxK: 4, MaxN: 4, Tasklets: 99},
		{MaxK: 4, MaxN: 4, Tasklets: 1, TileCols: 3},
		{MaxK: 4, MaxN: 4, Tasklets: 1, TileCols: 4096},
	}
	for i, cfg := range cases {
		if _, err := NewRunner(sys, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

// TestDPUMatchesReference: the distributed kernel must agree with the
// host Algorithm 2 bit-for-bit across awkward shapes.
func TestDPUMatchesReference(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{1, 8, 4},
		{3, 300, 7},  // N not a tile multiple
		{5, 256, 16}, // exact tiles
		{2, 513, 33}, // odd everything
		{7, 64, 100}, // K heavy
		{13, 40, 3},  // M > DPUs: multiple waves
	}
	rng := rand.New(rand.NewSource(7))
	r := newGEMMRunner(t, 4, RunnerConfig{MaxK: 128, MaxN: 600, Tasklets: 8, TileCols: 64})
	for _, s := range shapes {
		a := randMat(rng, s.m*s.k, 100)
		b := randMat(rng, s.k*s.n, 100)
		want, err := Reference(s.m, s.n, s.k, 1, a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := r.Multiply(s.m, s.n, s.k, 1, a, b)
		if err != nil {
			t.Fatalf("%dx%dx%d: %v", s.m, s.n, s.k, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%dx%dx%d: C[%d] = %d, want %d", s.m, s.n, s.k, i, got[i], want[i])
			}
		}
		wantDPUs := s.m
		if wantDPUs > 4 {
			wantDPUs = 4
		}
		if st.DPUsUsed != wantDPUs {
			t.Errorf("%dx%dx%d: used %d DPUs, want %d", s.m, s.n, s.k, st.DPUsUsed, wantDPUs)
		}
	}
}

func TestDPUMatchesReferenceWithAlphaAndWrap(t *testing.T) {
	// Large magnitudes force both the int32 wrap path and the clamp.
	rng := rand.New(rand.NewSource(9))
	r := newGEMMRunner(t, 2, RunnerConfig{MaxK: 64, MaxN: 64, Tasklets: 4, TileCols: 16})
	a := randMat(rng, 2*64, 32000)
	b := randMat(rng, 64*64, 32000)
	want, _ := Reference(2, 64, 64, 3, a, b)
	got, _, err := r.Multiply(2, 64, 64, 3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMultiplyBoundsChecked(t *testing.T) {
	r := newGEMMRunner(t, 1, RunnerConfig{MaxK: 8, MaxN: 8, Tasklets: 1})
	a := make([]int16, 16)
	b := make([]int16, 16*8)
	if _, _, err := r.Multiply(1, 8, 16, 1, a, b); err == nil {
		t.Error("K over bound accepted")
	}
	if _, _, err := r.Multiply(1, 16, 1, 1, a[:1], b[:16]); err == nil {
		t.Error("N over bound accepted")
	}
}

// TestGEMMTaskletSaturation reproduces the YOLOv3 curve of Fig 4.7(a):
// speedup grows with tasklets and saturates at the 11-stage pipeline.
func TestGEMMTaskletSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m, n, k = 1, 2048, 16
	a := randMat(rng, m*k, 100)
	b := randMat(rng, k*n, 100)

	cycles := map[int]uint64{}
	for _, tl := range []int{1, 2, 4, 8, 11, 16} {
		r := newGEMMRunner(t, 1, RunnerConfig{MaxK: k, MaxN: n, Tasklets: tl, TileCols: 64})
		_, st, err := r.Multiply(m, n, k, 1, a, b)
		if err != nil {
			t.Fatal(err)
		}
		cycles[tl] = st.Cycles
	}
	speedup := func(tl int) float64 { return float64(cycles[1]) / float64(cycles[tl]) }
	if !(speedup(2) > 1.5 && speedup(4) > 3 && speedup(8) > 5) {
		t.Errorf("speedups: 2->%.1f 4->%.1f 8->%.1f", speedup(2), speedup(4), speedup(8))
	}
	// Saturation: 16 tasklets gain little over 11.
	if gain := speedup(16) / speedup(11); gain > 1.15 {
		t.Errorf("16 vs 11 tasklets gained %.2fx; should saturate at the pipeline depth", gain)
	}
	t.Logf("Fig 4.7a (YOLO GEMM): speedups %v", map[int]float64{
		2: speedup(2), 4: speedup(4), 8: speedup(8), 11: speedup(11), 16: speedup(16)})
}

// TestGEMMOptimizationLevels reproduces the Fig 4.7(b) ingredient: O3
// beats O0 (inline 16-bit multiplies, no per-statement overhead).
func TestGEMMOptimizationLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const m, n, k = 1, 512, 16
	a := randMat(rng, m*k, 100)
	b := randMat(rng, k*n, 100)

	cyclesAt := func(opt dpu.OptLevel) uint64 {
		sys, err := host.NewSystem(1, host.DefaultConfig(opt))
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 8, TileCols: 64})
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := r.Multiply(m, n, k, 1, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	o0, o3 := cyclesAt(dpu.O0), cyclesAt(dpu.O3)
	if o3 >= o0 {
		t.Errorf("O3 (%d cycles) not faster than O0 (%d)", o3, o0)
	}
	if ratio := float64(o0) / float64(o3); ratio < 1.5 {
		t.Errorf("O0/O3 ratio %.2f too small; 16-bit multiply must collapse at O3", ratio)
	}
}

// TestGEMMIsMRAMBound verifies the §4.3.3 observation: the GEMM kernel's
// B matrix streams from MRAM, so DMA cycles are a significant share.
func TestGEMMIsMRAMBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const m, n, k = 1, 1024, 64
	a := randMat(rng, m*k, 100)
	b := randMat(rng, k*n, 100)
	sys, _ := host.NewSystem(1, host.DefaultConfig(dpu.O3))
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 11, TileCols: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Multiply(m, n, k, 1, a, b); err != nil {
		t.Fatal(err)
	}
	var slots, dma uint64
	// Re-run on the bare DPU to read per-launch stats.
	st, err := sys.DPU(0).Launch(11, r.kernel())
	if err != nil {
		t.Fatal(err)
	}
	slots, dma = st.IssueSlots, st.DMACycles
	if dma == 0 {
		t.Fatal("no DMA cycles recorded")
	}
	frac := float64(dma) / float64(slots+dma)
	if frac < 0.05 {
		t.Errorf("DMA fraction %.3f too small for an MRAM-bound kernel", frac)
	}
	t.Logf("GEMM O3: DMA fraction of work = %.2f", frac)
}

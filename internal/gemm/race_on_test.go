//go:build race

package gemm

const raceDetectorEnabled = true

package gemm

import (
	"encoding/binary"
	"fmt"

	"pimdnn/internal/dpu"
	"pimdnn/internal/exec"
	"pimdnn/internal/fixed"
	"pimdnn/internal/host"
)

// Image-per-DPU mapping — the thesis's future-work alternative (§6.1):
// "squeeze as many YOLOv3 image inferences into a single DPU as possible
// in order to emulate the eBNN implementation multi-image per DPU method.
// Then the performance of this mapping would be compared to the current
// mapping." Here each DPU holds the full weight matrix A and one image's
// B matrix and computes the whole M×N product; different DPUs work on
// different images concurrently. MultiplyBatch implements it; Multiply
// remains the Fig 4.6 row-per-DPU mapping.

// Batch-mode symbol names.
const (
	symAFull = "gemm_a_full"
	symCFull = "gemm_c_full"
)

// EnableBatch sizes the whole-matrix buffers for problems up to maxM
// rows. It must be called once, before the first MultiplyBatch.
func (r *Runner) EnableBatch(maxM int) error {
	if maxM < 1 {
		return fmt.Errorf("gemm: EnableBatch(%d): need at least one row", maxM)
	}
	if r.maxM != 0 {
		return fmt.Errorf("gemm: batch mode already enabled (maxM=%d)", r.maxM)
	}
	stride := int64(pad4(r.cfg.MaxN))
	// A rows live at an 8-byte-aligned stride so per-row DMA staging
	// stays aligned for any K.
	aRowStride := int64((r.cfg.MaxK*2 + 7) &^ 7)
	if err := r.sys.AllocMRAM(symAFull, int64(maxM)*aRowStride); err != nil {
		return fmt.Errorf("gemm: %w", err)
	}
	if err := r.sys.AllocMRAM(symCFull, int64(maxM)*stride*2); err != nil {
		return fmt.Errorf("gemm: %w", err)
	}
	// Per-tasklet A-row cache slots in WRAM. With a planner wired, the
	// runner already holds tile area for the row-mode tasklet cap, so
	// the cache gets however many slots still fit in the remaining WRAM
	// (the per-tasklet row cache makes batch mode's footprint much
	// larger than row mode's); batch plans are then bounded by that
	// count. A MaxK so large that not even one slot fits is an error —
	// pass an explicit smaller RunnerConfig.Tasklets to shrink the tile
	// area instead.
	r.batchAllocT = r.cfg.Tasklets
	if r.planner != nil {
		if fit := int(r.sys.DPU(0).WRAMFree() / aRowStride); fit < r.batchAllocT {
			r.batchAllocT = fit
		}
		if r.batchAllocT < 1 {
			return fmt.Errorf("gemm: no WRAM left for a batch A-row cache slot (MaxK=%d, %d tasklets allocated)",
				r.cfg.MaxK, r.cfg.Tasklets)
		}
	}
	aCache := int64(r.batchAllocT) * aRowStride
	if err := r.sys.AllocWRAM("gemm_a_cache", aCache); err != nil {
		return fmt.Errorf("gemm: %w", err)
	}
	look := func(name string) int64 {
		s, _ := r.sys.DPU(0).Symbol(name)
		return s.Offset
	}
	r.maxM = maxM
	r.aFullOff = look(symAFull)
	r.cFullOff = look(symCFull)
	r.aCacheOff = look("gemm_a_cache")
	for _, ref := range []struct {
		name string
		dst  *host.SymbolRef
	}{
		{symAFull, &r.refAFull}, {symCFull, &r.refCFull},
	} {
		res, err := r.sys.Resolve(ref.name)
		if err != nil {
			return fmt.Errorf("gemm: %w", err)
		}
		*ref.dst = res
	}
	return nil
}

// kernelBatch computes the full M×N product for the B matrix resident in
// this DPU's MRAM. Work units are (row, tile) pairs claimed round-robin
// by tasklets; each tasklet caches the current A row in its private WRAM
// slot so consecutive tiles of the same row reuse it. This is the
// block-accounted form: each tile's operation sequence is charged with
// one ChargeBlock call and the B column block is fetched with strided
// bulk reads (see runner.go's tiled kernel; the per-tile cost structure
// is identical).
func (r *Runner) kernelBatch() dpu.KernelFunc {
	tileCols := r.tileCols
	return func(t *dpu.Tasklet) error {
		n := int(t.LoadI32(r.paramsOff))
		k := int(t.LoadI32(r.paramsOff + 4))
		alpha := int16(t.LoadI32(r.paramsOff + 8))
		m := int(t.LoadI32(r.paramsOff + 12))
		aBase := int64(t.LoadI32(r.paramsOff + 16))
		if n < 1 || k < 1 || m < 1 || n > r.cfg.MaxN || k > r.cfg.MaxK || m > r.maxM {
			return fmt.Errorf("gemm batch kernel: bad params M=%d N=%d K=%d", m, n, k)
		}
		d := t.DPU()

		sc := r.getScratch()
		defer r.scratch.Put(sc)

		blocks := r.blocksFor(n, k)
		stride := pad4(n)
		rowStride := int64(stride) * 2
		tiles := (n + tileCols - 1) / tileCols
		units := m * tiles
		aSlot := r.aCacheOff + int64(t.ID())*int64((r.cfg.MaxK*2+7)&^7)
		aBytes := (k*2 + 7) &^ 7

		cachedRow := -1
		apart := sc.apart[:k]
		ctmp := sc.ctmp[:tileCols]

		// One MAC closure per launch; tileN is the live tile's column
		// count (see runner.go's tiled kernel).
		tileN := 0
		mac := func(first, count int, block []byte, bstride int) {
			for ri := 0; ri < count; ri++ {
				if ap := apart[first+ri]; ap != 0 {
					macRow(ctmp, block[ri*bstride:], ap, tileN)
				}
			}
		}

		for u := t.ID(); u < units; u += t.Count() {
			row := u / tiles
			tile := u % tiles

			if row != cachedRow {
				// Stage this A row into the tasklet's WRAM cache (real
				// DMA) and precompute APART (Algorithm 2 line 5). The
				// matrix base comes from the parameter block — the
				// gemm_a_full symbol, or an arena slot when resident.
				for off := 0; off < aBytes; off += dpu.MaxDMATransfer {
					chunk := aBytes - off
					if chunk > dpu.MaxDMATransfer {
						chunk = dpu.MaxDMATransfer
					}
					t.MRAMToWRAM(aSlot+int64(off), aBase+int64(row)*int64(aBytes)+int64(off), chunk)
				}
				t.ChargeBulk(dpu.OpLoad, uint64(k))
				t.ChargeBulk(dpu.OpMul16, uint64(k))
				aw := t.WRAMWindow(aSlot, int64(k*2))
				for i := 0; i < k; i++ {
					apart[i] = int32(alpha) * int32(int16(binary.LittleEndian.Uint16(aw[i*2:])))
				}
				cachedRow = row
			}

			j0 := tile * tileCols
			cols := n - j0
			if cols > tileCols {
				cols = tileCols
			}
			chunkBytes := (cols*2 + 7) &^ 7
			blk := blocks.full
			if cols != tileCols {
				blk = blocks.tail
			}
			t.ChargeBlock(blk)

			for i := range ctmp[:cols] {
				ctmp[i] = 0
			}
			tileN = cols
			if err := d.ForEachMRAMRowRuns(r.bOff+int64(j0*2), rowStride, chunkBytes, k, mac); err != nil {
				return err
			}

			out := sc.out[:chunkBytes]
			packClamped(out, ctmp, cols, chunkBytes)
			if err := d.CopyToMRAMRaw(r.cFullOff+int64(row*stride+j0)*2, out); err != nil {
				return err
			}
		}
		return nil
	}
}

// kernelBatchLegacy is the per-operation-charging batch kernel, kept
// behind RunnerConfig.LegacyCharging as the reference side of the
// differential tests.
func (r *Runner) kernelBatchLegacy() dpu.KernelFunc {
	tileCols := r.tileCols
	return func(t *dpu.Tasklet) error {
		n := int(t.LoadI32(r.paramsOff))
		k := int(t.LoadI32(r.paramsOff + 4))
		alpha := int16(t.LoadI32(r.paramsOff + 8))
		m := int(t.LoadI32(r.paramsOff + 12))
		aBase := int64(t.LoadI32(r.paramsOff + 16))
		if n < 1 || k < 1 || m < 1 || n > r.cfg.MaxN || k > r.cfg.MaxK || m > r.maxM {
			return fmt.Errorf("gemm batch kernel: bad params M=%d N=%d K=%d", m, n, k)
		}
		d := t.DPU()

		sc := r.getScratch()
		defer r.scratch.Put(sc)

		stride := pad4(n)
		tiles := (n + tileCols - 1) / tileCols
		units := m * tiles
		tileBase := r.tileOff + int64(t.ID())*int64(tileCols)*8
		aSlot := r.aCacheOff + int64(t.ID())*int64((r.cfg.MaxK*2+7)&^7)
		aBytes := (k*2 + 7) &^ 7

		cachedRow := -1
		apart := sc.apart[:k]
		ctmp := sc.ctmp[:tileCols]

		for u := t.ID(); u < units; u += t.Count() {
			row := u / tiles
			tile := u % tiles

			if row != cachedRow {
				// Stage this A row into the tasklet's WRAM cache and
				// precompute APART (Algorithm 2 line 5). Rows sit at
				// the padded stride so every transfer stays aligned.
				for off := 0; off < aBytes; off += dpu.MaxDMATransfer {
					chunk := aBytes - off
					if chunk > dpu.MaxDMATransfer {
						chunk = dpu.MaxDMATransfer
					}
					t.MRAMToWRAM(aSlot+int64(off), aBase+int64(row)*int64(aBytes)+int64(off), chunk)
				}
				aRow := sc.aRow[:k*2]
				if err := d.CopyFromWRAMInto(aSlot, aRow); err != nil {
					return err
				}
				t.ChargeBulk(dpu.OpLoad, uint64(k))
				t.ChargeBulk(dpu.OpMul16, uint64(k))
				for i := 0; i < k; i++ {
					apart[i] = int32(alpha) * int32(int16(binary.LittleEndian.Uint16(aRow[i*2:])))
				}
				cachedRow = row
			}

			j0 := tile * tileCols
			cols := n - j0
			if cols > tileCols {
				cols = tileCols
			}
			chunkBytes := (cols*2 + 7) &^ 7

			for i := range ctmp[:cols] {
				ctmp[i] = 0
			}
			t.ChargeBulk(dpu.OpStore, uint64(cols))

			for kk := 0; kk < k; kk++ {
				t.MRAMToWRAM(tileBase, r.bOff+int64(kk*stride+j0)*2, chunkBytes)
				bChunk := sc.chunk[:cols*2]
				if err := d.CopyFromWRAMInto(tileBase, bChunk); err != nil {
					return err
				}
				ap := apart[kk]
				for j := 0; j < cols; j++ {
					ctmp[j] += ap * int32(int16(binary.LittleEndian.Uint16(bChunk[j*2:])))
				}
				t.ChargeBulk(dpu.OpLoad, uint64(2*cols))
				t.ChargeBulk(dpu.OpMul16, uint64(cols))
				t.ChargeBulk(dpu.OpAddInt, uint64(cols))
				t.ChargeBulk(dpu.OpStore, uint64(cols))
			}

			out := sc.out[:chunkBytes]
			for j := 0; j < cols; j++ {
				binary.LittleEndian.PutUint16(out[j*2:], uint16(fixed.GEMMOutputClamp(ctmp[j])))
			}
			for b := cols * 2; b < chunkBytes; b++ {
				out[b] = 0
			}
			t.ChargeBulk(dpu.OpShift, uint64(cols))
			t.ChargeBulk(dpu.OpBranch, uint64(cols))
			t.ChargeBulk(dpu.OpStore, uint64(cols))
			if err := d.CopyToWRAM(tileBase, out); err != nil {
				return err
			}
			t.WRAMToMRAM(r.cFullOff+int64(row*stride+j0)*2, tileBase, chunkBytes)
		}
		return nil
	}
}

// growBytes returns buf resliced to n bytes, reallocating only when the
// capacity is insufficient. Contents are unspecified; callers overwrite.
func growBytes(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// MultiplyBatch computes C_i = clamp((alpha·A·B_i)/32) for a batch of B
// matrices with the image-per-DPU mapping: B_i goes to DPU i and that DPU
// computes the entire product. The batch size must not exceed the system
// size; EnableBatch must have been called with maxM >= m.
func (r *Runner) MultiplyBatch(m, n, k int, alpha int16, a []int16, bs [][]int16) ([][]int16, Stats, error) {
	out := make([][]int16, len(bs))
	st, err := r.MultiplyBatchEach(m, n, k, alpha, a, bs, func(i int, c []int16) {
		out[i] = c
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// MultiplyBatchEach is MultiplyBatch delivering each image's freshly
// allocated product through each(i, c) as soon as it is decoded. In
// pipelined mode each(i) runs while image i+1's gather is still in
// flight, so per-image post-processing (bias/activation in the YOLO
// batch path) overlaps the remaining transfers. Images are delivered in
// order.
func (r *Runner) MultiplyBatchEach(m, n, k int, alpha int16, a []int16, bs [][]int16, each func(i int, c []int16)) (Stats, error) {
	var st Stats
	if r.maxM == 0 {
		return st, fmt.Errorf("gemm: batch mode not enabled (call EnableBatch)")
	}
	if m > r.maxM {
		return st, fmt.Errorf("gemm: M=%d exceeds batch bound %d", m, r.maxM)
	}
	if len(bs) < 1 || len(bs) > r.sys.NumDPUs() {
		return st, fmt.Errorf("gemm: batch of %d images for %d DPUs", len(bs), r.sys.NumDPUs())
	}
	if err := checkDims(m, n, k, a, bs[0]); err != nil {
		return st, err
	}
	if k > r.cfg.MaxK || n > r.cfg.MaxN {
		return st, fmt.Errorf("gemm: problem K=%d N=%d exceeds runner bounds K<=%d N<=%d",
			k, n, r.cfg.MaxK, r.cfg.MaxN)
	}
	for i, b := range bs {
		if len(b) != k*n {
			return st, fmt.Errorf("gemm: B[%d] has %d elements, want %d", i, len(b), k*n)
		}
	}

	if parent := r.eng.TraceSpan(); parent != nil {
		bsp := parent.StartChild("gemm.batch")
		bsp.SetAttr("m", int64(m))
		bsp.SetAttr("n", int64(n))
		bsp.SetAttr("k", int64(k))
		bsp.SetAttr("images", int64(len(bs)))
		r.eng.SetTraceSpan(bsp)
		defer func() {
			r.eng.SetTraceSpan(parent)
			bsp.End()
		}()
	}

	// Encode the weight matrix A at the padded row stride the kernel
	// stages from. The engine broadcasts it ahead of the image scatter
	// (queued in pipelined mode, so the scatter overlaps it).
	aRowBytes := (k*2 + 7) &^ 7
	r.aFullStage = growBytes(r.aFullStage, m*aRowBytes)
	aBytes := r.aFullStage
	for row := 0; row < m; row++ {
		for kk := 0; kk < k; kk++ {
			binary.LittleEndian.PutUint16(aBytes[row*aRowBytes+kk*2:], uint16(a[row*k+kk]))
		}
		for bb := row*aRowBytes + k*2; bb < (row+1)*aRowBytes; bb++ {
			aBytes[bb] = 0
		}
	}

	// Scatter each image's B matrix, row-stride padded. The staging
	// buffers persist on the runner across calls.
	stride := pad4(n)
	imgBytes := k * stride * 2
	nd := r.sys.NumDPUs()
	if len(r.batchBufs) != nd {
		r.batchBufs = make([][]byte, nd)
	}
	r.batchStage = growBytes(r.batchStage, len(bs)*imgBytes)
	r.emptyB = growBytes(r.emptyB, imgBytes)
	for bb := range r.emptyB {
		r.emptyB[bb] = 0
	}
	bufs := r.batchBufs
	for i := range bufs {
		if i < len(bs) {
			buf := r.batchStage[i*imgBytes : (i+1)*imgBytes]
			for kk := 0; kk < k; kk++ {
				row := buf[kk*stride*2 : (kk*stride+stride)*2]
				for j := 0; j < n; j++ {
					binary.LittleEndian.PutUint16(row[j*2:], uint16(bs[i][kk*n+j]))
				}
				for j := n; j < stride; j++ {
					binary.LittleEndian.PutUint16(row[j*2:], 0)
				}
			}
			bufs[i] = buf
		} else {
			bufs[i] = r.emptyB
		}
	}
	// An armed SetWeightLayer makes the whole weight matrix resident:
	// the broadcast below is skipped for every DPU whose arena copy is
	// current, and the kernel stages A rows from the arena slot.
	var ent *exec.ResidentEntry
	if r.residArmed {
		r.residArmed = false
		if r.wmodel != nil {
			if e, ok := r.wmodel.Entry(r.residKey, int64(m*aRowBytes), hashInt16s(a)); ok {
				ent = e
			}
		}
	}
	aRef, aOff, aBase := r.refAFull, int64(0), r.aFullOff
	if ent != nil {
		aRef, aOff, aBase = ent.Ref(), ent.Off(), ent.Abs()
	}
	r.encodeParams(n, k, m, alpha, aBase)
	if r.batchKernel == nil {
		if r.cfg.LegacyCharging {
			r.batchKernel = r.kernelBatchLegacy()
		} else {
			r.batchKernel = r.kernelBatch()
		}
	}

	// An auto-mapping runner re-plans the image-per-DPU dispatch for
	// this problem shape; the hand-tuned tasklet count applies otherwise.
	tasklets := r.cfg.Tasklets
	if r.batchAllocT > 0 && r.batchAllocT < tasklets {
		tasklets = r.batchAllocT
	}
	if r.planner != nil {
		psp := r.eng.TraceSpan().StartChild("plan")
		mp := r.planner.GEMMBatch(m, n, k, len(bs), r.planOpts(true))
		tasklets = mp.Tasklets
		r.lastPlan, r.hasPlan = mp, true
		psp.SetAttr("tasklets", int64(mp.Tasklets))
		psp.SetAttr("dpus", int64(mp.DPUs))
		psp.End()
	}

	// Dispatch through the execution engine's streamed single-wave path:
	// A broadcast → image scatter → params broadcast → launch → per-DPU
	// streaming gather, with pipelining and retry-and-remap owned by the
	// engine (internal/exec).
	ss := exec.StreamSet{
		Shards:   len(bs),
		Tasklets: tasklets,
		Kernel:   r.batchKernel,
		Pre:      []exec.Broadcast{{Ref: aRef, Off: aOff, Data: aBytes, Resident: ent}},
		Scatter:  []exec.Stream{{Ref: r.refB, Bufs: bufs}},
		Post:     []exec.Broadcast{{Ref: r.refParams, Data: r.paramsBuf[:]}},
		OutRef:   r.refCFull,
		OutBytes: m * stride * 2,
		Ins: func(i int) []exec.Xfer {
			return []exec.Xfer{{Ref: r.refB, Data: bufs[i]}}
		},
		Deliver: func(i int, raw []byte) {
			each(i, decodeBatchC(raw, m, n, stride))
		},
	}
	if err := r.eng.RunStream(&ss, &st); err != nil {
		return st, err
	}
	return st, nil
}

// decodeBatchC unpacks one DPU's full stride-padded C matrix into a
// fresh caller-owned slice.
func decodeBatchC(raw []byte, m, n, stride int) []int16 {
	c := make([]int16, m*n)
	for row := 0; row < m; row++ {
		for j := 0; j < n; j++ {
			c[row*n+j] = int16(binary.LittleEndian.Uint16(raw[(row*stride+j)*2:]))
		}
	}
	return c
}

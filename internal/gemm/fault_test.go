package gemm

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
)

// Seeded so that FaultPlan{Seed: 1, DeadFrac: 0.3} dooms DPUs 1 and 6 of
// an 8-DPU system (25% of the array) and DPU 1 of a 4-DPU system — a
// deterministic mid-run kill well above the 5% degradation target.
var deadPlan = dpu.FaultPlan{Seed: 1, DeadFrac: 0.3, DeadAfterLaunches: 1}

// transientPlan injects recoverable faults only: no DPU dies, but
// transfers and kernel launches fail at a rate that guarantees several
// faults across a multi-wave GEMM.
var transientPlan = dpu.FaultPlan{Seed: 2, TransferProb: 0.15, TrapProb: 0.1}

// TestMultiplyFaultRecovery: a Multiply over several waves must survive
// DPUs dying mid-run (and transient transfer/trap faults) by re-mapping
// the failed row shards onto survivors, with results bit-identical to
// the fault-free reference.
func TestMultiplyFaultRecovery(t *testing.T) {
	const m, n, k = 24, 40, 18
	a, b := pipelineProblem(m, n, k)
	want, err := Reference(m, n, k, 3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	plans := []struct {
		name string
		plan dpu.FaultPlan
	}{
		{"dead", deadPlan},
		{"transient", transientPlan},
	}
	modes := []struct {
		name string
		mode host.PipelineMode
	}{
		{"sync", host.PipelineOff},
		{"pipelined", host.PipelineOn},
	}
	for _, p := range plans {
		for _, mode := range modes {
			t.Run(p.name+"/"+mode.name, func(t *testing.T) {
				sys, err := host.NewSystem(8, host.DefaultConfig(dpu.O3))
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Close()
				r, err := NewRunner(sys, RunnerConfig{
					MaxK: k, MaxN: n, Tasklets: 4, TileCols: 16, Pipeline: mode.mode,
				})
				if err != nil {
					t.Fatal(err)
				}
				sys.InjectFaults(p.plan)
				got, st, err := r.Multiply(m, n, k, 3, a, b)
				if err != nil {
					t.Fatalf("Multiply under %s faults: %v", p.name, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("element %d: got %d, want %d (degraded run must be bit-identical)",
							i, got[i], want[i])
					}
				}
				if st.Retries == 0 {
					t.Errorf("no re-dispatches recorded; the %s plan should have faulted", p.name)
				}
				// The degraded run is not free: retried shards add their
				// real cycles on top of the wave maxima.
				if st.Cycles == 0 || st.Seconds == 0 {
					t.Errorf("degraded run reported empty stats: %+v", st)
				}
			})
		}
	}
}

// TestMultiplyFaultSecondCall: a runner whose DPUs died during one
// Multiply must keep working on the next call, re-dispatching the dead
// DPUs' shards without being handed stale broadcast data.
func TestMultiplyFaultSecondCall(t *testing.T) {
	const m, n, k = 16, 24, 12
	a, b := pipelineProblem(m, n, k)
	want, err := Reference(m, n, k, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := host.NewSystem(8, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 4, TileCols: 16})
	if err != nil {
		t.Fatal(err)
	}
	sys.InjectFaults(deadPlan)
	for call := 0; call < 3; call++ {
		got, _, err := r.Multiply(m, n, k, 1, a, b)
		if err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("call %d element %d: got %d, want %d", call, i, got[i], want[i])
			}
		}
	}
}

// TestMultiplyBatchFaultRecovery: the image-per-DPU mapping must survive
// a DPU dying during the batch launch — its image is re-run on a
// survivor and every image's result stays bit-identical to the
// reference, including on repeated calls against the degraded array.
func TestMultiplyBatchFaultRecovery(t *testing.T) {
	const m, n, k = 6, 70, 18
	const nImg = 4
	a := make([]int16, m*k)
	for i := range a {
		a[i] = int16(i%11 - 5)
	}
	bs := make([][]int16, nImg)
	for img := range bs {
		bs[img] = make([]int16, k*n)
		for i := range bs[img] {
			bs[img][i] = int16((i+img*7)%9 - 4)
		}
	}
	want := make([][]int16, nImg)
	for img := range bs {
		var err error
		want[img], err = Reference(m, n, k, 1, a, bs[img])
		if err != nil {
			t.Fatal(err)
		}
	}
	modes := []struct {
		name string
		mode host.PipelineMode
	}{
		{"sync", host.PipelineOff},
		{"pipelined", host.PipelineOn},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			r := newBatchRunner(t, 4, m, RunnerConfig{
				MaxK: k, MaxN: n, Tasklets: 8, TileCols: 16, Pipeline: mode.mode,
			})
			// Dooms DPU 1 of 4; it dies at its first batch launch.
			r.sys.InjectFaults(dpu.FaultPlan{Seed: 1, DeadFrac: 0.3, DeadAfterLaunches: 0})
			for call := 0; call < 2; call++ {
				got, st, err := r.MultiplyBatch(m, n, k, 1, a, bs)
				if err != nil {
					t.Fatalf("call %d: MultiplyBatch under faults: %v", call, err)
				}
				for img := range want {
					for i := range want[img] {
						if got[img][i] != want[img][i] {
							t.Fatalf("call %d image %d element %d: got %d, want %d",
								call, img, i, got[img][i], want[img][i])
						}
					}
				}
				if st.Retries == 0 {
					t.Errorf("call %d: no re-dispatches recorded; DPU 1 should have died", call)
				}
			}
		})
	}
}

package gemm

import (
	"math/rand"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/plan"
)

// TestPlanFixedTileColsMatchesDefault pins the cross-package mirror:
// plan cannot import gemm (gemm imports plan), so it re-states the
// default tile width as plan.FixedTileCols. The two constants must
// never drift apart.
func TestPlanFixedTileColsMatchesDefault(t *testing.T) {
	if plan.FixedTileCols != DefaultTileCols {
		t.Fatalf("plan.FixedTileCols = %d, gemm.DefaultTileCols = %d", plan.FixedTileCols, DefaultTileCols)
	}
	if plan.FixedTasklets != dpu.PipelineDepth {
		t.Fatalf("plan.FixedTasklets = %d, pipeline depth = %d", plan.FixedTasklets, dpu.PipelineDepth)
	}
}

func randOperand(rng *rand.Rand, n int) []int16 {
	s := make([]int16, n)
	for i := range s {
		s[i] = int16(rng.Intn(256) - 128)
	}
	return s
}

// TestPlannerPredictionExact holds the planner's analytic latency
// against the simulator for all three kernel families. The cost model
// mirrors the kernels charge by charge, so on the fault-free path the
// prediction must be EXACT — not approximately right — for any shape
// and any operand values.
func TestPlannerPredictionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, naive := range []bool{false, true} {
		sys, err := host.NewSystem(8, host.DefaultConfig(dpu.O3))
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		p := plan.New(sys)
		r, err := NewRunner(sys, RunnerConfig{MaxK: 128, MaxN: 600, Naive: naive, Planner: p})
		if err != nil {
			t.Fatal(err)
		}
		// Shapes spanning one tile, a partial tail tile, and more rows
		// than DPUs (multi-wave).
		for _, sh := range [][3]int{{3, 300, 128}, {3, 65, 37}, {20, 600, 64}} {
			m, n, k := sh[0], sh[1], sh[2]
			_, st, err := r.Multiply(m, n, k, 1, randOperand(rng, m*k), randOperand(rng, k*n))
			if err != nil {
				t.Fatal(err)
			}
			mp, ok := r.LastMapping()
			if !ok {
				t.Fatal("planner runner reported no mapping")
			}
			if mp.PredictedSeconds != st.Seconds {
				t.Errorf("naive=%v m=%d n=%d k=%d: predicted %.9gs != simulated %.9gs",
					naive, m, n, k, mp.PredictedSeconds, st.Seconds)
			}
			if st.Tasklets != mp.Tasklets {
				t.Errorf("naive=%v: launched %d tasklets, planned %d", naive, st.Tasklets, mp.Tasklets)
			}
		}
	}

	// Batch kernel (image-per-DPU, single wave over <= NumDPUs images).
	sys, err := host.NewSystem(8, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	p := plan.New(sys)
	r, err := NewRunner(sys, RunnerConfig{MaxK: 64, MaxN: 200, Planner: p})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableBatch(5); err != nil {
		t.Fatal(err)
	}
	a := randOperand(rng, 5*64)
	bs := make([][]int16, 8)
	for i := range bs {
		bs[i] = randOperand(rng, 64*200)
	}
	st, err := r.MultiplyBatchEach(5, 200, 64, 1, a, bs, func(i int, c []int16) {})
	if err != nil {
		t.Fatal(err)
	}
	mp, ok := r.LastMapping()
	if !ok {
		t.Fatal("batch planner runner reported no mapping")
	}
	if mp.PredictedSeconds != st.Seconds {
		t.Errorf("batch: predicted %.9gs != simulated %.9gs", mp.PredictedSeconds, st.Seconds)
	}
	if st.Tasklets != mp.Tasklets {
		t.Errorf("batch: launched %d tasklets, planned %d", st.Tasklets, mp.Tasklets)
	}
}

// TestPlannerBitIdentity: the auto-mapper only picks among mapping axes
// (tasklets, wave width, pipeline mode); the product must be
// bit-identical to the fixed hand-tuned mapping's.
func TestPlannerBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, n, k := 13, 470, 96
	a := randOperand(rng, m*k)
	b := randOperand(rng, k*n)

	mul := func(planner bool) []int16 {
		sys, err := host.NewSystem(8, host.DefaultConfig(dpu.O3))
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		cfg := RunnerConfig{MaxK: k, MaxN: n}
		if planner {
			cfg.Planner = plan.New(sys)
		} else {
			cfg.Tasklets = plan.FixedTasklets
		}
		r, err := NewRunner(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, _, err := r.Multiply(m, n, k, 1, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	fixed, planned := mul(false), mul(true)
	for i := range fixed {
		if fixed[i] != planned[i] {
			t.Fatalf("planned product diverged from fixed at %d: %d != %d", i, planned[i], fixed[i])
		}
	}
}

// TestPlannerWRAMCap: with no explicit tasklet count the planner-backed
// runner sizes its WRAM allocation from the feasibility cap, and the
// batch path lowers the cap for its per-tasklet A-row cache.
func TestPlannerWRAMCap(t *testing.T) {
	sys, err := host.NewSystem(4, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	p := plan.New(sys)
	// AlexNet-scale K: the row cap stays high, the batch cap collapses.
	maxK := 9216
	rowCap := p.GEMMTaskletCap(maxK, DefaultTileCols, false)
	batchCap := p.GEMMTaskletCap(maxK, DefaultTileCols, true)
	if rowCap < 1 || rowCap > dpu.MaxTasklets {
		t.Fatalf("row cap %d outside 1..%d", rowCap, dpu.MaxTasklets)
	}
	if batchCap >= rowCap {
		t.Errorf("batch cap %d should fall below row cap %d (per-tasklet A cache)", batchCap, rowCap)
	}
	r, err := NewRunner(sys, RunnerConfig{MaxK: maxK, MaxN: 512, Planner: p})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tasklets() != rowCap {
		t.Errorf("planner runner allocated %d tasklets, want WRAM cap %d", r.Tasklets(), rowCap)
	}
	// At this K the row-cap tile area leaves no WRAM for even one batch
	// A-row cache slot; EnableBatch must refuse rather than overcommit.
	if err := r.EnableBatch(4); err == nil {
		t.Errorf("EnableBatch(MaxK=%d) after row-cap allocation should exhaust WRAM", maxK)
	}

	// A moderate K fits both: tile area at the row cap plus a reduced
	// set of cache slots in the remainder.
	sys2, err := host.NewSystem(4, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	r2, err := NewRunner(sys2, RunnerConfig{MaxK: 1152, MaxN: 512, Planner: plan.New(sys2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.EnableBatch(4); err != nil {
		t.Fatalf("EnableBatch(MaxK=1152) with planner: %v", err)
	}
}

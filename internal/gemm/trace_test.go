package gemm

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/trace"
)

// runWithTracing runs one multi-wave Multiply on a fresh system,
// optionally with a request span installed on the runner, and returns
// the product, stats, and the completed trace (nil when untraced).
func runWithTracing(t testing.TB, traced bool, plan *dpu.FaultPlan) ([]int16, Stats, *trace.Trace) {
	const m, n, k = 24, 40, 18
	a, b := pipelineProblem(m, n, k)
	sys, err := host.NewSystem(8, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		sys.InjectFaults(*plan)
	}
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 8, TileCols: 16})
	if err != nil {
		t.Fatal(err)
	}
	var root *trace.Span
	if traced {
		tracer := trace.NewTracer(trace.TracerConfig{})
		root = tracer.StartTrace("test")
		r.SetTraceSpan(root)
	}
	c, st, err := r.Multiply(m, n, k, 3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if traced {
		r.SetTraceSpan(nil)
		root.End()
		return c, st, root.Trace()
	}
	return c, st, nil
}

// TestTracingBitIdentity enforces the telemetry contract on the
// tracing subsystem: installing a request span must not change a
// single output value, simulated cycle, or retry count — with and
// without fault injection.
func TestTracingBitIdentity(t *testing.T) {
	cases := []struct {
		name string
		plan *dpu.FaultPlan
	}{
		{"clean", nil},
		{"dead", &deadPlan},
		{"transient", &transientPlan},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cOff, stOff, _ := runWithTracing(t, false, tc.plan)
			cOn, stOn, tr := runWithTracing(t, true, tc.plan)
			if len(cOff) != len(cOn) {
				t.Fatalf("output lengths differ: %d vs %d", len(cOff), len(cOn))
			}
			for i := range cOff {
				if cOff[i] != cOn[i] {
					t.Fatalf("output[%d] = %d traced, %d untraced", i, cOn[i], cOff[i])
				}
			}
			if stOff != stOn {
				t.Errorf("stats diverge: off=%+v on=%+v", stOff, stOn)
			}
			if tr == nil || len(tr.Spans()) < 3 {
				t.Errorf("traced run produced no span tree")
			}
		})
	}
}

// TestTracingSpanTree checks the shape a traced Multiply records:
// a gemm.multiply child under the request root, engine wave phases
// under it, and per-DPU kernel spans with cycle attributes.
func TestTracingSpanTree(t *testing.T) {
	_, st, tr := runWithTracing(t, true, nil)
	spans := tr.Spans()
	count := map[string]int{}
	var kernelCycles int64
	for _, n := range spans {
		count[n.Name]++
		if n.Name == "dpu_kernel" {
			for _, a := range n.Attrs {
				if a.Key == "cycles" {
					kernelCycles += a.Val
				}
			}
		}
	}
	if count["gemm.multiply"] != 1 {
		t.Errorf("gemm.multiply spans = %d, want 1 (have %v)", count["gemm.multiply"], count)
	}
	if count["launch"] == 0 && count["wave"] == 0 {
		t.Errorf("no launch/wave spans recorded: %v", count)
	}
	if count["scatter"] == 0 {
		t.Errorf("no scatter spans recorded: %v", count)
	}
	if count["dpu_kernel"] == 0 {
		t.Errorf("no per-DPU kernel spans recorded: %v", count)
	}
	// Stats.Cycles is the simulated wall clock (max per wave); kernel
	// spans sum cycles across all 8 DPUs, so the total lands between the
	// wall clock and 8x it.
	if uint64(kernelCycles) < st.Cycles || uint64(kernelCycles) > st.Cycles*8 {
		t.Errorf("kernel span cycles %d implausible vs stats cycles %d", kernelCycles, st.Cycles)
	}
	// Structural integrity: every span's parent exists (or is the root's 0).
	ids := map[trace.SpanID]bool{}
	for _, n := range spans {
		ids[n.ID] = true
	}
	for _, n := range spans {
		if n.Parent != 0 && !ids[n.Parent] {
			t.Errorf("span %q (id %d) has dangling parent %d", n.Name, n.ID, n.Parent)
		}
	}
}

// TestTracingZeroExtraAllocs pins the disabled-path contract: with no
// span installed, the instrumented Multiply hot path allocates exactly
// what it did before tracing existed.
func TestTracingZeroExtraAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race detector perturbs AllocsPerRun by detector-internal allocations")
	}
	const m, n, k = 2, 96, 64
	a, b := pipelineProblem(m, n, k)
	mk := func() *Runner {
		sys, err := host.NewSystem(2, host.DefaultConfig(dpu.O3))
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 4, TileCols: 16})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Multiply(m, n, k, 1, a, b); err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := mk()
	base := testing.AllocsPerRun(50, func() {
		if _, _, err := r.Multiply(m, n, k, 1, a, b); err != nil {
			t.Fatal(err)
		}
	})
	// Same runner, tracing armed and then disarmed: the disabled path
	// must return to the baseline exactly.
	tracer := trace.NewTracer(trace.TracerConfig{})
	root := tracer.StartTrace("warm")
	r.SetTraceSpan(root)
	if _, _, err := r.Multiply(m, n, k, 1, a, b); err != nil {
		t.Fatal(err)
	}
	r.SetTraceSpan(nil)
	root.End()
	off := testing.AllocsPerRun(50, func() {
		if _, _, err := r.Multiply(m, n, k, 1, a, b); err != nil {
			t.Fatal(err)
		}
	})
	if off > base {
		t.Errorf("disabled tracing allocates %.1f per Multiply, baseline %.1f — want zero extra", off, base)
	}
}

// BenchmarkTracingDisabledOverhead is the bench.sh allocation gate for
// the tracing-disabled path: no span installed, the hot path must stay
// at the pre-tracing allocation count (the gate pins allocs/op).
func BenchmarkTracingDisabledOverhead(b *testing.B) {
	const m, n, k = 2, 1024, 64
	am, bm := benchProblem(m, n, k)
	sys, _ := host.NewSystem(2, host.DefaultConfig(dpu.O3))
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 11, TileCols: 256})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := r.Multiply(m, n, k, 1, am, bm); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Multiply(m, n, k, 1, am, bm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracingEnabledOverhead measures the same hot path with a
// fresh request trace per iteration — the serving pattern — for the
// ns/op and allocs/op delta report.
func BenchmarkTracingEnabledOverhead(b *testing.B) {
	const m, n, k = 2, 1024, 64
	am, bm := benchProblem(m, n, k)
	sys, _ := host.NewSystem(2, host.DefaultConfig(dpu.O3))
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 11, TileCols: 256})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := r.Multiply(m, n, k, 1, am, bm); err != nil {
		b.Fatal(err)
	}
	tracer := trace.NewTracer(trace.TracerConfig{Ring: 4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tracer.StartTrace("bench")
		r.SetTraceSpan(root)
		if _, _, err := r.Multiply(m, n, k, 1, am, bm); err != nil {
			b.Fatal(err)
		}
		r.SetTraceSpan(nil)
		root.End()
	}
}

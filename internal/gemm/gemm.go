// Package gemm implements the fixed-point general matrix multiply of
// thesis Algorithm 2 and its distribution across DPUs (§4.2.3, Fig 4.6).
//
// The quantized YOLOv3 lowers every convolution to GEMM via im2col; the
// GEMM is the only part delegated to the DPUs ("the GEMM functions are
// only delegated to the DPUs instead of mapping the entire convolutional
// layers"). The mapping follows Fig 4.6: each DPU receives one row of A,
// the entirety of B, and produces one row of C; inside a DPU, tasklets
// split the N output columns.
//
// All arithmetic is integer: int16 operands, int32 accumulation with
// C-style wrapping, and the Algorithm 2 output rescale
// absolutemax(acc/32, 32767).
package gemm

import (
	"fmt"

	"pimdnn/internal/fixed"
)

// Reference computes Algorithm 2 on the host, bit-exactly as the DPU
// kernel does: C[i*N+j] = absolutemax((Σ_k ALPHA*A[i*K+k]*B[k*N+j])/32, 32767).
func Reference(m, n, k int, alpha int16, a, b []int16) ([]int16, error) {
	if err := checkDims(m, n, k, a, b); err != nil {
		return nil, err
	}
	c := make([]int16, m*n)
	ctmp := make([]int32, n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			apart := int32(alpha) * int32(a[i*k+kk])
			row := b[kk*n : (kk+1)*n]
			for j, bv := range row {
				// int32 wrapping accumulation, as the C kernel does.
				ctmp[j] += apart * int32(bv)
			}
		}
		for j := 0; j < n; j++ {
			c[i*n+j] = fixed.GEMMOutputClamp(ctmp[j])
			ctmp[j] = 0
		}
	}
	return c, nil
}

// ReferenceFloat is a float64 GEMM used by tests to sanity-check the
// fixed-point path on small inputs (before any clamping can trigger).
func ReferenceFloat(m, n, k int, alpha float64, a, b []float64) ([]float64, error) {
	if len(a) != m*k || len(b) != k*n {
		return nil, fmt.Errorf("gemm: dims %dx%dx%d do not match inputs %d, %d", m, n, k, len(a), len(b))
	}
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			apart := alpha * a[i*k+kk]
			for j := 0; j < n; j++ {
				c[i*n+j] += apart * b[kk*n+j]
			}
		}
	}
	return c, nil
}

func checkDims(m, n, k int, a, b []int16) error {
	if m < 1 || n < 1 || k < 1 {
		return fmt.Errorf("gemm: non-positive dims M=%d N=%d K=%d", m, n, k)
	}
	if len(a) != m*k {
		return fmt.Errorf("gemm: A has %d elements, want M*K=%d", len(a), m*k)
	}
	if len(b) != k*n {
		return fmt.Errorf("gemm: B has %d elements, want K*N=%d", len(b), k*n)
	}
	return nil
}

package gemm

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"pimdnn/internal/dpu"
	"pimdnn/internal/exec"
	"pimdnn/internal/fixed"
	"pimdnn/internal/host"
	"pimdnn/internal/plan"
	"pimdnn/internal/trace"
)

// Symbol names used by the GEMM DPU program.
const (
	symA      = "gemm_a_row"
	symB      = "gemm_b"
	symC      = "gemm_c_row"
	symCtmp   = "gemm_ctmp"
	symParams = "gemm_params"
	symAWRAM  = "gemm_a_wram"
	symTiles  = "gemm_tiles"
)

// DefaultTileCols is the number of output columns a tasklet processes per
// WRAM tile. 256 columns keep the per-k B-row DMA at 512 bytes while
// amortizing the 25-cycle DMA setup.
const DefaultTileCols = 256

// RunnerConfig sizes the per-DPU buffers. MRAM symbols are allocated once
// for the largest problem the runner will see.
type RunnerConfig struct {
	// MaxK and MaxN bound the problem sizes Multiply accepts.
	MaxK, MaxN int
	// Tasklets is the per-DPU tasklet count (Fig 4.7a sweeps this).
	Tasklets int
	// TileCols overrides DefaultTileCols when non-zero. Must be a
	// multiple of 4 so tile DMAs honor the 8-byte granularity.
	TileCols int
	// Naive selects the thesis's own kernel structure (§4.2.3/§4.3.3):
	// each tasklet owns the strided column set j, j+T, ..., and the
	// ctmp accumulator lives in MRAM because it is too large for WRAM
	// ("the internal buffer can reach up to 160 KB"), so every
	// multiply-accumulate performs per-element MRAM traffic. This is
	// the configuration behind the thesis's 65 s YOLOv3 headline; the
	// default (tiled) kernel is the §4.3.4-style improvement that
	// maximizes WRAM accesses.
	Naive bool
	// LegacyCharging selects the per-operation charging kernels (one
	// tasklet call and one simulated DMA round trip per chunk) instead
	// of the block-accounted fast kernels. Cycle totals, instruction
	// mixes, profiles and outputs are identical either way — the
	// differential tests launch both and compare — so the flag exists
	// only for those tests and for profiling the old path.
	LegacyCharging bool
	// Pipeline selects double-buffered wave pipelining through the host's
	// asynchronous command queue. Results and simulated-time accounting
	// are identical in both modes; pipelining only overlaps host
	// encode/decode wall-clock time with queued device work.
	//
	// Deprecated shorthand for Exec.Pipeline, kept so existing configs
	// keep working; Exec.Pipeline wins when it is not PipelineAuto.
	Pipeline host.PipelineMode
	// Exec is the unified execution-engine configuration (pipelining,
	// trace timeline) shared with every other runner; see internal/exec
	// and DESIGN.md, "Execution engine".
	Exec exec.Config
	// Mapping, when non-nil, seeds the hand-tunable fields from a
	// planner-produced mapping: Tasklets and TileCols when left zero,
	// and the engine's pipeline mode when both Pipeline fields are
	// PipelineAuto. The kernel family (Naive) stays the caller's choice
	// — it is an allocation-time runner property, not a per-shape axis.
	Mapping *plan.Mapping
	// Planner, when non-nil, re-plans the mapping for every problem
	// shape Multiply/MultiplyBatchEach sees: the tasklet count (and wave
	// width) of each dispatch comes from the analytic cost model instead
	// of the Tasklets field. Tasklets then bounds the planner (WRAM
	// allocation size); left zero it defaults to the WRAM-feasible cap.
	// All candidate mappings produce bit-identical results — the planner
	// only moves work between tasklets and waves.
	Planner *plan.Planner
}

// kernelScratch is the per-tasklet working set of the GEMM kernels. The
// kernels pull one from the runner's pool per tasklet invocation instead
// of allocating fresh slices per launch (and, before this existed, per
// k-iteration for the B chunk), which kept the Go garbage collector in
// the simulator's hot path. Scratch is host-side memory only; all
// simulated data movement still goes through the WRAM/MRAM helpers.
type kernelScratch struct {
	aRow   []byte  // staged A row ((MaxK*2+7)&^7 bytes)
	apart  []int32 // alpha*A[k] (MaxK)
	ctmp   []int32 // tile accumulator (tileCols)
	chunk  []byte  // B chunk / C output staging (tileCols*2)
	out    []byte  // clamped C output chunk (tileCols*2)
	acc    []int32 // naive kernel accumulator (MaxN)
	rowBuf []byte  // naive kernel MRAM row staging (pad4(MaxN)*2)

	// Launch-shared state of the tiled block kernel: tasklet 0 reads the
	// parameter block and resolves the cost blocks once per launch.
	// aoff is the MRAM address the A row was staged from (the default
	// gemm_a_row symbol, or a weight-cache arena slot when resident).
	n, k   int
	aoff   int64
	blocks *tileBlocks
}

// tileBlocks caches the per-tile cost blocks for one (n, k) problem
// shape: every full tile of a launch costs the same, so the block is
// built once and charged once per tile (see dpu.CostBlock).
// shapeEntry is one (n, k) → cost-block binding of the shape cache.
type shapeEntry struct {
	n, k int
	tb   *tileBlocks
}

type tileBlocks struct {
	n, k       int
	full, tail *dpu.CostBlock
	// aT0/aRest are the per-launch A-row charges of the tiled kernel:
	// k loads + k APART multiplies for every tasklet, plus the 4
	// parameter-block loads for tasklets other than 0 (tasklet 0 charges
	// those through its real LoadI32 calls).
	aT0, aRest *dpu.CostBlock
}

// tileCost is the complete per-tile charge of the tiled kernels: zero
// ctmp, K iterations of B-chunk DMA + load/multiply/accumulate/store,
// the rescale-clamp output pass, and the C write-back DMA — exactly
// the sequence the legacy kernel charges per operation.
func tileCost(cols, k int) *dpu.CostBlock {
	chunk := (cols*2 + 7) &^ 7
	b := dpu.NewCostBlock()
	b.AddOp(dpu.OpStore, uint64(k*cols+2*cols))
	b.AddOp(dpu.OpLoad, uint64(2*k*cols))
	b.AddOp(dpu.OpMul16, uint64(k*cols))
	b.AddOp(dpu.OpAddInt, uint64(k*cols))
	b.AddOp(dpu.OpShift, uint64(cols))
	b.AddOp(dpu.OpBranch, uint64(cols))
	b.AddDMA(uint64(k+1), chunk)
	return b
}

// blocksFor returns the cached cost blocks for the (n, k) shape. The
// cache holds every shape seen (a network has one per layer, and the
// pipelined engine interleaves waves of adjacent layers, so a
// single-shape cache would thrash); it is a copy-on-write slice so
// kernels on different DPUs only read the published pointer. A racing
// rebuild produces an identical block, and losing the publish race just
// rebuilds once more on the next miss.
func (r *Runner) blocksFor(n, k int) *tileBlocks {
	cached := r.tileBlk.Load()
	if cached != nil {
		for i := range *cached {
			e := &(*cached)[i]
			if e.n == n && e.k == k {
				return e.tb
			}
		}
	}
	tb := &tileBlocks{n: n, k: k}
	if n >= r.tileCols {
		tb.full = tileCost(r.tileCols, k)
	}
	if rem := n % r.tileCols; rem != 0 {
		tb.tail = tileCost(rem, k)
	}
	tb.aT0 = dpu.NewCostBlock()
	tb.aT0.AddOp(dpu.OpLoad, uint64(k))
	tb.aT0.AddOp(dpu.OpMul16, uint64(k))
	tb.aRest = dpu.NewCostBlock()
	tb.aRest.AddOp(dpu.OpLoad, uint64(k+4))
	tb.aRest.AddOp(dpu.OpMul16, uint64(k))
	var next []shapeEntry
	if cached != nil {
		next = append(next, *cached...)
	}
	next = append(next, shapeEntry{n: n, k: k, tb: tb})
	r.tileBlk.Store(&next)
	return tb
}

// Runner distributes Algorithm 2 GEMMs across a DPU system with the
// Fig 4.6 row-per-DPU mapping.
type Runner struct {
	sys      *host.System
	cfg      RunnerConfig
	tileCols int

	aOff, bOff, cOff, ctmpOff int64 // MRAM
	paramsOff, aWRAM, tileOff int64 // WRAM

	// Resolved symbol handles: transfers in the per-layer loops skip the
	// per-call name lookup.
	refA, refB, refC, refParams host.SymbolRef

	// Cached kernel closures (built once; kernels are stateless between
	// launches apart from the pooled scratch).
	tiledKernel dpu.KernelFunc
	naiveKernel dpu.KernelFunc
	batchKernel dpu.KernelFunc

	// tileBlk caches the per-tile cost blocks of every problem shape
	// seen, for the block-accounted kernels (copy-on-write slice with
	// inline keys, so the per-launch scan chases no pointers).
	tileBlk atomic.Pointer[[]shapeEntry]

	// scratch pools per-tasklet kernel buffers. A sync.Pool (rather than
	// an array indexed by tasklet ID) because the same tasklet ID runs
	// concurrently on different DPUs during a parallel launch.
	scratch sync.Pool

	// Host-side transfer staging reused across calls. Multiply is not
	// safe for concurrent use on one Runner (the DPU symbols are shared
	// state), so plain fields suffice.
	bStage    []byte // padded B matrix broadcast buffer
	paramsBuf [24]byte

	// eng is the shared execution engine: it owns wave construction,
	// double-buffered pipelining, and retry-and-remap (internal/exec).
	// mws and mulStages are the row-mode WorkSet adapter and its staging
	// sets (stage 0 for synchronous dispatch, both when pipelined).
	eng       *exec.Engine
	mws       mulWorkSet
	mulStages [2]mulStage

	// Batch (image-per-DPU) mode, set up by EnableBatch.
	maxM                          int
	aFullOff, cFullOff, aCacheOff int64
	refAFull, refCFull            host.SymbolRef
	aFullStage                    []byte
	batchStage                    []byte   // flat backing for batchBufs
	batchBufs                     [][]byte // per-DPU B scatter views
	emptyB                        []byte

	// Weight residency (EnableResidency): wmodel is this runner's
	// resident set in the shared cache; residKey/residArmed are the
	// one-shot layer selector armed by SetWeightLayer and consumed by
	// the next Multiply or MultiplyBatchEach.
	wmodel     *exec.ResidentModel
	residKey   int
	residArmed bool

	// Auto-mapping (RunnerConfig.Planner): curTasklets/curWidth are the
	// live dispatch's planned tasklet count and wave-width cap (cfg
	// defaults when no planner), batchAllocT is the tasklet count the
	// batch-mode WRAM cache was allocated for, and lastPlan is the most
	// recent planner decision (for calibration reporting).
	planner     *plan.Planner
	curTasklets int
	curWidth    int
	batchAllocT int
	lastPlan    plan.Mapping
	hasPlan     bool
}

// NewRunner allocates the GEMM symbols on every DPU of the system.
func NewRunner(sys *host.System, cfg RunnerConfig) (*Runner, error) {
	if cfg.MaxK < 1 || cfg.MaxN < 1 {
		return nil, fmt.Errorf("gemm: bad bounds MaxK=%d MaxN=%d", cfg.MaxK, cfg.MaxN)
	}
	if mp := cfg.Mapping; mp != nil {
		if cfg.Tasklets == 0 {
			cfg.Tasklets = mp.Tasklets
		}
		if cfg.TileCols == 0 {
			cfg.TileCols = mp.TileCols
		}
		if cfg.Exec.Pipeline == host.PipelineAuto && cfg.Pipeline == host.PipelineAuto {
			cfg.Exec.Pipeline = mp.Pipeline
		}
	}
	tileCols := cfg.TileCols
	if tileCols == 0 {
		tileCols = DefaultTileCols
	}
	if cfg.Planner != nil && cfg.Tasklets == 0 {
		// The planner re-plans per shape; the per-tasklet WRAM tile area
		// is allocated once at the feasible cap so every plan fits.
		cfg.Tasklets = cfg.Planner.GEMMTaskletCap(cfg.MaxK, tileCols, false)
	}
	if cfg.Tasklets < 1 || cfg.Tasklets > dpu.MaxTasklets {
		return nil, fmt.Errorf("gemm: tasklet count %d outside 1..%d", cfg.Tasklets, dpu.MaxTasklets)
	}
	if tileCols%4 != 0 || tileCols < 4 {
		return nil, fmt.Errorf("gemm: TileCols %d must be a positive multiple of 4", tileCols)
	}
	if 2*tileCols > dpu.MaxDMATransfer {
		return nil, fmt.Errorf("gemm: TileCols %d exceeds the DMA transfer limit", tileCols)
	}
	r := &Runner{sys: sys, cfg: cfg, tileCols: tileCols,
		planner: cfg.Planner, curTasklets: cfg.Tasklets}

	// Per-tasklet tile area: B chunk (2 bytes/col) + ctmp (4 bytes/col)
	// + C out (2 bytes/col).
	tileBytes := int64(tileCols) * 8
	// B rows are stored at a stride padded to 4 columns so every row
	// base stays 8-byte aligned for DMA (§3.2's padding rule applied to
	// the matrix layout).
	maxStride := int64(pad4(cfg.MaxN))
	allocs := []struct {
		name string
		size int64
		wram bool
	}{
		{symA, int64(cfg.MaxK) * 2, false},
		{symB, int64(cfg.MaxK) * maxStride * 2, false},
		{symC, maxStride * 2, false},
		{symCtmp, maxStride * 4, false},
		{symParams, 24, true},
		{symAWRAM, int64(cfg.MaxK) * 2, true},
		{symTiles, int64(cfg.Tasklets) * tileBytes, true},
	}
	for _, a := range allocs {
		var err error
		if a.wram {
			err = r.sys.AllocWRAM(a.name, a.size)
		} else {
			err = r.sys.AllocMRAM(a.name, a.size)
		}
		if err != nil {
			return nil, fmt.Errorf("gemm: %w", err)
		}
	}
	look := func(name string) int64 {
		s, _ := sys.DPU(0).Symbol(name)
		return s.Offset
	}
	r.aOff, r.bOff, r.cOff, r.ctmpOff = look(symA), look(symB), look(symC), look(symCtmp)
	r.paramsOff, r.aWRAM, r.tileOff = look(symParams), look(symAWRAM), look(symTiles)
	for _, ref := range []struct {
		name string
		dst  *host.SymbolRef
	}{
		{symA, &r.refA}, {symB, &r.refB}, {symC, &r.refC}, {symParams, &r.refParams},
	} {
		res, err := sys.Resolve(ref.name)
		if err != nil {
			return nil, fmt.Errorf("gemm: %w", err)
		}
		*ref.dst = res
	}

	aRowBytes := (cfg.MaxK*2 + 7) &^ 7
	r.scratch.New = func() interface{} {
		return &kernelScratch{
			aRow:   make([]byte, aRowBytes),
			apart:  make([]int32, cfg.MaxK),
			ctmp:   make([]int32, tileCols),
			chunk:  make([]byte, tileCols*2),
			out:    make([]byte, tileCols*2),
			acc:    make([]int32, cfg.MaxN),
			rowBuf: make([]byte, int(maxStride)*2),
		}
	}
	r.eng = exec.New(sys, cfg.execConfig())
	r.mws.r = r
	return r, nil
}

// execConfig resolves the effective engine configuration: Exec wins,
// with the deprecated Pipeline field honored when Exec leaves the mode
// at PipelineAuto.
func (cfg RunnerConfig) execConfig() exec.Config {
	ec := cfg.Exec
	if ec.Pipeline == host.PipelineAuto {
		ec.Pipeline = cfg.Pipeline
	}
	return ec
}

// Configure re-applies the unified execution-engine configuration
// (pipelining, trace timeline). Call it between Multiply calls only.
func (r *Runner) Configure(ec exec.Config) {
	r.eng.Configure(ec)
}

// SetScope names the layer the next Multiply calls belong to for
// telemetry decomposition (see exec.Engine.SetScope). A plain field
// store when no metrics registry is wired.
func (r *Runner) SetScope(name string) { r.eng.SetScope(name) }

// SetTraceSpan attaches the request span the next Multiply calls run
// under (see exec.Engine.SetTraceSpan): each multiply opens a
// "gemm.multiply"/"gemm.batch" child carrying the engine's wave and
// per-DPU kernel spans. nil detaches. Two pointer stores when tracing
// is off.
func (r *Runner) SetTraceSpan(sp *trace.Span) { r.eng.SetTraceSpan(sp) }

// TraceSpan returns the currently attached request span (nil when
// untraced).
func (r *Runner) TraceSpan() *trace.Span { return r.eng.TraceSpan() }

// EnableResidency joins this runner to a weight cache under the given
// model name: layers armed with SetWeightLayer scatter their weights
// into the cache's MRAM arena once and skip the transfer on repeated
// forwards. Runners sharing one System may share one cache; the LRU
// budget then arbitrates between their models.
func (r *Runner) EnableResidency(cache *exec.WeightCache, model string) {
	r.wmodel = cache.Model(model)
}

// ResidencyOn reports whether EnableResidency has been called, so
// forward passes can skip arming layers when there is no cache.
func (r *Runner) ResidencyOn() bool { return r.wmodel != nil }

// SetWeightLayer arms weight residency for the next Multiply or
// MultiplyBatchEach call: its A payload is cached under the given layer
// key (one-shot — consumed by that call). Keys are small ints (layer
// indices) so the per-call lookup allocates nothing.
func (r *Runner) SetWeightLayer(key int) {
	r.residKey = key
	r.residArmed = true
}

// takeResident consumes an armed SetWeightLayer for a row-mode Multiply
// of m rows with the given per-DPU payload size. Returns nil — falling
// back to plain re-scatter — when residency is off, the layer spans
// multiple waves (each wave would overwrite the previous one's rows),
// or the entry cannot fit the cache even after evictions.
func (r *Runner) takeResident(m int, size int64, a []int16) *exec.ResidentEntry {
	if !r.residArmed {
		return nil
	}
	r.residArmed = false
	if r.wmodel == nil || m > r.sys.NumDPUs() {
		return nil
	}
	ent, ok := r.wmodel.Entry(r.residKey, size, hashInt16s(a))
	if !ok {
		return nil
	}
	return ent
}

// hashInt16s is FNV-1a over the little-endian bytes of v — the content
// guard that re-delivers resident weights when a layer key is reused
// with different data.
func hashInt16s(v []int16) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, x := range v {
		h ^= uint64(uint16(x)) & 0xff
		h *= prime64
		h ^= uint64(uint16(x)) >> 8
		h *= prime64
	}
	return h
}

// MetricsOn reports whether the underlying System has a metrics
// registry wired, so callers can skip formatting scope names.
func (r *Runner) MetricsOn() bool { return r.eng.MetricsOn() }

// Naive reports whether the runner uses the thesis-faithful kernel.
func (r *Runner) Naive() bool { return r.cfg.Naive }

// Tasklets returns the configured per-DPU tasklet count — the planner's
// sweep bound (and WRAM allocation size) when auto-mapping is on.
func (r *Runner) Tasklets() int { return r.cfg.Tasklets }

// PlannerOn reports whether the runner auto-maps each problem shape.
func (r *Runner) PlannerOn() bool { return r.planner != nil }

// LastMapping returns the planner decision behind the most recent
// Multiply/MultiplyBatchEach, for calibration reporting; ok is false
// when no planner is wired or nothing has been dispatched yet.
func (r *Runner) LastMapping() (plan.Mapping, bool) { return r.lastPlan, r.hasPlan }

// planOpts builds the planner constraints for this runner's allocation:
// the tile width and kernel family are fixed at construction, the
// tasklet sweep is bounded by what was allocated (row mode) or what the
// batch-mode WRAM cache can hold (batch mode, always the tiled kernel).
func (r *Runner) planOpts(batch bool) plan.GEMMOptions {
	o := plan.GEMMOptions{
		TileCols:    r.tileCols,
		Naive:       r.cfg.Naive && !batch,
		MaxK:        r.cfg.MaxK,
		MaxTasklets: r.cfg.Tasklets,
		Batch:       batch,
	}
	if batch && r.batchAllocT > 0 {
		o.MaxTasklets = r.batchAllocT
	}
	return o
}

// System returns the underlying DPU system.
func (r *Runner) System() *host.System { return r.sys }

func (r *Runner) getScratch() *kernelScratch {
	return r.scratch.Get().(*kernelScratch)
}

// macRow multiply-accumulates ap times the little-endian int16 lanes of
// row into ctmp[:cols], four lanes per 8-byte load. Rows are padded to 8
// bytes (chunkBytes), so the 4-wide reads never run past the slice.
func macRow(ctmp []int32, row []byte, ap int32, cols int) {
	j := 0
	for ; j+4 <= cols; j += 4 {
		v := binary.LittleEndian.Uint64(row[j*2:])
		ctmp[j] += ap * int32(int16(v))
		ctmp[j+1] += ap * int32(int16(v>>16))
		ctmp[j+2] += ap * int32(int16(v>>32))
		ctmp[j+3] += ap * int32(int16(v>>48))
	}
	for ; j < cols; j++ {
		ctmp[j] += ap * int32(int16(binary.LittleEndian.Uint16(row[j*2:])))
	}
}

// packClamped rescale-clamps ctmp[:cols] into little-endian int16 output
// bytes, four lanes per 8-byte store, zeroing the padding tail.
func packClamped(out []byte, ctmp []int32, cols, chunkBytes int) {
	j := 0
	for ; j+4 <= cols; j += 4 {
		v := uint64(uint16(fixed.GEMMOutputClamp(ctmp[j]))) |
			uint64(uint16(fixed.GEMMOutputClamp(ctmp[j+1])))<<16 |
			uint64(uint16(fixed.GEMMOutputClamp(ctmp[j+2])))<<32 |
			uint64(uint16(fixed.GEMMOutputClamp(ctmp[j+3])))<<48
		binary.LittleEndian.PutUint64(out[j*2:], v)
	}
	for ; j < cols; j++ {
		binary.LittleEndian.PutUint16(out[j*2:], uint16(fixed.GEMMOutputClamp(ctmp[j])))
	}
	for b := cols * 2; b < chunkBytes; b++ {
		out[b] = 0
	}
}

// kernel computes one row of C for the row of A resident in this DPU's
// MRAM with block cycle accounting: tasklets claim column tiles
// round-robin, each tile's complete operation sequence is charged in
// one ChargeBlock call (see tileCost), and the B column block is
// fetched with a handful of strided bulk reads instead of one simulated
// round trip per k-iteration. Tasklet 0 stages the A row into WRAM
// (real DMA) and decodes APART once per launch into launch-shared
// scratch; every tasklet still charges its own A loads, so per-tasklet
// cycle accounting matches the legacy kernel exactly.
func (r *Runner) kernel() dpu.KernelFunc {
	tileCols := r.tileCols
	return func(t *dpu.Tasklet) error {
		d := t.DPU()
		var sc *kernelScratch
		if t.ID() == 0 {
			n := int(t.LoadI32(r.paramsOff))
			k := int(t.LoadI32(r.paramsOff + 4))
			alpha := int16(t.LoadI32(r.paramsOff + 8))
			aoff := int64(t.LoadI32(r.paramsOff + 16))
			if n < 1 || k < 1 || n > r.cfg.MaxN || k > r.cfg.MaxK {
				return fmt.Errorf("gemm kernel: bad params N=%d K=%d", n, k)
			}
			sc = r.getScratch()
			sc.n, sc.k = n, k
			sc.aoff = aoff
			sc.blocks = r.blocksFor(n, k)
			t.SetLaunchLocal(sc)
			// Stage the A row into WRAM in DMA-sized chunks (real DMA,
			// identical to the legacy kernel) from the address the
			// parameter block names — the gemm_a_row symbol normally, a
			// weight-cache arena slot when the row is resident — then
			// decode APART once for the whole launch.
			bytes := (k*2 + 7) &^ 7
			for off := 0; off < bytes; off += dpu.MaxDMATransfer {
				chunk := bytes - off
				if chunk > dpu.MaxDMATransfer {
					chunk = dpu.MaxDMATransfer
				}
				t.MRAMToWRAM(r.aWRAM+int64(off), aoff+int64(off), chunk)
			}
			aw := t.WRAMWindow(r.aWRAM, int64(k*2))
			apart := sc.apart[:k]
			al := int32(alpha)
			i := 0
			for ; i+4 <= k; i += 4 {
				v := binary.LittleEndian.Uint64(aw[i*2:])
				apart[i] = al * int32(int16(v))
				apart[i+1] = al * int32(int16(v>>16))
				apart[i+2] = al * int32(int16(v>>32))
				apart[i+3] = al * int32(int16(v>>48))
			}
			for ; i < k; i++ {
				apart[i] = al * int32(int16(binary.LittleEndian.Uint16(aw[i*2:])))
			}
		} else {
			sc = t.LaunchLocal().(*kernelScratch)
		}
		n, k := sc.n, sc.k
		// Loading A[kk] each outer iteration (one WRAM load per k plus
		// the APART multiply, Algorithm 2 line 5) is charged per tasklet
		// as in the legacy kernel; non-zero tasklets also charge the 4
		// parameter loads their legacy counterparts perform (tasklet 0
		// charged those through LoadI32 above).
		if t.ID() == 0 {
			t.ChargeBlock(sc.blocks.aT0)
		} else {
			t.ChargeBlock(sc.blocks.aRest)
		}
		tiles := (n + tileCols - 1) / tileCols
		if t.ID() >= tiles {
			// No tiles for this tasklet (tasklet count exceeds tile
			// count): all its cycles are charged above, so skip the
			// loop preamble — at 16+ tasklets on small layers the idle
			// tasklets' setup dominated per-launch host overhead.
			if t.ID() == t.Count()-1 {
				r.scratch.Put(sc)
			}
			return nil
		}
		if t.ID() == t.Count()-1 {
			defer r.scratch.Put(sc)
		}
		apart := sc.apart[:k]

		blocks := sc.blocks
		ctmp := sc.ctmp[:tileCols]
		stride := int64(pad4(n)) * 2

		// One MAC closure per launch (not per tile) so the strided walk
		// below costs no per-tile allocation. tileN is the live tile's
		// column count.
		tileN := 0
		mac := func(first, count int, block []byte, bstride int) {
			for ri := 0; ri < count; ri++ {
				if ap := apart[first+ri]; ap != 0 {
					macRow(ctmp, block[ri*bstride:], ap, tileN)
				}
			}
		}

		for tile := t.ID(); tile < tiles; tile += t.Count() {
			j0 := tile * tileCols
			cols := n - j0
			if cols > tileCols {
				cols = tileCols
			}
			chunkBytes := (cols*2 + 7) &^ 7
			blk := blocks.full
			if cols != tileCols {
				blk = blocks.tail
			}
			t.ChargeBlock(blk)

			for i := range ctmp[:cols] {
				ctmp[i] = 0
			}
			// Walk the K-deep column block in place (zero-copy page runs)
			// and multiply-accumulate natively; the modeled per-k DMA and
			// MAC costs are in the block charge above.
			tileN = cols
			if err := d.ForEachMRAMRowRuns(r.bOff+int64(j0*2), stride, chunkBytes, k, mac); err != nil {
				return err
			}

			out := sc.out[:chunkBytes]
			packClamped(out, ctmp, cols, chunkBytes)
			if err := d.CopyToMRAMRaw(r.cOff+int64(j0*2), out); err != nil {
				return err
			}
		}
		return nil
	}
}

// kernelLegacy is the per-operation-charging tiled kernel the block
// kernel above replaced. It is kept (behind RunnerConfig.LegacyCharging)
// as the reference side of the differential tests: per tile it streams
// each B row chunk from MRAM (Eq 3.4 cost per transfer) into a private
// WRAM buffer, multiply-accumulates into a WRAM ctmp buffer with bulk
// charges per k-iteration, and writes the clamped outputs back to MRAM.
func (r *Runner) kernelLegacy() dpu.KernelFunc {
	tileCols := r.tileCols
	return func(t *dpu.Tasklet) error {
		n := int(t.LoadI32(r.paramsOff))
		k := int(t.LoadI32(r.paramsOff + 4))
		alpha := int16(t.LoadI32(r.paramsOff + 8))
		aoff := int64(t.LoadI32(r.paramsOff + 16))
		if n < 1 || k < 1 || n > r.cfg.MaxN || k > r.cfg.MaxK {
			return fmt.Errorf("gemm kernel: bad params N=%d K=%d", n, k)
		}

		sc := r.getScratch()
		defer r.scratch.Put(sc)

		d := t.DPU()
		// Tasklet 0 stages the A row into WRAM in DMA-sized chunks;
		// later tasklets (run in ID order) read it shared.
		if t.ID() == 0 {
			bytes := (k*2 + 7) &^ 7
			for off := 0; off < bytes; off += dpu.MaxDMATransfer {
				chunk := bytes - off
				if chunk > dpu.MaxDMATransfer {
					chunk = dpu.MaxDMATransfer
				}
				t.MRAMToWRAM(r.aWRAM+int64(off), aoff+int64(off), chunk)
			}
		}
		aRow := sc.aRow[:k*2]
		if err := d.CopyFromWRAMInto(r.aWRAM, aRow); err != nil {
			return err
		}
		// Loading A[kk] each outer iteration: one WRAM load per k, plus
		// the APART multiply (Algorithm 2 line 5).
		t.ChargeBulk(dpu.OpLoad, uint64(k))
		t.ChargeBulk(dpu.OpMul16, uint64(k))
		apart := sc.apart[:k]
		for i := range apart {
			apart[i] = int32(alpha) * int32(int16(binary.LittleEndian.Uint16(aRow[i*2:])))
		}

		tiles := (n + tileCols - 1) / tileCols
		tileBase := r.tileOff + int64(t.ID())*int64(tileCols)*8
		ctmp := sc.ctmp[:tileCols]

		for tile := t.ID(); tile < tiles; tile += t.Count() {
			j0 := tile * tileCols
			cols := n - j0
			if cols > tileCols {
				cols = tileCols
			}
			chunkBytes := (cols*2 + 7) &^ 7

			for i := range ctmp[:cols] {
				ctmp[i] = 0
			}
			t.ChargeBulk(dpu.OpStore, uint64(cols)) // zeroing ctmp

			stride := pad4(n)
			for kk := 0; kk < k; kk++ {
				// Stream B[kk, j0:j0+cols] from MRAM.
				t.MRAMToWRAM(tileBase, r.bOff+int64(kk*stride+j0)*2, chunkBytes)
				bChunk := sc.chunk[:cols*2]
				if err := d.CopyFromWRAMInto(tileBase, bChunk); err != nil {
					return err
				}
				ap := apart[kk]
				for j := 0; j < cols; j++ {
					bv := int16(binary.LittleEndian.Uint16(bChunk[j*2:]))
					ctmp[j] += ap * int32(bv)
				}
				// Per element: load B, load ctmp, 16-bit multiply,
				// accumulate, store ctmp (Algorithm 2 line 7).
				t.ChargeBulk(dpu.OpLoad, uint64(2*cols))
				t.ChargeBulk(dpu.OpMul16, uint64(cols))
				t.ChargeBulk(dpu.OpAddInt, uint64(cols))
				t.ChargeBulk(dpu.OpStore, uint64(cols))
			}

			// Output rescale and clamp (Algorithm 2 lines 8-10), then
			// write the C chunk back to MRAM.
			out := sc.out[:chunkBytes]
			for j := 0; j < cols; j++ {
				binary.LittleEndian.PutUint16(out[j*2:], uint16(fixed.GEMMOutputClamp(ctmp[j])))
			}
			for b := cols * 2; b < chunkBytes; b++ {
				out[b] = 0 // keep the padding tail deterministic
			}
			t.ChargeBulk(dpu.OpShift, uint64(cols))  // /32
			t.ChargeBulk(dpu.OpBranch, uint64(cols)) // clamp compare
			t.ChargeBulk(dpu.OpStore, uint64(cols))
			if err := d.CopyToWRAM(tileBase, out); err != nil {
				return err
			}
			t.WRAMToMRAM(r.cOff+int64(j0*2), tileBase, chunkBytes)
		}
		return nil
	}
}

// kernelNaive reproduces the thesis's own GEMM kernel (§4.2.3):
// Algorithm 2's loop order is preserved (k outer so APART is computed
// once per k, line 5), tasklet j owns output columns j, j+T, ..., and
// the ctmp accumulator array — far too large for the tasklet's WRAM
// share — lives in MRAM, so the modeled cost includes three per-element
// MRAM transfers per multiply-accumulate (§4.3.3).
//
// This is the block-accounted form: tasklet 0 computes the whole C row
// natively once per launch (the column partition only affects which
// tasklet's meter the work lands on, not the values), and every tasklet
// charges its own strided column share in bulk — cycle totals,
// per-tasklet breakdowns and memory state identical to the legacy
// per-operation kernel.
func (r *Runner) kernelNaive() dpu.KernelFunc {
	return func(t *dpu.Tasklet) error {
		n := int(t.LoadI32(r.paramsOff))
		k := int(t.LoadI32(r.paramsOff + 4))
		alpha := int16(t.LoadI32(r.paramsOff + 8))
		aoff := int64(t.LoadI32(r.paramsOff + 16))
		if n < 1 || k < 1 || n > r.cfg.MaxN || k > r.cfg.MaxK {
			return fmt.Errorf("gemm kernel: bad params N=%d K=%d", n, k)
		}
		d := t.DPU()
		stride := pad4(n)

		if t.ID() == 0 {
			sc := r.getScratch()
			defer r.scratch.Put(sc)
			// Stage the A row (real DMA, as in the legacy kernel).
			bytes := (k*2 + 7) &^ 7
			for off := 0; off < bytes; off += dpu.MaxDMATransfer {
				chunk := bytes - off
				if chunk > dpu.MaxDMATransfer {
					chunk = dpu.MaxDMATransfer
				}
				t.MRAMToWRAM(r.aWRAM+int64(off), aoff+int64(off), chunk)
			}
			aw := t.WRAMWindow(r.aWRAM, int64(k*2))
			// Compute the full C row once: accumulate every column over
			// k, rescale-clamp, and write it back. The legacy kernel
			// arrives at the same bytes through T interleaved
			// read-modify-write passes.
			acc := sc.acc[:n]
			for i := range acc {
				acc[i] = 0
			}
			for kk := 0; kk < k; kk++ {
				apart := int32(alpha) * int32(int16(binary.LittleEndian.Uint16(aw[kk*2:])))
				if apart == 0 {
					continue
				}
				bRow := sc.rowBuf[:stride*2]
				if err := d.CopyFromMRAMRawInto(r.bOff+int64(kk*stride)*2, bRow); err != nil {
					return err
				}
				for j := 0; j < n; j++ {
					acc[j] += apart * int32(int16(binary.LittleEndian.Uint16(bRow[j*2:])))
				}
			}
			cRow := sc.rowBuf[:stride*2]
			if err := d.CopyFromMRAMRawInto(r.cOff, cRow); err != nil {
				return err
			}
			for j := 0; j < n; j++ {
				binary.LittleEndian.PutUint16(cRow[j*2:], uint16(fixed.GEMMOutputClamp(acc[j])))
			}
			if err := d.CopyToMRAMRaw(r.cOff, cRow); err != nil {
				return err
			}
		}

		// The tasklet's strided column set: charge its share of the
		// modeled work (identical totals to the legacy per-k charges).
		nCols := (n - t.ID() + t.Count() - 1) / t.Count()
		if nCols <= 0 {
			return nil
		}
		// Per k: APART load+multiply; per element: three 8-byte MRAM
		// round trips (ctmp read, B read, ctmp write), the
		// multiply-accumulate and index arithmetic.
		t.ChargeBulk(dpu.OpLoad, uint64(k))
		t.ChargeBulk(dpu.OpMul16, uint64(k))
		t.ChargeDMA(uint64(3*nCols)*uint64(k), 8)
		t.ChargeBulk(dpu.OpMul16, uint64(nCols)*uint64(k))
		t.ChargeBulk(dpu.OpAddInt, uint64(2*nCols)*uint64(k))
		// Output pass (Algorithm 2 lines 8-10).
		t.ChargeDMA(uint64(2*nCols), 8)
		t.ChargeBulk(dpu.OpShift, uint64(nCols))
		t.ChargeBulk(dpu.OpBranch, uint64(nCols))
		return nil
	}
}

// kernelNaiveLegacy is the per-operation-charging naive kernel, kept
// behind RunnerConfig.LegacyCharging as the reference side of the
// differential tests. Every inner-loop iteration performs the
// per-element MRAM accounting inline, and every tasklet independently
// re-reads the staged A row and the B rows.
func (r *Runner) kernelNaiveLegacy() dpu.KernelFunc {
	return func(t *dpu.Tasklet) error {
		n := int(t.LoadI32(r.paramsOff))
		k := int(t.LoadI32(r.paramsOff + 4))
		alpha := int16(t.LoadI32(r.paramsOff + 8))
		aoff := int64(t.LoadI32(r.paramsOff + 16))
		if n < 1 || k < 1 || n > r.cfg.MaxN || k > r.cfg.MaxK {
			return fmt.Errorf("gemm kernel: bad params N=%d K=%d", n, k)
		}
		sc := r.getScratch()
		defer r.scratch.Put(sc)

		d := t.DPU()
		if t.ID() == 0 {
			bytes := (k*2 + 7) &^ 7
			for off := 0; off < bytes; off += dpu.MaxDMATransfer {
				chunk := bytes - off
				if chunk > dpu.MaxDMATransfer {
					chunk = dpu.MaxDMATransfer
				}
				t.MRAMToWRAM(r.aWRAM+int64(off), aoff+int64(off), chunk)
			}
		}
		aRow := sc.aRow[:k*2]
		if err := d.CopyFromWRAMInto(r.aWRAM, aRow); err != nil {
			return err
		}

		// The tasklet's strided column set.
		nCols := (n - t.ID() + t.Count() - 1) / t.Count()
		if nCols <= 0 {
			return nil
		}
		acc := sc.acc[:nCols]
		for i := range acc {
			acc[i] = 0
		}
		stride := pad4(n)

		for kk := 0; kk < k; kk++ {
			av := int16(binary.LittleEndian.Uint16(aRow[kk*2:]))
			apart := int32(alpha) * int32(av)
			// APART: one WRAM load and one 16-bit multiply per k
			// (Algorithm 2 line 5).
			t.Charge(dpu.OpLoad, 1)
			t.Charge(dpu.OpMul16, 1)

			bRow := sc.rowBuf[:stride*2]
			if err := d.CopyFromMRAMInto(r.bOff+int64(kk*stride)*2, bRow); err != nil {
				return err
			}
			ci := 0
			for j := t.ID(); j < n; j += t.Count() {
				bv := int16(binary.LittleEndian.Uint16(bRow[j*2:]))
				acc[ci] += apart * int32(bv)
				ci++
			}
			// Per element: MRAM read of ctmp[j], MRAM read of B[k*N+j],
			// MRAM write of ctmp[j] (8-byte minimum transfers), plus the
			// multiply-accumulate and address arithmetic.
			t.ChargeDMA(uint64(3*nCols), 8)
			t.ChargeBulk(dpu.OpMul16, uint64(nCols))
			t.ChargeBulk(dpu.OpAddInt, uint64(2*nCols)) // accumulate + index
		}

		// Output pass (Algorithm 2 lines 8-10): read ctmp, rescale,
		// clamp, write C — one more element-wise MRAM round trip.
		cRow := sc.rowBuf[:stride*2]
		if err := d.CopyFromMRAMInto(r.cOff, cRow); err != nil {
			return err
		}
		ci := 0
		for j := t.ID(); j < n; j += t.Count() {
			binary.LittleEndian.PutUint16(cRow[j*2:], uint16(fixed.GEMMOutputClamp(acc[ci])))
			ci++
		}
		if err := d.CopyToMRAM(r.cOff, cRow); err != nil {
			return err
		}
		t.ChargeDMA(uint64(2*nCols), 8) // ctmp read + C write
		t.ChargeBulk(dpu.OpShift, uint64(nCols))
		t.ChargeBulk(dpu.OpBranch, uint64(nCols))
		return nil
	}
}

// Kernel returns the configured kernel variant, exposed so callers can
// launch it directly on a bare DPU for profiling. The closure is built
// once and reused across launches.
func (r *Runner) Kernel() dpu.KernelFunc {
	if r.cfg.Naive {
		if r.naiveKernel == nil {
			if r.cfg.LegacyCharging {
				r.naiveKernel = r.kernelNaiveLegacy()
			} else {
				r.naiveKernel = r.kernelNaive()
			}
		}
		return r.naiveKernel
	}
	if r.tiledKernel == nil {
		if r.cfg.LegacyCharging {
			r.tiledKernel = r.kernelLegacy()
		} else {
			r.tiledKernel = r.kernel()
		}
	}
	return r.tiledKernel
}

// Stats describes one distributed GEMM. It is the execution engine's
// unified per-dispatch accounting struct (see internal/exec): Waves,
// DPUsUsed, Cycles, Seconds, and Retries, identical across all runners.
type Stats = exec.Stats

// stageB packs B into the runner's broadcast buffer at the padded
// 4-column row stride the kernels expect, zeroing the padding columns.
func (r *Runner) stageB(n, k int, b []int16) []byte {
	stride := pad4(n)
	need := k * stride * 2
	if cap(r.bStage) < need {
		r.bStage = make([]byte, need)
	}
	buf := r.bStage[:need]
	for kk := 0; kk < k; kk++ {
		row := buf[kk*stride*2 : (kk*stride+stride)*2]
		src := b[kk*n : kk*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			v := uint64(uint16(src[j])) | uint64(uint16(src[j+1]))<<16 |
				uint64(uint16(src[j+2]))<<32 | uint64(uint16(src[j+3]))<<48
			binary.LittleEndian.PutUint64(row[j*2:], v)
		}
		for ; j < n; j++ {
			binary.LittleEndian.PutUint16(row[j*2:], uint16(src[j]))
		}
		for j = n; j < stride; j++ {
			binary.LittleEndian.PutUint16(row[j*2:], 0)
		}
	}
	return buf
}

// encodeParams fills the kernel parameter block staging buffer. aoff is
// the absolute MRAM address the kernel stages the A payload from: the
// runner's own A symbol normally, a weight-cache arena slot when the
// weights are resident.
func (r *Runner) encodeParams(n, k, m int, alpha int16, aoff int64) {
	binary.LittleEndian.PutUint32(r.paramsBuf[0:], uint32(n))
	binary.LittleEndian.PutUint32(r.paramsBuf[4:], uint32(k))
	binary.LittleEndian.PutUint32(r.paramsBuf[8:], uint32(uint16(alpha)))
	binary.LittleEndian.PutUint32(r.paramsBuf[12:], uint32(m))
	binary.LittleEndian.PutUint32(r.paramsBuf[16:], uint32(aoff))
	binary.LittleEndian.PutUint32(r.paramsBuf[20:], 0) // 8-byte pad
}

// pushParams broadcasts the kernel parameter block.
func (r *Runner) pushParams(n, k, m int, alpha int16) error {
	r.encodeParams(n, k, m, alpha, r.aOff)
	return r.sys.CopyToSymbolRef(r.refParams, 0, r.paramsBuf[:])
}

// encodeARows packs rows A[start..start+rows) into the per-DPU scatter
// buffers, zeroing each buffer's alignment tail.
func encodeARows(bufs [][]byte, a []int16, start, rows, k, rowBytes int) {
	for i := 0; i < rows; i++ {
		buf := bufs[i]
		for kk := 0; kk < k; kk++ {
			binary.LittleEndian.PutUint16(buf[kk*2:], uint16(a[(start+i)*k+kk]))
		}
		for bb := k * 2; bb < rowBytes; bb++ {
			buf[bb] = 0
		}
	}
}

// decodeCRow unpacks one gathered C row into c[base:base+n].
func decodeCRow(c []int16, base int, raw []byte, n int) {
	for j := 0; j < n; j++ {
		c[base+j] = int16(binary.LittleEndian.Uint16(raw[j*2:]))
	}
}

// mulStage is one staging set of the row-per-DPU mapping: per-DPU A-row
// scatter buffers and C-row gather buffers. Synchronous dispatch uses
// stage 0 at full system width; pipelined dispatch uses both stages as
// the engine's ping-pong slots (a wave's buffers stay queue-owned until
// the engine flushes it, so the host encodes the next wave into the
// other stage meanwhile).
type mulStage struct {
	aStage []byte
	aBufs  [][]byte
	cStage []byte
	cBufs  [][]byte
}

// ensureMulStages sizes the staging for waves of up to width DPUs at
// the given row sizes (one stage synchronously, both when pipelined).
func (r *Runner) ensureMulStages(width, rowBytes, cBytes int) {
	nStages := 1
	if r.eng.Pipelined() {
		nStages = 2
	}
	for s := 0; s < nStages; s++ {
		sl := &r.mulStages[s]
		sl.aStage = growBytes(sl.aStage, width*rowBytes)
		sl.cStage = growBytes(sl.cStage, width*cBytes)
		if len(sl.aBufs) != width {
			sl.aBufs = make([][]byte, width)
			sl.cBufs = make([][]byte, width)
		}
		for i := 0; i < width; i++ {
			sl.aBufs[i] = sl.aStage[i*rowBytes : (i+1)*rowBytes]
			sl.cBufs[i] = sl.cStage[i*cBytes : (i+1)*cBytes]
		}
	}
}

// mulWorkSet adapts the Fig 4.6 row-per-DPU mapping to the execution
// engine: one shard per row of A, the B matrix and parameter block as
// wave-invariant broadcasts, A rows as the scatter stream, C rows as
// the gather stream. ent, when non-nil, makes the A-row stream
// weight-resident: rows scatter into the entry's arena slot and the
// engine skips delivery for DPUs already holding the current content.
type mulWorkSet struct {
	r        *Runner
	a, c     []int16
	m, n, k  int
	rowBytes int
	ent      *exec.ResidentEntry
	bcasts   []exec.Broadcast
	streams  []exec.Stream
}

func (w *mulWorkSet) Shards() int                  { return w.m }
func (w *mulWorkSet) Tasklets() int                { return w.r.curTasklets }
func (w *mulWorkSet) Kernel() dpu.KernelFunc       { return w.r.Kernel() }
func (w *mulWorkSet) Broadcasts() []exec.Broadcast { return w.bcasts }

// MaxWaveDPUs caps the wave width at the planned mapping's DPU budget
// (exec.WidthLimiter); 0 — no cap — without a planner.
func (w *mulWorkSet) MaxWaveDPUs() int { return w.r.curWidth }

func (w *mulWorkSet) Encode(slot, start, n int) {
	encodeARows(w.r.mulStages[slot].aBufs, w.a, start, n, w.k, w.rowBytes)
}

func (w *mulWorkSet) Scatter(slot, n int) []exec.Stream {
	s := exec.Stream{Ref: w.r.refA, Bufs: w.r.mulStages[slot].aBufs}
	if w.ent != nil {
		s = exec.Stream{Ref: w.ent.Ref(), Off: w.ent.Off(), Bufs: w.r.mulStages[slot].aBufs, Resident: w.ent}
	}
	w.streams = append(w.streams[:0], s)
	return w.streams
}

func (w *mulWorkSet) Gather(slot, n int) exec.Stream {
	return exec.Stream{Ref: w.r.refC, Bufs: w.r.mulStages[slot].cBufs}
}

func (w *mulWorkSet) Decode(slot, shard, i int) {
	decodeCRow(w.c, shard*w.n, w.r.mulStages[slot].cBufs[i], w.n)
}

// Multiply runs C = clamp((alpha·A·B)/32) with A of M×K, B of K×N,
// distributing one row of A (and one row of C) per DPU as in Fig 4.6.
// Wave construction, pipelining, and fault recovery are the execution
// engine's (internal/exec); this method only stages the matrices and
// adapts them through mulWorkSet.
func (r *Runner) Multiply(m, n, k int, alpha int16, a, b []int16) ([]int16, Stats, error) {
	var st Stats
	if err := checkDims(m, n, k, a, b); err != nil {
		return nil, st, err
	}
	if k > r.cfg.MaxK || n > r.cfg.MaxN {
		return nil, st, fmt.Errorf("gemm: problem K=%d N=%d exceeds runner bounds K<=%d N<=%d",
			k, n, r.cfg.MaxK, r.cfg.MaxN)
	}

	if parent := r.eng.TraceSpan(); parent != nil {
		msp := parent.StartChild("gemm.multiply")
		msp.SetAttr("m", int64(m))
		msp.SetAttr("n", int64(n))
		msp.SetAttr("k", int64(k))
		r.eng.SetTraceSpan(msp)
		defer func() {
			r.eng.SetTraceSpan(parent)
			msp.End()
		}()
	}

	if r.planner != nil {
		psp := r.eng.TraceSpan().StartChild("plan")
		mp := r.planner.GEMM(m, n, k, r.planOpts(false))
		r.curTasklets = mp.Tasklets
		r.curWidth = mp.DPUs
		r.lastPlan, r.hasPlan = mp, true
		psp.SetAttr("tasklets", int64(mp.Tasklets))
		psp.SetAttr("dpus", int64(mp.DPUs))
		psp.End()
	}

	c := make([]int16, m*n)
	rowBytes := (k*2 + 7) &^ 7
	cBytes := pad4(n) * 2
	bbuf := r.stageB(n, k, b)
	ent := r.takeResident(m, int64(rowBytes), a)
	aoff := r.aOff
	if ent != nil {
		aoff = ent.Abs()
	}
	r.encodeParams(n, k, 0, alpha, aoff)
	// Synchronous scatter pushes the full system width (stale tails on
	// partial waves, matching dpu_push_xfer); pipelined waves carry only
	// the wave's rows.
	width := r.sys.NumDPUs()
	if r.eng.Pipelined() && m < width {
		width = m
	}
	r.ensureMulStages(width, rowBytes, cBytes)

	w := &r.mws
	w.a, w.c = a, c
	w.m, w.n, w.k = m, n, k
	w.rowBytes = rowBytes
	w.ent = ent
	w.bcasts = append(w.bcasts[:0],
		exec.Broadcast{Ref: r.refB, Data: bbuf},
		exec.Broadcast{Ref: r.refParams, Data: r.paramsBuf[:]})
	if err := r.eng.Run(w, &st); err != nil {
		return nil, st, err
	}
	return c, st, nil
}

// pad4 rounds n up to a multiple of 4 (columns), keeping 2-byte element
// rows 8-byte aligned.
func pad4(n int) int {
	return (n + 3) &^ 3
}

//go:build !race

package gemm

// raceDetectorEnabled reports whether this test binary was built with
// -race, which perturbs testing.AllocsPerRun by an occasional
// detector-internal allocation.
const raceDetectorEnabled = false

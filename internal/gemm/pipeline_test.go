package gemm

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
)

// The pipelined (double-buffered, queue-fused) Multiply must be
// indistinguishable from the synchronous loop in everything but
// wall-clock: identical results and identical simulated-time statistics,
// including on partial final waves and on the naive kernel.

func pipelineProblem(m, n, k int) (a, b []int16) {
	a = make([]int16, m*k)
	b = make([]int16, k*n)
	for i := range a {
		a[i] = int16(i%13 - 6)
	}
	for i := range b {
		b[i] = int16(i%9 - 4)
	}
	return a, b
}

func runModes(t *testing.T, naive bool, opt dpu.OptLevel, m, n, k int) {
	t.Helper()
	a, b := pipelineProblem(m, n, k)
	run := func(mode host.PipelineMode) ([]int16, Stats) {
		sys, err := host.NewSystem(4, host.DefaultConfig(opt))
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		r, err := NewRunner(sys, RunnerConfig{
			MaxK: k, MaxN: n, Tasklets: 4, TileCols: 16, Naive: naive, Pipeline: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		c, st, err := r.Multiply(m, n, k, 3, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return c, st
	}
	cSync, stSync := run(host.PipelineOff)
	cPipe, stPipe := run(host.PipelineOn)
	for i := range cSync {
		if cSync[i] != cPipe[i] {
			t.Fatalf("element %d: sync %d, pipelined %d", i, cSync[i], cPipe[i])
		}
	}
	if stSync != stPipe {
		t.Errorf("stats diverge: sync %+v, pipelined %+v", stSync, stPipe)
	}
}

func TestMultiplyPipelinedMatchesSync(t *testing.T) {
	// 11 rows on 4 DPUs: two full waves plus a 3-row partial wave.
	runModes(t, false, dpu.O3, 11, 40, 24)
}

func TestMultiplyNaivePipelinedMatchesSync(t *testing.T) {
	runModes(t, true, dpu.O0, 9, 24, 16)
}

func TestMultiplyBatchPipelinedMatchesSync(t *testing.T) {
	const m, n, k = 6, 20, 12
	a, _ := pipelineProblem(m, 1, k)
	bs := make([][]int16, 3)
	for i := range bs {
		bs[i] = make([]int16, k*n)
		for j := range bs[i] {
			bs[i][j] = int16((i*31+j)%11 - 5)
		}
	}
	run := func(mode host.PipelineMode) ([][]int16, Stats) {
		sys, err := host.NewSystem(4, host.DefaultConfig(dpu.O3))
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 4, TileCols: 16, Pipeline: mode})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.EnableBatch(m); err != nil {
			t.Fatal(err)
		}
		cs, st, err := r.MultiplyBatch(m, n, k, 2, a, bs)
		if err != nil {
			t.Fatal(err)
		}
		return cs, st
	}
	csSync, stSync := run(host.PipelineOff)
	csPipe, stPipe := run(host.PipelineOn)
	for i := range csSync {
		for j := range csSync[i] {
			if csSync[i][j] != csPipe[i][j] {
				t.Fatalf("image %d element %d: sync %d, pipelined %d", i, j, csSync[i][j], csPipe[i][j])
			}
		}
	}
	if stSync != stPipe {
		t.Errorf("stats diverge: sync %+v, pipelined %+v", stSync, stPipe)
	}
}

// A multi-call sequence on one pipelined runner: later calls must not
// observe stale queue state from earlier ones.
func TestMultiplyPipelinedRepeatedCalls(t *testing.T) {
	sys, err := host.NewSystem(2, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const n, k = 16, 8
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 2, TileCols: 8, Pipeline: host.PipelineOn})
	if err != nil {
		t.Fatal(err)
	}
	for call := 0; call < 3; call++ {
		m := 3 + call*2
		a, b := pipelineProblem(m, n, k)
		got, _, err := r.Multiply(m, n, k, 1, a, b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Reference(m, n, k, 1, a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("call %d element %d: got %d want %d", call, i, got[i], want[i])
			}
		}
	}
}

package gemm

import (
	"math/rand"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
)

func newBatchRunner(t *testing.T, nDPU, maxM int, cfg RunnerConfig) *Runner {
	t.Helper()
	sys, err := host.NewSystem(nDPU, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableBatch(maxM); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEnableBatchValidation(t *testing.T) {
	sys, _ := host.NewSystem(1, host.DefaultConfig(dpu.O3))
	r, err := NewRunner(sys, RunnerConfig{MaxK: 8, MaxN: 8, Tasklets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableBatch(0); err == nil {
		t.Error("EnableBatch(0) accepted")
	}
	if err := r.EnableBatch(4); err != nil {
		t.Fatal(err)
	}
	if err := r.EnableBatch(4); err == nil {
		t.Error("double EnableBatch accepted")
	}
}

func TestMultiplyBatchRequiresEnable(t *testing.T) {
	sys, _ := host.NewSystem(1, host.DefaultConfig(dpu.O3))
	r, err := NewRunner(sys, RunnerConfig{MaxK: 8, MaxN: 8, Tasklets: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int16, 2*8)
	b := make([]int16, 8*8)
	if _, _, err := r.MultiplyBatch(2, 8, 8, 1, a, [][]int16{b}); err == nil {
		t.Error("MultiplyBatch without EnableBatch accepted")
	}
}

// TestBatchMatchesReference: the image-per-DPU mapping must produce the
// same bits as the host Algorithm 2 for every image in the batch.
func TestBatchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const m, n, k = 6, 70, 18
	r := newBatchRunner(t, 3, m, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 8, TileCols: 16})
	a := randMat(rng, m*k, 100)
	bs := make([][]int16, 3)
	for i := range bs {
		bs[i] = randMat(rng, k*n, 100)
	}
	got, st, err := r.MultiplyBatch(m, n, k, 1, a, bs)
	if err != nil {
		t.Fatal(err)
	}
	if st.DPUsUsed != 3 || st.Waves != 1 {
		t.Errorf("stats = %+v", st)
	}
	for i := range bs {
		want, err := Reference(m, n, k, 1, a, bs[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("image %d: C[%d] = %d, want %d", i, j, got[i][j], want[j])
			}
		}
	}
}

func TestBatchValidation(t *testing.T) {
	r := newBatchRunner(t, 2, 4, RunnerConfig{MaxK: 8, MaxN: 8, Tasklets: 2})
	a := make([]int16, 4*8)
	b := make([]int16, 8*8)
	if _, _, err := r.MultiplyBatch(5, 8, 8, 1, make([]int16, 5*8), [][]int16{b}); err == nil {
		t.Error("M over batch bound accepted")
	}
	if _, _, err := r.MultiplyBatch(4, 8, 8, 1, a, [][]int16{b, b, b}); err == nil {
		t.Error("more images than DPUs accepted")
	}
	if _, _, err := r.MultiplyBatch(4, 8, 8, 1, a, [][]int16{b, b[:10]}); err == nil {
		t.Error("short B accepted")
	}
	if _, _, err := r.MultiplyBatch(4, 8, 8, 1, a, nil); err == nil {
		t.Error("empty batch accepted")
	}
}

// TestBatchVersusRowMappingTradeoff answers the §6.1 future-work
// question: with enough images in flight, image-per-DPU has higher
// throughput (it wastes no DPUs when M is small), while row-per-DPU
// retains the lower single-image latency.
func TestBatchVersusRowMappingTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const (
		m, n, k = 4, 256, 32 // few filters: row mapping uses only 4 DPUs
		nDPU    = 8
		batch   = 8
	)
	a := randMat(rng, m*k, 100)
	bs := make([][]int16, batch)
	for i := range bs {
		bs[i] = randMat(rng, k*n, 100)
	}

	// Row-per-DPU: images processed one after another.
	sysRow, _ := host.NewSystem(nDPU, host.DefaultConfig(dpu.O3))
	rowRunner, err := NewRunner(sysRow, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 8, TileCols: 32})
	if err != nil {
		t.Fatal(err)
	}
	var rowCycles uint64
	var rowSingle uint64
	for i := range bs {
		_, st, err := rowRunner.Multiply(m, n, k, 1, a, bs[i])
		if err != nil {
			t.Fatal(err)
		}
		rowCycles += st.Cycles
		rowSingle = st.Cycles
	}

	// Image-per-DPU: the whole batch in one launch.
	batchRunner := newBatchRunner(t, nDPU, m, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 8, TileCols: 32})
	_, stBatch, err := batchRunner.MultiplyBatch(m, n, k, 1, a, bs)
	if err != nil {
		t.Fatal(err)
	}

	if stBatch.Cycles >= rowCycles {
		t.Errorf("batch mapping (%d cycles) should beat serial row mapping (%d) for %d images on %d DPUs",
			stBatch.Cycles, rowCycles, batch, nDPU)
	}
	if rowSingle >= stBatch.Cycles {
		t.Errorf("row mapping should retain the single-image latency edge: single %d vs batch %d",
			rowSingle, stBatch.Cycles)
	}
	t.Logf("8-image batch: row-per-DPU %d cycles total (%d per image), image-per-DPU %d cycles total (%.1fx throughput)",
		rowCycles, rowSingle, stBatch.Cycles, float64(rowCycles)/float64(stBatch.Cycles))
}

package gemm

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/metrics"
)

// runWithTelemetry runs one multi-wave Multiply on a fresh system,
// optionally with a registry wired, and returns the product and stats.
func runWithTelemetry(t testing.TB, reg *metrics.Registry, plan *dpu.FaultPlan) ([]int16, Stats) {
	const m, n, k = 24, 40, 18
	a, b := pipelineProblem(m, n, k)
	sys, err := host.NewSystem(8, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	if reg != nil {
		sys.EnableMetrics(reg)
	}
	if plan != nil {
		sys.InjectFaults(*plan)
	}
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 8, TileCols: 16})
	if err != nil {
		t.Fatal(err)
	}
	c, st, err := r.Multiply(m, n, k, 3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	return c, st
}

// TestMetricsBitIdentity enforces the telemetry contract: wiring a
// registry must not change a single output value, simulated cycle, or
// retry count — with and without fault injection.
func TestMetricsBitIdentity(t *testing.T) {
	cases := []struct {
		name string
		plan *dpu.FaultPlan
	}{
		{"clean", nil},
		{"dead", &deadPlan},
		{"transient", &transientPlan},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cOff, stOff := runWithTelemetry(t, nil, tc.plan)
			reg := metrics.NewRegistry()
			cOn, stOn := runWithTelemetry(t, reg, tc.plan)
			if len(cOff) != len(cOn) {
				t.Fatalf("output lengths differ: %d vs %d", len(cOff), len(cOn))
			}
			for i := range cOff {
				if cOff[i] != cOn[i] {
					t.Fatalf("output[%d] = %d with telemetry, %d without", i, cOn[i], cOff[i])
				}
			}
			if stOff != stOn {
				t.Errorf("stats diverge: off=%+v on=%+v", stOff, stOn)
			}
			// The registry must actually have observed the run.
			s := reg.Snapshot()
			var cycles, waves uint64
			for _, c := range s.Counters {
				switch c.Name {
				case "pim_dpu_cycles_total":
					cycles += c.Value
				case "pim_exec_waves_total":
					waves += c.Value
				}
			}
			if cycles == 0 || waves == 0 {
				t.Errorf("registry empty after instrumented run: cycles=%d waves=%d", cycles, waves)
			}
		})
	}
}

// TestMetricsAccountingConsistency cross-checks the instruments against
// the Stats the runner already reports.
func TestMetricsAccountingConsistency(t *testing.T) {
	reg := metrics.NewRegistry()
	_, st := runWithTelemetry(t, reg, nil)
	s := reg.Snapshot()
	get := func(name string) uint64 {
		var v uint64
		for _, c := range s.Counters {
			if c.Name == name {
				v += c.Value
			}
		}
		return v
	}
	if got := get("pim_exec_cycles_total"); got != st.Cycles {
		t.Errorf("pim_exec_cycles_total = %d, Stats.Cycles = %d", got, st.Cycles)
	}
	if got := get("pim_exec_waves_total"); got != uint64(st.Waves) {
		t.Errorf("pim_exec_waves_total = %d, Stats.Waves = %d", got, st.Waves)
	}
	if got := get("pim_exec_retries_total"); got != uint64(st.Retries) {
		t.Errorf("pim_exec_retries_total = %d, Stats.Retries = %d", got, st.Retries)
	}
	if get("pim_host_xfer_bytes_total") == 0 {
		t.Error("no transfer bytes metered")
	}
	if get("pim_dpu_launches_total") == 0 {
		t.Error("no launches metered")
	}
}

// TestMetricsZeroExtraAllocs pins that telemetry adds no allocations to
// the Multiply hot path: a fully instrumented run allocates exactly
// what an uninstrumented run does (the result slice and launch
// bookkeeping), enabled or disabled.
func TestMetricsZeroExtraAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race detector perturbs AllocsPerRun by detector-internal allocations")
	}
	const m, n, k = 2, 96, 64
	a, b := pipelineProblem(m, n, k)
	mk := func(reg *metrics.Registry) *Runner {
		sys, err := host.NewSystem(2, host.DefaultConfig(dpu.O3))
		if err != nil {
			t.Fatal(err)
		}
		if reg != nil {
			sys.EnableMetrics(reg)
		}
		r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 4, TileCols: 16})
		if err != nil {
			t.Fatal(err)
		}
		// Warm reusable buffers so both measurements are steady-state.
		if _, _, err := r.Multiply(m, n, k, 1, a, b); err != nil {
			t.Fatal(err)
		}
		return r
	}
	rOff := mk(nil)
	rOn := mk(metrics.NewRegistry())
	run := func(r *Runner) float64 {
		return testing.AllocsPerRun(50, func() {
			if _, _, err := r.Multiply(m, n, k, 1, a, b); err != nil {
				t.Fatal(err)
			}
		})
	}
	off, on := run(rOff), run(rOn)
	if on > off {
		t.Errorf("telemetry added allocations: %.1f enabled vs %.1f disabled per Multiply", on, off)
	}
}

// BenchmarkMetricsDisabledOverhead is the bench.sh allocation gate for
// the disabled path: the gemm hot path with no registry wired must stay
// allocation-free in steady state and within noise of the
// pre-telemetry baseline.
func BenchmarkMetricsDisabledOverhead(b *testing.B) {
	const m, n, k = 2, 1024, 64
	am, bm := benchProblem(m, n, k)
	sys, _ := host.NewSystem(2, host.DefaultConfig(dpu.O3))
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 11, TileCols: 256})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the runner's reusable buffers out of the measurement.
	if _, _, err := r.Multiply(m, n, k, 1, am, bm); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Multiply(m, n, k, 1, am, bm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricsEnabledOverhead measures the same hot path with a
// live registry, for the ns/op delta report.
func BenchmarkMetricsEnabledOverhead(b *testing.B) {
	const m, n, k = 2, 1024, 64
	am, bm := benchProblem(m, n, k)
	sys, _ := host.NewSystem(2, host.DefaultConfig(dpu.O3))
	sys.EnableMetrics(metrics.NewRegistry())
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 11, TileCols: 256})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := r.Multiply(m, n, k, 1, am, bm); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Multiply(m, n, k, 1, am, bm); err != nil {
			b.Fatal(err)
		}
	}
}

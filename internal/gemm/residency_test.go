package gemm

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/exec"
	"pimdnn/internal/host"
	"pimdnn/internal/metrics"
)

// Weight-residency tests: a runner joined to a WeightCache must produce
// the same bits as the re-scatter path on every call — clean, with 25%
// of the array dead, and with a whole rank killed — while the warm path
// moves zero weight bytes.

// newResidentRunner builds an nDPU system with metrics wired, a weight
// cache of capBytes, and a runner joined to it under model name.
func newResidentRunner(t *testing.T, nDPU int, topo host.Topology, cfg RunnerConfig, capBytes int64, model string) (*Runner, *exec.WeightCache, *metrics.Registry) {
	t.Helper()
	hcfg := host.DefaultConfig(dpu.O3)
	hcfg.Topology = topo
	sys, err := host.NewSystem(nDPU, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	reg := metrics.NewRegistry()
	sys.EnableMetrics(reg)
	cache, err := exec.NewWeightCache(sys, capBytes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.EnableResidency(cache, model)
	return r, cache, reg
}

// killDPUs arms a certain-death injector on exactly the given DPUs;
// each dies at its first kernel launch.
func killDPUs(sys *host.System, ids []int) {
	plan := dpu.FaultPlan{Seed: 7, DeadFrac: 1}
	for _, d := range ids {
		sys.DPU(d).InjectFaults(plan.NewInjector(d))
	}
}

// TestResidencyBitIdentity: repeated resident Multiplies must stay
// bit-identical to the host reference and to a twin runner that
// re-scatters weights every call — on a clean array, with the deadPlan
// killing 25% of the DPUs mid-run, and with one whole rank killed.
func TestResidencyBitIdentity(t *testing.T) {
	const m, n, k = 8, 40, 18
	a, b := pipelineProblem(m, n, k)
	want, err := Reference(m, n, k, 3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []struct {
		name     string
		topo     host.Topology
		arm      func(sys *host.System)
		wantRetr bool
	}{
		{name: "clean", arm: func(*host.System) {}},
		{
			// deadPlan dooms DPUs 1 and 6 of 8 (25%) after one launch.
			name: "quarter-dead",
			arm:  func(sys *host.System) { sys.InjectFaults(deadPlan) },
		},
		{
			// Two ranks of four; rank 0 dies whole at its first launch,
			// so every one of its resident rows must remap to rank 1.
			name: "rank-kill",
			topo: host.Topology{DPUsPerRank: 4},
			arm:  func(sys *host.System) { killDPUs(sys, []int{0, 1, 2, 3}) },
		},
	}
	modes := []struct {
		name string
		mode host.PipelineMode
	}{
		{"sync", host.PipelineOff},
		{"pipelined", host.PipelineOn},
	}
	for _, sc := range scenarios {
		for _, mode := range modes {
			t.Run(sc.name+"/"+mode.name, func(t *testing.T) {
				cfg := RunnerConfig{MaxK: k, MaxN: n, Tasklets: 4, TileCols: 16, Pipeline: mode.mode}
				res, _, _ := newResidentRunner(t, 8, sc.topo, cfg, 64, "bitid")
				sc.arm(res.System())

				// Twin: same faults, no residency — the re-scatter baseline.
				hcfg := host.DefaultConfig(dpu.O3)
				hcfg.Topology = sc.topo
				twinSys, err := host.NewSystem(8, hcfg)
				if err != nil {
					t.Fatal(err)
				}
				defer twinSys.Close()
				twin, err := NewRunner(twinSys, cfg)
				if err != nil {
					t.Fatal(err)
				}
				sc.arm(twinSys)

				for call := 0; call < 3; call++ {
					res.SetWeightLayer(0)
					got, _, err := res.Multiply(m, n, k, 3, a, b)
					if err != nil {
						t.Fatalf("call %d: resident Multiply: %v", call, err)
					}
					ref, _, err := twin.Multiply(m, n, k, 3, a, b)
					if err != nil {
						t.Fatalf("call %d: twin Multiply: %v", call, err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("call %d element %d: resident %d, want %d", call, i, got[i], want[i])
						}
						if ref[i] != want[i] {
							t.Fatalf("call %d element %d: twin %d, want %d", call, i, ref[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestResidencyWarmSkipsWeightTransfer pins the acceptance criterion:
// after the first scatter, a repeated forward moves zero weight bytes —
// the cache counter stops advancing and the host transfer ledger shows
// the warm calls strictly cheaper than the cold one and identical to
// each other.
func TestResidencyWarmSkipsWeightTransfer(t *testing.T) {
	const m, n, k = 8, 40, 18
	a, b := pipelineProblem(m, n, k)
	want, err := Reference(m, n, k, 3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		mode host.PipelineMode
	}{{"sync", host.PipelineOff}, {"pipelined", host.PipelineOn}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := RunnerConfig{MaxK: k, MaxN: n, Tasklets: 4, TileCols: 16, Pipeline: mode.mode}
			r, _, reg := newResidentRunner(t, 8, host.Topology{}, cfg, 64, "warm")
			delivered := reg.Counter("pim_wcache_delivered_bytes_total")
			hits := reg.Counter("pim_wcache_hits_total")

			xferAt := func() uint64 { return r.System().TransferStats().Bytes }
			callBytes := make([]uint64, 3)
			for call := 0; call < 3; call++ {
				before := xferAt()
				r.SetWeightLayer(0)
				got, _, err := r.Multiply(m, n, k, 3, a, b)
				if err != nil {
					t.Fatalf("call %d: %v", call, err)
				}
				callBytes[call] = xferAt() - before
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("call %d element %d: got %d, want %d", call, i, got[i], want[i])
					}
				}
				if call == 0 {
					if delivered.Value() == 0 {
						t.Fatal("cold call delivered zero weight bytes")
					}
					coldDelivered := delivered.Value()
					_ = coldDelivered
				}
			}
			coldDelivered := delivered.Value()
			// Warm calls move zero weight bytes: the delivery counter is
			// frozen at the cold call's total and both warm calls hit.
			rowBytes := uint64((k*2 + 7) &^ 7)
			if coldDelivered != rowBytes*8 {
				t.Errorf("delivered %d weight bytes, want %d (one row per DPU, once)",
					coldDelivered, rowBytes*8)
			}
			if hits.Value() != 2 {
				t.Errorf("hits = %d, want 2 (both warm calls)", hits.Value())
			}
			if callBytes[1] != callBytes[2] {
				t.Errorf("warm calls moved different byte counts: %d vs %d", callBytes[1], callBytes[2])
			}
			if callBytes[0] != callBytes[1]+coldDelivered {
				t.Errorf("cold call moved %d bytes, want warm %d + weights %d",
					callBytes[0], callBytes[1], coldDelivered)
			}
		})
	}
}

// TestResidencyRemapNeverServesStale is the regression for the core
// hazard: a shard re-dispatched onto a surviving DPU overwrites that
// DPU's resident arena slot with the retried row, so without per-DPU
// invalidation the *next* call would compute with the wrong row. The
// deadPlan kills DPUs 1 and 6 after one launch; calls after the deaths
// must re-deliver the clobbered rows and stay bit-identical.
func TestResidencyRemapNeverServesStale(t *testing.T) {
	const m, n, k = 8, 40, 18
	a, b := pipelineProblem(m, n, k)
	want, err := Reference(m, n, k, 3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		mode host.PipelineMode
	}{{"sync", host.PipelineOff}, {"pipelined", host.PipelineOn}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := RunnerConfig{MaxK: k, MaxN: n, Tasklets: 4, TileCols: 16, Pipeline: mode.mode}
			r, _, reg := newResidentRunner(t, 8, host.Topology{}, cfg, 64, "remap")
			r.System().InjectFaults(deadPlan)
			retries := 0
			for call := 0; call < 4; call++ {
				r.SetWeightLayer(0)
				got, st, err := r.Multiply(m, n, k, 3, a, b)
				if err != nil {
					t.Fatalf("call %d: %v", call, err)
				}
				retries += st.Retries
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("call %d element %d: got %d, want %d — replacement DPU served stale weights",
							call, i, got[i], want[i])
					}
				}
			}
			if retries == 0 {
				t.Fatal("no re-dispatches; the deadPlan should have killed DPUs mid-run")
			}
			// The clobbered survivors were caught up, not silently trusted.
			if reg.Counter("pim_wcache_redeliveries_total").Value() == 0 {
				t.Error("no per-DPU redeliveries recorded after remaps")
			}
		})
	}
}

// TestResidencyLRUBetweenModels: one runner re-bound between two model
// names in a shared cache (the serving pattern) co-resides both when
// the budget fits, and thrashes correctly (evict + re-deliver, still
// bit-identical) when it fits only one.
func TestResidencyLRUBetweenModels(t *testing.T) {
	const m, n, k = 8, 40, 18
	a, b := pipelineProblem(m, n, k)
	a2 := make([]int16, len(a))
	for i := range a2 {
		a2[i] = int16((i*5)%13 - 6)
	}
	want1, err := Reference(m, n, k, 3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := Reference(m, n, k, 3, a2, b)
	if err != nil {
		t.Fatal(err)
	}
	// rowBytes = 40, so 64 fits exactly one model's entry and 128 both.
	for _, tc := range []struct {
		name          string
		capBytes      int64
		wantEvictions bool
	}{
		{"fits-one", 64, true},
		{"fits-both", 128, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := RunnerConfig{MaxK: k, MaxN: n, Tasklets: 4, TileCols: 16}
			r, cache, reg := newResidentRunner(t, 8, host.Topology{}, cfg, tc.capBytes, "alex")
			for call := 0; call < 3; call++ {
				r.EnableResidency(cache, "alex")
				r.SetWeightLayer(0)
				got1, _, err := r.Multiply(m, n, k, 3, a, b)
				if err != nil {
					t.Fatalf("call %d model alex: %v", call, err)
				}
				r.EnableResidency(cache, "res")
				r.SetWeightLayer(0)
				got2, _, err := r.Multiply(m, n, k, 3, a2, b)
				if err != nil {
					t.Fatalf("call %d model res: %v", call, err)
				}
				for i := range want1 {
					if got1[i] != want1[i] {
						t.Fatalf("call %d model alex element %d: got %d, want %d", call, i, got1[i], want1[i])
					}
					if got2[i] != want2[i] {
						t.Fatalf("call %d model res element %d: got %d, want %d", call, i, got2[i], want2[i])
					}
				}
			}
			evictions := reg.Counter("pim_wcache_evictions_total").Value()
			if tc.wantEvictions && evictions == 0 {
				t.Error("budget fits one model but nothing was evicted")
			}
			if !tc.wantEvictions && evictions != 0 {
				t.Errorf("budget fits both models but %d evictions occurred", evictions)
			}
			if !tc.wantEvictions {
				// Co-residency: warm calls from both models skip delivery.
				if got := reg.Counter("pim_wcache_hits_total").Value(); got != 4 {
					t.Errorf("hits = %d, want 4 (two warm calls per model)", got)
				}
			}
		})
	}
}

// TestBatchResidency: the image-per-DPU mapping broadcasts its weight
// matrix; resident batch forwards must skip the re-broadcast when warm,
// survive a mid-batch DPU death bit-identically, and keep the hash
// guard honest when a layer key is reused with different weights.
func TestBatchResidency(t *testing.T) {
	const m, n, k = 6, 70, 18
	const nImg = 4
	a := make([]int16, m*k)
	for i := range a {
		a[i] = int16(i%11 - 5)
	}
	bs := make([][]int16, nImg)
	for img := range bs {
		bs[img] = make([]int16, k*n)
		for i := range bs[img] {
			bs[img][i] = int16((i+img*7)%9 - 4)
		}
	}
	want := make([][]int16, nImg)
	for img := range bs {
		var err error
		want[img], err = Reference(m, n, k, 1, a, bs[img])
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		name string
		mode host.PipelineMode
		arm  bool
	}{
		{"sync", host.PipelineOff, false},
		{"pipelined", host.PipelineOn, false},
		{"sync-dead", host.PipelineOff, true},
		{"pipelined-dead", host.PipelineOn, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := RunnerConfig{MaxK: k, MaxN: n, Tasklets: 8, TileCols: 16, Pipeline: tc.mode}
			r, _, reg := newResidentRunner(t, 4, host.Topology{}, cfg, 256, "yolo")
			if err := r.EnableBatch(m); err != nil {
				t.Fatal(err)
			}
			if tc.arm {
				// Dooms DPU 1 of 4 at its first batch launch.
				r.System().InjectFaults(dpu.FaultPlan{Seed: 1, DeadFrac: 0.3, DeadAfterLaunches: 0})
			}
			delivered := reg.Counter("pim_wcache_delivered_bytes_total")
			check := func(call int) {
				t.Helper()
				r.SetWeightLayer(0)
				outs := make([][]int16, nImg)
				_, err := r.MultiplyBatchEach(m, n, k, 1, a, bs, func(i int, c []int16) {
					outs[i] = append([]int16(nil), c...)
				})
				if err != nil {
					t.Fatalf("call %d: %v", call, err)
				}
				for img := range want {
					for i := range want[img] {
						if outs[img][i] != want[img][i] {
							t.Fatalf("call %d image %d element %d: got %d, want %d",
								call, img, i, outs[img][i], want[img][i])
						}
					}
				}
			}
			check(0)
			afterCold := delivered.Value()
			if afterCold == 0 {
				t.Fatal("cold batch call delivered zero weight bytes")
			}
			check(1)
			if !tc.arm && delivered.Value() != afterCold {
				t.Errorf("warm batch call delivered %d extra weight bytes",
					delivered.Value()-afterCold)
			}
			// Same layer key, retrained weights: the hash guard must force
			// a re-delivery, and results must track the new weights.
			a2 := make([]int16, len(a))
			for i := range a2 {
				a2[i] = int16((i*3)%7 - 3)
			}
			want2, err := Reference(m, n, k, 1, a2, bs[0])
			if err != nil {
				t.Fatal(err)
			}
			beforeSwap := delivered.Value()
			r.SetWeightLayer(0)
			outs := make([][]int16, nImg)
			if _, err := r.MultiplyBatchEach(m, n, k, 1, a2, bs, func(i int, c []int16) {
				outs[i] = append([]int16(nil), c...)
			}); err != nil {
				t.Fatal(err)
			}
			for i := range want2 {
				if outs[0][i] != want2[i] {
					t.Fatalf("post-swap element %d: got %d, want %d — hash guard missed the retrain",
						i, outs[0][i], want2[i])
				}
			}
			if delivered.Value() == beforeSwap {
				t.Error("weight swap under the same key delivered nothing")
			}
		})
	}
}

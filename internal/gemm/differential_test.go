package gemm

import (
	"fmt"
	"reflect"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
)

// Differential harness for block-level cycle accounting: every GEMM
// kernel variant (tiled, naive, batch) must be bit-identical between the
// legacy per-operation charging path (RunnerConfig.LegacyCharging) and
// the block-charged fast path — same outputs, same simulated cycles,
// same per-DPU clocks, same subroutine profiles.

// diffRun is one side's observable state after a GEMM workload.
type diffRun struct {
	out    []int16
	outs   [][]int16
	st     Stats
	cycles []uint64 // cumulative per-DPU clock
	prof   map[string]uint64
}

func runDifferential(t *testing.T, opt dpu.OptLevel, legacy bool,
	workload func(t *testing.T, r *Runner) ([]int16, [][]int16, Stats), cfgMod func(*RunnerConfig)) diffRun {
	t.Helper()
	const m, n, k = 24, 40, 18
	sys, err := host.NewSystem(8, host.DefaultConfig(opt))
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunnerConfig{MaxK: k, MaxN: n, Tasklets: 8, TileCols: 16, LegacyCharging: legacy}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	r, err := NewRunner(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, outs, st := workload(t, r)
	cyc := make([]uint64, sys.NumDPUs())
	for i := range cyc {
		cyc[i] = sys.DPU(i).TotalCycles()
	}
	return diffRun{out: out, outs: outs, st: st, cycles: cyc, prof: sys.Profile().Snapshot()}
}

func compareDiffRuns(t *testing.T, leg, blk diffRun) {
	t.Helper()
	if !reflect.DeepEqual(leg.out, blk.out) {
		t.Error("outputs diverge between legacy and block charging")
	}
	if !reflect.DeepEqual(leg.outs, blk.outs) {
		t.Error("batch outputs diverge between legacy and block charging")
	}
	if leg.st != blk.st {
		t.Errorf("stats diverge:\nlegacy: %+v\nblock:  %+v", leg.st, blk.st)
	}
	if !reflect.DeepEqual(leg.cycles, blk.cycles) {
		t.Errorf("per-DPU cycle counts diverge:\nlegacy: %v\nblock:  %v", leg.cycles, blk.cycles)
	}
	if !reflect.DeepEqual(leg.prof, blk.prof) {
		t.Errorf("subroutine profiles diverge:\nlegacy: %v\nblock:  %v", leg.prof, blk.prof)
	}
}

// TestGEMMBlockChargingParity runs each kernel variant with legacy and
// block charging on identically configured systems and requires every
// observable — products, engine stats, per-DPU clocks, and profiles —
// to match exactly across optimization levels.
func TestGEMMBlockChargingParity(t *testing.T) {
	const m, n, k = 24, 40, 18
	a, b := pipelineProblem(m, n, k)

	tiled := func(t *testing.T, r *Runner) ([]int16, [][]int16, Stats) {
		c, st, err := r.Multiply(m, n, k, 3, a, b)
		if err != nil {
			t.Fatal(err)
		}
		// A second call exercises the warm-buffer path too.
		c2, st2, err := r.Multiply(m, n, k, 3, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(c, c2) || st.Cycles != st2.Cycles {
			t.Fatal("warm-path Multiply disagrees with cold path")
		}
		return c, nil, st
	}
	batch := func(t *testing.T, r *Runner) ([]int16, [][]int16, Stats) {
		if err := r.EnableBatch(m); err != nil {
			t.Fatal(err)
		}
		bs := make([][]int16, 5) // partial batch: 5 images on 8 DPUs
		for i := range bs {
			img := make([]int16, k*n)
			for j := range img {
				img[j] = int16((i*7 + j) % 11)
			}
			bs[i] = img
		}
		outs, st, err := r.MultiplyBatch(m, n, k, 2, a, bs)
		if err != nil {
			t.Fatal(err)
		}
		return nil, outs, st
	}

	cases := []struct {
		name     string
		cfgMod   func(*RunnerConfig)
		workload func(t *testing.T, r *Runner) ([]int16, [][]int16, Stats)
	}{
		{"tiled", nil, tiled},
		{"naive", func(c *RunnerConfig) { c.Naive = true }, tiled},
		{"batch", nil, batch},
	}
	for _, opt := range []dpu.OptLevel{dpu.O0, dpu.O3} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/O%d", tc.name, int(opt)), func(t *testing.T) {
				leg := runDifferential(t, opt, true, tc.workload, tc.cfgMod)
				blk := runDifferential(t, opt, false, tc.workload, tc.cfgMod)
				compareDiffRuns(t, leg, blk)
			})
		}
	}
}

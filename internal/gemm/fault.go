package gemm

import (
	"errors"
	"fmt"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
)

// Retry-and-remap: the runner-level recovery policy over the host's
// best-effort partial-failure contract. Per-DPU faults reported by a
// transfer, launch, or wave mark the affected rows/images failed; each
// failed shard is then re-dispatched onto a surviving DPU (scatter its
// input, single-DPU launch, gather its output), producing results
// bit-identical to a fault-free run — the kernels are deterministic
// functions of their input data. DPUs that die (dpu.ErrDPUDead) or
// persistently miss a broadcast are marked down and excluded from
// re-dispatch targets; their wave slots are always re-dispatched, since
// a DPU holding a stale B matrix would otherwise "succeed" silently.
//
// Accounting stays honest rather than fault-free-identical: retried
// work charges the cycles and transfer bytes it actually consumes, so
// Stats and the system clocks reflect the real (degraded) run. With no
// faults injected, none of these paths allocate or charge anything and
// every simulated quantity is bit-identical to the pre-fault-injection
// runtime.

// maxRedispatch bounds how many targets one shard (or one broadcast
// redelivery) tries before the fault is reported as fatal.
const maxRedispatch = 8

// ensureFaultState sizes the runner's fault-tracking slices.
func (r *Runner) ensureFaultState() {
	if r.down == nil {
		r.down = make([]bool, r.sys.NumDPUs())
		r.failSet = make([]bool, r.sys.NumDPUs())
	}
}

// markDown removes DPU i from the re-dispatch target pool for the rest
// of the runner's life.
func (r *Runner) markDown(i int) {
	if !r.down[i] {
		r.down[i] = true
		r.nDown++
	}
}

// nextTarget picks the next usable re-dispatch target, round-robin so
// retried shards spread across the survivors. Returns -1 when no DPU
// survives.
func (r *Runner) nextTarget() int {
	nd := r.sys.NumDPUs()
	if r.nDown >= nd {
		return -1
	}
	for t := 0; t < nd; t++ {
		i := (r.retryCur + t) % nd
		if !r.down[i] {
			r.retryCur = (i + 1) % nd
			return i
		}
	}
	return -1
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// mergeFailed folds a best-effort operation's *FaultReport into the
// wave's failed-shard set (indices beyond the wave width are ignored:
// a scatter fault on a DPU that is not launched this wave is harmless).
// DPUs that died are excluded from future re-dispatch. A non-report
// error is returned as fatal.
func (r *Runner) mergeFailed(failed []bool, err error) error {
	if err == nil {
		return nil
	}
	rep, ok := host.AsFaultReport(err)
	if !ok {
		return err
	}
	for _, f := range rep.Faults {
		if errors.Is(f.Err, dpu.ErrDPUDead) {
			r.markDown(f.DPU)
		}
		if f.DPU < len(failed) {
			failed[f.DPU] = true
		}
	}
	return nil
}

// redeliver retries a broadcast payload on one DPU that missed it. In
// pipelined mode the redelivery goes through the command queue, keeping
// it serialized against other runners sharing the System.
func (r *Runner) redeliver(i int, ref host.SymbolRef, data []byte) bool {
	for a := 0; a < maxRedispatch; a++ {
		var err error
		if r.pipe {
			err = r.sys.EnqueueCopyToDPU(i, ref, 0, data).Wait()
		} else {
			err = r.sys.CopyToDPURef(i, ref, 0, data)
		}
		if err == nil {
			return true
		}
		if errors.Is(err, dpu.ErrDPUDead) {
			return false
		}
		if _, ok := host.AsFaultReport(err); !ok {
			return false
		}
	}
	return false
}

// handleBroadcast completes a best-effort broadcast: DPUs named in the
// report get the payload redelivered; those that cannot be reached are
// marked down, so their stale copy never contributes results. A
// non-report error is fatal.
func (r *Runner) handleBroadcast(err error, ref host.SymbolRef, data []byte) error {
	if err == nil {
		return nil
	}
	rep, ok := host.AsFaultReport(err)
	if !ok {
		return err
	}
	for _, f := range rep.Faults {
		if r.down[f.DPU] {
			continue
		}
		if !r.redeliver(f.DPU, ref, data) {
			r.markDown(f.DPU)
		}
	}
	return nil
}

// redispatch re-runs one failed shard on a surviving DPU: push its
// input, launch the kernel on that DPU alone, and gather its output.
// Used for both mappings — a row shard (in = A row, out = C row) and an
// image shard (in = B matrix, out = full C). The retry's cycles are
// added to st, so the stats reflect the degraded run's real cost. In
// pipelined mode the three steps are queued commands, serialized with
// any waves other runners (or this one) already enqueued.
func (r *Runner) redispatch(inRef host.SymbolRef, in []byte, outRef host.SymbolRef, out []byte, kernel dpu.KernelFunc, st *Stats) error {
	for a := 0; a < maxRedispatch; a++ {
		t := r.nextTarget()
		if t < 0 {
			return fmt.Errorf("gemm: no surviving DPU to re-dispatch onto")
		}
		var ls host.LaunchStats
		var err error
		if r.pipe {
			p1 := r.sys.EnqueueCopyToDPU(t, inRef, 0, in)
			p2 := r.sys.EnqueueLaunchDPU(t, r.cfg.Tasklets, kernel, &ls)
			p3 := r.sys.EnqueueCopyFrom(t, outRef, 0, out)
			err = firstErr(p1.Wait(), p2.Wait(), p3.Wait())
		} else {
			err = r.sys.CopyToDPURef(t, inRef, 0, in)
			if err == nil {
				ls, err = r.sys.LaunchDPU(t, r.cfg.Tasklets, kernel)
			}
			if err == nil {
				err = r.sys.CopyFromDPURefInto(t, outRef, 0, out)
			}
		}
		if err == nil {
			st.Retries++
			st.Cycles += ls.Cycles
			st.Seconds += ls.Seconds
			return nil
		}
		if errors.Is(err, dpu.ErrDPUDead) {
			r.markDown(t)
			continue
		}
		if _, ok := host.AsFaultReport(err); !ok {
			return err
		}
		// Transient fault: try again, possibly on another target.
	}
	return fmt.Errorf("gemm: shard re-dispatch failed %d times", maxRedispatch)
}

package gemm

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
)

// The GEMM kernels used to allocate a fresh B chunk per k-iteration per
// tile (plus per-launch A/APART/ctmp/out slices), which put the Go
// garbage collector in the simulator's inner loop. With the pooled
// per-tasklet scratch, a steady-state Multiply allocates only the result
// slice and the per-launch stats the host API returns — a small constant
// independent of K, N, and the tile count. The generous bound below
// fails loudly if per-iteration allocation ever returns (the pre-rework
// kernel allocated hundreds per call on this problem size).
func TestMultiplySteadyStateAllocBound(t *testing.T) {
	sys, err := host.NewSystem(2, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const m, n, k = 2, 96, 64
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 4, TileCols: 16})
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int16, m*k)
	b := make([]int16, k*n)
	for i := range a {
		a[i] = int16(i%7 - 3)
	}
	for i := range b {
		b[i] = int16(i%5 - 2)
	}
	// 6 tiles x 64 k-iterations: any per-inner-iteration allocation
	// shows up as hundreds of allocs per run.
	avg := testing.AllocsPerRun(50, func() {
		if _, _, err := r.Multiply(m, n, k, 1, a, b); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 48 {
		t.Errorf("Multiply steady state allocates %.1f per call, want <= 48 (launch bookkeeping + result only)", avg)
	}
}

// The naive (thesis-faithful) kernel shares the same scratch pool.
func TestMultiplyNaiveSteadyStateAllocBound(t *testing.T) {
	sys, err := host.NewSystem(2, host.DefaultConfig(dpu.O0))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const m, n, k = 2, 96, 64
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 4, Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int16, m*k)
	b := make([]int16, k*n)
	for i := range a {
		a[i] = int16(i%7 - 3)
	}
	for i := range b {
		b[i] = int16(i%5 - 2)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, _, err := r.Multiply(m, n, k, 1, a, b); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 48 {
		t.Errorf("naive Multiply steady state allocates %.1f per call, want <= 48", avg)
	}
}

package gemm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
)

// TestPropertyDPUEqualsReference: for random shapes and operands, every
// kernel variant agrees with the host Algorithm 2 bit for bit.
func TestPropertyDPUEqualsReference(t *testing.T) {
	type shapeSeed struct {
		M, N, K uint8
		Seed    int64
	}
	run := func(naive bool) func(shapeSeed) bool {
		return func(ss shapeSeed) bool {
			m := int(ss.M%4) + 1
			n := int(ss.N%96) + 1
			k := int(ss.K%24) + 1
			rng := rand.New(rand.NewSource(ss.Seed))
			a := randMat(rng, m*k, 3000)
			b := randMat(rng, k*n, 3000)
			want, err := Reference(m, n, k, 1, a, b)
			if err != nil {
				return false
			}
			sys, err := host.NewSystem(2, host.DefaultConfig(dpu.O3))
			if err != nil {
				return false
			}
			r, err := NewRunner(sys, RunnerConfig{
				MaxK: 24, MaxN: 96, Tasklets: 1 + int(ss.Seed%8&7), TileCols: 16, Naive: naive,
			})
			if err != nil {
				return false
			}
			got, _, err := r.Multiply(m, n, k, 1, a, b)
			if err != nil {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}
	}
	if err := quick.Check(run(false), &quick.Config{MaxCount: 25}); err != nil {
		t.Errorf("tiled: %v", err)
	}
	if err := quick.Check(run(true), &quick.Config{MaxCount: 25}); err != nil {
		t.Errorf("naive: %v", err)
	}
}

// TestPropertyAlphaScaling: for operands small enough to avoid the /32
// truncation interacting with sign, alpha=2 equals doubling A.
func TestPropertyAlphaScaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const m, n, k = 2, 10, 6
		a := randMat(rng, m*k, 50)
		b := randMat(rng, k*n, 50)
		a2 := make([]int16, len(a))
		for i, v := range a {
			a2[i] = v * 2
		}
		c1, err := Reference(m, n, k, 2, a, b)
		if err != nil {
			return false
		}
		c2, err := Reference(m, n, k, 1, a2, b)
		if err != nil {
			return false
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyZeroMatrix: a zero A or zero B yields an all-zero C.
func TestPropertyZeroMatrix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const m, n, k = 3, 12, 8
		a := randMat(rng, m*k, 1000)
		zero := make([]int16, k*n)
		c, err := Reference(m, n, k, 1, a, zero)
		if err != nil {
			return false
		}
		for _, v := range c {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

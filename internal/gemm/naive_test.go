package gemm

import (
	"math/rand"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
)

// TestNaiveMatchesReference: the thesis-faithful kernel must produce the
// same bits as the host Algorithm 2 and the tiled kernel.
func TestNaiveMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sys, _ := host.NewSystem(3, host.DefaultConfig(dpu.O3))
	r, err := NewRunner(sys, RunnerConfig{MaxK: 64, MaxN: 300, Tasklets: 8, Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Naive() {
		t.Fatal("runner not naive")
	}
	for _, s := range []struct{ m, n, k int }{
		{1, 7, 5},    // fewer columns than tasklets for some tasklets
		{3, 300, 33}, // odd shapes
		{5, 64, 64},  // multiple waves
	} {
		a := randMat(rng, s.m*s.k, 100)
		b := randMat(rng, s.k*s.n, 100)
		want, err := Reference(s.m, s.n, s.k, 1, a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := r.Multiply(s.m, s.n, s.k, 1, a, b)
		if err != nil {
			t.Fatalf("%dx%dx%d: %v", s.m, s.n, s.k, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%dx%dx%d: C[%d] = %d, want %d", s.m, s.n, s.k, i, got[i], want[i])
			}
		}
	}
}

// TestNaiveSlowerThanTiled: the MRAM-resident ctmp makes the thesis's
// kernel substantially slower than the WRAM-tiled one — the §4.3.3
// takeaway ("increase the number of WRAM accesses vs. MRAM ones").
func TestNaiveSlowerThanTiled(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const m, n, k = 1, 1024, 32
	a := randMat(rng, m*k, 100)
	b := randMat(rng, k*n, 100)

	run := func(naive bool) uint64 {
		sys, _ := host.NewSystem(1, host.DefaultConfig(dpu.O3))
		r, err := NewRunner(sys, RunnerConfig{
			MaxK: k, MaxN: n, Tasklets: 11, TileCols: 256, Naive: naive,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := r.Multiply(m, n, k, 1, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	naive, tiled := run(true), run(false)
	ratio := float64(naive) / float64(tiled)
	if ratio < 2 {
		t.Errorf("naive/tiled = %.2f (naive %d, tiled %d); MRAM-bound kernel should be much slower",
			ratio, naive, tiled)
	}
	t.Logf("naive kernel is %.1fx slower than the tiled improvement", ratio)
}

// TestNaiveThreadingSaturatesEarly: with per-element MRAM traffic the DMA
// engine becomes the bottleneck, so tasklet scaling stops helping well
// before the pipeline depth — the YOLOv3-vs-eBNN contrast of §4.3.3.
func TestNaiveThreadingSaturatesEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const m, n, k = 1, 512, 16
	a := randMat(rng, m*k, 100)
	b := randMat(rng, k*n, 100)
	cycles := func(tasklets int) uint64 {
		sys, _ := host.NewSystem(1, host.DefaultConfig(dpu.O3))
		r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: tasklets, Naive: true})
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := r.Multiply(m, n, k, 1, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	c1, c2, c11 := cycles(1), cycles(2), cycles(11)
	if c2 >= c1 {
		t.Errorf("2 tasklets (%d) not faster than 1 (%d)", c2, c1)
	}
	// Speedup at 11 tasklets is bounded by DMA serialization.
	speedup := float64(c1) / float64(c11)
	if speedup > 6 {
		t.Errorf("naive kernel speedup at 11 tasklets = %.1f; DMA should cap it below compute-bound scaling", speedup)
	}
}

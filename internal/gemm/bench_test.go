package gemm

import (
	"math/rand"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/exec"
	"pimdnn/internal/host"
)

func benchProblem(m, n, k int) (a, b []int16) {
	rng := rand.New(rand.NewSource(99))
	return randMat(rng, m*k, 100), randMat(rng, k*n, 100)
}

// BenchmarkReference measures the host Algorithm 2 GEMM.
func BenchmarkReference(b *testing.B) {
	const m, n, k = 8, 1024, 64
	am, bm := benchProblem(m, n, k)
	b.SetBytes(int64(m * n * k * 2))
	for i := 0; i < b.N; i++ {
		if _, err := Reference(m, n, k, 1, am, bm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTiledKernel measures the simulated WRAM-tiled DPU GEMM and
// reports its modeled cycles.
func BenchmarkTiledKernel(b *testing.B) {
	const m, n, k = 2, 1024, 64
	am, bm := benchProblem(m, n, k)
	sys, _ := host.NewSystem(2, host.DefaultConfig(dpu.O3))
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 11, TileCols: 256})
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, st, err := r.Multiply(m, n, k, 1, am, bm)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "dpu-cycles")
}

// BenchmarkNaiveKernel measures the thesis-faithful MRAM-bound kernel.
func BenchmarkNaiveKernel(b *testing.B) {
	const m, n, k = 2, 1024, 64
	am, bm := benchProblem(m, n, k)
	sys, _ := host.NewSystem(2, host.DefaultConfig(dpu.O3))
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 11, Naive: true})
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, st, err := r.Multiply(m, n, k, 1, am, bm)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "dpu-cycles")
}

// BenchmarkBatchKernel measures the image-per-DPU mapping over a batch.
func BenchmarkBatchKernel(b *testing.B) {
	const m, n, k, images = 4, 512, 32, 4
	am, _ := benchProblem(m, n, k)
	rng := rand.New(rand.NewSource(7))
	bs := make([][]int16, images)
	for i := range bs {
		bs[i] = randMat(rng, k*n, 100)
	}
	sys, _ := host.NewSystem(images, host.DefaultConfig(dpu.O3))
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 11, TileCols: 128})
	if err != nil {
		b.Fatal(err)
	}
	if err := r.EnableBatch(m); err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, st, err := r.MultiplyBatch(m, n, k, 1, am, bs)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "dpu-cycles")
}

// BenchmarkMultiWaveSync / BenchmarkMultiWavePipelined compare the
// synchronous wave loop against the double-buffered asynchronous path on
// a row count several times the DPU count (8 waves on 4 DPUs), the
// regime where pipelining can overlap host staging with device
// execution. Simulated dpu-cycles are identical by construction; only
// ns/op (wall-clock) differs.
func benchMultiWave(b *testing.B, mode host.PipelineMode) {
	const m, n, k = 32, 512, 64
	am, bm := benchProblem(m, n, k)
	sys, _ := host.NewSystem(4, host.DefaultConfig(dpu.O3))
	r, err := NewRunner(sys, RunnerConfig{
		MaxK: k, MaxN: n, Tasklets: 11, TileCols: 256, Pipeline: mode,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, st, err := r.Multiply(m, n, k, 1, am, bm)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "dpu-cycles")
}

func BenchmarkMultiWaveSync(b *testing.B)      { benchMultiWave(b, host.PipelineOff) }
func BenchmarkMultiWavePipelined(b *testing.B) { benchMultiWave(b, host.PipelineOn) }

// BenchmarkResidentForward / BenchmarkRebroadcastForward compare the
// repeated-forward cost with weights MRAM-resident against the
// re-broadcast-every-call baseline — the PR 8 speedup claim, on the
// image-per-DPU mapping where the whole weight matrix is the per-call
// broadcast residency eliminates. Both variants run one untimed warmup
// and reset the transfer ledger, so xfer-bytes/op is steady-state
// traffic: the resident runner's excludes the weight matrix entirely.
func benchRepeatForward(b *testing.B, resident bool) {
	const m, n, k, images = 512, 16, 256, 4
	am, _ := benchProblem(m, n, k)
	rng := rand.New(rand.NewSource(7))
	bs := make([][]int16, images)
	for i := range bs {
		bs[i] = randMat(rng, k*n, 100)
	}
	sys, _ := host.NewSystem(images, host.DefaultConfig(dpu.O3))
	defer sys.Close()
	r, err := NewRunner(sys, RunnerConfig{MaxK: k, MaxN: n, Tasklets: 11, TileCols: 16})
	if err != nil {
		b.Fatal(err)
	}
	if err := r.EnableBatch(m); err != nil {
		b.Fatal(err)
	}
	if resident {
		cache, err := exec.NewWeightCache(sys, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		r.EnableResidency(cache, "bench")
		r.SetWeightLayer(0)
	}
	// Warmup primes the arena (resident) and the staging buffers (both).
	if _, _, err := r.MultiplyBatch(m, n, k, 1, am, bs); err != nil {
		b.Fatal(err)
	}
	sys.ResetClocks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resident {
			r.SetWeightLayer(0)
		}
		if _, _, err := r.MultiplyBatch(m, n, k, 1, am, bs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := sys.TransferStats()
	b.ReportMetric(float64(st.Bytes)/float64(b.N), "xfer-bytes/op")
	b.ReportMetric(float64(st.Time.Microseconds())/float64(b.N), "xfer-us/op")
}

func BenchmarkResidentForward(b *testing.B)    { benchRepeatForward(b, true) }
func BenchmarkRebroadcastForward(b *testing.B) { benchRepeatForward(b, false) }

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace-event ("Perfetto JSON") export. The emitted object is
// the trace-event format both chrome://tracing and ui.perfetto.dev
// load: {"traceEvents": [...]} where each event is a complete slice
// (ph "X") with microsecond ts/dur, or a metadata record (ph "M")
// naming the process/thread tracks.
//
// Mapping: one trace = one Perfetto "process" (pid = trace ID), and
// spans are packed onto "threads" (tid lanes) greedily so overlapping
// spans — pipelined waves, concurrent queue commands — never share a
// lane. Lane 0 always holds the root span.

// TraceEvent is one Chrome trace-event record.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the top-level trace-event JSON object.
type perfettoFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// depthOf computes each span's depth in the tree (root = 0).
func depthOf(nodes []SpanNode) map[SpanID]int {
	parent := make(map[SpanID]SpanID, len(nodes))
	for _, n := range nodes {
		parent[n.ID] = n.Parent
	}
	depth := make(map[SpanID]int, len(nodes))
	var walk func(id SpanID) int
	walk = func(id SpanID) int {
		if d, ok := depth[id]; ok {
			return d
		}
		p, ok := parent[id]
		if !ok || p == 0 {
			depth[id] = 0
			return 0
		}
		depth[id] = -1 // cycle guard; overwritten below
		d := walk(p) + 1
		depth[id] = d
		return d
	}
	for _, n := range nodes {
		walk(n.ID)
	}
	return depth
}

// laneFor assigns tid lanes: spans are sorted by (depth, start) and
// each claims the lowest lane at or below its depth whose last
// occupant ended before the span starts. The root keeps lane 0 and
// children render beneath their ancestors while true overlaps
// (pipelined waves in flight together) split onto separate lanes.
func laneFor(nodes []SpanNode) map[SpanID]uint64 {
	depth := depthOf(nodes)
	order := make([]int, len(nodes))
	for i := range nodes {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		na, nb := nodes[order[a]], nodes[order[b]]
		if depth[na.ID] != depth[nb.ID] {
			return depth[na.ID] < depth[nb.ID]
		}
		if na.Start != nb.Start {
			return na.Start < nb.Start
		}
		return na.ID < nb.ID
	})
	lane := make(map[SpanID]uint64, len(nodes))
	var laneEnd []time.Duration // last end per lane
	for _, i := range order {
		n := nodes[i]
		d := depth[n.ID]
		placed := false
		for l := d; l < len(laneEnd); l++ {
			if laneEnd[l] <= n.Start {
				lane[n.ID] = uint64(l)
				laneEnd[l] = n.End
				placed = true
				break
			}
		}
		if !placed {
			lane[n.ID] = uint64(len(laneEnd))
			laneEnd = append(laneEnd, n.End)
		}
	}
	return lane
}

// AppendTraceEvents converts one trace to trace-event records,
// appending to dst. The trace's epoch offset from base becomes the
// timestamp origin, so several traces exported together keep their
// relative timing.
func AppendTraceEvents(dst []TraceEvent, tr *Trace, base time.Time) []TraceEvent {
	nodes := tr.Spans()
	lanes := laneFor(nodes)
	pid := uint64(tr.ID())
	origin := tr.Epoch().Sub(base)
	dst = append(dst, TraceEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": fmt.Sprintf("trace %d: %s", pid, tr.Name())},
	})
	maxLane := uint64(0)
	for _, l := range lanes {
		if l > maxLane {
			maxLane = l
		}
	}
	for l := uint64(0); l <= maxLane; l++ {
		name := "spans"
		if l == 0 {
			name = "request"
		}
		dst = append(dst, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: l,
			Args: map[string]any{"name": fmt.Sprintf("%s.%d", name, l)},
		})
	}
	for _, n := range nodes {
		ev := TraceEvent{
			Name: n.Name,
			Ph:   "X",
			Ts:   float64((origin + n.Start).Nanoseconds()) / 1e3,
			Dur:  float64((n.End - n.Start).Nanoseconds()) / 1e3,
			Pid:  pid,
			Tid:  lanes[n.ID],
		}
		if len(n.Attrs) > 0 {
			args := make(map[string]any, len(n.Attrs))
			for _, a := range n.Attrs {
				if a.Str != "" {
					args[a.Key] = a.Str
				} else {
					args[a.Key] = a.Val
				}
			}
			ev.Args = args
		}
		dst = append(dst, ev)
	}
	return dst
}

// WritePerfetto writes the traces as one Chrome trace-event JSON
// document. The earliest epoch among the traces is the time origin.
func WritePerfetto(w io.Writer, traces ...*Trace) error {
	var base time.Time
	for _, tr := range traces {
		if base.IsZero() || tr.Epoch().Before(base) {
			base = tr.Epoch()
		}
	}
	var events []TraceEvent
	for _, tr := range traces {
		events = AppendTraceEvents(events, tr, base)
	}
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(perfettoFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// TimelinePerfetto converts a wave Timeline (the pre-span profiling
// surface) to trace-event JSON: each span becomes a complete slice on
// pid 0, one lane per concurrent wave. upmem-profile uses it so
// existing Gantt data exports to the same viewer.
func TimelinePerfetto(w io.Writer, tl *Timeline) error {
	spans := tl.Spans()
	events := make([]TraceEvent, 0, len(spans)+2)
	events = append(events, TraceEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "wave timeline"},
	})
	var laneEnd []time.Duration
	for _, s := range spans {
		lane := -1
		for l := range laneEnd {
			if laneEnd[l] <= s.Start {
				lane = l
				break
			}
		}
		if lane == -1 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
			events = append(events, TraceEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: uint64(lane),
				Args: map[string]any{"name": fmt.Sprintf("lane.%d", lane)},
			})
		}
		laneEnd[lane] = s.End
		events = append(events, TraceEvent{
			Name: fmt.Sprintf("w%03d %s", s.Wave, s.Name),
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64((s.End - s.Start).Nanoseconds()) / 1e3,
			Pid:  0,
			Tid:  uint64(lane),
			Args: map[string]any{"wave": s.Wave, "shards": s.Shards},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(perfettoFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}

package trace

import (
	"testing"
	"time"
)

// mkTrace completes one trace with the given name and simulated
// duration, delivering it to the tracer's recorder.
func mkTrace(tr *Tracer, name string, dur time.Duration) *Span {
	root := tr.StartTrace(name)
	root.EndAt(root.Trace().Epoch().Add(dur))
	return root
}

// TestRecorderRingEviction: the ring keeps the newest N completed
// traces, evicting the oldest.
func TestRecorderRingEviction(t *testing.T) {
	tr := NewTracer(TracerConfig{Ring: 4})
	for i := 0; i < 6; i++ {
		mkTrace(tr, "r", time.Millisecond)
	}
	got := tr.Recorder().Traces()
	if len(got) != 4 {
		t.Fatalf("retained %d traces, want ring size 4", len(got))
	}
	// Newest first: IDs 6,5,4,3 — 1 and 2 evicted.
	want := []TraceID{6, 5, 4, 3}
	for i, trc := range got {
		if trc.ID() != want[i] {
			t.Errorf("Traces()[%d].ID = %d, want %d", i, trc.ID(), want[i])
		}
	}
	if tr.Recorder().Find(1) != nil {
		t.Error("evicted trace 1 still findable")
	}
	if tr.Recorder().Find(5) == nil {
		t.Error("retained trace 5 not findable")
	}
}

// TestRecorderDump: a dump freezes the current ring, retains the
// record (bounded), and invokes the sink.
func TestRecorderDump(t *testing.T) {
	var sunk []*DumpRecord
	tr := NewTracer(TracerConfig{Ring: 8, OnDump: func(d *DumpRecord) { sunk = append(sunk, d) }})
	mkTrace(tr, "a", time.Millisecond)
	mkTrace(tr, "b", 2*time.Millisecond)

	d := tr.Recorder().Dump("slo_breach:test")
	if d == nil || d.Reason != "slo_breach:test" {
		t.Fatalf("dump = %+v", d)
	}
	if len(d.TraceIDs) != 2 || d.TraceIDs[0] != 2 {
		t.Errorf("dump trace IDs %v, want [2 1]", d.TraceIDs)
	}
	if len(sunk) != 1 || sunk[0] != d {
		t.Errorf("sink saw %d dumps", len(sunk))
	}
	// A trace completed after the dump must not appear in it.
	mkTrace(tr, "c", time.Millisecond)
	if len(d.Traces) != 2 {
		t.Errorf("dump grew after the fact: %d traces", len(d.Traces))
	}
	if got := tr.Recorder().Dumps(); len(got) != 1 || got[0].Reason != "slo_breach:test" {
		t.Errorf("Dumps() = %d records", len(got))
	}
	// Retention bound: old dumps drop first.
	for i := 0; i < maxDumps+5; i++ {
		tr.Recorder().Dump("again")
	}
	if got := tr.Recorder().Dumps(); len(got) != maxDumps {
		t.Errorf("retained %d dumps, want %d", len(got), maxDumps)
	}
}

// TestSummarizeAndSlowest: summaries surface the root attrs and queue
// wait, and Slowest orders by duration.
func TestSummarizeAndSlowest(t *testing.T) {
	tr := NewTracer(TracerConfig{Ring: 8})

	mk := func(dur, queue time.Duration, model string, batch int64) {
		root := tr.StartTrace("infer")
		epoch := root.Trace().Epoch()
		root.SetAttrStr("model", model)
		root.SetAttr("batch_size", batch)
		q := root.StartChildAt("queue_wait", epoch)
		q.EndAt(epoch.Add(queue))
		root.EndAt(epoch.Add(dur))
	}
	mk(5*time.Millisecond, time.Millisecond, "tiny", 2)
	mk(20*time.Millisecond, 3*time.Millisecond, "lite", 4)
	mk(10*time.Millisecond, 0, "tiny", 1)

	slow := tr.Recorder().Slowest(2)
	if len(slow) != 2 {
		t.Fatalf("Slowest(2) returned %d", len(slow))
	}
	if slow[0].ID != 2 || slow[0].Duration != 20*time.Millisecond {
		t.Errorf("slowest = %+v, want trace 2 at 20ms", slow[0])
	}
	if slow[1].ID != 3 {
		t.Errorf("second slowest = %+v, want trace 3", slow[1])
	}
	if slow[0].Model != "lite" || slow[0].BatchSize != 4 {
		t.Errorf("summary lost root attrs: %+v", slow[0])
	}
	if slow[0].QueueWait != 3*time.Millisecond {
		t.Errorf("queue wait %v, want 3ms", slow[0].QueueWait)
	}
	if slow[0].Spans != 2 {
		t.Errorf("span count %d, want 2", slow[0].Spans)
	}
}

// TestNilRecorderSafe: every method on a nil recorder no-ops.
func TestNilRecorderSafe(t *testing.T) {
	var r *FlightRecorder
	r.Add(nil)
	if r.Traces() != nil || r.Find(1) != nil || r.Dump("x") != nil ||
		r.Dumps() != nil || r.Slowest(3) != nil {
		t.Error("nil recorder returned data")
	}
}

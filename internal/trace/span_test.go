package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestSpanTreeShape builds a small request-shaped tree and checks the
// recorded parent/child structure, deterministic IDs, and attributes.
func TestSpanTreeShape(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartTrace("infer")
	if root == nil {
		t.Fatal("StartTrace returned nil with sampling off")
	}
	if root.TraceID() != 1 {
		t.Fatalf("first trace ID = %d, want 1", root.TraceID())
	}
	root.SetAttrStr("model", "tiny")

	adm := root.StartChild("admission")
	adm.End()
	wave := root.StartChild("wave")
	wave.SetAttr("shards", 4)
	kern := wave.StartChild("dpu_kernel")
	kern.SetAttr("dpu", 3)
	kern.End()
	wave.End()
	root.End()

	trc := root.Trace()
	if !trc.Complete() {
		t.Fatal("trace not complete after root.End")
	}
	spans := trc.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(spans), spans)
	}
	byName := map[string]SpanNode{}
	for _, n := range spans {
		byName[n.Name] = n
	}
	if byName["infer"].ID != 1 || byName["infer"].Parent != 0 {
		t.Errorf("root node %+v, want ID 1 parent 0", byName["infer"])
	}
	if byName["admission"].Parent != 1 || byName["wave"].Parent != 1 {
		t.Errorf("admission/wave not parented to root: %+v %+v",
			byName["admission"], byName["wave"])
	}
	if byName["dpu_kernel"].Parent != byName["wave"].ID {
		t.Errorf("dpu_kernel parent %d, want wave's ID %d",
			byName["dpu_kernel"].Parent, byName["wave"].ID)
	}
	var model string
	for _, a := range byName["infer"].Attrs {
		if a.Key == "model" {
			model = a.Str
		}
	}
	if model != "tiny" {
		t.Errorf("root model attr %q, want tiny", model)
	}

	// A second trace gets the next sequential ID.
	if sp := tr.StartTrace("infer"); sp.TraceID() != 2 {
		t.Errorf("second trace ID = %d, want 2", sp.TraceID())
	}
}

// TestNilSpanSafe: every method on the disabled (nil) span and tracer
// must be a safe no-op — this is the one-branch disabled contract.
func TestNilSpanSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartTrace("x")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	sp.SetAttr("k", 1)
	sp.SetAttrStr("k", "v")
	child := sp.StartChild("child")
	if child != nil {
		t.Fatal("nil span minted a child")
	}
	sp.StartChildAt("c", time.Now())
	sp.End()
	sp.EndAt(time.Now())
	sp.AdoptSubtree(nil)
	if sp.TraceID() != 0 || sp.Trace() != nil {
		t.Error("nil span leaked identity")
	}
	if tr.Recorder() != nil {
		t.Error("nil tracer has a recorder")
	}
}

// TestSampling: 1-in-N head sampling keeps exactly every Nth trace.
func TestSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 4})
	kept := 0
	for i := 0; i < 16; i++ {
		if sp := tr.StartTrace("r"); sp != nil {
			kept++
			sp.End()
		}
	}
	if kept != 4 {
		t.Errorf("kept %d of 16 with Sample=4, want 4", kept)
	}
}

// TestMaxSpansCap: a trace drops spans past its cap (root always
// lands) and counts the drops.
func TestMaxSpansCap(t *testing.T) {
	tr := NewTracer(TracerConfig{MaxSpans: 8})
	root := tr.StartTrace("r")
	for i := 0; i < 20; i++ {
		root.StartChild("c").End()
	}
	root.End()
	trc := root.Trace()
	spans := trc.Spans()
	// The first 8 children fill the cap; the root is exempt from it (it
	// carries the trace's identity), so 9 spans survive of the 21 ended.
	if len(spans) != 9 {
		t.Errorf("retained %d spans, want 9 (cap 8 + root)", len(spans))
	}
	if trc.Dropped() != 12 {
		t.Errorf("dropped = %d, want 12", trc.Dropped())
	}
	if root, ok := trc.Root(); !ok || root.Name != "r" {
		t.Error("root span evicted by the cap")
	}
}

// TestRetroactiveSpans: StartChildAt/EndAt stamp historical windows
// exactly (queue commands, simulated kernel durations).
func TestRetroactiveSpans(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartTrace("r")
	epoch := root.Trace().Epoch()
	sp := root.StartChildAt("q.launch", epoch.Add(5*time.Millisecond))
	sp.EndAt(epoch.Add(9 * time.Millisecond))
	root.End()
	for _, n := range root.Trace().Spans() {
		if n.Name != "q.launch" {
			continue
		}
		if n.Start != 5*time.Millisecond || n.End != 9*time.Millisecond {
			t.Errorf("q.launch window [%v,%v], want [5ms,9ms]", n.Start, n.End)
		}
		return
	}
	t.Fatal("q.launch span not recorded")
}

// TestAdoptSubtree: a co-batched follower's trace receives a copy of
// the leader's exec subtree, re-minted and re-parented, with offsets
// rebased onto the follower's epoch.
func TestAdoptSubtree(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	leader := tr.StartTrace("leader")
	follower := tr.StartTrace("follower")

	batch := leader.StartChild("batch_exec")
	launch := batch.StartChild("launch")
	launch.SetAttr("wave", 1)
	launch.End()
	batch.End()

	follower.AdoptSubtree(batch)
	follower.End()
	leader.End()

	spans := follower.Trace().Spans()
	if len(spans) != 3 { // root + adopted batch_exec + adopted launch
		t.Fatalf("follower has %d spans, want 3: %+v", len(spans), spans)
	}
	byName := map[string]SpanNode{}
	for _, n := range spans {
		byName[n.Name] = n
	}
	if byName["batch_exec"].Parent != 1 {
		t.Errorf("adopted batch_exec parent %d, want follower root 1", byName["batch_exec"].Parent)
	}
	if byName["launch"].Parent != byName["batch_exec"].ID {
		t.Errorf("adopted launch parent %d, want %d", byName["launch"].Parent, byName["batch_exec"].ID)
	}
	var wave int64
	for _, a := range byName["launch"].Attrs {
		if a.Key == "wave" {
			wave = a.Val
		}
	}
	if wave != 1 {
		t.Error("adopted span lost its attributes")
	}
	// Epoch rebasing: the adopted window must land at the same absolute
	// wall-clock instant in both traces.
	leaderNode, _ := findSpan(leader.Trace(), "launch")
	wantAbs := leader.Trace().Epoch().Add(leaderNode.Start)
	gotAbs := follower.Trace().Epoch().Add(byName["launch"].Start)
	if d := gotAbs.Sub(wantAbs); d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("adopted span start shifted by %v across epochs", d)
	}
	// Adoption into the same trace is a no-op (no duplicate subtree).
	before := len(leader.Trace().Spans())
	leader.AdoptSubtree(batch)
	if got := len(leader.Trace().Spans()); got != before {
		t.Errorf("same-trace adopt duplicated spans: %d -> %d", before, got)
	}
}

func findSpan(tr *Trace, name string) (SpanNode, bool) {
	for _, n := range tr.Spans() {
		if n.Name == name {
			return n, true
		}
	}
	return SpanNode{}, false
}

// TestContextPropagation round-trips a span through a context.
func TestContextPropagation(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatal("empty context produced a span")
	}
	tr := NewTracer(TracerConfig{})
	sp := tr.StartTrace("r")
	ctx := NewContext(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Error("span did not round-trip through context")
	}
	// A nil span is carried as a plain nil, not a typed non-nil value.
	if got := FromContext(NewContext(context.Background(), nil)); got != nil {
		t.Error("nil span round-tripped as non-nil")
	}
}

// TestConcurrentSpanHammer exercises the documented concurrency
// contract under -race: many goroutines create children of a shared
// parent, attach attrs to their own spans, end them, and adopt
// subtrees across traces, while readers export and summarize.
func TestConcurrentSpanHammer(t *testing.T) {
	tr := NewTracer(TracerConfig{Ring: 8})
	const writers = 8
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})
	// Readers: export and summarize whatever the recorder holds.
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, done := range tr.Recorder().Traces() {
					_ = done.Spans()
					_ = Summarize(done, time.Now())
				}
				tr.Recorder().Slowest(4)
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var prev *Span
			for i := 0; i < 50; i++ {
				root := tr.StartTrace("req")
				root.SetAttr("writer", int64(w))
				// Children of a shared parent from two goroutines.
				var inner sync.WaitGroup
				for g := 0; g < 2; g++ {
					inner.Add(1)
					go func(g int) {
						defer inner.Done()
						c := root.StartChild("child")
						c.SetAttr("g", int64(g))
						c.StartChild("kernel").End()
						c.End()
					}(g)
				}
				inner.Wait()
				if prev != nil {
					root.AdoptSubtree(prev)
				}
				prev = root.StartChild("batch")
				prev.End()
				root.End()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := len(tr.Recorder().Traces()); got == 0 {
		t.Error("no traces retained after hammer")
	}
}

package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder retains the last N completed traces in a lock-free
// ring. Completed traces arrive from Tracer.deliver on whatever
// goroutine ended the root span; readers (the /v1/trace endpoint, the
// stats summary, dump triggers) snapshot without blocking writers.
//
// The ring holds *Trace pointers behind atomics: Add claims a slot
// with a single fetch-add and stores the pointer, so concurrent
// completions never contend on a mutex. Readers may observe a
// mid-rotation mix of old and new traces — acceptable for a
// diagnostic buffer.
type FlightRecorder struct {
	ring []atomic.Pointer[Trace]
	pos  atomic.Uint64

	dumpMu sync.Mutex
	dumps  []*DumpRecord
	onDump func(*DumpRecord)
}

// DumpRecord is one flight-recorder dump: the reason it fired and the
// traces captured at that instant, newest first.
type DumpRecord struct {
	Reason string    `json:"reason"`
	At     time.Time `json:"at"`
	Traces []*Trace  `json:"-"`
	// TraceIDs duplicates the captured IDs for JSON consumers.
	TraceIDs []TraceID `json:"trace_ids"`
}

// maxDumps bounds retained dump records; older dumps drop first.
const maxDumps = 16

// NewFlightRecorder creates a recorder retaining up to n traces.
func NewFlightRecorder(n int, onDump func(*DumpRecord)) *FlightRecorder {
	if n <= 0 {
		n = 64
	}
	return &FlightRecorder{ring: make([]atomic.Pointer[Trace], n), onDump: onDump}
}

// Add records a completed trace, evicting the oldest when full.
func (r *FlightRecorder) Add(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	i := r.pos.Add(1) - 1
	r.ring[i%uint64(len(r.ring))].Store(tr)
}

// Traces returns the retained traces, newest first.
func (r *FlightRecorder) Traces() []*Trace {
	if r == nil {
		return nil
	}
	out := make([]*Trace, 0, len(r.ring))
	for i := range r.ring {
		if tr := r.ring[i].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id > out[j].id })
	return out
}

// Find returns the retained trace with the given ID, or nil.
func (r *FlightRecorder) Find(id TraceID) *Trace {
	if r == nil {
		return nil
	}
	for i := range r.ring {
		if tr := r.ring[i].Load(); tr != nil && tr.id == id {
			return tr
		}
	}
	return nil
}

// Dump snapshots the current ring into a DumpRecord — called when a
// request breaches its SLO or a fault report fires, so the traces
// leading up to the event survive ring rotation. The record is
// retained (up to maxDumps, oldest dropped) and passed to the
// recorder's OnDump sink if one was configured.
func (r *FlightRecorder) Dump(reason string) *DumpRecord {
	if r == nil {
		return nil
	}
	d := &DumpRecord{Reason: reason, At: time.Now(), Traces: r.Traces()}
	d.TraceIDs = make([]TraceID, len(d.Traces))
	for i, tr := range d.Traces {
		d.TraceIDs[i] = tr.id
	}
	r.dumpMu.Lock()
	r.dumps = append(r.dumps, d)
	if len(r.dumps) > maxDumps {
		r.dumps = r.dumps[len(r.dumps)-maxDumps:]
	}
	sink := r.onDump
	r.dumpMu.Unlock()
	if sink != nil {
		sink(d)
	}
	return d
}

// Dumps returns the retained dump records, oldest first.
func (r *FlightRecorder) Dumps() []*DumpRecord {
	if r == nil {
		return nil
	}
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	out := make([]*DumpRecord, len(r.dumps))
	copy(out, r.dumps)
	return out
}

// TraceSummary is one trace's headline numbers, for the stats endpoint
// and upmem-top's slowest-requests panel.
type TraceSummary struct {
	ID         TraceID       `json:"id"`
	Name       string        `json:"name"`
	Duration   time.Duration `json:"duration_ns"`
	Spans      int           `json:"spans"`
	Dropped    int           `json:"dropped,omitempty"`
	Model      string        `json:"model,omitempty"`
	BatchSize  int64         `json:"batch_size,omitempty"`
	QueueWait  time.Duration `json:"queue_wait_ns,omitempty"`
	StartedAgo time.Duration `json:"started_ago_ns"`
}

// Summarize renders one completed trace's summary. Model, batch size
// and queue wait are pulled from well-known span names/attrs when
// present ("model"/"batch_size" on the root, a "queue_wait" span).
func Summarize(tr *Trace, now time.Time) TraceSummary {
	s := TraceSummary{ID: tr.ID(), Name: tr.Name(), StartedAgo: now.Sub(tr.Epoch())}
	tr.mu.Lock()
	s.Spans = len(tr.nodes)
	s.Dropped = tr.dropped
	for i := range tr.nodes {
		n := &tr.nodes[i]
		if n.ID == 1 {
			s.Duration = n.End - n.Start
			for _, a := range n.Attrs {
				switch a.Key {
				case "model":
					s.Model = a.Str
				case "batch_size":
					s.BatchSize = a.Val
				}
			}
		}
		if n.Name == "queue_wait" {
			s.QueueWait += n.End - n.Start
		}
	}
	tr.mu.Unlock()
	return s
}

// Slowest returns summaries of the k slowest retained traces, slowest
// first (ties broken newest first).
func (r *FlightRecorder) Slowest(k int) []TraceSummary {
	if r == nil || k <= 0 {
		return nil
	}
	now := time.Now()
	traces := r.Traces()
	sums := make([]TraceSummary, 0, len(traces))
	for _, tr := range traces {
		sums = append(sums, Summarize(tr, now))
	}
	sort.SliceStable(sums, func(i, j int) bool { return sums[i].Duration > sums[j].Duration })
	if len(sums) > k {
		sums = sums[:k]
	}
	return sums
}

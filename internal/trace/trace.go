// Package trace provides the subroutine-occurrence profiler used
// throughout the simulator.
//
// The thesis profiles DPU applications by counting how many times each
// compiler-inserted subroutine is called (#occ, Fig 3.2) and by measuring
// per-operation cycles via perfcounter (Fig 3.1, Table 3.1). This package
// is the simulator-side equivalent: the DPU cost model records every
// subroutine invocation and its cycle charge here, and the report
// renderers reproduce the thesis's profile listings (Fig 3.2, Fig 4.3).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Profile accumulates per-subroutine occurrence counts and cycle totals.
// It is safe for concurrent use by multiple tasklets/DPUs.
type Profile struct {
	mu     sync.Mutex
	occ    map[string]uint64
	cycles map[string]uint64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		occ:    make(map[string]uint64),
		cycles: make(map[string]uint64),
	}
}

// Record notes one invocation of the named subroutine costing the given
// number of cycles.
func (p *Profile) Record(name string, cycles uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.occ[name]++
	p.cycles[name] += cycles
	p.mu.Unlock()
}

// RecordN notes n invocations of the named subroutine costing cycles
// each. Bulk-charged kernels (large GEMMs) use it to keep profiling cost
// independent of operation count.
func (p *Profile) RecordN(name string, n, cycles uint64) {
	if p == nil || n == 0 {
		return
	}
	p.mu.Lock()
	p.occ[name] += n
	p.cycles[name] += n * cycles
	p.mu.Unlock()
}

// Occ returns the number of recorded invocations of name.
func (p *Profile) Occ(name string) uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.occ[name]
}

// Cycles returns the total cycles recorded against name.
func (p *Profile) Cycles(name string) uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cycles[name]
}

// Subroutines returns the distinct subroutine names recorded, sorted.
func (p *Profile) Subroutines() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.occ))
	for n := range p.occ {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FloatSubroutines returns the recorded subroutines that implement
// floating-point operations (the __*sf* family the thesis counts in
// Fig 4.3), sorted.
func (p *Profile) FloatSubroutines() []string {
	var out []string
	for _, n := range p.Subroutines() {
		if strings.Contains(n, "sf") || strings.Contains(n, "df") {
			out = append(out, n)
		}
	}
	return out
}

// Snapshot returns a copy of the occurrence counts.
func (p *Profile) Snapshot() map[string]uint64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.occ))
	for k, v := range p.occ {
		out[k] = v
	}
	return out
}

// Reset clears all recorded data.
func (p *Profile) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.occ = make(map[string]uint64)
	p.cycles = make(map[string]uint64)
	p.mu.Unlock()
}

// Merge adds the counts from other into p.
func (p *Profile) Merge(other *Profile) {
	if p == nil || other == nil {
		return
	}
	other.mu.Lock()
	occ := make(map[string]uint64, len(other.occ))
	cyc := make(map[string]uint64, len(other.cycles))
	for k, v := range other.occ {
		occ[k] = v
	}
	for k, v := range other.cycles {
		cyc[k] = v
	}
	other.mu.Unlock()

	p.mu.Lock()
	for k, v := range occ {
		p.occ[k] += v
	}
	for k, v := range cyc {
		p.cycles[k] += v
	}
	p.mu.Unlock()
}

// DiffRow is one subroutine's change between two profiles.
type DiffRow struct {
	Name         string
	BeforeOcc    uint64
	AfterOcc     uint64
	BeforeCycles uint64
	AfterCycles  uint64
}

// Diff compares two profiles subroutine by subroutine — the Fig 4.3
// before/after-LUT comparison as a first-class operation. Rows are
// sorted by the cycle reduction, largest first.
func Diff(before, after *Profile) []DiffRow {
	names := map[string]bool{}
	for _, n := range before.Subroutines() {
		names[n] = true
	}
	for _, n := range after.Subroutines() {
		names[n] = true
	}
	rows := make([]DiffRow, 0, len(names))
	for n := range names {
		rows = append(rows, DiffRow{
			Name:         n,
			BeforeOcc:    before.Occ(n),
			AfterOcc:     after.Occ(n),
			BeforeCycles: before.Cycles(n),
			AfterCycles:  after.Cycles(n),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		di := int64(rows[i].BeforeCycles) - int64(rows[i].AfterCycles)
		dj := int64(rows[j].BeforeCycles) - int64(rows[j].AfterCycles)
		if di != dj {
			return di > dj
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// FormatDiff renders a diff as a before/after table.
func FormatDiff(rows []DiffRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %12s %12s\n",
		"subroutine", "occ before", "occ after", "cyc before", "cyc after")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10d %10d %12d %12d\n",
			r.Name, r.BeforeOcc, r.AfterOcc, r.BeforeCycles, r.AfterCycles)
	}
	return b.String()
}

// CSV renders the profile as `subroutine,occ,cycles` rows sorted by
// descending cycles, for machine consumption by plotting scripts.
func (p *Profile) CSV() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	type row struct {
		name        string
		occ, cycles uint64
	}
	rows := make([]row, 0, len(p.occ))
	for n, o := range p.occ {
		rows = append(rows, row{name: n, occ: o, cycles: p.cycles[n]})
	}
	p.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cycles != rows[j].cycles {
			return rows[i].cycles > rows[j].cycles
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	b.WriteString("subroutine,occ,cycles\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d\n", r.name, r.occ, r.cycles)
	}
	return b.String()
}

// Report renders the profile in the style of the thesis's DPU profiling
// output (Fig 3.2): one line per subroutine with its #occ count and the
// total cycles it consumed, sorted by descending cycle cost.
func (p *Profile) Report() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	type row struct {
		name   string
		occ    uint64
		cycles uint64
	}
	rows := make([]row, 0, len(p.occ))
	for n, o := range p.occ {
		rows = append(rows, row{name: n, occ: o, cycles: p.cycles[n]})
	}
	p.mu.Unlock()

	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cycles != rows[j].cycles {
			return rows[i].cycles > rows[j].cycles
		}
		return rows[i].name < rows[j].name
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %14s\n", "subroutine", "#occ", "cycles")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10d %14d\n", r.name, r.occ, r.cycles)
	}
	return b.String()
}

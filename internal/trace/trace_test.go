package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndQuery(t *testing.T) {
	p := NewProfile()
	p.Record("__addsf3", 57)
	p.Record("__addsf3", 57)
	p.Record("__mulsi3", 31)
	if got := p.Occ("__addsf3"); got != 2 {
		t.Errorf("Occ = %d, want 2", got)
	}
	if got := p.Cycles("__addsf3"); got != 114 {
		t.Errorf("Cycles = %d, want 114", got)
	}
	if got := p.Occ("__divsf3"); got != 0 {
		t.Errorf("Occ(unrecorded) = %d, want 0", got)
	}
}

func TestSubroutinesSorted(t *testing.T) {
	p := NewProfile()
	p.Record("__mulsi3", 1)
	p.Record("__addsf3", 1)
	p.Record("__divsf3", 1)
	got := p.Subroutines()
	want := []string{"__addsf3", "__divsf3", "__mulsi3"}
	if len(got) != len(want) {
		t.Fatalf("Subroutines = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Subroutines[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestFloatSubroutinesFilter(t *testing.T) {
	p := NewProfile()
	p.Record("__addsf3", 1)
	p.Record("__mulsi3", 1) // integer: excluded
	p.Record("__ltsf2", 1)
	p.Record("__adddf3", 1) // double: included
	got := p.FloatSubroutines()
	if len(got) != 3 {
		t.Errorf("FloatSubroutines = %v, want 3 entries", got)
	}
	for _, n := range got {
		if n == "__mulsi3" {
			t.Error("integer subroutine leaked into float list")
		}
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	p := NewProfile()
	p.Record("a", 1)
	s := p.Snapshot()
	s["a"] = 99
	if p.Occ("a") != 1 {
		t.Error("snapshot mutation affected profile")
	}
}

func TestReset(t *testing.T) {
	p := NewProfile()
	p.Record("a", 1)
	p.Reset()
	if p.Occ("a") != 0 || len(p.Subroutines()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestMerge(t *testing.T) {
	a := NewProfile()
	b := NewProfile()
	a.Record("x", 10)
	b.Record("x", 5)
	b.Record("y", 1)
	a.Merge(b)
	if a.Occ("x") != 2 || a.Cycles("x") != 15 || a.Occ("y") != 1 {
		t.Errorf("merge wrong: x occ=%d cyc=%d, y occ=%d", a.Occ("x"), a.Cycles("x"), a.Occ("y"))
	}
	// b unchanged
	if b.Occ("x") != 1 {
		t.Error("merge mutated source")
	}
}

func TestReportOrderingAndContent(t *testing.T) {
	p := NewProfile()
	p.Record("cheap", 1)
	p.Record("expensive", 1000)
	rep := p.Report()
	if !strings.Contains(rep, "#occ") {
		t.Error("report missing #occ header")
	}
	if strings.Index(rep, "expensive") > strings.Index(rep, "cheap") {
		t.Errorf("report not sorted by cycles:\n%s", rep)
	}
}

func TestDiff(t *testing.T) {
	before := NewProfile()
	before.RecordN("__divsf3", 100, 1072)
	before.RecordN("__mulsi3", 5, 31)
	after := NewProfile()
	after.RecordN("__mulsi3", 50, 31)

	rows := Diff(before, after)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// __divsf3 has the largest cycle reduction: first.
	if rows[0].Name != "__divsf3" {
		t.Errorf("first row = %s", rows[0].Name)
	}
	if rows[0].BeforeOcc != 100 || rows[0].AfterOcc != 0 {
		t.Errorf("divsf3 occ %d -> %d", rows[0].BeforeOcc, rows[0].AfterOcc)
	}
	if rows[1].Name != "__mulsi3" || rows[1].AfterOcc != 50 {
		t.Errorf("mulsi3 row: %+v", rows[1])
	}
	out := FormatDiff(rows)
	if !strings.Contains(out, "__divsf3") || !strings.Contains(out, "occ before") {
		t.Errorf("FormatDiff output:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	p := NewProfile()
	p.Record("__addsf3", 57)
	p.Record("__addsf3", 57)
	p.Record("__divsf3", 1072)
	csv := p.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d: %q", len(lines), csv)
	}
	if lines[0] != "subroutine,occ,cycles" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "__divsf3,1,1072" {
		t.Errorf("first row = %q (sorted by cycles)", lines[1])
	}
	if lines[2] != "__addsf3,2,114" {
		t.Errorf("second row = %q", lines[2])
	}
	var nilP *Profile
	if nilP.CSV() != "" {
		t.Error("nil CSV not empty")
	}
}

func TestNilProfileSafe(t *testing.T) {
	var p *Profile
	p.Record("x", 1) // must not panic
	if p.Occ("x") != 0 || p.Cycles("x") != 0 || p.Subroutines() != nil ||
		p.Snapshot() != nil || p.Report() != "" {
		t.Error("nil profile not inert")
	}
	p.Reset()
	p.Merge(NewProfile())
}

func TestConcurrentRecord(t *testing.T) {
	p := NewProfile()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				p.Record("op", 2)
			}
		}()
	}
	wg.Wait()
	if got := p.Occ("op"); got != 8000 {
		t.Errorf("concurrent Occ = %d, want 8000", got)
	}
	if got := p.Cycles("op"); got != 16000 {
		t.Errorf("concurrent Cycles = %d, want 16000", got)
	}
}

func TestSpansStableOrder(t *testing.T) {
	tl := NewTimeline()
	epoch := tl.epoch
	at := func(ms int) time.Time { return epoch.Add(time.Duration(ms) * time.Millisecond) }
	// Record out of time order, as interleaved engines would.
	tl.Record("launch", 2, 4, at(30), at(40))
	tl.Record("scatter", 1, 4, at(0), at(10))
	tl.Record("gather", 1, 4, at(20), at(30))
	tl.Record("launch", 1, 4, at(10), at(20))
	// Equal Start: wave breaks the tie, then name.
	tl.Record("scatter", 3, 4, at(30), at(35))
	tl.Record("gather", 2, 4, at(30), at(45))
	got := tl.Spans()
	want := []struct {
		name string
		wave int
	}{
		{"scatter", 1}, {"launch", 1}, {"gather", 1},
		{"gather", 2}, {"launch", 2}, {"scatter", 3},
	}
	if len(got) != len(want) {
		t.Fatalf("Spans len = %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Name != w.name || got[i].Wave != w.wave {
			t.Errorf("span %d = %s/w%d, want %s/w%d",
				i, got[i].Name, got[i].Wave, w.name, w.wave)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start < got[i-1].Start {
			t.Errorf("span %d starts before span %d", i, i-1)
		}
	}
}

package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Wave-timeline support for the execution engine (internal/exec). The
// Profile in this package counts simulated occurrences and cycles; a
// Timeline instead records *wall-clock* spans of the host-side dispatch
// machinery — when each wave's scatter/launch/gather (and any retry)
// occupied the host or its command queue. Simulated clocks are identical
// between the synchronous and pipelined dispatch paths by construction,
// so overlap is only ever visible on this wall-clock axis: a pipelined
// run shows wave w+1's span starting before wave w's has ended, a
// synchronous run shows strictly sequential spans.

// WaveSpan is one timed phase of an execution-engine wave. The JSON tags
// serve upmem-profile's -json exposition; Start and End marshal as
// nanoseconds (time.Duration's underlying int64).
type WaveSpan struct {
	// Name is the phase: "scatter", "launch", "gather" and "retry" on
	// the synchronous path, "wave" for a pipelined fused
	// scatter→launch→gather command (one queue command, not separately
	// timeable), "retry" for re-dispatches on either path.
	Name string `json:"name"`
	// Wave is the engine-global wave sequence number the span belongs
	// to (retry spans carry the wave they repair).
	Wave int `json:"wave"`
	// Shards is the number of DPUs participating in the wave.
	Shards int `json:"shards"`
	// Start and End are offsets from the Timeline epoch.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
}

// DefaultTimelineCapacity bounds a Timeline's retained spans unless
// SetCapacity overrides it. Timelines used to grow without bound,
// which leaks in a long-running server recording four spans per wave;
// the default keeps the last ~16k spans (a few MB at worst) and every
// profiling run in the repo fits well inside it.
const DefaultTimelineCapacity = 16384

// Timeline accumulates spans from one or more engines, retaining at
// most its capacity (oldest spans drop first). The zero value is not
// usable; create one with NewTimeline. Record is safe for concurrent
// use.
type Timeline struct {
	mu      sync.Mutex
	epoch   time.Time
	spans   []WaveSpan // ring once len == cap
	next    int        // ring write position (== len(spans) while filling)
	cap     int
	dropped uint64
}

// NewTimeline starts an empty timeline whose epoch is now.
func NewTimeline() *Timeline {
	return &Timeline{epoch: time.Now(), cap: DefaultTimelineCapacity}
}

// SetCapacity changes the retention bound. Shrinking below the
// current span count keeps the newest spans. n <= 0 restores the
// default.
func (tl *Timeline) SetCapacity(n int) {
	if n <= 0 {
		n = DefaultTimelineCapacity
	}
	tl.mu.Lock()
	if len(tl.spans) > n {
		ordered := tl.orderedLocked()
		tl.spans = append(tl.spans[:0], ordered[len(ordered)-n:]...)
		tl.dropped += uint64(len(ordered) - n)
	}
	tl.cap = n
	tl.next = len(tl.spans) % n
	tl.mu.Unlock()
}

// Dropped returns how many spans have been discarded to stay within
// capacity.
func (tl *Timeline) Dropped() uint64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.dropped
}

// Record appends one span, evicting the oldest if at capacity. start
// and end are wall-clock instants.
func (tl *Timeline) Record(name string, wave, shards int, start, end time.Time) {
	s := WaveSpan{
		Name:   name,
		Wave:   wave,
		Shards: shards,
		Start:  start.Sub(tl.epoch),
		End:    end.Sub(tl.epoch),
	}
	tl.mu.Lock()
	if tl.cap <= 0 { // zero-value safety
		tl.cap = DefaultTimelineCapacity
	}
	if len(tl.spans) < tl.cap {
		tl.spans = append(tl.spans, s)
		tl.next = len(tl.spans) % tl.cap
	} else {
		tl.spans[tl.next] = s
		tl.next = (tl.next + 1) % tl.cap
		tl.dropped++
	}
	tl.mu.Unlock()
}

// orderedLocked returns the retained spans in recording order. Caller
// holds tl.mu.
func (tl *Timeline) orderedLocked() []WaveSpan {
	out := make([]WaveSpan, 0, len(tl.spans))
	if len(tl.spans) == tl.cap && tl.dropped > 0 {
		out = append(out, tl.spans[tl.next:]...)
		out = append(out, tl.spans[:tl.next]...)
	} else {
		out = append(out, tl.spans...)
	}
	return out
}

// Spans returns a copy of the recorded spans in stable (Start, Wave,
// Name) order. Recording order is not deterministic when several
// engines share one timeline — spans arrive interleaved by goroutine
// scheduling — so callers comparing or rendering timelines get a
// reproducible sequence instead.
func (tl *Timeline) Spans() []WaveSpan {
	tl.mu.Lock()
	out := tl.orderedLocked()
	tl.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Wave != out[j].Wave {
			return out[i].Wave < out[j].Wave
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Reset drops all spans and restarts the epoch. Capacity is kept.
func (tl *Timeline) Reset() {
	tl.mu.Lock()
	tl.spans = tl.spans[:0]
	tl.next = 0
	tl.dropped = 0
	tl.epoch = time.Now()
	tl.mu.Unlock()
}

// MaxConcurrent returns the largest number of spans in flight at one
// instant — 1 for a fully serial timeline, >= 2 when dispatch phases
// overlapped (the signature of a pipelined run).
func (tl *Timeline) MaxConcurrent() int {
	spans := tl.Spans()
	type event struct {
		at    time.Duration
		delta int
	}
	evs := make([]event, 0, 2*len(spans))
	for _, s := range spans {
		evs = append(evs, event{s.Start, +1}, event{s.End, -1})
	}
	// Sort ends before starts at equal instants: touching spans do not
	// count as concurrent.
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].delta < evs[j].delta
	})
	cur, best := 0, 0
	for _, ev := range evs {
		cur += ev.delta
		if cur > best {
			best = cur
		}
	}
	return best
}

// Render draws the timeline as an ASCII Gantt chart, one row per span,
// width columns wide. Rows follow Spans()'s stable (Start, Wave, Name)
// order, so a pipelined run shows bars whose horizontal extents
// interleave.
func (tl *Timeline) Render(width int) string {
	spans := tl.Spans()
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	if width < 10 {
		width = 10
	}
	var t0, t1 time.Duration
	t0 = spans[0].Start
	for _, s := range spans {
		if s.Start < t0 {
			t0 = s.Start
		}
		if s.End > t1 {
			t1 = s.End
		}
	}
	total := t1 - t0
	if total <= 0 {
		total = 1
	}
	col := func(at time.Duration) int {
		c := int(int64(at-t0) * int64(width) / int64(total))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %s  duration\n", "wave/phase", strings.Repeat("-", width))
	for _, s := range spans {
		c0, c1 := col(s.Start), col(s.End)
		if c1 <= c0 {
			c1 = c0 + 1
			if c1 > width {
				c0, c1 = width-1, width
			}
		}
		bar := strings.Repeat(" ", c0) + strings.Repeat("#", c1-c0) + strings.Repeat(" ", width-c1)
		fmt.Fprintf(&b, "w%03d %-13s %s  %8.3gms\n", s.Wave, s.Name, bar,
			float64(s.End-s.Start)/float64(time.Millisecond))
	}
	fmt.Fprintf(&b, "max concurrent spans: %d\n", tl.MaxConcurrent())
	return b.String()
}

package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenTrace builds a deterministic request-shaped trace: every span
// is stamped retroactively at fixed offsets from the epoch, so the
// export is byte-stable regardless of wall-clock speed.
func goldenTrace() *Trace {
	tr := NewTracer(TracerConfig{})
	root := tr.StartTrace("infer")
	epoch := root.Trace().Epoch()
	at := func(us int64) time.Time { return epoch.Add(time.Duration(us) * time.Microsecond) }

	root.SetAttrStr("model", "tiny")
	root.SetAttr("batch_size", 2)

	adm := root.StartChildAt("admission", at(1))
	adm.EndAt(at(2))
	q := root.StartChildAt("queue_wait", at(2))
	q.EndAt(at(10))

	batch := root.StartChildAt("batch_exec", at(10))
	w0 := batch.StartChildAt("wave", at(12))
	w0.SetAttr("wave", 0)
	w0.SetAttr("shards", 2)
	k0 := w0.StartChildAt("dpu_kernel", at(12))
	k0.SetAttr("dpu", 0)
	k0.EndAt(at(40))
	w0.EndAt(at(50))
	// Overlaps w0 (pipelined), so lane packing must split them.
	w1 := batch.StartChildAt("wave", at(45))
	w1.SetAttr("wave", 1)
	w1.EndAt(at(88))
	batch.EndAt(at(90))

	root.EndAt(at(100))
	return root.Trace()
}

// TestPerfettoGolden pins the exact trace-event JSON for the canonical
// request tree (regenerate with: go test ./internal/trace -run Golden -update).
func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, goldenTrace()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "perfetto_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("perfetto export drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPerfettoSchema validates the fields a trace-event viewer relies
// on: the top-level traceEvents array, ph/ts/pid/tid on every record,
// dur on complete slices, and that no two slices overlap on one lane.
func TestPerfettoSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, goldenTrace()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	type window struct{ start, end float64 }
	lanes := map[[2]uint64][]window{}
	slices := 0
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph != "X" && ph != "M" {
			t.Fatalf("event %d: ph = %q, want X or M", i, ph)
		}
		if name, _ := ev["name"].(string); name == "" {
			t.Fatalf("event %d: empty name", i)
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event %d: bad ts %v", i, ev["ts"])
		}
		pid, ok := ev["pid"].(float64)
		if !ok || pid != 1 {
			t.Fatalf("event %d: pid %v, want trace ID 1", i, ev["pid"])
		}
		tid, ok := ev["tid"].(float64)
		if !ok || tid < 0 {
			t.Fatalf("event %d: bad tid %v", i, ev["tid"])
		}
		if ph != "X" {
			continue
		}
		slices++
		dur, ok := ev["dur"].(float64)
		if !ok || dur < 0 {
			t.Fatalf("slice %d: bad dur %v", i, ev["dur"])
		}
		key := [2]uint64{uint64(pid), uint64(tid)}
		for _, w := range lanes[key] {
			if ts < w.end && w.start < ts+dur {
				t.Errorf("slice %q [%v,%v] overlaps another on pid=%v tid=%v",
					ev["name"], ts, ts+dur, pid, tid)
			}
		}
		lanes[key] = append(lanes[key], window{ts, ts + dur})
	}
	// Root + admission + queue_wait + batch_exec + 2 waves + kernel.
	if slices != 7 {
		t.Errorf("exported %d complete slices, want 7", slices)
	}
	if doc.Unit != "ns" {
		t.Errorf("displayTimeUnit %q", doc.Unit)
	}
}

// TestTimelinePerfetto: the wave-timeline export emits valid slices
// with wave/shard args.
func TestTimelinePerfetto(t *testing.T) {
	tl := NewTimeline()
	base := time.Now()
	tl.Record("scatter", 0, 4, base, base.Add(5*time.Microsecond))
	tl.Record("launch", 0, 4, base.Add(5*time.Microsecond), base.Add(20*time.Microsecond))
	var buf bytes.Buffer
	if err := TimelinePerfetto(&buf, tl); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var found int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			found++
			if ev.Args["wave"] == nil || ev.Args["shards"] == nil {
				t.Errorf("slice %q missing wave/shards args", ev.Name)
			}
		}
	}
	if found != 2 {
		t.Errorf("%d slices, want 2", found)
	}
}

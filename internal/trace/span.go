package trace

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing. A Tracer mints Traces (one per sampled
// request); each Trace is a tree of Spans rooted at the request span.
// Spans live on the hot dispatch path, so the disabled case must cost
// one nil check and zero allocations: a nil *Span (and a nil *Tracer)
// is the "tracing off" value, and every method on both is nil-safe.
// This mirrors the internal/metrics contract — instruments observe,
// they never steer — so traced runs stay bit-identical to untraced
// ones.
//
// Completed traces are delivered to an optional FlightRecorder when
// their root span ends; exports (Perfetto JSON, summaries) read from
// there.

// TraceID identifies one trace. IDs are minted sequentially per
// Tracer, so tests and golden files are deterministic.
type TraceID uint64

// SpanID identifies one span within its trace (sequential, 1 = root).
type SpanID uint64

// Attr is one span attribute. Val carries numeric attributes; Str, when
// non-empty, carries string attributes. A two-field value (no
// interface{}) keeps SetAttr allocation-free aside from the slice
// append.
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
	Str string `json:"str,omitempty"`
}

// SpanNode is one finished span as stored in its Trace: a flat record
// linked to its parent by ID. Start and End are offsets from the trace
// epoch (marshalled as nanoseconds).
type SpanNode struct {
	ID     SpanID        `json:"id"`
	Parent SpanID        `json:"parent"` // 0 for the root
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	End    time.Duration `json:"end_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Trace is one request's span tree. Spans append their finished
// records here; the trace completes when its root span ends.
type Trace struct {
	id    TraceID
	name  string
	epoch time.Time

	mu       sync.Mutex
	seq      SpanID
	nodes    []SpanNode
	maxSpans int
	dropped  int
	done     bool

	onDone func(*Trace) // tracer -> recorder delivery, set at mint time
}

// ID returns the trace's identifier.
func (tr *Trace) ID() TraceID { return tr.id }

// Name returns the root span's name.
func (tr *Trace) Name() string { return tr.name }

// Epoch returns the wall-clock instant span offsets are relative to.
func (tr *Trace) Epoch() time.Time { return tr.epoch }

// Complete reports whether the root span has ended.
func (tr *Trace) Complete() bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.done
}

// Dropped returns how many spans were discarded because the trace hit
// its per-trace span cap.
func (tr *Trace) Dropped() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.dropped
}

// Spans returns a copy of the finished spans in stable (Start, ID)
// order. Span end order is scheduling-dependent when engine goroutines
// share the trace, so callers get a reproducible sequence.
func (tr *Trace) Spans() []SpanNode {
	tr.mu.Lock()
	out := make([]SpanNode, len(tr.nodes))
	copy(out, tr.nodes)
	tr.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Root returns the root span's node and whether it has finished.
func (tr *Trace) Root() (SpanNode, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.nodes {
		if tr.nodes[i].ID == 1 {
			return tr.nodes[i], true
		}
	}
	return SpanNode{}, false
}

// Duration returns the root span's duration, or 0 if the trace has not
// completed.
func (tr *Trace) Duration() time.Duration {
	if root, ok := tr.Root(); ok {
		return root.End - root.Start
	}
	return 0
}

// record appends one finished node, enforcing the per-trace cap. The
// root node always lands (it carries the trace's identity).
func (tr *Trace) record(n SpanNode) {
	tr.mu.Lock()
	if tr.maxSpans > 0 && len(tr.nodes) >= tr.maxSpans && n.ID != 1 {
		tr.dropped++
		tr.mu.Unlock()
		return
	}
	tr.nodes = append(tr.nodes, n)
	fire := false
	if n.ID == 1 && !tr.done {
		tr.done = true
		fire = true
	}
	tr.mu.Unlock()
	if fire && tr.onDone != nil {
		tr.onDone(tr)
	}
}

// nextID mints the next span ID in this trace.
func (tr *Trace) nextID() SpanID {
	tr.mu.Lock()
	tr.seq++
	id := tr.seq
	tr.mu.Unlock()
	return id
}

// Span is one live (un-ended) span. A nil *Span means tracing is
// disabled on this path: every method no-ops, so call sites pay one
// branch. Span values are not safe for concurrent mutation — each
// goroutine works on its own child span — but creating children of a
// shared parent from several goroutines is safe (the trace's mutex
// serializes record/nextID).
type Span struct {
	tr     *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Duration
	attrs  []Attr
}

// StartTrace begins a new trace rooted at a span called name. It
// returns nil (tracing disabled) when t is nil or this request is
// sampled out; callers hand the nil on down the stack unexamined.
func (t *Tracer) StartTrace(name string) *Span {
	if t == nil {
		return nil
	}
	if t.sample > 1 {
		if (t.sampleCnt.Add(1)-1)%uint64(t.sample) != 0 {
			return nil
		}
	}
	tr := &Trace{
		id:       TraceID(t.seq.Add(1)),
		name:     name,
		epoch:    time.Now(),
		maxSpans: t.maxSpans,
		onDone:   t.deliver,
	}
	tr.seq = 1 // root took ID 1
	return &Span{tr: tr, id: 1, name: name, start: 0}
}

// Trace returns the span's trace, or nil for a disabled span.
func (sp *Span) Trace() *Trace {
	if sp == nil {
		return nil
	}
	return sp.tr
}

// TraceID returns the owning trace's ID, or 0 for a disabled span.
func (sp *Span) TraceID() TraceID {
	if sp == nil {
		return 0
	}
	return sp.tr.id
}

// StartChild begins a child span starting now.
func (sp *Span) StartChild(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.StartChildAt(name, time.Now())
}

// StartChildAt begins a child span with an explicit start instant —
// used to stamp spans retroactively (queue commands, simulated kernel
// windows) without observing the clock on the instrumented path.
func (sp *Span) StartChildAt(name string, start time.Time) *Span {
	if sp == nil {
		return nil
	}
	return &Span{
		tr:     sp.tr,
		id:     sp.tr.nextID(),
		parent: sp.id,
		name:   name,
		start:  start.Sub(sp.tr.epoch),
	}
}

// SetAttr attaches a numeric attribute.
func (sp *Span) SetAttr(key string, val int64) {
	if sp == nil {
		return
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Val: val})
}

// SetAttrStr attaches a string attribute.
func (sp *Span) SetAttrStr(key, val string) {
	if sp == nil {
		return
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Str: val})
}

// End finishes the span now. Ending the root span completes the trace
// and delivers it to the tracer's recorder.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.EndAt(time.Now())
}

// EndAt finishes the span at an explicit instant.
func (sp *Span) EndAt(end time.Time) {
	if sp == nil {
		return
	}
	sp.tr.record(SpanNode{
		ID:     sp.id,
		Parent: sp.parent,
		Name:   sp.name,
		Start:  sp.start,
		End:    end.Sub(sp.tr.epoch),
		Attrs:  sp.attrs,
	})
}

// AdoptSubtree copies the finished descendants of src (including src's
// own node, if finished) into sp's trace as children of sp. Co-batched
// requests use it: the batch leader's trace carries the real exec
// subtree, and each follower adopts a copy so every request's trace
// shows the full path to the DPU launches it shared. Offsets are
// rebased between the two traces' epochs; IDs are re-minted in the
// destination. Adopting from a nil src or into a nil sp is a no-op.
func (sp *Span) AdoptSubtree(src *Span) {
	if sp == nil || src == nil || src.tr == sp.tr {
		return
	}
	// Phase 1: snapshot the source subtree (source lock only).
	src.tr.mu.Lock()
	sub := subtreeNodes(src.tr.nodes, src.id)
	src.tr.mu.Unlock()
	if len(sub) == 0 {
		return
	}
	shift := src.tr.epoch.Sub(sp.tr.epoch)
	// Phase 2: remint IDs and append (destination lock only, via the
	// public record path so the span cap still applies).
	idMap := make(map[SpanID]SpanID, len(sub))
	for _, n := range sub {
		idMap[n.ID] = sp.tr.nextID()
	}
	for _, n := range sub {
		parent, ok := idMap[n.Parent]
		if !ok {
			parent = sp.id // subtree root re-parents under sp
		}
		attrs := make([]Attr, len(n.Attrs))
		copy(attrs, n.Attrs)
		sp.tr.record(SpanNode{
			ID:     idMap[n.ID],
			Parent: parent,
			Name:   n.Name,
			Start:  n.Start + shift,
			End:    n.End + shift,
			Attrs:  attrs,
		})
	}
}

// subtreeNodes returns the nodes reachable from root (inclusive) in
// nodes, walking parent links. Caller holds the trace mutex.
func subtreeNodes(nodes []SpanNode, root SpanID) []SpanNode {
	in := map[SpanID]bool{root: true}
	// Nodes are appended as spans end (children before parents, mostly),
	// so iterate until the reachable set stops growing.
	var out []SpanNode
	for {
		grew := false
		for _, n := range nodes {
			if !in[n.ID] && in[n.Parent] {
				in[n.ID] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	for _, n := range nodes {
		if in[n.ID] {
			out = append(out, n)
		}
	}
	return out
}

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// Sample keeps 1 in Sample traces (head sampling; <=1 keeps all).
	Sample int
	// Ring is the flight-recorder capacity in traces (<=0: 64).
	Ring int
	// MaxSpans caps spans per trace (<=0: 4096). The cap bounds memory
	// on pathological requests; dropped spans are counted on the trace.
	MaxSpans int
	// OnDump, when set, receives every flight-recorder dump (e.g. to
	// write it to disk). Called synchronously from Dump.
	OnDump func(*DumpRecord)
}

// Tracer mints traces and owns the flight recorder that retains them.
// A nil *Tracer is the disabled tracer: StartTrace returns nil.
type Tracer struct {
	sample    int
	maxSpans  int
	seq       atomic.Uint64
	sampleCnt atomic.Uint64
	rec       *FlightRecorder
}

// NewTracer creates a tracer with an attached flight recorder.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = 64
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 4096
	}
	return &Tracer{
		sample:   cfg.Sample,
		maxSpans: cfg.MaxSpans,
		rec:      NewFlightRecorder(cfg.Ring, cfg.OnDump),
	}
}

// Recorder returns the tracer's flight recorder (nil for a nil tracer).
func (t *Tracer) Recorder() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// deliver hands a completed trace to the flight recorder.
func (t *Tracer) deliver(tr *Trace) {
	if t == nil || t.rec == nil {
		return
	}
	t.rec.Add(tr)
}

// ctxKey is the context key for span propagation.
type ctxKey struct{}

// NewContext returns ctx carrying sp. A nil sp is carried as-is so
// FromContext stays a plain nil on disabled paths.
func NewContext(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

package trace

import (
	"testing"
	"time"
)

// The Timeline used to grow its span slice without bound — a
// long-running server recording four spans per wave leaked memory until
// restart. These tests pin the capacity-capped drop-oldest behavior.

func recordN(tl *Timeline, n int) {
	base := time.Now()
	for i := 0; i < n; i++ {
		at := base.Add(time.Duration(i) * time.Microsecond)
		tl.Record("wave", i, 4, at, at.Add(time.Microsecond))
	}
}

// TestTimelineCapDropsOldest: recording past capacity retains exactly
// the newest cap spans, in order, and counts the drops.
func TestTimelineCapDropsOldest(t *testing.T) {
	tl := NewTimeline()
	tl.SetCapacity(8)
	recordN(tl, 20)
	spans := tl.Spans()
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want 8", len(spans))
	}
	for i, s := range spans {
		if s.Wave != 12+i {
			t.Errorf("span %d is wave %d, want %d (oldest must drop first)", i, s.Wave, 12+i)
		}
	}
	if tl.Dropped() != 12 {
		t.Errorf("Dropped() = %d, want 12", tl.Dropped())
	}
}

// TestTimelineUnboundedGrowthRegression: with no explicit capacity the
// default bound must hold — this is the leak regression.
func TestTimelineUnboundedGrowthRegression(t *testing.T) {
	tl := NewTimeline()
	recordN(tl, DefaultTimelineCapacity+100)
	if got := len(tl.Spans()); got != DefaultTimelineCapacity {
		t.Errorf("timeline grew to %d spans, want default cap %d", got, DefaultTimelineCapacity)
	}
	if tl.Dropped() != 100 {
		t.Errorf("Dropped() = %d, want 100", tl.Dropped())
	}
}

// TestTimelineSetCapacityShrink: shrinking keeps the newest spans.
func TestTimelineSetCapacityShrink(t *testing.T) {
	tl := NewTimeline()
	recordN(tl, 10)
	tl.SetCapacity(4)
	spans := tl.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans after shrink, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Wave != 6+i {
			t.Errorf("span %d is wave %d, want %d", i, s.Wave, 6+i)
		}
	}
	// Recording continues in the shrunken ring.
	recordN(tl, 2)
	if got := len(tl.Spans()); got != 4 {
		t.Errorf("ring grew past shrunken cap: %d", got)
	}
	// Restore default via n <= 0.
	tl.SetCapacity(0)
	recordN(tl, 10)
	if got := len(tl.Spans()); got != 14 {
		t.Errorf("after cap reset, retained %d spans, want 14", got)
	}
}

// TestTimelineResetKeepsCapacity: Reset clears spans and drop counts
// but not the configured bound.
func TestTimelineResetKeepsCapacity(t *testing.T) {
	tl := NewTimeline()
	tl.SetCapacity(4)
	recordN(tl, 10)
	tl.Reset()
	if len(tl.Spans()) != 0 || tl.Dropped() != 0 {
		t.Fatal("Reset left spans or drop counts behind")
	}
	recordN(tl, 10)
	if got := len(tl.Spans()); got != 4 {
		t.Errorf("capacity lost across Reset: retained %d, want 4", got)
	}
}

package alexnet

import (
	"math/rand"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/model"
	"pimdnn/internal/tensor"
)

func randInput(size int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(3, size, size)
	for i := range t.Data {
		t.Data[i] = tensor.Quantize(rng.Float64())
	}
	return t
}

// TestFullShapes checks the canonical 227×227 pyramid.
func TestFullShapes(t *testing.T) {
	n, err := New(FullConfig())
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		layer   int
		c, h, w int
	}{
		{0, 96, 55, 55},  // conv1
		{1, 96, 27, 27},  // pool1
		{2, 256, 27, 27}, // conv2
		{3, 256, 13, 13}, // pool2
		{4, 384, 13, 13}, // conv3
		{6, 256, 13, 13}, // conv5
		{7, 256, 6, 6},   // pool5
		{8, 4096, 1, 1},  // fc6
		{10, 1000, 1, 1}, // fc8
	}
	for _, ck := range checks {
		c, h, w := n.Shape(ck.layer)
		if c != ck.c || h != ck.h || w != ck.w {
			t.Errorf("layer %d = %dx%dx%d, want %dx%dx%d", ck.layer, c, h, w, ck.c, ck.h, ck.w)
		}
	}
}

// TestMACsMatchChapter5 cross-checks the implemented network against the
// thesis's Table 5.1 operation count: 2.59e9 total operations ≈ 2 ops per
// MAC of the ungrouped network (~1.14e9 MACs), within the slack of
// counting conventions.
func TestMACsMatchChapter5(t *testing.T) {
	n, err := New(FullConfig())
	if err != nil {
		t.Fatal(err)
	}
	macs := float64(n.MACs())
	if macs < 1.0e9 || macs > 1.3e9 {
		t.Errorf("AlexNet MACs = %.4g, want ~1.14e9 (ungrouped)", macs)
	}
	ratio := model.AlexNetTOPs / macs
	if ratio < 1.8 || ratio > 2.6 {
		t.Errorf("Table 5.1 TOPs / implemented MACs = %.2f, want ~2 (mult+add counted separately)", ratio)
	}
	t.Logf("implemented AlexNet: %.4g MACs; thesis TOPs 2.59e9 (ratio %.2f)", macs, ratio)
}

func TestGeometryValidation(t *testing.T) {
	// 63 collapses at pool5; 67 is the smallest closing size.
	if _, err := New(Config{InputSize: 63, Classes: 10, WidthDiv: 8, Seed: 1}); err == nil {
		t.Error("collapsing geometry accepted")
	}
	if _, err := New(Config{InputSize: 67, Classes: 10, WidthDiv: 8, Seed: 1}); err != nil {
		t.Errorf("67-pixel geometry rejected: %v", err)
	}
	if _, err := New(Config{InputSize: 0, Classes: 10, WidthDiv: 8}); err == nil {
		t.Error("zero input accepted")
	}
}

func TestMaxPool(t *testing.T) {
	in := tensor.New(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = int16(i)
	}
	out := maxPool(in, 3, 2) // 4 -> (4-3)/2+1 = 1... no: (4-3)/2+1 = 1
	if out.H != 1 || out.W != 1 {
		t.Fatalf("pool out %dx%d", out.H, out.W)
	}
	if out.At(0, 0, 0) != 10 { // max of the 3x3 window = index 10
		t.Errorf("pool max = %d, want 10", out.At(0, 0, 0))
	}
	// 2x2 stride 2 over the same input.
	out = maxPool(in, 2, 2)
	want := []int16{5, 7, 13, 15}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("pool[%d] = %d, want %d", i, out.Data[i], w)
		}
	}
}

func TestForwardHostRuns(t *testing.T) {
	n, err := New(LiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(n.Cfg.InputSize, 1)
	logits, _, err := n.Forward(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != n.Cfg.Classes {
		t.Fatalf("logits = %d, want %d", len(logits), n.Cfg.Classes)
	}
	if p := Predict(logits); p < 0 || p >= n.Cfg.Classes {
		t.Errorf("predict = %d", p)
	}
}

func TestForwardInputValidation(t *testing.T) {
	n, _ := New(LiteConfig())
	if _, _, err := n.Forward(tensor.New(3, 32, 32), nil); err == nil {
		t.Error("wrong size accepted")
	}
	if _, _, err := n.Forward(tensor.New(1, 67, 67), nil); err == nil {
		t.Error("wrong channels accepted")
	}
}

// TestForwardDPUMatchesHost: the DPU-delegated AlexNet must agree with
// the host reference bit-for-bit, including the FC layers' N=1 GEMMs.
func TestForwardDPUMatchesHost(t *testing.T) {
	n, err := New(LiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(n.Cfg.InputSize, 2)
	want, _, err := n.Forward(in, nil)
	if err != nil {
		t.Fatal(err)
	}

	maxK, maxN, _ := n.GEMMBounds()
	sys, _ := host.NewSystem(8, host.DefaultConfig(dpu.O3))
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := n.Forward(in, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: DPU %d, host %d", i, got[i], want[i])
		}
	}
	// 5 conv + 3 FC delegated layers.
	if len(stats.Layers) != 8 {
		t.Errorf("delegated layers = %d, want 8", len(stats.Layers))
	}
	if stats.Seconds <= 0 {
		t.Error("no DPU time")
	}
}

// TestForwardFaultRecovery: a forward pass with a quarter of the DPUs
// killed after their first launch must still produce bit-identical
// logits — the execution engine re-dispatches every dead DPU's row
// shard onto a survivor — and the recovery must be visible in the
// ForwardStats retry counters.
func TestForwardFaultRecovery(t *testing.T) {
	n, err := New(LiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(n.Cfg.InputSize, 4)
	want, _, err := n.Forward(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxK, maxN, _ := n.GEMMBounds()
	for _, mode := range []struct {
		name string
		mode host.PipelineMode
	}{{"sync", host.PipelineOff}, {"pipelined", host.PipelineOn}} {
		t.Run(mode.name, func(t *testing.T) {
			sys, err := host.NewSystem(8, host.DefaultConfig(dpu.O3))
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
				MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64, Pipeline: mode.mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			sys.InjectFaults(dpu.FaultPlan{Seed: 1, DeadFrac: 0.25, DeadAfterLaunches: 1})
			got, stats, err := n.Forward(in, r)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("logit %d: degraded %d, host %d (must be bit-identical)", i, got[i], want[i])
				}
			}
			if stats.Retries == 0 {
				t.Error("no re-dispatches recorded; the fault plan should have killed DPUs")
			}
			var layerRetries int
			for _, ls := range stats.Layers {
				layerRetries += ls.Retries
			}
			if layerRetries != stats.Retries {
				t.Errorf("layer retries sum %d != total %d", layerRetries, stats.Retries)
			}
		})
	}
}

// TestFCWavesOnSmallSystem: an FC layer has M rows but N=1 columns, so
// the row-per-DPU mapping needs ceil(M/DPUs) waves — the mapping's worst
// case, which the thesis's dynamic DPU assignment exists to mitigate.
func TestFCWavesOnSmallSystem(t *testing.T) {
	n, err := New(LiteConfig()) // FC6 has 512 outputs at WidthDiv 8
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(n.Cfg.InputSize, 3)
	maxK, maxN, _ := n.GEMMBounds()
	sys, _ := host.NewSystem(4, host.DefaultConfig(dpu.O3))
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: 4, TileCols: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := n.Forward(in, r)
	if err != nil {
		t.Fatal(err)
	}
	var fcStat *LayerStat
	for i := range stats.Layers {
		if stats.Layers[i].Kind == FC {
			fcStat = &stats.Layers[i]
			break
		}
	}
	if fcStat == nil {
		t.Fatal("no FC layer stat")
	}
	if fcStat.DPUsUsed != 4 {
		t.Errorf("FC used %d DPUs", fcStat.DPUsUsed)
	}
}

func TestMACsGrowWithWidth(t *testing.T) {
	narrow, err := New(Config{InputSize: 67, Classes: 10, WidthDiv: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := New(Config{InputSize: 67, Classes: 10, WidthDiv: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if wide.MACs() <= narrow.MACs() {
		t.Errorf("wider network has fewer MACs: %d vs %d", wide.MACs(), narrow.MACs())
	}
}

func TestLayerKindString(t *testing.T) {
	if Conv.String() != "conv" || MaxPool.String() != "maxpool" || FC.String() != "fc" {
		t.Error("kind names")
	}
	if LayerKind(0).String() == "conv" {
		t.Error("zero kind")
	}
}

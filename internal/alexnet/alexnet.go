// Package alexnet implements a quantized AlexNet on the same substrate
// as the YOLOv3 workload: convolutions and fully-connected layers lower
// to the Algorithm 2 fixed-point GEMM and run on the simulated UPMEM
// system with the Fig 4.6 row-per-DPU mapping.
//
// AlexNet is the network the thesis's chapter 5 model is exercised on
// (Table 5.1 uses its operation count) and the first entry of the §6.1
// future-work list ("CNNs from AlexNet to ResNet"). Implementing it ties
// the two halves of the thesis together: the simulator runs the same
// workload the analytic model prices.
//
// The classic ungrouped geometry is used (grouping was a dual-GPU
// artifact); local response normalization is omitted as in most modern
// reimplementations. Weights are synthetic and seeded.
package alexnet

import (
	"fmt"
	"math/rand"

	"pimdnn/internal/fixed"
	"pimdnn/internal/gemm"
	"pimdnn/internal/tensor"
)

// LayerKind enumerates AlexNet layer types.
type LayerKind int

// Layer kinds.
const (
	Conv LayerKind = iota + 1
	MaxPool
	FC
)

func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case MaxPool:
		return "maxpool"
	case FC:
		return "fc"
	default:
		return "layer?"
	}
}

// LayerDef describes one layer.
type LayerDef struct {
	Kind    LayerKind
	Filters int // Conv: output channels; FC: output units
	Size    int // Conv/MaxPool: kernel edge
	Stride  int // Conv/MaxPool
	Pad     int // Conv
	ReLU    bool
}

// Config parameterizes the build.
type Config struct {
	// InputSize is the square input resolution. The canonical AlexNet
	// uses 227; the geometry also closes at 127 and 67 for simulation
	// (Validate rejects sizes whose pooling pyramid collapses).
	InputSize int
	// Classes is the classifier width (ImageNet: 1000).
	Classes int
	// WidthDiv divides channel and FC widths (minimum 2 channels / 8
	// units) to shrink the network for simulation; 1 is full AlexNet.
	WidthDiv int
	// Seed drives synthetic weight generation.
	Seed int64
}

// FullConfig is the canonical 227×227 ImageNet AlexNet.
func FullConfig() Config {
	return Config{InputSize: 227, Classes: 1000, WidthDiv: 1, Seed: 1}
}

// LiteConfig is a reduced network for simulation.
func LiteConfig() Config {
	return Config{InputSize: 67, Classes: 10, WidthDiv: 8, Seed: 1}
}

func (c Config) chans(ch int) int {
	w := ch / c.WidthDiv
	if w < 2 {
		w = 2
	}
	return w
}

func (c Config) units(u int) int {
	w := u / c.WidthDiv
	if w < 8 {
		w = 8
	}
	return w
}

// BuildLayers emits the AlexNet layer sequence.
func BuildLayers(cfg Config) ([]LayerDef, error) {
	if cfg.InputSize < 11 || cfg.Classes < 1 || cfg.WidthDiv < 1 {
		return nil, fmt.Errorf("alexnet: bad config %+v", cfg)
	}
	return []LayerDef{
		{Kind: Conv, Filters: cfg.chans(96), Size: 11, Stride: 4, Pad: 0, ReLU: true},
		{Kind: MaxPool, Size: 3, Stride: 2},
		{Kind: Conv, Filters: cfg.chans(256), Size: 5, Stride: 1, Pad: 2, ReLU: true},
		{Kind: MaxPool, Size: 3, Stride: 2},
		{Kind: Conv, Filters: cfg.chans(384), Size: 3, Stride: 1, Pad: 1, ReLU: true},
		{Kind: Conv, Filters: cfg.chans(384), Size: 3, Stride: 1, Pad: 1, ReLU: true},
		{Kind: Conv, Filters: cfg.chans(256), Size: 3, Stride: 1, Pad: 1, ReLU: true},
		{Kind: MaxPool, Size: 3, Stride: 2},
		{Kind: FC, Filters: cfg.units(4096), ReLU: true},
		{Kind: FC, Filters: cfg.units(4096), ReLU: true},
		{Kind: FC, Filters: cfg.Classes},
	}, nil
}

// Weights holds one GEMM-shaped layer's parameters.
type Weights struct {
	W    []int16 // M×K
	Bias []int16
}

type shape struct{ c, h, w int }

// Network is a built AlexNet.
type Network struct {
	Cfg     Config
	Defs    []LayerDef
	Weights []Weights
	shapes  []shape
}

// New builds the network, validating the geometry and generating seeded
// weights.
func New(cfg Config) (*Network, error) {
	defs, err := BuildLayers(cfg)
	if err != nil {
		return nil, err
	}
	n := &Network{Cfg: cfg, Defs: defs}
	n.Weights = make([]Weights, len(defs))
	n.shapes = make([]shape, len(defs))

	rng := rand.New(rand.NewSource(cfg.Seed))
	cur := shape{c: 3, h: cfg.InputSize, w: cfg.InputSize}
	for i, def := range defs {
		switch def.Kind {
		case Conv:
			if cur.h+2*def.Pad < def.Size || cur.w+2*def.Pad < def.Size {
				return nil, fmt.Errorf("alexnet: conv %d kernel %d exceeds %dx%d input (input size %d too small)",
					i, def.Size, cur.h, cur.w, cfg.InputSize)
			}
			outH := tensor.ConvOut(cur.h, def.Size, def.Stride, def.Pad)
			outW := tensor.ConvOut(cur.w, def.Size, def.Stride, def.Pad)
			k := cur.c * def.Size * def.Size
			n.Weights[i] = synthWeights(rng, def.Filters, k)
			cur = shape{c: def.Filters, h: outH, w: outW}
		case MaxPool:
			if cur.h < def.Size || cur.w < def.Size {
				return nil, fmt.Errorf("alexnet: pool %d window %d exceeds %dx%d input (input size %d too small)",
					i, def.Size, cur.h, cur.w, cfg.InputSize)
			}
			outH := tensor.ConvOut(cur.h, def.Size, def.Stride, 0)
			outW := tensor.ConvOut(cur.w, def.Size, def.Stride, 0)
			cur = shape{c: cur.c, h: outH, w: outW}
		case FC:
			k := cur.c * cur.h * cur.w
			n.Weights[i] = synthWeights(rng, def.Filters, k)
			cur = shape{c: def.Filters, h: 1, w: 1}
		}
		n.shapes[i] = cur
	}
	return n, nil
}

func synthWeights(rng *rand.Rand, m, k int) Weights {
	w := make([]int16, m*k)
	std := 1.0
	if k > 0 {
		std = 1.0 / float64sqrt(float64(k))
	}
	for i := range w {
		w[i] = tensor.Quantize(rng.NormFloat64() * std)
	}
	bias := make([]int16, m)
	for i := range bias {
		bias[i] = tensor.Quantize(rng.NormFloat64() * 0.1)
	}
	return Weights{W: w, Bias: bias}
}

func float64sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 24; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Shape returns layer i's output (C, H, W).
func (n *Network) Shape(i int) (c, h, w int) {
	s := n.shapes[i]
	return s.c, s.h, s.w
}

// MACs returns the network's multiply-accumulate count.
func (n *Network) MACs() int64 {
	var total int64
	cur := shape{c: 3, h: n.Cfg.InputSize, w: n.Cfg.InputSize}
	for i, def := range n.Defs {
		s := n.shapes[i]
		switch def.Kind {
		case Conv:
			k := int64(cur.c) * int64(def.Size) * int64(def.Size)
			total += k * int64(s.c) * int64(s.h) * int64(s.w)
		case FC:
			total += int64(cur.c) * int64(cur.h) * int64(cur.w) * int64(s.c)
		}
		cur = s
	}
	return total
}

// GEMMBounds returns the largest K and N any layer needs and the largest
// row count, for sizing a gemm.Runner.
func (n *Network) GEMMBounds() (maxK, maxN, maxM int) {
	cur := shape{c: 3, h: n.Cfg.InputSize, w: n.Cfg.InputSize}
	for i, def := range n.Defs {
		s := n.shapes[i]
		var k, cols, m int
		switch def.Kind {
		case Conv:
			k = cur.c * def.Size * def.Size
			cols = s.h * s.w
			m = s.c
		case FC:
			k = cur.c * cur.h * cur.w
			cols = 1
			m = s.c
		}
		if k > maxK {
			maxK = k
		}
		if cols > maxN {
			maxN = cols
		}
		if m > maxM {
			maxM = m
		}
		cur = s
	}
	return maxK, maxN, maxM
}

// maxPool applies a size×stride max pooling.
func maxPool(in *tensor.Tensor, size, stride int) *tensor.Tensor {
	outH := tensor.ConvOut(in.H, size, stride, 0)
	outW := tensor.ConvOut(in.W, size, stride, 0)
	out := tensor.New(in.C, outH, outW)
	for c := 0; c < in.C; c++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				best := int16(-32768)
				for dy := 0; dy < size; dy++ {
					for dx := 0; dx < size; dx++ {
						iy, ix := oy*stride+dy, ox*stride+dx
						if iy >= in.H || ix >= in.W {
							continue
						}
						if v := in.At(c, iy, ix); v > best {
							best = v
						}
					}
				}
				out.Set(c, oy, ox, best)
			}
		}
	}
	return out
}

// applyBiasReLU adds bias with saturation and applies ReLU in place.
func applyBiasReLU(c []int16, m, n int, bias []int16, relu bool) {
	for f := 0; f < m; f++ {
		b := bias[f]
		row := c[f*n : (f+1)*n]
		for j, v := range row {
			s := fixed.SatAdd16(v, b)
			if relu && s < 0 {
				s = 0
			}
			row[j] = s
		}
	}
}

// LayerStat records one delegated layer.
type LayerStat struct {
	Layer    int
	Kind     LayerKind
	DPUsUsed int
	Cycles   uint64
	Seconds  float64
	// Retries counts row shards re-dispatched after injected faults.
	Retries int
	// Tasklets is the per-DPU tasklet count the layer launched with.
	Tasklets int
	// PredictedSeconds is the planner's analytic latency for the layer;
	// zero when the runner runs a fixed mapping.
	PredictedSeconds float64
}

// ForwardStats aggregates a DPU forward pass.
type ForwardStats struct {
	Layers  []LayerStat
	Cycles  uint64
	Seconds float64
	// Retries sums the layers' fault re-dispatches; nonzero only
	// when the system runs under a fault plan.
	Retries int
}

// Forward runs one image. If runner is nil every GEMM uses the host
// reference; otherwise conv and FC layers are delegated to the DPU
// system. Both paths are bit-exact. The returned slice is the logits
// (one per class, Q10.5).
func (n *Network) Forward(input *tensor.Tensor, runner *gemm.Runner) ([]int16, *ForwardStats, error) {
	if input.C != 3 || input.H != n.Cfg.InputSize || input.W != n.Cfg.InputSize {
		return nil, nil, fmt.Errorf("alexnet: input %dx%dx%d, want 3x%dx%d",
			input.C, input.H, input.W, n.Cfg.InputSize, n.Cfg.InputSize)
	}
	stats := &ForwardStats{}
	cur := input
	runGEMM := func(layer, m, cols, k int, b []int16) ([]int16, error) {
		if runner == nil {
			return gemm.Reference(m, cols, k, 1, n.Weights[layer].W, b)
		}
		if runner.MetricsOn() {
			runner.SetScope(fmt.Sprintf("alexnet_layer%02d", layer))
		}
		if runner.ResidencyOn() {
			runner.SetWeightLayer(layer)
		}
		reqSp := runner.TraceSpan()
		if reqSp != nil {
			lsp := reqSp.StartChild(fmt.Sprintf("alexnet_layer%02d", layer))
			lsp.SetAttr("layer", int64(layer))
			runner.SetTraceSpan(lsp)
		}
		c, st, err := runner.Multiply(m, cols, k, 1, n.Weights[layer].W, b)
		if reqSp != nil {
			runner.TraceSpan().End()
			runner.SetTraceSpan(reqSp)
		}
		if err != nil {
			return nil, err
		}
		ls := LayerStat{
			Layer: layer, Kind: n.Defs[layer].Kind, DPUsUsed: st.DPUsUsed,
			Cycles: st.Cycles, Seconds: st.Seconds, Retries: st.Retries,
			Tasklets: st.Tasklets,
		}
		if mp, ok := runner.LastMapping(); ok {
			ls.PredictedSeconds = mp.PredictedSeconds
		}
		stats.Layers = append(stats.Layers, ls)
		stats.Cycles += st.Cycles
		stats.Seconds += st.Seconds
		stats.Retries += st.Retries
		return c, nil
	}

	// One im2col patch matrix reused across conv layers; the GEMM stages
	// it into DPU MRAM (or consumes it host-side) before returning.
	var im2colBuf []int16
	for i, def := range n.Defs {
		s := n.shapes[i]
		switch def.Kind {
		case Conv:
			b, k, cols := tensor.Im2ColInto(im2colBuf, cur, def.Size, def.Stride, def.Pad)
			im2colBuf = b
			c, err := runGEMM(i, def.Filters, cols, k, b)
			if err != nil {
				return nil, nil, fmt.Errorf("alexnet: layer %d: %w", i, err)
			}
			applyBiasReLU(c, def.Filters, cols, n.Weights[i].Bias, def.ReLU)
			cur = &tensor.Tensor{C: s.c, H: s.h, W: s.w, Data: c}
		case MaxPool:
			cur = maxPool(cur, def.Size, def.Stride)
		case FC:
			// The flattened activations form a K×1 B matrix.
			k := cur.Len()
			c, err := runGEMM(i, def.Filters, 1, k, cur.Data)
			if err != nil {
				return nil, nil, fmt.Errorf("alexnet: layer %d: %w", i, err)
			}
			applyBiasReLU(c, def.Filters, 1, n.Weights[i].Bias, def.ReLU)
			cur = &tensor.Tensor{C: s.c, H: 1, W: 1, Data: c}
		}
	}
	return cur.Data, stats, nil
}

// Predict returns the argmax class of the logits.
func Predict(logits []int16) int {
	best := 0
	for i := 1; i < len(logits); i++ {
		if logits[i] > logits[best] {
			best = i
		}
	}
	return best
}

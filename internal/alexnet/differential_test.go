package alexnet

import (
	"reflect"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
)

// TestForwardBlockChargingParity: the 8 delegated AlexNet GEMMs must be
// observationally identical between legacy per-operation charging and
// block charging — same logits, per-layer cycle stats, per-DPU clocks,
// and subroutine profiles.
func TestForwardBlockChargingParity(t *testing.T) {
	n, err := New(LiteConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(n.Cfg.InputSize, 2)
	maxK, maxN, _ := n.GEMMBounds()

	run := func(legacy bool) ([]int16, *ForwardStats, []uint64, map[string]uint64) {
		sys, err := host.NewSystem(8, host.DefaultConfig(dpu.O3))
		if err != nil {
			t.Fatal(err)
		}
		r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
			MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64, LegacyCharging: legacy,
		})
		if err != nil {
			t.Fatal(err)
		}
		logits, stats, err := n.Forward(in, r)
		if err != nil {
			t.Fatal(err)
		}
		cyc := make([]uint64, sys.NumDPUs())
		for i := range cyc {
			cyc[i] = sys.DPU(i).TotalCycles()
		}
		return logits, stats, cyc, sys.Profile().Snapshot()
	}

	legOut, legStats, legCyc, legProf := run(true)
	blkOut, blkStats, blkCyc, blkProf := run(false)

	if !reflect.DeepEqual(legOut, blkOut) {
		t.Error("logits diverge between legacy and block charging")
	}
	if !reflect.DeepEqual(legStats, blkStats) {
		t.Errorf("forward stats diverge:\nlegacy: %+v\nblock:  %+v", legStats, blkStats)
	}
	if !reflect.DeepEqual(legCyc, blkCyc) {
		t.Errorf("per-DPU cycles diverge:\nlegacy: %v\nblock:  %v", legCyc, blkCyc)
	}
	if !reflect.DeepEqual(legProf, blkProf) {
		t.Errorf("subroutine profiles diverge:\nlegacy: %v\nblock:  %v", legProf, blkProf)
	}
}

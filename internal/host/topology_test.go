package host

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"pimdnn/internal/dpu"
)

func topoSystem(t *testing.T, n int, topo Topology) *System {
	t.Helper()
	cfg := DefaultConfig(dpu.O0)
	cfg.Topology = topo
	s, err := NewSystem(n, cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func TestResolveTopology(t *testing.T) {
	cases := []struct {
		name          string
		n             int
		topo          Topology
		perRank, rank int
		wantErr       bool
	}{
		{name: "zero-value defaults", n: 2560, perRank: dpu.DPUsPerRank, rank: 40},
		{name: "single partial rank", n: 8, perRank: dpu.DPUsPerRank, rank: 1},
		{name: "explicit width", n: 8, topo: Topology{DPUsPerRank: 2}, perRank: 2, rank: 4},
		{name: "partial last rank", n: 10, topo: Topology{DPUsPerRank: 4}, perRank: 4, rank: 3},
		{name: "matching rank count", n: 128, topo: Topology{Ranks: 2, DPUsPerRank: 64}, perRank: 64, rank: 2},
		{name: "rank count mismatch", n: 128, topo: Topology{Ranks: 3, DPUsPerRank: 64}, wantErr: true},
		{name: "negative width", n: 8, topo: Topology{DPUsPerRank: -1}, wantErr: true},
	}
	for _, c := range cases {
		perRank, ranks, err := resolveTopology(c.n, c.topo)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: want error, got perRank=%d ranks=%d", c.name, perRank, ranks)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if perRank != c.perRank || ranks != c.rank {
			t.Errorf("%s: got perRank=%d ranks=%d, want %d/%d", c.name, perRank, ranks, c.perRank, c.rank)
		}
	}
}

func TestTopologyAccessors(t *testing.T) {
	s := topoSystem(t, 10, Topology{DPUsPerRank: 4})
	if s.Ranks() != 3 || s.DPUsPerRank() != 4 {
		t.Fatalf("got %d ranks of %d, want 3 of 4", s.Ranks(), s.DPUsPerRank())
	}
	if r := s.RankOf(0); r != 0 {
		t.Errorf("RankOf(0) = %d", r)
	}
	if r := s.RankOf(9); r != 2 {
		t.Errorf("RankOf(9) = %d, want 2", r)
	}
	if lo, hi := s.RankSpan(1); lo != 4 || hi != 8 {
		t.Errorf("RankSpan(1) = [%d, %d), want [4, 8)", lo, hi)
	}
	// The last rank is partially filled: its span ends at the DPU count.
	if lo, hi := s.RankSpan(2); lo != 8 || hi != 10 {
		t.Errorf("RankSpan(2) = [%d, %d), want [8, 10)", lo, hi)
	}
}

func TestRankOKErrs(t *testing.T) {
	s := topoSystem(t, 6, Topology{DPUsPerRank: 2})
	errBoom := errors.New("boom")

	// All OK: three ranks of two, busiest share is 2.
	errs := make([]error, 6)
	if nOK, busiest := s.rankOKErrs(errs); nOK != 6 || busiest != 2 {
		t.Errorf("all-ok: got nOK=%d busiest=%d, want 6/2", nOK, busiest)
	}
	// Kill one DPU of rank 0 and all of rank 1: rank 2 is now busiest.
	errs[1] = errBoom
	errs[2] = errBoom
	errs[3] = errBoom
	if nOK, busiest := s.rankOKErrs(errs); nOK != 3 || busiest != 2 {
		t.Errorf("partial: got nOK=%d busiest=%d, want 3/2", nOK, busiest)
	}
	// Nothing OK short-circuits without touching the tally.
	for i := range errs {
		errs[i] = errBoom
	}
	if nOK, busiest := s.rankOKErrs(errs); nOK != 0 || busiest != 0 {
		t.Errorf("none: got nOK=%d busiest=%d, want 0/0", nOK, busiest)
	}

	// A single-rank system reports busiest == nOK no matter the layout.
	s1 := topoSystem(t, 6, Topology{})
	errs = []error{nil, errBoom, nil, nil, errBoom, nil}
	if nOK, busiest := s1.rankOKErrs(errs); nOK != 4 || busiest != 4 {
		t.Errorf("single rank: got nOK=%d busiest=%d, want 4/4", nOK, busiest)
	}
}

func TestRankOKPhase(t *testing.T) {
	s := topoSystem(t, 6, Topology{DPUsPerRank: 2})
	const bit = uint8(1)
	phase := []uint8{1, 0, 1, 1, 0, 0}
	if nOK, busiest := s.rankOKPhase(phase, bit); nOK != 3 || busiest != 2 {
		t.Errorf("got nOK=%d busiest=%d, want 3/2", nOK, busiest)
	}
	if nOK, busiest := s.rankOKPhase(make([]uint8, 6), bit); nOK != 0 || busiest != 0 {
		t.Errorf("empty: got nOK=%d busiest=%d, want 0/0", nOK, busiest)
	}
}

// TestRankParallelTransferCharge pins the cost model: a scatter over R
// equally-loaded ranks is charged one rank's serial share, while the
// byte counters still record the full payload, and a single-rank system
// charges bit-identically to the flat pre-topology model.
func TestRankParallelTransferCharge(t *testing.T) {
	const n, perDPU = 8, 4096
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = make([]byte, perDPU)
	}
	push := func(s *System) time.Duration {
		t.Helper()
		if err := s.AllocMRAM("in", perDPU); err != nil {
			t.Fatal(err)
		}
		if err := s.PushXfer("in", 0, bufs); err != nil {
			t.Fatal(err)
		}
		return s.HostTransferTime()
	}

	flat := topoSystem(t, n, Topology{}) // one rank of 64 holds all 8
	multi := topoSystem(t, n, Topology{DPUsPerRank: 2})

	cfg := DefaultConfig(dpu.O0)
	wantFlat := cfg.TransferLatency +
		time.Duration(float64(perDPU*n)/cfg.TransferBandwidth*float64(time.Second))
	wantMulti := cfg.TransferLatency +
		time.Duration(float64(perDPU*2)/cfg.TransferBandwidth*float64(time.Second))

	if got := push(flat); got != wantFlat {
		t.Errorf("single-rank charge %v, want flat-model %v", got, wantFlat)
	}
	if got := push(multi); got != wantMulti {
		t.Errorf("4-rank charge %v, want busiest-rank share %v", got, wantMulti)
	}
	// Both record the same traffic: rank parallelism changes time, not bytes.
	fs, ms := flat.TransferStats(), multi.TransferStats()
	if fs.Bytes != uint64(perDPU*n) || ms.Bytes != fs.Bytes {
		t.Errorf("bytes: flat=%d multi=%d, want both %d", fs.Bytes, ms.Bytes, perDPU*n)
	}
}

// TestRunAlignedBoundaries drives runAligned on a hand-built pool with
// several workers and checks every shard boundary is rank-aligned and
// the shards tile [0, n) exactly.
func TestRunAlignedBoundaries(t *testing.T) {
	p := &workerPool{workers: 4, jobs: make(chan poolJob, 4)}
	for i := 0; i < p.workers; i++ {
		go p.worker()
	}
	defer p.close()

	for _, c := range []struct{ n, align int }{
		{n: 256, align: 64}, {n: 250, align: 64}, {n: 10, align: 4}, {n: 7, align: 1}, {n: 3, align: 64},
	} {
		var mu sync.Mutex
		var spans [][2]int
		touched := make([]int, c.n)
		p.runAligned(c.n, c.align, func(lo, hi int) {
			mu.Lock()
			spans = append(spans, [2]int{lo, hi})
			mu.Unlock()
			for i := lo; i < hi; i++ {
				touched[i]++
			}
		})
		for i, got := range touched {
			if got != 1 {
				t.Fatalf("n=%d align=%d: index %d covered %d times", c.n, c.align, i, got)
			}
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
		// A single alignment group (n <= align) degenerates to plain run:
		// every DPU shares one rank, so intra-rank boundaries are fine.
		if c.align > 1 && c.n > c.align {
			for _, sp := range spans {
				if sp[0]%c.align != 0 {
					t.Errorf("n=%d align=%d: shard starts at %d, not rank-aligned", c.n, c.align, sp[0])
				}
			}
		}
	}
}

package host

import (
	"bytes"
	"testing"

	"pimdnn/internal/dpu"
)

func newTestSystem(t *testing.T, n int) *System {
	t.Helper()
	s, err := NewSystem(n, DefaultConfig(dpu.O0))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	cfg := DefaultConfig(dpu.O0)
	if _, err := NewSystem(0, cfg); err == nil {
		t.Error("0 DPUs accepted")
	}
	if _, err := NewSystem(dpu.SystemDPUs+1, cfg); err == nil {
		t.Error("over-system allocation accepted")
	}
	bad := cfg
	bad.TransferBandwidth = 0
	if _, err := NewSystem(1, bad); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestBroadcastCopy(t *testing.T) {
	s := newTestSystem(t, 4)
	if err := s.AllocMRAM("weights", 64); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 32)
	if err := s.CopyToSymbol("weights", 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.GatherXfer("weights", 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if !bytes.Equal(b, data) {
			t.Errorf("DPU %d readback mismatch", i)
		}
	}
}

func TestPushXferScatters(t *testing.T) {
	s := newTestSystem(t, 3)
	if err := s.AllocMRAM("input", 64); err != nil {
		t.Fatal(err)
	}
	buffers := [][]byte{
		bytes.Repeat([]byte{1}, 16),
		bytes.Repeat([]byte{2}, 16),
		bytes.Repeat([]byte{3}, 16),
	}
	if err := s.PushXfer("input", 0, buffers); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b, err := s.CopyFromDPU(i, "input", 0, 16)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(i+1) {
			t.Errorf("DPU %d got %d, want %d", i, b[0], i+1)
		}
	}
}

func TestPushXferValidation(t *testing.T) {
	s := newTestSystem(t, 2)
	if err := s.AllocMRAM("input", 64); err != nil {
		t.Fatal(err)
	}
	if err := s.PushXfer("input", 0, [][]byte{make([]byte, 8)}); err == nil {
		t.Error("buffer-count mismatch accepted")
	}
	if err := s.PushXfer("input", 0, [][]byte{make([]byte, 8), make([]byte, 16)}); err == nil {
		t.Error("ragged buffer lengths accepted")
	}
}

func TestSymbolBounds(t *testing.T) {
	s := newTestSystem(t, 1)
	if err := s.AllocMRAM("buf", 32); err != nil {
		t.Fatal(err)
	}
	if err := s.CopyToSymbol("buf", 16, make([]byte, 24)); err == nil {
		t.Error("overflow of symbol accepted")
	}
	if err := s.CopyToSymbol("nosuch", 0, make([]byte, 8)); err == nil {
		t.Error("unknown symbol accepted")
	}
	if _, err := s.GatherXfer("buf", -8, 8); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestWRAMSymbolTransfer(t *testing.T) {
	s := newTestSystem(t, 2)
	if err := s.AllocWRAM("nimages", 8); err != nil {
		t.Fatal(err)
	}
	// WRAM host variables do not need 8-byte granularity.
	if err := s.CopyToSymbol("nimages", 0, []byte{16, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	b, err := s.CopyFromDPU(1, "nimages", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 16 {
		t.Errorf("WRAM var = %d, want 16", b[0])
	}
}

func TestLaunchParallelMax(t *testing.T) {
	s := newTestSystem(t, 4)
	// DPU i does (i+1)*100 adds; system time is the max (DPU 3).
	ls, err := s.Launch(1, func(tk *dpu.Tasklet) error {
		// Every DPU runs the same kernel; differentiate via WRAM state
		// is overkill here — charge uniformly and check aggregation.
		tk.Charge(dpu.OpAddInt, 100)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.PerDPU) != 4 {
		t.Fatalf("PerDPU len = %d", len(ls.PerDPU))
	}
	for i, st := range ls.PerDPU {
		if st.Cycles != ls.PerDPU[0].Cycles {
			t.Errorf("DPU %d cycles %d differ", i, st.Cycles)
		}
	}
	if ls.Cycles != ls.PerDPU[0].Cycles {
		t.Errorf("system cycles %d != max %d", ls.Cycles, ls.PerDPU[0].Cycles)
	}
	if ls.Seconds <= 0 || ls.Time <= 0 {
		t.Error("non-positive launch time")
	}
}

func TestLaunchOnSubset(t *testing.T) {
	s := newTestSystem(t, 8)
	ls, err := s.LaunchOn(3, 2, func(tk *dpu.Tasklet) error {
		tk.Charge(dpu.OpAddInt, 10)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.PerDPU) != 3 {
		t.Errorf("LaunchOn(3) ran %d DPUs", len(ls.PerDPU))
	}
	if _, err := s.LaunchOn(9, 1, func(tk *dpu.Tasklet) error { return nil }); err == nil {
		t.Error("LaunchOn beyond system size accepted")
	}
	if _, err := s.LaunchOn(0, 1, func(tk *dpu.Tasklet) error { return nil }); err == nil {
		t.Error("LaunchOn(0) accepted")
	}
}

func TestLaunchPropagatesKernelError(t *testing.T) {
	s := newTestSystem(t, 2)
	_, err := s.Launch(1, func(tk *dpu.Tasklet) error {
		tk.Load8(-1) // traps
		return nil
	})
	if err == nil {
		t.Error("kernel fault not propagated")
	}
}

func TestClocksAccumulate(t *testing.T) {
	s := newTestSystem(t, 2)
	if err := s.AllocMRAM("x", 1024); err != nil {
		t.Fatal(err)
	}
	if err := s.CopyToSymbol("x", 0, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if s.HostTransferTime() <= 0 {
		t.Error("host clock did not advance")
	}
	if _, err := s.Launch(1, func(tk *dpu.Tasklet) error {
		tk.Charge(dpu.OpAddInt, 1000)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if s.DPUTime() <= 0 {
		t.Error("DPU clock did not advance")
	}
	s.ResetClocks()
	if s.HostTransferTime() != 0 || s.DPUTime() != 0 {
		t.Error("ResetClocks did not zero")
	}
}

func TestTransferStats(t *testing.T) {
	s := newTestSystem(t, 4)
	if err := s.AllocMRAM("x", 1024); err != nil {
		t.Fatal(err)
	}
	if err := s.CopyToSymbol("x", 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	st := s.TransferStats()
	if st.Transfers != 1 {
		t.Errorf("Transfers = %d, want 1", st.Transfers)
	}
	if st.Bytes != 512*4 { // broadcast to 4 DPUs
		t.Errorf("Bytes = %d, want 2048", st.Bytes)
	}
	if st.Time <= 0 {
		t.Error("no transfer time")
	}
	if _, err := s.GatherXfer("x", 0, 64); err != nil {
		t.Fatal(err)
	}
	st = s.TransferStats()
	if st.Transfers != 2 || st.Bytes != 512*4+64*4 {
		t.Errorf("after gather: %+v", st)
	}
	s.ResetClocks()
	if st := s.TransferStats(); st.Transfers != 0 || st.Bytes != 0 || st.Time != 0 {
		t.Errorf("ResetClocks left %+v", st)
	}
}

func TestSharedProfile(t *testing.T) {
	s := newTestSystem(t, 3)
	if _, err := s.Launch(1, func(tk *dpu.Tasklet) error {
		tk.FAdd(1, 2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Profile().Occ("__addsf3"); got != 3 {
		t.Errorf("aggregate __addsf3 occ = %d, want 3 (one per DPU)", got)
	}
}

func TestPad8(t *testing.T) {
	tests := []struct {
		give     int
		wantLen  int
		wantOrig int
	}{
		{0, 0, 0},
		{1, 8, 1},
		{7, 8, 7},
		{8, 8, 8},
		{9, 16, 9},
		{784, 784, 784}, // one MNIST image is already 8-aligned
	}
	for _, tt := range tests {
		p, orig := Pad8(make([]byte, tt.give))
		if len(p) != tt.wantLen || orig != tt.wantOrig {
			t.Errorf("Pad8(len %d) = len %d orig %d, want %d/%d",
				tt.give, len(p), orig, tt.wantLen, tt.wantOrig)
		}
	}
}

func TestPad8PreservesContent(t *testing.T) {
	in := []byte{1, 2, 3}
	p, _ := Pad8(in)
	if p[0] != 1 || p[1] != 2 || p[2] != 3 || p[3] != 0 {
		t.Errorf("Pad8 content = %v", p)
	}
}

func TestPadTo(t *testing.T) {
	p, err := PadTo([]byte{1, 2}, 8)
	if err != nil || len(p) != 8 || p[0] != 1 || p[7] != 0 {
		t.Errorf("PadTo = %v, %v", p, err)
	}
	if _, err := PadTo(make([]byte, 9), 8); err == nil {
		t.Error("PadTo overflow accepted")
	}
	same := []byte{1, 2}
	if p, _ := PadTo(same, 2); &p[0] != &same[0] {
		t.Error("PadTo copied when length already matches")
	}
}

func TestCopyToDPUIndexValidation(t *testing.T) {
	s := newTestSystem(t, 2)
	if err := s.AllocMRAM("x", 16); err != nil {
		t.Fatal(err)
	}
	if err := s.CopyToDPU(5, "x", 0, make([]byte, 8)); err == nil {
		t.Error("out-of-range DPU index accepted")
	}
	if _, err := s.CopyFromDPU(-1, "x", 0, 8); err == nil {
		t.Error("negative DPU index accepted")
	}
}

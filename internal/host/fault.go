// Structured partial-failure reporting for the host runtime.
//
// Every multi-DPU operation (broadcast, scatter, gather, launch, fused
// wave) follows one best-effort contract: it attempts all participating
// DPUs, charges simulated time for exactly what ran, and — when at
// least one DPU failed — returns a *FaultReport naming each failed DPU
// and its error. Single-DPU operations return a one-entry report for
// device-level failures so callers can treat every fault uniformly.
// Argument-validation errors (bad index, out-of-bounds access,
// mismatched buffer counts) are ordinary errors, never FaultReports:
// nothing ran, nothing is charged.
package host

import (
	"errors"
	"fmt"
	"strings"

	"pimdnn/internal/dpu"
)

// DPUFault is one DPU's failure within a best-effort operation.
type DPUFault struct {
	// DPU is the failed DPU's index in the System.
	DPU int
	// Err is the underlying device error.
	Err error
}

// FaultReport describes the partial failure of a best-effort operation:
// which DPUs failed and why. DPUs not listed completed normally and
// their effects (memory writes, charged cycles) are valid. It satisfies
// errors.As, and Unwrap exposes the per-DPU errors so
// errors.Is(err, dpu.ErrDPUDead) and friends see through it.
type FaultReport struct {
	// Op names the failed operation (copy_to, push_xfer, gather, launch,
	// wave, or their single-DPU variants).
	Op string
	// Attempted is the number of DPUs the operation attempted.
	Attempted int
	// Faults lists the failed DPUs in ascending index order.
	Faults []DPUFault
}

// maxReportedFaults caps how many per-DPU errors Error() spells out; a
// rank-wide failure should not render thousands of lines.
const maxReportedFaults = 4

// Error renders the report with up to maxReportedFaults per-DPU errors.
func (r *FaultReport) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "host: %s failed on %d/%d DPUs", r.Op, len(r.Faults), r.Attempted)
	for i, f := range r.Faults {
		if i == maxReportedFaults {
			fmt.Fprintf(&b, "; (and %d more)", len(r.Faults)-maxReportedFaults)
			break
		}
		fmt.Fprintf(&b, "; DPU %d: %v", f.DPU, f.Err)
	}
	return b.String()
}

// Unwrap exposes the per-DPU errors to errors.Is/errors.As.
func (r *FaultReport) Unwrap() []error {
	errs := make([]error, len(r.Faults))
	for i, f := range r.Faults {
		errs[i] = f.Err
	}
	return errs
}

// FailedDPUs returns the failed DPU indices in ascending order.
func (r *FaultReport) FailedDPUs() []int {
	out := make([]int, len(r.Faults))
	for i, f := range r.Faults {
		out[i] = f.DPU
	}
	return out
}

// ErrFor returns the error recorded for DPU i, or nil if it succeeded.
func (r *FaultReport) ErrFor(i int) error {
	for _, f := range r.Faults {
		if f.DPU == i {
			return f.Err
		}
	}
	return nil
}

// AsFaultReport extracts a FaultReport from err. The second return is
// false for nil errors and for total failures (validation errors) that
// carry no per-DPU structure.
func AsFaultReport(err error) (*FaultReport, bool) {
	var r *FaultReport
	if errors.As(err, &r) {
		return r, true
	}
	return nil, false
}

// isFaultReport reports whether err is (or wraps) a *FaultReport, i.e.
// a partial failure whose completed DPUs carry valid state.
func isFaultReport(err error) bool {
	_, ok := AsFaultReport(err)
	return ok
}

// isTotalError reports whether err is a non-nil total failure (nothing
// ran, nothing was charged).
func isTotalError(err error) bool {
	return err != nil && !isFaultReport(err)
}

// faultsFrom converts a per-DPU error slice into a *FaultReport, or nil
// when every entry is nil. The error values are copied out of errs, so
// callers may reuse the slice immediately.
func faultsFrom(op string, errs []error) error {
	nFail := 0
	for _, e := range errs {
		if e != nil {
			nFail++
		}
	}
	if nFail == 0 {
		return nil
	}
	r := &FaultReport{Op: op, Attempted: len(errs), Faults: make([]DPUFault, 0, nFail)}
	for i, e := range errs {
		if e != nil {
			r.Faults = append(r.Faults, DPUFault{DPU: i, Err: e})
		}
	}
	return r
}

// singleFault wraps one DPU's device-level failure in a one-entry
// report, the single-DPU operations' counterpart of faultsFrom.
func singleFault(op string, dpuIdx int, err error) error {
	return &FaultReport{Op: op, Attempted: 1, Faults: []DPUFault{{DPU: dpuIdx, Err: err}}}
}

// InjectFaults arms every DPU with a deterministic injector derived
// from the plan (see dpu.FaultPlan). Arming a zero plan still installs
// injectors, but they inject nothing and leave every simulated quantity
// bit-identical to an unarmed system.
func (s *System) InjectFaults(plan dpu.FaultPlan) {
	for i, d := range s.dpus {
		d.InjectFaults(plan.NewInjector(i))
	}
}

// DeadDPUs returns the indices of DPUs an injected fault has
// permanently killed. Empty on an unarmed (or fault-free) system.
func (s *System) DeadDPUs() []int {
	var dead []int
	for i, d := range s.dpus {
		if d.Dead() {
			dead = append(dead, i)
		}
	}
	return dead
}

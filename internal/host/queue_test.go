package host

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"pimdnn/internal/dpu"
)

// queueSystem allocates a small system with one MRAM scratch symbol.
func queueSystem(t *testing.T, n int) (*System, SymbolRef) {
	t.Helper()
	s := newTestSystem(t, n)
	t.Cleanup(s.Close)
	if err := s.AllocMRAM("qbuf", 256); err != nil {
		t.Fatal(err)
	}
	ref, err := s.Resolve("qbuf")
	if err != nil {
		t.Fatal(err)
	}
	return s, ref
}

// TestAsyncRoundTrip: a queued scatter → launch → gather sequence must
// move the same bytes and charge the same simulated time as the
// synchronous calls it mirrors.
func TestAsyncRoundTrip(t *testing.T) {
	s, ref := queueSystem(t, 4)
	in := make([][]byte, 4)
	out := make([][]byte, 4)
	for i := range in {
		in[i] = bytes.Repeat([]byte{byte(i + 1)}, 64)
		out[i] = make([]byte, 64)
	}
	kernel := func(tk *dpu.Tasklet) error {
		tk.Charge(dpu.OpAddInt, 7)
		return nil
	}
	var ls LaunchStats
	s.EnqueuePushXfer(ref, 0, in)
	s.EnqueueLaunch(4, 2, kernel, &ls)
	p := s.EnqueueGather(ref, 0, 64, out)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if !bytes.Equal(out[i], in[i]) {
			t.Errorf("DPU %d round trip mismatch", i)
		}
	}
	// The queued launch produced real stats, identical to what a direct
	// LaunchOn reports for the same kernel.
	direct, err := s.LaunchOn(4, 2, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Cycles == 0 || ls.Cycles != direct.Cycles {
		t.Errorf("async launch cycles %d, direct %d", ls.Cycles, direct.Cycles)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestWaveMatchesDiscreteCommands: one fused wave must move the same
// data and report the same launch statistics as the discrete
// scatter/launch/gather sequence.
func TestWaveMatchesDiscreteCommands(t *testing.T) {
	s, ref := queueSystem(t, 4)
	if err := s.AllocMRAM("qout", 64); err != nil {
		t.Fatal(err)
	}
	oref, err := s.Resolve("qout")
	if err != nil {
		t.Fatal(err)
	}
	// Kernel: copy the first 16 bytes of qbuf into qout, negated.
	kernel := func(tk *dpu.Tasklet) error {
		d := tk.DPU()
		buf := make([]byte, 16)
		if err := d.CopyFromMRAMInto(ref.off, buf); err != nil {
			return err
		}
		for i := range buf {
			buf[i] = ^buf[i]
		}
		tk.ChargeBulk(dpu.OpAddInt, 16)
		return d.CopyToMRAM(oref.off, buf)
	}
	in := make([][]byte, 3)
	out := make([][]byte, 3)
	for i := range in {
		in[i] = bytes.Repeat([]byte{byte(0x10 * (i + 1))}, 16)
		out[i] = make([]byte, 16)
	}
	var ws LaunchStats
	p := s.EnqueueWave(Wave{
		DPUs: 3, Tasklets: 1, Kernel: kernel, Stats: &ws,
		Scatter: ref, In: in,
		Gather: oref, Out: out,
	})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		for j, b := range out[i] {
			if b != ^in[i][j] {
				t.Fatalf("DPU %d byte %d: got %#x want %#x", i, j, b, ^in[i][j])
			}
		}
	}
	// Discrete replay on the same system: identical stats.
	full := [][]byte{in[0], in[1], in[2], make([]byte, 16)}
	if err := s.PushXferRef(ref, 0, full); err != nil {
		t.Fatal(err)
	}
	direct, err := s.LaunchOn(3, 1, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Cycles != direct.Cycles || ws.Seconds != direct.Seconds {
		t.Errorf("wave stats (%d cycles) != discrete stats (%d cycles)", ws.Cycles, direct.Cycles)
	}
	if len(ws.PerDPU) != 3 {
		t.Errorf("wave PerDPU has %d entries, want 3", len(ws.PerDPU))
	}
}

// TestAsyncErrorPropagation: a per-DPU kernel fault mid-queue is a
// partial failure — it surfaces as a *FaultReport at the command's own
// Wait (consumed there, so a later Sync is clean), and commands behind
// it still execute best-effort. Left unclaimed, the same report
// surfaces at Sync instead, exactly once.
func TestAsyncErrorPropagation(t *testing.T) {
	s, ref := queueSystem(t, 4)
	bad := s.DPU(1)
	okKernel := func(tk *dpu.Tasklet) error { return nil }
	faulty := func(tk *dpu.Tasklet) error {
		if tk.DPU() == bad {
			return fmt.Errorf("injected failure")
		}
		return nil
	}
	data := make([]byte, 32)
	pre := s.EnqueueCopyTo(ref, 0, data)
	launch := s.EnqueueLaunch(4, 1, faulty, nil)
	post := s.EnqueueCopyTo(ref, 0, data)

	if err := pre.Wait(); err != nil {
		t.Errorf("command before the fault failed: %v", err)
	}
	err := launch.Wait()
	if err == nil || !strings.Contains(err.Error(), "DPU 1") || !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("faulting launch did not surface its error at Wait: %v", err)
	}
	if rep, ok := AsFaultReport(err); !ok {
		t.Errorf("launch error is not a FaultReport: %v", err)
	} else if len(rep.Faults) != 1 || rep.Faults[0].DPU != 1 || rep.Attempted != 4 {
		t.Errorf("unexpected report contents: %+v", rep)
	}
	// Partial failures don't poison the queue: the command behind the
	// fault executed normally.
	if err := post.Wait(); err != nil {
		t.Errorf("command behind the partial fault was skipped: %v", err)
	}
	// Wait consumed the report, so Sync is clean.
	if err := s.Sync(); err != nil {
		t.Errorf("Sync reports an already-claimed fault: %v", err)
	}
	// An unclaimed report surfaces at Sync exactly once.
	s.EnqueueLaunch(4, 1, faulty, nil)
	if err := s.Sync(); err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("Sync did not report the unclaimed fault: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("second Sync still reports an error: %v", err)
	}
	// Synchronous launch after the fault.
	if _, err := s.LaunchOn(4, 1, okKernel); err != nil {
		t.Errorf("synchronous launch after async fault: %v", err)
	}
	// And the queue accepts fresh work.
	if err := s.EnqueueLaunch(4, 1, okKernel, nil).Wait(); err != nil {
		t.Errorf("async launch after fault: %v", err)
	}
}

// TestWaveFaultSurfacesDPU: a wave whose kernel traps on one DPU
// reports that DPU in a *FaultReport at Wait, while the other DPUs
// complete their full scatter→launch→gather; the claimed report does
// not linger into Sync.
func TestWaveFaultSurfacesDPU(t *testing.T) {
	s, ref := queueSystem(t, 3)
	bad := s.DPU(2)
	in := make([][]byte, 3)
	out := make([][]byte, 3)
	for i := range in {
		in[i] = bytes.Repeat([]byte{byte(i + 1)}, 8)
		out[i] = make([]byte, 8)
	}
	p := s.EnqueueWave(Wave{
		DPUs: 3, Tasklets: 1,
		Kernel: func(tk *dpu.Tasklet) error {
			if tk.DPU() == bad {
				tk.Load8(-1) // memory trap
			}
			return nil
		},
		Scatter: ref, In: in, Gather: ref, Out: out,
	})
	err := p.Wait()
	if err == nil || !strings.Contains(err.Error(), "DPU 2") || !strings.Contains(err.Error(), "memory fault") {
		t.Errorf("wave trap not attributed: %v", err)
	}
	rep, ok := AsFaultReport(err)
	if !ok || len(rep.Faults) != 1 || rep.Faults[0].DPU != 2 {
		t.Errorf("wave fault report: %v", err)
	}
	// The surviving DPUs finished their round trip.
	for i := 0; i < 2; i++ {
		if !bytes.Equal(out[i], in[i]) {
			t.Errorf("surviving DPU %d did not complete its wave", i)
		}
	}
	// Wait claimed the report; the queue is clean and still working.
	if err := s.Sync(); err != nil {
		t.Errorf("Sync reports an already-claimed wave fault: %v", err)
	}
}

// TestDoubleCloseWithQueuedWork: Close must drain a non-empty queue,
// resolve the stranded handles with ErrClosed, and stay idempotent.
func TestDoubleCloseWithQueuedWork(t *testing.T) {
	s, err := NewSystem(2, DefaultConfig(dpu.O0))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AllocMRAM("qbuf", 64); err != nil {
		t.Fatal(err)
	}
	ref, err := s.Resolve("qbuf")
	if err != nil {
		t.Fatal(err)
	}
	// Queue a burst of slow-ish launches so Close observes a non-empty
	// queue, then close twice from two goroutines.
	var last Pending
	for i := 0; i < 16; i++ {
		last = s.EnqueueLaunch(2, 1, func(tk *dpu.Tasklet) error {
			tk.ChargeBulk(dpu.OpAddInt, 1000)
			return nil
		}, nil)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	wg.Wait()
	// Whatever was still queued at close resolved (possibly with
	// ErrClosed); the handle must not hang either way.
	_ = last.Wait()
	// Commands enqueued after close fail cleanly instead of hanging.
	if err := s.EnqueueCopyTo(ref, 0, make([]byte, 8)).Wait(); err == nil {
		t.Error("enqueue after Close succeeded")
	}
	s.Close() // third close: still a no-op
}

// TestPendingZeroValue: the zero Pending is resolved and error-free, so
// runner slots can embed one before their first wave.
func TestPendingZeroValue(t *testing.T) {
	var p Pending
	if !p.Done() {
		t.Error("zero Pending not done")
	}
	if err := p.Wait(); err != nil {
		t.Errorf("zero Pending returned %v", err)
	}
}

// TestWaveValidation: malformed waves fail at execution with a clear
// error rather than panicking in the executor.
func TestWaveValidation(t *testing.T) {
	s, ref := queueSystem(t, 2)
	nop := func(tk *dpu.Tasklet) error { return nil }
	cases := []Wave{
		{DPUs: 0, Tasklets: 1, Kernel: nop},
		{DPUs: 3, Tasklets: 1, Kernel: nop},
		{DPUs: 2, Tasklets: 1, Kernel: nop, Scatter: ref, In: [][]byte{make([]byte, 8)}},
		{DPUs: 2, Tasklets: 1, Kernel: nop, Scatter: ref, In: [][]byte{make([]byte, 8), make([]byte, 16)}},
		{DPUs: 2, Tasklets: 1, Kernel: nop, Gather: ref, Out: [][]byte{make([]byte, 512), make([]byte, 512)}},
	}
	for i, w := range cases {
		if err := s.EnqueueWave(w).Wait(); err == nil {
			t.Errorf("malformed wave %d accepted", i)
		}
		if err := s.Sync(); err == nil {
			t.Errorf("Sync after malformed wave %d reported no error", i)
		}
	}
}

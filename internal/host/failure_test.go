package host

import (
	"fmt"
	"strings"
	"testing"

	"pimdnn/internal/dpu"
)

// TestLaunchSingleDPUFailure: a fault on one DPU of a parallel launch
// must surface as an error naming that DPU, and the system must remain
// usable afterwards.
func TestLaunchSingleDPUFailure(t *testing.T) {
	s := newTestSystem(t, 4)
	bad := s.DPU(2)
	_, err := s.Launch(1, func(tk *dpu.Tasklet) error {
		if tk.DPU() == bad {
			return fmt.Errorf("injected failure")
		}
		tk.Charge(dpu.OpAddInt, 10)
		return nil
	})
	if err == nil {
		t.Fatal("injected failure not surfaced")
	}
	if !strings.Contains(err.Error(), "DPU 2") {
		t.Errorf("error does not name the failing DPU: %v", err)
	}
	// The system still works.
	if _, err := s.Launch(1, func(tk *dpu.Tasklet) error { return nil }); err != nil {
		t.Errorf("system unusable after failure: %v", err)
	}
}

// TestLaunchTrapOnOneDPU: a memory trap (not an error return) on one DPU
// propagates the same way.
func TestLaunchTrapOnOneDPU(t *testing.T) {
	s := newTestSystem(t, 3)
	bad := s.DPU(0)
	_, err := s.Launch(1, func(tk *dpu.Tasklet) error {
		if tk.DPU() == bad {
			tk.Load8(-1) // trap
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "memory fault") {
		t.Errorf("trap not propagated: %v", err)
	}
}

func TestGatherUnknownSymbol(t *testing.T) {
	s := newTestSystem(t, 2)
	if _, err := s.GatherXfer("missing", 0, 8); err == nil {
		t.Error("unknown symbol accepted")
	}
}

func TestPushXferOverflowsSymbol(t *testing.T) {
	s := newTestSystem(t, 2)
	if err := s.AllocWRAM("small", 8); err != nil {
		t.Fatal(err)
	}
	bufs := [][]byte{make([]byte, 16), make([]byte, 16)}
	if err := s.PushXfer("small", 0, bufs); err == nil {
		t.Error("overflowing push accepted")
	}
}

// TestAllocFailurePropagatesPerDPU: exhausting WRAM on every DPU reports
// which DPU refused.
func TestAllocFailurePropagatesPerDPU(t *testing.T) {
	s := newTestSystem(t, 2)
	if err := s.AllocWRAM("big", dpu.DefaultWRAMSize-512); err != nil {
		t.Fatal(err)
	}
	err := s.AllocWRAM("more", 4096)
	if err == nil {
		t.Fatal("over-allocation accepted")
	}
	if !strings.Contains(err.Error(), "DPU 0") {
		t.Errorf("error does not name the DPU: %v", err)
	}
}

// TestEnergyAccumulates: launch energy is per-DPU time x 120 mW.
func TestEnergyAccumulates(t *testing.T) {
	s := newTestSystem(t, 4)
	ls, err := s.Launch(1, func(tk *dpu.Tasklet) error {
		tk.Charge(dpu.OpAddInt, 35000) // 385000 cycles = 1.1 ms per DPU
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Energy sums each participating DPU's time x 120 mW.
	var want float64
	for _, st := range ls.PerDPU {
		want += st.Seconds * dpu.DPUPowerW
	}
	if want <= 0 {
		t.Fatal("no energy expected?")
	}
	if ls.EnergyJ < want*0.999 || ls.EnergyJ > want*1.001 {
		t.Errorf("EnergyJ = %g, want %g", ls.EnergyJ, want)
	}
	// Sanity: per-DPU energy is time x power.
	st := ls.PerDPU[0]
	if st.EnergyJ != st.Seconds*dpu.DPUPowerW {
		t.Errorf("per-DPU energy %g != %g", st.EnergyJ, st.Seconds*dpu.DPUPowerW)
	}
}

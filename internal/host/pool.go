package host

import (
	"runtime"
	"sync"

	"pimdnn/internal/metrics"
)

// parallelThreshold is the DPU count below which the sharded transfer and
// launch loops stay serial: sharding work across workers costs a few
// closure allocations and channel sends per call, which only pays off
// once the per-call work spans enough DPUs. Below the threshold the hot
// paths are allocation-free (see the AllocsPerRun regression tests).
const parallelThreshold = 32

// workerPool is a persistent set of worker goroutines sized to
// GOMAXPROCS. It replaces the previous goroutine-per-DPU launch spawn
// (up to 2,560 goroutines re-created per conv layer) with long-lived
// workers that pull sharded index ranges off a channel.
type workerPool struct {
	workers int
	jobs    chan poolJob

	// shards, when non-nil, observes the shard count of every run — the
	// pool-utilization histogram (System.EnableMetrics wires it before
	// concurrent use). One nil check per run when telemetry is off.
	shards *metrics.Histogram

	closeOnce sync.Once
}

type poolJob struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

func newWorkerPool() *workerPool {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	p := &workerPool{workers: w, jobs: make(chan poolJob, w)}
	for i := 0; i < w; i++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	for j := range p.jobs {
		j.fn(j.lo, j.hi)
		j.wg.Done()
	}
}

// close shuts the workers down. Safe to call more than once; the System
// finalizer uses it so pools of garbage-collected systems do not leak
// goroutines.
func (p *workerPool) close() {
	p.closeOnce.Do(func() { close(p.jobs) })
}

// run partitions [0, n) into contiguous shards and executes fn over them
// on the workers, blocking until all shards finish. The caller executes
// the first shard inline so a fully-busy pool cannot stall progress. fn
// must be safe for concurrent invocation on disjoint ranges.
func (p *workerPool) run(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	shards := p.workers
	if shards > n {
		shards = n
	}
	p.shards.Observe(uint64(shards))
	if shards <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards - 1)
	// Ceil division keeps shard sizes within one element of each other.
	per := (n + shards - 1) / shards
	for s := 1; s < shards; s++ {
		lo := s * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= n {
			wg.Done()
			continue
		}
		p.jobs <- poolJob{fn: fn, lo: lo, hi: hi, wg: &wg}
	}
	fn(0, per)
	wg.Wait()
}

// runAligned is run with shard boundaries rounded up to a multiple of
// align, so one shard never straddles an alignment group. The host
// transfer and wave paths pass the rank width: the fan-out is then
// rank-first (whole ranks per worker, DPUs within the rank inside one
// shard), which keeps a rank's DPUs — whose simulated memory pages sit
// together — on one worker's cache, and means a worker's shard
// corresponds to whole rank channels of the modeled transfer. align <= 1
// (or a single alignment group) degenerates to run.
func (p *workerPool) runAligned(n, align int, fn func(lo, hi int)) {
	if align <= 1 || n <= align {
		p.run(n, fn)
		return
	}
	groups := (n + align - 1) / align
	shards := p.workers
	if shards > groups {
		shards = groups
	}
	p.shards.Observe(uint64(shards))
	if shards <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards - 1)
	// Ceil division over whole groups: shard sizes stay within one
	// group of each other and every boundary is a multiple of align.
	per := (groups + shards - 1) / shards * align
	for s := 1; s < shards; s++ {
		lo := s * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= n {
			wg.Done()
			continue
		}
		p.jobs <- poolJob{fn: fn, lo: lo, hi: hi, wg: &wg}
	}
	hi0 := per
	if hi0 > n {
		hi0 = n
	}
	fn(0, hi0)
	wg.Wait()
}

package host_test

import (
	"sync"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/ebnn"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
)

// TestConcurrentPipelinedRunners drives a pipelined GEMM runner and a
// pipelined eBNN runner against the SAME System from two goroutines.
// The command queue is the only serialization point between them: the
// runners use disjoint symbols, so every interleaving must produce the
// same results as running each alone. Run under -race (make ci does)
// this doubles as the data-race gate for the async engine.
func TestConcurrentPipelinedRunners(t *testing.T) {
	const nDPU = 4

	ds := mnist.Load(120, 32, 49)
	cfg := ebnn.DefaultTrainConfig()
	cfg.Epochs = 3
	model, err := ebnn.Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	sys, err := host.NewSystem(nDPU, host.DefaultConfig(dpu.O0))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const m, n, k = 9, 32, 16
	gr, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: k, MaxN: n, Tasklets: 4, TileCols: 16, Pipeline: host.PipelineOn,
	})
	if err != nil {
		t.Fatal(err)
	}
	er, err := ebnn.NewRunner(sys, model, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	er.SetPipeline(host.PipelineOn)

	a := make([]int16, m*k)
	b := make([]int16, k*n)
	for i := range a {
		a[i] = int16(i%11 - 5)
	}
	for i := range b {
		b[i] = int16(i%7 - 3)
	}
	want, err := gemm.Reference(m, n, k, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	lut := model.BuildLUT()
	images := ds.Test[:32]
	wantPreds := make([]int, len(images))
	for i := range images {
		wantPreds[i] = model.PredictFeatures(model.FeaturesViaLUT(&images[i], lut))
	}

	const rounds = 5
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			c, _, err := gr.Multiply(m, n, k, 1, a, b)
			if err != nil {
				t.Errorf("gemm round %d: %v", r, err)
				return
			}
			for i := range want {
				if c[i] != want[i] {
					t.Errorf("gemm round %d element %d: got %d want %d", r, i, c[i], want[i])
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			preds, _, err := er.Infer(images)
			if err != nil {
				t.Errorf("ebnn round %d: %v", r, err)
				return
			}
			for i := range wantPreds {
				if preds[i] != wantPreds[i] {
					t.Errorf("ebnn round %d image %d: got %d want %d", r, i, preds[i], wantPreds[i])
					return
				}
			}
		}
	}()
	wg.Wait()
	if err := sys.Sync(); err != nil {
		t.Fatalf("queue poisoned after concurrent runs: %v", err)
	}
}

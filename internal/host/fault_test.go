package host

import (
	"bytes"
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pimdnn/internal/dpu"
)

// armOne arms a single DPU with the given fault plan, leaving the rest
// of the system fault-free.
func armOne(s *System, idx int, plan dpu.FaultPlan) {
	s.DPU(idx).InjectFaults(plan.NewInjector(idx))
}

// killDPU arms idx with an immediate-death plan and burns one launch so
// the DPU is already dead when the test's operation runs.
func killDPU(t *testing.T, s *System, idx int) {
	t.Helper()
	armOne(s, idx, dpu.FaultPlan{Seed: 1, DeadFrac: 1, DeadAfterLaunches: 0})
	_, err := s.LaunchDPU(idx, 1, func(tk *dpu.Tasklet) error { return nil })
	if !errors.Is(err, dpu.ErrDPUDead) {
		t.Fatalf("killDPU: launch on doomed DPU: %v", err)
	}
}

// matrixModes covers the serial transfer path (below parallelThreshold)
// and the sharded worker-pool path (above it).
var matrixModes = []struct {
	name string
	n    int
}{
	{"serial", 4},
	{"sharded", 40},
}

// TestTransferFaultMatrix: each transfer op (copy_to broadcast,
// push_xfer scatter, gather, single-DPU copy) under an injected transfer
// fault and under a dead DPU, in both serial and sharded modes. Every
// surviving DPU completes, the FaultReport names exactly the armed DPU,
// and the transfer clock is charged for exactly the DPUs that moved
// bytes.
func TestTransferFaultMatrix(t *testing.T) {
	kinds := []struct {
		name string
		arm  func(t *testing.T, s *System, idx int)
		dead bool
	}{
		{"transfer", func(t *testing.T, s *System, idx int) {
			armOne(s, idx, dpu.FaultPlan{Seed: 1, TransferProb: 1})
		}, false},
		{"dead", killDPU, true},
	}
	const bad = 1
	const perDPU = 64
	for _, mode := range matrixModes {
		for _, kind := range kinds {
			t.Run(mode.name+"/"+kind.name, func(t *testing.T) {
				s, ref := queueSystem(t, mode.n)
				kind.arm(t, s, bad)
				data := bytes.Repeat([]byte{0xAB}, perDPU)

				checkReport := func(err error, op string) *FaultReport {
					t.Helper()
					rep, ok := AsFaultReport(err)
					if !ok {
						t.Fatalf("%s: error %v is not a *FaultReport", op, err)
					}
					if rep.Op != op || rep.Attempted != mode.n {
						t.Fatalf("%s: report op=%q attempted=%d, want op=%q attempted=%d",
							op, rep.Op, rep.Attempted, op, mode.n)
					}
					if got := rep.FailedDPUs(); len(got) != 1 || got[0] != bad {
						t.Fatalf("%s: failed DPUs %v, want [%d]", op, got, bad)
					}
					if !errors.Is(err, dpu.ErrFaultInjected) {
						t.Errorf("%s: report does not wrap ErrFaultInjected: %v", op, err)
					}
					if errors.Is(err, dpu.ErrDPUDead) != kind.dead {
						t.Errorf("%s: ErrDPUDead=%v, want %v", op, !kind.dead, kind.dead)
					}
					if rep.ErrFor(bad) == nil || rep.ErrFor(0) != nil {
						t.Errorf("%s: ErrFor(bad)=%v ErrFor(0)=%v", op, rep.ErrFor(bad), rep.ErrFor(0))
					}
					return rep
				}
				checkCharge := func(op string, before XferStats, nOK int) {
					t.Helper()
					after := s.TransferStats()
					if after.Transfers != before.Transfers+1 {
						t.Errorf("%s: transfers %d -> %d, want one charge", op, before.Transfers, after.Transfers)
					}
					if want := before.Bytes + uint64(perDPU*nOK); after.Bytes != want {
						t.Errorf("%s: bytes %d, want %d (%d bytes x %d surviving DPUs)",
							op, after.Bytes, want, perDPU, nOK)
					}
				}

				before := s.TransferStats()
				checkReport(s.CopyToSymbolRef(ref, 0, data), "copy_to")
				checkCharge("copy_to", before, mode.n-1)

				bufs := make([][]byte, mode.n)
				for i := range bufs {
					bufs[i] = bytes.Repeat([]byte{byte(i + 1)}, perDPU)
				}
				before = s.TransferStats()
				checkReport(s.PushXferRef(ref, 0, bufs), "push_xfer")
				checkCharge("push_xfer", before, mode.n-1)

				dst := make([][]byte, mode.n)
				for i := range dst {
					dst[i] = bytes.Repeat([]byte{0xEE}, perDPU)
				}
				before = s.TransferStats()
				checkReport(s.GatherXferRefInto(ref, 0, perDPU, dst), "gather")
				checkCharge("gather", before, mode.n-1)
				// Surviving DPUs round-tripped their scatter payload; the
				// armed DPU's destination buffer is untouched.
				for i := range dst {
					want := bufs[i]
					if i == bad {
						want = bytes.Repeat([]byte{0xEE}, perDPU)
					}
					if !bytes.Equal(dst[i], want) {
						t.Errorf("gather DPU %d: got % x..., want % x...", i, dst[i][:4], want[:4])
					}
				}

				// Single-DPU copy: charged only on success.
				before = s.TransferStats()
				err := s.CopyToDPURef(bad, ref, 0, data)
				rep, ok := AsFaultReport(err)
				if !ok || rep.Op != "copy_to_dpu" || rep.Attempted != 1 {
					t.Fatalf("copy_to_dpu: %v", err)
				}
				if after := s.TransferStats(); after != before {
					t.Errorf("copy_to_dpu on faulted DPU changed stats: %+v -> %+v", before, after)
				}
				if err := s.CopyToDPURef(0, ref, 0, data); err != nil {
					t.Fatalf("copy_to_dpu on healthy DPU: %v", err)
				}
				if after := s.TransferStats(); after.Transfers != before.Transfers+1 ||
					after.Bytes != before.Bytes+perDPU {
					t.Errorf("copy_to_dpu success charge: %+v -> %+v", before, s.TransferStats())
				}
			})
		}
	}
}

// TestTransferAllFailedNoCharge: when every DPU faults, nothing moved,
// so the transfer clock must not advance at all.
func TestTransferAllFailedNoCharge(t *testing.T) {
	s, ref := queueSystem(t, 2)
	s.InjectFaults(dpu.FaultPlan{Seed: 3, TransferProb: 1})
	before := s.TransferStats()
	err := s.CopyToSymbolRef(ref, 0, make([]byte, 64))
	rep, ok := AsFaultReport(err)
	if !ok || len(rep.Faults) != 2 {
		t.Fatalf("want a 2-fault report, got %v", err)
	}
	if after := s.TransferStats(); after != before {
		t.Errorf("all-failed transfer charged the clock: %+v -> %+v", before, after)
	}
}

// TestLaunchFaultMatrix: a trapped and a dying DPU under LaunchOn, in
// serial and sharded modes. The failed DPU's cycle counter must not
// move, the survivors are charged normally, and the system DPU clock
// advances by exactly the surviving maximum.
func TestLaunchFaultMatrix(t *testing.T) {
	kinds := []struct {
		name string
		plan dpu.FaultPlan
		dead bool
	}{
		{"trap", dpu.FaultPlan{Seed: 1, TrapProb: 1}, false},
		{"dead", dpu.FaultPlan{Seed: 1, DeadFrac: 1, DeadAfterLaunches: 0}, true},
	}
	const bad = 1
	kernel := func(tk *dpu.Tasklet) error {
		tk.ChargeBulk(dpu.OpAddInt, 64)
		return nil
	}
	for _, mode := range matrixModes {
		for _, kind := range kinds {
			t.Run(mode.name+"/"+kind.name, func(t *testing.T) {
				s, _ := queueSystem(t, mode.n)
				armOne(s, bad, kind.plan)

				cyclesBefore := make([]uint64, mode.n)
				for i := range cyclesBefore {
					cyclesBefore[i] = s.DPU(i).TotalCycles()
				}
				xferBefore := s.TransferStats()
				timeBefore := s.DPUTime()

				ls, err := s.LaunchOn(mode.n, 2, kernel)
				rep, ok := AsFaultReport(err)
				if !ok || rep.Op != "launch" || rep.Attempted != mode.n {
					t.Fatalf("launch report: %v", err)
				}
				if got := rep.FailedDPUs(); len(got) != 1 || got[0] != bad {
					t.Fatalf("failed DPUs %v, want [%d]", got, bad)
				}
				if errors.Is(err, dpu.ErrDPUDead) != kind.dead {
					t.Errorf("ErrDPUDead=%v, want %v", !kind.dead, kind.dead)
				}

				// Per-DPU clocks: the armed DPU never ran, everyone else did.
				var maxDelta uint64
				for i := 0; i < mode.n; i++ {
					delta := s.DPU(i).TotalCycles() - cyclesBefore[i]
					if i == bad {
						if delta != 0 {
							t.Errorf("faulted DPU advanced %d cycles", delta)
						}
						continue
					}
					if delta == 0 {
						t.Errorf("surviving DPU %d did not advance", i)
					}
					if delta > maxDelta {
						maxDelta = delta
					}
				}
				if ls.Cycles != maxDelta {
					t.Errorf("LaunchStats.Cycles %d, want surviving max %d", ls.Cycles, maxDelta)
				}
				if len(ls.PerDPU) != mode.n || ls.PerDPU[bad].Cycles != 0 {
					t.Errorf("PerDPU[bad] = %+v, want zero Stats", ls.PerDPU[bad])
				}
				// System clock: advanced by the surviving maximum, not by a
				// hypothetical full-width launch; transfer clock untouched.
				if got := s.DPUTime() - timeBefore; got != ls.Time {
					t.Errorf("DPUTime advanced %v, launch charged %v", got, ls.Time)
				}
				if s.TransferStats() != xferBefore {
					t.Errorf("launch fault changed transfer stats")
				}

				// Single-DPU launch against the armed DPU reports, charges
				// nothing.
				if _, err := s.LaunchDPU(bad, 1, kernel); err == nil {
					t.Error("LaunchDPU on armed DPU succeeded")
				} else if rep, ok := AsFaultReport(err); !ok || rep.Op != "launch_dpu" {
					t.Errorf("LaunchDPU report: %v", err)
				}

				if kind.dead {
					// Death is permanent: transfers now fail too.
					if err := s.CopyToDPURef(bad, mustRef(t, s, "qbuf"), 0, make([]byte, 8)); !errors.Is(err, dpu.ErrDPUDead) {
						t.Errorf("transfer to dead DPU: %v", err)
					}
				}
			})
		}
	}
}

func mustRef(t *testing.T, s *System, sym string) SymbolRef {
	t.Helper()
	ref, err := s.Resolve(sym)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestWaveFaultMatrix: each fault kind inside a fused pipelined wave.
// The wave is best-effort per DPU and phase-granular: a DPU that fails
// its scatter is neither launched nor gathered, a DPU that traps still
// had its scatter charged, and the wave's transfer/launch charges cover
// exactly the DPUs that reached each phase.
func TestWaveFaultMatrix(t *testing.T) {
	const n = 4
	const bad = 2
	const perDPU = 32
	kinds := []struct {
		name string
		arm  func(t *testing.T, s *System, idx int)
		dead bool
		// scattered is how many DPUs complete the scatter phase.
		scattered int
	}{
		{"transfer", func(t *testing.T, s *System, idx int) {
			armOne(s, idx, dpu.FaultPlan{Seed: 1, TransferProb: 1})
		}, false, n - 1},
		{"trap", func(t *testing.T, s *System, idx int) {
			armOne(s, idx, dpu.FaultPlan{Seed: 1, TrapProb: 1})
		}, false, n},
		{"dead", killDPU, true, n - 1},
	}
	kernel := func(tk *dpu.Tasklet) error {
		tk.ChargeBulk(dpu.OpAddInt, 16)
		return nil
	}
	for _, kind := range kinds {
		t.Run(kind.name, func(t *testing.T) {
			s, ref := queueSystem(t, n)
			kind.arm(t, s, bad)

			in := make([][]byte, n)
			out := make([][]byte, n)
			for i := range in {
				in[i] = bytes.Repeat([]byte{byte(0x30 + i)}, perDPU)
				out[i] = bytes.Repeat([]byte{0xEE}, perDPU)
			}
			cyclesBefore := make([]uint64, n)
			for i := range cyclesBefore {
				cyclesBefore[i] = s.DPU(i).TotalCycles()
			}
			xferBefore := s.TransferStats()
			timeBefore := s.DPUTime()

			var ws LaunchStats
			err := s.EnqueueWave(Wave{
				DPUs: n, Tasklets: 1, Kernel: kernel, Stats: &ws,
				Scatter: ref, In: in,
				Gather: ref, Out: out,
			}).Wait()
			rep, ok := AsFaultReport(err)
			if !ok || rep.Op != "wave" || rep.Attempted != n {
				t.Fatalf("wave report: %v", err)
			}
			if got := rep.FailedDPUs(); len(got) != 1 || got[0] != bad {
				t.Fatalf("failed DPUs %v, want [%d]", got, bad)
			}
			if !errors.Is(err, dpu.ErrFaultInjected) || errors.Is(err, dpu.ErrDPUDead) != kind.dead {
				t.Errorf("wave error classes wrong: %v", err)
			}

			// Surviving DPUs completed the round trip; the armed DPU's
			// output buffer is untouched.
			for i := range out {
				want := in[i]
				if i == bad {
					want = bytes.Repeat([]byte{0xEE}, perDPU)
				}
				if !bytes.Equal(out[i], want) {
					t.Errorf("wave DPU %d output wrong", i)
				}
			}

			// Phase-granular charging: one scatter charge covering the DPUs
			// that scattered, one gather charge covering the survivors.
			xferAfter := s.TransferStats()
			if xferAfter.Transfers != xferBefore.Transfers+2 {
				t.Errorf("wave made %d transfer charges, want 2", xferAfter.Transfers-xferBefore.Transfers)
			}
			wantBytes := uint64(perDPU*kind.scattered + perDPU*(n-1))
			if got := xferAfter.Bytes - xferBefore.Bytes; got != wantBytes {
				t.Errorf("wave moved %d bytes, want %d", got, wantBytes)
			}

			// Launch charging: surviving max only; the armed DPU's clock
			// must not move even when its scatter succeeded (trap kind).
			var maxDelta uint64
			for i := 0; i < n; i++ {
				delta := s.DPU(i).TotalCycles() - cyclesBefore[i]
				if i == bad && delta != 0 {
					t.Errorf("faulted DPU advanced %d cycles", delta)
				}
				if delta > maxDelta {
					maxDelta = delta
				}
			}
			if ws.Cycles != maxDelta || ws.PerDPU[bad].Cycles != 0 {
				t.Errorf("wave stats cycles=%d PerDPU[bad]=%+v, want cycles=%d, zero",
					ws.Cycles, ws.PerDPU[bad], maxDelta)
			}
			if got := s.DPUTime() - timeBefore; got != ws.Time {
				t.Errorf("DPUTime advanced %v, wave charged %v", got, ws.Time)
			}
			// A partial wave never poisons the queue.
			if err := s.Sync(); err != nil {
				t.Errorf("Sync after claimed wave report: %v", err)
			}
		})
	}
}

// TestZeroFaultPlanBitIdentity: arming the zero FaultPlan consumes no
// randomness and injects nothing, so an armed system's results, cycle
// counts, and transfer accounting are bit-identical to an unarmed one.
func TestZeroFaultPlanBitIdentity(t *testing.T) {
	const n = 8
	const perDPU = 64
	kernel := func(tk *dpu.Tasklet) error {
		d := tk.DPU()
		buf := make([]byte, perDPU)
		if err := d.CopyFromMRAMInto(0, buf); err != nil {
			return err
		}
		for i := range buf {
			buf[i] ^= 0x5A
		}
		tk.ChargeBulk(dpu.OpAddInt, perDPU)
		return d.CopyToMRAM(0, buf)
	}
	run := func(arm bool) ([][]byte, []uint64, time.Duration, XferStats) {
		s, ref := queueSystem(t, n)
		if arm {
			s.InjectFaults(dpu.FaultPlan{})
		}
		in := make([][]byte, n)
		out := make([][]byte, n)
		for i := range in {
			in[i] = bytes.Repeat([]byte{byte(i * 17)}, perDPU)
			out[i] = make([]byte, perDPU)
		}
		if err := s.PushXferRef(ref, 0, in); err != nil {
			t.Fatal(err)
		}
		if _, err := s.LaunchOn(n, 2, kernel); err != nil {
			t.Fatal(err)
		}
		if err := s.GatherXferRefInto(ref, 0, perDPU, out); err != nil {
			t.Fatal(err)
		}
		// A queued wave too, so the async path is covered.
		if err := s.EnqueueWave(Wave{
			DPUs: n, Tasklets: 2, Kernel: kernel,
			Scatter: ref, In: in, Gather: ref, Out: out,
		}).Wait(); err != nil {
			t.Fatal(err)
		}
		cycles := make([]uint64, n)
		for i := range cycles {
			cycles[i] = s.DPU(i).TotalCycles()
		}
		return out, cycles, s.DPUTime(), s.TransferStats()
	}
	outA, cycA, timeA, xferA := run(false)
	outB, cycB, timeB, xferB := run(true)
	for i := range outA {
		if !bytes.Equal(outA[i], outB[i]) {
			t.Errorf("DPU %d results diverge under zero plan", i)
		}
		if cycA[i] != cycB[i] {
			t.Errorf("DPU %d cycles %d (unarmed) vs %d (zero plan)", i, cycA[i], cycB[i])
		}
	}
	if timeA != timeB {
		t.Errorf("DPUTime %v vs %v", timeA, timeB)
	}
	if xferA != xferB {
		t.Errorf("TransferStats %+v vs %+v", xferA, xferB)
	}
}

// TestSyncScopedToProducer is the regression test for the two-producer
// Sync bug: a Sync whose target precedes another producer's failing
// command must neither return nor clear that command's error. Run with
// -race; the two producers genuinely overlap.
func TestSyncScopedToProducer(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		s, ref := queueSystem(t, 1)
		gate := make(chan struct{})
		blocker := func(tk *dpu.Tasklet) error {
			<-gate
			return nil
		}
		// Ticket 1: a launch that parks the executor until released.
		p1 := s.EnqueueLaunch(1, 1, blocker, nil)
		syncErr := make(chan error, 1)
		var entered atomic.Bool
		go func() {
			entered.Store(true)
			// Target is ticket 1 only: nothing else is enqueued yet, and
			// the executor is parked inside ticket 1's kernel.
			syncErr <- s.Sync()
		}()
		// Second producer enqueues a malformed wave (total failure,
		// sticky) behind the blocked launch, then the launch is released
		// so ticket 2's failure races with the first producer's Sync.
		for !entered.Load() {
			runtime.Gosched()
		}
		time.Sleep(2 * time.Millisecond)
		p2 := s.EnqueueWave(Wave{DPUs: 0, Tasklets: 1, Kernel: blocker, Scatter: ref})
		close(gate)

		if err := <-syncErr; err != nil {
			t.Fatalf("iter %d: Sync scoped to ticket 1 returned ticket 2's error: %v", iter, err)
		}
		if err := p1.Wait(); err != nil {
			t.Fatalf("iter %d: blocked launch failed: %v", iter, err)
		}
		if err := p2.Wait(); err == nil {
			t.Fatalf("iter %d: malformed wave reported no error", iter)
		}
		// The sticky error survived the early Sync and is cleared by a
		// covering one, exactly once.
		if err := s.Sync(); err == nil {
			t.Fatalf("iter %d: covering Sync did not surface the sticky error", iter)
		}
		if err := s.Sync(); err != nil {
			t.Fatalf("iter %d: sticky error not cleared: %v", iter, err)
		}
		s.Close()
	}
}

// TestCheckRefOverflow: a huge offset must be rejected, not wrap
// int64 arithmetic into an accepted range.
func TestCheckRefOverflow(t *testing.T) {
	s, ref := queueSystem(t, 2)
	data := make([]byte, 8)
	for _, off := range []int64{math.MaxInt64, math.MaxInt64 - 4, -1, ref.size + 1} {
		if err := s.CopyToSymbolRef(ref, off, data); err == nil {
			t.Errorf("offset %d accepted", off)
		}
		if err := s.GatherXferRefInto(ref, off, 8, [][]byte{data, data}); err == nil {
			t.Errorf("gather offset %d accepted", off)
		}
	}
	// The boundary itself is fine: a zero-length tail write at size.
	if err := s.CopyToSymbolRef(ref, ref.size-8, data); err != nil {
		t.Errorf("in-range tail write rejected: %v", err)
	}
}

// TestPad8Aliasing pins the documented contract for both branches:
// aligned input is returned as-is (aliasing the caller's slice),
// unaligned input is copied into a fresh zero-padded buffer.
func TestPad8Aliasing(t *testing.T) {
	aligned := bytes.Repeat([]byte{7}, 16)
	p, orig := Pad8(aligned)
	if orig != 16 || len(p) != 16 {
		t.Fatalf("aligned Pad8: len=%d orig=%d", len(p), orig)
	}
	if &p[0] != &aligned[0] {
		t.Error("aligned Pad8 must alias its input")
	}

	unaligned := bytes.Repeat([]byte{9}, 13)
	p, orig = Pad8(unaligned)
	if orig != 13 || len(p) != 16 {
		t.Fatalf("unaligned Pad8: len=%d orig=%d", len(p), orig)
	}
	if &p[0] == &unaligned[0] {
		t.Error("unaligned Pad8 must copy, not alias")
	}
	if !bytes.Equal(p[:13], unaligned) || !bytes.Equal(p[13:], []byte{0, 0, 0}) {
		t.Errorf("unaligned Pad8 contents wrong: % x", p)
	}
	p[0] = 0xFF
	if unaligned[0] != 9 {
		t.Error("mutating the padded copy reached the original")
	}
}

package host

import (
	"testing"

	"pimdnn/internal/dpu"
)

// BenchmarkBroadcast measures a 2 KB broadcast to 8 DPUs.
func BenchmarkBroadcast(b *testing.B) {
	s, err := NewSystem(8, DefaultConfig(dpu.O3))
	if err != nil {
		b.Fatal(err)
	}
	if err := s.AllocMRAM("buf", 2048); err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 2048)
	b.SetBytes(2048 * 8)
	for i := 0; i < b.N; i++ {
		if err := s.CopyToSymbol("buf", 0, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPushXfer measures per-DPU scatter of 2 KB buffers.
func BenchmarkPushXfer(b *testing.B) {
	s, err := NewSystem(8, DefaultConfig(dpu.O3))
	if err != nil {
		b.Fatal(err)
	}
	if err := s.AllocMRAM("buf", 2048); err != nil {
		b.Fatal(err)
	}
	bufs := make([][]byte, 8)
	for i := range bufs {
		bufs[i] = make([]byte, 2048)
	}
	b.SetBytes(2048 * 8)
	for i := 0; i < b.N; i++ {
		if err := s.PushXfer("buf", 0, bufs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelLaunch measures an 8-DPU synchronous launch.
func BenchmarkParallelLaunch(b *testing.B) {
	s, err := NewSystem(8, DefaultConfig(dpu.O3))
	if err != nil {
		b.Fatal(err)
	}
	k := func(t *dpu.Tasklet) error {
		t.Charge(dpu.OpAddInt, 100)
		return nil
	}
	for i := 0; i < b.N; i++ {
		if _, err := s.Launch(11, k); err != nil {
			b.Fatal(err)
		}
	}
}

package host

import (
	"time"

	"pimdnn/internal/dpu"
	"pimdnn/internal/metrics"
)

// sysMetrics is the host runtime's resolved instrument set. Every field
// is a nil-safe instrument; the whole block is gated by one s.met nil
// check on each hot path, so a System without telemetry pays one branch
// and zero allocations. Instruments observe only — the simulated clocks
// and transfer charges never read them.
type sysMetrics struct {
	reg *metrics.Registry

	// Host<->PIM traffic by direction (one op per API call, bytes
	// summed over the DPUs that actually moved data — mirroring the
	// chargeTransfer accounting).
	xferOpsTo     *metrics.Counter
	xferBytesTo   *metrics.Counter
	xferOpsFrom   *metrics.Counter
	xferBytesFrom *metrics.Counter

	// Worker-pool utilization: shards actually used per parallel run
	// (pool width bounds the top bucket).
	poolShards *metrics.Histogram

	// Async command queue: instantaneous depth and per-command
	// wall-clock latency from enqueue to completion.
	queueDepth *metrics.Gauge
	cmdLatency *metrics.Histogram

	// Partial-failure reporting: FaultReports returned to callers and
	// the per-DPU fault entries they carried.
	faultReports *metrics.Counter
	dpuFaults    *metrics.Counter
}

// EnableMetrics wires the System — and every DPU in it — to reg; a nil
// reg unwires. One registry may back many Systems: instruments are
// get-or-create by name, so counts accumulate across Systems (per-DPU
// families are indexed by DPU position). Call before the System is
// used from multiple goroutines.
func (s *System) EnableMetrics(reg *metrics.Registry) {
	if reg == nil {
		s.met = nil
		s.pool.shards = nil
		for _, d := range s.dpus {
			d.SetMetrics(nil)
		}
		return
	}
	n := len(s.dpus)
	launches := reg.CounterVec("pim_dpu_launches_total", "dpu", n)
	cycles := reg.CounterVec("pim_dpu_cycles_total", "dpu", n)
	mramBytes := reg.CounterVec("pim_dpu_mram_bytes_total", "dpu", n)
	mramAcc := reg.CounterVec("pim_dpu_mram_accesses_total", "dpu", n)
	wramBytes := reg.CounterVec("pim_dpu_wram_bytes_total", "dpu", n)
	wramAcc := reg.CounterVec("pim_dpu_wram_accesses_total", "dpu", n)
	faults := reg.CounterVec("pim_dpu_faults_injected_total", "dpu", n)
	occ := reg.Histogram("pim_dpu_tasklets_per_launch",
		metrics.LinearBuckets(1, 1, dpu.MaxTasklets))
	for i, d := range s.dpus {
		d.SetMetrics(&dpu.Metrics{
			Launches:          launches.At(i),
			Cycles:            cycles.At(i),
			MRAMBytes:         mramBytes.At(i),
			MRAMAccesses:      mramAcc.At(i),
			WRAMBytes:         wramBytes.At(i),
			WRAMAccesses:      wramAcc.At(i),
			Faults:            faults.At(i),
			TaskletsPerLaunch: occ,
		})
	}
	s.pool.shards = reg.Histogram("pim_host_pool_shards",
		metrics.LinearBuckets(1, 1, s.pool.workers))
	s.met = &sysMetrics{
		reg:           reg,
		xferOpsTo:     reg.LabeledCounter("pim_host_xfer_ops_total", "dir", "to_dpu"),
		xferBytesTo:   reg.LabeledCounter("pim_host_xfer_bytes_total", "dir", "to_dpu"),
		xferOpsFrom:   reg.LabeledCounter("pim_host_xfer_ops_total", "dir", "from_dpu"),
		xferBytesFrom: reg.LabeledCounter("pim_host_xfer_bytes_total", "dir", "from_dpu"),
		poolShards:    s.pool.shards,
		queueDepth:    reg.Gauge("pim_host_queue_depth"),
		cmdLatency: reg.Histogram("pim_host_cmd_latency_ns",
			metrics.ExpBuckets(1000, 4, 12)),
		faultReports: reg.Counter("pim_host_fault_reports_total"),
		dpuFaults:    reg.Counter("pim_host_dpu_faults_total"),
	}
}

// MetricsRegistry returns the registry wired by EnableMetrics, or nil.
// The execution engine uses it to resolve its own instruments.
func (s *System) MetricsRegistry() *metrics.Registry {
	if s.met == nil {
		return nil
	}
	return s.met.reg
}

// meterXfer records one completed transfer op of n payload bytes in the
// given direction. One branch when telemetry is off.
func (s *System) meterXfer(toDPU bool, n int) {
	m := s.met
	if m == nil {
		return
	}
	if toDPU {
		m.xferOpsTo.Inc()
		m.xferBytesTo.Add(uint64(n))
	} else {
		m.xferOpsFrom.Inc()
		m.xferBytesFrom.Add(uint64(n))
	}
}

// noteFaults records err's partial-failure report (if it is one) and
// returns err unchanged, so fault returns can be wrapped in place.
func (s *System) noteFaults(err error) error {
	if err == nil || s.met == nil {
		return err
	}
	if fr, ok := AsFaultReport(err); ok {
		s.met.faultReports.Inc()
		s.met.dpuFaults.Add(uint64(len(fr.Faults)))
	}
	return err
}

// meterQueueDepth publishes the current ring depth; callers hold qmu.
func (s *System) meterQueueDepth() {
	if s.met != nil {
		s.met.queueDepth.Set(int64(s.qcount))
	}
}

// meterCmdLatency records one command's enqueue-to-completion wall
// time; enqNS is 0 when the command was enqueued without telemetry.
func (s *System) meterCmdLatency(enqNS int64) {
	if s.met == nil || enqNS == 0 {
		return
	}
	if d := time.Now().UnixNano() - enqNS; d > 0 {
		s.met.cmdLatency.Observe(uint64(d))
	}
}

// Asynchronous command engine for a System.
//
// The UPMEM SDK drives multi-rank workloads through per-rank command
// queues: dpu_launch(DPU_ASYNCHRONOUS) and the async transfer variants
// enqueue work and return immediately, errors are captured when the host
// calls dpu_sync. This file mirrors that shape for the simulated System:
// Enqueue{CopyTo,PushXfer,Launch,Gather,CopyFrom,Wave} append a command
// to a FIFO queue drained by a dedicated executor goroutine, each returns
// a Pending handle, and Sync waits for the queue to drain and reports the
// first failure.
//
// Two clocks, one invariant: every queued command is executed by the
// same synchronous System method a direct call would use, so the
// simulated accounting (DPU cycles, launch stats, trace profile) is
// bit-identical whether a workload runs synchronously or queued — the
// queue only changes which real-time instant the work happens at, which
// is exactly the wall-clock overlap the async API exists to buy.
//
// Ordering guarantees: commands on one System execute strictly in
// enqueue order, one at a time. That serialization is what makes it safe
// for several runners (e.g. a GEMM and an eBNN runner sharing a System)
// to enqueue concurrently: their launches never overlap on the DPUs.
// After a command fails, later queued commands are skipped (their
// Pending handles report the same error) until Sync observes and clears
// the failure, matching the SDK's sticky async error model.
package host

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"pimdnn/internal/dpu"
)

// ErrClosed is reported by Pending handles and Sync for commands that
// were still queued (or enqueued) when the System was closed.
var ErrClosed = errors.New("host: system closed")

type opKind uint8

const (
	opCopyTo opKind = iota + 1
	opPushXfer
	opLaunch
	opGather
	opCopyFrom
	opWave
)

// asyncOp is one queued command. A single fat struct keeps the ring
// buffer allocation-free: enqueueing reuses ring slots instead of boxing
// per-kind payloads.
type asyncOp struct {
	kind   opKind
	ticket uint64

	// Scatter-side arguments (opCopyTo data, opPushXfer/opGather bufs,
	// opCopyFrom dst via data, opWave scatter).
	ref  SymbolRef
	off  int64
	data []byte
	bufs [][]byte

	// n is the per-DPU byte count for opGather, the DPU index for
	// opCopyFrom, and the DPU count for opLaunch/opWave.
	n        int
	tasklets int
	kernel   dpu.KernelFunc
	stats    *LaunchStats

	// Gather-side arguments for opWave.
	gref  SymbolRef
	goff  int64
	gbufs [][]byte
}

// Pending is a future-style handle for one enqueued command. The zero
// value is a resolved no-op.
type Pending struct {
	s      *System
	ticket uint64
}

// Wait blocks until the command has executed or been skipped. It returns
// nil for commands that completed before any failure, and the sticky
// queue error for the failing command and every command after it. Unlike
// Sync, Wait does not clear the error.
func (p Pending) Wait() error {
	s := p.s
	if s == nil {
		return nil
	}
	s.qmu.Lock()
	for s.qDone < p.ticket {
		s.qcond.Wait()
	}
	var err error
	if s.qErr != nil && s.qErrTicket <= p.ticket {
		err = s.qErr
	}
	s.qmu.Unlock()
	return err
}

// Done reports whether the command has executed (or been skipped)
// without blocking.
func (p Pending) Done() bool {
	s := p.s
	if s == nil {
		return true
	}
	s.qmu.Lock()
	done := s.qDone >= p.ticket
	s.qmu.Unlock()
	return done
}

// Sync waits until every enqueued command has executed (dpu_sync),
// returns the first error captured since the previous Sync, and clears
// it so the queue accepts new work.
func (s *System) Sync() error {
	s.qmu.Lock()
	target := s.qNext
	for s.qDone < target {
		s.qcond.Wait()
	}
	err := s.qErr
	s.qErr = nil
	s.qErrTicket = 0
	s.qmu.Unlock()
	return err
}

// EnqueueCopyTo queues a broadcast of data to the referenced symbol on
// every DPU (async dpu_copy_to). The caller must not modify data until
// the command has executed.
func (s *System) EnqueueCopyTo(ref SymbolRef, offset int64, data []byte) Pending {
	return s.enqueue(asyncOp{kind: opCopyTo, ref: ref, off: offset, data: data})
}

// EnqueuePushXfer queues a scatter of buffers[i] to DPU i (async
// dpu_push_xfer). Like PushXferRef it requires one equal-length buffer
// per DPU; the buffers must stay untouched until the command executes.
func (s *System) EnqueuePushXfer(ref SymbolRef, offset int64, buffers [][]byte) Pending {
	return s.enqueue(asyncOp{kind: opPushXfer, ref: ref, off: offset, bufs: buffers})
}

// EnqueueGather queues a gather of n bytes per DPU into dst, which names
// one buffer for each of the first len(dst) DPUs. The buffers are only
// valid to read after Wait/Sync.
func (s *System) EnqueueGather(ref SymbolRef, offset int64, n int, dst [][]byte) Pending {
	return s.enqueue(asyncOp{kind: opGather, ref: ref, off: offset, n: n, bufs: dst})
}

// EnqueueCopyFrom queues a read of len(dst) bytes from one DPU's symbol
// into dst, valid after Wait/Sync.
func (s *System) EnqueueCopyFrom(dpuIdx int, ref SymbolRef, offset int64, dst []byte) Pending {
	return s.enqueue(asyncOp{kind: opCopyFrom, ref: ref, off: offset, n: dpuIdx, data: dst})
}

// EnqueueLaunch queues a kernel launch on the first n DPUs. If stats is
// non-nil, the launch statistics are stored through it before the
// command's Pending resolves.
func (s *System) EnqueueLaunch(n, tasklets int, kernel dpu.KernelFunc, stats *LaunchStats) Pending {
	return s.enqueue(asyncOp{kind: opLaunch, n: n, tasklets: tasklets, kernel: kernel, stats: stats})
}

// LaunchAsync queues a kernel launch on every DPU — dpu_launch with
// DPU_ASYNCHRONOUS. Errors surface at Wait or Sync.
func (s *System) LaunchAsync(tasklets int, kernel dpu.KernelFunc, stats *LaunchStats) Pending {
	return s.EnqueueLaunch(len(s.dpus), tasklets, kernel, stats)
}

// PushXferAsync is the string-keyed EnqueuePushXfer; the symbol resolves
// eagerly so an unknown name fails at enqueue time rather than at Sync.
func (s *System) PushXferAsync(symbol string, offset int64, buffers [][]byte) (Pending, error) {
	ref, err := s.Resolve(symbol)
	if err != nil {
		return Pending{}, err
	}
	return s.EnqueuePushXfer(ref, offset, buffers), nil
}

// Wave is one fused scatter→launch→gather command for EnqueueWave: the
// per-wave unit of the double-buffered runners. The executor interleaves
// the three phases per DPU (scatter DPU i, launch DPU i, gather DPU i)
// instead of sweeping all DPUs per phase — each DPU's staging buffers
// and memory stay cache-hot across its three touches, and on the worker
// pool no barrier separates the phases. The simulated accounting is
// phase-granular exactly like the discrete commands: one transfer charge
// for the scatter, one launch (max-over-DPUs cycles into Stats), one
// transfer charge for the gather.
type Wave struct {
	// DPUs is the launch width: the wave runs on the first DPUs DPUs.
	DPUs     int
	Tasklets int
	Kernel   dpu.KernelFunc
	// Stats, if non-nil, receives the launch statistics. Its PerDPU
	// backing array is reused across waves when capacity allows.
	Stats *LaunchStats

	// Scatter names the input symbol; In holds one equal-length buffer
	// per participating DPU. A zero Scatter ref skips the phase.
	Scatter    SymbolRef
	ScatterOff int64
	In         [][]byte

	// Gather names the output symbol; Out holds one equal-length buffer
	// per participating DPU. A zero Gather ref skips the phase.
	Gather    SymbolRef
	GatherOff int64
	Out       [][]byte
}

// EnqueueWave queues a fused scatter→launch→gather wave. All referenced
// buffers belong to the queue until the command executes; on error,
// DPU memory state for DPUs at or after the faulting one is unspecified
// (earlier DPUs may have completed their full scatter→launch→gather).
func (s *System) EnqueueWave(w Wave) Pending {
	return s.enqueue(asyncOp{
		kind: opWave, n: w.DPUs, tasklets: w.Tasklets, kernel: w.Kernel, stats: w.Stats,
		ref: w.Scatter, off: w.ScatterOff, bufs: w.In,
		gref: w.Gather, goff: w.GatherOff, gbufs: w.Out,
	})
}

// enqueue appends op to the ring and wakes (or starts) the executor.
func (s *System) enqueue(op asyncOp) Pending {
	s.qmu.Lock()
	s.qNext++
	op.ticket = s.qNext
	if s.qClosed {
		// The queue is gone; resolve immediately with the sticky error.
		s.qDone = op.ticket
		if s.qErr == nil {
			s.qErr = ErrClosed
			s.qErrTicket = op.ticket
		}
		s.qmu.Unlock()
		s.qcond.Broadcast()
		return Pending{s: s, ticket: op.ticket}
	}
	s.qpush(op)
	if !s.qRunning {
		s.qRunning = true
		go s.qrunFn()
	}
	t := op.ticket
	s.qmu.Unlock()
	s.qcond.Broadcast()
	return Pending{s: s, ticket: t}
}

func (s *System) qpush(op asyncOp) {
	if s.qcount == len(s.qring) {
		grown := make([]asyncOp, max(8, 2*len(s.qring)))
		for i := 0; i < s.qcount; i++ {
			grown[i] = s.qring[(s.qhead+i)%len(s.qring)]
		}
		s.qring = grown
		s.qhead = 0
	}
	s.qring[(s.qhead+s.qcount)%len(s.qring)] = op
	s.qcount++
}

func (s *System) qpop() asyncOp {
	op := s.qring[s.qhead]
	// Zero the slot so the ring doesn't pin kernel closures and staging
	// buffers past their command.
	s.qring[s.qhead] = asyncOp{}
	s.qhead = (s.qhead + 1) % len(s.qring)
	s.qcount--
	return op
}

// qrun is the executor: it drains the ring in FIFO order and exits when
// the ring empties. Exiting (rather than parking) keeps an idle System
// free of goroutines that reference it, so the Close finalizer of a
// dropped System can still fire; enqueue restarts the executor on the
// next burst.
func (s *System) qrun() {
	s.qmu.Lock()
	for {
		if s.qcount == 0 {
			s.qRunning = false
			s.qmu.Unlock()
			s.qcond.Broadcast()
			return
		}
		s.qcur = s.qpop()
		ticket := s.qcur.ticket
		skip := s.qErr != nil || s.qClosed
		s.qmu.Unlock()
		var err error
		if !skip {
			err = s.execOp(&s.qcur)
		}
		s.qcur = asyncOp{} // release buffer/kernel references
		s.qmu.Lock()
		if s.qErr == nil {
			switch {
			case err != nil:
				s.qErr, s.qErrTicket = err, ticket
			case skip:
				// Only reachable when Close raced in with commands still
				// queued: fail them rather than touching closed workers.
				s.qErr, s.qErrTicket = ErrClosed, ticket
			}
		}
		s.qDone = ticket
		s.qcond.Broadcast()
	}
}

func (s *System) execOp(op *asyncOp) error {
	switch op.kind {
	case opCopyTo:
		return s.CopyToSymbolRef(op.ref, op.off, op.data)
	case opPushXfer:
		return s.PushXferRef(op.ref, op.off, op.bufs)
	case opGather:
		return s.GatherXferRefInto(op.ref, op.off, op.n, op.bufs)
	case opCopyFrom:
		return s.CopyFromDPURefInto(op.n, op.ref, op.off, op.data)
	case opLaunch:
		ls, err := s.LaunchOn(op.n, op.tasklets, op.kernel)
		if err != nil {
			return err
		}
		if op.stats != nil {
			*op.stats = ls
		}
		return nil
	case opWave:
		return s.execWave(op)
	}
	return fmt.Errorf("host: unknown async command kind %d", op.kind)
}

// execWave runs one fused wave. Validation happens up front for every
// DPU so per-DPU failures can only come from the simulated kernel
// itself, matching where the discrete command sequence would fail.
func (s *System) execWave(op *asyncOp) error {
	n := op.n
	if n < 1 || n > len(s.dpus) {
		return fmt.Errorf("host: wave on %d DPUs, system has %d", n, len(s.dpus))
	}
	scatter := op.ref.valid()
	var inLen int
	if scatter {
		if len(op.bufs) != n {
			return fmt.Errorf("host: wave scatter got %d buffers for %d DPUs", len(op.bufs), n)
		}
		inLen = len(op.bufs[0])
		for i, b := range op.bufs {
			if len(b) != inLen {
				return fmt.Errorf("host: wave scatter buffer %d has length %d, want %d", i, len(b), inLen)
			}
		}
		if err := checkRef(op.ref, op.off, inLen); err != nil {
			return err
		}
	}
	gather := op.gref.valid()
	var outLen int
	if gather {
		if len(op.gbufs) != n {
			return fmt.Errorf("host: wave gather got %d buffers for %d DPUs", len(op.gbufs), n)
		}
		outLen = len(op.gbufs[0])
		for i, b := range op.gbufs {
			if len(b) != outLen {
				return fmt.Errorf("host: wave gather buffer %d has length %d, want %d", i, len(b), outLen)
			}
		}
		if err := checkRef(op.gref, op.goff, outLen); err != nil {
			return err
		}
	}
	// Per-DPU stats land in the caller's PerDPU backing array when it is
	// large enough, so steady-state waves don't allocate it per call.
	var per []dpu.Stats
	if op.stats != nil && cap(op.stats.PerDPU) >= n {
		per = op.stats.PerDPU[:n]
	} else {
		per = make([]dpu.Stats, n)
	}
	if cap(s.waveErrs) < n {
		s.waveErrs = make([]error, n)
	}
	errs := s.waveErrs[:n]
	for i := range errs {
		errs[i] = nil
	}
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if scatter {
				if err := s.copyToOne(i, op.ref, op.off, op.bufs[i]); err != nil {
					errs[i] = err
					continue
				}
			}
			st, err := s.dpus[i].Launch(op.tasklets, op.kernel)
			if err != nil {
				errs[i] = err
				continue
			}
			per[i] = st
			if gather {
				if err := s.copyFromOneInto(i, op.gref, op.goff, op.gbufs[i]); err != nil {
					errs[i] = err
				}
			}
		}
	}
	if n == 1 {
		run(0, 1)
	} else {
		s.pool.run(n, run)
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("host: DPU %d: %w", i, err)
		}
	}
	if scatter {
		s.chargeTransfer(inLen * n)
	}
	var maxCycles uint64
	var energy float64
	for i := range per {
		if per[i].Cycles > maxCycles {
			maxCycles = per[i].Cycles
		}
		energy += per[i].EnergyJ
	}
	sec := float64(maxCycles) / s.cfg.DPU.FrequencyHz
	lt := time.Duration(sec * float64(time.Second))
	if op.stats != nil {
		*op.stats = LaunchStats{PerDPU: per, Cycles: maxCycles, Seconds: sec, Time: lt, EnergyJ: energy}
	}
	s.mu.Lock()
	s.dpuTime += lt
	s.mu.Unlock()
	if gather {
		s.chargeTransfer(outLen * n)
	}
	return nil
}

// PipelineMode selects whether a runner double-buffers waves through the
// async queue or runs each wave to completion synchronously. Both modes
// produce identical results and identical simulated-time accounting.
type PipelineMode int

const (
	// PipelineAuto pipelines when more than one CPU is available to
	// overlap host staging with queued device work; on a single CPU the
	// overlap cannot pay for the handoff, so runners stay synchronous.
	PipelineAuto PipelineMode = iota
	PipelineOn
	PipelineOff
)

// Enabled resolves the mode against the running machine.
func (m PipelineMode) Enabled() bool {
	switch m {
	case PipelineOn:
		return true
	case PipelineOff:
		return false
	default:
		return runtime.GOMAXPROCS(0) > 1
	}
}

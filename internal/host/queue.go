// Asynchronous command engine for a System.
//
// The UPMEM SDK drives multi-rank workloads through per-rank command
// queues: dpu_launch(DPU_ASYNCHRONOUS) and the async transfer variants
// enqueue work and return immediately, errors are captured when the host
// calls dpu_sync. This file mirrors that shape for the simulated System:
// Enqueue{CopyTo,PushXfer,Launch,Gather,CopyFrom,Wave} append a command
// to a FIFO queue drained by a dedicated executor goroutine, each returns
// a Pending handle, and Sync waits for the queue to drain and reports the
// first failure.
//
// Two clocks, one invariant: every queued command is executed by the
// same synchronous System method a direct call would use, so the
// simulated accounting (DPU cycles, launch stats, trace profile) is
// bit-identical whether a workload runs synchronously or queued — the
// queue only changes which real-time instant the work happens at, which
// is exactly the wall-clock overlap the async API exists to buy.
//
// Ordering guarantees: commands on one System execute strictly in
// enqueue order, one at a time. That serialization is what makes it safe
// for several runners (e.g. a GEMM and an eBNN runner sharing a System)
// to enqueue concurrently: their launches never overlap on the DPUs.
//
// Failures come in two tiers, mirroring the synchronous best-effort
// contract (fault.go). A partial failure (*FaultReport: some DPUs
// failed, the rest completed and were charged) does NOT poison the
// queue — later commands still execute, and the report is delivered to
// the first Wait on its command, or to the next Sync whose target
// covers it, whichever comes first. A total failure (validation error:
// nothing ran) is sticky: later queued commands are skipped (their
// Pending handles report the same error) until a Sync whose target
// covers the failing ticket observes and clears it, matching the SDK's
// sticky async error model. Scoping both tiers to the sync target keeps
// a concurrent producer's Sync from consuming an error that belongs to
// a command enqueued after its sync point.
package host

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"pimdnn/internal/dpu"
	"pimdnn/internal/trace"
)

// ErrClosed is reported by Pending handles and Sync for commands that
// were still queued (or enqueued) when the System was closed.
var ErrClosed = errors.New("host: system closed")

type opKind uint8

const (
	opCopyTo opKind = iota + 1
	opPushXfer
	opLaunch
	opGather
	opCopyFrom
	opWave
	opCopyToDPU
	opLaunchDPU
)

// queuedFault records one command's partial-failure report until its
// Wait or a covering Sync claims it.
type queuedFault struct {
	ticket uint64
	err    error
}

// asyncOp is one queued command. A single fat struct keeps the ring
// buffer allocation-free: enqueueing reuses ring slots instead of boxing
// per-kind payloads.
type asyncOp struct {
	kind   opKind
	ticket uint64

	// Scatter-side arguments (opCopyTo data, opPushXfer/opGather bufs,
	// opCopyFrom dst via data, opWave scatter).
	ref  SymbolRef
	off  int64
	data []byte
	bufs [][]byte

	// n is the per-DPU byte count for opGather, the DPU index for
	// opCopyFrom/opCopyToDPU/opLaunchDPU, and the DPU count for
	// opLaunch/opWave.
	n        int
	tasklets int
	kernel   dpu.KernelFunc
	stats    *LaunchStats

	// Gather-side arguments for opWave.
	gref  SymbolRef
	goff  int64
	gbufs [][]byte

	// enqNS is the wall-clock enqueue instant (UnixNano) when telemetry
	// or tracing is wired, 0 otherwise; the executor observes the
	// command latency.
	enqNS int64

	// sp, when non-nil, is the request span this command belongs to
	// (captured from System.qspan at enqueue time); the executor stamps
	// a child span around the command's execution window.
	sp *trace.Span
}

// Pending is a future-style handle for one enqueued command. The zero
// value is a resolved no-op.
type Pending struct {
	s      *System
	ticket uint64
}

// Wait blocks until the command has executed or been skipped. It
// returns nil for commands that completed, the command's own
// *FaultReport if it failed partially (delivered to the first Wait,
// then cleared — a later Sync sees nil), and the sticky queue error for
// a totally-failed command and every command skipped after it. Unlike
// Sync, Wait never clears the sticky error.
func (p Pending) Wait() error {
	s := p.s
	if s == nil {
		return nil
	}
	s.qmu.Lock()
	for s.qDone < p.ticket {
		s.qcond.Wait()
	}
	var err error
	if s.qErr != nil && s.qErrTicket <= p.ticket {
		err = s.qErr
	} else {
		for i, f := range s.qFaults {
			if f.ticket == p.ticket {
				err = f.err
				s.qFaults = append(s.qFaults[:i], s.qFaults[i+1:]...)
				break
			}
		}
	}
	s.qmu.Unlock()
	return err
}

// Done reports whether the command has executed (or been skipped)
// without blocking.
func (p Pending) Done() bool {
	s := p.s
	if s == nil {
		return true
	}
	s.qmu.Lock()
	done := s.qDone >= p.ticket
	s.qmu.Unlock()
	return done
}

// Sync waits until every command enqueued before the call has executed
// (dpu_sync), returns the earliest unclaimed error among them, and
// clears every error in that range so the queue accepts new work.
// Errors of commands enqueued after the Sync snapshot — a concurrent
// producer's — are left for that producer's own Wait or Sync.
func (s *System) Sync() error {
	s.qmu.Lock()
	target := s.qNext
	for s.qDone < target {
		s.qcond.Wait()
	}
	var err error
	var errTicket uint64
	if s.qErr != nil && s.qErrTicket <= target {
		err, errTicket = s.qErr, s.qErrTicket
		s.qErr, s.qErrTicket = nil, 0
	}
	// Claim the partial-failure reports in range; the earliest one wins
	// if it precedes the sticky error (the rest are dropped, matching
	// the first-error contract).
	kept := s.qFaults[:0]
	for _, f := range s.qFaults {
		if f.ticket > target {
			kept = append(kept, f)
			continue
		}
		if err == nil || f.ticket < errTicket {
			err, errTicket = f.err, f.ticket
		}
	}
	s.qFaults = kept
	s.qmu.Unlock()
	return err
}

// EnqueueCopyTo queues a broadcast of data to the referenced symbol on
// every DPU (async dpu_copy_to). The caller must not modify data until
// the command has executed.
func (s *System) EnqueueCopyTo(ref SymbolRef, offset int64, data []byte) Pending {
	return s.enqueue(asyncOp{kind: opCopyTo, ref: ref, off: offset, data: data})
}

// EnqueuePushXfer queues a scatter of buffers[i] to DPU i (async
// dpu_push_xfer). Like PushXferRef it requires one equal-length buffer
// per DPU; the buffers must stay untouched until the command executes.
func (s *System) EnqueuePushXfer(ref SymbolRef, offset int64, buffers [][]byte) Pending {
	return s.enqueue(asyncOp{kind: opPushXfer, ref: ref, off: offset, bufs: buffers})
}

// EnqueueGather queues a gather of n bytes per DPU into dst, which names
// one buffer for each of the first len(dst) DPUs. The buffers are only
// valid to read after Wait/Sync.
func (s *System) EnqueueGather(ref SymbolRef, offset int64, n int, dst [][]byte) Pending {
	return s.enqueue(asyncOp{kind: opGather, ref: ref, off: offset, n: n, bufs: dst})
}

// EnqueueCopyFrom queues a read of len(dst) bytes from one DPU's symbol
// into dst, valid after Wait/Sync.
func (s *System) EnqueueCopyFrom(dpuIdx int, ref SymbolRef, offset int64, dst []byte) Pending {
	return s.enqueue(asyncOp{kind: opCopyFrom, ref: ref, off: offset, n: dpuIdx, data: dst})
}

// EnqueueCopyToDPU queues a write of data to one DPU's symbol (the
// async CopyToDPURef). Pipelined runners use it to re-dispatch a failed
// DPU's inputs onto a surviving DPU without breaking queue ordering.
func (s *System) EnqueueCopyToDPU(dpuIdx int, ref SymbolRef, offset int64, data []byte) Pending {
	return s.enqueue(asyncOp{kind: opCopyToDPU, ref: ref, off: offset, n: dpuIdx, data: data})
}

// EnqueueLaunchDPU queues a kernel launch on the single DPU at dpuIdx
// (the async LaunchDPU), the launch half of a queued re-dispatch.
func (s *System) EnqueueLaunchDPU(dpuIdx, tasklets int, kernel dpu.KernelFunc, stats *LaunchStats) Pending {
	return s.enqueue(asyncOp{kind: opLaunchDPU, n: dpuIdx, tasklets: tasklets, kernel: kernel, stats: stats})
}

// EnqueueLaunch queues a kernel launch on the first n DPUs. If stats is
// non-nil, the launch statistics are stored through it before the
// command's Pending resolves.
func (s *System) EnqueueLaunch(n, tasklets int, kernel dpu.KernelFunc, stats *LaunchStats) Pending {
	return s.enqueue(asyncOp{kind: opLaunch, n: n, tasklets: tasklets, kernel: kernel, stats: stats})
}

// LaunchAsync queues a kernel launch on every DPU — dpu_launch with
// DPU_ASYNCHRONOUS. Errors surface at Wait or Sync.
func (s *System) LaunchAsync(tasklets int, kernel dpu.KernelFunc, stats *LaunchStats) Pending {
	return s.EnqueueLaunch(len(s.dpus), tasklets, kernel, stats)
}

// PushXferAsync is the string-keyed EnqueuePushXfer; the symbol resolves
// eagerly so an unknown name fails at enqueue time rather than at Sync.
func (s *System) PushXferAsync(symbol string, offset int64, buffers [][]byte) (Pending, error) {
	ref, err := s.Resolve(symbol)
	if err != nil {
		return Pending{}, err
	}
	return s.EnqueuePushXfer(ref, offset, buffers), nil
}

// Wave is one fused scatter→launch→gather command for EnqueueWave: the
// per-wave unit of the double-buffered runners. The executor interleaves
// the three phases per DPU (scatter DPU i, launch DPU i, gather DPU i)
// instead of sweeping all DPUs per phase — each DPU's staging buffers
// and memory stay cache-hot across its three touches, and on the worker
// pool no barrier separates the phases. The simulated accounting is
// phase-granular exactly like the discrete commands: one transfer charge
// for the scatter, one launch (max-over-DPUs cycles into Stats), one
// transfer charge for the gather.
type Wave struct {
	// DPUs is the launch width: the wave runs on the first DPUs DPUs.
	DPUs     int
	Tasklets int
	Kernel   dpu.KernelFunc
	// Stats, if non-nil, receives the launch statistics. Its PerDPU
	// backing array is reused across waves when capacity allows.
	Stats *LaunchStats

	// Scatter names the input symbol; In holds one equal-length buffer
	// per participating DPU. A zero Scatter ref skips the phase.
	Scatter    SymbolRef
	ScatterOff int64
	In         [][]byte

	// Gather names the output symbol; Out holds one equal-length buffer
	// per participating DPU. A zero Gather ref skips the phase.
	Gather    SymbolRef
	GatherOff int64
	Out       [][]byte
}

// EnqueueWave queues a fused scatter→launch→gather wave. All referenced
// buffers belong to the queue until the command executes. The wave is
// best-effort per DPU: a DPU that fails in any phase is reported in the
// command's *FaultReport (its Out buffer is not written), while every
// other DPU completes its full scatter→launch→gather and is charged
// normally.
func (s *System) EnqueueWave(w Wave) Pending {
	return s.enqueue(asyncOp{
		kind: opWave, n: w.DPUs, tasklets: w.Tasklets, kernel: w.Kernel, stats: w.Stats,
		ref: w.Scatter, off: w.ScatterOff, bufs: w.In,
		gref: w.Gather, goff: w.GatherOff, gbufs: w.Out,
	})
}

// enqueue appends op to the ring and wakes (or starts) the executor.
func (s *System) enqueue(op asyncOp) Pending {
	if s.met != nil {
		op.enqNS = time.Now().UnixNano()
	}
	s.qmu.Lock()
	if s.qspan != nil {
		op.sp = s.qspan
		if op.enqNS == 0 {
			op.enqNS = time.Now().UnixNano()
		}
	}
	s.qNext++
	op.ticket = s.qNext
	if s.qClosed {
		// The queue is gone; resolve immediately with the sticky error.
		s.qDone = op.ticket
		if s.qErr == nil {
			s.qErr = ErrClosed
			s.qErrTicket = op.ticket
		}
		s.qmu.Unlock()
		s.qcond.Broadcast()
		return Pending{s: s, ticket: op.ticket}
	}
	s.qpush(op)
	s.meterQueueDepth()
	if !s.qRunning {
		s.qRunning = true
		go s.qrunFn()
	}
	t := op.ticket
	s.qmu.Unlock()
	s.qcond.Broadcast()
	return Pending{s: s, ticket: t}
}

func (s *System) qpush(op asyncOp) {
	if s.qcount == len(s.qring) {
		grown := make([]asyncOp, max(8, 2*len(s.qring)))
		for i := 0; i < s.qcount; i++ {
			grown[i] = s.qring[(s.qhead+i)%len(s.qring)]
		}
		s.qring = grown
		s.qhead = 0
	}
	s.qring[(s.qhead+s.qcount)%len(s.qring)] = op
	s.qcount++
}

func (s *System) qpop() asyncOp {
	op := s.qring[s.qhead]
	// Zero the slot so the ring doesn't pin kernel closures and staging
	// buffers past their command.
	s.qring[s.qhead] = asyncOp{}
	s.qhead = (s.qhead + 1) % len(s.qring)
	s.qcount--
	return op
}

// qrun is the executor: it drains the ring in FIFO order and exits when
// the ring empties. Exiting (rather than parking) keeps an idle System
// free of goroutines that reference it, so the Close finalizer of a
// dropped System can still fire; enqueue restarts the executor on the
// next burst.
func (s *System) qrun() {
	s.qmu.Lock()
	for {
		if s.qcount == 0 {
			s.qRunning = false
			s.qmu.Unlock()
			s.qcond.Broadcast()
			return
		}
		s.qcur = s.qpop()
		s.meterQueueDepth()
		ticket := s.qcur.ticket
		enqNS := s.qcur.enqNS
		skip := s.qErr != nil || s.qClosed
		s.qmu.Unlock()
		var err error
		if !skip {
			if s.qcur.sp != nil {
				t0 := time.Now()
				err = s.execOp(&s.qcur)
				s.traceOp(&s.qcur, t0)
			} else {
				err = s.execOp(&s.qcur)
			}
		}
		s.meterCmdLatency(enqNS)
		s.qcur = asyncOp{} // release buffer/kernel references
		s.qmu.Lock()
		switch {
		case err == nil:
			if skip && s.qErr == nil {
				// Only reachable when Close raced in with commands still
				// queued: fail them rather than touching closed workers.
				s.qErr, s.qErrTicket = ErrClosed, ticket
			}
		case isFaultReport(err):
			// Partial failure: the command ran best-effort and was
			// charged for what completed. Record the report for its
			// Wait/Sync without poisoning the queue, so retry commands
			// the producer enqueues afterwards still execute.
			s.qFaults = append(s.qFaults, queuedFault{ticket: ticket, err: err})
		default:
			if s.qErr == nil {
				s.qErr, s.qErrTicket = err, ticket
			}
		}
		s.qDone = ticket
		s.qcond.Broadcast()
	}
}

func (s *System) execOp(op *asyncOp) error {
	switch op.kind {
	case opCopyTo:
		return s.CopyToSymbolRef(op.ref, op.off, op.data)
	case opPushXfer:
		return s.PushXferRef(op.ref, op.off, op.bufs)
	case opGather:
		return s.GatherXferRefInto(op.ref, op.off, op.n, op.bufs)
	case opCopyFrom:
		return s.CopyFromDPURefInto(op.n, op.ref, op.off, op.data)
	case opLaunch:
		ls, err := s.LaunchOn(op.n, op.tasklets, op.kernel)
		if op.stats != nil && !isTotalError(err) {
			*op.stats = ls
		}
		return err
	case opCopyToDPU:
		return s.CopyToDPURef(op.n, op.ref, op.off, op.data)
	case opLaunchDPU:
		ls, err := s.LaunchDPU(op.n, op.tasklets, op.kernel)
		if err != nil {
			return err
		}
		if op.stats != nil {
			*op.stats = ls
		}
		return nil
	case opWave:
		return s.execWave(op)
	}
	return fmt.Errorf("host: unknown async command kind %d", op.kind)
}

// execWave runs one fused wave. Validation happens up front for every
// DPU (a total failure: nothing runs, nothing is charged) so per-DPU
// failures can only come from the device itself, matching where the
// discrete command sequence would fail.
func (s *System) execWave(op *asyncOp) error {
	n := op.n
	if n < 1 || n > len(s.dpus) {
		return fmt.Errorf("host: wave on %d DPUs, system has %d", n, len(s.dpus))
	}
	scatter := op.ref.valid()
	var inLen int
	if scatter {
		if len(op.bufs) != n {
			return fmt.Errorf("host: wave scatter got %d buffers for %d DPUs", len(op.bufs), n)
		}
		inLen = len(op.bufs[0])
		for i, b := range op.bufs {
			if len(b) != inLen {
				return fmt.Errorf("host: wave scatter buffer %d has length %d, want %d", i, len(b), inLen)
			}
		}
		if err := checkRef(op.ref, op.off, inLen); err != nil {
			return err
		}
	}
	gather := op.gref.valid()
	var outLen int
	if gather {
		if len(op.gbufs) != n {
			return fmt.Errorf("host: wave gather got %d buffers for %d DPUs", len(op.gbufs), n)
		}
		outLen = len(op.gbufs[0])
		for i, b := range op.gbufs {
			if len(b) != outLen {
				return fmt.Errorf("host: wave gather buffer %d has length %d, want %d", i, len(b), outLen)
			}
		}
		if err := checkRef(op.gref, op.goff, outLen); err != nil {
			return err
		}
	}
	// Per-DPU stats land in the caller's PerDPU backing array when it is
	// large enough, so steady-state waves don't allocate it per call.
	// The backing array is reused across waves and now survives partial
	// failures, so stale entries must be cleared before the run.
	var per []dpu.Stats
	if op.stats != nil && cap(op.stats.PerDPU) >= n {
		per = op.stats.PerDPU[:n]
		for i := range per {
			per[i] = dpu.Stats{}
		}
	} else {
		per = make([]dpu.Stats, n)
	}
	if cap(s.waveErrs) < n {
		s.waveErrs = make([]error, n)
	}
	errs := s.waveErrs[:n]
	for i := range errs {
		errs[i] = nil
	}
	// phase records how far each DPU got, so the wave charges exactly
	// what ran: scatter bytes for the DPUs that scattered, max cycles
	// over the DPUs that launched, gather bytes for those that gathered.
	const (
		waveScattered = 1 << iota
		waveLaunched
		waveGathered
	)
	if cap(s.wavePhase) < n {
		s.wavePhase = make([]uint8, n)
	}
	phase := s.wavePhase[:n]
	for i := range phase {
		phase[i] = 0
	}
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if scatter {
				if err := s.copyToOne(i, op.ref, op.off, op.bufs[i]); err != nil {
					errs[i] = err
					continue
				}
				phase[i] |= waveScattered
			}
			st, err := s.dpus[i].Launch(op.tasklets, op.kernel)
			if err != nil {
				errs[i] = err
				continue
			}
			per[i] = st
			phase[i] |= waveLaunched
			if gather {
				if err := s.copyFromOneInto(i, op.gref, op.goff, op.gbufs[i]); err != nil {
					errs[i] = err
					continue
				}
				phase[i] |= waveGathered
			}
		}
	}
	if n == 1 {
		run(0, 1)
	} else {
		s.pool.runAligned(n, s.perRank, run)
	}
	// Charge in the same order as the discrete command sequence the wave
	// fuses: scatter transfer (rank-parallel, like finishXfer), launch
	// time, gather transfer.
	if scatter {
		nS, busiest := s.rankOKPhase(phase, waveScattered)
		if nS > 0 {
			s.chargeTransferRanks(inLen, nS, busiest)
			s.meterXfer(true, inLen*nS)
		}
	}
	var maxCycles uint64
	var energy float64
	for i := range per {
		if phase[i]&waveLaunched == 0 {
			continue
		}
		if per[i].Cycles > maxCycles {
			maxCycles = per[i].Cycles
		}
		energy += per[i].EnergyJ
	}
	sec := float64(maxCycles) / s.cfg.DPU.FrequencyHz
	lt := time.Duration(sec * float64(time.Second))
	if op.stats != nil {
		*op.stats = LaunchStats{PerDPU: per, Cycles: maxCycles, Seconds: sec, Time: lt, EnergyJ: energy}
	}
	s.mu.Lock()
	s.dpuTime += lt
	s.mu.Unlock()
	if gather {
		nG, busiest := s.rankOKPhase(phase, waveGathered)
		if nG > 0 {
			s.chargeTransferRanks(outLen, nG, busiest)
			s.meterXfer(false, outLen*nG)
		}
	}
	return s.noteFaults(faultsFrom("wave", errs))
}

// PipelineMode selects whether a runner double-buffers waves through the
// async queue or runs each wave to completion synchronously. Both modes
// produce identical results and identical simulated-time accounting.
type PipelineMode int

const (
	// PipelineAuto pipelines when more than one CPU is available to
	// overlap host staging with queued device work; on a single CPU the
	// overlap cannot pay for the handoff, so runners stay synchronous.
	PipelineAuto PipelineMode = iota
	PipelineOn
	PipelineOff
)

// Enabled resolves the mode against the running machine.
func (m PipelineMode) Enabled() bool {
	switch m {
	case PipelineOn:
		return true
	case PipelineOff:
		return false
	default:
		return runtime.GOMAXPROCS(0) > 1
	}
}

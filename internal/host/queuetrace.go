package host

import (
	"time"

	"pimdnn/internal/trace"
)

// Request-tracing hooks for the asynchronous command queue. When a
// runner dispatches on behalf of a traced request, it installs the
// request's span here; every command enqueued while the span is set
// carries it, and the executor stamps a retroactive child span around
// the command's execution window (plus how long it sat queued). With
// no span installed the only cost on the enqueue path is one nil
// check — the same contract as the metrics hooks.

// opTraceNames maps opKind to the queue-command span name. Indexed by
// kind (1-based), with a fixed table so naming a span allocates
// nothing.
var opTraceNames = [...]string{
	opCopyTo:    "q.copy_to",
	opPushXfer:  "q.push_xfer",
	opLaunch:    "q.launch",
	opGather:    "q.gather",
	opCopyFrom:  "q.copy_from",
	opWave:      "q.wave",
	opCopyToDPU: "q.copy_to_dpu",
	opLaunchDPU: "q.launch_dpu",
}

// SetTraceSpan installs sp as the parent of queue-command spans for
// commands enqueued from now on; nil uninstalls. Safe to call
// concurrently with enqueues — commands in flight keep the span they
// captured at enqueue time.
func (s *System) SetTraceSpan(sp *trace.Span) {
	s.qmu.Lock()
	s.qspan = sp
	s.qmu.Unlock()
}

// opTraceBytes returns the payload size a queue-command span reports:
// the summed buffer bytes the command moves (0 for pure launches).
func opTraceBytes(op *asyncOp) int64 {
	var b int64
	switch op.kind {
	case opCopyTo, opCopyFrom, opCopyToDPU:
		b = int64(len(op.data))
	case opPushXfer:
		for _, buf := range op.bufs {
			b += int64(len(buf))
		}
	case opGather:
		b = int64(op.n) * int64(len(op.bufs))
	case opWave:
		for _, buf := range op.bufs {
			b += int64(len(buf))
		}
		for _, buf := range op.gbufs {
			b += int64(len(buf))
		}
	}
	return b
}

// traceOp stamps one executed command's span: a child of the span the
// command captured at enqueue time, covering [t0, now], with the
// queue-wait and payload sizes as attributes.
func (s *System) traceOp(op *asyncOp, t0 time.Time) {
	c := op.sp.StartChildAt(opTraceNames[op.kind], t0)
	if op.enqNS != 0 {
		c.SetAttr("queued_ns", t0.UnixNano()-op.enqNS)
	}
	c.SetAttr("ticket", int64(op.ticket))
	if b := opTraceBytes(op); b > 0 {
		c.SetAttr("bytes", b)
	}
	c.EndAt(time.Now())
}

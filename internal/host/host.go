// Package host implements the host-side runtime that drives a set of
// simulated UPMEM DPUs.
//
// It mirrors the UPMEM SDK's host API surface as described in thesis §3.1
// and §3.2: DPU-set allocation, broadcast transfers (dpu_copy_to,
// Eq 3.1), per-DPU scatter/gather transfers (dpu_prepare_xfer +
// dpu_push_xfer, Eqs 3.2–3.3), symbol-addressed MRAM/WRAM buffers, the
// 8-byte alignment/padding rule, and synchronous parallel kernel launch.
// System-level time for a launch is the maximum over the participating
// DPUs, which is how the thesis computes multi-DPU completion time
// (§4.1.3: "run in parallel to finish their batch of images at the max
// time for one DPU").
package host

import (
	"fmt"
	"sync"
	"time"

	"pimdnn/internal/dpu"
	"pimdnn/internal/trace"
)

// Config parameterizes the simulated host<->PIM interconnect.
type Config struct {
	// DPU is the configuration applied to every allocated DPU.
	DPU dpu.Config
	// TransferBandwidth is the host<->MRAM streaming rate in bytes/s
	// used by the host clock (typical DDR4 DIMM-level rate).
	TransferBandwidth float64
	// TransferLatency is the fixed per-transfer host overhead.
	TransferLatency time.Duration
}

// DefaultConfig returns a host configuration wrapping the Table 2.1 DPU
// defaults at the given optimization level.
func DefaultConfig(opt dpu.OptLevel) Config {
	return Config{
		DPU:               dpu.DefaultConfig(opt),
		TransferBandwidth: 1 << 30, // 1 GiB/s
		TransferLatency:   20 * time.Microsecond,
	}
}

// System is an allocated set of DPUs (the SDK's dpu_set_t).
type System struct {
	cfg  Config
	dpus []*dpu.DPU
	prof *trace.Profile

	mu           sync.Mutex
	hostXferTime time.Duration
	dpuTime      time.Duration
	xferCount    uint64
	xferBytes    uint64
}

// XferStats summarizes host<->PIM traffic since the last reset.
type XferStats struct {
	// Transfers is the number of transfer operations (a broadcast or
	// scatter over N DPUs counts once per API call).
	Transfers uint64
	// Bytes is the total payload moved, summed over DPUs.
	Bytes uint64
	// Time is the simulated transfer time.
	Time time.Duration
}

// NewSystem allocates n DPUs. n may not exceed the full UPMEM system size
// (2,560 DPUs across 20 DIMMs, Table 2.1).
func NewSystem(n int, cfg Config) (*System, error) {
	if n < 1 || n > dpu.SystemDPUs {
		return nil, fmt.Errorf("host: DPU count %d outside 1..%d", n, dpu.SystemDPUs)
	}
	if cfg.TransferBandwidth <= 0 {
		return nil, fmt.Errorf("host: non-positive transfer bandwidth %v", cfg.TransferBandwidth)
	}
	prof := trace.NewProfile()
	dpus := make([]*dpu.DPU, n)
	for i := range dpus {
		d, err := dpu.New(cfg.DPU)
		if err != nil {
			return nil, fmt.Errorf("host: allocating DPU %d: %w", i, err)
		}
		d.SetProfile(prof)
		dpus[i] = d
	}
	return &System{cfg: cfg, dpus: dpus, prof: prof}, nil
}

// NumDPUs returns the number of allocated DPUs.
func (s *System) NumDPUs() int { return len(s.dpus) }

// DPU returns the i-th DPU.
func (s *System) DPU(i int) *dpu.DPU { return s.dpus[i] }

// Profile returns the aggregate subroutine profile shared by all DPUs.
func (s *System) Profile() *trace.Profile { return s.prof }

// Config returns the host configuration.
func (s *System) Config() Config { return s.cfg }

// AllocMRAM defines an MRAM symbol of the given size on every DPU.
func (s *System) AllocMRAM(name string, size int64) error {
	for i, d := range s.dpus {
		if _, err := d.AllocMRAM(name, size); err != nil {
			return fmt.Errorf("host: DPU %d: %w", i, err)
		}
	}
	return nil
}

// AllocWRAM defines a host-visible WRAM symbol on every DPU.
func (s *System) AllocWRAM(name string, size int64) error {
	for i, d := range s.dpus {
		if _, err := d.AllocWRAM(name, size); err != nil {
			return fmt.Errorf("host: DPU %d: %w", i, err)
		}
	}
	return nil
}

// symbolTarget resolves a symbol and bounds-checks an access of n bytes
// at offset within it.
func (s *System) symbolTarget(dpuIdx int, symbol string, offset int64, n int) (dpu.Symbol, error) {
	sym, ok := s.dpus[dpuIdx].Symbol(symbol)
	if !ok {
		return dpu.Symbol{}, fmt.Errorf("host: DPU %d: unknown symbol %q", dpuIdx, symbol)
	}
	if offset < 0 || offset+int64(n) > sym.Size {
		return dpu.Symbol{}, fmt.Errorf("host: DPU %d: access [%d, %d) outside symbol %q of size %d",
			dpuIdx, offset, offset+int64(n), symbol, sym.Size)
	}
	return sym, nil
}

// CopyToSymbol broadcasts the same data to the named symbol on every DPU
// (dpu_copy_to, Eq 3.1). Data destined for MRAM must be 8-byte padded;
// use Pad8 for arbitrary payloads.
func (s *System) CopyToSymbol(symbol string, offset int64, data []byte) error {
	for i := range s.dpus {
		if err := s.copyToOne(i, symbol, offset, data); err != nil {
			return err
		}
	}
	s.chargeTransfer(len(data) * len(s.dpus))
	return nil
}

// CopyToDPU writes data to the named symbol on a single DPU.
func (s *System) CopyToDPU(dpuIdx int, symbol string, offset int64, data []byte) error {
	if err := s.checkIdx(dpuIdx); err != nil {
		return err
	}
	if err := s.copyToOne(dpuIdx, symbol, offset, data); err != nil {
		return err
	}
	s.chargeTransfer(len(data))
	return nil
}

func (s *System) copyToOne(dpuIdx int, symbol string, offset int64, data []byte) error {
	sym, err := s.symbolTarget(dpuIdx, symbol, offset, len(data))
	if err != nil {
		return err
	}
	d := s.dpus[dpuIdx]
	if sym.Kind == dpu.SymbolWRAM {
		return d.CopyToWRAM(sym.Offset+offset, data)
	}
	return d.CopyToMRAM(sym.Offset+offset, data)
}

// PushXfer scatters per-DPU buffers to the named symbol: buffers[i] goes
// to DPU i (dpu_prepare_xfer + dpu_push_xfer, Eqs 3.2–3.3). All buffers
// must share one length, the transfer length of the push; pad shorter
// payloads with Pad8 and communicate true sizes separately, as §3.2
// prescribes.
func (s *System) PushXfer(symbol string, offset int64, buffers [][]byte) error {
	if len(buffers) != len(s.dpus) {
		return fmt.Errorf("host: PushXfer got %d buffers for %d DPUs", len(buffers), len(s.dpus))
	}
	if len(buffers) == 0 {
		return nil
	}
	n := len(buffers[0])
	for i, b := range buffers {
		if len(b) != n {
			return fmt.Errorf("host: PushXfer buffer %d has length %d, want %d (single transfer length)", i, len(b), n)
		}
	}
	for i, b := range buffers {
		if err := s.copyToOne(i, symbol, offset, b); err != nil {
			return err
		}
	}
	s.chargeTransfer(n * len(buffers))
	return nil
}

// GatherXfer reads n bytes from the named symbol on every DPU and returns
// one buffer per DPU.
func (s *System) GatherXfer(symbol string, offset int64, n int) ([][]byte, error) {
	out := make([][]byte, len(s.dpus))
	for i := range s.dpus {
		b, err := s.copyFromOne(i, symbol, offset, n)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	s.chargeTransfer(n * len(s.dpus))
	return out, nil
}

// CopyFromDPU reads n bytes from the named symbol on one DPU.
func (s *System) CopyFromDPU(dpuIdx int, symbol string, offset int64, n int) ([]byte, error) {
	if err := s.checkIdx(dpuIdx); err != nil {
		return nil, err
	}
	b, err := s.copyFromOne(dpuIdx, symbol, offset, n)
	if err != nil {
		return nil, err
	}
	s.chargeTransfer(n)
	return b, nil
}

func (s *System) copyFromOne(dpuIdx int, symbol string, offset int64, n int) ([]byte, error) {
	sym, err := s.symbolTarget(dpuIdx, symbol, offset, n)
	if err != nil {
		return nil, err
	}
	d := s.dpus[dpuIdx]
	if sym.Kind == dpu.SymbolWRAM {
		return d.CopyFromWRAM(sym.Offset+offset, n)
	}
	return d.CopyFromMRAM(sym.Offset+offset, n)
}

func (s *System) checkIdx(i int) error {
	if i < 0 || i >= len(s.dpus) {
		return fmt.Errorf("host: DPU index %d outside 0..%d", i, len(s.dpus)-1)
	}
	return nil
}

// LaunchStats aggregates one parallel launch across the system.
type LaunchStats struct {
	// PerDPU holds each DPU's launch statistics.
	PerDPU []dpu.Stats
	// Cycles is the system completion time in DPU cycles: the maximum
	// over DPUs, since they run in parallel.
	Cycles uint64
	// Seconds is Cycles through the DPU clock.
	Seconds float64
	// Time is Seconds as a duration.
	Time time.Duration
	// EnergyJ sums the participating DPUs' energy for the launch.
	EnergyJ float64
}

// Launch runs the kernel with the given tasklet count on every DPU in
// parallel (dpu_launch with DPU_SYNCHRONOUS) and blocks until all finish.
func (s *System) Launch(tasklets int, kernel dpu.KernelFunc) (LaunchStats, error) {
	return s.LaunchOn(len(s.dpus), tasklets, kernel)
}

// LaunchOn runs the kernel on the first n DPUs only, which is how the
// thesis's dynamic DPU assignment uses "an optimum number of DPUs for
// processing each layer" (§4.2, Fig 4.6: one DPU per output row).
func (s *System) LaunchOn(n, tasklets int, kernel dpu.KernelFunc) (LaunchStats, error) {
	if n < 1 || n > len(s.dpus) {
		return LaunchStats{}, fmt.Errorf("host: launch on %d DPUs, system has %d", n, len(s.dpus))
	}
	stats := make([]dpu.Stats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = s.dpus[i].Launch(tasklets, kernel)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return LaunchStats{}, fmt.Errorf("host: DPU %d: %w", i, err)
		}
	}
	var maxCycles uint64
	var energy float64
	for _, st := range stats {
		if st.Cycles > maxCycles {
			maxCycles = st.Cycles
		}
		energy += st.EnergyJ
	}
	sec := float64(maxCycles) / s.cfg.DPU.FrequencyHz
	ls := LaunchStats{
		PerDPU:  stats,
		Cycles:  maxCycles,
		Seconds: sec,
		Time:    time.Duration(sec * float64(time.Second)),
		EnergyJ: energy,
	}
	s.mu.Lock()
	s.dpuTime += ls.Time
	s.mu.Unlock()
	return ls, nil
}

// chargeTransfer advances the host clock for a host<->PIM transfer of n
// payload bytes.
func (s *System) chargeTransfer(n int) {
	d := s.cfg.TransferLatency +
		time.Duration(float64(n)/s.cfg.TransferBandwidth*float64(time.Second))
	s.mu.Lock()
	s.hostXferTime += d
	s.xferCount++
	s.xferBytes += uint64(n)
	s.mu.Unlock()
}

// TransferStats returns the accumulated host<->PIM traffic summary.
func (s *System) TransferStats() XferStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return XferStats{Transfers: s.xferCount, Bytes: s.xferBytes, Time: s.hostXferTime}
}

// HostTransferTime returns the accumulated simulated host<->PIM transfer
// time.
func (s *System) HostTransferTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hostXferTime
}

// DPUTime returns the accumulated simulated DPU execution time across
// launches (system-parallel time, not per-DPU busy time).
func (s *System) DPUTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dpuTime
}

// ResetClocks zeroes the accumulated host and DPU clocks and the
// transfer counters.
func (s *System) ResetClocks() {
	s.mu.Lock()
	s.hostXferTime = 0
	s.dpuTime = 0
	s.xferCount = 0
	s.xferBytes = 0
	s.mu.Unlock()
	for _, d := range s.dpus {
		d.ResetClock()
	}
}

// Pad8 returns data padded with zeros to the next multiple of 8 bytes,
// together with the original length. It implements the §3.2 workaround:
// "padding to the sent/received memory buffers from the DPUs needs to be
// added [and] the size of the non-padded buffer must be sent from the
// host to the DPU."
func Pad8(data []byte) (padded []byte, origLen int) {
	origLen = len(data)
	rem := origLen % dpu.DMAAlignment
	if rem == 0 {
		return data, origLen
	}
	padded = make([]byte, origLen+dpu.DMAAlignment-rem)
	copy(padded, data)
	return padded, origLen
}

// PadTo returns data zero-padded to exactly n bytes. It errors if data is
// longer than n.
func PadTo(data []byte, n int) ([]byte, error) {
	if len(data) > n {
		return nil, fmt.Errorf("host: PadTo: data length %d exceeds target %d", len(data), n)
	}
	if len(data) == n {
		return data, nil
	}
	out := make([]byte, n)
	copy(out, data)
	return out, nil
}

// Package host implements the host-side runtime that drives a set of
// simulated UPMEM DPUs.
//
// It mirrors the UPMEM SDK's host API surface as described in thesis §3.1
// and §3.2: DPU-set allocation, broadcast transfers (dpu_copy_to,
// Eq 3.1), per-DPU scatter/gather transfers (dpu_prepare_xfer +
// dpu_push_xfer, Eqs 3.2–3.3), symbol-addressed MRAM/WRAM buffers, the
// 8-byte alignment/padding rule, and synchronous parallel kernel launch.
// System-level time for a launch is the maximum over the participating
// DPUs, which is how the thesis computes multi-DPU completion time
// (§4.1.3: "run in parallel to finish their batch of images at the max
// time for one DPU").
//
// Simulated time (DPU cycles, host transfer time) is charged per API
// call and is independent of how the simulator schedules the work on
// the real machine: launches and large transfers are executed by a
// persistent worker pool sized to GOMAXPROCS, and the cycle/transfer
// accounting is bit-identical to the serial loops it replaced.
package host

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"pimdnn/internal/dpu"
	"pimdnn/internal/trace"
)

// Config parameterizes the simulated host<->PIM interconnect.
type Config struct {
	// DPU is the configuration applied to every allocated DPU.
	DPU dpu.Config
	// TransferBandwidth is the host<->MRAM streaming rate in bytes/s of
	// one rank channel (typical DDR4 DIMM-level rate). Ranks transfer
	// in parallel, so a multi-rank scatter's modeled time is the
	// busiest rank's serial share, not the whole payload at this rate
	// (see topology.go).
	TransferBandwidth float64
	// TransferLatency is the fixed per-transfer host overhead.
	TransferLatency time.Duration
	// Topology groups the DPUs into DIMM ranks; the zero value derives
	// ranks of dpu.DPUsPerRank from the DPU count.
	Topology Topology
}

// DefaultConfig returns a host configuration wrapping the Table 2.1 DPU
// defaults at the given optimization level.
func DefaultConfig(opt dpu.OptLevel) Config {
	return Config{
		DPU:               dpu.DefaultConfig(opt),
		TransferBandwidth: 1 << 30, // 1 GiB/s
		TransferLatency:   20 * time.Microsecond,
	}
}

// System is an allocated set of DPUs (the SDK's dpu_set_t).
type System struct {
	cfg  Config
	dpus []*dpu.DPU
	prof *trace.Profile
	pool *workerPool

	// perRank/ranks are the resolved Config.Topology (topology.go);
	// xferTally and waveTally are the per-rank tally scratches of the
	// transfer and wave charging paths.
	perRank   int
	ranks     int
	xferTally []int
	waveTally []int

	// symbols caches the uniform symbol table built by AllocMRAM /
	// AllocWRAM so transfers resolve names with one map lookup per call
	// instead of one per DPU.
	symMu   sync.RWMutex
	symbols map[string]dpu.Symbol

	// met, when non-nil, holds the runtime's telemetry instruments
	// (metrics.go). Wired by EnableMetrics before concurrent use; every
	// hot path gates on one nil check.
	met *sysMetrics

	mu           sync.Mutex
	hostXferTime time.Duration
	dpuTime      time.Duration
	xferCount    uint64
	xferBytes    uint64

	// launchErrs and xferErrs are the reusable per-DPU error slices of
	// the synchronous launch and transfer paths. Those paths are not
	// safe for concurrent use on one System (the DPUs' memory is shared
	// state between calls anyway), so plain fields suffice.
	launchErrs []error
	xferErrs   []error

	// Asynchronous command queue state (queue.go). The ring holds
	// enqueued commands in FIFO order; qNext/qDone are the enqueue and
	// completion tickets; qErr/qErrTicket capture the first total
	// failure until Sync clears it, while qFaults holds per-command
	// partial-failure reports awaiting their Wait or Sync. waveErrs and
	// wavePhase are the executor's per-DPU scratch, kept separate from
	// launchErrs so a synchronous launch on another goroutine cannot
	// collide with a queued wave.
	qmu        sync.Mutex
	qcond      *sync.Cond
	qring      []asyncOp
	qhead      int
	qcount     int
	qNext      uint64
	qDone      uint64
	qErr       error
	qErrTicket uint64
	qRunning   bool
	qClosed    bool
	qFaults    []queuedFault
	waveErrs   []error
	wavePhase  []uint8
	// qcur is the executor's in-flight command. Popping into a System
	// field (rather than a local whose address flows into the worker
	// shards) keeps command execution allocation-free.
	qcur asyncOp
	// qrunFn is the executor entry point, allocated once so restarting
	// the executor after an idle period doesn't allocate a closure.
	qrunFn func()
	// qspan, when non-nil, parents queue-command trace spans
	// (queuetrace.go); commands capture it at enqueue time.
	qspan *trace.Span
}

// XferStats summarizes host<->PIM traffic since the last reset.
type XferStats struct {
	// Transfers is the number of transfer operations (a broadcast or
	// scatter over N DPUs counts once per API call).
	Transfers uint64
	// Bytes is the total payload moved, summed over DPUs.
	Bytes uint64
	// Time is the simulated transfer time.
	Time time.Duration
}

// NewSystem allocates n DPUs. n may not exceed the full UPMEM system size
// (2,560 DPUs across 20 DIMMs, Table 2.1).
func NewSystem(n int, cfg Config) (*System, error) {
	if n < 1 || n > dpu.SystemDPUs {
		return nil, fmt.Errorf("host: DPU count %d outside 1..%d", n, dpu.SystemDPUs)
	}
	if cfg.TransferBandwidth <= 0 {
		return nil, fmt.Errorf("host: non-positive transfer bandwidth %v", cfg.TransferBandwidth)
	}
	perRank, ranks, err := resolveTopology(n, cfg.Topology)
	if err != nil {
		return nil, err
	}
	prof := trace.NewProfile()
	dpus := make([]*dpu.DPU, n)
	for i := range dpus {
		d, err := dpu.New(cfg.DPU)
		if err != nil {
			return nil, fmt.Errorf("host: allocating DPU %d: %w", i, err)
		}
		d.SetProfile(prof)
		dpus[i] = d
	}
	s := &System{
		cfg:     cfg,
		dpus:    dpus,
		prof:    prof,
		pool:    newWorkerPool(),
		perRank: perRank,
		ranks:   ranks,
		symbols: make(map[string]dpu.Symbol),
	}
	s.qcond = sync.NewCond(&s.qmu)
	s.qrunFn = s.qrun
	// Dropped systems release their worker goroutines at GC time; Close
	// makes the release deterministic.
	runtime.SetFinalizer(s, (*System).Close)
	return s, nil
}

// Close drains the asynchronous command queue and stops the system's
// worker pool. Commands still queued (or enqueued afterwards) resolve
// with ErrClosed. The System must not be used for launches or transfers
// afterwards. Closing is optional — garbage collection of an unreachable
// System has the same effect — and idempotent.
func (s *System) Close() {
	runtime.SetFinalizer(s, nil)
	s.qmu.Lock()
	s.qClosed = true
	s.qcond.Broadcast()
	for s.qRunning {
		s.qcond.Wait()
	}
	s.qmu.Unlock()
	s.pool.close()
}

// NumDPUs returns the number of allocated DPUs.
func (s *System) NumDPUs() int { return len(s.dpus) }

// DPU returns the i-th DPU.
func (s *System) DPU(i int) *dpu.DPU { return s.dpus[i] }

// Profile returns the aggregate subroutine profile shared by all DPUs.
func (s *System) Profile() *trace.Profile { return s.prof }

// Config returns the host configuration.
func (s *System) Config() Config { return s.cfg }

// AllocMRAM defines an MRAM symbol of the given size on every DPU.
func (s *System) AllocMRAM(name string, size int64) error {
	var sym dpu.Symbol
	for i, d := range s.dpus {
		sm, err := d.AllocMRAM(name, size)
		if err != nil {
			return fmt.Errorf("host: DPU %d: %w", i, err)
		}
		if i == 0 {
			sym = sm
		}
	}
	s.symMu.Lock()
	s.symbols[name] = sym
	s.symMu.Unlock()
	return nil
}

// AllocWRAM defines a host-visible WRAM symbol on every DPU.
func (s *System) AllocWRAM(name string, size int64) error {
	var sym dpu.Symbol
	for i, d := range s.dpus {
		sm, err := d.AllocWRAM(name, size)
		if err != nil {
			return fmt.Errorf("host: DPU %d: %w", i, err)
		}
		if i == 0 {
			sym = sm
		}
	}
	s.symMu.Lock()
	s.symbols[name] = sym
	s.symMu.Unlock()
	return nil
}

// SymbolRef is a resolved symbol handle valid on every DPU of the
// System. Resolving once and passing the ref to the *Ref transfer
// variants skips the per-call symbol lookup on repeated transfers (the
// per-layer scatter/gather loops of the DNN runners).
type SymbolRef struct {
	name string
	kind dpu.SymbolKind
	off  int64
	size int64
}

// Name returns the symbol name the ref was resolved from.
func (r SymbolRef) Name() string { return r.name }

// Size returns the symbol's (padded) size in bytes.
func (r SymbolRef) Size() int64 { return r.size }

func (r SymbolRef) valid() bool { return r.kind != 0 }

// Resolve looks up a symbol defined on every DPU and returns a reusable
// handle. Symbols created through System.AllocMRAM/AllocWRAM are uniform
// by construction; symbols allocated directly on individual DPUs are
// honored only when every DPU agrees on their location.
func (s *System) Resolve(symbol string) (SymbolRef, error) {
	s.symMu.RLock()
	sym, ok := s.symbols[symbol]
	s.symMu.RUnlock()
	if !ok {
		sym0, found := s.dpus[0].Symbol(symbol)
		if !found {
			return SymbolRef{}, fmt.Errorf("host: unknown symbol %q", symbol)
		}
		for i, d := range s.dpus[1:] {
			if si, ok := d.Symbol(symbol); !ok || si != sym0 {
				return SymbolRef{}, fmt.Errorf("host: symbol %q not uniform across DPUs (differs on DPU %d)", symbol, i+1)
			}
		}
		sym = sym0
	}
	return SymbolRef{name: sym.Name, kind: sym.Kind, off: sym.Offset, size: sym.Size}, nil
}

// checkRef bounds-checks an access of n bytes at offset within the
// referenced symbol. The check runs once per transfer call; symbols are
// uniform across DPUs, so a per-DPU re-check would be redundant.
func checkRef(ref SymbolRef, offset int64, n int) error {
	if !ref.valid() {
		return fmt.Errorf("host: zero SymbolRef (use System.Resolve)")
	}
	// n is a buffer length and thus non-negative; checking offset against
	// the size first keeps a huge offset from wrapping offset+n negative
	// and slipping past the bound.
	if offset < 0 || offset > ref.size || int64(n) > ref.size-offset {
		return fmt.Errorf("host: access [%d, %d) outside symbol %q of size %d",
			offset, offset+int64(n), ref.name, ref.size)
	}
	return nil
}

func (s *System) copyToOne(i int, ref SymbolRef, offset int64, data []byte) error {
	d := s.dpus[i]
	if err := d.TransferFault(); err != nil {
		return err
	}
	if ref.kind == dpu.SymbolWRAM {
		return d.CopyToWRAM(ref.off+offset, data)
	}
	return d.CopyToMRAM(ref.off+offset, data)
}

func (s *System) copyFromOneInto(i int, ref SymbolRef, offset int64, dst []byte) error {
	d := s.dpus[i]
	if err := d.TransferFault(); err != nil {
		return err
	}
	if ref.kind == dpu.SymbolWRAM {
		return d.CopyFromWRAMInto(ref.off+offset, dst)
	}
	return d.CopyFromMRAMInto(ref.off+offset, dst)
}

// sharded reports whether a loop over n DPUs should run on the worker
// pool. Small systems stay serial: the sharding dispatch costs a couple
// of allocations per call, which only amortizes across many DPUs (and
// the serial paths stay allocation-free for the regression tests).
func (s *System) sharded(n int) bool { return n >= parallelThreshold }

// shardErrs runs fn over [0, n) on the worker pool with rank-aligned
// shard boundaries, recording each DPU's error in errs. Best-effort:
// one DPU's failure never prevents another from being attempted (the
// serial loops below keep the same contract inline, so post-error
// device state does not depend on whether the system crossed the
// sharding threshold).
func (s *System) shardErrs(n int, errs []error, fn func(i int) error) {
	s.pool.runAligned(n, s.perRank, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			errs[i] = fn(i)
		}
	})
}

// xferErrSlice returns the reusable transfer error slice, cleared, with
// room for n entries.
func (s *System) xferErrSlice(n int) []error {
	if cap(s.xferErrs) < n {
		s.xferErrs = make([]error, n)
	}
	errs := s.xferErrs[:n]
	for i := range errs {
		errs[i] = nil
	}
	return errs
}

// finishXfer completes a best-effort multi-DPU transfer: it charges one
// API-call transfer (latency counted once) covering perDPU bytes for
// each DPU that actually moved data — timed as the busiest rank's
// serial share, since ranks stream in parallel (topology.go) — and
// converts the per-DPU errors into a *FaultReport. An all-failed
// transfer charges nothing.
func (s *System) finishXfer(op string, perDPU int, errs []error) error {
	nOK, busiest := s.rankOKErrs(errs)
	if nOK > 0 {
		s.chargeTransferRanks(perDPU, nOK, busiest)
		s.meterXfer(op != "gather", perDPU*nOK)
	}
	return s.noteFaults(faultsFrom(op, errs))
}

// CopyToSymbol broadcasts the same data to the named symbol on every DPU
// (dpu_copy_to, Eq 3.1). Data destined for MRAM must be 8-byte padded;
// use Pad8 for arbitrary payloads.
func (s *System) CopyToSymbol(symbol string, offset int64, data []byte) error {
	ref, err := s.Resolve(symbol)
	if err != nil {
		return err
	}
	return s.CopyToSymbolRef(ref, offset, data)
}

// CopyToSymbolRef is CopyToSymbol for a pre-resolved symbol. It is
// best-effort: every DPU is attempted, and per-DPU failures come back
// as a *FaultReport.
func (s *System) CopyToSymbolRef(ref SymbolRef, offset int64, data []byte) error {
	if err := checkRef(ref, offset, len(data)); err != nil {
		return err
	}
	n := len(s.dpus)
	errs := s.xferErrSlice(n)
	if s.sharded(n) {
		s.shardErrs(n, errs, func(i int) error {
			return s.copyToOne(i, ref, offset, data)
		})
	} else {
		for i := 0; i < n; i++ {
			errs[i] = s.copyToOne(i, ref, offset, data)
		}
	}
	return s.finishXfer("copy_to", len(data), errs)
}

// CopyToDPU writes data to the named symbol on a single DPU.
func (s *System) CopyToDPU(dpuIdx int, symbol string, offset int64, data []byte) error {
	ref, err := s.Resolve(symbol)
	if err != nil {
		return err
	}
	return s.CopyToDPURef(dpuIdx, ref, offset, data)
}

// CopyToDPURef is CopyToDPU for a pre-resolved symbol. Device-level
// failures come back as a one-entry *FaultReport; nothing is charged
// for a failed transfer.
func (s *System) CopyToDPURef(dpuIdx int, ref SymbolRef, offset int64, data []byte) error {
	if err := s.checkIdx(dpuIdx); err != nil {
		return err
	}
	if err := checkRef(ref, offset, len(data)); err != nil {
		return err
	}
	if err := s.copyToOne(dpuIdx, ref, offset, data); err != nil {
		return s.noteFaults(singleFault("copy_to_dpu", dpuIdx, err))
	}
	s.chargeTransfer(len(data))
	s.meterXfer(true, len(data))
	return nil
}

// PushXfer scatters per-DPU buffers to the named symbol: buffers[i] goes
// to DPU i (dpu_prepare_xfer + dpu_push_xfer, Eqs 3.2–3.3). All buffers
// must share one length, the transfer length of the push; pad shorter
// payloads with Pad8 and communicate true sizes separately, as §3.2
// prescribes.
func (s *System) PushXfer(symbol string, offset int64, buffers [][]byte) error {
	ref, err := s.Resolve(symbol)
	if err != nil {
		return err
	}
	return s.PushXferRef(ref, offset, buffers)
}

// PushXferRef is PushXfer for a pre-resolved symbol.
func (s *System) PushXferRef(ref SymbolRef, offset int64, buffers [][]byte) error {
	if len(buffers) != len(s.dpus) {
		return fmt.Errorf("host: PushXfer got %d buffers for %d DPUs", len(buffers), len(s.dpus))
	}
	if len(buffers) == 0 {
		return nil
	}
	n := len(buffers[0])
	for i, b := range buffers {
		if len(b) != n {
			return fmt.Errorf("host: PushXfer buffer %d has length %d, want %d (single transfer length)", i, len(b), n)
		}
	}
	if err := checkRef(ref, offset, n); err != nil {
		return err
	}
	errs := s.xferErrSlice(len(buffers))
	if s.sharded(len(buffers)) {
		s.shardErrs(len(buffers), errs, func(i int) error {
			return s.copyToOne(i, ref, offset, buffers[i])
		})
	} else {
		for i, b := range buffers {
			errs[i] = s.copyToOne(i, ref, offset, b)
		}
	}
	return s.finishXfer("push_xfer", n, errs)
}

// GatherXfer reads n bytes from the named symbol on every DPU and returns
// one freshly-allocated buffer per DPU. Hot paths should use
// GatherXferInto (or GatherXferRefInto) with reused buffers instead.
func (s *System) GatherXfer(symbol string, offset int64, n int) ([][]byte, error) {
	out := make([][]byte, len(s.dpus))
	flat := make([]byte, n*len(s.dpus))
	for i := range out {
		out[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	if err := s.GatherXferInto(symbol, offset, n, out); err != nil {
		return nil, err
	}
	return out, nil
}

// GatherXferInto reads n bytes from the named symbol on the first
// len(dst) DPUs into the caller's buffers, each of length n. Passing
// fewer buffers than DPUs gathers a partial wave — the counterpart of
// LaunchOn's first-n launch. The simulated transfer accounting is
// identical to GatherXfer over the same DPU count.
func (s *System) GatherXferInto(symbol string, offset int64, n int, dst [][]byte) error {
	ref, err := s.Resolve(symbol)
	if err != nil {
		return err
	}
	return s.GatherXferRefInto(ref, offset, n, dst)
}

// GatherXferRefInto is GatherXferInto for a pre-resolved symbol.
func (s *System) GatherXferRefInto(ref SymbolRef, offset int64, n int, dst [][]byte) error {
	if len(dst) < 1 || len(dst) > len(s.dpus) {
		return fmt.Errorf("host: GatherXferInto got %d buffers for %d DPUs", len(dst), len(s.dpus))
	}
	for i, b := range dst {
		if len(b) != n {
			return fmt.Errorf("host: GatherXferInto buffer %d has length %d, want %d", i, len(b), n)
		}
	}
	if err := checkRef(ref, offset, n); err != nil {
		return err
	}
	errs := s.xferErrSlice(len(dst))
	if s.sharded(len(dst)) {
		s.shardErrs(len(dst), errs, func(i int) error {
			return s.copyFromOneInto(i, ref, offset, dst[i])
		})
	} else {
		for i, b := range dst {
			errs[i] = s.copyFromOneInto(i, ref, offset, b)
		}
	}
	return s.finishXfer("gather", n, errs)
}

// CopyFromDPU reads n bytes from the named symbol on one DPU.
func (s *System) CopyFromDPU(dpuIdx int, symbol string, offset int64, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := s.CopyFromDPUInto(dpuIdx, symbol, offset, out); err != nil {
		return nil, err
	}
	return out, nil
}

// CopyFromDPUInto reads len(dst) bytes from the named symbol on one DPU
// into dst, without allocating.
func (s *System) CopyFromDPUInto(dpuIdx int, symbol string, offset int64, dst []byte) error {
	ref, err := s.Resolve(symbol)
	if err != nil {
		return err
	}
	return s.CopyFromDPURefInto(dpuIdx, ref, offset, dst)
}

// CopyFromDPURefInto is CopyFromDPUInto for a pre-resolved symbol.
// Device-level failures come back as a one-entry *FaultReport; nothing
// is charged for a failed transfer.
func (s *System) CopyFromDPURefInto(dpuIdx int, ref SymbolRef, offset int64, dst []byte) error {
	if err := s.checkIdx(dpuIdx); err != nil {
		return err
	}
	if err := checkRef(ref, offset, len(dst)); err != nil {
		return err
	}
	if err := s.copyFromOneInto(dpuIdx, ref, offset, dst); err != nil {
		return s.noteFaults(singleFault("copy_from_dpu", dpuIdx, err))
	}
	s.chargeTransfer(len(dst))
	s.meterXfer(false, len(dst))
	return nil
}

func (s *System) checkIdx(i int) error {
	if i < 0 || i >= len(s.dpus) {
		return fmt.Errorf("host: DPU index %d outside 0..%d", i, len(s.dpus)-1)
	}
	return nil
}

// LaunchStats aggregates one parallel launch across the system.
type LaunchStats struct {
	// PerDPU holds each DPU's launch statistics.
	PerDPU []dpu.Stats
	// Cycles is the system completion time in DPU cycles: the maximum
	// over DPUs, since they run in parallel.
	Cycles uint64
	// Seconds is Cycles through the DPU clock.
	Seconds float64
	// Time is Seconds as a duration.
	Time time.Duration
	// EnergyJ sums the participating DPUs' energy for the launch.
	EnergyJ float64
}

// Launch runs the kernel with the given tasklet count on every DPU in
// parallel (dpu_launch with DPU_SYNCHRONOUS) and blocks until all finish.
func (s *System) Launch(tasklets int, kernel dpu.KernelFunc) (LaunchStats, error) {
	return s.LaunchOn(len(s.dpus), tasklets, kernel)
}

// LaunchOn runs the kernel on the first n DPUs only, which is how the
// thesis's dynamic DPU assignment uses "an optimum number of DPUs for
// processing each layer" (§4.2, Fig 4.6: one DPU per output row).
//
// The n simulated DPUs are executed by the persistent worker pool (one
// shard per CPU) rather than one goroutine per DPU; the modeled launch
// statistics do not depend on the scheduling.
//
// LaunchOn is best-effort: every DPU is attempted, and per-DPU failures
// come back as a *FaultReport alongside the stats of what ran. A failed
// DPU contributes a zero Stats entry to PerDPU; Cycles is the maximum
// over the DPUs that completed, and exactly that time is added to the
// system DPU clock (an all-failed launch charges nothing, matching the
// per-DPU clocks, which only advance on success).
func (s *System) LaunchOn(n, tasklets int, kernel dpu.KernelFunc) (LaunchStats, error) {
	// stats escapes to the caller through LaunchStats.PerDPU, so it must
	// be fresh; callers with a reusable buffer use LaunchOnInto.
	return s.LaunchOnInto(n, tasklets, kernel, nil)
}

// LaunchOnInto is LaunchOn with a caller-owned PerDPU backing: when
// cap(per) covers the launch, the returned LaunchStats.PerDPU is
// per[:n] and no per-launch slice is allocated. Wave loops (the exec
// engine) pass the same buffer every wave; they read only the scalar
// aggregates after the next wave starts, so the reuse is safe there.
func (s *System) LaunchOnInto(n, tasklets int, kernel dpu.KernelFunc, per []dpu.Stats) (LaunchStats, error) {
	if n < 1 || n > len(s.dpus) {
		return LaunchStats{}, fmt.Errorf("host: launch on %d DPUs, system has %d", n, len(s.dpus))
	}
	var stats []dpu.Stats
	if cap(per) >= n {
		stats = per[:n]
	} else {
		stats = make([]dpu.Stats, n)
	}
	if cap(s.launchErrs) < n {
		s.launchErrs = make([]error, n)
	}
	errs := s.launchErrs[:n]
	for i := range errs {
		errs[i] = nil
	}
	if n == 1 {
		errs[0] = s.dpus[0].LaunchInto(tasklets, kernel, &stats[0])
	} else {
		s.pool.runAligned(n, s.perRank, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				errs[i] = s.dpus[i].LaunchInto(tasklets, kernel, &stats[i])
			}
		})
	}
	var maxCycles uint64
	var energy float64
	for i := range stats {
		if errs[i] != nil {
			continue
		}
		if stats[i].Cycles > maxCycles {
			maxCycles = stats[i].Cycles
		}
		energy += stats[i].EnergyJ
	}
	sec := float64(maxCycles) / s.cfg.DPU.FrequencyHz
	ls := LaunchStats{
		PerDPU:  stats,
		Cycles:  maxCycles,
		Seconds: sec,
		Time:    time.Duration(sec * float64(time.Second)),
		EnergyJ: energy,
	}
	s.mu.Lock()
	s.dpuTime += ls.Time
	s.mu.Unlock()
	return ls, s.noteFaults(faultsFrom("launch", errs))
}

// LaunchDPU runs the kernel on the single DPU at dpuIdx, charging its
// completion time to the system DPU clock. Runners use it to
// re-dispatch a failed DPU's shard onto a surviving DPU; device-level
// failures come back as a one-entry *FaultReport and charge nothing.
func (s *System) LaunchDPU(dpuIdx, tasklets int, kernel dpu.KernelFunc) (LaunchStats, error) {
	if err := s.checkIdx(dpuIdx); err != nil {
		return LaunchStats{}, err
	}
	st, err := s.dpus[dpuIdx].Launch(tasklets, kernel)
	if err != nil {
		return LaunchStats{}, s.noteFaults(singleFault("launch_dpu", dpuIdx, err))
	}
	ls := LaunchStats{
		PerDPU:  []dpu.Stats{st},
		Cycles:  st.Cycles,
		Seconds: st.Seconds,
		Time:    st.Time,
		EnergyJ: st.EnergyJ,
	}
	s.mu.Lock()
	s.dpuTime += ls.Time
	s.mu.Unlock()
	return ls, nil
}

// chargeTransfer advances the host clock for a host<->PIM transfer of n
// payload bytes moving through one rank channel.
func (s *System) chargeTransfer(n int) {
	d := s.cfg.TransferLatency +
		time.Duration(float64(n)/s.cfg.TransferBandwidth*float64(time.Second))
	s.mu.Lock()
	s.hostXferTime += d
	s.xferCount++
	s.xferBytes += uint64(n)
	s.mu.Unlock()
}

// chargeTransferRanks advances the host clock for one multi-DPU
// transfer API call that moved perDPU bytes to each of nOK DPUs, of
// which busiest share a rank: the ranks stream concurrently on their
// own channels, so the modeled duration is the busiest rank's serial
// share (plus one per-call latency), while the byte counters record the
// full payload. With one rank busiest == nOK and the charge is
// identical — bit for bit — to the flat chargeTransfer(perDPU*nOK).
func (s *System) chargeTransferRanks(perDPU, nOK, busiest int) {
	d := s.cfg.TransferLatency +
		time.Duration(float64(perDPU*busiest)/s.cfg.TransferBandwidth*float64(time.Second))
	s.mu.Lock()
	s.hostXferTime += d
	s.xferCount++
	s.xferBytes += uint64(perDPU * nOK)
	s.mu.Unlock()
}

// TransferStats returns the accumulated host<->PIM traffic summary.
func (s *System) TransferStats() XferStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return XferStats{Transfers: s.xferCount, Bytes: s.xferBytes, Time: s.hostXferTime}
}

// HostTransferTime returns the accumulated simulated host<->PIM transfer
// time.
func (s *System) HostTransferTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hostXferTime
}

// DPUTime returns the accumulated simulated DPU execution time across
// launches (system-parallel time, not per-DPU busy time).
func (s *System) DPUTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dpuTime
}

// ResetClocks zeroes the accumulated host and DPU clocks and the
// transfer counters.
func (s *System) ResetClocks() {
	s.mu.Lock()
	s.hostXferTime = 0
	s.dpuTime = 0
	s.xferCount = 0
	s.xferBytes = 0
	s.mu.Unlock()
	for _, d := range s.dpus {
		d.ResetClock()
	}
}

// Pad8 returns data padded with zeros to the next multiple of 8 bytes,
// together with the original length. It implements the §3.2 workaround:
// "padding to the sent/received memory buffers from the DPUs needs to be
// added [and] the size of the non-padded buffer must be sent from the
// host to the DPU."
//
// When len(data) is already a multiple of 8, Pad8 returns data itself —
// the padded slice ALIASES the input, unlike the unaligned case, which
// copies. Callers that mutate the padded buffer (or hand it to an async
// command while still writing the original) must copy first.
func Pad8(data []byte) (padded []byte, origLen int) {
	origLen = len(data)
	rem := origLen % dpu.DMAAlignment
	if rem == 0 {
		return data, origLen
	}
	padded = make([]byte, origLen+dpu.DMAAlignment-rem)
	copy(padded, data)
	return padded, origLen
}

// PadTo returns data zero-padded to exactly n bytes. It errors if data is
// longer than n.
func PadTo(data []byte, n int) ([]byte, error) {
	if len(data) > n {
		return nil, fmt.Errorf("host: PadTo: data length %d exceeds target %d", len(data), n)
	}
	if len(data) == n {
		return data, nil
	}
	out := make([]byte, n)
	copy(out, data)
	return out, nil
}

package host

import (
	"testing"

	"pimdnn/internal/dpu"
)

// The transfer hot paths must not allocate per call below the sharding
// threshold: the per-layer scatter/gather loops run thousands of times
// per simulated forward pass, and Go-level garbage was the simulator's
// wall-clock bottleneck (the simulated cycle accounting is unaffected
// either way). These tests pin that property.

func allocSystem(t *testing.T, n int) *System {
	t.Helper()
	s, err := NewSystem(n, DefaultConfig(dpu.O0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.AllocMRAM("buf", 256); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPushXferAllocFree(t *testing.T) {
	s := allocSystem(t, 4)
	ref, err := s.Resolve("buf")
	if err != nil {
		t.Fatal(err)
	}
	buffers := make([][]byte, 4)
	for i := range buffers {
		buffers[i] = make([]byte, 64)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.PushXferRef(ref, 0, buffers); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("PushXferRef allocates %.1f per call, want 0", avg)
	}
	// The string-keyed entry point adds only the symbol-cache lookup.
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.PushXfer("buf", 0, buffers); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("PushXfer allocates %.1f per call, want 0", avg)
	}
}

func TestGatherXferIntoAllocFree(t *testing.T) {
	s := allocSystem(t, 4)
	ref, err := s.Resolve("buf")
	if err != nil {
		t.Fatal(err)
	}
	dst := make([][]byte, 4)
	for i := range dst {
		dst[i] = make([]byte, 64)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.GatherXferRefInto(ref, 0, 64, dst); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("GatherXferRefInto allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.GatherXferInto("buf", 0, 64, dst); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("GatherXferInto allocates %.1f per call, want 0", avg)
	}
}

func TestBroadcastAndPerDPUCopyAllocFree(t *testing.T) {
	s := allocSystem(t, 4)
	ref, err := s.Resolve("buf")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.CopyToSymbolRef(ref, 0, data); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("CopyToSymbolRef allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.CopyFromDPURefInto(2, ref, 0, data); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("CopyFromDPURefInto allocates %.1f per call, want 0", avg)
	}
}

// Above the sharding threshold the transfer loops fan out across the
// worker pool; a handful of scheduling allocations per call is the price
// of the parallelism, but it must stay O(workers), not O(DPUs).
func TestShardedPushXferAllocBound(t *testing.T) {
	s := allocSystem(t, parallelThreshold)
	ref, err := s.Resolve("buf")
	if err != nil {
		t.Fatal(err)
	}
	buffers := make([][]byte, parallelThreshold)
	for i := range buffers {
		buffers[i] = make([]byte, 64)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.PushXferRef(ref, 0, buffers); err != nil {
			t.Fatal(err)
		}
	}); avg > 16 {
		t.Errorf("sharded PushXferRef allocates %.1f per call, want <= 16", avg)
	}
}

package host

import (
	"testing"

	"pimdnn/internal/dpu"
)

// The transfer hot paths must not allocate per call below the sharding
// threshold: the per-layer scatter/gather loops run thousands of times
// per simulated forward pass, and Go-level garbage was the simulator's
// wall-clock bottleneck (the simulated cycle accounting is unaffected
// either way). These tests pin that property.

func allocSystem(t *testing.T, n int) *System {
	t.Helper()
	s, err := NewSystem(n, DefaultConfig(dpu.O0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.AllocMRAM("buf", 256); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPushXferAllocFree(t *testing.T) {
	s := allocSystem(t, 4)
	ref, err := s.Resolve("buf")
	if err != nil {
		t.Fatal(err)
	}
	buffers := make([][]byte, 4)
	for i := range buffers {
		buffers[i] = make([]byte, 64)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.PushXferRef(ref, 0, buffers); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("PushXferRef allocates %.1f per call, want 0", avg)
	}
	// The string-keyed entry point adds only the symbol-cache lookup.
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.PushXfer("buf", 0, buffers); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("PushXfer allocates %.1f per call, want 0", avg)
	}
}

func TestGatherXferIntoAllocFree(t *testing.T) {
	s := allocSystem(t, 4)
	ref, err := s.Resolve("buf")
	if err != nil {
		t.Fatal(err)
	}
	dst := make([][]byte, 4)
	for i := range dst {
		dst[i] = make([]byte, 64)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.GatherXferRefInto(ref, 0, 64, dst); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("GatherXferRefInto allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.GatherXferInto("buf", 0, 64, dst); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("GatherXferInto allocates %.1f per call, want 0", avg)
	}
}

func TestBroadcastAndPerDPUCopyAllocFree(t *testing.T) {
	s := allocSystem(t, 4)
	ref, err := s.Resolve("buf")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.CopyToSymbolRef(ref, 0, data); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("CopyToSymbolRef allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.CopyFromDPURefInto(2, ref, 0, data); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("CopyFromDPURefInto allocates %.1f per call, want 0", avg)
	}
}

// The steady-state asynchronous path must not allocate per wave after
// warm-up: the command ring, ticket counters, and Pending handles are
// all reused or value types, so a transfer-only enqueue+sync cycle is
// allocation-free exactly like its synchronous counterparts. (The first
// cycle grows the ring and warms the executor; AllocsPerRun's warm-up
// run absorbs it.)
func TestAsyncEnqueueSyncAllocFree(t *testing.T) {
	s := allocSystem(t, 4)
	ref, err := s.Resolve("buf")
	if err != nil {
		t.Fatal(err)
	}
	buffers := make([][]byte, 4)
	dst := make([][]byte, 4)
	for i := range buffers {
		buffers[i] = make([]byte, 64)
		dst[i] = make([]byte, 64)
	}
	data := make([]byte, 64)
	if avg := testing.AllocsPerRun(100, func() {
		s.EnqueueCopyTo(ref, 0, data)
		s.EnqueuePushXfer(ref, 0, buffers)
		s.EnqueueGather(ref, 0, 64, dst)
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("async enqueue+sync allocates %.1f per cycle, want 0", avg)
	}
}

// A steady-state fused wave allocates only what the underlying per-DPU
// launches themselves allocate (the same op-mix bookkeeping a
// synchronous LaunchOn pays); the wave's stats reuse the caller's PerDPU
// backing and the queue machinery adds nothing.
func TestWaveSteadyStateAllocBound(t *testing.T) {
	s := allocSystem(t, 2)
	ref, err := s.Resolve("buf")
	if err != nil {
		t.Fatal(err)
	}
	in := [][]byte{make([]byte, 64), make([]byte, 64)}
	out := [][]byte{make([]byte, 64), make([]byte, 64)}
	kernel := func(tk *dpu.Tasklet) error {
		tk.Charge(dpu.OpAddInt, 1)
		return nil
	}
	var ws LaunchStats
	avg := testing.AllocsPerRun(100, func() {
		p := s.EnqueueWave(Wave{
			DPUs: 2, Tasklets: 1, Kernel: kernel, Stats: &ws,
			Scatter: ref, In: in, Gather: ref, Out: out,
		})
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	})
	// Per DPU launch: op-mix map + breakdown slice (+ map bucket churn).
	// Anything beyond ~8 per DPU means the queue started allocating.
	if avg > 16 {
		t.Errorf("steady-state wave allocates %.1f per call, want <= 16", avg)
	}
}

// Above the sharding threshold the transfer loops fan out across the
// worker pool; a handful of scheduling allocations per call is the price
// of the parallelism, but it must stay O(workers), not O(DPUs).
func TestShardedPushXferAllocBound(t *testing.T) {
	s := allocSystem(t, parallelThreshold)
	ref, err := s.Resolve("buf")
	if err != nil {
		t.Fatal(err)
	}
	buffers := make([][]byte, parallelThreshold)
	for i := range buffers {
		buffers[i] = make([]byte, 64)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.PushXferRef(ref, 0, buffers); err != nil {
			t.Fatal(err)
		}
	}); avg > 16 {
		t.Errorf("sharded PushXferRef allocates %.1f per call, want <= 16", avg)
	}
}

// Rank/DIMM topology. The evaluated UPMEM system is 2,560 DPUs in 40
// ranks of 64 (Table 2.1); the host reaches every rank through its own
// DDR channel slice, so a transfer touching many ranks streams to them
// in parallel — the PrIM measurements show aggregate scatter/gather
// bandwidth growing with the rank count while the per-rank rate stays
// fixed. The System models that here: Config.Topology groups the DPUs
// into ranks, TransferBandwidth becomes the per-rank channel rate, and
// every multi-DPU transfer is charged the busiest rank's serial share
// (latency counted once per API call) instead of the whole payload
// serially. Systems that fit in one rank — every configuration the
// experiments ran before full-array scale-out — charge exactly what the
// flat model charged, bit for bit.
package host

import (
	"fmt"

	"pimdnn/internal/dpu"
)

// Topology describes how a System's DPUs are grouped into DIMM ranks.
// The zero value models the real machine: ranks of dpu.DPUsPerRank (64)
// DPUs, as many as the DPU count fills.
type Topology struct {
	// Ranks is the rank count. Zero derives it from the DPU count and
	// DPUsPerRank; non-zero values must match that derivation (the
	// field exists so configurations can state their shape explicitly
	// and fail loudly when the DPU count drifts).
	Ranks int
	// DPUsPerRank is the rank width. Zero means dpu.DPUsPerRank. DPUs
	// i with i/DPUsPerRank == r belong to rank r; only the last rank
	// may be partially filled.
	DPUsPerRank int
}

// resolveTopology validates cfg.Topology against the DPU count and
// returns the effective rank width and rank count.
func resolveTopology(n int, t Topology) (perRank, ranks int, err error) {
	perRank = t.DPUsPerRank
	if perRank == 0 {
		perRank = dpu.DPUsPerRank
	}
	if perRank < 1 {
		return 0, 0, fmt.Errorf("host: non-positive DPUsPerRank %d", t.DPUsPerRank)
	}
	ranks = (n + perRank - 1) / perRank
	if t.Ranks != 0 && t.Ranks != ranks {
		return 0, 0, fmt.Errorf("host: topology declares %d ranks, but %d DPUs at %d per rank form %d",
			t.Ranks, n, perRank, ranks)
	}
	return perRank, ranks, nil
}

// Ranks returns the number of DIMM ranks the system's DPUs span.
func (s *System) Ranks() int { return s.ranks }

// DPUsPerRank returns the rank width (the last rank may hold fewer).
func (s *System) DPUsPerRank() int { return s.perRank }

// RankOf returns the rank DPU i belongs to.
func (s *System) RankOf(i int) int { return i / s.perRank }

// RankSpan returns the DPU index range [lo, hi) of rank r.
func (s *System) RankSpan(r int) (lo, hi int) {
	lo = r * s.perRank
	hi = lo + s.perRank
	if n := len(s.dpus); hi > n {
		hi = n
	}
	return lo, hi
}

// rankOKErrs counts the error-free entries of a per-DPU error slice and
// the busiest rank's share of them (entry i belongs to DPU i). On a
// single-rank system busiest == nOK without touching the tally scratch,
// keeping the pre-topology fast path intact.
func (s *System) rankOKErrs(errs []error) (nOK, busiest int) {
	for _, e := range errs {
		if e == nil {
			nOK++
		}
	}
	if s.ranks == 1 || nOK == 0 {
		return nOK, nOK
	}
	tally := s.rankTally(&s.xferTally)
	for i, e := range errs {
		if e != nil {
			continue
		}
		r := i / s.perRank
		tally[r]++
		if tally[r] > busiest {
			busiest = tally[r]
		}
	}
	return nOK, busiest
}

// rankOKPhase is rankOKErrs over a wave's per-DPU phase bits: it counts
// the DPUs whose phase has bit set and the busiest rank's share.
func (s *System) rankOKPhase(phase []uint8, bit uint8) (nOK, busiest int) {
	for _, p := range phase {
		if p&bit != 0 {
			nOK++
		}
	}
	if s.ranks == 1 || nOK == 0 {
		return nOK, nOK
	}
	tally := s.rankTally(&s.waveTally)
	for i, p := range phase {
		if p&bit == 0 {
			continue
		}
		r := i / s.perRank
		tally[r]++
		if tally[r] > busiest {
			busiest = tally[r]
		}
	}
	return nOK, busiest
}

// rankTally returns *buf sized to the rank count and cleared. Two
// scratches exist (xferTally, waveTally) for the same reason waveErrs is
// separate from xferErrs: the queue executor may run a wave while
// another goroutine performs a synchronous transfer.
func (s *System) rankTally(buf *[]int) []int {
	if cap(*buf) < s.ranks {
		*buf = make([]int, s.ranks)
	}
	t := (*buf)[:s.ranks]
	for i := range t {
		t[i] = 0
	}
	return t
}

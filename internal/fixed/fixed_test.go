package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQRoundTrip(t *testing.T) {
	tests := []struct {
		q    Q
		give float64
		want float64
	}{
		{Q78, 1.0, 1.0},
		{Q78, -1.0, -1.0},
		{Q78, 0.5, 0.5},
		{Q78, 1.0 / 256, 1.0 / 256},
		{Q78, 3.14159, 3.140625}, // quantized to 1/256 grid (804/256)
		{Q07, 0.25, 0.25},
		{Q07, -0.5, -0.5},
	}
	for _, tt := range tests {
		got := tt.q.ToFloat(tt.q.FromFloat(tt.give))
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Q%d roundtrip(%v) = %v, want %v", tt.q.Frac, tt.give, got, tt.want)
		}
	}
}

func TestQFromFloatRoundsToNearest(t *testing.T) {
	// 0.5/256 is exactly half an LSB in Q7.8; round-half-away gives 1 LSB.
	if got := Q78.FromFloat(0.5 / 256); got != 1 {
		t.Errorf("FromFloat(half LSB) = %d, want 1", got)
	}
	if got := Q78.FromFloat(-0.5 / 256); got != -1 {
		t.Errorf("FromFloat(-half LSB) = %d, want -1", got)
	}
	if got := Q78.FromFloat(0.4 / 256); got != 0 {
		t.Errorf("FromFloat(0.4 LSB) = %d, want 0", got)
	}
}

func TestQFromFloatSaturates(t *testing.T) {
	if got := Q78.FromFloat(1e12); got != 2147483647 {
		t.Errorf("FromFloat(+huge) = %d, want int32 max", got)
	}
	if got := Q78.FromFloat(-1e12); got != -2147483648 {
		t.Errorf("FromFloat(-huge) = %d, want int32 min", got)
	}
}

func TestQMul(t *testing.T) {
	a := Q78.FromFloat(1.5)
	b := Q78.FromFloat(2.0)
	if got := Q78.ToFloat(Q78.Mul(a, b)); got != 3.0 {
		t.Errorf("1.5 * 2.0 = %v, want 3.0", got)
	}
	c := Q78.FromFloat(-0.5)
	if got := Q78.ToFloat(Q78.Mul(a, c)); got != -0.75 {
		t.Errorf("1.5 * -0.5 = %v, want -0.75", got)
	}
}

func TestSatAdd8(t *testing.T) {
	tests := []struct {
		a, b, want int8
	}{
		{100, 100, 127},
		{-100, -100, -128},
		{100, -100, 0},
		{127, 1, 127},
		{-128, -1, -128},
		{0, 0, 0},
	}
	for _, tt := range tests {
		if got := SatAdd8(tt.a, tt.b); got != tt.want {
			t.Errorf("SatAdd8(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSatAdd16(t *testing.T) {
	if got := SatAdd16(30000, 30000); got != 32767 {
		t.Errorf("SatAdd16 overflow = %d, want 32767", got)
	}
	if got := SatAdd16(-30000, -30000); got != -32768 {
		t.Errorf("SatAdd16 underflow = %d, want -32768", got)
	}
	if got := SatAdd16(123, -23); got != 100 {
		t.Errorf("SatAdd16(123,-23) = %d, want 100", got)
	}
}

func TestSatAdd32(t *testing.T) {
	if got := SatAdd32(2000000000, 2000000000); got != 2147483647 {
		t.Errorf("SatAdd32 overflow = %d", got)
	}
	if got := SatAdd32(-2000000000, -2000000000); got != -2147483648 {
		t.Errorf("SatAdd32 underflow = %d", got)
	}
}

func TestSatMul16(t *testing.T) {
	if got := SatMul16(1000, 1000); got != 32767 {
		t.Errorf("SatMul16 overflow = %d", got)
	}
	if got := SatMul16(-1000, 1000); got != -32768 {
		t.Errorf("SatMul16 underflow = %d", got)
	}
	if got := SatMul16(100, -30); got != -3000 {
		t.Errorf("SatMul16(100,-30) = %d", got)
	}
}

func TestAbsoluteMax(t *testing.T) {
	tests := []struct {
		v, limit, want int32
	}{
		{5, 10, 5},
		{-5, 10, -5},
		{15, 10, 10},
		{-15, 10, -10},
		{10, 10, 10},
		{-10, 10, -10},
	}
	for _, tt := range tests {
		if got := AbsoluteMax(tt.v, tt.limit); got != tt.want {
			t.Errorf("AbsoluteMax(%d, %d) = %d, want %d", tt.v, tt.limit, got, tt.want)
		}
	}
}

func TestGEMMOutputClamp(t *testing.T) {
	// Matches Algorithm 2: absolutemax(acc/32, 32767).
	if got := GEMMOutputClamp(64); got != 2 {
		t.Errorf("clamp(64) = %d, want 2", got)
	}
	if got := GEMMOutputClamp(2147483647); got != 32767 {
		t.Errorf("clamp(max) = %d, want 32767", got)
	}
	if got := GEMMOutputClamp(-2147483648); got != -32767 {
		t.Errorf("clamp(min) = %d, want -32767", got)
	}
}

func TestQuantizeDequantizeSlice(t *testing.T) {
	in := []float64{0, 1, -1, 0.5, 100, -100, 1e9}
	q := Q78.QuantizeSlice(in)
	out := Q78.DequantizeSlice(q)
	want := []float64{0, 1, -1, 0.5, 100, -100, 32767.0 / 256}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Errorf("slice[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestClampHelpers(t *testing.T) {
	if ClampInt8(200) != 127 || ClampInt8(-200) != -128 || ClampInt8(5) != 5 {
		t.Error("ClampInt8 wrong")
	}
	if ClampInt16(40000) != 32767 || ClampInt16(-40000) != -32768 || ClampInt16(5) != 5 {
		t.Error("ClampInt16 wrong")
	}
}

// Property: saturating adds agree with wide arithmetic clamped.
func TestSatAddProperty(t *testing.T) {
	f := func(a, b int16) bool {
		s := int32(a) + int32(b)
		want := s
		if s > 32767 {
			want = 32767
		}
		if s < -32768 {
			want = -32768
		}
		return int32(SatAdd16(a, b)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Q.Mul matches float multiplication within one LSB.
func TestQMulProperty(t *testing.T) {
	f := func(a, b int16) bool {
		fa, fb := Q78.ToFloat(int32(a)), Q78.ToFloat(int32(b))
		got := Q78.ToFloat(Q78.Mul(int32(a), int32(b)))
		return math.Abs(got-fa*fb) <= 1.0/256
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AbsoluteMax output is always within [-limit, limit] and is the
// identity inside the band.
func TestAbsoluteMaxProperty(t *testing.T) {
	f := func(v int32, l uint16) bool {
		limit := int32(l)
		got := AbsoluteMax(v, limit)
		if got > limit || got < -limit {
			return false
		}
		if v <= limit && v >= -limit {
			return got == v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package fixed provides the fixed-point arithmetic substrate used by the
// DPU-side CNN kernels.
//
// The UPMEM DPU has no floating-point hardware (thesis §3.3), so every
// network that runs inside a DPU is quantized. This package supplies the
// quantization helpers, saturating integer arithmetic, and the specific
// output clamp used by the thesis's YOLOv3 GEMM kernel (Algorithm 2):
//
//	C[i*N+j] = absolutemax(ctmp[j]/32, 32767)
package fixed

// Q describes a signed fixed-point format with an implicit binary point.
type Q struct {
	// Frac is the number of fractional bits in the fixed-point format.
	Frac uint
}

// Q78 is the 16-bit Q7.8 format used by the quantized YOLOv3 layers.
var Q78 = Q{Frac: 8}

// Q07 is the 8-bit Q0.7 format used for normalized activations.
var Q07 = Q{Frac: 7}

// FromFloat quantizes a float64 into the Q format with round-to-nearest,
// saturating to the int32 range.
func (q Q) FromFloat(f float64) int32 {
	scaled := f * float64(int64(1)<<q.Frac)
	if scaled >= 0 {
		scaled += 0.5
	} else {
		scaled -= 0.5
	}
	if scaled > 2147483647 {
		return 2147483647
	}
	if scaled < -2147483648 {
		return -2147483648
	}
	return int32(scaled)
}

// ToFloat dequantizes a fixed-point value back to float64.
func (q Q) ToFloat(v int32) float64 {
	return float64(v) / float64(int64(1)<<q.Frac)
}

// Mul multiplies two values in the Q format, rescaling the double-width
// product back into the format with truncation (matching the DPU kernel's
// shift-based rescale).
func (q Q) Mul(a, b int32) int32 {
	return int32((int64(a) * int64(b)) >> q.Frac)
}

// SatAdd8 adds two int8 values, saturating at the type bounds.
func SatAdd8(a, b int8) int8 {
	s := int16(a) + int16(b)
	if s > 127 {
		return 127
	}
	if s < -128 {
		return -128
	}
	return int8(s)
}

// SatAdd16 adds two int16 values, saturating at the type bounds.
func SatAdd16(a, b int16) int16 {
	s := int32(a) + int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

// SatAdd32 adds two int32 values, saturating at the type bounds.
func SatAdd32(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s > 2147483647 {
		return 2147483647
	}
	if s < -2147483648 {
		return -2147483648
	}
	return int32(s)
}

// SatMul16 multiplies two int16 values, saturating at the type bounds.
func SatMul16(a, b int16) int16 {
	p := int32(a) * int32(b)
	if p > 32767 {
		return 32767
	}
	if p < -32768 {
		return -32768
	}
	return int16(p)
}

// AbsoluteMax clamps v to [-limit, limit]. It is the `absolutemax`
// primitive from Algorithm 2 of the thesis, applied to GEMM outputs as
// `absolutemax(ctmp[j]/32, 32767)`.
func AbsoluteMax(v int32, limit int32) int32 {
	if v > limit {
		return limit
	}
	if v < -limit {
		return -limit
	}
	return v
}

// GEMMOutputClamp applies the Algorithm 2 output rescale: divide the
// accumulator by 32 (arithmetic shift) and clamp into int16 range.
func GEMMOutputClamp(acc int32) int16 {
	return int16(AbsoluteMax(acc/32, 32767))
}

// QuantizeSlice quantizes a float64 slice into int16 values in the Q
// format, saturating each element to the int16 range.
func (q Q) QuantizeSlice(fs []float64) []int16 {
	out := make([]int16, len(fs))
	for i, f := range fs {
		v := q.FromFloat(f)
		if v > 32767 {
			v = 32767
		}
		if v < -32768 {
			v = -32768
		}
		out[i] = int16(v)
	}
	return out
}

// DequantizeSlice converts int16 fixed-point values back to float64.
func (q Q) DequantizeSlice(vs []int16) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = q.ToFloat(int32(v))
	}
	return out
}

// ClampInt8 saturates an int32 into the int8 range.
func ClampInt8(v int32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

// ClampInt16 saturates an int32 into the int16 range.
func ClampInt16(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

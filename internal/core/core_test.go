package core

import (
	"strings"
	"testing"

	"pimdnn/internal/alexnet"
	"pimdnn/internal/dpu"
	"pimdnn/internal/ebnn"
	"pimdnn/internal/mnist"
	"pimdnn/internal/resnet"
	"pimdnn/internal/tensor"
	"pimdnn/internal/trace"
	"pimdnn/internal/yolo"
)

func TestChooseScheme(t *testing.T) {
	cfg := dpu.DefaultConfig(dpu.O3)
	// eBNN working set (304 bytes) fits a 16-tasklet WRAM share.
	if got := ChooseScheme(WorkingSetEBNN(), 16, cfg); got != MultiImagePerDPU {
		t.Errorf("eBNN scheme = %v, want multi-image-per-DPU", got)
	}
	// YOLOv3's ctmp does not fit (the §4.3.4 160 KB observation).
	ws, err := WorkingSetYOLO(yolo.FullConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ws < 160<<10 {
		t.Errorf("full YOLOv3 working set = %d bytes, thesis cites up to 160 KB", ws)
	}
	if got := ChooseScheme(ws, 11, cfg); got != MultiDPUPerImage {
		t.Errorf("YOLO scheme = %v, want multi-DPU-per-image", got)
	}
}

func TestSchemeString(t *testing.T) {
	if MultiImagePerDPU.String() == MultiDPUPerImage.String() {
		t.Error("scheme names collide")
	}
	if !strings.Contains(Scheme(0).String(), "?") {
		t.Error("unknown scheme name")
	}
}

func TestAcceleratorEBNNEndToEnd(t *testing.T) {
	acc, err := NewAccelerator(Options{DPUs: 2, Opt: dpu.O0})
	if err != nil {
		t.Fatal(err)
	}
	ds := mnist.Load(150, 20, 31)
	cfg := ebnn.DefaultTrainConfig()
	cfg.Epochs = 8
	m, err := ebnn.Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := acc.DeployEBNN(m, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	preds, stats, err := app.Classify(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(ds.Test) {
		t.Fatalf("predictions = %d", len(preds))
	}
	if stats.Seconds <= 0 || stats.Throughput() <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	if app.Model() != m {
		t.Error("Model accessor")
	}
}

func TestAcceleratorYOLOEndToEnd(t *testing.T) {
	acc, err := NewAccelerator(Options{DPUs: 4, Opt: dpu.O3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3}
	app, err := acc.DeployYOLO(cfg, YOLOOptions{Tasklets: 8, TileCols: 64})
	if err != nil {
		t.Fatal(err)
	}
	img := yolo.SyntheticScene(32, 4)
	res, stats, err := app.Detect(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.YoloOutputs) != 3 {
		t.Errorf("yolo outputs = %d", len(res.YoloOutputs))
	}
	if stats.Seconds <= 0 || len(stats.Layers) != 75 {
		t.Errorf("stats: %.4g s over %d layers", stats.Seconds, len(stats.Layers))
	}
	hostRes, err := app.DetectHost(img)
	if err != nil {
		t.Fatal(err)
	}
	for s := range hostRes.YoloOutputs {
		for i := range hostRes.YoloOutputs[s].Data {
			if hostRes.YoloOutputs[s].Data[i] != res.YoloOutputs[s].Data[i] {
				t.Fatalf("scale %d differs between host and DPU", s)
			}
		}
	}
	if app.Network() == nil {
		t.Error("Network accessor")
	}
}

func TestAcceleratorAlexNetEndToEnd(t *testing.T) {
	acc, err := NewAccelerator(Options{DPUs: 4, Opt: dpu.O3})
	if err != nil {
		t.Fatal(err)
	}
	app, err := acc.DeployAlexNet(alexnet.LiteConfig(), YOLOOptions{Tasklets: 8, TileCols: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := app.Network().Cfg
	img := tensor.New(3, cfg.InputSize, cfg.InputSize)
	for i := range img.Data {
		img.Data[i] = int16(i % 64)
	}
	class, logits, stats, err := app.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if class < 0 || class >= cfg.Classes || len(logits) != cfg.Classes {
		t.Errorf("class=%d logits=%d", class, len(logits))
	}
	if stats.Seconds <= 0 || len(stats.Layers) != 8 {
		t.Errorf("stats: %.4g s, %d layers", stats.Seconds, len(stats.Layers))
	}
	// The DPU result matches the host reference.
	want, _, err := app.Network().Forward(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if logits[i] != want[i] {
			t.Fatalf("logit %d: DPU %d, host %d", i, logits[i], want[i])
		}
	}
}

func TestAcceleratorResNetEndToEnd(t *testing.T) {
	acc, err := NewAccelerator(Options{DPUs: 4, Opt: dpu.O3})
	if err != nil {
		t.Fatal(err)
	}
	app, err := acc.DeployResNet(resnet.LiteConfig(), YOLOOptions{Tasklets: 8, TileCols: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := app.Network().Cfg
	img := tensor.New(3, cfg.InputSize, cfg.InputSize)
	for i := range img.Data {
		img.Data[i] = int16(i%48 - 24)
	}
	class, logits, stats, err := app.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if class < 0 || class >= cfg.Classes || len(logits) != cfg.Classes {
		t.Errorf("class=%d logits=%d", class, len(logits))
	}
	if stats.Seconds <= 0 || len(stats.Layers) != 21 {
		t.Errorf("stats: %.4g s, %d GEMMs", stats.Seconds, len(stats.Layers))
	}
	want, _, err := app.Network().Forward(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if logits[i] != want[i] {
			t.Fatalf("logit %d: DPU %d, host %d", i, logits[i], want[i])
		}
	}
}

func TestNewAcceleratorDefaults(t *testing.T) {
	acc, err := NewAccelerator(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acc.System().NumDPUs() != 64 {
		t.Errorf("default DPUs = %d, want 64", acc.System().NumDPUs())
	}
	if err := (Options{DPUs: -1}).Validate(); err == nil {
		t.Error("negative DPUs validated")
	}
	if err := (Options{DPUs: 99999}).Validate(); err == nil {
		t.Error("oversized system validated")
	}
}

func TestAdvisorFloatRule(t *testing.T) {
	p := trace.NewProfile()
	p.Record("__addsf3", 57)
	p.Record("__divsf3", 1072)
	recs := NewAdvisor().Analyze(RunInfo{Profile: p, Tasklets: 16, Opt: dpu.O3})
	if !Has(recs, RuleRemoveFloat) {
		t.Errorf("float rule not triggered: %+v", recs)
	}
	if Has(recs, RuleIncreaseThreads) || Has(recs, RuleEnableOpt) {
		t.Errorf("spurious rules: %+v", recs)
	}
}

func TestAdvisorThreadAndOptRules(t *testing.T) {
	recs := NewAdvisor().Analyze(RunInfo{Tasklets: 4, Opt: dpu.O0})
	if !Has(recs, RuleIncreaseThreads) {
		t.Errorf("thread rule not triggered: %+v", recs)
	}
	if !Has(recs, RuleEnableOpt) {
		t.Errorf("opt rule not triggered: %+v", recs)
	}
	// 11 tasklets at O3: neither fires.
	recs = NewAdvisor().Analyze(RunInfo{Tasklets: 11, Opt: dpu.O3})
	if Has(recs, RuleIncreaseThreads) || Has(recs, RuleEnableOpt) {
		t.Errorf("rules fired at the recommended configuration: %+v", recs)
	}
}

func TestAdvisorWRAMRule(t *testing.T) {
	recs := NewAdvisor().Analyze(RunInfo{
		Tasklets: 11, Opt: dpu.O3,
		IssueSlots: 100, DMACycles: 900,
	})
	if !Has(recs, RulePreferWRAM) {
		t.Errorf("WRAM rule not triggered: %+v", recs)
	}
	recs = NewAdvisor().Analyze(RunInfo{
		Tasklets: 11, Opt: dpu.O3,
		IssueSlots: 900, DMACycles: 100,
	})
	if Has(recs, RulePreferWRAM) {
		t.Errorf("WRAM rule fired on compute-bound run: %+v", recs)
	}
}

func TestAdvisorSoftMulRule(t *testing.T) {
	p := trace.NewProfile()
	p.Record("__mulsi3", 48)
	recs := NewAdvisor().Analyze(RunInfo{Profile: p, Tasklets: 11, Opt: dpu.O3})
	if !Has(recs, RuleReduceSoftMul) {
		t.Errorf("soft-mul rule not triggered at O3: %+v", recs)
	}
	// At O0 __mulsi3 is expected (16-bit multiplies), so no flag.
	recs = NewAdvisor().Analyze(RunInfo{Profile: p, Tasklets: 11, Opt: dpu.O0})
	if Has(recs, RuleReduceSoftMul) {
		t.Errorf("soft-mul rule fired at O0: %+v", recs)
	}
}

// TestAdvisorOnRealRuns wires the advisor to actual eBNN executions: the
// float-model run must trigger the float rule, the LUT run must not.
func TestAdvisorOnRealRuns(t *testing.T) {
	ds := mnist.Load(120, 16, 33)
	cfg := ebnn.DefaultTrainConfig()
	cfg.Epochs = 5
	m, err := ebnn.Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(useLUT bool) []Recommendation {
		acc, err := NewAccelerator(Options{DPUs: 1, Opt: dpu.O0})
		if err != nil {
			t.Fatal(err)
		}
		app, err := acc.DeployEBNN(m, useLUT, 16)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := app.Classify(ds.Test); err != nil {
			t.Fatal(err)
		}
		return NewAdvisor().Analyze(RunInfo{
			Profile:  acc.System().Profile(),
			Tasklets: 16,
			Opt:      dpu.O0,
		})
	}
	if recs := run(false); !Has(recs, RuleRemoveFloat) {
		t.Errorf("float model: float rule not triggered: %+v", recs)
	}
	if recs := run(true); Has(recs, RuleRemoveFloat) {
		t.Errorf("LUT model: float rule triggered: %+v", recs)
	}
}

package core

import (
	"fmt"

	"pimdnn/internal/dpu"
	"pimdnn/internal/trace"
)

// Recommendation is one actionable finding from a profile analysis.
type Recommendation struct {
	// Rule identifies the takeaway (stable, machine-checkable).
	Rule string
	// Detail is the human explanation with the triggering numbers.
	Detail string
}

// Advisor analyzes execution profiles and DPU statistics against the
// thesis's implementation takeaways (§4.3.3): minimize high-precision
// computation, thread to the pipeline depth, use the highest compiler
// optimization, and favor WRAM over MRAM accesses.
type Advisor struct {
	// FloatOccThreshold is the subroutine-call count above which
	// floating point is flagged (default 1: any call is worth removing,
	// per §3.3.1's "it is suggested for any applications running on the
	// UPMEM system to use low precision computations").
	FloatOccThreshold uint64
	// DMAFractionThreshold flags MRAM-bound kernels (default 0.5).
	DMAFractionThreshold float64
}

// NewAdvisor returns an advisor with the default thresholds.
func NewAdvisor() *Advisor {
	return &Advisor{FloatOccThreshold: 1, DMAFractionThreshold: 0.5}
}

// RunInfo describes one execution for analysis.
type RunInfo struct {
	Profile  *trace.Profile
	Tasklets int
	Opt      dpu.OptLevel
	// IssueSlots and DMACycles partition the DPU work (from dpu.Stats).
	IssueSlots uint64
	DMACycles  uint64
	// Imbalance is dpu.Stats.Imbalance(): max/mean per-tasklet work.
	Imbalance float64
}

// Rule identifiers emitted by Analyze.
const (
	RuleRemoveFloat     = "remove-floating-point"
	RuleIncreaseThreads = "increase-tasklets"
	RuleEnableOpt       = "enable-compiler-optimization"
	RulePreferWRAM      = "prefer-wram-accesses"
	RuleReduceSoftMul   = "avoid-wide-multiplies"
	RuleBalanceWork     = "balance-tasklet-work"
)

// ImbalanceThreshold is the max/mean per-tasklet work ratio above which
// the balance rule fires. The ratio is exactly the launch's slowdown
// versus perfect balance (completion follows the max tasklet, capacity
// the mean): eBNN's 16 images on 11 tasklets give 2/(16/11) = 1.375 —
// the Fig 4.7a dip — so the rule triggers at 25% waste.
const ImbalanceThreshold = 1.25

// Analyze returns the recommendations that apply to the run.
func (a *Advisor) Analyze(run RunInfo) []Recommendation {
	var recs []Recommendation

	if run.Profile != nil {
		var floatOcc uint64
		for _, name := range run.Profile.FloatSubroutines() {
			floatOcc += run.Profile.Occ(name)
		}
		if floatOcc >= a.FloatOccThreshold && floatOcc > 0 {
			recs = append(recs, Recommendation{
				Rule: RuleRemoveFloat,
				Detail: fmt.Sprintf(
					"%d floating-point subroutine calls recorded; move BN/activation to the host via a LUT (§4.1.4) or quantize the network (§4.3.3)",
					floatOcc),
			})
		}
		if run.Opt >= dpu.O2 {
			if occ := run.Profile.Occ("__mulsi3"); occ > 0 {
				recs = append(recs, Recommendation{
					Rule: RuleReduceSoftMul,
					Detail: fmt.Sprintf(
						"%d __mulsi3 calls survive at %v: 32-bit multiplies always use the subroutine; narrow operands to 16 bits or less (§3.3)",
						occ, run.Opt),
				})
			}
		}
	}

	if run.Tasklets > 0 && run.Tasklets < dpu.PipelineDepth {
		recs = append(recs, Recommendation{
			Rule: RuleIncreaseThreads,
			Detail: fmt.Sprintf(
				"%d tasklets leave the %d-stage pipeline underfilled; speedup scales to %d tasklets (Fig 4.7a)",
				run.Tasklets, dpu.PipelineDepth, dpu.PipelineDepth),
		})
	}

	if run.Opt < dpu.O3 {
		recs = append(recs, Recommendation{
			Rule: RuleEnableOpt,
			Detail: fmt.Sprintf(
				"compiled at %v; the highest compiler optimization is recommended (§4.3.3), and O2+ inlines 16-bit multiplies (§3.3)",
				run.Opt),
		})
	}

	if run.Imbalance > ImbalanceThreshold {
		recs = append(recs, Recommendation{
			Rule: RuleBalanceWork,
			Detail: fmt.Sprintf(
				"per-tasklet work imbalance %.2fx (max/mean); match the work granularity to the tasklet count (Fig 4.7a's eBNN dip at 11 tasklets comes from ceil(16/11)=2 images on some tasklets)",
				run.Imbalance),
		})
	}

	if total := run.IssueSlots + run.DMACycles; total > 0 {
		frac := float64(run.DMACycles) / float64(total)
		if frac > a.DMAFractionThreshold {
			recs = append(recs, Recommendation{
				Rule: RulePreferWRAM,
				Detail: fmt.Sprintf(
					"%.0f%% of DPU work is MRAM DMA; restructure buffers to increase WRAM accesses vs. MRAM ones (§4.3.3), e.g. tile the accumulator into WRAM",
					frac*100),
			})
		}
	}
	return recs
}

// Has reports whether the recommendation list contains the rule.
func Has(recs []Recommendation, rule string) bool {
	for _, r := range recs {
		if r.Rule == rule {
			return true
		}
	}
	return false
}

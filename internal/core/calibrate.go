// Calibration closes the auto-mapper's loop: deploy each workload with
// the planner on, execute it through the simulator, and hold the
// planner's analytic prediction (plan.Mapping.PredictedSeconds) against
// the simulated latency (exec.Stats.Seconds) layer by layer. Because
// the cost functions in internal/model mirror the kernels charge by
// charge, the fault-free error should be ~0; the report makes that
// verifiable instead of assumed (cmd/upmem-profile -calibrate).
package core

import (
	"fmt"
	"math"
	"math/rand"

	"pimdnn/internal/alexnet"
	"pimdnn/internal/dpu"
	"pimdnn/internal/ebnn"
	"pimdnn/internal/mnist"
	"pimdnn/internal/plan"
	"pimdnn/internal/resnet"
	"pimdnn/internal/tensor"
	"pimdnn/internal/yolo"
)

// CalibrationRow is one layer's predicted-vs-simulated comparison.
type CalibrationRow struct {
	Network  string `json:"network"`
	Layer    int    `json:"layer"`
	Tasklets int    `json:"tasklets"`
	DPUsUsed int    `json:"dpus_used"`
	// PredictedSeconds is the planner's analytic latency;
	// SimulatedSeconds is the interpreter's.
	PredictedSeconds float64 `json:"predicted_s"`
	SimulatedSeconds float64 `json:"simulated_s"`
	// Error is (predicted - simulated) / simulated.
	Error float64 `json:"error"`
}

// CalibrationReport aggregates the per-layer rows.
type CalibrationReport struct {
	Rows []CalibrationRow `json:"rows"`
	// MaxAbsError is the worst |Error| across all rows.
	MaxAbsError float64 `json:"max_abs_error"`
}

// CalibrateOptions sizes the calibration run. The workloads themselves
// are fixed reduced configurations of the four networks — large enough
// to exercise multi-wave mappings, small enough to simulate in seconds.
type CalibrateOptions struct {
	// DPUs is the system size (default 64).
	DPUs int
	// Opt is the compile optimization level (the zero value is O0,
	// matching dpu.OptLevel's).
	Opt dpu.OptLevel
}

func randTensor(size int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(3, size, size)
	for i := range t.Data {
		t.Data[i] = tensor.Quantize(rng.Float64())
	}
	return t
}

func (r *CalibrationReport) add(network string, layer int, ls yolo.LayerStat) {
	r.addRow(CalibrationRow{
		Network: network, Layer: layer,
		Tasklets: ls.Tasklets, DPUsUsed: ls.DPUsUsed,
		PredictedSeconds: ls.PredictedSeconds,
		SimulatedSeconds: ls.Seconds,
	})
}

func (r *CalibrationReport) addRow(row CalibrationRow) {
	if row.SimulatedSeconds > 0 {
		row.Error = (row.PredictedSeconds - row.SimulatedSeconds) / row.SimulatedSeconds
	}
	if e := math.Abs(row.Error); e > r.MaxAbsError {
		r.MaxAbsError = e
	}
	r.Rows = append(r.Rows, row)
}

// Calibrate runs all four workloads — YOLOv3 (row-per-DPU), AlexNet and
// ResNet-18 (same scheme), eBNN (multi-image-per-DPU) — with the
// auto-mapper choosing every mapping, and reports predicted vs
// simulated latency for every delegated layer.
func Calibrate(opts CalibrateOptions) (*CalibrationReport, error) {
	if opts.DPUs == 0 {
		opts.DPUs = 64
	}
	rep := &CalibrationReport{}

	newAcc := func() (*Accelerator, error) {
		return NewAccelerator(Options{DPUs: opts.DPUs, Opt: opts.Opt})
	}

	// YOLOv3: the 75-conv graph at bench scale.
	{
		acc, err := newAcc()
		if err != nil {
			return nil, err
		}
		cfg := yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3}
		app, err := acc.DeployYOLO(cfg, YOLOOptions{AutoMap: true})
		if err != nil {
			return nil, err
		}
		_, st, err := app.Detect(randTensor(cfg.InputSize, 1))
		if err != nil {
			return nil, fmt.Errorf("core: calibrate yolo: %w", err)
		}
		for _, ls := range st.Layers {
			rep.add("yolov3", ls.Layer, ls)
		}
	}

	// AlexNet: conv + FC layers through the same row-per-DPU runner.
	{
		acc, err := newAcc()
		if err != nil {
			return nil, err
		}
		app, err := acc.DeployAlexNet(alexnet.LiteConfig(), YOLOOptions{AutoMap: true})
		if err != nil {
			return nil, err
		}
		_, _, st, err := app.Classify(randTensor(app.Network().Cfg.InputSize, 2))
		if err != nil {
			return nil, fmt.Errorf("core: calibrate alexnet: %w", err)
		}
		for _, ls := range st.Layers {
			rep.addRow(CalibrationRow{
				Network: "alexnet", Layer: ls.Layer,
				Tasklets: ls.Tasklets, DPUsUsed: ls.DPUsUsed,
				PredictedSeconds: ls.PredictedSeconds,
				SimulatedSeconds: ls.Seconds,
			})
		}
	}

	// ResNet-18: residual blocks, projections included.
	{
		acc, err := newAcc()
		if err != nil {
			return nil, err
		}
		app, err := acc.DeployResNet(resnet.LiteConfig(), YOLOOptions{AutoMap: true})
		if err != nil {
			return nil, err
		}
		_, _, st, err := app.Classify(randTensor(app.Network().Cfg.InputSize, 3))
		if err != nil {
			return nil, fmt.Errorf("core: calibrate resnet: %w", err)
		}
		for _, ls := range st.Layers {
			rep.addRow(CalibrationRow{
				Network: "resnet18", Layer: ls.Layer,
				Tasklets: ls.Tasklets, DPUsUsed: ls.DPUsUsed,
				PredictedSeconds: ls.PredictedSeconds,
				SimulatedSeconds: ls.Seconds,
			})
		}
	}

	// eBNN: the multi-image-per-DPU scheme, planned for the exact image
	// count so the partial-wave geometry is part of what's validated.
	{
		acc, err := newAcc()
		if err != nil {
			return nil, err
		}
		ds := mnist.Load(160, 16, 41)
		tc := ebnn.DefaultTrainConfig()
		tc.Epochs = 2
		m, err := ebnn.Train(ds, tc)
		if err != nil {
			return nil, err
		}
		images := ds.Train[:96]
		p := plan.New(acc.System())
		mp := ebnn.PlanMapping(p, m, true, len(images))
		r, err := ebnn.NewRunnerMapped(acc.System(), m, true, mp)
		if err != nil {
			return nil, err
		}
		_, st, err := r.Infer(images)
		if err != nil {
			return nil, fmt.Errorf("core: calibrate ebnn: %w", err)
		}
		rep.addRow(CalibrationRow{
			Network: "ebnn", Layer: 0,
			Tasklets: st.Tasklets, DPUsUsed: st.DPUsUsed,
			PredictedSeconds: mp.PredictedSeconds,
			SimulatedSeconds: st.Seconds,
		})
	}
	return rep, nil
}

// MappingComparison contrasts one network's forward pass under the
// hand-tuned fixed mapping against the auto-mapped deployment on
// identical systems and input. Outputs are verified bit-identical
// before the stats are reported.
type MappingComparison struct {
	Network string `json:"network"`
	// FixedSeconds and PlannedSeconds are simulated DPU latencies.
	FixedSeconds   float64 `json:"fixed_s"`
	PlannedSeconds float64 `json:"planned_s"`
	// FixedTasklets is the constant the fixed path ran with;
	// PlannedTasklets the planner's choice on the largest layer.
	FixedTasklets   int `json:"fixed_tasklets"`
	PlannedTasklets int `json:"planned_tasklets"`
}

// Speedup is fixed over planned latency (>= 1 when the planner wins).
func (c MappingComparison) Speedup() float64 {
	if c.PlannedSeconds == 0 {
		return 0
	}
	return c.FixedSeconds / c.PlannedSeconds
}

// maxTaskletsOf returns the largest per-layer tasklet count (the
// planner varies it per shape; the fixed path pins one value).
func maxTaskletsOf(layers []yolo.LayerStat) int {
	m := 0
	for _, l := range layers {
		if l.Tasklets > m {
			m = l.Tasklets
		}
	}
	return m
}

// CompareYOLOMappings runs the same YOLO forward twice — fixed
// constants vs auto-mapper — on equal-sized fresh systems, checks the
// detections match bit-for-bit, and returns both latencies.
func CompareYOLOMappings(cfg yolo.Config, dpus int, opt dpu.OptLevel) (MappingComparison, error) {
	run := func(auto bool) (*yolo.Result, *yolo.ForwardStats, error) {
		acc, err := NewAccelerator(Options{DPUs: dpus, Opt: opt})
		if err != nil {
			return nil, nil, err
		}
		app, err := acc.DeployYOLO(cfg, YOLOOptions{AutoMap: auto})
		if err != nil {
			return nil, nil, err
		}
		return app.Detect(randTensor(cfg.InputSize, 7))
	}
	fixedRes, fixedSt, err := run(false)
	if err != nil {
		return MappingComparison{}, err
	}
	planRes, planSt, err := run(true)
	if err != nil {
		return MappingComparison{}, err
	}
	if len(fixedRes.Detections) != len(planRes.Detections) {
		return MappingComparison{}, fmt.Errorf("core: auto-mapped YOLO forward diverged from fixed mapping")
	}
	for i := range fixedRes.Detections {
		if fixedRes.Detections[i] != planRes.Detections[i] {
			return MappingComparison{}, fmt.Errorf("core: auto-mapped YOLO detection %d diverged", i)
		}
	}
	return MappingComparison{
		Network:         "yolov3",
		FixedSeconds:    fixedSt.Seconds,
		PlannedSeconds:  planSt.Seconds,
		FixedTasklets:   maxTaskletsOf(fixedSt.Layers),
		PlannedTasklets: maxTaskletsOf(planSt.Layers),
	}, nil
}

package core

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/ebnn"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
)

func TestAdvisorBalanceRule(t *testing.T) {
	recs := NewAdvisor().Analyze(RunInfo{Tasklets: 11, Opt: dpu.O3, Imbalance: 1.4})
	if !Has(recs, RuleBalanceWork) {
		t.Errorf("balance rule not triggered at 1.4x: %+v", recs)
	}
	recs = NewAdvisor().Analyze(RunInfo{Tasklets: 11, Opt: dpu.O3, Imbalance: 1.05})
	if Has(recs, RuleBalanceWork) {
		t.Errorf("balance rule fired on a balanced run: %+v", recs)
	}
}

// TestImbalanceDetectsEBNNDip: the real eBNN launch at 11 tasklets on a
// 16-image batch is imbalanced (ceil(16/11) = 2 images on five tasklets),
// while 16 tasklets balance perfectly — the Fig 4.7(a) dip, end to end
// through Stats.Imbalance and the advisor.
func TestImbalanceDetectsEBNNDip(t *testing.T) {
	ds := mnist.Load(120, 16, 91)
	cfg := ebnn.DefaultTrainConfig()
	cfg.Epochs = 3
	m, err := ebnn.Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imbalanceAt := func(tasklets int) float64 {
		sys, err := host.NewSystem(1, host.DefaultConfig(dpu.O0))
		if err != nil {
			t.Fatal(err)
		}
		r, err := ebnn.NewRunner(sys, m, true, tasklets)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Infer(ds.Test); err != nil {
			t.Fatal(err)
		}
		// Re-run the kernel directly to obtain per-tasklet stats.
		st, err := sys.DPU(0).Launch(tasklets, rKernel(r))
		if err != nil {
			t.Fatal(err)
		}
		return st.Imbalance()
	}
	at11 := imbalanceAt(11)
	at16 := imbalanceAt(16)
	// ceil(16/11)=2 images on five tasklets vs 16/11 mean: ratio 1.375.
	if at11 < 1.3 || at11 > 1.45 {
		t.Errorf("11 tasklets on 16 images: imbalance %.2f, expected ~1.375 (the Fig 4.7a dip)", at11)
	}
	if at16 > 1.2 {
		t.Errorf("16 tasklets on 16 images: imbalance %.2f, expected ~1", at16)
	}
	// The advisor flags the 11-tasklet run.
	recs := NewAdvisor().Analyze(RunInfo{Tasklets: 11, Opt: dpu.O0, Imbalance: at11})
	if !Has(recs, RuleBalanceWork) {
		t.Errorf("advisor missed the eBNN dip: imbalance %.2f, recs %+v", at11, recs)
	}
}

// rKernel exposes the runner's kernel for direct relaunch; it lives here
// to keep the production API small.
func rKernel(r *ebnn.Runner) dpu.KernelFunc {
	return ebnn.KernelForTest(r)
}

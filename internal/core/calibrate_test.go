package core

import (
	"testing"

	"pimdnn/internal/alexnet"
	"pimdnn/internal/ebnn"
	"pimdnn/internal/mnist"
	"pimdnn/internal/plan"
	"pimdnn/internal/resnet"
	"pimdnn/internal/yolo"
)

// calTolerance is the stated calibration tolerance: the analytic model
// mirrors the kernels charge by charge, so predicted latency must land
// within 1% of simulated for every layer (in practice it is exact).
const calTolerance = 0.01

func TestCalibrationReport(t *testing.T) {
	rep, err := Calibrate(CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxAbsError > calTolerance {
		t.Errorf("calibration max |error| %.4f exceeds tolerance %.2f", rep.MaxAbsError, calTolerance)
	}
	seen := map[string]int{}
	for _, r := range rep.Rows {
		seen[r.Network]++
		if r.Tasklets < 1 {
			t.Errorf("%s layer %d: tasklets %d", r.Network, r.Layer, r.Tasklets)
		}
		if r.PredictedSeconds <= 0 || r.SimulatedSeconds <= 0 {
			t.Errorf("%s layer %d: degenerate latencies pred=%g sim=%g",
				r.Network, r.Layer, r.PredictedSeconds, r.SimulatedSeconds)
		}
		if e := r.Error; e > calTolerance || e < -calTolerance {
			t.Errorf("%s layer %d: error %.4f outside +/-%.2f", r.Network, r.Layer, e, calTolerance)
		}
	}
	for _, net := range []string{"yolov3", "alexnet", "resnet18", "ebnn"} {
		if seen[net] == 0 {
			t.Errorf("calibration report has no %s rows", net)
		}
	}
	if seen["yolov3"] != 75 {
		t.Errorf("yolov3 rows = %d, want all 75 conv layers", seen["yolov3"])
	}
}

// TestYOLOMappingNeverSlower is the planner's accept bar: the
// auto-mapped forward must be bit-identical to the fixed-constant
// mapping and never slower in simulated time.
func TestYOLOMappingNeverSlower(t *testing.T) {
	cmp, err := CompareYOLOMappings(yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3}, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.PlannedSeconds > cmp.FixedSeconds {
		t.Errorf("auto-mapped forward slower than hand-tuned: %.6gs vs %.6gs",
			cmp.PlannedSeconds, cmp.FixedSeconds)
	}
	t.Logf("fixed %.6gs (T=%d) -> planned %.6gs (T<=%d), speedup %.2fx",
		cmp.FixedSeconds, cmp.FixedTasklets, cmp.PlannedSeconds, cmp.PlannedTasklets, cmp.Speedup())
}

// TestAutoVsFixedBitIdentity runs AlexNet, ResNet and eBNN forwards
// under both deployments and requires identical outputs (YOLO is
// covered by CompareYOLOMappings above).
func TestAutoVsFixedBitIdentity(t *testing.T) {
	classify := func(deploy func(acc *Accelerator, auto bool) (func() ([]int16, error), error)) ([]int16, []int16) {
		t.Helper()
		var out [2][]int16
		for i, auto := range []bool{false, true} {
			acc, err := NewAccelerator(Options{DPUs: 16})
			if err != nil {
				t.Fatal(err)
			}
			run, err := deploy(acc, auto)
			if err != nil {
				t.Fatal(err)
			}
			out[i], err = run()
			if err != nil {
				t.Fatal(err)
			}
		}
		return out[0], out[1]
	}

	t.Run("alexnet", func(t *testing.T) {
		in := randTensor(67, 11)
		fixed, auto := classify(func(acc *Accelerator, auto bool) (func() ([]int16, error), error) {
			app, err := acc.DeployAlexNet(alexnet.LiteConfig(), YOLOOptions{AutoMap: auto})
			if err != nil {
				return nil, err
			}
			return func() ([]int16, error) {
				_, logits, _, err := app.Classify(in)
				return logits, err
			}, nil
		})
		for i := range fixed {
			if fixed[i] != auto[i] {
				t.Fatalf("logit %d diverged: %d vs %d", i, fixed[i], auto[i])
			}
		}
	})

	t.Run("resnet", func(t *testing.T) {
		in := randTensor(64, 12)
		fixed, auto := classify(func(acc *Accelerator, auto bool) (func() ([]int16, error), error) {
			app, err := acc.DeployResNet(resnet.LiteConfig(), YOLOOptions{AutoMap: auto})
			if err != nil {
				return nil, err
			}
			return func() ([]int16, error) {
				_, logits, _, err := app.Classify(in)
				return logits, err
			}, nil
		})
		for i := range fixed {
			if fixed[i] != auto[i] {
				t.Fatalf("logit %d diverged: %d vs %d", i, fixed[i], auto[i])
			}
		}
	})

	t.Run("ebnn", func(t *testing.T) {
		ds := mnist.Load(160, 16, 43)
		tc := ebnn.DefaultTrainConfig()
		tc.Epochs = 2
		m, err := ebnn.Train(ds, tc)
		if err != nil {
			t.Fatal(err)
		}
		images := ds.Train[:64]
		var preds [2][]int
		for i, tasklets := range []int{plan.FixedEBNNTasklets, 0} { // 0 = auto-map
			acc, err := NewAccelerator(Options{DPUs: 8})
			if err != nil {
				t.Fatal(err)
			}
			app, err := acc.DeployEBNN(m, true, tasklets)
			if err != nil {
				t.Fatal(err)
			}
			preds[i], _, err = app.Classify(images)
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := range preds[0] {
			if preds[0][i] != preds[1][i] {
				t.Fatalf("prediction %d diverged: %d vs %d", i, preds[0][i], preds[1][i])
			}
		}
	})
}

// Package core is the thesis's first contribution as a reusable
// framework: "a standardized framework for adapting and implementing any
// CNN application within the UPMEM PIM system" (chapter 4).
//
// It ties the substrates together behind one deployment surface:
//
//   - an Accelerator owning the DPU system;
//   - the two operation-mapping schemes the thesis develops —
//     multiple images per DPU (eBNN, §4.1.3) and multiple DPUs per image
//     (YOLOv3's row-per-DPU GEMM, §4.2.3) — with a scheme chooser driven
//     by the WRAM-fit criterion that separates them;
//   - an Advisor that turns execution profiles into the §4.3.3
//     implementation takeaways (remove floating point, thread to the
//     pipeline depth, compile -O3, prefer WRAM over MRAM accesses).
package core

import (
	"fmt"

	"pimdnn/internal/alexnet"
	"pimdnn/internal/dpu"
	"pimdnn/internal/ebnn"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
	"pimdnn/internal/plan"
	"pimdnn/internal/resnet"
	"pimdnn/internal/tensor"
	"pimdnn/internal/yolo"
)

// Scheme is an operation-mapping strategy for CNNs on the DPU system.
type Scheme int

// The two mapping schemes of chapter 4.
const (
	// MultiImagePerDPU batches many small inferences into each DPU and
	// uses tasklets as per-image threads (eBNN, §4.1.3).
	MultiImagePerDPU Scheme = iota + 1
	// MultiDPUPerImage spreads one inference across many DPUs, one
	// output row each (YOLOv3, §4.2.3 / Fig 4.6).
	MultiDPUPerImage
)

func (s Scheme) String() string {
	switch s {
	case MultiImagePerDPU:
		return "multi-image-per-DPU"
	case MultiDPUPerImage:
		return "multi-DPU-per-image"
	default:
		return "scheme?"
	}
}

// ChooseScheme picks the mapping for a workload: if a whole inference's
// working set fits comfortably in one tasklet's WRAM share, batch images
// per DPU; otherwise spread the inference over DPUs. This is exactly the
// eBNN-vs-YOLOv3 split the thesis describes ("eBNN's image sizes were so
// small, there was plenty of memory space within the DPUs. YOLOv3
// contained large convolution buffers ... that made it difficult to do
// the same", §6.1).
func ChooseScheme(workingSetBytes int64, tasklets int, cfg dpu.Config) Scheme {
	share := int64(cfg.WRAMSize) / int64(tasklets)
	if workingSetBytes <= share {
		return MultiImagePerDPU
	}
	return MultiDPUPerImage
}

// Accelerator owns a simulated UPMEM system and deploys CNNs onto it.
type Accelerator struct {
	sys *host.System
}

// Options configures an Accelerator.
type Options struct {
	// DPUs is the system size (default 64; the full system is 2,560).
	DPUs int
	// Opt is the dpu-clang optimization level (default O3 per §4.3.3).
	Opt dpu.OptLevel
}

// NewAccelerator allocates the DPU system.
func NewAccelerator(opts Options) (*Accelerator, error) {
	if opts.DPUs == 0 {
		opts.DPUs = 64
	}
	sys, err := host.NewSystem(opts.DPUs, host.DefaultConfig(opts.Opt))
	if err != nil {
		return nil, err
	}
	return &Accelerator{sys: sys}, nil
}

// System exposes the underlying host runtime.
func (a *Accelerator) System() *host.System { return a.sys }

// EBNNApp is a deployed eBNN classifier.
type EBNNApp struct {
	runner *ebnn.Runner
	model  *ebnn.Model
}

// DeployEBNN trains nothing — it deploys an already-trained model with
// the multi-image-per-DPU scheme. useLUT selects the Fig 4.2(b)
// architecture with the host-built BN-BinAct lookup table. tasklets 0
// asks the auto-mapper to choose the thread count from the cost model
// (plan.FixedEBNNTasklets is the hand-tuned constant it replaces).
func (a *Accelerator) DeployEBNN(m *ebnn.Model, useLUT bool, tasklets int) (*EBNNApp, error) {
	if tasklets == 0 {
		r, _, err := ebnn.NewPlannedRunner(a.sys, m, useLUT, nil)
		if err != nil {
			return nil, err
		}
		return &EBNNApp{runner: r, model: m}, nil
	}
	r, err := ebnn.NewRunner(a.sys, m, useLUT, tasklets)
	if err != nil {
		return nil, err
	}
	return &EBNNApp{runner: r, model: m}, nil
}

// Classify runs inference on the DPU system and returns predicted labels.
func (app *EBNNApp) Classify(images []mnist.Image) ([]int, ebnn.BatchStats, error) {
	return app.runner.Infer(images)
}

// Model returns the deployed model.
func (app *EBNNApp) Model() *ebnn.Model { return app.model }

// YOLOApp is a deployed YOLOv3 detector.
type YOLOApp struct {
	net    *yolo.Network
	runner *gemm.Runner
}

// YOLOOptions tunes the detector deployment (shared by the AlexNet and
// ResNet deploys, which map the same way).
type YOLOOptions struct {
	// Tasklets per DPU (default plan.FixedTasklets = the pipeline
	// depth). Under AutoMap a nonzero value bounds the planner's sweep
	// instead of pinning the count.
	Tasklets int
	// Naive selects the thesis-faithful MRAM-bound kernel; the default
	// is the WRAM-tiled improvement (§4.3.4).
	Naive bool
	// TileCols for the tiled kernel (default gemm.DefaultTileCols).
	TileCols int
	// AutoMap wires the cost-model planner into the runner: every
	// layer's tasklet count, wave width and pipeline mode come from
	// plan.Planner instead of the fixed constants above. Results stay
	// bit-identical — the planner only picks among mapping axes.
	AutoMap bool
}

// gemmRunner sizes a GEMM runner for a network's largest layer,
// applying the fixed-constant fallback or the auto-mapper per opts.
func (a *Accelerator) gemmRunner(maxK, maxN int, opts YOLOOptions) (*gemm.Runner, error) {
	cfg := gemm.RunnerConfig{
		MaxK:     maxK,
		MaxN:     maxN,
		Tasklets: opts.Tasklets,
		TileCols: opts.TileCols,
		Naive:    opts.Naive,
	}
	if opts.AutoMap {
		cfg.Planner = plan.New(a.sys)
	} else if cfg.Tasklets == 0 {
		cfg.Tasklets = plan.FixedTasklets
	}
	return gemm.NewRunner(a.sys, cfg)
}

// DeployYOLO builds the network and sizes a GEMM runner for its largest
// layer, using the multi-DPU-per-image scheme.
func (a *Accelerator) DeployYOLO(cfg yolo.Config, opts YOLOOptions) (*YOLOApp, error) {
	net, err := yolo.New(cfg)
	if err != nil {
		return nil, err
	}
	maxK, maxN := net.GEMMBounds()
	runner, err := a.gemmRunner(maxK, maxN, opts)
	if err != nil {
		return nil, err
	}
	return &YOLOApp{net: net, runner: runner}, nil
}

// Network returns the deployed network.
func (app *YOLOApp) Network() *yolo.Network { return app.net }

// Detect runs one image through the network, convolutions on the DPUs.
func (app *YOLOApp) Detect(img *yolo.Tensor) (*yolo.Result, *yolo.ForwardStats, error) {
	return app.net.Forward(img, app.runner)
}

// DetectHost runs the bit-exact host reference (no DPUs), for
// verification.
func (app *YOLOApp) DetectHost(img *yolo.Tensor) (*yolo.Result, error) {
	res, _, err := app.net.Forward(img, nil)
	return res, err
}

// AlexNetApp is a deployed AlexNet classifier.
type AlexNetApp struct {
	net    *alexnet.Network
	runner *gemm.Runner
}

// DeployAlexNet builds the §6.1 extension workload — the network the
// chapter 5 model prices — and sizes a GEMM runner for it, using the
// multi-DPU-per-image scheme for both conv and FC layers.
func (a *Accelerator) DeployAlexNet(cfg alexnet.Config, opts YOLOOptions) (*AlexNetApp, error) {
	net, err := alexnet.New(cfg)
	if err != nil {
		return nil, err
	}
	maxK, maxN, _ := net.GEMMBounds()
	runner, err := a.gemmRunner(maxK, maxN, opts)
	if err != nil {
		return nil, err
	}
	return &AlexNetApp{net: net, runner: runner}, nil
}

// Network returns the deployed network.
func (app *AlexNetApp) Network() *alexnet.Network { return app.net }

// Classify runs one image on the DPUs, returning the argmax class, the
// raw logits and the forward statistics.
func (app *AlexNetApp) Classify(img *tensor.Tensor) (int, []int16, *alexnet.ForwardStats, error) {
	logits, stats, err := app.net.Forward(img, app.runner)
	if err != nil {
		return 0, nil, nil, err
	}
	return alexnet.Predict(logits), logits, stats, nil
}

// ResNetApp is a deployed ResNet-18 classifier.
type ResNetApp struct {
	net    *resnet.Network
	runner *gemm.Runner
}

// DeployResNet builds the residual network that completes the §6.1
// "AlexNet to ResNet" span, sized like the other GEMM-backed workloads.
func (a *Accelerator) DeployResNet(cfg resnet.Config, opts YOLOOptions) (*ResNetApp, error) {
	net, err := resnet.New(cfg)
	if err != nil {
		return nil, err
	}
	maxK, maxN := net.GEMMBounds()
	runner, err := a.gemmRunner(maxK, maxN, opts)
	if err != nil {
		return nil, err
	}
	return &ResNetApp{net: net, runner: runner}, nil
}

// Network returns the deployed network.
func (app *ResNetApp) Network() *resnet.Network { return app.net }

// Classify runs one image on the DPUs.
func (app *ResNetApp) Classify(img *tensor.Tensor) (int, []int16, *resnet.ForwardStats, error) {
	logits, stats, err := app.net.Forward(img, app.runner)
	if err != nil {
		return 0, nil, nil, err
	}
	return resnet.Predict(logits), logits, stats, nil
}

// WorkingSetEBNN estimates one eBNN inference's per-tasklet working set:
// a packed image plus its result buffer.
func WorkingSetEBNN() int64 {
	return mnist.PackedSize + ebnn.ResultSize
}

// WorkingSetYOLO estimates one YOLOv3 inference's minimum buffer need:
// the largest layer's im2col matrix row plus its ctmp accumulator — the
// "large internal buffer [that] can reach up to 160 KB" of §4.3.4.
func WorkingSetYOLO(cfg yolo.Config) (int64, error) {
	net, err := yolo.New(cfg)
	if err != nil {
		return 0, err
	}
	_, maxN := net.GEMMBounds()
	return int64(maxN) * 4, nil // int32 ctmp per output column
}

// Validate sanity-checks a deployment option set early.
func (o Options) Validate() error {
	if o.DPUs < 0 || o.DPUs > dpu.SystemDPUs {
		return fmt.Errorf("core: DPUs %d outside 0..%d", o.DPUs, dpu.SystemDPUs)
	}
	return nil
}

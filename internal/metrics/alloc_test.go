package metrics

import "testing"

// TestHotPathZeroAllocs pins the package's core promise: updating an
// instrument allocates nothing, on both the enabled and the disabled
// (nil) path. A regression here would put garbage-collector pressure
// inside every DPU launch and host transfer.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(1000, 4, 12))
	v := r.CounterVec("v", "dpu", 8)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(3) }},
		{"Counter.Inc", func() { c.Inc() }},
		{"Gauge.Set", func() { g.Set(7) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(123456) }},
		{"CounterVec.At.Add", func() { v.At(3).Add(1) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}

	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	var nilV *CounterVec
	nilCases := []struct {
		name string
		fn   func()
	}{
		{"nil Counter.Add", func() { nilC.Add(3) }},
		{"nil Gauge.Set", func() { nilG.Set(7) }},
		{"nil Histogram.Observe", func() { nilH.Observe(9) }},
		{"nil CounterVec.At.Add", func() { nilV.At(3).Add(1) }},
	}
	for _, tc := range nilCases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

// BenchmarkCounterAdd and friends give bench.sh allocation gates on the
// enabled hot path.
func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("h", ExpBuckets(1000, 4, 12))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

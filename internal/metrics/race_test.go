package metrics

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentUpdatesAndSnapshots hammers one registry from
// GOMAXPROCS writer goroutines while a reader snapshots continuously,
// asserting the package's monotonic-snapshot contract: counter values
// never decrease between successive snapshots, and a histogram's Count
// always equals the sum of its bucket Counts (no torn reads). Run under
// -race this also proves the instruments are data-race free.
func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pim_test_total")
	g := r.Gauge("pim_test_gauge")
	h := r.Histogram("pim_test_hist", ExpBuckets(1, 2, 8))
	v := r.CounterVec("pim_test_vec", "dpu", 8)

	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	const perWriter = 5000
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(uint64(i % 300))
				v.At(i % 8).Add(2)
			}
		}(w)
	}

	// Reader: successive snapshots must be monotonic per counter and
	// internally consistent per histogram.
	var lastC uint64
	lastVec := make(map[string]uint64)
	readerDone := make(chan error, 1)
	go func() {
		defer close(readerDone)
		for !stop.Load() {
			s := r.Snapshot()
			for _, cs := range s.Counters {
				if cs.Name == "pim_test_total" {
					if cs.Value < lastC {
						t.Errorf("counter went backwards: %d -> %d", lastC, cs.Value)
						return
					}
					lastC = cs.Value
				}
				if cs.Name == "pim_test_vec" {
					if cs.Value < lastVec[cs.LabelVal] {
						t.Errorf("vec[%s] went backwards", cs.LabelVal)
						return
					}
					lastVec[cs.LabelVal] = cs.Value
				}
			}
			for _, hs := range s.Histograms {
				var sum uint64
				for _, n := range hs.Counts {
					sum += n
				}
				if sum != hs.Count {
					t.Errorf("torn histogram: Count=%d sum(Counts)=%d", hs.Count, sum)
					return
				}
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	<-readerDone

	want := uint64(writers * perWriter)
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	var vecTotal uint64
	for i := 0; i < v.Len(); i++ {
		vecTotal += v.At(i).Value()
	}
	if vecTotal != 2*want {
		t.Errorf("vec total = %d, want %d", vecTotal, 2*want)
	}
}

// TestConcurrentGetOrCreate races registration against growth: the same
// (name, label) must resolve to one instrument from every goroutine.
func TestConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	got := make([]*Counter, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = r.LabeledCounter("shared", "k", "v")
			r.CounterVec("vec", "dpu", 4+i).At(0).Inc()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("get-or-create returned distinct instruments")
		}
	}
	if n := r.CounterVec("vec", "dpu", 1).At(0).Value(); n != 16 {
		t.Errorf("vec[0] = %d, want 16 (grown slices must share counters)", n)
	}
}

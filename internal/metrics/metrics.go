// Package metrics is the stack's telemetry registry: dependency-free
// (stdlib only) atomic counters, gauges, and fixed-bucket histograms,
// designed so instrumented hot paths cost one nil-check branch and zero
// allocations when telemetry is disabled, and a handful of atomic adds
// when it is enabled.
//
// The contract, relied on by every instrumented package:
//
//   - Nil-safety. Every instrument method (Add, Inc, Set, Observe) and
//     every Registry getter is safe on a nil receiver: a nil *Registry
//     hands out nil instruments, and updating a nil instrument is a
//     no-op. Code therefore resolves instruments once at setup time and
//     updates them unconditionally — no "is telemetry on" plumbing.
//   - Bit-identity. Instruments observe the simulation, never steer it:
//     no simulated clock, cycle count, or experiment output may depend
//     on whether a registry is wired. The invariant is enforced by
//     tests in the instrumented packages.
//   - Monotonic snapshots. Counter values and histogram bucket counts
//     only grow; Snapshot loads each value atomically, so concurrent
//     readers see monotonically non-decreasing values and never a torn
//     (partially updated) histogram: a histogram's snapshot Count is
//     derived from the bucket loads themselves.
package metrics

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; a nil *Counter ignores updates.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by 1. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value (queue depth, down-DPU count).
// The zero value is ready to use; a nil *Gauge ignores updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts uint64 observations (latencies in nanoseconds, sizes
// in bytes, occupancies) into fixed buckets chosen at registration.
// Bounds are inclusive upper edges; observations above the last bound
// land in an implicit +Inf bucket. A nil *Histogram ignores updates.
type Histogram struct {
	bounds []uint64        // ascending upper edges, immutable after creation
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64
	// Exemplars: the most recent (value, trace ID) pair observed per
	// bucket, linking a latency bucket to a concrete request trace.
	// Written only by ObserveExemplar; two independent atomics, so a
	// reader may pair a value with a neighbouring observation's trace ID
	// — acceptable for a diagnostic hint.
	exVal []atomic.Uint64 // len(bounds)+1
	exID  []atomic.Uint64 // len(bounds)+1; 0 = no exemplar yet
}

// Observe records one value. Allocation-free; no-op on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one value and attaches traceID as the
// bucket's exemplar, so renderings can point at a concrete request
// trace behind a latency bucket. A zero traceID (request not sampled)
// degrades to a plain Observe. Allocation-free; no-op on a nil
// receiver.
func (h *Histogram) ObserveExemplar(v uint64, traceID uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	if traceID != 0 {
		h.exVal[i].Store(v)
		h.exID[i].Store(traceID)
	}
}

// Count returns the total number of observations, derived from the
// bucket counts (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// ExpBuckets returns n bucket bounds starting at start and growing by
// factor: the standard shape for latency and size histograms.
func ExpBuckets(start, factor uint64, n int) []uint64 {
	if factor < 2 {
		factor = 2
	}
	b := make([]uint64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		b = append(b, v)
		v *= factor
	}
	return b
}

// LinearBuckets returns n bucket bounds start, start+step, ...: the
// shape for small enumerable quantities (tasklet occupancy, shards).
func LinearBuckets(start, step uint64, n int) []uint64 {
	b := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		b = append(b, start+uint64(i)*step)
	}
	return b
}

// instrumentID keys one instrument: a name plus an optional single
// label pair ("pim_dpu_cycles_total"{dpu="17"}).
type instrumentID struct {
	name     string
	labelKey string
	labelVal string
}

// CounterVec is a fixed-label family of counters indexed by a small
// integer (one per DPU). At is lock-free; the backing slice grows
// copy-on-write when a larger system registers the same family.
type CounterVec struct {
	cs atomic.Pointer[[]*Counter]
}

// At returns the i'th counter, or nil when the receiver is nil or i is
// out of range — so vec.At(i).Add(n) is always safe.
func (v *CounterVec) At(i int) *Counter {
	if v == nil {
		return nil
	}
	cs := *v.cs.Load()
	if i < 0 || i >= len(cs) {
		return nil
	}
	return cs[i]
}

// Len returns the current family width (0 on a nil receiver).
func (v *CounterVec) Len() int {
	if v == nil {
		return 0
	}
	return len(*v.cs.Load())
}

// Registry owns a set of named instruments. Getters are get-or-create
// and idempotent: the same (name, label) always returns the same
// instrument, so repeated wiring (one registry across many Systems)
// accumulates into shared counters. A nil *Registry returns nil
// instruments from every getter, making the disabled path free.
type Registry struct {
	mu       sync.Mutex
	counters map[instrumentID]*Counter
	gauges   map[instrumentID]*Gauge
	hists    map[instrumentID]*Histogram
	bounds   map[string][]uint64 // histogram family name -> bounds (first registration wins)
	vecs     map[instrumentID]*CounterVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[instrumentID]*Counter),
		gauges:   make(map[instrumentID]*Gauge),
		hists:    make(map[instrumentID]*Histogram),
		bounds:   make(map[string][]uint64),
		vecs:     make(map[instrumentID]*CounterVec),
	}
}

// Counter returns the counter named name (nil on a nil registry).
func (r *Registry) Counter(name string) *Counter {
	return r.LabeledCounter(name, "", "")
}

// LabeledCounter returns the counter name{key="val"}.
func (r *Registry) LabeledCounter(name, key, val string) *Counter {
	if r == nil {
		return nil
	}
	id := instrumentID{name, key, val}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[id]
	if c == nil {
		c = &Counter{}
		r.counters[id] = c
	}
	return c
}

// Gauge returns the gauge named name (nil on a nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	return r.LabeledGauge(name, "", "")
}

// LabeledGauge returns the gauge name{key="val"}.
func (r *Registry) LabeledGauge(name, key, val string) *Gauge {
	if r == nil {
		return nil
	}
	id := instrumentID{name, key, val}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[id]
	if g == nil {
		g = &Gauge{}
		r.gauges[id] = g
	}
	return g
}

// Histogram returns the histogram named name with the given bucket
// bounds (ascending upper edges). The first registration of a family
// fixes its bounds; later calls ignore the argument and return the
// existing instrument. Nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	return r.LabeledHistogram(name, "", "", bounds)
}

// LabeledHistogram returns the histogram name{key="val"}.
func (r *Registry) LabeledHistogram(name, key, val string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	id := instrumentID{name, key, val}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[id]
	if h == nil {
		fam, ok := r.bounds[name]
		if !ok {
			fam = append([]uint64(nil), bounds...)
			r.bounds[name] = fam
		}
		// One backing array for counts + exemplar slots: labels
		// materialize lazily on hot paths, and a single allocation keeps
		// the first-observation cost identical to the pre-exemplar layout.
		n := len(fam) + 1
		buf := make([]atomic.Uint64, 3*n)
		h = &Histogram{
			bounds: fam,
			counts: buf[:n:n],
			exVal:  buf[n : 2*n : 2*n],
			exID:   buf[2*n : 3*n : 3*n],
		}
		r.hists[id] = h
	}
	return h
}

// CounterVec returns a family of n counters name{key="0"} ..
// name{key="n-1"}. Re-registering with a larger n grows the family
// copy-on-write (At stays lock-free); a smaller n returns the existing
// wider family. Nil on a nil registry.
func (r *Registry) CounterVec(name, key string, n int) *CounterVec {
	if r == nil {
		return nil
	}
	id := instrumentID{name: name, labelKey: key}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.vecs[id]
	if v == nil {
		v = &CounterVec{}
		empty := make([]*Counter, 0)
		v.cs.Store(&empty)
		r.vecs[id] = v
	}
	cur := *v.cs.Load()
	if n > len(cur) {
		grown := make([]*Counter, n)
		copy(grown, cur)
		for i := len(cur); i < n; i++ {
			c := &Counter{}
			grown[i] = c
			// Register each element as a labeled counter so snapshots
			// and renderers see one uniform instrument space.
			r.counters[instrumentID{name, key, strconv.Itoa(i)}] = c
		}
		v.cs.Store(&grown)
	}
	return v
}

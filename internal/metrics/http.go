package metrics

import (
	"context"
	"net"
	"net/http"
	"strings"
	"time"
)

// Serve hardening: header reads are deadline-bound so a client that
// dribbles request bytes cannot pin a connection forever, and shutdown
// is graceful within shutdownGrace so an in-flight scrape completes
// instead of being dropped mid-response.
const (
	readHeaderTimeout = 5 * time.Second
	shutdownGrace     = 2 * time.Second
)

// Handler returns an expvar-style HTTP handler serving snapshots of r:
// Prometheus text exposition by default, JSON with ?format=json or an
// Accept: application/json header. A nil registry serves empty
// snapshots, so wiring the handler unconditionally is safe.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := r.Snapshot()
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = s.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.WritePrometheus(w)
	})
}

// Serve starts an HTTP server on addr exposing Handler(r) at /metrics
// (and at /, for curl convenience). It returns the bound address (useful
// with a ":0" addr) and a shutdown func. The server runs until shutdown
// is called; shutdown stops accepting new connections and waits up to
// shutdownGrace for in-flight scrapes to finish before closing the
// stragglers. Serve errors after shutdown are discarded.
func Serve(addr string, r *Registry) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	h := Handler(r)
	mux.Handle("/metrics", h)
	mux.Handle("/", h)
	srv := serveWith(ln, mux)
	return ln.Addr().String(), func() { shutdownServer(srv) }, nil
}

// serveWith runs an already-configured listener under the hardened
// server settings. Split from Serve so tests can drive the
// shutdown-vs-in-flight-request contract with an instrumented handler.
func serveWith(ln net.Listener, h http.Handler) *http.Server {
	srv := &http.Server{Handler: h, ReadHeaderTimeout: readHeaderTimeout}
	go func() { _ = srv.Serve(ln) }()
	return srv
}

// shutdownServer drains srv gracefully within shutdownGrace; requests
// still running after the grace period are cut off hard.
func shutdownServer(srv *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if srv.Shutdown(ctx) != nil {
		_ = srv.Close()
	}
}
